#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json files against committed
baselines and fail (exit 1) when a tracked metric regresses.

Usage:
    bench_diff.py BASELINE_DIR CURRENT_DIR [--report report.md]

Every BENCH_*.json in BASELINE_DIR must exist in CURRENT_DIR; each pair is
compared under per-bench rules keyed off the file's "bench" field:

  micro_pipeline_baseline (virtual-time, deterministic)
      Rows keyed by (mode, codec); row sets must match exactly. Metrics are
      direction-aware with a tight relative tolerance (the numbers are
      virtual-time, so any drift is a model change, not noise):
        perceived_makespan, sustained_makespan   lower is better
        perceived_bw, sustained_bw               higher is better
      Drift beyond tolerance in the bad direction -> REGRESSED (fails).
      Drift in the good direction -> IMPROVED (passes, but refresh the
      baseline so the gate keeps teeth). critical_path.critical_stage flips
      -> CHANGED (reported, passes only alongside no regression).

  micro_engine_scaling (wall-clock, machine-dependent)
      Raw `seconds` are report-only — never gated. The gate watches
      speedup_event_over_serial keyed by (workload, ranks): the current
      speedup must stay above baseline/3 (a generous bound that survives CI
      jitter but catches the event engine collapsing back to serial pace).
      Missing or added rows fail.

Anything else: row-count sanity check only.

Refreshing baselines after an intentional change:
    ./build/micro_pipeline_baseline --out bench_results
    ./build/micro_engine_scaling --out bench_results
    cp bench_results/BENCH_*.json bench/baselines/
"""

import argparse
import glob
import json
import os
import sys

# Relative tolerance for the deterministic pipeline metrics. Virtual-time
# results are exact; this only absorbs cross-compiler float reassociation.
PIPELINE_RTOL = 1e-6

# An engine speedup may drop to a third of baseline before the gate trips:
# wall clocks on shared CI runners are noisy, order-of-magnitude claims are
# what the bench exists to defend.
SPEEDUP_FLOOR_FRAC = 1.0 / 3.0

PIPELINE_METRICS = [
    # (key, lower_is_better)
    ("perceived_makespan", True),
    ("sustained_makespan", True),
    ("perceived_bw", False),
    ("sustained_bw", False),
]


class Diff:
    """Accumulates findings; renders a markdown report at the end."""

    def __init__(self):
        self.lines = []
        self.failures = []

    def section(self, title):
        self.lines.append(f"\n## {title}\n")

    def note(self, text):
        self.lines.append(text)

    def fail(self, text):
        self.failures.append(text)
        self.lines.append(f"**REGRESSED** {text}")

    def render(self):
        verdict = "FAIL" if self.failures else "PASS"
        head = [f"# bench_diff: {verdict}", ""]
        if self.failures:
            head.append(f"{len(self.failures)} regression(s):")
            head.extend(f"- {f}" for f in self.failures)
        return "\n".join(head + self.lines) + "\n"


def rel_delta(baseline, current):
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / abs(baseline)


def fmt_row(name, base, cur, status):
    return f"| {name} | {base:.6g} | {cur:.6g} | {rel_delta(base, cur):+.2%} | {status} |"


def diff_pipeline(base, cur, diff):
    diff.note("| row / metric | baseline | current | delta | status |")
    diff.note("|---|---|---|---|---|")
    bkeys = {(r["mode"], r["codec"]): r for r in base["rows"]}
    ckeys = {(r["mode"], r["codec"]): r for r in cur["rows"]}
    for key in sorted(bkeys.keys() - ckeys.keys()):
        diff.fail(f"pipeline row {key} missing from current run")
    for key in sorted(ckeys.keys() - bkeys.keys()):
        diff.fail(f"pipeline row {key} added without a baseline "
                  "(refresh bench/baselines/)")
    for key in sorted(bkeys.keys() & ckeys.keys()):
        b, c = bkeys[key], ckeys[key]
        label = f"{key[0]}/{key[1]}"
        for metric, lower_better in PIPELINE_METRICS:
            delta = rel_delta(b[metric], c[metric])
            if abs(delta) <= PIPELINE_RTOL:
                status = "ok"
            elif (delta > 0) == lower_better:
                status = "REGRESSED"
                diff.fail(f"{label} {metric}: {b[metric]:.6g} -> "
                          f"{c[metric]:.6g} ({delta:+.2%})")
            else:
                status = "IMPROVED (refresh baseline)"
            if status != "ok":
                diff.note(fmt_row(f"{label} {metric}", b[metric], c[metric],
                                  status))
        b_stage = b["critical_path"]["critical_stage"]
        c_stage = c["critical_path"]["critical_stage"]
        if b_stage != c_stage:
            diff.note(f"| {label} critical_stage | {b_stage} | {c_stage} "
                      f"| | CHANGED |")
    diff.note(f"| rows compared | {len(bkeys)} | {len(ckeys)} | | |")


def diff_engine(base, cur, diff):
    bkeys = {(r["workload"], r["ranks"], r["engine"]): r for r in base["rows"]}
    ckeys = {(r["workload"], r["ranks"], r["engine"]): r for r in cur["rows"]}
    for key in sorted(bkeys.keys() - ckeys.keys()):
        diff.fail(f"engine row {key} missing from current run")
    for key in sorted(ckeys.keys() - bkeys.keys()):
        diff.fail(f"engine row {key} added without a baseline "
                  "(refresh bench/baselines/)")

    diff.note("wall-clock seconds (report-only, not gated):\n")
    diff.note("| workload/ranks/engine | baseline s | current s | delta |")
    diff.note("|---|---|---|---|")
    for key in sorted(bkeys.keys() & ckeys.keys()):
        b, c = bkeys[key], ckeys[key]
        diff.note(f"| {key[0]}/{key[1]}/{key[2]} | {b['seconds']:.6g} "
                  f"| {c['seconds']:.6g} "
                  f"| {rel_delta(b['seconds'], c['seconds']):+.1%} |")

    diff.note("\nevent-over-serial speedups (gated at baseline/3):\n")
    diff.note("| workload/ranks | baseline | current | floor | status |")
    diff.note("|---|---|---|---|---|")
    bsp = {(r["workload"], r["ranks"]): r["speedup"]
           for r in base.get("speedup_event_over_serial", [])}
    csp = {(r["workload"], r["ranks"]): r["speedup"]
           for r in cur.get("speedup_event_over_serial", [])}
    for key in sorted(bsp.keys() - csp.keys()):
        diff.fail(f"speedup row {key} missing from current run")
    for key in sorted(bsp.keys() & csp.keys()):
        floor = bsp[key] * SPEEDUP_FLOOR_FRAC
        ok = csp[key] >= floor
        diff.note(f"| {key[0]}/{key[1]} | {bsp[key]:.3g} | {csp[key]:.3g} "
                  f"| {floor:.3g} | {'ok' if ok else 'REGRESSED'} |")
        if not ok:
            diff.fail(f"speedup {key}: {csp[key]:.3g} fell below "
                      f"{floor:.3g} (baseline {bsp[key]:.3g})")


def diff_generic(base, cur, diff):
    nb, nc = len(base.get("rows", [])), len(cur.get("rows", []))
    diff.note(f"no specific rules for bench '{base.get('bench')}': "
              f"row-count check only ({nb} baseline vs {nc} current)")
    if nb != nc:
        diff.fail(f"{base.get('bench')}: row count {nc} != baseline {nb}")


def main():
    ap = argparse.ArgumentParser(
        description="compare BENCH_*.json against committed baselines")
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--report", help="also write the markdown report here")
    args = ap.parse_args()

    diff = Diff()
    baselines = sorted(glob.glob(os.path.join(args.baseline_dir,
                                              "BENCH_*.json")))
    if not baselines:
        print(f"bench_diff: no BENCH_*.json under {args.baseline_dir}",
              file=sys.stderr)
        return 2

    for bpath in baselines:
        name = os.path.basename(bpath)
        cpath = os.path.join(args.current_dir, name)
        diff.section(name)
        if not os.path.exists(cpath):
            diff.fail(f"{name}: current run produced no such file "
                      f"(expected {cpath})")
            continue
        with open(bpath) as f:
            base = json.load(f)
        with open(cpath) as f:
            cur = json.load(f)
        if base.get("bench") != cur.get("bench"):
            diff.fail(f"{name}: bench id mismatch "
                      f"({base.get('bench')} vs {cur.get('bench')})")
            continue
        rules = {"micro_pipeline_baseline": diff_pipeline,
                 "micro_engine_scaling": diff_engine}
        rules.get(base.get("bench"), diff_generic)(base, cur, diff)

    report = diff.render()
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    print(report)
    return 1 if diff.failures else 0


if __name__ == "__main__":
    sys.exit(main())

/// Table III reproduction: the parameterized Sedov campaign. The paper ran 47
/// configurations on Summit spanning max_step 40–1000, n_cell 32²–131072²,
/// max_level 2–4, plot_int 1–20, cfl 0.3–0.6, nprocs 1–1024. This bench runs
/// the scaled matrix and prints the realized ranges plus a per-case inventory.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "table3_campaign", "Table III: campaign parameter ranges");
  bench::banner("Table III — parameterized Sedov campaign",
                "paper Table III (47 Summit runs; scaled matrix here)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  auto cases = core::table3_campaign(scale);
  // keep bench wall time sane at default scale
  if (!ctx.full && cases.size() > 30) cases.resize(30);
  std::printf("running %zu cases at scale %.3f...\n\n", cases.size(), scale);

  util::WallTimer timer;
  const auto runs = core::run_campaign(cases);

  // realized ranges
  auto minmax_i = [&](auto getter) {
    auto lo = getter(runs.front());
    auto hi = lo;
    for (const auto& r : runs) {
      lo = std::min(lo, getter(r));
      hi = std::max(hi, getter(r));
    }
    return std::pair{lo, hi};
  };
  const auto steps = minmax_i([](const core::RunRecord& r) { return r.config.max_step; });
  const auto cells = minmax_i([](const core::RunRecord& r) { return r.config.ncell; });
  const auto levels = minmax_i([](const core::RunRecord& r) { return r.config.max_level + 1; });
  const auto pint = minmax_i([](const core::RunRecord& r) { return r.config.plot_int; });
  const auto cfl = minmax_i([](const core::RunRecord& r) { return r.config.cfl; });
  const auto ranks = minmax_i([](const core::RunRecord& r) { return r.config.nprocs; });

  util::TextTable ranges({"parameter", "paper range", "this campaign"});
  ranges.add_row({"amr.max_step", "40 - 1000",
                  std::to_string(steps.first) + " - " + std::to_string(steps.second)});
  ranges.add_row({"amr.n_cell", "(32x32) - (131072x131072)",
                  std::to_string(cells.first) + "² - " + std::to_string(cells.second) + "²"});
  ranges.add_row({"amr.max_level (levels)", "2 - 4",
                  std::to_string(levels.first) + " - " + std::to_string(levels.second)});
  ranges.add_row({"amr.plot_int", "1 - 20",
                  std::to_string(pint.first) + " - " + std::to_string(pint.second)});
  ranges.add_row({"castro.cfl", "0.3 - 0.6",
                  util::format_g(cfl.first, 3) + " - " + util::format_g(cfl.second, 3)});
  ranges.add_row({"nprocs", "1 - 1024",
                  std::to_string(ranks.first) + " - " + std::to_string(ranks.second)});
  std::printf("%s\n", ranges.to_string().c_str());

  util::TextTable inv({"case", "ncell", "levels", "plot_int", "cfl", "nprocs",
                       "outputs", "files", "total bytes"});
  util::CsvWriter csv(bench::csv_path(ctx, "table3_campaign.csv"));
  csv.header({"case", "ncell", "max_level", "plot_int", "cfl", "nprocs",
              "outputs", "nfiles", "total_bytes", "wall_seconds"});
  for (const auto& r : runs) {
    inv.add_row({r.config.name, std::to_string(r.config.ncell),
                 std::to_string(r.nlevels), std::to_string(r.config.plot_int),
                 util::format_g(r.config.cfl, 3), std::to_string(r.config.nprocs),
                 std::to_string(r.total.steps.size()), std::to_string(r.nfiles),
                 std::to_string(r.total_bytes)});
    csv.field(r.config.name)
        .field(static_cast<std::int64_t>(r.config.ncell))
        .field(static_cast<std::int64_t>(r.config.max_level))
        .field(r.config.plot_int)
        .field(r.config.cfl)
        .field(static_cast<std::int64_t>(r.config.nprocs))
        .field(static_cast<std::uint64_t>(r.total.steps.size()))
        .field(r.nfiles)
        .field(r.total_bytes)
        .field(r.wall_seconds);
    csv.endrow();
  }
  std::printf("%s", inv.to_string().c_str());
  std::printf("\ncampaign wall time: %.1fs; csv: %s\n", timer.elapsed(),
              csv.path().c_str());
  return 0;
}

/// Table III reproduction, campaign edition: the paper ran 47 configurations
/// on Summit by hand; this bench runs the sharded sweep service over the
/// Table III axes {interface × file mode × staging × codec × engine × ranks}
/// through campaign::CampaignExecutor — work-stealing across --jobs threads,
/// results deduplicated through the cache (persist it with --cache and a
/// re-run resolves without simulating a single cell), per-cell critical-path
/// attribution carried into the canonical CSV.
///
/// With --predict the bench fits campaign::PredictService on the executed
/// cells and answers a what-if query for a rank count the campaign never
/// ran, printing the Eq. 3-style fit's calibration error next to the answer.
///
/// Determinism contract: stdout and the CSV contain configuration and
/// virtual-clock data only. Wall time goes to stderr, where artifact diffs
/// never look.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "campaign/grid.hpp"
#include "campaign/predict.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "table3_campaign",
      "Table III: sharded campaign over the sweep axes");
  bench::banner("Table III — sharded proxy campaign",
                "paper Table III (47 Summit runs; full cross product here)");

  campaign::GridSpec spec = campaign::table3_grid();
  if (!ctx.full) {
    // bench-scale default: one engine, two rank points (144 cells); --full
    // runs the whole 576-cell product the test suite pins
    spec.engines = {ctx.engine};
    spec.rank_counts = {8, 16};
  }
  const std::vector<campaign::CellConfig> cells = campaign::make_grid(spec);
  std::printf("campaign: %zu cells, %d worker(s)%s\n", cells.size(), ctx.jobs,
              ctx.cache_path.empty() ? "" : ", persistent cache");

  util::WallTimer timer;
  campaign::ExecutorOptions opts;
  opts.jobs = ctx.jobs;
  opts.cache_path = ctx.cache_path;
  campaign::CampaignExecutor executor(opts);
  const std::vector<campaign::CellOutcome> outcomes = executor.run(cells);
  // wall time is scheduling noise: stderr only, never stdout or the CSV
  std::fprintf(stderr, "campaign wall time: %.1fs\n", timer.elapsed());

  const campaign::ExecutorStats& stats = executor.stats();
  std::printf("cells: %llu  executed: %llu  cache hits: %llu\n",
              static_cast<unsigned long long>(stats.cells),
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.cache_hits));

  // headline rows: the slowest cell per staging mode (the Table III story —
  // which staging path binds at which scale)
  util::TextTable table({"staging", "slowest cell", "dump s", "encoded",
                         "critical stage", "binding"});
  std::map<std::string, std::size_t> worst;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const macsio::Params p = campaign::resolved_params(cells[i]);
    std::string staging = p.aggregators > 0 ? "agg" : "direct";
    if (p.stage_to_bb) staging = p.aggregators > 0 ? "agg+bb" : "bb";
    staging = std::string(macsio::to_string(p.file_mode)) + "/" + staging;
    const auto it = worst.find(staging);
    if (it == worst.end() ||
        outcomes[i].result.dump_seconds > outcomes[it->second].result.dump_seconds)
      worst[staging] = i;
  }
  for (const auto& [staging, i] : worst) {
    const campaign::CellResult& r = outcomes[i].result;
    table.add_row({staging, outcomes[i].name, util::format_g(r.dump_seconds, 4),
                   util::human_bytes(r.encoded_bytes), r.critical_stage,
                   r.binding_resource});
  }
  std::printf("%s", table.to_string().c_str());

  const std::string csv =
      bench::campaign_csv(ctx, "table3_campaign.csv", cells, outcomes);
  std::printf("csv: %s\n", csv.c_str());

  if (ctx.predict) {
    campaign::PredictService predict;
    predict.fit(cells, outcomes);
    // what-if: a rank count the campaign never executed
    campaign::CellConfig query = cells.front();
    query.name = "whatif/r23";
    query.params.nprocs = 23;
    const auto answer = predict.predict(query);
    std::printf("%s\n", predict.report().c_str());
    std::printf(
        "what-if %s (never simulated): dump %.6fs, %llu encoded bytes "
        "(stratum %s)\n",
        query.name.c_str(), answer.dump_seconds,
        static_cast<unsigned long long>(answer.encoded_bytes),
        answer.exact_stratum ? answer.stratum.c_str() : "global");
  }
  return 0;
}

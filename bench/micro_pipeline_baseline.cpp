/// Micro: pinned end-to-end pipeline baseline. Runs a fixed 32-rank, 3-dump
/// grid — staging {direct, agg, bb} × codec {identity, ebl@1e-4} — through
/// the driver and the reference PFS/BB model, and writes the result to
///   BENCH_pipeline.json
/// (perceived/sustained makespan, perceived bandwidth, and the per-stage
/// critical-path split per cell). Everything in the grid is virtual-time and
/// deterministic, so the file is a *perf baseline*: any diff against a
/// previous run is a real behaviour change in the pipeline model, not noise.
/// CI uploads it as an artifact; compare across commits to catch regressions.
///
/// The grid is pinned on purpose: --full and --scale do not change it.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "staging/drain.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

struct Mode {
  const char* name;
  bool aggregate;
  bool burst_buffer;
};

struct CodecPoint {
  const char* label;
  const char* codec;
  double error_bound;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "micro_pipeline_baseline",
      "pinned staging × codec grid: the BENCH_pipeline.json perf baseline");
  bench::banner("Micro — pipeline baseline (pinned 32-rank grid)",
                "perf baseline artifact: BENCH_pipeline.json");

  constexpr int kRanks = 32;
  constexpr int kAggregators = 8;
  constexpr double kCodecThroughput = 0.25e9;

  const Mode modes[] = {{"direct", false, false},
                        {"agg", true, false},
                        {"bb", false, true}};
  const CodecPoint codecs[] = {{"identity", "identity", 0.0},
                               {"ebl@1e-4", "ebl", 1e-4}};

  util::TextTable table({"mode", "codec", "perceived mkspn", "sustained mkspn",
                         "perceived BW", "critical path"});

  const std::string json_path = bench::csv_path(ctx, "BENCH_pipeline.json");
  std::ofstream out(json_path);
  util::JsonWriter w(out, /*pretty=*/true);
  w.begin_object();
  w.key("bench").value("micro_pipeline_baseline");
  w.key("ranks").value(static_cast<std::int64_t>(kRanks));
  w.key("rows").begin_array();

  bool ok = true;
  obs::Tracer row_tracer;
  for (const Mode& mode : modes) {
    for (const CodecPoint& point : codecs) {
      macsio::Params params;
      params.nprocs = kRanks;
      params.num_dumps = 3;
      params.part_size = 1 << 22;  // 4 MiB/task/dump
      params.avg_num_parts = 1.0;
      params.compute_time = 0.0;
      params.dataset_growth = 1.02;
      params.aggregators = mode.aggregate ? kAggregators : 0;
      params.stage_to_bb = mode.burst_buffer;
      params.codec = point.codec;
      if (point.error_bound > 0) params.codec_error_bound = point.error_bound;
      params.codec_throughput = kCodecThroughput;

      pfs::MemoryBackend backend(false);
      exec::SerialEngine engine(params.nprocs);
      row_tracer = obs::Tracer();
      const obs::Probe probe = ctx.probe(row_tracer);
      const auto stats =
          macsio::run_macsio(engine, params, backend, nullptr, probe);

      pfs::SimFs fs(bench::study_fs_config(kRanks, mode.burst_buffer));
      const auto report =
          staging::staging_report(fs.run(stats.requests, probe));
      const obs::CriticalPathReport cp =
          obs::critical_path(row_tracer.spans(), row_tracer.edges());
      if (report.perceived.makespan <= 0 || cp.makespan <= 0) ok = false;

      table.add_row({mode.name, point.label,
                     util::format_g(report.perceived.makespan, 4) + "s",
                     util::format_g(report.sustained.makespan, 4) + "s",
                     util::format_g(report.perceived_bandwidth / 1e9, 3) +
                         " GB/s",
                     obs::summarize(cp)});

      w.begin_object();
      w.key("mode").value(mode.name);
      w.key("codec").value(point.label);
      w.key("perceived_makespan").value(report.perceived.makespan);
      w.key("sustained_makespan").value(report.sustained.makespan);
      w.key("perceived_bw").value(report.perceived_bandwidth);
      w.key("sustained_bw").value(report.sustained_bandwidth);
      w.key("critical_path").begin_object();
      w.key("makespan").value(cp.makespan);
      w.key("critical_stage").value(cp.critical_stage);
      w.key("critical_frac").value(cp.critical_frac);
      w.key("binding_resource").value(cp.binding_resource);
      w.key("stages").begin_array();
      for (const obs::StageShare& s : cp.stages) {
        w.begin_object();
        w.key("stage").value(s.stage);
        w.key("seconds").value(s.seconds);
        w.key("frac").value(s.frac);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.end_object();
      ctx.row_done(row_tracer);
    }
  }
  w.end_array();
  w.end_object();
  out << '\n';
  out.close();

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: every number above is virtual-time and deterministic — a\n"
      "diff in BENCH_pipeline.json against a previous commit is a real\n"
      "pipeline-model behaviour change, not measurement noise.\n");
  std::printf("shape checks (positive makespans): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("JSON: %s\n", json_path.c_str());
  bench::export_obs(ctx, row_tracer);
  return ok ? 0 : 1;
}

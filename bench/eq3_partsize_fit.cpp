/// Eq. (3) reproduction: part_size = f · 8 · Nx · Ny / nprocs with the
/// correction factor f fitted per case. The paper reports f ≈ 23–25 for
/// Castro's ALL-variable plotfiles vs MACSio's json output on Summit; here f
/// reflects our 8 plot variables and fixed-width json and what must hold is
/// that f is stable across rank counts for a fixed format.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "eq3_partsize_fit", "Eq. (3): part_size correction factor");
  bench::banner("Eq. (3) — part_size = f * 8 * Nx * Ny / nprocs",
                "paper Eq. (3) and §IV-B");

  util::TextTable table({"ncell", "nprocs", "first output bytes", "part_size",
                         "f", "fit rel err"});
  util::CsvWriter csv(bench::csv_path(ctx, "eq3_partsize_fit.csv"));
  csv.header({"ncell", "nprocs", "first_output_bytes", "part_size", "f",
              "rel_err"});

  std::vector<double> fs;
  const int big = ctx.full ? 256 : 128;
  for (int ncell : {64, big}) {
    for (int nprocs : {4, 16, 32}) {
      core::CaseConfig config;
      config.name = "eq3_n" + std::to_string(ncell) + "_p" +
                    std::to_string(nprocs);
      config.ncell = ncell;
      config.max_level = 2;
      config.max_step = 10;
      config.plot_int = 10;
      config.nprocs = nprocs;
      config.max_grid_size = std::max(16, ncell / 8);
      const auto run = core::run_case(config);

      macsio::Params base = model::static_translation(run.inputs);
      const double target = run.total.per_step.front();
      const auto fit =
          model::fit_part_size(base, target, run.inputs.ncells0());
      fs.push_back(fit.f);
      table.add_row({std::to_string(ncell), std::to_string(nprocs),
                     util::format_g(target, 6),
                     std::to_string(fit.part_size), util::format_g(fit.f, 5),
                     util::format_g(fit.rel_error, 3)});
      csv.field(static_cast<std::int64_t>(ncell))
          .field(static_cast<std::int64_t>(nprocs))
          .field(target)
          .field(fit.part_size)
          .field(fit.f)
          .field(fit.rel_error);
      csv.endrow();
    }
  }
  std::printf("%s", table.to_string().c_str());

  double f_lo = fs.front();
  double f_hi = fs.front();
  for (double f : fs) {
    f_lo = std::min(f_lo, f);
    f_hi = std::max(f_hi, f);
  }
  std::printf("\nfitted f range: %.3f - %.3f\n", f_lo, f_hi);
  std::printf("(paper: f ≈ 23–25 for Castro derive_plot_vars=ALL + MACSio json\n"
              " on Summit; our plotfiles carry 8 doubles/cell + AMR levels and\n"
              " the json encodes 24 text bytes/double, so the expected scale is\n"
              " ~ 8*(1+refined share)/3 ≈ 3–5. Stability across nprocs is the\n"
              " reproducible claim.)\n");
  // f stable across rank counts for fixed ncell (within ~10%)
  const bool ok = (f_hi - f_lo) / f_lo < 0.8 && f_lo > 1.0;
  std::printf("shape check (f stable, > 1): %s\n", ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

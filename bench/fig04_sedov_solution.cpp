/// Fig. 4 reproduction: the Sedov 2D pivot case — (a) the AMR mesh with
/// moving refined levels, (b) the Mach number solution after 20 timesteps.
/// Rendered as ASCII heatmaps plus hierarchy statistics.

#include <cstdio>

#include "amr/core.hpp"
#include "bench_common.hpp"
#include "core/case_def.hpp"
#include "hydro/derive.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig04_sedov_solution", "Fig. 4: Sedov AMR mesh + Mach");
  bench::banner("Fig. 4 — Sedov 2D: AMR mesh and Mach number after 20 steps",
                "paper Fig. 4 (a) mesh levels, (b) Mach number");

  // Castro's "after 20 timesteps" is 20 subcycled coarse steps; our driver is
  // non-subcycled with init_shrink ramping, so the same evolution takes more
  // (much cheaper) steps.
  core::CaseConfig config;
  config.name = "fig4";
  config.ncell = ctx.full ? 256 : 96;
  config.max_level = 2;
  config.max_step = ctx.full ? 300 : 150;
  config.plot_int = 0;  // no I/O; this figure is about the solution
  config.nprocs = 1;
  config.max_grid_size = 32;
  auto inputs = config.to_inputs();
  inputs.plot_int = -1;
  inputs.cfl = 0.5;

  amr::AmrCore core(inputs);
  core.init();
  core.run({});
  std::printf("ran %lld steps to t=%.4e with %d levels\n\n",
              static_cast<long long>(core.step()), core.time(),
              core.num_levels());

  // (a) mesh: render refinement level per L0 cell
  const int n = config.ncell;
  std::vector<double> level_map(static_cast<std::size_t>(n) * n, 0.0);
  for (int l = 1; l < core.num_levels(); ++l) {
    const auto& ba = core.level(l).state.box_array();
    const int ratio = 1 << l;
    for (const auto& b : ba.boxes()) {
      const auto cb = b.coarsen(ratio);
      for (int j = cb.lo(1); j <= cb.hi(1); ++j)
        for (int i = cb.lo(0); i <= cb.hi(0); ++i)
          if (i >= 0 && i < n && j >= 0 && j < n)
            level_map[static_cast<std::size_t>(j) * n + i] =
                std::max(level_map[static_cast<std::size_t>(j) * n + i],
                         static_cast<double>(l));
    }
  }
  std::printf("%s\n",
              util::heatmap(level_map, n, n,
                            "(a) AMR mesh: refinement level (darker = finer)")
                  .c_str());

  // (b) Mach number on the L0 grid (averaged down, so the ring shows even
  // where fine levels carry the solution)
  const auto derived = core.derive_level(0);
  std::vector<double> mach(static_cast<std::size_t>(n) * n, 0.0);
  const int mach_comp = hydro::plot_var_index("MachNumber");
  for (std::size_t b = 0; b < derived.nfabs(); ++b) {
    const auto& fab = derived.fab(b);
    const auto box = derived.valid_box(b);
    for (int j = box.lo(1); j <= box.hi(1); ++j)
      for (int i = box.lo(0); i <= box.hi(0); ++i)
        mach[static_cast<std::size_t>(j) * n + i] = fab({i, j}, mach_comp);
  }
  std::printf("%s\n",
              util::heatmap(mach, n, n, "(b) Mach number (darker = faster)")
                  .c_str());

  // hierarchy statistics: the refined levels hug the blast front
  util::TextTable table({"level", "grids", "cells", "fraction of domain"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig04_sedov_solution.csv"));
  csv.header({"level", "grids", "cells", "domain_fraction"});
  for (int l = 0; l < core.num_levels(); ++l) {
    const auto& lev = core.level(l);
    const double frac = static_cast<double>(lev.state.num_pts()) /
                        static_cast<double>(lev.geom.domain().num_pts());
    table.add_row({"L" + std::to_string(l), std::to_string(lev.state.nfabs()),
                   std::to_string(lev.state.num_pts()),
                   util::format_g(frac, 4)});
    csv.field(static_cast<std::int64_t>(l))
        .field(static_cast<std::uint64_t>(lev.state.nfabs()))
        .field(static_cast<std::int64_t>(lev.state.num_pts()))
        .field(frac);
    csv.endrow();
  }
  std::printf("%s", table.to_string().c_str());

  // shape checks: Mach peaks off-center (expanding shock ring) and refined
  // levels cover a small fraction of the domain
  double mach_max = 0.0;
  int at_i = 0;
  int at_j = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      if (mach[static_cast<std::size_t>(j) * n + i] > mach_max) {
        mach_max = mach[static_cast<std::size_t>(j) * n + i];
        at_i = i;
        at_j = j;
      }
  const double r = std::hypot(at_i - n / 2.0, at_j - n / 2.0) / n;
  std::printf("\nMach peak %.2f at radius %.2f of the domain (shock ring)\n",
              mach_max, r);
  std::printf("csv: %s\n", csv.path().c_str());
  return (mach_max > 0.5 && r > 0.02) ? 0 : 1;
}

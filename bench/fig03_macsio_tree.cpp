/// Fig. 3 reproduction: MACSio's N-to-N output pattern with the miftmpl
/// (json) interface — data/macsio_json_{taskID}_{stepID}.json plus
/// metadata/macsio_json_root_{stepID}.json.

#include <cstdio>

#include "exec/engine.hpp"
#include "bench_common.hpp"
#include "macsio/driver.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig03_macsio_tree", "Fig. 3: MACSio N-to-N output pattern");
  bench::banner("Fig. 3 — MACSio N-to-N output pattern (miftmpl)",
                "paper Fig. 3");

  macsio::Params params;
  params.nprocs = ctx.full ? 8 : 4;
  params.num_dumps = 3;
  params.part_size = 64 * 1024;
  params.output_dir = "macsio_out";

  pfs::MemoryBackend backend(false);
  exec::SerialEngine engine(params.nprocs);
  const auto stats = macsio::run_macsio(engine, params, backend);

  std::printf("MACSio data output (nprocs=%d, nsteps=%d)\n", params.nprocs,
              params.num_dumps);
  std::string last_dir;
  for (const auto& path : backend.list("")) {
    const auto segs = util::split(path, '/');
    if (segs.size() >= 2 && segs[1] != last_dir) {
      std::printf("  %s/\n", segs[1].c_str());
      last_dir = segs[1];
    }
    std::printf("      %-32s %s\n", segs.back().c_str(),
                util::human_bytes(backend.size(path)).c_str());
  }
  std::printf("\n%d task files + 1 root file per dump; %llu files, %s total\n",
              params.nprocs, static_cast<unsigned long long>(stats.nfiles),
              util::human_bytes(stats.total_bytes).c_str());

  util::CsvWriter csv(bench::csv_path(ctx, "fig03_macsio_tree.csv"));
  csv.header({"path", "bytes"});
  for (const auto& path : backend.list(""))
    csv.row({path, std::to_string(backend.size(path))});
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}

/// Extension: checkpoint-restart output. The paper notes "AMReX also supports
/// the generation of checkpoint-restart data in a similar manner, but we
/// focused on only the plot files". This extension measures both streams
/// side-by-side across check_int settings, the natural next experiment.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_checkpoint_study",
      "extension: checkpoint vs plotfile output volumes");
  bench::banner("Extension — checkpoint (amr.check_int) vs plotfile output",
                "paper §III-A (checkpoints noted, not studied)");

  util::TextTable table({"check_int", "plt bytes", "chk bytes", "chk/plt",
                         "chk files", "total bytes"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_checkpoint_study.csv"));
  csv.header({"check_int", "plt_bytes", "chk_bytes", "chk_files",
              "total_bytes"});

  bool ok = true;
  std::uint64_t prev_chk = std::numeric_limits<std::uint64_t>::max();
  for (std::int64_t check_int : {5, 10, 20}) {
    core::CaseConfig config;
    config.name = "ckpt";
    config.ncell = ctx.full ? 256 : 96;
    config.max_level = 2;
    config.max_step = 40;
    config.plot_int = 10;
    config.nprocs = 8;
    config.max_grid_size = 32;
    core::CampaignOptions opts;
    opts.check_int = check_int;
    pfs::MemoryBackend backend(false);
    const auto run = core::run_case(config, opts, &backend);

    const auto plt = plotfile::scan_plotfiles(backend, "ckpt_plt");
    const auto chk = plotfile::scan_plotfiles(backend, "ckpt_chk");
    table.add_row({std::to_string(check_int), std::to_string(plt.total_bytes),
                   std::to_string(chk.total_bytes),
                   util::format_g(static_cast<double>(chk.total_bytes) /
                                      static_cast<double>(plt.total_bytes),
                                  4),
                   std::to_string(chk.nfiles),
                   std::to_string(plt.total_bytes + chk.total_bytes)});
    csv.field(check_int)
        .field(plt.total_bytes)
        .field(chk.total_bytes)
        .field(chk.nfiles)
        .field(plt.total_bytes + chk.total_bytes);
    csv.endrow();
    // more frequent checkpoints → more checkpoint bytes
    if (chk.total_bytes > prev_chk) ok = false;
    prev_chk = chk.total_bytes;
    // checkpoints carry 4 conserved vars vs 8 plot vars: per-step ratio ~1/2
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: checkpoints write the 4 conserved components where plots\n"
      "write 8 derived variables, so a chk tree is ~half a plt tree at the\n"
      "same step; the total I/O budget scales with 1/check_int — the knob a\n"
      "proxy-driven autotuner would trade against resilience.\n");
  std::printf("shape check (chk bytes decrease with check_int): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Extension: restart-read study. A checkpoint-restart campaign is bracketed
/// by read-back: every rank must recover its task document before the solver
/// resumes. This bench sweeps the two restart shapes the read-side staging
/// subsystem models — **cold PFS** (direct OST fetches at resume time) and
/// **prefetched BB** (extents staged OST→node during the job-startup window,
/// then read node-locally at resume) — across {identity, ebl} codecs and
/// rank counts, and reports the *perceived* read bandwidth: decoded image
/// bytes over the time between solver resume and the last document landing
/// (decode cpu and the reverse-scatter cost included).
///
/// Shape checks (prefetched-BB beats cold-PFS perceived read bandwidth at
/// every swept point; encoded <= raw; ebl pays a decode gate, identity none)
/// make the bench self-verifying.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

struct Mode {
  const char* name;
  bool prefetch;  // --read_staging bb with prefetch, vs cold PFS reads
};

struct CodecPoint {
  const char* label;
  const char* codec;
  double error_bound;  // ebl only
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_restart_study",
      "extension: checkpoint-restart reads through the burst-buffer tier");
  bench::banner("Extension — restart reads (cold PFS vs prefetched BB)",
                "read-side staging: the paper's write pipeline in reverse");

  const std::vector<int> rank_counts =
      ctx.full ? std::vector<int>{16, 64, 128} : std::vector<int>{16, 64};
  constexpr int kAggFactor = 8;
  // The job-startup window between restart submission and solver resume: the
  // prefetcher works through it, a cold restart pays everything after it.
  constexpr double kResumeDelay = 10.0;
  constexpr double kCodecThroughput = 0.25e9;

  const Mode modes[] = {{"cold", false}, {"prefetch", true}};
  const CodecPoint codecs[] = {{"identity", "identity", 0.0},
                               {"ebl@1e-4", "ebl", 1e-4}};

  util::TextTable table({"ranks", "mode", "codec", "raw", "fetched",
                         "decode gate", "read mkspn", "perceived read bw",
                         "critical path"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_restart_study.csv"));
  csv.header({"ranks", "mode", "codec", "error_bound", "raw_bytes",
              "encoded_bytes", "decode_gate_s", "scatter_s", "read_makespan",
              "perceived_read_bw", "critical_stage", "critical_frac",
              "binding_resource", "predicted_2x_relief"});

  bool ok = true;
  obs::Tracer row_tracer;  // reset per row: one critical path per config
  for (int ranks : rank_counts) {
    for (const CodecPoint& point : codecs) {
      double bw_by_mode[2] = {0.0, 0.0};
      for (std::size_t m = 0; m < 2; ++m) {
        const Mode& mode = modes[m];
        macsio::Params params;
        params.nprocs = ranks;
        params.num_dumps = 3;
        params.part_size = 1 << 23;  // 8 MiB/task: a real restart image
        params.avg_num_parts = 1.0;
        params.dataset_growth = 1.02;
        params.aggregators = ranks / kAggFactor;
        params.codec = point.codec;
        if (point.error_bound > 0) params.codec_error_bound = point.error_bound;
        params.codec_throughput = kCodecThroughput;
        params.restart = true;
        params.restart_from_bb = mode.prefetch;
        params.prefetch_streams = mode.prefetch ? 4 : 0;

        pfs::MemoryBackend backend(false);  // accounting: exact sizes
        exec::SerialEngine engine(params.nprocs);
        row_tracer = obs::Tracer();
        const obs::Probe probe = ctx.probe(row_tracer);
        (void)macsio::run_macsio(engine, params, backend);
        const auto restart =
            macsio::run_restart(engine, params, backend, nullptr, probe);

        if (restart.encoded_bytes > restart.raw_bytes) {
          std::printf("MISMATCH: %d ranks %s %s: fetched > raw\n", ranks,
                      mode.name, point.label);
          ok = false;
        }

        // Restart timeline: prefetches go out when the restart is submitted
        // (t = 0); the solver resumes — and reads issue — at kResumeDelay.
        auto requests = restart.requests;
        for (auto& req : requests)
          if (req.op == pfs::kOpRead) req.submit_time = kResumeDelay;
        pfs::SimFsConfig cfg = bench::study_fs_config(ranks, mode.prefetch);
        cfg.bb.prefetch_concurrency = params.prefetch_streams;
        pfs::SimFs fs(cfg);
        const auto results = fs.run(requests, probe);
        const obs::CriticalPathReport cp =
            obs::critical_path(row_tracer.spans(), row_tracer.edges());
        double last_read_end = kResumeDelay;
        for (const auto& res : results)
          if (res.op == pfs::kOpRead)
            last_read_end = std::max(last_read_end, res.end);
        const double read_makespan = last_read_end - kResumeDelay;
        const double resume_to_solver =
            read_makespan + restart.decode_gate + restart.scatter_seconds;
        const double perceived_bw =
            resume_to_solver > 0
                ? static_cast<double>(restart.raw_bytes) / resume_to_solver
                : 0.0;
        bw_by_mode[m] = perceived_bw;

        table.add_row({std::to_string(ranks), mode.name, point.label,
                       util::human_bytes(restart.raw_bytes),
                       util::human_bytes(restart.encoded_bytes),
                       util::format_g(restart.decode_gate, 3) + "s",
                       util::format_g(read_makespan, 4) + "s",
                       util::human_bytes(static_cast<std::uint64_t>(
                           perceived_bw)) + "/s",
                       obs::summarize(cp)});
        csv.field(static_cast<std::int64_t>(ranks))
            .field(std::string(mode.name))
            .field(std::string(point.codec))
            .field(point.error_bound)
            .field(static_cast<std::int64_t>(restart.raw_bytes))
            .field(static_cast<std::int64_t>(restart.encoded_bytes))
            .field(restart.decode_gate)
            .field(restart.scatter_seconds)
            .field(read_makespan)
            .field(perceived_bw)
            .field(cp.critical_stage)
            .field(cp.critical_frac)
            .field(cp.binding_resource)
            .field(bench::predicted_2x_relief(row_tracer, cfg));
        csv.endrow();
        ctx.row_done(row_tracer);

        const bool ebl = std::string(point.codec) == "ebl";
        if (ebl && restart.decode_gate <= 0.0) {
          std::printf("MISMATCH: %d ranks %s: ebl restart has no decode gate\n",
                      ranks, mode.name);
          ok = false;
        }
        if (!ebl && restart.decode_gate != 0.0) {
          std::printf("MISMATCH: %d ranks %s: identity restart pays decode\n",
                      ranks, mode.name);
          ok = false;
        }
      }
      // the crossover this study exists to expose: staging the image into
      // node-local areas during startup beats fetching it cold at resume
      if (bw_by_mode[1] <= bw_by_mode[0]) {
        std::printf(
            "MISMATCH: %d ranks %s: prefetched-BB restart does not beat "
            "cold-PFS (%.3g <= %.3g bytes/s)\n",
            ranks, point.label, bw_by_mode[1], bw_by_mode[0]);
        ok = false;
      }
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: a cold restart pays the full OST fetch after the solver\n"
      "resumes; a prefetched restart hides it in the job-startup window and\n"
      "pays only the node-local read (plus decode under a codec) — the\n"
      "perceived read bandwidth gap is the read-side analogue of the\n"
      "perceived-vs-sustained write gap the burst buffer creates.\n");
  std::printf(
      "shape checks (prefetched > cold everywhere, fetched <= raw, decode "
      "gate): %s\n",
      ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  bench::export_obs(ctx, row_tracer);
  bench::explain_row(ctx, row_tracer,
                     bench::study_fs_config(rank_counts.back(), true));
  return ok ? 0 : 1;
}

/// Fig. 11 reproduction: the large-mesh Sedov case (paper: 8192² L0 on 64
/// Summit nodes) where refined-level output is a vanishing fraction of the
/// total — per-step output is nearly constant with occasional discrete jumps
/// at regrids, and a first-order MACSio kernel still lands in the right
/// vicinity.
///
/// Method: simulate the AMR dynamics at a tractable mesh, then *analytically
/// upscale* every level layout to the paper's 8192² geometry and price the
/// plotfiles byte-exactly with predict_plotfile (no data allocated) — the
/// substitution DESIGN.md §2 documents.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "hydro/derive.hpp"
#include "plotfile/writer.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig11_large_case",
      "Fig. 11: large-mesh near-constant output with regrid jumps");
  bench::banner("Fig. 11 — 8192^2 L0 Sedov output vs MACSio kernel",
                "paper Fig. 11 (large case, 64 Summit nodes)");

  // 1. Simulate the hierarchy dynamics at a tractable scale. A small blast
  //    in a large domain keeps the refined share tiny, as at paper scale.
  const int sim_cells = ctx.full ? 1024 : 512;
  const int target_cells = 8192;
  const int upscale = target_cells / sim_cells;
  core::CaseConfig config;
  config.name = "large";
  config.ncell = sim_cells;
  config.max_level = 2;
  config.max_step = 40;
  config.plot_int = 1;
  config.cfl = 0.5;
  config.nprocs = 256;
  config.max_grid_size = sim_cells / 8;
  auto inputs = config.to_inputs();
  inputs.sedov_r_init = 0.02;  // small blast: refined fraction stays tiny
  inputs.plot_int = -1;        // we price plotfiles analytically below

  std::printf("simulating %d^2 mesh dynamics, upscaling layouts x%d to %d^2...\n\n",
              sim_cells, upscale, target_cells);
  amr::AmrCore core(inputs);
  core.init();

  // 2. At every step, upscale the live level layouts to 8192² and price the
  //    plotfile exactly.
  std::vector<double> steps;
  std::vector<double> bytes_per_step;
  auto price_step = [&](std::int64_t step) {
    std::vector<plotfile::LevelLayout> layouts;
    for (int l = 0; l < core.num_levels(); ++l) {
      const auto& lev = core.level(l);
      mesh::BoxArray ba = lev.state.box_array().refine(upscale);
      // keep max_grid_size at the paper's scale by re-chopping
      ba = ba.max_size(256, inputs.blocking_factor);
      const mesh::Geometry geom(lev.geom.domain().refine(upscale),
                                lev.geom.prob_lo(), lev.geom.prob_hi());
      auto dm = mesh::DistributionMapping::make(ba, config.nprocs,
                                                inputs.distribution);
      layouts.push_back({geom, std::move(ba), std::move(dm)});
    }
    plotfile::PlotfileSpec spec;
    spec.dir = "large_plt" + util::zero_pad(static_cast<std::uint64_t>(step), 5);
    spec.var_names = hydro::plot_var_names();
    spec.time = core.time();
    spec.step = step;
    spec.job_info = "fig11 large case\n";
    const auto stats =
        plotfile::predict_plotfile(spec, layouts, hydro::num_plot_vars());
    steps.push_back(static_cast<double>(step));
    bytes_per_step.push_back(static_cast<double>(stats.total_bytes));
  };

  price_step(0);
  while (core.step() < inputs.max_step) {
    core.advance(core.compute_dt());
    if (core.step() % inputs.regrid_int == 0) core.regrid();
    price_step(core.step());
  }

  // 3. MACSio first-order kernel: constant part size from the first output,
  //    growth from the observed series.
  macsio::Params base = model::static_translation(inputs);
  base.nprocs = config.nprocs;
  base.num_dumps = static_cast<int>(bytes_per_step.size());
  const auto psfit = model::fit_part_size(base, bytes_per_step.front(),
                                          static_cast<std::int64_t>(target_cells) *
                                              target_cells);
  base.part_size = psfit.part_size;
  const auto calib = model::calibrate_growth(base, bytes_per_step, 1.0, 1.001);
  const auto proxy = model::macsio_per_dump_bytes(calib.params);

  std::vector<util::Series> series(2);
  series[0].label = "simulation (8192^2 layouts, exact pricing)";
  series[0].x = steps;
  series[0].y = bytes_per_step;
  series[1].label = "MACSio kernel (growth " +
                    util::format_g(calib.best_growth, 8) + ")";
  series[1].x = steps;
  series[1].y = proxy;
  util::PlotOptions opts;
  opts.height = 20;
  opts.title = "per-step output bytes at 8192^2 (near-constant, regrid jumps)";
  opts.x_label = "timestep";
  opts.y_label = "bytes/step";
  std::printf("%s\n", util::plot_xy(series, opts).c_str());

  util::CsvWriter csv(bench::csv_path(ctx, "fig11_large_case.csv"));
  csv.header({"step", "sim_bytes", "proxy_bytes"});
  for (std::size_t i = 0; i < steps.size(); ++i) {
    csv.field(steps[i]).field(bytes_per_step[i]).field(proxy[i]);
    csv.endrow();
  }

  // analysis: variation is tiny, jumps are discrete
  double lo = bytes_per_step[0];
  double hi = bytes_per_step[0];
  int jumps = 0;
  for (std::size_t i = 1; i < bytes_per_step.size(); ++i) {
    lo = std::min(lo, bytes_per_step[i]);
    hi = std::max(hi, bytes_per_step[i]);
    if (bytes_per_step[i] != bytes_per_step[i - 1]) ++jumps;
  }
  const double variation = (hi - lo) / lo;
  double max_err = 0.0;
  for (std::size_t i = 0; i < proxy.size(); ++i)
    max_err = std::max(max_err,
                       std::abs(proxy[i] - bytes_per_step[i]) / bytes_per_step[i]);

  util::TextTable table({"quantity", "value"});
  table.add_row({"L0 bytes/step (8 vars)",
                 util::format_g(8.0 * 8 * target_cells * target_cells, 5)});
  table.add_row({"per-step total range", util::format_g(lo, 6) + " - " +
                                            util::format_g(hi, 6)});
  table.add_row({"relative variation", util::format_g(variation, 4)});
  table.add_row({"discrete regrid jumps", std::to_string(jumps)});
  table.add_row({"Eq.3 correction factor f", util::format_g(psfit.f, 5)});
  table.add_row({"kernel max relative error", util::format_g(max_err, 4)});
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper Fig. 11: total ≈ 1.841e10 bytes varying by ~3e-5 with a\n"
              " jump near convergence; here the same near-constant + jump shape\n"
              " at the same 8192^2 geometry)\n");

  const bool ok = variation < 0.05 && jumps >= 1 && max_err < 0.05;
  std::printf("shape check (near-constant, jumps, kernel in vicinity): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Fig. 7 reproduction: cumulative output size split per AMR level (L0, L1,
/// L2) as a function of the cumulative number of output cells, for the pivot
/// case4 at two CFL numbers. Shape targets: L0 grows exactly linearly (its
/// grid never changes), refined levels grow smoothly and super-linearly.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "model/regression.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig07_per_level",
      "Fig. 7: per-AMR-level cumulative output size");
  bench::banner("Fig. 7 — cumulative output per AMR level (L0, L1, L2)",
                "paper Fig. 7 (pivot case4, cfl varied)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  std::vector<util::Series> series;
  util::TextTable table({"cfl", "level", "log-log slope", "final bytes"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig07_per_level.csv"));
  csv.header({"cfl", "level", "x", "cumulative_bytes", "per_step_bytes"});

  bool ok = true;
  for (double cfl : {0.4, 0.6}) {
    auto config = core::case4(scale);
    config.name = "case4_cfl" + util::format_g(cfl, 2);
    config.cfl = cfl;
    config.max_level = 2;  // the figure shows L0..L2
    if (!ctx.full) {
      config.max_step = 120;
      config.plot_int = 6;
    }
    const auto run = core::run_case(config);
    for (std::size_t l = 0; l < run.per_level.size(); ++l) {
      const auto& s = run.per_level[l];
      series.push_back(util::Series{
          "cfl" + util::format_g(cfl, 2) + "_L" + std::to_string(l), s.x, s.y});
      const auto power = model::fit_power(s.x, s.y);
      table.add_row({util::format_g(cfl, 2), "L" + std::to_string(l),
                     util::format_g(power.b, 4), util::format_g(s.y.back(), 5)});
      for (std::size_t i = 0; i < s.x.size(); ++i) {
        csv.field(cfl)
            .field(static_cast<std::int64_t>(l))
            .field(s.x[i])
            .field(s.y[i])
            .field(s.per_step[i]);
        csv.endrow();
      }
      // shape targets: L0 cumulative growth is exactly linear in the output
      // counter (slope 1); refined levels are super-linear
      if (l == 0 && std::abs(power.b - 1.0) > 0.02) ok = false;
      if (l >= 1 && power.b < 1.01) ok = false;
    }
  }

  util::PlotOptions opts;
  opts.height = 22;
  opts.title = "per-level cumulative output vs x";
  opts.x_label = "output_counter * ncells";
  opts.y_label = "bytes";
  std::printf("%s\n", util::plot_xy(series, opts).c_str());
  std::printf("%s", table.to_string().c_str());
  std::printf("\nshape check (L0 linear; L1+/L2 super-linear, smooth): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Fig. 8 reproduction: output generation at each timestep per compute task
/// for the 4 mesh levels of case27 (paper: 1024² L0, 64 ranks, 5 output
/// steps). Shape target: L0 near-uniform across owning tasks, refined levels
/// strongly unbalanced — the AMR load-balancing effect that limits MACSio's
/// per-rank fidelity (paper §IV-A).

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig08_per_task", "Fig. 8: per-task output at 4 mesh levels");
  bench::banner("Fig. 8 — per-task output per step for 4 mesh levels (case27)",
                "paper Fig. 8 (1024^2 L0, 64 ranks)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  auto config = core::case27(scale);
  const auto run = core::run_case(config);
  const int nranks = config.nprocs;

  util::CsvWriter csv(bench::csv_path(ctx, "fig08_per_task.csv"));
  csv.header({"step", "level", "task", "bytes"});
  util::TextTable table({"level", "tasks with data", "mean bytes/task",
                         "max/mean imbalance", "gini"});

  const auto levels = iostats::levels_present(run.table);
  bool ok = !levels.empty();
  double l0_imb = 0.0;
  double fine_imb = 0.0;
  for (int level : levels) {
    // per-task series across all output steps (the four panels of Fig. 8)
    std::vector<util::Series> series;
    std::vector<double> all_bytes;
    for (std::size_t si = 0; si < run.total.steps.size(); ++si) {
      const auto step = run.total.steps[si];
      const auto per_task =
          iostats::per_task_bytes(run.table, step, level, nranks);
      util::Series s;
      s.label = "step " + std::to_string(step);
      for (int r = 0; r < nranks; ++r) {
        s.x.push_back(r);
        s.y.push_back(static_cast<double>(per_task[static_cast<std::size_t>(r)]));
        csv.field(step)
            .field(static_cast<std::int64_t>(level))
            .field(static_cast<std::int64_t>(r))
            .field(per_task[static_cast<std::size_t>(r)]);
        csv.endrow();
      }
      series.push_back(std::move(s));
    }
    util::PlotOptions opts;
    opts.height = 12;
    opts.title = "Level " + std::to_string(level) +
                 ": bytes per task per output step";
    opts.x_label = "taskID";
    opts.y_label = "bytes";
    std::printf("%s\n", util::plot_xy(series, opts).c_str());

    // imbalance metrics on the final output step
    const auto last = run.total.steps.back();
    const auto per_task = iostats::per_task_bytes(run.table, last, level, nranks);
    std::vector<double> v;
    int with_data = 0;
    double total = 0.0;
    for (auto b : per_task) {
      v.push_back(static_cast<double>(b));
      if (b > 0) ++with_data;
      total += static_cast<double>(b);
    }
    const double imb = util::imbalance_factor(v);
    table.add_row({"L" + std::to_string(level), std::to_string(with_data),
                   util::format_g(total / nranks, 4), util::format_g(imb, 4),
                   util::format_g(util::gini(v), 4)});
    if (level == 0) l0_imb = imb;
    fine_imb = imb;  // last level's value survives the loop
  }
  std::printf("%s", table.to_string().c_str());

  // shape: refined levels are markedly less balanced than L0
  ok = ok && (fine_imb > l0_imb);
  std::printf("\nimbalance (max/mean) L0=%.2f vs finest=%.2f\n", l0_imb,
              fine_imb);
  std::printf("shape check (refined levels unbalanced vs L0): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

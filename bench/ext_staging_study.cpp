/// Extension: staging-subsystem study. Sweeps the four staging configurations
/// {no-staging, aggregation-only, burst-buffer-only, both} over rank counts
/// and reports what each mechanism buys: two-phase aggregation cuts the file
/// count (and MDS pressure) by the aggregation factor while conserving every
/// task-document byte, and the burst-buffer tier splits perceived from
/// sustained bandwidth by overlapping the drain with compute windows —
/// the Hercule/ADIOS2-style behaviours the paper's §V positions the
/// calibrated proxy to explore.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "staging/drain.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

struct Config {
  const char* name;
  bool aggregate;
  bool burst_buffer;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_staging_study",
      "extension: two-phase aggregation + burst-buffer staging study");
  bench::banner("Extension — staging subsystem (aggregation × burst buffer)",
                "paper §V outlook: restructured/staged AMR output stacks");

  const std::vector<int> rank_counts =
      ctx.full ? std::vector<int>{16, 64, 128} : std::vector<int>{16, 64};
  constexpr int kAggFactor = 8;  // ranks per aggregation group

  util::TextTable table({"ranks", "config", "data files", "all files",
                         "perceived mkspn", "sustained mkspn", "perceived BW",
                         "sustained BW", "drain tail"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_staging_study.csv"));
  csv.header({"ranks", "config", "data_files", "all_files",
              "perceived_makespan", "sustained_makespan", "perceived_bw",
              "sustained_bw", "drain_tail", "data_bytes"});

  const Config configs[] = {{"none", false, false},
                            {"agg", true, false},
                            {"bb", false, true},
                            {"agg+bb", true, true}};

  bool ok = true;
  for (int ranks : rank_counts) {
    std::uint64_t baseline_data_files = 0;
    std::uint64_t baseline_data_bytes = 0;
    for (const Config& config : configs) {
      macsio::Params params;
      params.nprocs = ranks;
      params.num_dumps = 4;
      params.part_size = 1 << 23;  // 8 MiB/task/dump: a real burst
      params.avg_num_parts = 1.0;
      params.compute_time = 0.5;
      params.dataset_growth = 1.02;
      params.aggregators = config.aggregate ? ranks / kAggFactor : 0;
      params.stage_to_bb = config.burst_buffer;

      pfs::MemoryBackend backend(false);
      exec::SerialEngine engine(params.nprocs);
      const auto stats = macsio::run_macsio(engine, params, backend);

      std::uint64_t data_files = 0;
      std::uint64_t data_bytes = 0;
      for (const auto& req : stats.requests) {
        if (req.file.find("/data/") == std::string::npos) continue;
        ++data_files;
        data_bytes += req.bytes;
      }

      pfs::SimFsConfig fs_cfg;
      fs_cfg.n_ost = 32;
      fs_cfg.ost_bandwidth = 0.8e9;
      fs_cfg.client_bandwidth = 1.2e9;
      fs_cfg.mds_latency = 5.0e-4;
      fs_cfg.seed = 1234;
      fs_cfg.bb.enabled = config.burst_buffer;
      fs_cfg.bb.nodes = std::max(1, ranks / 16);
      fs_cfg.bb.ranks_per_node = 16;
      fs_cfg.bb.write_bandwidth = 8.0e9;
      fs_cfg.bb.drain_bandwidth = 1.5e9;
      fs_cfg.bb.drain_concurrency = 2;
      pfs::SimFs fs(fs_cfg);
      const auto results = fs.run(stats.requests);
      const auto report = staging::staging_report(results);

      if (!config.aggregate) {
        if (baseline_data_files == 0) {
          baseline_data_files = data_files;
          baseline_data_bytes = data_bytes;
        }
      } else {
        // aggregation must cut the data file count by exactly the factor and
        // conserve every task-document byte
        if (data_files != baseline_data_files / kAggFactor) {
          std::printf("MISMATCH: %d ranks %s: %llu data files, expected %llu\n",
                      ranks, config.name,
                      static_cast<unsigned long long>(data_files),
                      static_cast<unsigned long long>(baseline_data_files /
                                                      kAggFactor));
          ok = false;
        }
        if (data_bytes != baseline_data_bytes) {
          std::printf("MISMATCH: %d ranks %s: aggregation not byte-conserving\n",
                      ranks, config.name);
          ok = false;
        }
      }
      if (report.perceived.makespan <= 0) ok = false;
      if (config.burst_buffer &&
          report.perceived.makespan >= report.sustained.makespan)
        ok = false;

      table.add_row({std::to_string(ranks), config.name,
                     std::to_string(data_files), std::to_string(stats.nfiles),
                     util::format_g(report.perceived.makespan, 4) + "s",
                     util::format_g(report.sustained.makespan, 4) + "s",
                     util::format_g(report.perceived_bandwidth / 1e9, 3) +
                         " GB/s",
                     util::format_g(report.sustained_bandwidth / 1e9, 3) +
                         " GB/s",
                     util::format_g(report.drain_tail, 3) + "s"});
      csv.field(static_cast<std::int64_t>(ranks))
          .field(std::string(config.name))
          .field(static_cast<std::int64_t>(data_files))
          .field(static_cast<std::int64_t>(stats.nfiles))
          .field(report.perceived.makespan)
          .field(report.sustained.makespan)
          .field(report.perceived_bandwidth)
          .field(report.sustained_bandwidth)
          .field(report.drain_tail)
          .field(static_cast<std::int64_t>(data_bytes));
      csv.endrow();
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: 'agg' divides the data file count by %d at equal bytes\n"
      "(subfiling relieves the MDS); 'bb' completes dumps at absorb speed and\n"
      "hides the drain tail behind compute windows (perceived < sustained\n"
      "makespan); 'agg+bb' composes both — fewer, larger requests absorb even\n"
      "faster.\n",
      kAggFactor);
  std::printf("shape checks (file reduction, byte conservation, bb overlap): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

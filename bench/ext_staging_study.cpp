/// Extension: staging-subsystem study. Sweeps the four staging configurations
/// {no-staging, aggregation-only, burst-buffer-only, both} over rank counts
/// and reports what each mechanism buys: two-phase aggregation cuts the file
/// count (and MDS pressure) by the aggregation factor while conserving every
/// task-document byte, and the burst-buffer tier splits perceived from
/// sustained bandwidth by overlapping the drain with compute windows —
/// the Hercule/ADIOS2-style behaviours the paper's §V positions the
/// calibrated proxy to explore.
///
/// The agg+bb configuration additionally sweeps aggregator *placement*
/// (SimFs::node_of × AggTopology): "spread" keeps each aggregator on its
/// group's node (contiguous jsrun packing), "clustered" pins every
/// aggregator onto the first burst-buffer node — the absorbs then serialize
/// on one node's staging bandwidth, collapsing perceived bandwidth even
/// though the bytes and file counts are identical.

#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>
#include <set>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "staging/aggregator.hpp"
#include "staging/drain.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

struct Config {
  const char* name;
  bool aggregate;
  bool burst_buffer;
};

/// Remap the data-request clients so every aggregator lands on the first
/// burst-buffer node: aggregator of group g becomes client g, and with
/// ngroups <= ranks_per_node SimFs::node_of maps them all to node 0.
std::vector<amrio::pfs::IoRequest> cluster_aggregators(
    std::vector<amrio::pfs::IoRequest> requests,
    const amrio::staging::AggTopology& topo) {
  for (auto& req : requests) {
    if (req.file.find("_agg_") == std::string::npos) continue;
    req.client = topo.group_of(req.client);
  }
  return requests;
}

/// Distinct staging nodes the data-file clients map to.
int data_nodes(const amrio::pfs::SimFs& fs,
               const std::vector<amrio::pfs::IoRequest>& requests) {
  std::set<int> nodes;
  for (const auto& req : requests) {
    if (req.file.find("/data/") == std::string::npos) continue;
    nodes.insert(fs.node_of(req.client));
  }
  return static_cast<int>(nodes.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_staging_study",
      "extension: two-phase aggregation + burst-buffer staging study");
  bench::banner("Extension — staging subsystem (aggregation × burst buffer)",
                "paper §V outlook: restructured/staged AMR output stacks");

  const std::vector<int> rank_counts =
      ctx.full ? std::vector<int>{16, 64, 128} : std::vector<int>{16, 64};
  constexpr int kAggFactor = 8;  // ranks per aggregation group

  util::TextTable table({"ranks", "config", "placement", "agg nodes",
                         "data files", "all files", "perceived mkspn",
                         "sustained mkspn", "perceived BW", "sustained BW",
                         "drain tail", "critical path"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_staging_study.csv"));
  csv.header({"ranks", "config", "placement", "agg_nodes", "data_files",
              "all_files", "perceived_makespan", "sustained_makespan",
              "perceived_bw", "sustained_bw", "drain_tail", "data_bytes",
              "critical_stage", "critical_frac", "binding_resource",
              "predicted_2x_relief"});

  const Config configs[] = {{"none", false, false},
                            {"agg", true, false},
                            {"bb", false, true},
                            {"agg+bb", true, true}};

  bool ok = true;
  obs::Tracer row_tracer;  // reset per row: one critical path per config/row
  for (int ranks : rank_counts) {
    std::uint64_t baseline_data_files = 0;
    std::uint64_t baseline_data_bytes = 0;
    for (const Config& config : configs) {
      macsio::Params params;
      params.nprocs = ranks;
      params.num_dumps = 4;
      params.part_size = 1 << 23;  // 8 MiB/task/dump: a real burst
      params.avg_num_parts = 1.0;
      params.compute_time = 0.5;
      params.dataset_growth = 1.02;
      params.aggregators = config.aggregate ? ranks / kAggFactor : 0;
      params.stage_to_bb = config.burst_buffer;

      pfs::MemoryBackend backend(false);
      exec::SerialEngine engine(params.nprocs);
      row_tracer = obs::Tracer();
      obs::Probe probe = ctx.probe(row_tracer);
      const auto stats =
          macsio::run_macsio(engine, params, backend, nullptr, probe);

      std::uint64_t data_files = 0;
      std::uint64_t data_bytes = 0;
      for (const auto& req : stats.requests) {
        if (req.file.find("/data/") == std::string::npos) continue;
        ++data_files;
        data_bytes += req.bytes;
      }

      pfs::SimFs fs(bench::study_fs_config(ranks, config.burst_buffer));

      if (!config.aggregate) {
        if (baseline_data_files == 0) {
          baseline_data_files = data_files;
          baseline_data_bytes = data_bytes;
        }
      } else {
        // aggregation must cut the data file count by exactly the factor and
        // conserve every task-document byte
        if (data_files != baseline_data_files / kAggFactor) {
          std::printf("MISMATCH: %d ranks %s: %llu data files, expected %llu\n",
                      ranks, config.name,
                      static_cast<unsigned long long>(data_files),
                      static_cast<unsigned long long>(baseline_data_files /
                                                      kAggFactor));
          ok = false;
        }
        if (data_bytes != baseline_data_bytes) {
          std::printf("MISMATCH: %d ranks %s: aggregation not byte-conserving\n",
                      ranks, config.name);
          ok = false;
        }
      }

      // Aggregator placement matters only when aggregators hit per-node
      // staging areas: sweep spread vs clustered for agg+bb.
      const bool sweep_placement = config.aggregate && config.burst_buffer;
      double spread_makespan = 0.0;
      for (const char* placement :
           sweep_placement ? std::vector<const char*>{"spread", "clustered"}
                           : std::vector<const char*>{"spread"}) {
        std::vector<pfs::IoRequest> requests = stats.requests;
        if (std::string(placement) == "clustered") {
          const auto topo =
              staging::AggTopology::make(ranks, params.aggregators);
          requests = cluster_aggregators(std::move(requests), topo);
          // Second row of this config: regenerate the driver spans into a
          // fresh tracer so this placement's critical path stands alone.
          row_tracer = obs::Tracer();
          probe = ctx.probe(row_tracer);
          pfs::MemoryBackend probe_backend(false);
          exec::SerialEngine probe_engine(params.nprocs);
          (void)macsio::run_macsio(probe_engine, params, probe_backend,
                                   nullptr, probe);
        }
        // only meaningful when aggregators exist; 0 otherwise
        const int agg_nodes = config.aggregate ? data_nodes(fs, requests) : 0;
        const auto report = staging::staging_report(fs.run(requests, probe));
        const obs::CriticalPathReport cp =
            obs::critical_path(row_tracer.spans(), row_tracer.edges());

        if (report.perceived.makespan <= 0) ok = false;
        if (config.burst_buffer &&
            report.perceived.makespan >= report.sustained.makespan)
          ok = false;
        if (std::string(placement) == "spread") {
          spread_makespan = report.perceived.makespan;
        } else {
          // one node's absorb bandwidth serves every aggregator: perceived
          // completion cannot beat the spread placement
          if (agg_nodes != 1) {
            std::printf("MISMATCH: %d ranks clustered placement on %d nodes\n",
                        ranks, agg_nodes);
            ok = false;
          }
          if (report.perceived.makespan < spread_makespan) {
            std::printf(
                "MISMATCH: %d ranks: clustered absorbs beat spread placement\n",
                ranks);
            ok = false;
          }
        }

        table.add_row({std::to_string(ranks), config.name, placement,
                       std::to_string(agg_nodes), std::to_string(data_files),
                       std::to_string(stats.nfiles),
                       util::format_g(report.perceived.makespan, 4) + "s",
                       util::format_g(report.sustained.makespan, 4) + "s",
                       util::format_g(report.perceived_bandwidth / 1e9, 3) +
                           " GB/s",
                       util::format_g(report.sustained_bandwidth / 1e9, 3) +
                           " GB/s",
                       util::format_g(report.drain_tail, 3) + "s",
                       obs::summarize(cp)});
        csv.field(static_cast<std::int64_t>(ranks))
            .field(std::string(config.name))
            .field(std::string(placement))
            .field(static_cast<std::int64_t>(agg_nodes))
            .field(static_cast<std::int64_t>(data_files))
            .field(static_cast<std::int64_t>(stats.nfiles))
            .field(report.perceived.makespan)
            .field(report.sustained.makespan)
            .field(report.perceived_bandwidth)
            .field(report.sustained_bandwidth)
            .field(report.drain_tail)
            .field(static_cast<std::int64_t>(data_bytes))
            .field(cp.critical_stage)
            .field(cp.critical_frac)
            .field(cp.binding_resource)
            .field(bench::predicted_2x_relief(
                row_tracer, bench::study_fs_config(ranks,
                                                   config.burst_buffer)));
        csv.endrow();
        ctx.row_done(row_tracer);
      }
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: 'agg' divides the data file count by %d at equal bytes\n"
      "(subfiling relieves the MDS); 'bb' completes dumps at absorb speed and\n"
      "hides the drain tail behind compute windows (perceived < sustained\n"
      "makespan); 'agg+bb' composes both — fewer, larger requests absorb even\n"
      "faster. 'clustered' pins every aggregator onto one staging node and\n"
      "serializes the absorbs there — placement alone moves the perceived\n"
      "makespan at identical bytes and file counts.\n",
      kAggFactor);
  std::printf(
      "shape checks (file reduction, byte conservation, bb overlap, "
      "placement): %s\n",
      ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  bench::export_obs(ctx, row_tracer);
  bench::explain_row(ctx, row_tracer,
                     bench::study_fs_config(rank_counts.back(), true));
  return ok ? 0 : 1;
}

/// Fig. 9 reproduction: the dataset_growth calibration for case4 (cfl 0.4, 4
/// AMR levels) — each golden-section iterate's per-step proxy series is one
/// convergence curve; the final growth lands near the paper's small
/// (1.0–1.02-ish) values and the last curve hugs the simulation series.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig09_calibration",
      "Fig. 9: dataset_growth calibration convergence");
  bench::banner(
      "Fig. 9 — MACSio calibration convergence (case4, cfl 0.4, 4 levels)",
      "paper Fig. 9");

  const double scale = ctx.pick_scale(0.25, 0.5);
  auto config = core::case4(scale);  // cfl 0.4, 4 levels: the paper's pivot
  if (!ctx.full) {
    config.max_step = 120;
    config.plot_int = 6;
  }
  std::printf("simulating %s (%d^2 L0, %d ranks)...\n\n", config.name.c_str(),
              config.ncell, config.nprocs);
  const auto run = core::run_case(config);
  const auto v = core::calibrate_and_validate(run, 1.0, 1.2);
  const auto& calib = v.translation.calibration;

  // plot a subset of iterate curves plus the simulation target
  std::vector<util::Series> series;
  util::Series target{"simulation (target)", {}, {}};
  for (std::size_t i = 0; i < run.total.steps.size(); ++i) {
    target.x.push_back(static_cast<double>(run.total.steps[i]));
    target.y.push_back(run.total.per_step[i]);
  }
  series.push_back(target);
  const std::size_t stride = std::max<std::size_t>(1, calib.iterates.size() / 4);
  for (std::size_t i = 0; i < calib.iterates.size(); i += stride) {
    const auto& it = calib.iterates[i];
    util::Series s;
    s.label = "iterate " + std::to_string(i) + " (growth " +
              util::format_g(it.growth, 6) + ")";
    for (std::size_t k = 0; k < it.per_dump.size(); ++k) {
      s.x.push_back(static_cast<double>(run.total.steps[k]));
      s.y.push_back(it.per_dump[k]);
    }
    series.push_back(std::move(s));
  }
  util::PlotOptions opts;
  opts.height = 22;
  opts.title = "per-step output bytes: simulation vs calibration iterates";
  opts.x_label = "timestep";
  opts.y_label = "bytes/step";
  std::printf("%s\n", util::plot_xy(series, opts).c_str());

  util::TextTable table({"iterate", "dataset_growth", "objective (RMS rel err)"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig09_calibration.csv"));
  csv.header({"iterate", "growth", "objective"});
  for (std::size_t i = 0; i < calib.iterates.size(); ++i) {
    table.add_row({std::to_string(i),
                   util::format_g(calib.iterates[i].growth, 8),
                   util::format_g(calib.iterates[i].objective, 5)});
    csv.field(static_cast<std::uint64_t>(i))
        .field(calib.iterates[i].growth)
        .field(calib.iterates[i].objective);
    csv.endrow();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nfinal: dataset_growth = %.6f, objective = %.4f\n",
              calib.best_growth, calib.best_objective);
  std::printf("(paper: data_growth = 1.013075 for case4 at 512^2 — the value\n"
              " depends on mesh scale; what must hold is convergence and a\n"
              " small >1 growth factor)\n");

  const bool ok = calib.best_growth > 1.0 && calib.best_growth < 1.2 &&
                  calib.best_objective < 0.2;
  std::printf("shape check (converged small >1 growth): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

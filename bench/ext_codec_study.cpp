/// Extension: codec-stage study. Sweeps the in-situ compression models
/// {identity, lossless, ebl at three error bounds} across the staging
/// configurations {direct, two-phase aggregation, burst-buffer} and rank
/// counts, and maps the makespan/bytes frontier: compression always shrinks
/// the bytes on the wire/tier, but it only wins wall-clock when the saved
/// transfer time exceeds the modeled encode cpu — an AMRIC-style trade the
/// calibrated proxy can now explore without a single real compressor run.
///
/// Shape checks (encoded <= raw everywhere; ebl beats identity somewhere and
/// loses somewhere — a non-trivial crossover) make the bench self-verifying.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "staging/drain.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

struct Mode {
  const char* name;
  bool aggregate;
  bool burst_buffer;
};

struct CodecPoint {
  const char* label;
  const char* codec;
  double error_bound;  // ebl only
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_codec_study",
      "extension: in-situ compression across the staging/PFS pipeline");
  bench::banner("Extension — codec stage (compression x staging x ranks)",
                "AMRIC-style in-situ compression on the paper's proxy model");

  const std::vector<int> rank_counts =
      ctx.full ? std::vector<int>{16, 64, 128} : std::vector<int>{16, 64};
  constexpr int kAggFactor = 8;
  // A deliberately modest encode throughput: at small scale the NIC-bound
  // transfer is already cheaper than the encode cpu (identity wins), while
  // on the contended OST path at higher rank counts the byte savings
  // dominate (ebl wins) — the crossover this study exists to expose.
  constexpr double kCodecThroughput = 0.25e9;

  const Mode modes[] = {{"direct", false, false},
                        {"agg", true, false},
                        {"bb", false, true}};
  const CodecPoint codecs[] = {{"identity", "identity", 0.0},
                               {"lossless", "lossless", 0.0},
                               {"ebl@1e-2", "ebl", 1e-2},
                               {"ebl@1e-4", "ebl", 1e-4},
                               {"ebl@1e-6", "ebl", 1e-6}};

  util::TextTable table({"ranks", "mode", "codec", "raw", "encoded", "ratio",
                         "encode cpu", "perceived mkspn", "sustained mkspn",
                         "critical stage"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_codec_study.csv"));
  csv.header({"ranks", "mode", "codec", "error_bound", "raw_bytes",
              "encoded_bytes", "ratio", "codec_encode_s", "perceived_makespan",
              "sustained_makespan", "perceived_bw", "sustained_bw",
              "critical_stage", "critical_frac", "binding_resource",
              "predicted_2x_relief"});

  bool ok = true;
  bool ebl_wins_somewhere = false;
  bool identity_wins_somewhere = false;
  obs::Tracer row_tracer;  // reset per row: one critical path per config
  for (int ranks : rank_counts) {
    for (const Mode& mode : modes) {
      std::map<std::string, double> makespan;  // codec label -> perceived
      for (const CodecPoint& point : codecs) {
        macsio::Params params;
        params.nprocs = ranks;
        params.num_dumps = 4;
        params.part_size = 1 << 23;  // 8 MiB/task/dump: a real burst
        params.avg_num_parts = 1.0;
        // back-to-back dumps: the makespan is pure I/O + codec cpu, so the
        // compression trade is not diluted by compute windows
        params.compute_time = 0.0;
        params.dataset_growth = 1.02;
        params.aggregators = mode.aggregate ? ranks / kAggFactor : 0;
        params.stage_to_bb = mode.burst_buffer;
        params.codec = point.codec;
        if (point.error_bound > 0) params.codec_error_bound = point.error_bound;
        params.codec_throughput = kCodecThroughput;

        pfs::MemoryBackend backend(false);
        exec::SerialEngine engine(params.nprocs);
        row_tracer = obs::Tracer();
        const obs::Probe probe = ctx.probe(row_tracer);
        const auto stats =
            macsio::run_macsio(engine, params, backend, nullptr, probe);

        std::uint64_t encoded_bytes = 0;  // what travels/lands (data files)
        for (const auto& req : stats.requests) {
          if (req.file.find("/data/") == std::string::npos) continue;
          encoded_bytes += req.bytes;
        }
        const std::uint64_t raw_bytes = stats.codec.total.raw_bytes;
        if (stats.codec.total.encoded_bytes > raw_bytes) {
          std::printf("MISMATCH: %d ranks %s %s: encoded > raw\n", ranks,
                      mode.name, point.label);
          ok = false;
        }
        if (encoded_bytes > raw_bytes) {
          std::printf("MISMATCH: %d ranks %s %s: request bytes exceed raw\n",
                      ranks, mode.name, point.label);
          ok = false;
        }

        pfs::SimFs fs(bench::study_fs_config(ranks, mode.burst_buffer));
        const auto report =
            staging::staging_report(fs.run(stats.requests, probe));
        makespan[point.label] = report.perceived.makespan;
        const obs::CriticalPathReport cp =
            obs::critical_path(row_tracer.spans(), row_tracer.edges());

        table.add_row(
            {std::to_string(ranks), mode.name, point.label,
             util::human_bytes(raw_bytes), util::human_bytes(encoded_bytes),
             util::format_g(stats.codec.total.ratio(), 3),
             util::format_g(stats.codec.total.encode_seconds, 3) + "s",
             util::format_g(report.perceived.makespan, 4) + "s",
             util::format_g(report.sustained.makespan, 4) + "s",
             obs::summarize(cp)});
        csv.field(static_cast<std::int64_t>(ranks))
            .field(std::string(mode.name))
            .field(std::string(point.codec))
            .field(point.error_bound)
            .field(static_cast<std::int64_t>(raw_bytes))
            .field(static_cast<std::int64_t>(encoded_bytes))
            .field(stats.codec.total.ratio())
            .field(stats.codec.total.encode_seconds)
            .field(report.perceived.makespan)
            .field(report.sustained.makespan)
            .field(report.perceived_bandwidth)
            .field(report.sustained_bandwidth)
            .field(cp.critical_stage)
            .field(cp.critical_frac)
            .field(cp.binding_resource)
            .field(bench::predicted_2x_relief(
                row_tracer,
                bench::study_fs_config(ranks, mode.burst_buffer)));
        csv.endrow();
        ctx.row_done(row_tracer);
      }
      // frontier: does some ebl point beat identity here, or lose to it?
      for (const CodecPoint& point : codecs) {
        if (std::string(point.codec) != "ebl") continue;
        if (makespan[point.label] < 0.98 * makespan["identity"])
          ebl_wins_somewhere = true;
        if (makespan[point.label] > 1.02 * makespan["identity"])
          identity_wins_somewhere = true;
      }
    }
  }
  if (!ebl_wins_somewhere) {
    std::printf("MISMATCH: ebl never beats identity — no frontier\n");
    ok = false;
  }
  if (!identity_wins_somewhere) {
    std::printf("MISMATCH: identity never beats ebl — compression looks free\n");
    ok = false;
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: the codec always shrinks the bytes that travel (encoded <=\n"
      "raw), but only wins the makespan where the saved transfer time beats\n"
      "the encode cpu: at small scale the NIC-bound transfer is already\n"
      "cheap and identity stays in front, while the contended OST path at\n"
      "higher rank counts pays seconds per dump and ebl pulls ahead — the\n"
      "frontier AMRIC navigates per dump.\n");
  std::printf("shape checks (encoded <= raw, ebl/identity crossover): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  bench::export_obs(ctx, row_tracer);
  bench::explain_row(ctx, row_tracer,
                     bench::study_fs_config(rank_counts.back(), true));
  return ok ? 0 : 1;
}

/// \file micro_engine_scaling.cpp
/// Engine/backend scaling microbench, two independent sweeps:
///
///  1. Backend contention (ranks {1, 4, 16, 64}): a raw concurrent write
///     storm and a full MIF N-to-N MACSio dump on the counting
///     MemoryBackend, comparing the sharded contention-free backend against
///     a faithful replica of the old design (one global mutex around one
///     std::map). Emits micro_engine_scaling.csv.
///
///  2. Execution-engine scaling (ranks 64 → 131072, and 516,096 with
///     --full): serial vs spmd vs event on three workload shapes — pure
///     engine fabric (spin-up + one barrier), a MIF N-to-N dump, and a
///     fig11-shaped aggregated dump (56-rank groups). Emits
///     BENCH_engine.json (ranks × engine × wall-seconds, sim-ranks/sec plus
///     event-over-serial speedups) so the engine trajectory is recorded as
///     data, not prose. SpmdEngine rows stop at its thread cap and
///     SerialEngine rows at 32k ranks (128 KiB of fiber stack per rank);
///     the event engine runs the whole sweep — that asymmetry is the point.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "pfs/backend.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace amrio;

/// Replica of the pre-refactor MemoryBackend: a single mutex serializes every
/// create/write/close across all ranks. Kept here (not in src/) purely as the
/// bench baseline.
class GlobalMutexBackend final : public pfs::StorageBackend {
 public:
  pfs::FileHandle create(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    const pfs::FileHandle h = next_handle_++;
    open_files_[h] = path;
    files_[path] = Record{};
    return h;
  }
  pfs::FileHandle open_append(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    const pfs::FileHandle h = next_handle_++;
    open_files_[h] = path;
    files_.try_emplace(path);
    return h;
  }
  void write(pfs::FileHandle handle, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_files_.find(handle);
    if (it == open_files_.end())
      throw std::runtime_error("GlobalMutexBackend::write: bad handle");
    files_[it->second].bytes += data.size();
  }
  void close(pfs::FileHandle handle) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_files_.erase(handle) == 0)
      throw std::runtime_error("GlobalMutexBackend::close: bad handle");
  }
  bool exists(const std::string& path) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(path) != 0;
  }
  std::uint64_t size(const std::string& path) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.at(path).bytes;
  }
  std::vector<std::string> list(const std::string& prefix) const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const auto& [path, rec] : files_)
      if (util::starts_with(path, prefix)) out.push_back(path);
    return out;
  }
  std::vector<std::byte> read(const std::string&) const override {
    throw std::runtime_error("GlobalMutexBackend: counting only");
  }

 private:
  struct Record {
    std::uint64_t bytes = 0;
  };
  mutable std::mutex mu_;
  pfs::FileHandle next_handle_ = 1;
  std::map<pfs::FileHandle, std::string> open_files_;
  std::map<std::string, Record> files_;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// N ranks, each appending `writes` chunks of `chunk` bytes into its own
/// file — the N-to-N hot path with all serialization cost exposed.
double write_storm_seconds(pfs::StorageBackend& be, int nranks, int writes,
                           std::size_t chunk) {
  const std::vector<std::byte> payload(chunk, std::byte{0x5a});
  exec::SpmdEngine engine(nranks);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run([&](exec::RankCtx& ctx) {
    pfs::OutFile out(be, "storm/rank_" + std::to_string(ctx.rank()));
    for (int i = 0; i < writes; ++i) out.write(payload);
  });
  return seconds_since(t0);
}

double dump_seconds(pfs::StorageBackend& be, int nranks, int num_dumps,
                    std::uint64_t part_size, double parts_per_rank) {
  macsio::Params params;
  params.nprocs = nranks;
  params.num_dumps = num_dumps;
  params.part_size = part_size;
  params.avg_num_parts = parts_per_rank;
  params.output_dir = "scaling_out";
  exec::SpmdEngine engine(nranks);
  const auto t0 = std::chrono::steady_clock::now();
  macsio::run_macsio(engine, params, be);
  return seconds_since(t0);
}

/// Median of `reps` timed runs of `fn` — wall-clock on an oversubscribed
/// machine is noisy, a single sample is not a measurement.
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) t.push_back(fn());
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

// --- execution-engine sweep --------------------------------------------------

/// The workload shapes the engine sweep times. Each runs the same body on
/// every engine, so the ratio isolates pure scheduling/substrate cost.
enum class Workload { kSpinupBarrier, kMifDump, kAggDump };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kSpinupBarrier: return "spinup_barrier";
    case Workload::kMifDump: return "mif_dump";
    case Workload::kAggDump: return "agg_dump";
  }
  return "?";
}

double engine_workload_seconds(exec::Engine& engine, Workload w, int ranks) {
  switch (w) {
    case Workload::kSpinupBarrier: {
      // Pure engine fabric: per-rank spin-up plus one global barrier. No
      // driver body, so this is the cost an engine *adds* to any study.
      const auto t0 = std::chrono::steady_clock::now();
      engine.run([](exec::RankCtx& ctx) { ctx.barrier(); });
      return seconds_since(t0);
    }
    case Workload::kMifDump:
    case Workload::kAggDump: {
      macsio::Params params;
      params.nprocs = ranks;
      params.num_dumps = 2;
      params.part_size = 2048;
      params.avg_num_parts = 1.0;
      params.output_dir = "scaling_out";
      if (w == Workload::kAggDump)  // fig11 shape: 56-rank node groups
        params.aggregators = std::max(1, ranks / 56);
      pfs::MemoryBackend be(false);
      const auto t0 = std::chrono::steady_clock::now();
      macsio::run_macsio(engine, params, be);
      return seconds_since(t0);
    }
  }
  return 0.0;
}

struct EngineRow {
  Workload workload;
  int ranks;
  exec::EngineKind engine;
  double seconds = 0.0;
  double ranks_per_sec = 0.0;
};

/// Which engines are worth timing at `ranks`: spmd stops at its thread cap,
/// serial at 32k ranks (128 KiB fiber stack each — 4 GiB of stacks there,
/// and the per-rank cost is flat so larger counts add no information).
bool engine_runs_at(exec::EngineKind kind, int ranks) {
  switch (kind) {
    case exec::EngineKind::kSpmd: return ranks <= exec::SpmdEngine::thread_cap();
    case exec::EngineKind::kSerial: return ranks <= 32768;
    case exec::EngineKind::kEvent: return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_bench_args(
      argc, argv, "micro_engine_scaling",
      "engine/backend scaling: sharded vs global-mutex substrate, and "
      "serial vs spmd vs event execution engines");
  bench::banner("Engine scaling — I/O substrate and execution engines",
                "motivation for the unified exec engine (§II, Fig. 3 path)");

  // Write-dense settings: parts big enough that per-write backend cost
  // dominates the per-dump collectives even with heavily oversubscribed
  // threads, so the backend comparison is what the sweep actually measures.
  const int writes = ctx.full ? 60000 : 20000;
  const std::size_t chunk = 256;
  // The dump sweep uses the paper's many-parts-per-task MIF regime (small
  // parts, ~1k parts per rank): every part document is a burst of small
  // backend writes, so the substrate — not bulk formatting — is what the
  // sweep measures. The seed's backend re-walked one global std::map of
  // near-identical paths under one mutex on EVERY one of those writes.
  const int reps = 3;
  const int num_dumps = 32;
  const std::uint64_t part_size = 2048;
  const double parts_per_rank = 1024;

  util::TextTable storm({"ranks", "global-mutex MB/s", "sharded MB/s",
                         "speedup"});
  util::TextTable dumps({"ranks", "global-mutex MB/s", "sharded MB/s",
                         "speedup"});
  util::CsvWriter csv(bench::csv_path(ctx, "micro_engine_scaling.csv"));
  csv.header({"workload", "ranks", "global_mutex_mbps", "sharded_mbps",
              "speedup"});

  for (int ranks : {1, 4, 16, 64}) {
    {
      const double mb =
          static_cast<double>(ranks) * writes * chunk / 1e6;
      const double t_old = median_seconds(reps, [&] {
        GlobalMutexBackend old_be;
        return write_storm_seconds(old_be, ranks, writes, chunk);
      });
      const double t_new = median_seconds(reps, [&] {
        pfs::MemoryBackend new_be(false);
        return write_storm_seconds(new_be, ranks, writes, chunk);
      });
      storm.add_row({std::to_string(ranks), util::format_g(mb / t_old, 4),
                     util::format_g(mb / t_new, 4),
                     util::format_g(t_old / t_new, 3) + "x"});
      csv.row({"write_storm", std::to_string(ranks),
               std::to_string(mb / t_old), std::to_string(mb / t_new),
               std::to_string(t_old / t_new)});
    }
    {
      double mb = 0.0;
      const double t_old = median_seconds(reps, [&] {
        GlobalMutexBackend old_be;
        const double t =
            dump_seconds(old_be, ranks, num_dumps, part_size, parts_per_rank);
        mb = static_cast<double>(old_be.total_bytes()) / 1e6;
        return t;
      });
      const double t_new = median_seconds(reps, [&] {
        pfs::MemoryBackend new_be(false);
        return dump_seconds(new_be, ranks, num_dumps, part_size,
                            parts_per_rank);
      });
      dumps.add_row({std::to_string(ranks), util::format_g(mb / t_old, 4),
                     util::format_g(mb / t_new, 4),
                     util::format_g(t_old / t_new, 3) + "x"});
      csv.row({"mif_dump", std::to_string(ranks), std::to_string(mb / t_old),
               std::to_string(mb / t_new), std::to_string(t_old / t_new)});
    }
  }

  std::printf("raw write storm (%d writes x %zu B per rank, SpmdEngine):\n%s\n",
              writes, chunk, storm.to_string().c_str());
  std::printf("MIF N-to-N dump (run_macsio, %d dumps, part_size %llu, "
              "%.0f parts/rank, median of %d):\n%s\n",
              num_dumps, static_cast<unsigned long long>(part_size),
              parts_per_rank, reps, dumps.to_string().c_str());

  // --- execution-engine sweep: serial vs spmd vs event -----------------------
  std::vector<int> engine_ranks = {64, 512, 4096, 131072};
  if (ctx.full) engine_ranks.push_back(9216 * 56);  // the 516,096-rank case
  const exec::EngineKind kinds[] = {exec::EngineKind::kSerial,
                                    exec::EngineKind::kSpmd,
                                    exec::EngineKind::kEvent};
  const Workload workloads[] = {Workload::kSpinupBarrier, Workload::kMifDump,
                                Workload::kAggDump};

  std::vector<EngineRow> rows;
  util::TextTable engines({"workload", "ranks", "engine", "seconds",
                           "sim-ranks/s"});
  for (const Workload w : workloads) {
    for (const int ranks : engine_ranks) {
      for (const exec::EngineKind kind : kinds) {
        if (!engine_runs_at(kind, ranks)) continue;
        const int engine_reps = ranks <= 4096 ? reps : 1;
        EngineRow row;
        row.workload = w;
        row.ranks = ranks;
        row.engine = kind;
        row.seconds = median_seconds(engine_reps, [&] {
          const auto engine = exec::make_engine(kind, ranks);
          return engine_workload_seconds(*engine, w, ranks);
        });
        row.ranks_per_sec = static_cast<double>(ranks) / row.seconds;
        rows.push_back(row);
        engines.add_row({workload_name(w), std::to_string(ranks),
                         exec::engine_kind_name(kind),
                         util::format_g(row.seconds, 4),
                         util::format_g(row.ranks_per_sec, 5)});
      }
    }
  }
  std::printf("execution engines (same driver body per workload; spmd capped "
              "at %d threads,\nserial at 32768 ranks):\n%s\n",
              exec::SpmdEngine::thread_cap(), engines.to_string().c_str());

  // BENCH_engine.json: the rows plus event-over-serial speedups wherever both
  // engines ran — the trajectory record CI uploads.
  const std::string json_path = bench::csv_path(ctx, "BENCH_engine.json");
  {
    std::ofstream out(json_path);
    util::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.key("bench").value("micro_engine_scaling");
    w.key("mode").value(ctx.full ? "full" : "default");
    w.key("rows").begin_array();
    for (const EngineRow& row : rows) {
      w.begin_object();
      w.key("workload").value(workload_name(row.workload));
      w.key("ranks").value(static_cast<std::int64_t>(row.ranks));
      w.key("engine").value(exec::engine_kind_name(row.engine));
      w.key("seconds").value(row.seconds);
      w.key("sim_ranks_per_sec").value(row.ranks_per_sec);
      w.end_object();
    }
    w.end_array();
    w.key("speedup_event_over_serial").begin_array();
    for (const EngineRow& ev : rows) {
      if (ev.engine != exec::EngineKind::kEvent) continue;
      for (const EngineRow& se : rows) {
        if (se.engine == exec::EngineKind::kSerial &&
            se.workload == ev.workload && se.ranks == ev.ranks) {
          w.begin_object();
          w.key("workload").value(workload_name(ev.workload));
          w.key("ranks").value(static_cast<std::int64_t>(ev.ranks));
          w.key("speedup").value(se.seconds / ev.seconds);
          w.end_object();
        }
      }
    }
    w.end_array();
    w.end_object();
    out << '\n';
  }

  std::printf("CSV: %s\n", bench::csv_path(ctx, "micro_engine_scaling.csv").c_str());
  std::printf("JSON: %s\n", json_path.c_str());
  return 0;
}

/// Ablation: distribution-mapping strategy (round-robin / knapsack / SFC).
/// Fig. 8 shows per-task output imbalance is an AMR load-balancing artifact;
/// this ablation quantifies how much of it each strategy removes — and why
/// per-rank I/O prediction stays hard even with the best balancer (the
/// paper's granularity argument in §IV-A).

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ablate_distribution",
      "ablation: rank-assignment strategy vs per-task I/O imbalance");
  bench::banner("Ablation — DistributionMapping strategy vs per-task imbalance",
                "design choice behind Fig. 8 (paper §IV-A)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  util::TextTable table({"strategy", "level", "max/mean", "gini",
                         "tasks with data"});
  util::CsvWriter csv(bench::csv_path(ctx, "ablate_distribution.csv"));
  csv.header({"strategy", "level", "imbalance", "gini", "tasks_with_data"});

  std::map<std::string, double> finest_imbalance;
  for (auto strategy : {mesh::DistributionStrategy::kRoundRobin,
                        mesh::DistributionStrategy::kKnapsack,
                        mesh::DistributionStrategy::kSfc}) {
    auto config = core::case27(scale);
    config.name = std::string("dist_") + mesh::to_string(strategy);
    config.distribution = strategy;
    const auto run = core::run_case(config);
    const auto last = run.total.steps.back();
    for (int level : iostats::levels_present(run.table)) {
      const auto per_task =
          iostats::per_task_bytes(run.table, last, level, config.nprocs);
      std::vector<double> v;
      int with_data = 0;
      for (auto b : per_task) {
        v.push_back(static_cast<double>(b));
        if (b > 0) ++with_data;
      }
      const double imb = util::imbalance_factor(v);
      table.add_row({mesh::to_string(strategy), "L" + std::to_string(level),
                     util::format_g(imb, 4), util::format_g(util::gini(v), 4),
                     std::to_string(with_data)});
      csv.field(mesh::to_string(strategy))
          .field(static_cast<std::int64_t>(level))
          .field(imb)
          .field(util::gini(v))
          .field(static_cast<std::int64_t>(with_data));
      csv.endrow();
      finest_imbalance[mesh::to_string(strategy)] = imb;  // finest survives
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: knapsack/SFC balance cell counts, yet refined-level bytes\n"
      "remain uneven because grids are created where the physics is — the\n"
      "reason the paper limits MACSio modeling to the per-level granularity.\n");
  const bool ok =
      finest_imbalance["knapsack"] <= finest_imbalance["roundrobin"] + 0.25;
  std::printf("shape check (knapsack no worse than round-robin): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Fig. 10 reproduction: calibrated-MACSio vs simulation per-step output for
/// case4 variants — CFL 0.3 and 0.6, max levels 2 and 4. Shape targets: the
/// proxy tracks each simulation series, and the calibrated dataset_growth
/// increases with both CFL and the number of levels.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig10_model_vs_sim",
      "Fig. 10: calibrated MACSio model vs simulation per-step output");
  bench::banner(
      "Fig. 10 — simulation vs MACSio model per step (cfl x max_level)",
      "paper Fig. 10 (case4 variants: cfl3/cfl6, maxl=2,4)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  struct Variant {
    double cfl;
    int max_level;
  };
  const std::vector<Variant> variants{{0.3, 2}, {0.6, 2}, {0.3, 4}, {0.6, 4}};

  util::TextTable table({"variant", "growth", "f (Eq.3)", "mean |err|",
                         "max |err|"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig10_model_vs_sim.csv"));
  csv.header({"cfl", "max_level", "step", "sim_bytes", "proxy_bytes"});
  model::GrowthGuess guess_table;
  bool ok = true;

  std::map<std::pair<double, int>, double> growths;
  for (const auto& v : variants) {
    auto config = core::case4(scale);
    config.name = "case4_cfl" + util::format_g(v.cfl * 10, 2) + "_maxl" +
                  std::to_string(v.max_level);
    config.cfl = v.cfl;
    config.max_level = v.max_level;
    if (!ctx.full) {
      config.max_step = 120;
      config.plot_int = 6;
    }
    const auto run = core::run_case(config);
    const auto val = core::calibrate_and_validate(run, 1.0, 1.2);
    growths[{v.cfl, v.max_level}] = val.translation.calibration.best_growth;
    guess_table.add(v.cfl, v.max_level,
                    val.translation.calibration.best_growth);

    std::vector<util::Series> series(2);
    series[0].label = "simulation";
    series[1].label = "MACSio model";
    for (std::size_t i = 0; i < val.sim_per_step.size(); ++i) {
      const double step = static_cast<double>(run.total.steps[i]);
      series[0].x.push_back(step);
      series[0].y.push_back(val.sim_per_step[i]);
      series[1].x.push_back(step);
      series[1].y.push_back(val.proxy_per_step[i]);
      csv.field(v.cfl)
          .field(static_cast<std::int64_t>(v.max_level))
          .field(run.total.steps[i])
          .field(val.sim_per_step[i])
          .field(val.proxy_per_step[i]);
      csv.endrow();
    }
    util::PlotOptions opts;
    opts.height = 12;
    opts.title = "cfl " + util::format_g(v.cfl, 2) + ", maxl " +
                 std::to_string(v.max_level) + ": per-step bytes";
    opts.x_label = "timestep";
    opts.y_label = "bytes/step";
    std::printf("%s\n", util::plot_xy(series, opts).c_str());

    table.add_row({"cfl " + util::format_g(v.cfl, 2) + " maxl " +
                       std::to_string(v.max_level),
                   util::format_g(val.translation.calibration.best_growth, 7),
                   util::format_g(val.translation.part_size_fit.f, 4),
                   util::format_g(val.mean_abs_rel_err, 4),
                   util::format_g(val.max_abs_rel_err, 4)});
    if (val.mean_abs_rel_err > 0.25) ok = false;
  }
  std::printf("%s", table.to_string().c_str());

  // paper's Appendix step 4: growth increases with cfl and with levels;
  // allow CFL ties (its effect is secondary) but require the level trend
  const bool level_trend = growths[{0.3, 4}] > growths[{0.3, 2}] - 1e-6 &&
                           growths[{0.6, 4}] > growths[{0.6, 2}] - 1e-6;
  std::printf(
      "\ncalibrated growth: (cfl3,maxl2)=%.5f (cfl6,maxl2)=%.5f "
      "(cfl3,maxl4)=%.5f (cfl6,maxl4)=%.5f\n",
      growths[{0.3, 2}], growths[{0.6, 2}], growths[{0.3, 4}],
      growths[{0.6, 4}]);
  std::printf("growth-guess table interpolation at (cfl=0.45, maxl=3): %.5f\n",
              guess_table.interpolate(0.45, 3));
  ok = ok && level_trend;
  std::printf("shape check (proxy tracks sim; growth rises with levels): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

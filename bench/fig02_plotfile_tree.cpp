/// Fig. 2 reproduction: the Castro plotfile analysis output structure for the
/// Sedov 2D case — per-step directories with Header/job_info metadata,
/// per-level directories with Cell_H metadata, and per-task Cell_D files that
/// exist only where a task owns data.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig02_plotfile_tree", "Fig. 2: Castro plotfile layout");
  bench::banner("Fig. 2 — Castro plotfile output structure",
                "paper Fig. 2 (sedov_2d_cyl_in_cart_plt* tree)");

  core::CaseConfig config;
  config.name = "sedov_2d_cyl_in_cart";
  config.ncell = ctx.full ? 128 : 64;
  config.max_level = 2;
  config.plot_int = 20;
  config.max_step = 20;
  config.nprocs = 4;
  config.max_grid_size = 16;

  pfs::MemoryBackend backend(false);
  const auto run = core::run_case(config, {}, &backend);

  // print the tree exactly as the paper draws it
  std::printf("AMReX Castro Simulation Output (%d tasks)\n", config.nprocs);
  std::string last_dir;
  std::string last_level;
  for (const auto& path : backend.list(run.inputs.plot_file)) {
    const auto segs = util::split(path, '/');
    if (segs[0] != last_dir) {
      std::printf("%s\n", segs[0].c_str());
      last_dir = segs[0];
      last_level.clear();
    }
    if (segs.size() == 2) {
      std::printf("    %-24s %s\n", segs[1].c_str(),
                  util::human_bytes(backend.size(path)).c_str());
    } else if (segs.size() == 3) {
      if (segs[1] != last_level) {
        std::printf("    %s/\n", segs[1].c_str());
        last_level = segs[1];
      }
      std::printf("        %-20s %s\n", segs[2].c_str(),
                  util::human_bytes(backend.size(path)).c_str());
    }
  }

  // the conditional the paper highlights: tasks with no boxes at a level
  // produce no file there
  std::printf("\nper-task file presence by level (plt00020):\n");
  for (int l = 0; l < run.nlevels; ++l) {
    std::printf("  Level_%d: ", l);
    for (int r = 0; r < config.nprocs; ++r) {
      const std::string f = run.inputs.plot_file + "00020/Level_" +
                            std::to_string(l) + "/Cell_D_" +
                            util::zero_pad(static_cast<std::uint64_t>(r), 5);
      std::printf("%s", backend.exists(f) ? "X" : ".");
    }
    std::printf("   (X = file exists for task)\n");
  }

  util::CsvWriter csv(bench::csv_path(ctx, "fig02_plotfile_tree.csv"));
  csv.header({"path", "bytes"});
  for (const auto& path : backend.list(run.inputs.plot_file))
    csv.row({path, std::to_string(backend.size(path))});
  std::printf("\ncsv: %s\n", csv.path().c_str());
  return 0;
}

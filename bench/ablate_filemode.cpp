/// Ablation: parallel file mode — MIF N (one file per task, AMReX's N-to-N
/// default and the paper's configuration), grouped MIF n < N, and SIF (single
/// shared file). Compares file counts, metadata pressure, and the burst
/// timeline each mode produces on the PFS model.

#include <cstdio>

#include "exec/engine.hpp"
#include "bench_common.hpp"
#include "macsio/driver.hpp"
#include "pfs/timeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ablate_filemode",
      "ablation: MIF width / SIF vs files and burst behaviour");
  bench::banner("Ablation — parallel_file_mode: MIF N vs MIF n vs SIF",
                "paper Table II / Listing 1 (MIF nproc) design point");

  const int nprocs = ctx.full ? 64 : 32;
  macsio::Params base;
  base.nprocs = nprocs;
  base.num_dumps = 8;
  base.part_size = 4 << 20;
  base.compute_time = 10.0;

  pfs::SimFsConfig fscfg;
  fscfg.n_ost = 16;
  fscfg.ost_bandwidth = 1e9;
  fscfg.client_bandwidth = 2e9;
  fscfg.mds_latency = 2e-3;  // metadata cost is where file counts bite

  struct Mode {
    std::string label;
    macsio::FileMode mode;
    int mif_files;
  };
  const std::vector<Mode> modes{
      {"MIF N (N-to-N)", macsio::FileMode::kMif, 0},
      {"MIF N/4", macsio::FileMode::kMif, nprocs / 4},
      {"MIF 2", macsio::FileMode::kMif, 2},
      {"SIF", macsio::FileMode::kSif, 0},
  };

  util::TextTable table({"mode", "files", "total bytes", "io makespan/dump",
                         "peak BW", "duty cycle"});
  util::CsvWriter csv(bench::csv_path(ctx, "ablate_filemode.csv"));
  csv.header({"mode", "files", "total_bytes", "busy_time", "peak_bw",
              "duty_cycle"});
  std::map<std::string, double> busy;
  for (const auto& mode : modes) {
    auto params = base;
    params.file_mode = mode.mode;
    params.mif_files = mode.mif_files;
    pfs::MemoryBackend be(false);
    exec::SerialEngine engine(params.nprocs);
    const auto stats = macsio::run_macsio(engine, params, be);
    pfs::SimFs fs(fscfg);
    const auto burst = pfs::burst_stats(fs.run(stats.requests));
    busy[mode.label] = burst.busy_time;
    table.add_row({mode.label, std::to_string(stats.nfiles),
                   util::human_bytes(stats.total_bytes),
                   util::format_g(burst.busy_time / base.num_dumps, 4) + "s",
                   util::format_g(burst.peak_bandwidth / 1e9, 4) + " GB/s",
                   util::format_g(100 * burst.duty_cycle, 3) + "%"});
    csv.field(mode.label)
        .field(stats.nfiles)
        .field(stats.total_bytes)
        .field(burst.busy_time)
        .field(burst.peak_bandwidth)
        .field(burst.duty_cycle);
    csv.endrow();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: N-to-N pays metadata (one create per task per dump) but\n"
      "parallelizes data; narrow MIF and SIF serialize group members behind\n"
      "a baton, stretching each burst — why AMReX defaults to N-to-N and the\n"
      "paper models that mode.\n");
  const bool ok = busy["SIF"] >= busy["MIF N (N-to-N)"];
  std::printf("shape check (SIF bursts at least as long as N-to-N): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Extension: "dynamic" system studies — the use the paper positions the
/// calibrated proxy for ("bandwidth, file system variability, and
/// scalability, prior to running full AMReX-based simulations"). Sweeps the
/// compute/dump duty cycle and the PFS configuration with a calibrated
/// workload and reports burst metrics.

#include <cstdio>

#include "exec/engine.hpp"
#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "pfs/timeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ext_burst_dynamics",
      "extension: dynamic burst/bandwidth studies with the calibrated proxy");
  bench::banner("Extension — dynamic I/O studies on the PFS model",
                "paper §IV-B closing discussion (dynamic/random characteristics)");

  // calibrate once from a small AMR run
  core::CaseConfig config;
  config.name = "dyn";
  config.ncell = ctx.full ? 192 : 96;
  config.max_level = 2;
  config.max_step = 50;
  config.plot_int = 5;
  config.nprocs = 32;
  config.max_grid_size = 32;
  const auto run = core::run_case(config);
  auto v = core::calibrate_and_validate(run, 1.0, 1.2);
  auto params = v.translation.params;
  params.part_size *= 500;  // emulate a paper-scale machine (proxy knob)

  util::TextTable table({"compute_time", "OSTs", "sigma", "duty cycle",
                         "peak BW", "p99 dump stretch"});
  util::CsvWriter csv(bench::csv_path(ctx, "ext_burst_dynamics.csv"));
  csv.header({"compute_time", "osts", "sigma", "duty_cycle", "peak_bw",
              "p99_stretch"});

  std::map<double, double> duty_by_compute;
  for (double compute : {1.0, 5.0, 20.0}) {
    for (int osts : {8, 32}) {
      for (double sigma : {0.0, 0.4}) {
        params.compute_time = compute;
        pfs::MemoryBackend be(false);
        exec::SerialEngine engine(params.nprocs);
        const auto stats = macsio::run_macsio(engine, params, be);
        pfs::SimFsConfig cfg;
        cfg.n_ost = osts;
        cfg.ost_bandwidth = 0.5e9;
        cfg.client_bandwidth = 1e9;
        cfg.variability_sigma = sigma;
        cfg.seed = 99;
        pfs::SimFs fs(cfg);
        const auto results = fs.run(stats.requests);
        const auto burst = pfs::burst_stats(results);
        // stretch: slowest request time / ideal (bytes over min bandwidth)
        std::vector<double> stretch;
        for (const auto& r : results) {
          if (r.bytes == 0) continue;
          const double ideal = static_cast<double>(r.bytes) / 0.5e9;
          stretch.push_back(r.duration() / ideal);
        }
        const double p99 = util::percentile(stretch, 0.99);
        table.add_row({util::format_g(compute, 3) + "s", std::to_string(osts),
                       util::format_g(sigma, 3),
                       util::format_g(100 * burst.duty_cycle, 3) + "%",
                       util::format_g(burst.peak_bandwidth / 1e9, 3) + " GB/s",
                       util::format_g(p99, 4) + "x"});
        csv.field(compute)
            .field(static_cast<std::int64_t>(osts))
            .field(sigma)
            .field(burst.duty_cycle)
            .field(burst.peak_bandwidth)
            .field(p99);
        csv.endrow();
        if (osts == 32 && sigma == 0.0) duty_by_compute[compute] = burst.duty_cycle;
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading: longer compute windows push the workload toward the classic\n"
      "bursty pattern (duty cycle falls); fewer OSTs raise contention stretch;\n"
      "variability fattens the p99 tail — all knobs a co-design study can now\n"
      "turn without queueing on Summit.\n");
  const bool ok = duty_by_compute[20.0] < duty_by_compute[1.0];
  std::printf("shape check (duty cycle falls as compute_time grows): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

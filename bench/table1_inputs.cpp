/// Table I reproduction: the AMReX Castro input parameters varied in the
/// study, parsed from a verbatim Listing-2 inputs file and round-tripped
/// through the typed AmrInputs layer.

#include <cstdio>

#include "amr/inputs.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "table1_inputs", "Table I: Castro input parameter set");
  bench::banner("Table I — AMReX Castro input configuration parameters",
                "paper Table I + Listing 2 (Appendix B)");

  // Parse the paper's Listing 2 baseline as shipped.
  const auto inputs = amr::AmrInputs::sedov_baseline();

  util::TextTable table({"parameter", "description", "baseline value"});
  table.add_row({"amr.max_step", "maximum expected number of steps",
                 std::to_string(inputs.max_step)});
  table.add_row({"amr.n_cell", "number of cells at Level 0 in each direction",
                 std::to_string(inputs.n_cell[0]) + " " +
                     std::to_string(inputs.n_cell[1])});
  table.add_row({"amr.max_level", "maximum level of refinement allowed",
                 std::to_string(inputs.max_level)});
  table.add_row({"amr.plot_int", "frequency of plot outputs",
                 std::to_string(inputs.plot_int)});
  table.add_row({"castro.cfl", "CFL condition", util::format_g(inputs.cfl, 6)});
  std::printf("%s\n", table.to_string().c_str());

  // Show that the full Listing-2 key set parses and round-trips.
  const auto round = amr::AmrInputs::from_inputs(inputs.to_inputs());
  const bool ok = round.max_step == inputs.max_step &&
                  round.n_cell == inputs.n_cell &&
                  round.max_level == inputs.max_level &&
                  round.plot_int == inputs.plot_int && round.cfl == inputs.cfl;
  std::printf("Listing-2 round-trip through the inputs parser: %s\n",
              ok ? "OK" : "MISMATCH");

  util::CsvWriter csv(bench::csv_path(ctx, "table1_inputs.csv"));
  csv.header({"parameter", "baseline"});
  csv.row({"amr.max_step", std::to_string(inputs.max_step)});
  csv.row({"amr.n_cell", std::to_string(inputs.n_cell[0])});
  csv.row({"amr.max_level", std::to_string(inputs.max_level)});
  csv.row({"amr.plot_int", std::to_string(inputs.plot_int)});
  csv.row({"castro.cfl", util::format_g(inputs.cfl, 6)});
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Table II reproduction: the MACSio command line arguments used to model
/// AMReX-Castro outputs, demonstrated by parsing a Listing-1-style invocation
/// and executing it against the counting backend.

#include <cstdio>

#include "exec/engine.hpp"
#include "bench_common.hpp"
#include "macsio/driver.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "table2_macsio_args", "Table II: MACSio argument set");
  bench::banner("Table II — MACSio command line arguments",
                "paper Table II + Listing 1");

  util::TextTable table({"MACSio argument", "description"});
  table.add_row({"interface", "output type hdf5 (h5lite), json (miftmpl), raw"});
  table.add_row({"parallel_file_mode", "File Mode: multiple independent, single"});
  table.add_row({"num_dumps", "number of dumps to marshal (buffer)"});
  table.add_row({"part_size", "per-task mesh part size"});
  table.add_row({"avg_num_parts", "average number of mesh parts per task"});
  table.add_row({"vars_per_part", "number of mesh variables on each part"});
  table.add_row({"compute_time", "rough time between dumps"});
  table.add_row({"meta_size", "additional metadata size per task"});
  table.add_row({"dataset_growth", "multiplier factor for data growth"});
  std::printf("%s\n", table.to_string().c_str());

  // Parse and execute the paper's Listing-1 shaped invocation (values from
  // the case4 calibration in §IV-B).
  const std::vector<std::string> argv_listing1{
      "--interface", "miftmpl", "--parallel_file_mode", "MIF", "8",
      "--num_dumps", "5", "--part_size", "1550000", "--avg_num_parts", "1",
      "--vars_per_part", "1", "--compute_time", "0.1", "--meta_size", "0",
      "--dataset_growth", "1.013075", "--nprocs", "8"};
  const auto params = macsio::Params::from_cli(argv_listing1);
  std::printf("parsed invocation:\n  %s\n\n", params.to_command_line().c_str());

  pfs::MemoryBackend backend(false);
  exec::SerialEngine engine(params.nprocs);
  const auto stats = macsio::run_macsio(engine, params, backend);
  util::TextTable out({"dump", "bytes", "human"});
  for (std::size_t d = 0; d < stats.bytes_per_dump.size(); ++d)
    out.add_row({std::to_string(d), std::to_string(stats.bytes_per_dump[d]),
                 util::human_bytes(stats.bytes_per_dump[d])});
  std::printf("%s", out.to_string().c_str());
  std::printf("total %s across %llu files\n",
              util::human_bytes(stats.total_bytes).c_str(),
              static_cast<unsigned long long>(stats.nfiles));

  util::CsvWriter csv(bench::csv_path(ctx, "table2_macsio_args.csv"));
  csv.header({"dump", "bytes"});
  for (std::size_t d = 0; d < stats.bytes_per_dump.size(); ++d)
    csv.row({std::to_string(d), std::to_string(stats.bytes_per_dump[d])});
  std::printf("csv: %s\n", csv.path().c_str());
  return 0;
}

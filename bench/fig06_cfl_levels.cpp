/// Fig. 6 reproduction: dependency of the cumulative output size on the CFL
/// number and the number of AMR levels for the pivot case4 (paper: 512² L0,
/// 32 tasks on 2 Summit nodes). Shape target: max_level dominates, CFL is a
/// secondary effect.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig06_cfl_levels",
      "Fig. 6: CFL and max_level dependency of cumulative output");
  bench::banner("Fig. 6 — cumulative output vs CFL number and AMR levels",
                "paper Fig. 6 (case4: 512^2 L0, 32 tasks)");

  const double scale = ctx.pick_scale(0.25, 0.5);
  std::vector<util::Series> series;
  util::TextTable table(
      {"cfl", "max_level", "levels", "outputs", "final cumulative bytes"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig06_cfl_levels.csv"));
  csv.header({"cfl", "max_level", "x", "cumulative_bytes"});

  struct Variant {
    double cfl;
    int max_level;
  };
  std::vector<Variant> variants;
  for (double cfl : {0.3, 0.4, 0.5, 0.6})
    for (int maxl : {2, 4}) variants.push_back({cfl, maxl});

  std::map<std::pair<double, int>, double> final_bytes;
  for (const auto& v : variants) {
    auto config = core::case4(scale);
    config.name = "case4_cfl" + util::format_g(v.cfl, 2) + "_maxl" +
                  std::to_string(v.max_level);
    config.cfl = v.cfl;
    config.max_level = v.max_level;
    if (!ctx.full) {  // trim steps to keep the 8-run sweep quick
      config.max_step = 120;
      config.plot_int = 6;
    }
    const auto run = core::run_case(config);
    series.push_back(util::Series{config.name, run.total.x, run.total.y});
    table.add_row({util::format_g(v.cfl, 2), std::to_string(v.max_level),
                   std::to_string(run.nlevels),
                   std::to_string(run.total.steps.size()),
                   util::format_g(run.total.y.back(), 5)});
    final_bytes[{v.cfl, v.max_level}] = run.total.y.back();
    for (std::size_t i = 0; i < run.total.x.size(); ++i) {
      csv.field(v.cfl)
          .field(static_cast<std::int64_t>(v.max_level))
          .field(run.total.x[i])
          .field(run.total.y[i]);
      csv.endrow();
    }
  }

  util::PlotOptions opts;
  opts.height = 22;
  opts.title = "cumulative output size vs x, by (cfl, max_level)";
  opts.x_label = "output_counter * ncells";
  opts.y_label = "bytes";
  std::printf("%s\n", util::plot_xy(series, opts).c_str());
  std::printf("%s", table.to_string().c_str());

  // Shape targets (paper: "while the CFL number has some influence ... the
  // number of AMR levels has a larger effect"):
  double cfl_effect = 0.0;
  double level_effect = 0.0;
  for (int maxl : {2, 4}) {
    const double lo = final_bytes[{0.3, maxl}];
    const double hi = final_bytes[{0.6, maxl}];
    cfl_effect = std::max(cfl_effect, std::abs(hi - lo) / lo);
  }
  for (double cfl : {0.3, 0.6}) {
    const double lo = final_bytes[{cfl, 2}];
    const double hi = final_bytes[{cfl, 4}];
    level_effect = std::max(level_effect, std::abs(hi - lo) / lo);
  }
  std::printf("\nmax relative effect of CFL (0.3→0.6): %.1f%%\n",
              100 * cfl_effect);
  std::printf("max relative effect of max_level (2→4): %.1f%%\n",
              100 * level_effect);
  const bool ok = level_effect > cfl_effect;
  std::printf("shape check (levels dominate CFL): %s\n", ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

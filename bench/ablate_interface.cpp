/// Ablation: MACSio output interface (miftmpl json vs h5lite binary vs raw).
/// The paper attributes the Eq. (3) correction factor f to "the difference in
/// nature of the MACSio json-based output and AMReX output file formats";
/// this ablation shows exactly how f moves when the interface changes.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "macsio/interfaces.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "ablate_interface",
      "ablation: output interface vs Eq. (3) correction factor");
  bench::banner("Ablation — MACSio interface vs Eq. (3) correction factor f",
                "paper Eq. (3) discussion (json vs binary formats)");

  // one reference AMR run to fit against
  core::CaseConfig config;
  config.name = "iface_ref";
  config.ncell = ctx.full ? 256 : 128;
  config.max_level = 2;
  config.max_step = 10;
  config.plot_int = 10;
  config.nprocs = 16;
  config.max_grid_size = config.ncell / 8;
  const auto run = core::run_case(config);
  const double target = run.total.per_step.front();
  std::printf("reference first output: %s (%d^2 L0, %d levels, %d ranks)\n\n",
              util::format_g(target, 6).c_str(), config.ncell, run.nlevels,
              config.nprocs);

  util::TextTable table({"interface", "bytes per raw double", "part_size",
                         "Eq.3 f", "fit rel err"});
  util::CsvWriter csv(bench::csv_path(ctx, "ablate_interface.csv"));
  csv.header({"interface", "part_size", "f", "rel_err"});

  std::map<macsio::Interface, double> fs;
  for (auto iface : {macsio::Interface::kMiftmpl, macsio::Interface::kH5Lite,
                     macsio::Interface::kRaw}) {
    macsio::Params base = model::static_translation(run.inputs);
    base.interface = iface;
    const auto fit = model::fit_part_size(base, target, run.inputs.ncells0());
    fs[iface] = fit.f;
    // serialized bytes per raw 8-byte double for this interface
    const auto plugin = macsio::make_interface(iface);
    const auto spec = macsio::make_part_spec(800000, 1);
    const double per_double =
        static_cast<double>(plugin->task_doc_bytes(spec, 0, 0, 1, 0)) /
        static_cast<double>(spec.total_values());
    table.add_row({macsio::to_string(iface), util::format_g(per_double, 4),
                   std::to_string(fit.part_size), util::format_g(fit.f, 5),
                   util::format_g(fit.rel_error, 3)});
    csv.field(macsio::to_string(iface))
        .field(fit.part_size)
        .field(fit.f)
        .field(fit.rel_error);
    csv.endrow();
  }
  std::printf("%s", table.to_string().c_str());

  const double ratio =
      fs[macsio::Interface::kRaw] / fs[macsio::Interface::kMiftmpl];
  std::printf(
      "\nf(raw)/f(json) = %.2f — the json interface needs a ~3x smaller\n"
      "part_size request because each double serializes to 24 text bytes;\n"
      "with a binary interface f converges toward the pure variable-count\n"
      "ratio. This is the format effect the paper folds into f ≈ 23-25.\n",
      ratio);
  const bool ok = ratio > 2.5 && ratio < 3.5;
  std::printf("shape check (json inflation ≈ 3x): %s\n", ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Fig. 5 reproduction: cumulative output size per output step as a function
/// of the cumulative number of output cells (Eqs. 1–2), across a sweep of
/// Sedov cases — near-linear cases plus super-linear deviations from the
/// AMR levels, spanning decades on both (log) axes.

#include <cstdio>

#include "bench_common.hpp"
#include "core/amrio.hpp"
#include "model/regression.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  const auto ctx = bench::parse_bench_args(
      argc, argv, "fig05_cumulative_sweep",
      "Fig. 5: cumulative output vs cumulative cells (log-log)");
  bench::banner(
      "Fig. 5 — cumulative output size vs x = output_counter * ncells",
      "paper Fig. 5 (Eqs. 1-2), log-log multi-case sweep");

  // A spread of cases: mesh sizes over decades, with and without deep AMR.
  std::vector<core::CaseConfig> cases;
  const int big = ctx.full ? 256 : 128;
  for (int ncell : {32, 64, big}) {
    for (int max_level : {0, 2, 3}) {
      core::CaseConfig c;
      c.name = "n" + std::to_string(ncell) + "_l" + std::to_string(max_level);
      c.ncell = ncell;
      c.max_level = max_level;
      c.max_step = 40;
      c.plot_int = 4;
      c.cfl = 0.5;
      c.nprocs = std::max(1, ncell * ncell / 4096);
      c.max_grid_size = std::max(16, ncell / 4);
      cases.push_back(c);
    }
  }
  std::printf("running %zu cases...\n\n", cases.size());
  const auto runs = core::run_campaign(cases);

  std::vector<util::Series> series;
  util::TextTable table({"case", "levels", "x range", "cumulative bytes",
                         "log-log slope", "R² vs linear"});
  util::CsvWriter csv(bench::csv_path(ctx, "fig05_cumulative_sweep.csv"));
  csv.header({"case", "x", "cumulative_bytes", "per_step_bytes"});
  for (const auto& run : runs) {
    series.push_back(util::Series{run.config.name, run.total.x, run.total.y});
    for (std::size_t i = 0; i < run.total.x.size(); ++i) {
      csv.field(run.config.name)
          .field(run.total.x[i])
          .field(run.total.y[i])
          .field(run.total.per_step[i]);
      csv.endrow();
    }
    // classify linear vs super-linear as the paper's regression step does
    const auto power = model::fit_power(run.total.x, run.total.y);
    const auto lin = model::fit_linear(run.total.x, run.total.y);
    table.add_row({run.config.name, std::to_string(run.nlevels),
                   util::format_g(run.total.x.front(), 3) + " - " +
                       util::format_g(run.total.x.back(), 3),
                   util::format_g(run.total.y.back(), 4),
                   util::format_g(power.b, 4), util::format_g(lin.r2, 5)});
  }

  util::PlotOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  opts.height = 24;
  opts.title = "cumulative output size [bytes] vs x (log-log)";
  opts.x_label = "output_counter * ncells";
  opts.y_label = "bytes";
  std::printf("%s\n", util::plot_xy(series, opts).c_str());
  std::printf("%s", table.to_string().c_str());

  // shape targets: single-level cases are linear in the output counter
  // (slope ~1, R²~1); deep-AMR cases deviate super-linearly (slope > 1)
  bool ok = true;
  for (const auto& run : runs) {
    const auto power = model::fit_power(run.total.x, run.total.y);
    if (run.config.max_level == 0 && std::abs(power.b - 1.0) > 0.05) ok = false;
    if (run.config.max_level >= 2 && power.b < 1.02) ok = false;
  }
  std::printf("\nshape check (L0-only slope≈1; AMR cases slope>1): %s\n",
              ok ? "OK" : "MISMATCH");
  std::printf("csv: %s\n", csv.path().c_str());
  return ok ? 0 : 1;
}

/// Google-benchmark microbenchmarks for the substrates: box algebra, Fab
/// copies, clustering, FAB serialization, MACSio sizing, PFS event simulation,
/// and the calibration objective — the hot paths of the reproduction.

#include <benchmark/benchmark.h>

#include "amr/cluster.hpp"
#include "macsio/interfaces.hpp"
#include "mesh/distribution.hpp"
#include "mesh/fab.hpp"
#include "model/calibrate.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "plotfile/fab_io.hpp"
#include "util/rng.hpp"

namespace m = amrio::mesh;

static void BM_BoxIntersect(benchmark::State& state) {
  const m::Box a(0, 0, 255, 255);
  const m::Box b(128, 128, 383, 383);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
}
BENCHMARK(BM_BoxIntersect);

static void BM_BoxArrayMaxSize(benchmark::State& state) {
  const m::BoxArray ba(m::Box(0, 0, 1023, 1023));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ba.max_size(static_cast<int>(state.range(0)), 8));
  }
}
BENCHMARK(BM_BoxArrayMaxSize)->Arg(32)->Arg(128);

static void BM_FabCopyIntersection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  m::Fab src(m::Box(0, 0, n - 1, n - 1), 4);
  m::Fab dst(m::Box(n / 2, n / 2, n + n / 2 - 1, n + n / 2 - 1), 4);
  src.set_val(1.0);
  for (auto _ : state) {
    dst.copy_from(src, 0, 0, 4);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(state.iterations() * (n / 2) * (n / 2) * 4 * 8);
}
BENCHMARK(BM_FabCopyIntersection)->Arg(64)->Arg(256);

static void BM_DistributionKnapsack(benchmark::State& state) {
  std::vector<m::Box> boxes;
  amrio::util::Xoshiro256 rng(1);
  for (int i = 0; i < 256; ++i) {
    const int s = 8 + static_cast<int>(rng.uniform_int(56));
    const int x = static_cast<int>(rng.uniform_int(2048));
    const int y = static_cast<int>(rng.uniform_int(2048));
    boxes.emplace_back(x, y, x + s, y + s);
  }
  const m::BoxArray ba(boxes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m::DistributionMapping::make(
        ba, 64, m::DistributionStrategy::kKnapsack));
  }
}
BENCHMARK(BM_DistributionKnapsack);

static void BM_BergerRigoutsos(benchmark::State& state) {
  // annulus of tags like a Sedov front
  std::vector<m::IntVect> tags;
  for (int j = 0; j < 256; ++j) {
    for (int i = 0; i < 256; ++i) {
      const double r = std::hypot(i - 128.0, j - 128.0);
      if (r > 80 && r < 90) tags.push_back({i, j});
    }
  }
  for (auto _ : state) {
    auto copy = tags;
    benchmark::DoNotOptimize(amrio::amr::berger_rigoutsos(std::move(copy), 0.7, 4));
  }
}
BENCHMARK(BM_BergerRigoutsos);

static void BM_FabSerialize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  m::Fab fab(m::Box(0, 0, n - 1, n - 1), 8);
  amrio::pfs::MemoryBackend be(false);
  for (auto _ : state) {
    amrio::pfs::OutFile out(be, "fab");
    benchmark::DoNotOptimize(amrio::plotfile::write_fab(out, fab, fab.box()));
  }
  state.SetBytesProcessed(state.iterations() * fab.byte_size());
}
BENCHMARK(BM_FabSerialize)->Arg(64)->Arg(256);

static void BM_MacsioTaskDocBytes(benchmark::State& state) {
  const auto iface = amrio::macsio::make_interface(
      amrio::macsio::Interface::kMiftmpl);
  const auto spec = amrio::macsio::make_part_spec(
      static_cast<std::uint64_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(iface->task_doc_bytes(spec, 0, 0, 1, 0));
  }
}
BENCHMARK(BM_MacsioTaskDocBytes)->Arg(100000)->Arg(10000000);

static void BM_SimFsEventLoop(benchmark::State& state) {
  amrio::pfs::SimFsConfig cfg;
  cfg.n_ost = 32;
  cfg.variability_sigma = 0.2;
  std::vector<amrio::pfs::IoRequest> reqs;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    reqs.push_back({i % 64, 0.01 * i, "f" + std::to_string(i), 16 << 20});
  for (auto _ : state) {
    amrio::pfs::SimFs fs(cfg);
    benchmark::DoNotOptimize(fs.run(reqs));
  }
}
BENCHMARK(BM_SimFsEventLoop)->Arg(256)->Arg(1024);

static void BM_CalibrationObjective(benchmark::State& state) {
  amrio::macsio::Params p;
  p.nprocs = 32;
  p.part_size = 1550000;
  p.num_dumps = 20;
  p.dataset_growth = 1.013;
  for (auto _ : state) {
    benchmark::DoNotOptimize(amrio::model::macsio_per_dump_bytes(p));
  }
}
BENCHMARK(BM_CalibrationObjective);

BENCHMARK_MAIN();

#pragma once
/// \file bench_common.hpp
/// Shared plumbing for the figure/table reproduction benches: output
/// directory handling, CSV emission, and the `--full` switch that moves a
/// bench from laptop scale toward paper scale.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/report.hpp"
#include "exec/engine.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/span.hpp"
#include "obs/whatif.hpp"
#include "pfs/simfs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/path.hpp"

namespace amrio::bench {

struct BenchContext {
  bool full = false;       ///< --full: run closer to paper scale
  double scale = 0.0;      ///< explicit --scale overrides presets
  std::string out_dir = "bench_results";
  /// --engine: execution engine for any proxy replays the bench performs
  /// (serial | spmd | event). Serial matches historical bench behavior;
  /// event unlocks machine-scale rank counts.
  exec::EngineKind engine = exec::EngineKind::kSerial;
  /// --trace_out: Chrome-trace/Perfetto JSON. Benches trace one study row at
  /// a time (so each row's critical path is clean); by default the *last*
  /// row's trace is written here. A `%d` in the path turns it into a per-row
  /// template (`trace_%d.json` → trace_0.json, trace_1.json, ...), and
  /// --trace_row K writes exactly row K (0-based) instead of the last.
  std::string trace_out;
  /// --trace_row: which 0-based study row --trace_out captures (-1 = the
  /// default last-row behavior). Ignored when --trace_out has a %d template.
  int trace_row = -1;
  /// --metrics_out: metrics snapshot accumulated across every row (".csv"
  /// suffix selects flat CSV, anything else pretty JSON).
  std::string metrics_out;
  /// --explain: print the predictive bottleneck report (per-resource
  /// what-if makespans at 1.5x/2x relief and shadow prices) for the last
  /// study row, mirroring the --trace_out last-row default.
  bool explain = false;
  /// --explain_out: also write that report as JSON (implies --explain).
  std::string explain_out;
  /// --jobs: campaign executor worker threads (1 = inline, no threads).
  int jobs = 1;
  /// --cache: JSON result-cache path for campaign sweeps — loaded before
  /// the run, saved after, so a re-run in a later process hits warm.
  std::string cache_path;
  /// --predict: fit campaign::PredictService over the executed cells and
  /// print a held-out what-if answer with its calibration error.
  bool predict = false;
  /// Shared registry behind probe(); counters accumulate across rows.
  std::shared_ptr<obs::MetricsRegistry> metrics =
      std::make_shared<obs::MetricsRegistry>();

  double pick_scale(double dflt, double full_scale) const {
    if (scale > 0.0) return scale;
    return full ? full_scale : dflt;
  }

  std::unique_ptr<exec::Engine> make_engine(int nranks) const {
    return exec::make_engine(engine, nranks);
  }

  /// Probe for one study row: the caller owns the row's tracer (fresh per
  /// row, so its spans form exactly one critical path), the context owns the
  /// accumulating metrics registry.
  obs::Probe probe(obs::Tracer& row_tracer) const {
    obs::Probe p;
    p.tracer = &row_tracer;
    p.metrics = metrics.get();
    return p;
  }

  /// True when --trace_out is written per row by row_done() — a %d template
  /// or an explicit --trace_row — rather than last-row-wins by export_obs().
  bool per_row_trace() const {
    return !trace_out.empty() &&
           (trace_out.find("%d") != std::string::npos || trace_row >= 0);
  }

  /// --trace_out with its %d marker (if any) replaced by `row`.
  std::string row_trace_path(int row) const {
    std::string p = trace_out;
    const auto pos = p.find("%d");
    if (pos != std::string::npos) p.replace(pos, 2, std::to_string(row));
    return p;
  }

  /// Benches call this once per completed study row, passing the row's
  /// tracer. Handles per-row trace selection: with a %d template every row
  /// is written to its own file; with --trace_row K only row K is written.
  /// Without either this is a counter bump and export_obs() keeps the
  /// historical default (the last row's tracer, passed by the bench).
  void row_done(const obs::Tracer& row_tracer) const {
    const int row = row_index_++;
    if (trace_out.empty()) return;
    const bool tmpl = trace_out.find("%d") != std::string::npos;
    if (tmpl) {
      const std::string path = row_trace_path(row);
      obs::export_trace(path, row_tracer);
      std::printf("trace: %s (row %d)\n", path.c_str(), row);
    } else if (trace_row >= 0 && row == trace_row) {
      obs::export_trace(trace_out, row_tracer);
      std::printf("trace: %s (row %d)\n", trace_out.c_str(), row);
    }
  }

 private:
  mutable int row_index_ = 0;  ///< rows completed; advanced by row_done()
};

inline BenchContext parse_bench_args(int argc, char** argv,
                                     const std::string& name,
                                     const std::string& what) {
  util::ArgParser cli(name, what);
  cli.add_flag("full", "run closer to paper scale (slower)");
  cli.add_option("scale", "explicit mesh scale in (0,1]", 1);
  cli.add_option("out", "output directory for CSV", 1,
                 std::string("bench_results"));
  cli.add_option("engine", "execution engine: serial | spmd | event", 1,
                 std::string("serial"));
  cli.add_option("trace_out",
                 "Chrome-trace JSON (default: last study row; %d in the "
                 "path = one file per row)",
                 1, std::string(""));
  cli.add_option("trace_row",
                 "0-based study row --trace_out captures (default: last)", 1,
                 std::string("-1"));
  cli.add_option("metrics_out", "metrics snapshot (JSON, or CSV by suffix)", 1,
                 std::string(""));
  cli.add_flag("explain",
               "print the predictive bottleneck report (what-if makespans "
               "at 1.5x/2x relief, shadow prices) for the last study row");
  cli.add_option("explain_out",
                 "write the last row's explain report as JSON (implies "
                 "--explain)",
                 1, std::string(""));
  cli.add_option("jobs", "campaign worker threads (1 = inline)", 1,
                 std::string("1"));
  cli.add_option("cache", "campaign JSON result-cache path", 1,
                 std::string(""));
  cli.add_flag("predict",
               "fit the campaign predict service and answer a held-out "
               "what-if query (campaign benches)");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.flag("help")) {
    std::printf("%s", cli.usage().c_str());
    std::exit(0);
  }
  BenchContext ctx;
  ctx.full = cli.flag("full");
  ctx.engine = exec::engine_kind_from_name(cli.get("engine"));
  ctx.scale = cli.get_double_or("scale", 0.0);
  if (ctx.scale == 0.0) {
    if (const char* env = std::getenv("AMRIO_SCALE")) {
      const double v = std::atof(env);
      if (v > 0.0 && v <= 1.0) ctx.scale = v;
    }
  }
  ctx.out_dir = cli.get("out");
  ctx.trace_out = cli.get("trace_out");
  ctx.trace_row = cli.get_int_or("trace_row", -1);
  ctx.metrics_out = cli.get("metrics_out");
  ctx.explain_out = cli.get("explain_out");
  ctx.explain = cli.flag("explain") || !ctx.explain_out.empty();
  ctx.jobs = cli.get_int_or("jobs", 1);
  ctx.cache_path = cli.get("cache");
  ctx.predict = cli.flag("predict");
  util::make_dirs(ctx.out_dir);
  return ctx;
}

/// Write the observability artifacts requested on the command line:
/// `tracer` (the final study row's — the documented --trace_out default) to
/// --trace_out and the context's accumulated metrics to --metrics_out.
/// When row_done() already wrote the trace (a %d template or --trace_row),
/// only the metrics are written here. No-op for unset paths.
inline void export_obs(const BenchContext& ctx, const obs::Tracer& tracer) {
  if (!ctx.trace_out.empty() && !ctx.per_row_trace()) {
    obs::export_trace(ctx.trace_out, tracer);
    std::printf("trace: %s\n", ctx.trace_out.c_str());
  }
  if (!ctx.metrics_out.empty()) {
    obs::export_metrics(ctx.metrics_out, ctx.metrics->snapshot());
    std::printf("metrics: %s\n", ctx.metrics_out.c_str());
  }
}

inline std::string csv_path(const BenchContext& ctx, const std::string& name) {
  return util::path_join(ctx.out_dir, name);
}

/// The relief knobs matching one SimFs configuration — the rates the
/// standard what-if scenarios need to compute effective service scales.
inline obs::ReliefKnobs relief_knobs(const pfs::SimFsConfig& cfg) {
  obs::ReliefKnobs knobs;
  knobs.ost_bandwidth = cfg.ost_bandwidth;
  knobs.client_bandwidth = cfg.client_bandwidth;
  knobs.drain_bandwidth = cfg.bb.drain_bandwidth;
  return knobs;
}

/// The `predicted_2x_relief` study column: the best single-resource 2x
/// what-if over one row's spans, as "resource:seconds" (e.g. "ost:1.234").
/// "none" when no relief moves the makespan (untagged or empty trace).
inline std::string predicted_2x_relief(const obs::Tracer& row_tracer,
                                       const pfs::SimFsConfig& cfg) {
  const auto spans = row_tracer.spans();
  const auto edges = row_tracer.edges();
  std::string best = "none";
  double best_makespan = 0.0;
  double baseline = 0.0;
  for (const obs::Scenario& sc :
       obs::standard_scenarios(2.0, relief_knobs(cfg))) {
    const obs::WhatIfResult r = obs::what_if(spans, edges, sc);
    baseline = r.baseline_makespan;
    if (best == "none" || r.predicted_makespan < best_makespan) {
      best_makespan = r.predicted_makespan;
      best = sc.resource;
    }
  }
  if (best == "none" || best_makespan >= baseline - 1e-12) return "none";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%.6f", best.c_str(), best_makespan);
  return buf;
}

/// --explain / --explain_out for one study row (benches pass the last row,
/// mirroring the --trace_out default). Benches run no utilization ledger,
/// so the report's utilization column stays zero; the what-if predictions
/// and shadow prices are the payload.
inline void explain_row(const BenchContext& ctx, const obs::Tracer& row_tracer,
                        const pfs::SimFsConfig& cfg) {
  if (!ctx.explain) return;
  const obs::ExplainReport rep =
      obs::explain(row_tracer.spans(), row_tracer.edges(),
                   obs::UtilizationReport{}, relief_knobs(cfg));
  std::printf("%s", obs::explain_table(rep).c_str());
  if (!ctx.explain_out.empty()) {
    obs::export_explain(ctx.explain_out, rep);
    std::printf("explain: %s\n", ctx.explain_out.c_str());
  }
}

/// Reference PFS + burst-buffer model shared by the staging and codec
/// extension studies — delegates to the campaign layer's single definition
/// so bench CSVs and campaign results stay cross-comparable.
inline pfs::SimFsConfig study_fs_config(int ranks, bool burst_buffer) {
  return campaign::reference_fs_config(ranks, burst_buffer);
}

/// The deterministic-row helper for all campaign output: write the
/// canonical campaign CSV (rows sorted by cell name, virtual-clock columns
/// only — never wall-clock, never cache-hit bits) and return its path.
/// Every bench that emits campaign rows goes through this, so
/// tools/bench_diff.py-style artifact diffs stay clean by construction.
inline std::string campaign_csv(const BenchContext& ctx,
                                const std::string& name,
                                const std::vector<campaign::CellConfig>& cells,
                                const std::vector<campaign::CellOutcome>& outcomes) {
  util::CsvWriter csv(csv_path(ctx, name));
  campaign::write_csv(csv, cells, outcomes);
  return csv.path();
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace amrio::bench

/// \file sedov_blast.cpp
/// The Castro-like application: reads an AMReX-style inputs file (the format
/// of the paper's Listing 2), runs the Sedov AMR simulation, writes N-to-N
/// plotfiles to a real directory tree, and prints the per-(step, level, task)
/// output characterization the paper derives from its Summit runs.
///
///   usage: sedov_blast [inputs-file] [--out dir] [--memory]
///
/// With --memory the plotfiles go to the in-memory counting backend instead
/// of disk (useful for large meshes).

#include <cstdio>

#include "core/amrio.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  util::ArgParser cli("sedov_blast",
                      "mini-Castro: Sedov blast with AMR and N-to-N plotfiles");
  cli.add_option("out", "output directory for plotfiles", 1,
                 std::string("sedov_out"));
  cli.add_flag("memory", "write to the in-memory counting backend");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.flag("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  amr::AmrInputs inputs;
  if (!cli.positional().empty()) {
    std::printf("reading inputs from %s\n", cli.positional().front().c_str());
    inputs = amr::AmrInputs::from_file(cli.positional().front());
  } else {
    std::printf("no inputs file given; using the Listing-2 baseline at 64^2\n");
    inputs = amr::AmrInputs::sedov_baseline();
    inputs.n_cell = {64, 64};
    inputs.max_step = 60;
    inputs.plot_int = 10;
    inputs.max_grid_size = 32;
    inputs.sedov_r_init = 0.05;
    inputs.stop_time = 100.0;
    inputs.nprocs = 8;
  }
  inputs.validate();

  std::unique_ptr<pfs::StorageBackend> backend;
  if (cli.flag("memory")) {
    backend = std::make_unique<pfs::MemoryBackend>(false);
    std::printf("backend: in-memory (counting)\n");
  } else {
    backend = std::make_unique<pfs::PosixBackend>(cli.get("out"));
    std::printf("backend: POSIX at %s/\n", cli.get("out").c_str());
  }

  iostats::TraceRecorder trace;
  util::WallTimer timer;
  amr::AmrCore core(inputs);
  core.run([&](const amr::AmrCore& c, std::int64_t step, double time) {
    core::write_plot_for(c, step, time, *backend, &trace);
    std::printf("  wrote %s at t=%.5e\n", c.plotfile_name(step).c_str(), time);
  });
  std::printf("\nran %lld steps to t=%.5e in %.2fs; hierarchy: ",
              static_cast<long long>(core.step()), core.time(),
              timer.elapsed());
  for (int l = 0; l < core.num_levels(); ++l)
    std::printf("L%d=%lld cells ", l,
                static_cast<long long>(core.level(l).state.num_pts()));
  std::printf("\n\n");

  // Characterize what was written, exactly as the paper's §IV-A tables do.
  const auto scan = plotfile::scan_plotfiles(*backend, inputs.plot_file);
  const auto series = iostats::cumulative_series(scan.table, inputs.ncells0());
  util::TextTable table({"output step", "bytes this step", "cumulative",
                         "finest-level imbalance"});
  const auto levels = iostats::levels_present(scan.table);
  const int finest = levels.empty() ? 0 : levels.back();
  for (std::size_t i = 0; i < series.steps.size(); ++i) {
    table.add_row(
        {std::to_string(series.steps[i]),
         util::human_bytes(static_cast<std::uint64_t>(series.per_step[i])),
         util::human_bytes(static_cast<std::uint64_t>(series.y[i])),
         util::format_g(iostats::task_imbalance(scan.table, series.steps[i],
                                                finest, inputs.nprocs),
                        4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total: %s in %llu files across %zu plotfiles\n",
              util::human_bytes(scan.total_bytes).c_str(),
              static_cast<unsigned long long>(scan.nfiles),
              scan.plotfile_dirs.size());
  return 0;
}

/// \file macsio_proxy.cpp
/// The MACSio-compatible proxy I/O executable — accepts the paper's Table II
/// argument set (Listing-1 invocations work verbatim, minus jsrun) and runs
/// the dump loop over virtual ranks. --engine picks the execution substrate:
/// serial fibers (default), spmd OS threads through the simulated MPI layer
/// (including MIF baton-passing), or the discrete-event engine for
/// machine-scale rank counts (--engine event handles 100k+ virtual ranks).
///
///   macsio_proxy --interface miftmpl --parallel_file_mode MIF 8 \
///     --num_dumps 20 --part_size 1550000 --avg_num_parts 1 \
///     --vars_per_part 1 --compute_time 0.5 --meta_size 0 \
///     --dataset_growth 1.013075 --nprocs 8 --out macsio_run
///
/// Observability surface: --trace_out (buffered Chrome-trace export, byte
/// identical across engines), --trace_sample N (streaming bounded-memory
/// export keeping N representative ranks — the machine-scale path),
/// --metrics_out, --critical_path, --util_out (per-resource utilization
/// ledger), --prof_out (host-side self-profiling of the engine itself),
/// --explain / --explain_out (predictive bottleneck report: span-DAG slack,
/// per-resource what-if makespans at 1.5x/2x relief, shadow prices).
///
/// Campaign surface: --campaign sweeps the configuration through the sharded
/// campaign executor (--jobs worker threads, --cache persistent result
/// cache, --campaign_csv canonical CSV) and --predict N answers a
/// dump/restart-time what-if at a never-simulated rank count from the
/// calibrated Eq. 3-style fit.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "campaign/predict.hpp"
#include "campaign/report.hpp"
#include "core/proxy_study.hpp"
#include "exec/engine.hpp"
#include "iostats/aggregate.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"
#include "obs/span.hpp"
#include "obs/stream.hpp"
#include "obs/whatif.hpp"
#include "pfs/timeline.hpp"
#include "staging/aggregator.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  std::vector<std::string> args;
  exec::EngineKind engine_kind = exec::EngineKind::kSerial;
  bool to_disk = false;
  std::string out_root = "macsio_run";
  std::string trace_out;
  std::string metrics_out;
  std::string util_out;
  std::string prof_out;
  std::string explain_out;
  int trace_sample = 0;
  bool want_critical = false;
  bool want_explain = false;
  bool no_approx_cp = false;
  bool campaign_mode = false;
  int jobs = 1;
  std::string cache_path;
  std::string campaign_csv;
  int predict_ranks = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--spmd") {  // legacy alias for --engine spmd
      engine_kind = exec::EngineKind::kSpmd;
    } else if (a == "--engine" && i + 1 < argc) {
      try {
        engine_kind = exec::engine_kind_from_name(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
        return 2;
      }
    } else if (a == "--disk") {
      to_disk = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_root = argv[++i];
    } else if (a == "--trace_out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--trace_sample" && i + 1 < argc) {
      trace_sample = std::atoi(argv[++i]);
      if (trace_sample < 0) {
        std::fprintf(stderr, "macsio_proxy: --trace_sample must be >= 0\n");
        return 2;
      }
    } else if (a == "--metrics_out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--util_out" && i + 1 < argc) {
      util_out = argv[++i];
    } else if (a == "--prof_out" && i + 1 < argc) {
      prof_out = argv[++i];
    } else if (a == "--critical_path") {
      want_critical = true;
    } else if (a == "--no_approx_critical_path") {
      no_approx_cp = true;
    } else if (a == "--explain") {
      want_explain = true;
    } else if (a == "--explain_out" && i + 1 < argc) {
      explain_out = argv[++i];
      want_explain = true;
    } else if (a == "--campaign") {
      campaign_mode = true;
    } else if (a == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "macsio_proxy: --jobs must be >= 1\n");
        return 2;
      }
    } else if (a == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (a == "--campaign_csv" && i + 1 < argc) {
      campaign_csv = argv[++i];
      campaign_mode = true;
    } else if (a == "--predict" && i + 1 < argc) {
      predict_ranks = std::atoi(argv[++i]);
      if (predict_ranks < 1) {
        std::fprintf(stderr, "macsio_proxy: --predict needs a rank count\n");
        return 2;
      }
      campaign_mode = true;
    } else if (a == "--help") {
      std::printf(
          "macsio_proxy: MACSio-compatible proxy I/O application\n"
          "  Table II arguments: --interface --parallel_file_mode --num_dumps\n"
          "  --part_size --avg_num_parts --vars_per_part --compute_time\n"
          "  --meta_size --dataset_growth, plus --nprocs N.\n"
          "  staging: --aggregators N --agg_link_bw B --staging none|bb\n"
          "  codec:   --codec identity|lossless|ebl --codec_error_bound E\n"
          "           --codec_throughput B --codec_decode_throughput B\n"
          "  restart: --restart (read the last dump back)\n"
          "           --read_staging none|bb --prefetch N\n"
          "  extras: --engine serial|spmd|event (execution substrate;\n"
          "          event scales to 100k+ virtual ranks), --spmd (alias\n"
          "          for --engine spmd), --disk (write real files),\n"
          "          --out DIR (disk root)\n"
          "  observability: --trace_out FILE (Chrome-trace/Perfetto JSON of\n"
          "          the virtual-time spans; ranks as threads),\n"
          "          --trace_sample N (with --trace_out: stream the trace\n"
          "          with bounded memory, keeping N evenly spaced ranks\n"
          "          verbatim — plus the driver track and aggregators —\n"
          "          and folding the rest into per-stage envelope spans;\n"
          "          the machine-scale path for --engine event),\n"
          "          --metrics_out FILE (metrics snapshot; .csv or JSON),\n"
          "          --critical_path (print the critical-path summary\n"
          "          without writing any trace file; under --trace_sample\n"
          "          it falls back to a per-stage envelope approximation),\n"
          "          --no_approx_critical_path (refuse that approximation:\n"
          "          exit non-zero instead of printing an approximate\n"
          "          critical path under --trace_sample),\n"
          "          --util_out FILE (per-resource utilization ledger as\n"
          "          JSON; also prints the bottleneck table),\n"
          "          --explain (predictive bottleneck report: per resource\n"
          "          group its utilization, slack-weighted exposure, the\n"
          "          what-if makespan at 1.5x/2x capacity relief, and the\n"
          "          shadow price — seconds of makespan per +1x capacity),\n"
          "          --explain_out FILE (write that report as JSON),\n"
          "          --prof_out FILE (host wall-clock self-profile of the\n"
          "          engine: events/sec, context switches, ready-queue\n"
          "          high-water, arena bytes; NOT engine-invariant).\n"
          "          Any virtual-time flag also replays the request stream\n"
          "          through the reference PFS/BB model so the artifacts\n"
          "          hold every stage.\n"
          "  campaign: --campaign (sweep this configuration over the codec\n"
          "          axis — and over rank scalings when predicting — through\n"
          "          the sharded campaign executor instead of one run),\n"
          "          --jobs N (executor worker threads; 1 = inline),\n"
          "          --cache FILE (persistent JSON result cache; a re-run\n"
          "          resolves warm without simulating), --campaign_csv FILE\n"
          "          (canonical campaign CSV: virtual-clock columns only),\n"
          "          --predict N (fit the campaign predict service and\n"
          "          answer the dump/restart-time what-if at N ranks —\n"
          "          a rank count the campaign never simulated — printing\n"
          "          the fit's calibration error next to the answer).\n");
      return 0;
    } else {
      args.push_back(a);
    }
  }
  if (trace_sample > 0 && trace_out.empty()) {
    std::fprintf(stderr,
                 "macsio_proxy: --trace_sample only affects --trace_out; "
                 "ignoring it\n");
    trace_sample = 0;
  }

  macsio::Params params;
  try {
    params = macsio::Params::from_cli(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
    return 2;
  }
  std::printf("invocation: %s\n", params.to_command_line().c_str());

  if (campaign_mode) {
    // Sweep the configured workload over the codec axis through
    // core::study_sweep — the campaign executor behind it dedupes repeated
    // configurations and honors --jobs/--cache. When predicting we also run
    // 2x/4x rank scalings so each stratum holds enough points for a fit.
    std::vector<core::StudyOptions> variants;
    for (const char* codec : {"identity", "lossless", "ebl"}) {
      core::StudyOptions v;
      v.engine = engine_kind;
      v.codec = codec;
      if (std::string(codec) == "ebl") {
        v.codec_error_bound =
            params.codec_error_bound > 0 ? params.codec_error_bound : 1.0e-3;
        v.codec_var_bounds = params.codec_var_bounds;
      }
      v.codec_throughput = params.codec_throughput;
      v.codec_decode_throughput = params.codec_decode_throughput;
      v.restart = params.restart;
      v.restart_from_bb = params.restart_from_bb;
      variants.push_back(std::move(v));
    }
    campaign::ExecutorOptions exec_opts;
    exec_opts.jobs = jobs;
    exec_opts.cache_path = cache_path;
    std::vector<int> rank_points = {params.nprocs};
    if (predict_ranks > 0) {
      rank_points.push_back(params.nprocs * 2);
      rank_points.push_back(params.nprocs * 4);
    }
    std::vector<campaign::CellConfig> cells;
    std::vector<campaign::CellOutcome> outcomes;
    campaign::ExecutorStats stats;
    for (const int ranks : rank_points) {
      macsio::Params base = params;
      base.nprocs = ranks;
      core::StudySweepResult sweep =
          core::study_sweep(base, variants, exec_opts);
      for (auto& c : sweep.cells) {
        c.name += "/r" + std::to_string(ranks);
        cells.push_back(std::move(c));
      }
      for (auto& o : sweep.outcomes) {
        o.name += "/r" + std::to_string(ranks);
        outcomes.push_back(std::move(o));
      }
      stats.cells += sweep.stats.cells;
      stats.executed += sweep.stats.executed;
      stats.cache_hits += sweep.stats.cache_hits;
    }
    std::printf("campaign: %llu cells, %d worker(s): %llu executed, "
                "%llu cache hits\n",
                static_cast<unsigned long long>(stats.cells), jobs,
                static_cast<unsigned long long>(stats.executed),
                static_cast<unsigned long long>(stats.cache_hits));
    util::TextTable table(
        {"cell", "encoded", "dump s", "critical stage", "binding"});
    for (const auto& o : outcomes)
      table.add_row({o.name, util::human_bytes(o.result.encoded_bytes),
                     util::format_g(o.result.dump_seconds, 4),
                     o.result.critical_stage, o.result.binding_resource});
    std::printf("%s", table.to_string().c_str());
    if (!campaign_csv.empty()) {
      util::CsvWriter csv(campaign_csv);
      campaign::write_csv(csv, cells, outcomes);
      std::printf("csv: %s\n", csv.path().c_str());
    }
    if (predict_ranks > 0) {
      campaign::PredictService predict;
      predict.fit(cells, outcomes);
      campaign::CellConfig query = cells.front();
      query.name = "whatif/r" + std::to_string(predict_ranks);
      query.params.nprocs = predict_ranks;
      const auto answer = predict.predict(query);
      std::printf("%s\n", predict.report().c_str());
      std::printf("what-if %s (never simulated): dump %.6fs%s, "
                  "%llu encoded bytes (stratum %s)\n",
                  query.name.c_str(), answer.dump_seconds,
                  answer.restart_seconds > 0
                      ? (", restart " + util::format_g(answer.restart_seconds, 6) + "s").c_str()
                      : "",
                  static_cast<unsigned long long>(answer.encoded_bytes),
                  answer.exact_stratum ? answer.stratum.c_str() : "global");
    }
    return 0;
  }

  std::unique_ptr<pfs::StorageBackend> backend;
  if (to_disk) backend = std::make_unique<pfs::PosixBackend>(out_root);
  else backend = std::make_unique<pfs::MemoryBackend>(false);

  iostats::TraceRecorder trace;
  const bool sampling = trace_sample > 0;
  const bool observe = !trace_out.empty() || !metrics_out.empty() ||
                       !util_out.empty() || want_critical || want_explain;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ResourceLedger ledger;
  std::unique_ptr<obs::TraceStream> stream;
  if (sampling) {
    obs::TraceStream::Options opt;
    opt.path = trace_out;
    opt.sample.nranks = params.nprocs;
    opt.sample.sample = trace_sample;
    if (params.aggregators > 0) {
      // Aggregator ranks carry the ship/encode gates; always keep them.
      const auto topo =
          staging::AggTopology::make(params.nprocs, params.aggregators);
      for (int g = 0; g < topo.ngroups(); ++g)
        opt.sample.keep_extra.push_back(topo.aggregator_of_group(g));
    }
    stream = std::make_unique<obs::TraceStream>(std::move(opt));
  }
  obs::Probe probe;
  if (observe) {
    probe.tracer = sampling ? static_cast<obs::SpanSink*>(stream.get())
                            : static_cast<obs::SpanSink*>(&tracer);
    probe.metrics = &metrics;
    // --explain needs the utilization ledger for its per-group rows.
    if (!util_out.empty() || want_explain) probe.ledger = &ledger;
  }
  obs::SelfProfiler prof;
  obs::SelfProfiler* prof_ptr = prof_out.empty() ? nullptr : &prof;

  std::unique_ptr<exec::Engine> engine;
  try {
    engine = exec::make_engine(engine_kind, params.nprocs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
    return 2;
  }
  if (prof_ptr != nullptr) engine->set_profiler(prof_ptr);
  std::printf("running %d ranks on the %s engine...\n", params.nprocs,
              engine->name());
  macsio::DumpStats stats;
  {
    obs::SelfProfiler::ScopedPhase ph(prof_ptr, "proxy.dump");
    stats = macsio::run_macsio(*engine, params, *backend, &trace, probe);
  }

  util::TextTable table({"dump", "bytes", "max task bytes", "min task bytes"});
  for (std::size_t d = 0; d < stats.bytes_per_dump.size(); ++d) {
    const auto& tb = stats.task_bytes[d];
    table.add_row(
        {std::to_string(d), util::human_bytes(stats.bytes_per_dump[d]),
         util::human_bytes(*std::max_element(tb.begin(), tb.end())),
         util::human_bytes(*std::min_element(tb.begin(), tb.end()))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total %s across %llu files\n",
              util::human_bytes(stats.total_bytes).c_str(),
              static_cast<unsigned long long>(stats.nfiles));
  if (params.codec_spec().enabled()) {
    std::printf("codec %s: %s raw -> %s on the wire/tier (%.2fx), "
                "%.3fs encode cpu\n",
                params.codec.c_str(),
                util::human_bytes(stats.codec.total.raw_bytes).c_str(),
                util::human_bytes(stats.codec.total.encoded_bytes).c_str(),
                stats.codec.total.ratio(), stats.codec.total.encode_seconds);
  }

  // Reference PFS/BB model for the observability replay: timed alongside
  // each driver phase so the trace holds every stage — the driver spans
  // recorded above (encode/ship/scatter/decode and the dump/restart phases)
  // plus the replay's pfs_write/bb_absorb/bb_drain/bb_prefetch/bb_read
  // spans — and so the dump and restart timelines land in separate ledger
  // epochs (each is an independent virtual clock starting at zero).
  pfs::SimFsConfig obs_cfg;
  obs_cfg.bb.enabled = params.stage_to_bb || params.restart_from_bb;
  if (obs_cfg.bb.enabled) {
    obs_cfg.bb.ranks_per_node = 16;
    obs_cfg.bb.nodes = params.nprocs / 16 > 1 ? params.nprocs / 16 : 1;
  }
  pfs::SimFs obs_fs(obs_cfg);
  if (observe) {
    obs::SelfProfiler::ScopedPhase ph(prof_ptr, "proxy.pfs_replay");
    obs_fs.run(stats.requests, probe);
  }

  macsio::RestartStats restart;
  if (params.restart) {
    ledger.begin_epoch();  // the restart is a fresh virtual timeline
    obs::SelfProfiler::ScopedPhase ph(prof_ptr, "proxy.restart");
    restart = macsio::run_restart(*engine, params, *backend, &trace, probe);
    std::printf(
        "restart (dump %d, %s): %s decoded image, %s fetched off the %s, "
        "decode gate %.3gs, scatter %.3gs\n",
        restart.dump, params.restart_from_bb ? "prefetched bb" : "cold pfs",
        util::human_bytes(restart.raw_bytes).c_str(),
        util::human_bytes(restart.encoded_bytes).c_str(),
        params.restart_from_bb ? "bb tier" : "pfs",
        restart.decode_gate, restart.scatter_seconds);
    if (observe) {
      obs::SelfProfiler::ScopedPhase ph2(prof_ptr, "proxy.pfs_replay");
      obs_fs.run(restart.requests, probe);
    }
  }

  // burst view of the request stream (compute_time spacing)
  if (params.compute_time > 0) {
    pfs::SimFsConfig cfg;
    pfs::SimFs fs(cfg);
    const auto burst = pfs::burst_stats(fs.run(stats.requests));
    std::printf("burstiness on the reference PFS model: duty cycle %.1f%%, "
                "peak %.2f GB/s\n",
                100 * burst.duty_cycle, burst.peak_bandwidth / 1e9);
  }

  if (observe) {
    // The streaming sampled path never holds every span, but it aggregates
    // all of them (kept or dropped) into per-stage envelope spans — enough
    // for an approximate critical path and explain report. Snapshot them
    // before finish() closes the stream.
    std::vector<obs::Span> envelopes;
    if (sampling) envelopes = stream->envelope_spans();
    if (sampling) {
      if (no_approx_cp) {
        std::fprintf(stderr,
                     "macsio_proxy: critical path under --trace_sample uses "
                     "the per-stage envelope approximation; drop "
                     "--no_approx_critical_path to accept it, or drop "
                     "--trace_sample for the exact span-level path\n");
        return 3;
      }
      const obs::CriticalPathReport cp = obs::critical_path(envelopes, {});
      std::printf("critical path (approximate: per-stage envelopes over all "
                  "%d ranks) over %.4gs of virtual time: %s\n",
                  params.nprocs, cp.makespan, obs::summarize(cp).c_str());
    } else {
      const obs::CriticalPathReport cp =
          obs::critical_path(tracer.spans(), tracer.edges());
      std::printf("critical path over %.4gs of virtual time: %s\n",
                  cp.makespan, obs::summarize(cp).c_str());
    }
    if (!trace_out.empty()) {
      if (sampling) {
        stream->finish();
        std::printf("trace: %s (sampled %d of %d ranks: kept %llu of %llu "
                    "spans, peak %zu buffered)\n",
                    trace_out.c_str(), trace_sample, params.nprocs,
                    static_cast<unsigned long long>(stream->spans_kept()),
                    static_cast<unsigned long long>(stream->spans_recorded()),
                    stream->peak_buffered_spans());
      } else {
        obs::export_trace(trace_out, tracer);
        std::printf("trace: %s\n", trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      obs::export_metrics(metrics_out, metrics.snapshot());
      std::printf("metrics: %s\n", metrics_out.c_str());
    }
    if (!util_out.empty()) {
      const obs::UtilizationReport rep = ledger.report();
      std::printf("%s", obs::utilization_table(rep).c_str());
      std::printf("bottlenecks: %s\n", rep.top_summary().c_str());
      obs::export_utilization(util_out, rep);
      std::printf("utilization: %s\n", util_out.c_str());
    }
    if (want_explain) {
      // Relief scenarios are computed against the same rates the replay
      // used, so "2x ost" in the report means doubling obs_cfg's knob.
      obs::ReliefKnobs knobs;
      knobs.ost_bandwidth = obs_cfg.ost_bandwidth;
      knobs.client_bandwidth = obs_cfg.client_bandwidth;
      knobs.drain_bandwidth = obs_cfg.bb.drain_bandwidth;
      const obs::ExplainReport rep =
          sampling ? obs::explain(envelopes, {}, ledger.report(), knobs)
                   : obs::explain(tracer.spans(), tracer.edges(),
                                  ledger.report(), knobs);
      if (sampling)
        std::printf("explain (approximate: per-stage envelopes — span-level "
                    "slack and service tags need an unsampled trace):\n");
      std::printf("%s", obs::explain_table(rep).c_str());
      if (!explain_out.empty()) {
        obs::export_explain(explain_out, rep);
        std::printf("explain: %s\n", explain_out.c_str());
      }
    }
  }
  if (prof_ptr != nullptr) {
    obs::export_selfprof(prof_out, prof.snapshot());
    std::printf("self-profile: %s\n", prof_out.c_str());
  }
  return 0;
}

/// \file macsio_proxy.cpp
/// The MACSio-compatible proxy I/O executable — accepts the paper's Table II
/// argument set (Listing-1 invocations work verbatim, minus jsrun) and runs
/// the dump loop over virtual ranks. --engine picks the execution substrate:
/// serial fibers (default), spmd OS threads through the simulated MPI layer
/// (including MIF baton-passing), or the discrete-event engine for
/// machine-scale rank counts (--engine event handles 100k+ virtual ranks).
///
///   macsio_proxy --interface miftmpl --parallel_file_mode MIF 8 \
///     --num_dumps 20 --part_size 1550000 --avg_num_parts 1 \
///     --vars_per_part 1 --compute_time 0.5 --meta_size 0 \
///     --dataset_growth 1.013075 --nprocs 8 --out macsio_run

#include <algorithm>
#include <cstdio>

#include "exec/engine.hpp"
#include "iostats/aggregate.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pfs/timeline.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  std::vector<std::string> args;
  exec::EngineKind engine_kind = exec::EngineKind::kSerial;
  bool to_disk = false;
  std::string out_root = "macsio_run";
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--spmd") {  // legacy alias for --engine spmd
      engine_kind = exec::EngineKind::kSpmd;
    } else if (a == "--engine" && i + 1 < argc) {
      try {
        engine_kind = exec::engine_kind_from_name(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
        return 2;
      }
    } else if (a == "--disk") {
      to_disk = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_root = argv[++i];
    } else if (a == "--trace_out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (a == "--metrics_out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (a == "--help") {
      std::printf(
          "macsio_proxy: MACSio-compatible proxy I/O application\n"
          "  Table II arguments: --interface --parallel_file_mode --num_dumps\n"
          "  --part_size --avg_num_parts --vars_per_part --compute_time\n"
          "  --meta_size --dataset_growth, plus --nprocs N.\n"
          "  staging: --aggregators N --agg_link_bw B --staging none|bb\n"
          "  codec:   --codec identity|lossless|ebl --codec_error_bound E\n"
          "           --codec_throughput B --codec_decode_throughput B\n"
          "  restart: --restart (read the last dump back)\n"
          "           --read_staging none|bb --prefetch N\n"
          "  extras: --engine serial|spmd|event (execution substrate;\n"
          "          event scales to 100k+ virtual ranks), --spmd (alias\n"
          "          for --engine spmd), --disk (write real files),\n"
          "          --out DIR (disk root)\n"
          "  observability: --trace_out FILE (Chrome-trace/Perfetto JSON of\n"
          "          the virtual-time spans; ranks as threads),\n"
          "          --metrics_out FILE (metrics snapshot; .csv or JSON).\n"
          "          Either flag also replays the request stream through the\n"
          "          reference PFS/BB model and prints the critical path.\n");
      return 0;
    } else {
      args.push_back(a);
    }
  }

  macsio::Params params;
  try {
    params = macsio::Params::from_cli(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
    return 2;
  }
  std::printf("invocation: %s\n", params.to_command_line().c_str());

  std::unique_ptr<pfs::StorageBackend> backend;
  if (to_disk) backend = std::make_unique<pfs::PosixBackend>(out_root);
  else backend = std::make_unique<pfs::MemoryBackend>(false);

  iostats::TraceRecorder trace;
  const bool observe = !trace_out.empty() || !metrics_out.empty();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Probe probe =
      observe ? obs::Probe{&tracer, &metrics} : obs::Probe{};
  std::unique_ptr<exec::Engine> engine;
  try {
    engine = exec::make_engine(engine_kind, params.nprocs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "macsio_proxy: %s\n", e.what());
    return 2;
  }
  std::printf("running %d ranks on the %s engine...\n", params.nprocs,
              engine->name());
  const macsio::DumpStats stats =
      macsio::run_macsio(*engine, params, *backend, &trace, probe);

  util::TextTable table({"dump", "bytes", "max task bytes", "min task bytes"});
  for (std::size_t d = 0; d < stats.bytes_per_dump.size(); ++d) {
    const auto& tb = stats.task_bytes[d];
    table.add_row(
        {std::to_string(d), util::human_bytes(stats.bytes_per_dump[d]),
         util::human_bytes(*std::max_element(tb.begin(), tb.end())),
         util::human_bytes(*std::min_element(tb.begin(), tb.end()))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total %s across %llu files\n",
              util::human_bytes(stats.total_bytes).c_str(),
              static_cast<unsigned long long>(stats.nfiles));
  if (params.codec_spec().enabled()) {
    std::printf("codec %s: %s raw -> %s on the wire/tier (%.2fx), "
                "%.3fs encode cpu\n",
                params.codec.c_str(),
                util::human_bytes(stats.codec.total.raw_bytes).c_str(),
                util::human_bytes(stats.codec.total.encoded_bytes).c_str(),
                stats.codec.total.ratio(), stats.codec.total.encode_seconds);
  }

  macsio::RestartStats restart;
  if (params.restart) {
    restart = macsio::run_restart(*engine, params, *backend, &trace, probe);
    std::printf(
        "restart (dump %d, %s): %s decoded image, %s fetched off the %s, "
        "decode gate %.3gs, scatter %.3gs\n",
        restart.dump, params.restart_from_bb ? "prefetched bb" : "cold pfs",
        util::human_bytes(restart.raw_bytes).c_str(),
        util::human_bytes(restart.encoded_bytes).c_str(),
        params.restart_from_bb ? "bb tier" : "pfs",
        restart.decode_gate, restart.scatter_seconds);
  }

  // burst view of the request stream (compute_time spacing)
  if (params.compute_time > 0) {
    pfs::SimFsConfig cfg;
    pfs::SimFs fs(cfg);
    const auto burst = pfs::burst_stats(fs.run(stats.requests));
    std::printf("burstiness on the reference PFS model: duty cycle %.1f%%, "
                "peak %.2f GB/s\n",
                100 * burst.duty_cycle, burst.peak_bandwidth / 1e9);
  }

  if (observe) {
    // Time the full pipeline on the reference PFS/BB model so the trace
    // holds every stage: the driver spans recorded above (encode/ship/
    // scatter/decode and the dump/restart phases) plus the replay's
    // pfs_write/bb_absorb/bb_drain/bb_prefetch/bb_read spans.
    pfs::SimFsConfig cfg;
    cfg.bb.enabled = params.stage_to_bb || params.restart_from_bb;
    if (cfg.bb.enabled) {
      cfg.bb.ranks_per_node = 16;
      cfg.bb.nodes = params.nprocs / 16 > 1 ? params.nprocs / 16 : 1;
    }
    pfs::SimFs fs(cfg);
    fs.run(stats.requests, probe);
    if (params.restart) fs.run(restart.requests, probe);
    const obs::CriticalPathReport cp =
        obs::critical_path(tracer.spans(), tracer.edges());
    std::printf("critical path over %.4gs of virtual time: %s\n", cp.makespan,
                obs::summarize(cp).c_str());
    if (!trace_out.empty()) {
      obs::export_trace(trace_out, tracer);
      std::printf("trace: %s\n", trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::export_metrics(metrics_out, metrics.snapshot());
      std::printf("metrics: %s\n", metrics_out.c_str());
    }
  }
  return 0;
}

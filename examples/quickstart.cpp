/// \file quickstart.cpp
/// Five-minute tour of the amrio public API:
///   1. run a small Castro-style Sedov AMR simulation with N-to-N plotfile
///      output (everything stays in an in-memory backend);
///   2. look at the per-(step, level, task) output sizes it produced;
///   3. translate the run into a MACSio proxy invocation (the paper's
///      Listing 1 + Eq. 3 + dataset_growth calibration);
///   4. validate the proxy against the simulation.

#include <cstdio>

#include "core/amrio.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace amrio;

  // 1. A small pivot case (64² base mesh, 3 AMR levels, 8 virtual ranks).
  core::CaseConfig config;
  config.name = "quickstart";
  config.ncell = 64;
  config.max_level = 2;
  config.plot_int = 5;
  config.max_step = 30;
  config.cfl = 0.5;
  config.nprocs = 8;

  std::printf("running Sedov case '%s' (%d² cells, %d levels, %d ranks)...\n",
              config.name.c_str(), config.ncell, config.max_level + 1,
              config.nprocs);
  const core::RunRecord run = core::run_case(config);

  // 2. What did it write?
  std::printf("\nsimulation wrote %llu files, %s total\n",
              static_cast<unsigned long long>(run.nfiles),
              util::human_bytes(run.total_bytes).c_str());
  util::TextTable table({"output step", "x = counter*ncells", "bytes this step",
                         "cumulative bytes"});
  for (std::size_t i = 0; i < run.total.steps.size(); ++i) {
    table.add_row({std::to_string(run.total.steps[i]),
                   util::format_g(run.total.x[i], 6),
                   util::format_g(run.total.per_step[i], 6),
                   util::format_g(run.total.y[i], 6)});
  }
  std::printf("%s", table.to_string().c_str());

  // 3. + 4. Calibrate a MACSio proxy for this workload and validate it.
  const core::ValidationResult v = core::calibrate_and_validate(run);
  std::printf("\nEq. (3) part_size fit: part_size=%llu bytes, f=%.2f\n",
              static_cast<unsigned long long>(
                  v.translation.part_size_fit.part_size),
              v.translation.part_size_fit.f);
  std::printf("calibrated dataset_growth = %.6f (objective %.4f, %zu iterates)\n",
              v.translation.calibration.best_growth,
              v.translation.calibration.best_objective,
              v.translation.calibration.iterates.size());
  std::printf("\nproxy command line:\n  %s\n",
              v.translation.command_line.c_str());
  std::printf("\nproxy vs simulation per-step error: mean %.1f%%, max %.1f%%\n",
              100.0 * v.mean_abs_rel_err, 100.0 * v.max_abs_rel_err);
  return 0;
}

/// \file calibrate_model.cpp
/// End-to-end model workflow (paper §III Fig. 1): run a parameterized family
/// of AMReX-Castro-like simulations, translate each into MACSio parameters
/// through Eq. (3) + growth calibration, validate the proxies, and build the
/// (cfl × max_level) → dataset_growth interpolation table that the paper's
/// Appendix step 4 describes for predicting new configurations.

#include <cstdio>

#include "core/amrio.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  util::ArgParser cli("calibrate_model",
                      "build and validate the AMR→MACSio translation model");
  cli.add_option("ncell", "L0 cells per direction", 1, std::string("96"));
  cli.add_option("steps", "simulation steps per case", 1, std::string("60"));
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.flag("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const int ncell = static_cast<int>(cli.get_int("ncell"));
  const auto steps = cli.get_int("steps");

  model::GrowthGuess guess;
  util::TextTable table({"case", "cfl", "levels", "fitted f", "growth",
                         "mean |err|", "proxy cmdline ok"});

  for (double cfl : {0.3, 0.5}) {
    for (int max_level : {1, 3}) {
      core::CaseConfig config;
      config.name = "cal_cfl" + util::format_g(cfl * 10, 2) + "_l" +
                    std::to_string(max_level);
      config.ncell = ncell;
      config.max_level = max_level;
      config.cfl = cfl;
      config.max_step = steps;
      config.plot_int = std::max<std::int64_t>(1, steps / 10);
      config.nprocs = 8;
      config.max_grid_size = std::max(16, ncell / 4);
      std::printf("running %s...\n", config.name.c_str());
      const auto run = core::run_case(config);
      const auto v = core::calibrate_and_validate(run, 1.0, 1.25);
      guess.add(cfl, max_level, v.translation.calibration.best_growth);

      // the deliverable of Listing 1: a runnable MACSio command line
      const auto reparsed =
          macsio::Params::from_cli(v.translation.params.to_cli());
      const bool ok = reparsed.part_size == v.translation.params.part_size;
      table.add_row({config.name, util::format_g(cfl, 2),
                     std::to_string(max_level + 1),
                     util::format_g(v.translation.part_size_fit.f, 4),
                     util::format_g(v.translation.calibration.best_growth, 6),
                     util::format_g(v.mean_abs_rel_err, 3), ok ? "yes" : "NO"});
    }
  }
  std::printf("\n%s", table.to_string().c_str());

  std::printf("\ndataset_growth interpolation table (Appendix step 4):\n");
  util::TextTable interp({"cfl \\ levels", "2", "3", "4"});
  for (double cfl : {0.3, 0.4, 0.5}) {
    interp.add_row({util::format_g(cfl, 2),
                    util::format_g(guess.interpolate(cfl, 1), 6),
                    util::format_g(guess.interpolate(cfl, 2), 6),
                    util::format_g(guess.interpolate(cfl, 3), 6)});
  }
  std::printf("%s", interp.to_string().c_str());
  std::printf("\nrule of thumb (paper): the greater the cfl and number of\n"
              "levels, the greater the data_growth.\n");
  return 0;
}

/// \file scan_report.cpp
/// Offline plotfile characterization — the role of the paper's post-processing
/// stack (JupyterHub notebook + the `jexio` Julia package, Appendix A): point
/// it at a directory of plotfiles and get the full §IV-A analysis: per-step /
/// per-level / per-task byte tables, Eq. (1) cumulative series, linearity
/// classification, and load-imbalance metrics.
///
///   scan_report sedov_out --prefix sedov_2d_plt
///
/// Works on the trees written by examples/sedov_blast (and on any tree that
/// follows the AMReX plotfile layout of paper Fig. 2).

#include <cstdio>

#include "iostats/aggregate.hpp"
#include "model/regression.hpp"
#include "pfs/backend.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/scanner.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  util::ArgParser cli("scan_report",
                      "characterize AMReX-style plotfile output (jexio-like)");
  cli.add_option("prefix", "plotfile directory name prefix", 1,
                 std::string("sedov_2d_plt"));
  cli.add_option("ncells", "L0 cells for Eq. (1) x-axis (0 = from Header)", 1,
                 std::string("0"));
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.flag("help") || cli.positional().empty()) {
    std::printf("%susage: scan_report <directory> [--prefix P]\n",
                cli.usage().c_str());
    return cli.flag("help") ? 0 : 2;
  }

  const std::string root = cli.positional().front();
  const std::string prefix = cli.get("prefix");
  pfs::PosixBackend backend(root);
  const auto scan = plotfile::scan_plotfiles(backend, prefix);
  if (scan.plotfile_dirs.empty()) {
    std::fprintf(stderr, "no plotfiles matching '%s*' under %s\n",
                 prefix.c_str(), root.c_str());
    return 1;
  }
  std::printf("%zu plotfiles, %llu files, %s total under %s\n\n",
              scan.plotfile_dirs.size(),
              static_cast<unsigned long long>(scan.nfiles),
              util::human_bytes(scan.total_bytes).c_str(), root.c_str());

  // L0 cell count: CLI override or read from the first Header.
  std::int64_t ncells = cli.get_int("ncells");
  int nranks = 0;
  if (ncells <= 0) {
    const auto pf0 =
        plotfile::read_plotfile(backend, scan.plotfile_dirs.front(), false);
    ncells = pf0.levels.front().geom.domain().num_pts();
    std::printf("L0 domain from Header: %s (%lld cells), %d levels, vars:",
                pf0.levels.front().geom.domain().to_string().c_str(),
                static_cast<long long>(ncells), pf0.finest_level + 1);
    for (const auto& v : pf0.var_names) std::printf(" %s", v.c_str());
    std::printf("\n\n");
  }
  for (const auto& [key, bytes] : scan.table)
    nranks = std::max(nranks, std::get<2>(key) + 1);

  // Eq. (1) series + per level.
  const auto total = iostats::cumulative_series(scan.table, ncells);
  const auto levels = iostats::levels_present(scan.table);
  util::TextTable table({"output step", "x (Eq.1)", "bytes", "cumulative",
                         "metadata share", "finest imbalance"});
  for (std::size_t i = 0; i < total.steps.size(); ++i) {
    const auto step = total.steps[i];
    const std::uint64_t meta =
        iostats::step_level_bytes(scan.table, step, -1);
    table.add_row(
        {std::to_string(step), util::format_g(total.x[i], 5),
         util::human_bytes(static_cast<std::uint64_t>(total.per_step[i])),
         util::human_bytes(static_cast<std::uint64_t>(total.y[i])),
         util::format_g(static_cast<double>(meta) / total.per_step[i], 3),
         util::format_g(iostats::task_imbalance(scan.table, step,
                                                levels.back(), nranks),
                        4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Per-level split and linearity classification (the paper's regression step).
  util::TextTable lvl({"level", "cumulative bytes", "share", "log-log slope",
                       "verdict"});
  std::vector<util::Series> series;
  for (int l : levels) {
    const auto s = iostats::cumulative_series_level(scan.table, ncells, l);
    if (s.y.empty()) continue;
    series.push_back(
        util::Series{"L" + std::to_string(l), s.x, s.y});
    std::string slope = "-";
    std::string verdict = "single point";
    if (s.x.size() >= 2) {
      const auto power = model::fit_power(s.x, s.y);
      slope = util::format_g(power.b, 4);
      verdict = power.b > 1.02 ? "super-linear (AMR growth)" : "linear";
    }
    lvl.add_row({"L" + std::to_string(l), util::format_g(s.y.back(), 5),
                 util::format_g(s.y.back() / total.y.back(), 3), slope,
                 verdict});
  }
  std::printf("%s\n", lvl.to_string().c_str());

  util::PlotOptions opts;
  opts.title = "cumulative bytes per level vs x = output_counter * ncells";
  opts.x_label = "x";
  opts.y_label = "bytes";
  std::printf("%s", util::plot_xy(series, opts).c_str());
  return 0;
}

/// \file io_burstiness.cpp
/// The "dynamic" study the paper positions the calibrated proxy for: replay a
/// calibrated MACSio workload through the parallel-filesystem simulator and
/// study burstiness, bandwidth, and file-system variability — the
/// compute-then-burst pattern of classic HPC checkpoint/analysis output.

#include <cstdio>

#include "exec/engine.hpp"
#include "core/amrio.hpp"
#include "pfs/timeline.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amrio;
  util::ArgParser cli("io_burstiness",
                      "replay a calibrated proxy workload through the PFS model");
  cli.add_option("nprocs", "virtual ranks", 1, std::string("32"));
  cli.add_option("compute_time", "seconds of compute between dumps", 1,
                 std::string("5"));
  cli.add_option("osts", "number of OSTs in the PFS model", 1,
                 std::string("16"));
  cli.add_option("sigma", "lognormal service-time variability", 1,
                 std::string("0.3"));
  cli.add_option("amplify", "part_size multiplier to emulate larger machines",
                 1, std::string("2000"));
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.flag("help")) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  // 1. Calibrate a proxy from a small AMR run.
  core::CaseConfig config;
  config.name = "burst";
  config.ncell = 96;
  config.max_level = 2;
  config.max_step = 50;
  config.plot_int = 5;
  config.nprocs = static_cast<int>(cli.get_int("nprocs"));
  config.max_grid_size = 24;
  std::printf("calibrating proxy from a %d^2 Sedov run on %d ranks...\n",
              config.ncell, config.nprocs);
  const auto run = core::run_case(config);
  auto v = core::calibrate_and_validate(run, 1.0, 1.2);

  // 2. Execute the proxy with the requested burst spacing. The proxy's whole
  //    point is extrapolation: amplify part_size to emulate the paper-scale
  //    machine without rerunning the application.
  auto params = v.translation.params;
  params.compute_time = cli.get_double("compute_time");
  params.part_size *= static_cast<std::uint64_t>(cli.get_int("amplify"));
  pfs::MemoryBackend backend(false);
  exec::SerialEngine engine(params.nprocs);
  const auto stats = macsio::run_macsio(engine, params, backend);
  std::printf("proxy (part_size amplified x%lld): %d dumps, %s total, dumps "
              "every %.1fs of compute\n\n",
              static_cast<long long>(cli.get_int("amplify")), params.num_dumps,
              util::human_bytes(stats.total_bytes).c_str(),
              params.compute_time);

  // 3. Replay through PFS models of varying richness.
  util::TextTable table({"OSTs", "sigma", "makespan", "duty cycle",
                         "mean BW", "peak BW", "p95 task time"});
  for (int osts : {4, static_cast<int>(cli.get_int("osts")), 64}) {
    for (double sigma : {0.0, cli.get_double("sigma")}) {
      pfs::SimFsConfig cfg;
      cfg.n_ost = osts;
      cfg.ost_bandwidth = 0.5e9;
      cfg.client_bandwidth = 1.0e9;
      cfg.variability_sigma = sigma;
      cfg.mds_latency = 1e-3;
      pfs::SimFs fs(cfg);
      const auto results = fs.run(stats.requests);
      const auto burst = pfs::burst_stats(results);
      std::vector<double> durations;
      for (const auto& r : results) durations.push_back(r.duration());
      table.add_row({std::to_string(osts), util::format_g(sigma, 3),
                     util::format_g(burst.makespan, 4) + "s",
                     util::format_g(100 * burst.duty_cycle, 3) + "%",
                     util::format_g(burst.mean_bandwidth / 1e9, 3) + " GB/s",
                     util::format_g(burst.peak_bandwidth / 1e9, 3) + " GB/s",
                     util::format_g(util::percentile(durations, 0.95), 3) + "s"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nreading the table: more OSTs → higher peak bandwidth and\n"
              "lower duty cycle (burstier relative to capacity); service-time\n"
              "variability stretches the per-task tail (p95) without moving\n"
              "the mean — the \"dynamic and random system characteristics\"\n"
              "the paper defers to proxy-driven studies.\n");
  return 0;
}

/// Unit + property tests for src/mesh: Box algebra laws, BoxArray chopping,
/// distribution mappings, Fab storage, MultiFab exchange, Geometry.

#include <gtest/gtest.h>

#include <numeric>

#include "mesh/boxarray.hpp"
#include "mesh/distribution.hpp"
#include "mesh/fab.hpp"
#include "mesh/geometry.hpp"
#include "mesh/morton.hpp"
#include "mesh/multifab.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace m = amrio::mesh;

// ------------------------------------------------------------------ Box

TEST(Box, DefaultIsEmpty) {
  m::Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.num_pts(), 0);
}

TEST(Box, BasicGeometry) {
  m::Box b(0, 0, 31, 15);
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.length(0), 32);
  EXPECT_EQ(b.length(1), 16);
  EXPECT_EQ(b.num_pts(), 512);
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({31, 15}));
  EXPECT_FALSE(b.contains({32, 0}));
  EXPECT_FALSE(b.contains({0, -1}));
}

TEST(Box, IntersectionBasics) {
  m::Box a(0, 0, 10, 10);
  m::Box b(5, 5, 15, 15);
  const m::Box i = a & b;
  EXPECT_EQ(i, m::Box(5, 5, 10, 10));
  m::Box c(20, 20, 30, 30);
  EXPECT_TRUE((a & c).empty());
  EXPECT_FALSE(a.intersects(c));
}

TEST(Box, RefineCoarsenRoundTrip) {
  const m::Box b(2, 4, 15, 31);
  EXPECT_EQ(b.refine(2).coarsen(2), b);
  EXPECT_EQ(b.refine(4).coarsen(4), b);
  // refine preserves cell count scaling
  EXPECT_EQ(b.refine(2).num_pts(), b.num_pts() * 4);
}

TEST(Box, CoarsenNegativeIndicesFloor) {
  const m::Box b(-4, -3, 3, 3);
  const m::Box c = b.coarsen(2);
  EXPECT_EQ(c.lo(0), -2);
  EXPECT_EQ(c.lo(1), -2);
  EXPECT_EQ(c.hi(0), 1);
  EXPECT_EQ(c.hi(1), 1);
}

TEST(Box, GrowAndShrink) {
  const m::Box b(4, 4, 7, 7);
  EXPECT_EQ(b.grow(2), m::Box(2, 2, 9, 9));
  EXPECT_EQ(b.grow(-1), m::Box(5, 5, 6, 6));
  EXPECT_TRUE(b.grow(-2).empty());
}

TEST(Box, ChopSplitsExactly) {
  const m::Box b(0, 0, 9, 9);
  const auto [left, right] = b.chop(0, 4);
  EXPECT_EQ(left, m::Box(0, 0, 3, 9));
  EXPECT_EQ(right, m::Box(4, 0, 9, 9));
  EXPECT_EQ(left.num_pts() + right.num_pts(), b.num_pts());
  EXPECT_THROW(b.chop(0, 0), amrio::ContractViolation);
  EXPECT_THROW(b.chop(0, 10), amrio::ContractViolation);
}

TEST(Box, AlignmentPredicates) {
  EXPECT_TRUE(m::Box(0, 0, 7, 7).aligned(8));
  EXPECT_FALSE(m::Box(1, 0, 8, 7).aligned(8));
  EXPECT_TRUE(m::Box(-8, 8, -1, 15).aligned(8));
  const m::Box odd(3, 5, 9, 12);
  const m::Box aligned = odd.align_to(4);
  EXPECT_TRUE(aligned.aligned(4));
  EXPECT_TRUE(aligned.contains(odd));
}

TEST(Box, DifferenceCoversExactly) {
  const m::Box b(0, 0, 9, 9);
  const m::Box hole(3, 3, 6, 6);
  const auto pieces = box_difference(b, hole);
  std::int64_t total = 0;
  for (const auto& p : pieces) {
    total += p.num_pts();
    EXPECT_TRUE(b.contains(p));
    EXPECT_FALSE(p.intersects(hole));
  }
  EXPECT_EQ(total, b.num_pts() - hole.num_pts());
  // pieces pairwise disjoint
  for (std::size_t i = 0; i < pieces.size(); ++i)
    for (std::size_t j = i + 1; j < pieces.size(); ++j)
      EXPECT_FALSE(pieces[i].intersects(pieces[j]));
}

TEST(Box, DifferenceDisjointAndContained) {
  const m::Box b(0, 0, 4, 4);
  EXPECT_EQ(box_difference(b, m::Box(10, 10, 12, 12)).size(), 1u);
  EXPECT_TRUE(box_difference(b, m::Box(-1, -1, 5, 5)).empty());
}

// Property sweep: random box pairs obey algebraic laws.
class BoxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxPropertyTest, IntersectionLaws) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    auto rand_box = [&rng]() {
      const int lox = static_cast<int>(rng.uniform_int(40)) - 20;
      const int loy = static_cast<int>(rng.uniform_int(40)) - 20;
      return m::Box(lox, loy, lox + static_cast<int>(rng.uniform_int(20)),
                    loy + static_cast<int>(rng.uniform_int(20)));
    };
    const m::Box a = rand_box();
    const m::Box b = rand_box();
    // commutativity
    EXPECT_EQ(a & b, b & a);
    // idempotence
    EXPECT_EQ(a & a, a);
    // intersection contained in both
    const m::Box i = a & b;
    if (i.ok()) {
      EXPECT_TRUE(a.contains(i));
      EXPECT_TRUE(b.contains(i));
    }
    // bounding box contains both
    const m::Box hull = bounding_box(a, b);
    EXPECT_TRUE(hull.contains(a));
    EXPECT_TRUE(hull.contains(b));
    // refine/coarsen round trip
    EXPECT_EQ(a.refine(2).coarsen(2), a);
    // coarsen-then-refine covers the original
    EXPECT_TRUE(a.coarsen(2).refine(2).contains(a));
    // difference partition: |b \ a| + |a ∩ b| == |b|
    std::int64_t diff_pts = 0;
    for (const auto& p : box_difference(b, a)) diff_pts += p.num_pts();
    EXPECT_EQ(diff_pts + (a & b).num_pts(), b.num_pts());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------- BoxArray

TEST(BoxArray, MaxSizeRespectsBound) {
  m::BoxArray ba(m::Box(0, 0, 255, 127));
  const auto chopped = ba.max_size(64);
  EXPECT_EQ(chopped.num_pts(), ba.num_pts());
  for (const auto& b : chopped.boxes()) {
    EXPECT_LE(b.length(0), 64);
    EXPECT_LE(b.length(1), 64);
  }
  EXPECT_TRUE(chopped.is_disjoint());
}

TEST(BoxArray, MaxSizePreservesBlocking) {
  m::BoxArray ba(m::Box(0, 0, 127, 127));
  const auto chopped = ba.max_size(32, 8);
  for (const auto& b : chopped.boxes()) EXPECT_TRUE(b.aligned(8));
}

TEST(BoxArray, CoversAndContains) {
  m::BoxArray ba({m::Box(0, 0, 7, 15), m::Box(8, 0, 15, 15)});
  EXPECT_TRUE(ba.covers(m::Box(0, 0, 15, 15)));
  EXPECT_FALSE(ba.covers(m::Box(0, 0, 16, 15)));
  EXPECT_TRUE(ba.contains({8, 8}));
  EXPECT_FALSE(ba.contains({16, 0}));
}

TEST(BoxArray, IsDisjointDetectsOverlap) {
  EXPECT_TRUE(m::BoxArray({m::Box(0, 0, 3, 3), m::Box(4, 0, 7, 3)}).is_disjoint());
  EXPECT_FALSE(m::BoxArray({m::Box(0, 0, 4, 4), m::Box(4, 4, 7, 7)}).is_disjoint());
}

TEST(BoxArray, RejectsEmptyBox) {
  EXPECT_THROW(m::BoxArray({m::Box()}), amrio::ContractViolation);
}

TEST(BoxArray, MinimalBoxHull) {
  m::BoxArray ba({m::Box(0, 0, 3, 3), m::Box(10, 10, 12, 12)});
  EXPECT_EQ(ba.minimal_box(), m::Box(0, 0, 12, 12));
}

// ----------------------------------------------------------------- Morton

TEST(Morton, InterleavesBits) {
  EXPECT_EQ(m::morton_encode(0, 0), 0u);
  EXPECT_EQ(m::morton_encode(1, 0), 1u);
  EXPECT_EQ(m::morton_encode(0, 1), 2u);
  EXPECT_EQ(m::morton_encode(1, 1), 3u);
  EXPECT_EQ(m::morton_encode(2, 0), 4u);
}

TEST(Morton, MonotoneAlongDiagonalBlocks) {
  // Z-order property: the four quadrant codes of a 2x2 block are contiguous.
  const auto c00 = m::morton_encode(10, 10);
  const auto c10 = m::morton_encode(11, 10);
  const auto c01 = m::morton_encode(10, 11);
  const auto c11 = m::morton_encode(11, 11);
  EXPECT_LT(c00, c10);
  EXPECT_LT(c10, c01);
  EXPECT_LT(c01, c11);
}

// ---------------------------------------------------------- Distribution

namespace {
m::BoxArray grid_16(int box_side = 8) {
  // A 4x4 lattice of boxes.
  std::vector<m::Box> boxes;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      boxes.emplace_back(i * box_side, j * box_side, (i + 1) * box_side - 1,
                         (j + 1) * box_side - 1);
  return m::BoxArray(std::move(boxes));
}
}  // namespace

class DistributionTest
    : public ::testing::TestWithParam<m::DistributionStrategy> {};

TEST_P(DistributionTest, EveryBoxOwnedByValidRank) {
  const auto ba = grid_16();
  for (int nranks : {1, 3, 4, 16, 32}) {
    const auto dm = m::DistributionMapping::make(ba, nranks, GetParam());
    EXPECT_EQ(dm.size(), ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
      EXPECT_GE(dm.owner(i), 0);
      EXPECT_LT(dm.owner(i), nranks);
    }
  }
}

TEST_P(DistributionTest, UniformBoxesBalanceWell) {
  const auto ba = grid_16();
  const auto dm = m::DistributionMapping::make(ba, 4, GetParam());
  EXPECT_LE(dm.imbalance(ba), 1.01);  // 16 equal boxes over 4 ranks
}

INSTANTIATE_TEST_SUITE_P(Strategies, DistributionTest,
                         ::testing::Values(m::DistributionStrategy::kRoundRobin,
                                           m::DistributionStrategy::kKnapsack,
                                           m::DistributionStrategy::kSfc));

TEST(Distribution, KnapsackBeatsRoundRobinOnSkewedWeights) {
  // One huge box + many small: knapsack should spread better.
  std::vector<m::Box> boxes{m::Box(0, 0, 63, 63)};
  for (int i = 0; i < 7; ++i)
    boxes.emplace_back(64 + 8 * i, 0, 64 + 8 * i + 7, 7);
  m::BoxArray ba(std::move(boxes));
  const auto rr = m::DistributionMapping::make(
      ba, 4, m::DistributionStrategy::kRoundRobin);
  const auto ks = m::DistributionMapping::make(
      ba, 4, m::DistributionStrategy::kKnapsack);
  EXPECT_LE(ks.imbalance(ba), rr.imbalance(ba) + 1e-12);
}

TEST(Distribution, StrategyRoundTripNames) {
  for (auto s : {m::DistributionStrategy::kRoundRobin,
                 m::DistributionStrategy::kKnapsack,
                 m::DistributionStrategy::kSfc}) {
    EXPECT_EQ(m::distribution_strategy_from_string(m::to_string(s)), s);
  }
  EXPECT_THROW(m::distribution_strategy_from_string("bogus"),
               std::invalid_argument);
}

TEST(Distribution, RankWeightsSumPreserved) {
  const auto ba = grid_16();
  std::vector<std::int64_t> weights(ba.size());
  for (std::size_t i = 0; i < ba.size(); ++i)
    weights[i] = static_cast<std::int64_t>(i + 1);
  const auto dm =
      m::DistributionMapping::make(ba, 5, m::DistributionStrategy::kKnapsack,
                                   weights);
  const auto loads = dm.rank_weights(weights);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::int64_t{0}),
            std::accumulate(weights.begin(), weights.end(), std::int64_t{0}));
}

// ------------------------------------------------------------------ Fab

TEST(Fab, IndexingComponentMajor) {
  m::Fab fab(m::Box(0, 0, 3, 3), 2);
  fab({1, 2}, 0) = 5.0;
  fab({1, 2}, 1) = -5.0;
  EXPECT_DOUBLE_EQ(fab({1, 2}, 0), 5.0);
  EXPECT_DOUBLE_EQ(fab({1, 2}, 1), -5.0);
  // component views are contiguous and non-overlapping
  EXPECT_EQ(fab.component(0).size(), 16u);
  EXPECT_EQ(fab.component(1).size(), 16u);
  EXPECT_EQ(fab.byte_size(), 16u * 2 * 8);
}

TEST(Fab, OutOfRangeThrows) {
  m::Fab fab(m::Box(0, 0, 3, 3), 1);
  EXPECT_THROW(fab({4, 0}, 0), amrio::ContractViolation);
  EXPECT_THROW(fab({0, 0}, 1), amrio::ContractViolation);
}

TEST(Fab, CopyFromIntersection) {
  m::Fab src(m::Box(0, 0, 7, 7), 1);
  src.set_val(3.0);
  m::Fab dst(m::Box(4, 4, 11, 11), 1);
  dst.set_val(0.0);
  dst.copy_from(src, 0, 0, 1);
  EXPECT_DOUBLE_EQ(dst({4, 4}, 0), 3.0);
  EXPECT_DOUBLE_EQ(dst({7, 7}, 0), 3.0);
  EXPECT_DOUBLE_EQ(dst({8, 8}, 0), 0.0);
}

TEST(Fab, MinMaxSumOverRegion) {
  m::Fab fab(m::Box(0, 0, 3, 3), 1);
  fab.set_val(1.0);
  fab({2, 2}, 0) = 10.0;
  const m::Box all(0, 0, 3, 3);
  EXPECT_DOUBLE_EQ(fab.min(all, 0), 1.0);
  EXPECT_DOUBLE_EQ(fab.max(all, 0), 10.0);
  EXPECT_DOUBLE_EQ(fab.sum(all, 0), 15.0 + 10.0);
  // restricted region excludes the spike
  const m::Box corner(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(fab.max(corner, 0), 1.0);
}

// ------------------------------------------------------------- Geometry

TEST(Geometry, CellSizesAndCenters) {
  m::Geometry g(m::Box(0, 0, 31, 31), {0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(g.cell_size(0), 1.0 / 32);
  const auto c = g.cell_center({0, 0});
  EXPECT_DOUBLE_EQ(c[0], 0.5 / 32);
  EXPECT_DOUBLE_EQ(c[1], 0.5 / 32);
  const auto lo = g.cell_lo({16, 16});
  EXPECT_DOUBLE_EQ(lo[0], 0.5);
}

TEST(Geometry, RefineHalvesCells) {
  m::Geometry g(m::Box(0, 0, 31, 31), {0.0, 0.0}, {1.0, 1.0});
  const auto fine = g.refine(2);
  EXPECT_DOUBLE_EQ(fine.cell_size(0), g.cell_size(0) / 2);
  EXPECT_EQ(fine.domain().num_pts(), g.domain().num_pts() * 4);
}

// ------------------------------------------------------------- MultiFab

TEST(MultiFab, FillBoundaryExchangesSiblingData) {
  // two adjacent boxes; ghost cells of one must receive valid data of the other
  m::BoxArray ba({m::Box(0, 0, 7, 7), m::Box(8, 0, 15, 7)});
  auto dm = m::DistributionMapping::make(ba, 1, m::DistributionStrategy::kRoundRobin);
  m::MultiFab mf(ba, dm, 1, 2);
  mf.fab(0).set_val(1.0);
  mf.fab(1).set_val(2.0);
  mf.fill_boundary();
  // ghost of box 0 at x=8 must now hold box 1's value
  EXPECT_DOUBLE_EQ(mf.fab(0)({8, 3}, 0), 2.0);
  EXPECT_DOUBLE_EQ(mf.fab(1)({7, 3}, 0), 1.0);
  // valid data untouched
  EXPECT_DOUBLE_EQ(mf.fab(0)({7, 3}, 0), 1.0);
}

TEST(MultiFab, CopyValidFromOverlap) {
  m::BoxArray src_ba(m::Box(0, 0, 15, 15));
  m::BoxArray dst_ba(m::Box(8, 8, 23, 23));
  auto dm1 = m::DistributionMapping::make(src_ba, 1, m::DistributionStrategy::kRoundRobin);
  auto dm2 = m::DistributionMapping::make(dst_ba, 1, m::DistributionStrategy::kRoundRobin);
  m::MultiFab src(src_ba, dm1, 1, 0);
  m::MultiFab dst(dst_ba, dm2, 1, 0);
  src.set_val(7.0);
  dst.set_val(0.0);
  dst.copy_valid_from(src, 0, 0, 1);
  EXPECT_DOUBLE_EQ(dst.fab(0)({8, 8}, 0), 7.0);
  EXPECT_DOUBLE_EQ(dst.fab(0)({15, 15}, 0), 7.0);
  EXPECT_DOUBLE_EQ(dst.fab(0)({16, 16}, 0), 0.0);
}

TEST(MultiFab, BytesOnRankMatchesOwnership) {
  m::BoxArray ba({m::Box(0, 0, 7, 7), m::Box(8, 0, 15, 7), m::Box(0, 8, 7, 15)});
  const auto dm =
      m::DistributionMapping::make(ba, 2, m::DistributionStrategy::kRoundRobin);
  m::MultiFab mf(ba, dm, 4, 0);
  std::uint64_t total = 0;
  for (int r = 0; r < 2; ++r) total += mf.bytes_on_rank(r);
  EXPECT_EQ(total, static_cast<std::uint64_t>(ba.num_pts()) * 4 * 8);
}

TEST(MultiFab, GlobalReductions) {
  m::BoxArray ba({m::Box(0, 0, 3, 3), m::Box(4, 0, 7, 3)});
  auto dm = m::DistributionMapping::make(ba, 1, m::DistributionStrategy::kRoundRobin);
  m::MultiFab mf(ba, dm, 1, 0);
  mf.set_val(2.0);
  mf.fab(1)({5, 1}, 0) = -3.0;
  EXPECT_DOUBLE_EQ(mf.min(0), -3.0);
  EXPECT_DOUBLE_EQ(mf.max(0), 2.0);
  EXPECT_DOUBLE_EQ(mf.sum(0), 2.0 * 31 - 3.0);
}

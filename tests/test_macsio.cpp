/// Tests for the MACSio-compatible proxy: CLI round-trip (Table II args),
/// part sizing, interface byte-exactness, growth series, the Fig. 3 output
/// pattern, MIF/SIF modes, and serial-vs-SPMD equivalence.

#include <gtest/gtest.h>

#include <cmath>

#include "iostats/aggregate.hpp"
#include "macsio/driver.hpp"
#include "macsio/interfaces.hpp"
#include "macsio/params.hpp"
#include "macsio/part.hpp"
#include "simmpi/comm.hpp"
#include "util/assert.hpp"

namespace mc = amrio::macsio;
namespace p = amrio::pfs;

// ---------------------------------------------------------------- params

TEST(Params, ParsesListing1StyleCommandLine) {
  const auto params = mc::Params::from_cli(
      {"--interface", "miftmpl", "--parallel_file_mode", "MIF", "8",
       "--num_dumps", "20", "--part_size", "1550000", "--avg_num_parts", "1",
       "--vars_per_part", "1", "--compute_time", "0.5", "--meta_size", "4K",
       "--dataset_growth", "1.013075", "--nprocs", "8"});
  EXPECT_EQ(params.interface, mc::Interface::kMiftmpl);
  EXPECT_EQ(params.file_mode, mc::FileMode::kMif);
  EXPECT_EQ(params.mif_files, 8);
  EXPECT_EQ(params.num_dumps, 20);
  EXPECT_EQ(params.part_size, 1550000u);
  EXPECT_EQ(params.meta_size, 4096u);
  EXPECT_DOUBLE_EQ(params.dataset_growth, 1.013075);
  EXPECT_EQ(params.nprocs, 8);
}

TEST(Params, Hdf5MapsToH5Lite) {
  const auto params = mc::Params::from_cli({"--interface", "hdf5"});
  EXPECT_EQ(params.interface, mc::Interface::kH5Lite);
}

TEST(Params, SifMode) {
  const auto params =
      mc::Params::from_cli({"--parallel_file_mode", "SIF", "1"});
  EXPECT_EQ(params.file_mode, mc::FileMode::kSif);
}

TEST(Params, CliRoundTrip) {
  mc::Params a;
  a.interface = mc::Interface::kH5Lite;
  a.num_dumps = 7;
  a.part_size = 123456;
  a.avg_num_parts = 2.5;
  a.vars_per_part = 3;
  a.dataset_growth = 1.0173;
  a.nprocs = 5;
  a.meta_size = 99;
  const auto b = mc::Params::from_cli(a.to_cli());
  EXPECT_EQ(b.interface, a.interface);
  EXPECT_EQ(b.num_dumps, a.num_dumps);
  EXPECT_EQ(b.part_size, a.part_size);
  EXPECT_DOUBLE_EQ(b.avg_num_parts, a.avg_num_parts);
  EXPECT_EQ(b.vars_per_part, a.vars_per_part);
  EXPECT_DOUBLE_EQ(b.dataset_growth, a.dataset_growth);
  EXPECT_EQ(b.nprocs, a.nprocs);
  EXPECT_EQ(b.meta_size, a.meta_size);
}

TEST(Params, ValidationRejectsBadValues) {
  mc::Params p;
  p.num_dumps = 0;
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p = {};
  p.dataset_growth = 0.0;
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p = {};
  p.mif_files = 9;
  p.nprocs = 4;
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
}

TEST(Params, GrowthSeriesIsGeometric) {
  mc::Params p;
  p.part_size = 100000;
  p.dataset_growth = 1.02;
  EXPECT_EQ(p.part_bytes_at_dump(0), 100000u);
  EXPECT_NEAR(static_cast<double>(p.part_bytes_at_dump(10)),
              100000.0 * std::pow(1.02, 10), 1.0);
}

TEST(Params, AvgNumPartsDistribution) {
  mc::Params p;
  p.nprocs = 4;
  p.avg_num_parts = 2.5;  // total 10 parts over 4 tasks: 3,3,2,2
  int total = 0;
  for (int r = 0; r < 4; ++r) total += p.parts_of_rank(r);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(p.parts_of_rank(0), 3);
  EXPECT_EQ(p.parts_of_rank(3), 2);
}

// ------------------------------------------------------------------ part

TEST(Part, SpecMeetsRequestedBytes) {
  for (std::uint64_t target : {8ull, 100ull, 8000ull, 1550000ull, 50000000ull}) {
    for (int vars : {1, 3, 8}) {
      const auto spec = mc::make_part_spec(target, vars);
      EXPECT_GE(spec.raw_bytes(), target);
      // never more than one row over
      EXPECT_LE(spec.raw_bytes(),
                target + static_cast<std::uint64_t>(spec.nx) * 8 * vars + 8ull * vars);
      // square-ish
      EXPECT_LE(std::abs(spec.nx - spec.ny), spec.nx);
    }
  }
}

// ------------------------------------------------------------ interfaces

class InterfaceTest : public ::testing::TestWithParam<mc::Interface> {};

TEST_P(InterfaceTest, CountingSinkMatchesFileSink) {
  const auto iface = mc::make_interface(GetParam());
  const mc::PartSpec spec = mc::make_part_spec(40000, 2);
  for (auto fill : {mc::FillMode::kSized, mc::FillMode::kReal}) {
    p::MemoryBackend be(true);
    std::uint64_t file_bytes = 0;
    {
      p::OutFile out(be, "part");
      mc::FileSink fsink(out);
      amrio::util::Xoshiro256 rng(3);
      iface->begin_task_doc(fsink, 0, 0);
      iface->write_part(fsink, spec, 0, fill, rng);
      iface->end_task_doc(fsink, 100);
      file_bytes = out.bytes_written();
    }
    EXPECT_EQ(file_bytes, be.size("part"));
    EXPECT_EQ(file_bytes, iface->task_doc_bytes(spec, 0, 0, 1, 100))
        << "interface " << mc::to_string(GetParam()) << " fill mode mismatch";
  }
}

TEST_P(InterfaceTest, SizedAndRealProduceSameByteCount) {
  const auto iface = mc::make_interface(GetParam());
  const mc::PartSpec spec = mc::make_part_spec(12345, 1);
  mc::CountingSink sized;
  mc::CountingSink real;
  amrio::util::Xoshiro256 rng1(1);
  amrio::util::Xoshiro256 rng2(1);
  iface->write_part(sized, spec, 0, mc::FillMode::kSized, rng1);
  iface->write_part(real, spec, 0, mc::FillMode::kReal, rng2);
  EXPECT_EQ(sized.bytes(), real.bytes());
}

TEST_P(InterfaceTest, MultiPartDocsScaleLinearly) {
  const auto iface = mc::make_interface(GetParam());
  const mc::PartSpec spec = mc::make_part_spec(8000, 1);
  const auto one = iface->task_doc_bytes(spec, 0, 0, 1, 0);
  const auto three = iface->task_doc_bytes(spec, 0, 0, 3, 0);
  // three parts cost ~3x one part (± envelope)
  EXPECT_GT(three, 2 * one);
  EXPECT_LT(three, 4 * one);
}

INSTANTIATE_TEST_SUITE_P(AllInterfaces, InterfaceTest,
                         ::testing::Values(mc::Interface::kMiftmpl,
                                           mc::Interface::kH5Lite,
                                           mc::Interface::kRaw));

TEST(Interfaces, JsonIsParseableEnvelope) {
  // the miftmpl output must at least look like the Fig. 3 json documents
  const auto iface = mc::make_interface(mc::Interface::kMiftmpl);
  p::MemoryBackend be(true);
  {
    p::OutFile out(be, "doc.json");
    mc::FileSink sink(out);
    amrio::util::Xoshiro256 rng(1);
    iface->begin_task_doc(sink, 3, 7);
    iface->write_part(sink, mc::make_part_spec(160, 1), 0, mc::FillMode::kReal,
                      rng);
    iface->end_task_doc(sink, 4);
  }
  const auto bytes = be.read("doc.json");
  const std::string text(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"task\":3"), std::string::npos);
  EXPECT_NE(text.find("\"dump\":7"), std::string::npos);
  EXPECT_NE(text.find("\"vars\""), std::string::npos);
  EXPECT_NE(text.find("null]"), std::string::npos);
}

TEST(Interfaces, JsonOverheadFactorNearThree) {
  // fixed-width 23-char values + comma = 24 bytes per 8-byte double → the
  // text-vs-binary inflation the paper's Eq. (3) correction factor absorbs
  const auto iface = mc::make_interface(mc::Interface::kMiftmpl);
  const mc::PartSpec spec = mc::make_part_spec(800000, 1);
  const auto bytes = iface->task_doc_bytes(spec, 0, 0, 1, 0);
  const double factor = static_cast<double>(bytes) / spec.raw_bytes();
  EXPECT_GT(factor, 2.8);
  EXPECT_LT(factor, 3.2);
}

TEST(Interfaces, BinaryOverheadSmall) {
  const auto iface = mc::make_interface(mc::Interface::kH5Lite);
  const mc::PartSpec spec = mc::make_part_spec(800000, 1);
  const auto bytes = iface->task_doc_bytes(spec, 0, 0, 1, 0);
  const double factor = static_cast<double>(bytes) / spec.raw_bytes();
  EXPECT_GT(factor, 0.99);
  EXPECT_LT(factor, 1.01);
}

// ---------------------------------------------------------------- driver

TEST(Driver, ProducesFig3OutputPattern) {
  mc::Params params;
  params.nprocs = 3;
  params.num_dumps = 2;
  params.part_size = 4000;
  params.output_dir = "macsio_out";
  p::MemoryBackend be(false);
  mc::run_macsio(params, be);
  // data/macsio_json_{taskID}_{stepID}.json (MIF N-to-N)
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_00000_000.json"));
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_00002_001.json"));
  // metadata/macsio_json_root_{stepID}.json
  EXPECT_TRUE(be.exists("macsio_out/metadata/macsio_json_root_000.json"));
  EXPECT_TRUE(be.exists("macsio_out/metadata/macsio_json_root_001.json"));
  // N-to-N: 3 task files + 1 root per dump
  EXPECT_EQ(be.file_count(), 2u * (3 + 1));
}

TEST(Driver, StatsMatchBackend) {
  mc::Params params;
  params.nprocs = 4;
  params.num_dumps = 3;
  params.part_size = 10000;
  params.dataset_growth = 1.05;
  p::MemoryBackend be(false);
  const auto stats = mc::run_macsio(params, be);
  EXPECT_EQ(stats.total_bytes, be.total_bytes());
  EXPECT_EQ(stats.nfiles, be.file_count());
  ASSERT_EQ(stats.bytes_per_dump.size(), 3u);
  // growth: later dumps strictly larger
  EXPECT_GT(stats.bytes_per_dump[2], stats.bytes_per_dump[0]);
  // cumulative is the prefix sum
  const auto cum = stats.cumulative();
  EXPECT_DOUBLE_EQ(cum[1],
                   static_cast<double>(stats.bytes_per_dump[0] +
                                       stats.bytes_per_dump[1]));
}

TEST(Driver, MifGroupingSharesFiles) {
  mc::Params params;
  params.nprocs = 8;
  params.mif_files = 2;  // 4 tasks per file
  params.num_dumps = 1;
  params.part_size = 2000;
  p::MemoryBackend be(false);
  const auto stats = mc::run_macsio(params, be);
  // 2 data files + 1 root
  EXPECT_EQ(stats.nfiles, 3u);
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_00000_000.json"));
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_00001_000.json"));
}

TEST(Driver, SifSingleSharedFile) {
  mc::Params params;
  params.nprocs = 6;
  params.file_mode = mc::FileMode::kSif;
  params.num_dumps = 2;
  params.part_size = 2000;
  p::MemoryBackend be(false);
  const auto stats = mc::run_macsio(params, be);
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_shared_000.json"));
  EXPECT_TRUE(be.exists("macsio_out/data/macsio_json_shared_001.json"));
  EXPECT_EQ(stats.nfiles, 4u);  // 2 shared + 2 roots
}

TEST(Driver, ComputeTimeSpacesRequests) {
  mc::Params params;
  params.nprocs = 2;
  params.num_dumps = 3;
  params.compute_time = 1.5;
  params.part_size = 1000;
  p::MemoryBackend be(false);
  const auto stats = mc::run_macsio(params, be);
  for (const auto& req : stats.requests) {
    const double phase = std::fmod(req.submit_time, 1.5);
    EXPECT_NEAR(phase, 0.0, 1e-12);
  }
  double max_t = 0.0;
  for (const auto& req : stats.requests) max_t = std::max(max_t, req.submit_time);
  EXPECT_DOUBLE_EQ(max_t, 3.0);
}

TEST(Driver, TraceRecordsPerTaskBytes) {
  mc::Params params;
  params.nprocs = 3;
  params.num_dumps = 2;
  params.part_size = 5000;
  p::MemoryBackend be(false);
  amrio::iostats::TraceRecorder trace;
  const auto stats = mc::run_macsio(params, be, &trace);
  EXPECT_EQ(trace.total_bytes(), stats.total_bytes);
  const auto table = amrio::iostats::aggregate(trace.events());
  // per-task data rows at level 0
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(table.at({0, 0, r}),
              stats.task_bytes[0][static_cast<std::size_t>(r)]);
  }
}

TEST(Driver, MetaSizeAddsPerTaskBytes) {
  mc::Params base;
  base.nprocs = 2;
  base.num_dumps = 1;
  base.part_size = 1000;
  p::MemoryBackend be1(false);
  const auto without = mc::run_macsio(base, be1);
  base.meta_size = 10000;
  p::MemoryBackend be2(false);
  const auto with = mc::run_macsio(base, be2);
  EXPECT_NEAR(static_cast<double>(with.total_bytes - without.total_bytes),
              2 * 10000.0, 64.0);
}

// ------------------------------------------------------------------ SPMD

TEST(DriverSpmd, MatchesSerialByteForByte) {
  mc::Params params;
  params.nprocs = 4;
  params.num_dumps = 2;
  params.part_size = 3000;
  params.dataset_growth = 1.1;
  params.meta_size = 50;

  p::MemoryBackend serial_be(false);
  const auto serial = mc::run_macsio(params, serial_be);

  p::MemoryBackend spmd_be(false);
  mc::DumpStats spmd;
  amrio::simmpi::run_spmd(4, [&](amrio::simmpi::Comm& comm) {
    auto stats = mc::run_macsio_spmd(comm, params, spmd_be);
    if (comm.rank() == 0) spmd = std::move(stats);
  });

  EXPECT_EQ(spmd.total_bytes, serial.total_bytes);
  EXPECT_EQ(spmd.nfiles, serial.nfiles);
  ASSERT_EQ(spmd.task_bytes.size(), serial.task_bytes.size());
  for (std::size_t d = 0; d < spmd.task_bytes.size(); ++d)
    EXPECT_EQ(spmd.task_bytes[d], serial.task_bytes[d]) << "dump " << d;
  // identical backend contents (paths + sizes)
  EXPECT_EQ(spmd_be.list(""), serial_be.list(""));
  for (const auto& path : serial_be.list(""))
    EXPECT_EQ(spmd_be.size(path), serial_be.size(path)) << path;
}

TEST(DriverSpmd, MifGroupBatonOrdering) {
  // grouped MIF in SPMD: group members append in rank order; totals must
  // match the serial driver
  mc::Params params;
  params.nprocs = 6;
  params.mif_files = 2;
  params.num_dumps = 1;
  params.part_size = 1000;

  p::MemoryBackend serial_be(true);
  mc::run_macsio(params, serial_be);
  p::MemoryBackend spmd_be(true);
  amrio::simmpi::run_spmd(6, [&](amrio::simmpi::Comm& comm) {
    mc::run_macsio_spmd(comm, params, spmd_be);
  });
  for (const auto& path : serial_be.list("")) {
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
  }
}

TEST(DriverSpmd, WrongCommSizeRejected) {
  mc::Params params;
  params.nprocs = 3;
  p::MemoryBackend be(false);
  EXPECT_THROW(amrio::simmpi::run_spmd(
                   2,
                   [&](amrio::simmpi::Comm& comm) {
                     mc::run_macsio_spmd(comm, params, be);
                   }),
               amrio::ContractViolation);
}

/// Unit tests for src/util: string/byte formatting, stats, CSV/JSON emitters,
/// CLI parsing, and the AMReX inputs-file parser (paper Listing 2 format).

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/inputs.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace u = amrio::util;

// ---------------------------------------------------------------- format

TEST(Format, SplitKeepsEmptyTokens) {
  const auto parts = u::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Format, SplitWsDropsEmptyTokens) {
  const auto parts = u::split_ws("  32   32\t64 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "32");
  EXPECT_EQ(parts[2], "64");
}

TEST(Format, TrimBothEnds) {
  EXPECT_EQ(u::trim("  x y  "), "x y");
  EXPECT_EQ(u::trim("\t\n"), "");
  EXPECT_EQ(u::trim(""), "");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(u::human_bytes(512), "512 B");
  EXPECT_EQ(u::human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(u::human_bytes(1ull << 30), "1.00 GiB");
}

TEST(Format, ParseBytesPlain) {
  EXPECT_EQ(u::parse_bytes("1234"), 1234u);
  EXPECT_EQ(u::parse_bytes("0"), 0u);
}

TEST(Format, ParseBytesSuffixes) {
  EXPECT_EQ(u::parse_bytes("64K"), 64u * 1024);
  EXPECT_EQ(u::parse_bytes("1.5M"), static_cast<std::uint64_t>(1.5 * 1024 * 1024));
  EXPECT_EQ(u::parse_bytes("2G"), 2ull << 30);
  EXPECT_EQ(u::parse_bytes(" 8 KiB "), 8u * 1024);
}

TEST(Format, ParseBytesRejectsGarbage) {
  EXPECT_THROW(u::parse_bytes(""), std::invalid_argument);
  EXPECT_THROW(u::parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW(u::parse_bytes("12Q"), std::invalid_argument);
  EXPECT_THROW(u::parse_bytes("-5K"), std::invalid_argument);
}

TEST(Format, ZeroPad) {
  EXPECT_EQ(u::zero_pad(7, 5), "00007");
  EXPECT_EQ(u::zero_pad(12345, 5), "12345");
  EXPECT_EQ(u::zero_pad(123456, 5), "123456");  // does not truncate
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSeed) {
  u::Xoshiro256 a(42);
  u::Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Xoshiro256 a(1);
  u::Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  u::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, LognormalMeanCorrection) {
  // E[exp(sigma Z - sigma²/2)] == 1.
  u::Xoshiro256 rng(99);
  const double sigma = 0.4;
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    acc += rng.lognormal(-0.5 * sigma * sigma, sigma);
  EXPECT_NEAR(acc / n, 1.0, 0.01);
}

// ---------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
  u::RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.push(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(u::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 0.25), 2.0);
}

TEST(Stats, ImbalanceFactor) {
  const std::vector<double> balanced{4, 4, 4, 4};
  EXPECT_DOUBLE_EQ(u::imbalance_factor(balanced), 1.0);
  const std::vector<double> skewed{0, 0, 0, 8};
  EXPECT_DOUBLE_EQ(u::imbalance_factor(skewed), 4.0);
}

TEST(Stats, GiniBounds) {
  const std::vector<double> even{5, 5, 5, 5};
  EXPECT_NEAR(u::gini(even), 0.0, 1e-12);
  const std::vector<double> one{0, 0, 0, 100};
  EXPECT_GT(u::gini(one), 0.7);
}

TEST(Stats, HistogramCountsEverything) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const auto h = u::histogram(v, 10);
  std::uint64_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, 100u);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 99.0);
}

// ------------------------------------------------------------------ csv

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(u::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(u::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(u::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RowArityEnforced) {
  const std::string path = testing::TempDir() + "/amrio_csv_test.csv";
  u::CsvWriter csv(path);
  csv.header({"a", "b"});
  csv.field("1").field("2");
  csv.endrow();
  csv.field("only-one");
  EXPECT_THROW(csv.endrow(), amrio::ContractViolation);
}

// ----------------------------------------------------------------- json

TEST(Json, ObjectAndArray) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_object();
  w.key("name").value("sedov");
  w.key("steps").begin_array().value(1).value(2).value(3).end_array();
  w.key("ok").value(true);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"name":"sedov","steps":[1,2,3],"ok":true})");
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(u::JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Json, KeyOutsideObjectThrows) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_array();
  EXPECT_THROW(w.key("nope"), amrio::ContractViolation);
}

TEST(Json, ValueWithoutKeyInObjectThrows) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(1), amrio::ContractViolation);
}

// ------------------------------------------------------------------ cli

TEST(Cli, ParsesOptionsAndFlags) {
  u::ArgParser cli("prog", "test");
  cli.add_option("num_dumps", "dumps", 1, std::string("10"));
  cli.add_option("part_size", "bytes");
  cli.add_flag("verbose", "talk more");
  cli.parse({"--part_size", "64K", "--verbose"});
  EXPECT_EQ(cli.get_int("num_dumps"), 10);
  EXPECT_EQ(cli.get("part_size"), "64K");
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  u::ArgParser cli("prog", "test");
  cli.add_option("cfl", "courant number");
  cli.parse({"--cfl=0.4"});
  EXPECT_DOUBLE_EQ(cli.get_double("cfl"), 0.4);
}

TEST(Cli, MultiValueOption) {
  u::ArgParser cli("prog", "test");
  cli.add_option("parallel_file_mode", "mode", 2);
  cli.parse({"--parallel_file_mode", "MIF", "8"});
  const auto v = cli.get_all("parallel_file_mode");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "MIF");
  EXPECT_EQ(v[1], "8");
}

TEST(Cli, UnknownOptionThrows) {
  u::ArgParser cli("prog", "test");
  EXPECT_THROW(cli.parse({"--mystery", "1"}), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  u::ArgParser cli("prog", "test");
  cli.add_option("n", "count");
  EXPECT_THROW(cli.parse({"--n"}), std::invalid_argument);
}

// --------------------------------------------------------------- inputs

namespace {
constexpr const char* kListing2 = R"(
# INPUTS TO MAIN PROGRAM
max_step = 500
stop_time = 0.1
geometry.is_periodic = 0 0
geometry.coord_sys = 0 # 0 => cart
geometry.prob_lo = 0 0
geometry.prob_hi = 1 1
amr.n_cell = 32 32
castro.lo_bc = 2 2
castro.hi_bc = 2 2
castro.do_hydro = 1
castro.do_react = 0
castro.cfl = 0.5
castro.init_shrink = 0.01
castro.change_max = 1.1
castro.sum_interval = 1
castro.v = 1
amr.v = 1
amr.max_level = 3
amr.ref_ratio = 2 2 2 2
amr.regrid_int = 2
amr.blocking_factor = 8
amr.max_grid_size = 256
amr.check_file = sedov_2d_cyl_in_cart_chk
amr.check_int = 20
amr.plot_file = sedov_2d_cyl_in_cart_plt
amr.plot_int = 20
amr.derive_plot_vars=ALL
amr.probin_file =
)";
}

TEST(Inputs, ParsesListing2Verbatim) {
  const auto in = u::InputsFile::from_string(kListing2);
  EXPECT_EQ(in.get_int("max_step"), 500);
  EXPECT_DOUBLE_EQ(in.get_double("stop_time"), 0.1);
  EXPECT_EQ(in.get_int_list("amr.n_cell"), (std::vector<std::int64_t>{32, 32}));
  EXPECT_EQ(in.get_int("amr.max_level"), 3);
  EXPECT_DOUBLE_EQ(in.get_double("castro.cfl"), 0.5);
  EXPECT_EQ(in.get_string("amr.plot_file"), "sedov_2d_cyl_in_cart_plt");
  EXPECT_EQ(in.get_int("amr.plot_int"), 20);
  // comment stripped mid-line
  EXPECT_EQ(in.get_int("geometry.coord_sys"), 0);
  // key present but empty value
  EXPECT_TRUE(in.contains("amr.probin_file"));
  EXPECT_THROW(in.get_string("amr.probin_file"), std::invalid_argument);
}

TEST(Inputs, MissingKeyBehaviour) {
  const auto in = u::InputsFile::from_string("a.b = 1\n");
  EXPECT_THROW(in.get_int("nope"), std::out_of_range);
  EXPECT_EQ(in.get_int_or("nope", 7), 7);
  EXPECT_EQ(in.get_string_or("nope", "x"), "x");
}

TEST(Inputs, BadConversionThrows) {
  const auto in = u::InputsFile::from_string("k = abc\n");
  EXPECT_THROW(in.get_int("k"), std::invalid_argument);
  EXPECT_THROW(in.get_double("k"), std::invalid_argument);
}

TEST(Inputs, MalformedLineThrows) {
  EXPECT_THROW(u::InputsFile::from_string("no equals sign here\n"),
               std::invalid_argument);
  EXPECT_THROW(u::InputsFile::from_string("= 3\n"), std::invalid_argument);
}

TEST(Inputs, RoundTripThroughToString) {
  auto in = u::InputsFile::from_string("b.key = 2 3\na.key = 1\n");
  in.set("c.key", static_cast<std::int64_t>(9));
  const auto again = u::InputsFile::from_string(in.to_string());
  EXPECT_EQ(again.get_int_list("b.key"), (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(again.get_int("a.key"), 1);
  EXPECT_EQ(again.get_int("c.key"), 9);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAllRows) {
  u::TextTable t({"col1", "col2"});
  t.add_row({"a", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, WrongArityThrows) {
  u::TextTable t({"a", "b", "c"});
  EXPECT_THROW(t.add_row({"only", "two"}), amrio::ContractViolation);
}

// ----------------------------------------------------------- ascii plot

TEST(AsciiPlot, PlotsSeriesGlyphs) {
  u::Series s1{"linear", {1, 2, 3, 4}, {1, 2, 3, 4}};
  u::Series s2{"flat", {1, 2, 3, 4}, {2, 2, 2, 2}};
  u::PlotOptions opts;
  opts.title = "test";
  const std::string out = u::plot_xy({s1, s2}, opts);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find("linear"), std::string::npos);
}

TEST(AsciiPlot, LogScaleSkipsNonPositive) {
  u::Series s{"s", {0.0, 10.0, 100.0}, {-1.0, 10.0, 100.0}};
  u::PlotOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  EXPECT_NO_THROW(u::plot_xy({s}, opts));
}

TEST(AsciiPlot, HeatmapDimensionsChecked) {
  std::vector<double> field(12, 1.0);
  EXPECT_NO_THROW(u::heatmap(field, 4, 3, "t"));
  EXPECT_THROW(u::heatmap(field, 5, 3, "t"), amrio::ContractViolation);
}

// --------------------------------------------------------------- assert

TEST(Assert, ExpectsThrowsWithContext) {
  try {
    AMRIO_EXPECTS_MSG(1 == 2, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const amrio::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the answer is 42"), std::string::npos);
  }
}

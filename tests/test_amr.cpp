/// Tests for the AMR driver substrate: inputs parsing (paper Listing 2),
/// tagging, Berger–Rigoutsos clustering invariants, and AmrCore dynamics.

#include <gtest/gtest.h>

#include <set>

#include "amr/cluster.hpp"
#include "amr/core.hpp"
#include "amr/inputs.hpp"
#include "amr/tagging.hpp"
#include "hydro/derive.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace a = amrio::amr;
namespace m = amrio::mesh;
namespace h = amrio::hydro;

// ---------------------------------------------------------------- inputs

TEST(AmrInputs, BaselineMatchesListing2) {
  const auto in = a::AmrInputs::sedov_baseline();
  EXPECT_EQ(in.max_step, 500);
  EXPECT_DOUBLE_EQ(in.stop_time, 0.1);
  EXPECT_EQ(in.n_cell[0], 32);
  EXPECT_EQ(in.max_level, 3);
  EXPECT_EQ(in.ref_ratio, 2);
  EXPECT_EQ(in.regrid_int, 2);
  EXPECT_EQ(in.blocking_factor, 8);
  EXPECT_EQ(in.max_grid_size, 256);
  EXPECT_DOUBLE_EQ(in.cfl, 0.5);
  EXPECT_DOUBLE_EQ(in.init_shrink, 0.01);
  EXPECT_DOUBLE_EQ(in.change_max, 1.1);
  EXPECT_EQ(in.plot_int, 20);
  EXPECT_EQ(in.plot_file, "sedov_2d_cyl_in_cart_plt");
  EXPECT_NO_THROW(in.validate());
}

TEST(AmrInputs, ParsesTableIKeys) {
  // The five Table I parameters that drive the study.
  const auto in = a::AmrInputs::from_string(R"(
max_step = 40
amr.n_cell = 128 128
amr.max_level = 2
amr.plot_int = 5
castro.cfl = 0.3
)");
  EXPECT_EQ(in.max_step, 40);
  EXPECT_EQ(in.n_cell[0], 128);
  EXPECT_EQ(in.max_level, 2);
  EXPECT_EQ(in.plot_int, 5);
  EXPECT_DOUBLE_EQ(in.cfl, 0.3);
}

TEST(AmrInputs, RoundTripsThroughInputsFile) {
  auto in = a::AmrInputs::sedov_baseline();
  in.cfl = 0.37;
  in.nprocs = 12;
  in.n_cell = {64, 64};
  const auto again = a::AmrInputs::from_inputs(in.to_inputs());
  EXPECT_DOUBLE_EQ(again.cfl, 0.37);
  EXPECT_EQ(again.nprocs, 12);
  EXPECT_EQ(again.n_cell[0], 64);
  EXPECT_EQ(again.plot_file, in.plot_file);
  EXPECT_EQ(again.distribution, in.distribution);
}

TEST(AmrInputs, ValidationCatchesBadValues) {
  auto in = a::AmrInputs::sedov_baseline();
  in.cfl = 1.5;
  EXPECT_THROW(in.validate(), amrio::ContractViolation);
  in = a::AmrInputs::sedov_baseline();
  in.blocking_factor = 6;  // not a power of two
  EXPECT_THROW(in.validate(), amrio::ContractViolation);
  in = a::AmrInputs::sedov_baseline();
  in.n_cell = {30, 32};  // not a multiple of blocking factor
  EXPECT_THROW(in.validate(), amrio::ContractViolation);
  in = a::AmrInputs::sedov_baseline();
  in.max_grid_size = 4;  // below blocking factor
  EXPECT_THROW(in.validate(), amrio::ContractViolation);
}

TEST(AmrInputs, UnknownKeysIgnored) {
  EXPECT_NO_THROW(a::AmrInputs::from_string("weird.key = 3\n"));
}

// --------------------------------------------------------------- tagging

namespace {
/// MultiFab with a sharp density step at x = split.
m::MultiFab step_state(int n, int split) {
  m::BoxArray ba(m::Box(0, 0, n - 1, n - 1));
  auto dm = m::DistributionMapping::make(ba, 1, m::DistributionStrategy::kSfc);
  m::MultiFab mf(ba, dm, h::kNCons, 1);
  const h::GammaLawEos eos(1.4);
  for (int j = -1; j <= n; ++j) {
    for (int i = -1; i <= n; ++i) {
      h::Prim q{i < split ? 1.0 : 4.0, 0.0, 0.0, 1.0};
      const h::Cons c = eos.to_cons(q);
      if (mf.fab(0).box().contains({i, j}))
        for (int comp = 0; comp < h::kNCons; ++comp)
          mf.fab(0)({i, j}, comp) = c[comp];
    }
  }
  return mf;
}
}  // namespace

TEST(Tagging, FindsTheDiscontinuity) {
  const int n = 16;
  const int split = 8;
  const auto mf = step_state(n, split);
  a::TaggingParams params;
  const auto tags = a::tag_cells(mf, h::GammaLawEos(1.4), params);
  ASSERT_FALSE(tags.empty());
  for (const auto& t : tags) {
    EXPECT_GE(t.x, split - 1);
    EXPECT_LE(t.x, split);
  }
  // every row near the step should be tagged (2 columns × n rows)
  EXPECT_EQ(tags.size(), static_cast<std::size_t>(2 * n));
}

TEST(Tagging, UniformStateProducesNoTags) {
  m::BoxArray ba(m::Box(0, 0, 15, 15));
  auto dm = m::DistributionMapping::make(ba, 1, m::DistributionStrategy::kSfc);
  m::MultiFab mf(ba, dm, h::kNCons, 1);
  mf.set_val(0.0);
  for (std::size_t b = 0; b < mf.nfabs(); ++b) {
    mf.fab(b).set_val(1.0, h::kURho);
    mf.fab(b).set_val(2.5, h::kUEden);
  }
  const auto tags = a::tag_cells(mf, h::GammaLawEos(1.4), a::TaggingParams{});
  EXPECT_TRUE(tags.empty());
}

TEST(Tagging, ThresholdControlsSensitivity) {
  const auto mf = step_state(16, 8);
  a::TaggingParams loose;
  loose.dens_grad_rel = 100.0;
  loose.pres_grad_rel = 100.0;
  EXPECT_TRUE(a::tag_cells(mf, h::GammaLawEos(1.4), loose).empty());
}

// ------------------------------------------------------------ clustering

TEST(Cluster, SingleBlobOneBox) {
  std::vector<m::IntVect> tags;
  for (int j = 4; j < 8; ++j)
    for (int i = 4; i < 8; ++i) tags.push_back({i, j});
  const auto boxes = a::berger_rigoutsos(tags, 0.7, 1);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], m::Box(4, 4, 7, 7));
}

TEST(Cluster, TwoSeparatedBlobsSplitAtHole) {
  std::vector<m::IntVect> tags;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) {
      tags.push_back({i, j});
      tags.push_back({i + 20, j});
    }
  const auto boxes = a::berger_rigoutsos(tags, 0.7, 1);
  ASSERT_EQ(boxes.size(), 2u);
  std::int64_t covered = 0;
  for (const auto& b : boxes) covered += b.num_pts();
  EXPECT_EQ(covered, 32);  // tight boxes, no waste
}

TEST(Cluster, AllTagsCovered) {
  // random scatter: every tag must be inside some box
  amrio::util::Xoshiro256 rng(5);
  std::vector<m::IntVect> tags;
  for (int k = 0; k < 300; ++k)
    tags.push_back({static_cast<int>(rng.uniform_int(64)),
                    static_cast<int>(rng.uniform_int(64))});
  const auto boxes = a::berger_rigoutsos(tags, 0.5, 2);
  for (const auto& t : tags) {
    bool covered = false;
    for (const auto& b : boxes)
      if (b.contains(t)) covered = true;
    EXPECT_TRUE(covered) << "tag " << t.x << "," << t.y << " uncovered";
  }
}

TEST(Cluster, EfficiencyRespected) {
  // ring of tags: boxes must achieve the efficiency target (or be minimal)
  std::vector<m::IntVect> tags;
  for (int k = 0; k < 360; k += 2) {
    const double a_rad = k * M_PI / 180.0;
    tags.push_back({32 + static_cast<int>(24 * std::cos(a_rad)),
                    32 + static_cast<int>(24 * std::sin(a_rad))});
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  const double eff = 0.6;
  const auto boxes = a::berger_rigoutsos(tags, eff, 2);
  for (const auto& b : boxes) {
    int count = 0;
    for (const auto& t : tags)
      if (b.contains(t)) ++count;
    const double box_eff = static_cast<double>(count) / b.num_pts();
    const bool minimal = b.length(0) <= 4 && b.length(1) <= 4;
    EXPECT_TRUE(box_eff >= eff * 0.5 || minimal)
        << "inefficient box " << b.to_string() << " eff=" << box_eff;
  }
}

TEST(MakeFineGrids, RespectsAllConstraints) {
  const m::Box domain(0, 0, 63, 63);
  const m::BoxArray parents(domain);
  a::ClusterParams params;
  params.blocking_factor = 8;
  params.max_grid_size = 32;
  params.ref_ratio = 2;
  params.error_buf = 1;
  std::vector<m::IntVect> tags;
  for (int j = 20; j < 28; ++j)
    for (int i = 12; i < 44; ++i) tags.push_back({i, j});
  const auto fine = a::make_fine_grids(tags, domain, parents, params);
  ASSERT_FALSE(fine.empty());
  EXPECT_TRUE(fine.is_disjoint());
  const m::Box fine_domain = domain.refine(2);
  for (const auto& b : fine.boxes()) {
    EXPECT_TRUE(fine_domain.contains(b));
    EXPECT_LE(b.length(0), params.max_grid_size);
    EXPECT_LE(b.length(1), params.max_grid_size);
  }
  // every tag (refined) is covered
  for (const auto& t : tags) {
    const m::Box cell(t, t);
    EXPECT_TRUE(fine.covers(cell.refine(2)));
  }
}

TEST(MakeFineGrids, NestsInsideParents) {
  const m::Box domain(0, 0, 63, 63);
  // parent level covers only the left half
  const m::BoxArray parents(m::Box(0, 0, 31, 63));
  a::ClusterParams params;
  std::vector<m::IntVect> tags;
  for (int j = 10; j < 20; ++j)
    for (int i = 24; i < 40; ++i) tags.push_back({i, j});  // straddles the edge
  const auto fine = a::make_fine_grids(tags, domain, parents, params);
  const m::Box allowed = m::Box(0, 0, 31, 63).refine(2);
  for (const auto& b : fine.boxes()) EXPECT_TRUE(allowed.contains(b));
}

TEST(MakeFineGrids, EmptyTagsEmptyGrids) {
  EXPECT_TRUE(a::make_fine_grids({}, m::Box(0, 0, 31, 31),
                                 m::BoxArray(m::Box(0, 0, 31, 31)),
                                 a::ClusterParams{})
                  .empty());
}

// ----------------------------------------------------------------- core

namespace {
a::AmrInputs small_inputs() {
  auto in = a::AmrInputs::sedov_baseline();
  in.n_cell = {32, 32};
  in.max_level = 2;
  in.max_step = 12;
  in.plot_int = 4;
  in.max_grid_size = 16;
  in.stop_time = 100.0;
  in.sedov_r_init = 0.1;
  in.nprocs = 4;
  return in;
}
}  // namespace

TEST(AmrCore, InitBuildsNestedHierarchy) {
  a::AmrCore core(small_inputs());
  core.init();
  EXPECT_GE(core.finest_level(), 1);
  for (int l = 1; l <= core.finest_level(); ++l) {
    const auto& fine = core.level(l).state.box_array();
    const auto& coarse = core.level(l - 1).state.box_array();
    EXPECT_TRUE(fine.is_disjoint());
    // proper nesting: each fine box coarsened is covered by the coarse level
    for (const auto& b : fine.boxes())
      EXPECT_TRUE(coarse.covers(b.coarsen(2)));
    // geometry consistency
    EXPECT_EQ(core.level(l).geom.domain(),
              core.level(l - 1).geom.domain().refine(2));
  }
}

TEST(AmrCore, DtControlsFollowCastro) {
  a::AmrCore core(small_inputs());
  core.init();
  const double dt0 = core.compute_dt();
  core.advance(dt0);
  const double dt1 = core.compute_dt();
  // init_shrink makes the first dt tiny; change_max limits growth to 1.1x
  EXPECT_LE(dt1, 1.1 * dt0 * (1.0 + 1e-12));
  EXPECT_GT(dt1, dt0 * 0.5);
}

TEST(AmrCore, RunProducesHistoryAndPlots) {
  a::AmrCore core(small_inputs());
  int plots = 0;
  std::vector<std::int64_t> plot_steps;
  core.run([&](const a::AmrCore&, std::int64_t step, double) {
    ++plots;
    plot_steps.push_back(step);
  });
  EXPECT_EQ(core.step(), 12);
  // plt at steps 0, 4, 8, 12
  EXPECT_EQ(plots, 4);
  EXPECT_EQ(plot_steps, (std::vector<std::int64_t>{0, 4, 8, 12}));
  EXPECT_EQ(core.history().size(), 13u);  // step 0 record + 12 advances
  // time strictly increases
  for (std::size_t i = 1; i < core.history().size(); ++i)
    EXPECT_GT(core.history()[i].time, core.history()[i - 1].time);
}

TEST(AmrCore, PlotfileNamesCastroStyle) {
  a::AmrCore core(small_inputs());
  EXPECT_EQ(core.plotfile_name(0), "sedov_2d_cyl_in_cart_plt00000");
  EXPECT_EQ(core.plotfile_name(20), "sedov_2d_cyl_in_cart_plt00020");
  EXPECT_TRUE(core.should_plot(0));
  EXPECT_TRUE(core.should_plot(4));
  EXPECT_FALSE(core.should_plot(3));
}

TEST(AmrCore, RegridKeepsInvariants) {
  a::AmrCore core(small_inputs());
  core.init();
  for (int i = 0; i < 4; ++i) {
    core.advance(core.compute_dt());
    core.regrid();
    for (int l = 1; l <= core.finest_level(); ++l) {
      const auto& fine = core.level(l).state.box_array();
      EXPECT_TRUE(fine.is_disjoint());
      for (const auto& b : fine.boxes())
        EXPECT_TRUE(core.level(l - 1).state.box_array().covers(b.coarsen(2)));
    }
  }
}

TEST(AmrCore, MassApproximatelyConserved) {
  // outflow BCs lose a little at the boundary, but over a short run total
  // mass should stay within a fraction of a percent
  a::AmrCore core(small_inputs());
  core.init();
  const double mass0 = core.level(0).state.sum(h::kURho);
  for (int i = 0; i < 8; ++i) core.advance(core.compute_dt());
  const double mass1 = core.level(0).state.sum(h::kURho);
  EXPECT_NEAR(mass1 / mass0, 1.0, 5e-3);
}

TEST(AmrCore, DeriveLevelShapesMatch) {
  a::AmrCore core(small_inputs());
  core.init();
  const auto derived = core.derive_level(0);
  EXPECT_EQ(derived.ncomp(), h::num_plot_vars());
  EXPECT_EQ(derived.box_array().num_pts(),
            core.level(0).state.box_array().num_pts());
  EXPECT_EQ(derived.nghost(), 0);
  // density component equals the state's density
  EXPECT_NEAR(derived.fab(0)(derived.valid_box(0).lo(), 0),
              core.level(0).state.fab(0)(core.level(0).state.valid_box(0).lo(),
                                         h::kURho),
              1e-14);
}

TEST(AmrCore, MaxLevelZeroIsUniformGrid) {
  auto in = small_inputs();
  in.max_level = 0;
  a::AmrCore core(in);
  core.init();
  EXPECT_EQ(core.finest_level(), 0);
  EXPECT_EQ(core.level(0).state.num_pts(), 32 * 32);
}

TEST(AmrCore, FinerLevelsTrackTheBlastOverTime) {
  // the refined region (ring) must grow as the blast expands
  auto in = small_inputs();
  in.max_step = 30;
  a::AmrCore core(in);
  core.init();
  const std::int64_t fine_cells_start =
      core.finest_level() >= 1 ? core.level(1).state.num_pts() : 0;
  core.run({});
  ASSERT_GE(core.finest_level(), 1);
  const std::int64_t fine_cells_end = core.level(1).state.num_pts();
  EXPECT_GT(fine_cells_end, fine_cells_start);
}

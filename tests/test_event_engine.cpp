/// Tests for exec::EventEngine (the discrete-event engine for machine-scale
/// rank counts) beyond the shared EngineCollectives suite in test_exec.cpp:
/// the three-way engine-parity matrix — serial vs spmd vs event over
/// MIF/SIF × {direct, agg, bb} × {identity, ebl} at 32 ranks, write AND
/// restart, byte-identical documents and identical stats — plus the
/// SpmdEngine thread cap, deadlock detection, determinism, the --engine CLI
/// surface, the StudyOptions composition through core::proxy_study, and a
/// large-rank smoke run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/amrio.hpp"
#include "exec/engine.hpp"
#include "macsio/driver.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pfs/backend.hpp"
#include "util/assert.hpp"

namespace ex = amrio::exec;
namespace mc = amrio::macsio;
namespace p = amrio::pfs;

namespace {

enum class Staging { kDirect, kAgg, kBb };

const char* staging_name(Staging s) {
  switch (s) {
    case Staging::kDirect: return "direct";
    case Staging::kAgg: return "agg";
    case Staging::kBb: return "bb";
  }
  return "?";
}

mc::Params matrix_params(mc::FileMode mode, Staging staging,
                         const std::string& codec) {
  mc::Params params;
  params.nprocs = 32;
  params.file_mode = mode;
  params.num_dumps = 2;
  params.part_size = 1500;
  params.avg_num_parts = 1.25;
  params.dataset_growth = 1.05;
  params.meta_size = 16;
  params.codec = codec;
  params.restart = true;
  switch (staging) {
    case Staging::kDirect:
      break;
    case Staging::kAgg:
      params.aggregators = 8;
      break;
    case Staging::kBb:
      params.stage_to_bb = true;
      params.restart_from_bb = true;
      break;
  }
  params.validate();
  return params;
}

struct EngineRunResult {
  mc::DumpStats dump;
  mc::RestartStats restart;
  /// Exported observability artifacts of the run: the Chrome-trace JSON of
  /// the merged span stream (driver spans + a BB-tier SimFs replay) and the
  /// metrics snapshot. The parity contract is byte-identity.
  std::string trace_json;
  std::string metrics_json;
};

EngineRunResult run_matrix_point(ex::EngineKind kind, const mc::Params& params,
                                 p::MemoryBackend& backend) {
  const auto engine = ex::make_engine(kind, params.nprocs);
  amrio::obs::Tracer tracer;
  amrio::obs::MetricsRegistry metrics;
  const amrio::obs::Probe probe{&tracer, &metrics};
  EngineRunResult r;
  r.dump = mc::run_macsio(*engine, params, backend, nullptr, probe);
  r.restart = mc::run_restart(*engine, params, backend, nullptr, probe);
  // Replay both request streams through a BB-enabled reference model so the
  // span stream covers every pipeline stage, then export deterministically.
  p::SimFsConfig cfg;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 2;
  cfg.bb.ranks_per_node = 16;
  p::SimFs fs(cfg);
  (void)fs.run(r.dump.requests, probe);
  (void)fs.run(r.restart.requests, probe);
  std::ostringstream ts;
  amrio::obs::write_chrome_trace(ts, tracer.spans(), tracer.edges());
  r.trace_json = ts.str();
  std::ostringstream ms;
  amrio::obs::write_metrics_json(ms, metrics.snapshot());
  r.metrics_json = ms.str();
  return r;
}

void expect_requests_equal(const std::vector<p::IoRequest>& a,
                           const std::vector<p::IoRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client, b[i].client) << i;
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time) << i;
    EXPECT_EQ(a[i].file, b[i].file) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_EQ(a[i].tier, b[i].tier) << i;
  }
}

void expect_codec_totals_equal(const amrio::codec::CodecTotals& a,
                               const amrio::codec::CodecTotals& b) {
  EXPECT_EQ(a.raw_bytes, b.raw_bytes);
  EXPECT_EQ(a.encoded_bytes, b.encoded_bytes);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_DOUBLE_EQ(a.encode_seconds, b.encode_seconds);
  EXPECT_DOUBLE_EQ(a.decode_seconds, b.decode_seconds);
}

/// Everything an engine run produces — stored document bytes, write-side
/// stats, restart stats, request timelines — must match the serial reference.
void expect_parity(const EngineRunResult& got, const p::MemoryBackend& got_be,
                   const EngineRunResult& ref, const p::MemoryBackend& ref_be) {
  // write side
  EXPECT_EQ(got.dump.total_bytes, ref.dump.total_bytes);
  EXPECT_EQ(got.dump.nfiles, ref.dump.nfiles);
  EXPECT_EQ(got.dump.bytes_per_dump, ref.dump.bytes_per_dump);
  EXPECT_EQ(got.dump.task_bytes, ref.dump.task_bytes);
  expect_codec_totals_equal(got.dump.codec.total, ref.dump.codec.total);
  expect_requests_equal(got.dump.requests, ref.dump.requests);

  // stored documents, byte for byte
  EXPECT_EQ(got_be.total_bytes(), ref_be.total_bytes());
  const auto paths = ref_be.list("");
  ASSERT_EQ(got_be.list(""), paths);
  for (const auto& path : paths)
    EXPECT_EQ(got_be.read(path), ref_be.read(path)) << path;

  // restart side
  EXPECT_EQ(got.restart.dump, ref.restart.dump);
  EXPECT_EQ(got.restart.task_bytes, ref.restart.task_bytes);
  EXPECT_EQ(got.restart.task_hash, ref.restart.task_hash);
  EXPECT_EQ(got.restart.raw_bytes, ref.restart.raw_bytes);
  EXPECT_EQ(got.restart.encoded_bytes, ref.restart.encoded_bytes);
  EXPECT_DOUBLE_EQ(got.restart.decode_gate, ref.restart.decode_gate);
  EXPECT_DOUBLE_EQ(got.restart.scatter_seconds, ref.restart.scatter_seconds);
  expect_codec_totals_equal(got.restart.codec.total, ref.restart.codec.total);
  expect_requests_equal(got.restart.requests, ref.restart.requests);

  // observability side: the merged span stream and the metrics snapshot are
  // part of the engine-parity contract — byte-identical exports
  EXPECT_EQ(got.trace_json, ref.trace_json);
  EXPECT_EQ(got.metrics_json, ref.metrics_json);
}

}  // namespace

// --------------------------------------------- three-way engine parity

class ThreeWayParity
    : public ::testing::TestWithParam<
          std::tuple<mc::FileMode, Staging, std::string>> {};

TEST_P(ThreeWayParity, SerialSpmdEventAgreeOnWriteAndRestart) {
  const auto [mode, staging, codec] = GetParam();
  const auto params = matrix_params(mode, staging, codec);

  p::MemoryBackend serial_be(true);
  const auto ref = run_matrix_point(ex::EngineKind::kSerial, params, serial_be);

  p::MemoryBackend spmd_be(true);
  const auto spmd = run_matrix_point(ex::EngineKind::kSpmd, params, spmd_be);
  expect_parity(spmd, spmd_be, ref, serial_be);

  p::MemoryBackend event_be(true);
  const auto event = run_matrix_point(ex::EngineKind::kEvent, params, event_be);
  expect_parity(event, event_be, ref, serial_be);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ThreeWayParity,
    ::testing::Values(
        // MIF × {direct, agg, bb} × {identity, ebl}
        std::tuple{mc::FileMode::kMif, Staging::kDirect, std::string("identity")},
        std::tuple{mc::FileMode::kMif, Staging::kDirect, std::string("ebl")},
        std::tuple{mc::FileMode::kMif, Staging::kAgg, std::string("identity")},
        std::tuple{mc::FileMode::kMif, Staging::kAgg, std::string("ebl")},
        std::tuple{mc::FileMode::kMif, Staging::kBb, std::string("identity")},
        std::tuple{mc::FileMode::kMif, Staging::kBb, std::string("ebl")},
        // SIF × {direct, bb} × {identity, ebl} (SIF × agg is rejected by
        // Params::validate — aggregation requires MIF)
        std::tuple{mc::FileMode::kSif, Staging::kDirect, std::string("identity")},
        std::tuple{mc::FileMode::kSif, Staging::kDirect, std::string("ebl")},
        std::tuple{mc::FileMode::kSif, Staging::kBb, std::string("identity")},
        std::tuple{mc::FileMode::kSif, Staging::kBb, std::string("ebl")}),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == mc::FileMode::kMif
                             ? "mif"
                             : "sif") +
             "_" + staging_name(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

// ------------------------------------------------- event engine specifics

TEST(EventEngine, DeterministicScheduleAndRepeatableBytes) {
  // The schedule is a pure function of the driver body: the order ranks pass
  // a barrier window must be identical run to run (fresh starts ascending,
  // releases in arrival order).
  auto order_of = []() {
    std::vector<int> order;
    ex::EventEngine engine(24);
    engine.run([&](ex::RankCtx& ctx) {
      ctx.barrier();
      order.push_back(ctx.rank());  // single-threaded: no race
      ctx.barrier();
    });
    return order;
  };
  EXPECT_EQ(order_of(), order_of());
}

TEST(EventEngine, MismatchedCollectivesDeadlockDetected) {
  ex::EventEngine engine(3);
  try {
    engine.run([](ex::RankCtx& ctx) {
      if (ctx.rank() == 0) (void)ctx.recv_token(1, 9);  // never sent
    });
    FAIL() << "expected deadlock to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(EventEngine, RankExceptionUnwindsAllRanks) {
  // Peers blocked on collectives must observe the abort and unwind (their
  // locals are destructed), and run() rethrows the original error.
  ex::EventEngine engine(16);
  int destructed = 0;
  struct Probe {
    int* counter;
    ~Probe() { ++*counter; }
  };
  try {
    engine.run([&](ex::RankCtx& ctx) {
      Probe probe{&destructed};
      if (ctx.rank() == 5) throw std::logic_error("rank 5 died");
      ctx.barrier();
    });
    FAIL() << "expected rank error to propagate";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "rank 5 died");
  }
  EXPECT_EQ(destructed, 16);
}

TEST(EventEngine, NestedRunIsAllowed) {
  // A rank body may spin up its own inner EventEngine (the calibrator's
  // replay-inside-a-study pattern); the inner scheduler runs synchronously
  // within the outer rank's time slice.
  ex::EventEngine outer(4);
  std::vector<std::uint64_t> sums;
  outer.run([&](ex::RankCtx& octx) {
    if (octx.rank() == 2) {
      ex::EventEngine inner(8);
      std::uint64_t last = 0;
      inner.run([&](ex::RankCtx& ictx) {
        const auto prefix = ictx.exscan_sum(1);
        if (ictx.rank() == 7) last = prefix;
      });
      sums.push_back(last);  // rank 7's prefix = 7
    }
    octx.barrier();
  });
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums[0], 7u);
}

TEST(EventEngine, LargeRankSmoke) {
  // O(active) scheduling at a six-figure rank count: spin-up, one exscan and
  // one barrier across 131,072 virtual ranks. With per-rank stacks this
  // would be 16 GiB of fiber stacks; here it completes in well under a
  // second on anything.
  const int n = 131072;
  ex::EventEngine engine(n);
  std::uint64_t last_prefix = 0;
  engine.run([&](ex::RankCtx& ctx) {
    const auto prefix = ctx.exscan_sum(1);
    EXPECT_EQ(prefix, static_cast<std::uint64_t>(ctx.rank()));
    ctx.barrier();
    if (ctx.rank() == n - 1) last_prefix = prefix;
  });
  EXPECT_EQ(last_prefix, static_cast<std::uint64_t>(n - 1));
}

TEST(EventEngine, RejectsOutOfRangeConfig) {
  EXPECT_THROW(ex::EventEngine(0), amrio::ContractViolation);
  EXPECT_THROW(ex::EventEngine(1 << 24), amrio::ContractViolation);
  EXPECT_THROW(ex::EventEngine(4, /*exec_stack_bytes=*/1024),
               amrio::ContractViolation);
}

TEST(EventEngine, RejectsOutOfRangeTags) {
  ex::EventEngine engine(2);
  EXPECT_THROW(engine.run([](ex::RankCtx& ctx) {
                 if (ctx.rank() == 0) ctx.send_token(1, 1, 70000);
               }),
               amrio::ContractViolation);
}

// ------------------------------------------------------ spmd thread cap

TEST(SpmdEngine, FailsFastAboveThreadCap) {
  // Configurable cap: above it the constructor must throw with a message
  // that points at --engine=event, instead of exhausting the machine on
  // pthread_create mid-run.
  ASSERT_EQ(setenv("AMRIO_SPMD_THREAD_CAP", "8", 1), 0);
  EXPECT_EQ(ex::SpmdEngine::thread_cap(), 8);
  try {
    ex::SpmdEngine engine(9);
    FAIL() << "expected the thread cap to reject 9 ranks";
  } catch (const amrio::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--engine=event"), std::string::npos) << what;
    EXPECT_NE(what.find("thread cap"), std::string::npos) << what;
  }
  // at the cap is fine
  ex::SpmdEngine ok(8);
  EXPECT_EQ(ok.nranks(), 8);
  ASSERT_EQ(unsetenv("AMRIO_SPMD_THREAD_CAP"), 0);
  EXPECT_EQ(ex::SpmdEngine::thread_cap(), 1024);  // default restored
}

// ------------------------------------------------------- CLI surface

TEST(EngineKindCli, NamesRoundTrip) {
  EXPECT_EQ(ex::engine_kind_from_name("serial"), ex::EngineKind::kSerial);
  EXPECT_EQ(ex::engine_kind_from_name("spmd"), ex::EngineKind::kSpmd);
  EXPECT_EQ(ex::engine_kind_from_name("event"), ex::EngineKind::kEvent);
  for (const auto kind : {ex::EngineKind::kSerial, ex::EngineKind::kSpmd,
                          ex::EngineKind::kEvent}) {
    EXPECT_EQ(ex::engine_kind_from_name(ex::engine_kind_name(kind)), kind);
    EXPECT_STREQ(ex::make_engine(kind, 2)->name(), ex::engine_kind_name(kind));
  }
}

TEST(EngineKindCli, UnknownNameThrows) {
  EXPECT_THROW(ex::engine_kind_from_name("fiber"), std::invalid_argument);
  EXPECT_THROW(ex::engine_kind_from_name(""), std::invalid_argument);
}

// ------------------------------------- study options compose (satellite)

TEST(ProxyStudy, EngineCodecRestartComposeInOneEntryPoint) {
  namespace core = amrio::core;
  core::CaseConfig cfg;
  cfg.name = "study_opts";
  cfg.ncell = 32;
  cfg.max_level = 1;
  cfg.max_step = 12;
  cfg.plot_int = 3;
  cfg.nprocs = 8;
  cfg.max_grid_size = 16;
  const auto run = core::run_case(cfg);

  const auto plain = core::calibrate_and_validate(run, 1.0, 1.2);

  core::StudyOptions opts;
  opts.engine = ex::EngineKind::kEvent;
  opts.codec = "ebl";
  opts.restart = true;
  const auto composed = core::calibrate_and_validate(run, opts, 1.0, 1.2);

  // the engine/codec/restart knobs must not perturb the byte-accuracy story
  EXPECT_EQ(composed.proxy_per_step, plain.proxy_per_step);
  EXPECT_DOUBLE_EQ(composed.mean_abs_rel_err, plain.mean_abs_rel_err);
  // ... while actually engaging the codec and restart subsystems
  EXPECT_GT(composed.proxy_stats.codec.total.raw_bytes, 0u);
  EXPECT_LT(composed.proxy_stats.codec.total.encoded_bytes,
            composed.proxy_stats.codec.total.raw_bytes);
  EXPECT_GT(composed.restart_stats.raw_bytes, 0u);
  EXPECT_EQ(composed.restart_stats.task_bytes.size(),
            static_cast<std::size_t>(8));
  // restart untouched by default
  EXPECT_EQ(plain.restart_stats.raw_bytes, 0u);
}

/// Tests for the read-side staging subsystem: the restage plan (per-rank
/// slices, extents, cold/prefetched request shapes), the scatterv_group
/// reverse ship, the codec decode model and the CodecStats encode/decode
/// split, the MACSio restart loop (byte-identical read-back across engines
/// at 32 ranks / 8 aggregators, byte conservation, decode accounting, trace
/// read/prefetch events), and the plotfile restart read plan.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "codec/codec.hpp"
#include "codec/stats.hpp"
#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/driver.hpp"
#include "macsio/interfaces.hpp"
#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/writer.hpp"
#include "staging/aggregator.hpp"
#include "staging/restage.hpp"
#include "util/assert.hpp"

namespace cd = amrio::codec;
namespace ex = amrio::exec;
namespace io = amrio::iostats;
namespace mc = amrio::macsio;
namespace m = amrio::mesh;
namespace p = amrio::pfs;
namespace pf = amrio::plotfile;
namespace st = amrio::staging;

// ------------------------------------------------------------ RestagePlan

TEST(RestagePlan, FlatPlanSlicesEveryRankAtItsOffset) {
  // 4 ranks over 2 shared files (the MIF-group shape): offsets accumulate
  // per file in rank order, matching the write-side concatenation.
  const auto codec = cd::make_codec({});
  const std::vector<std::string> files = {"d/f0", "d/f0", "d/f1", "d/f1"};
  const std::vector<std::uint64_t> sizes = {100, 200, 300, 400};
  const auto plan = st::make_restage_plan(files, sizes, *codec);

  EXPECT_FALSE(plan.aggregated());
  ASSERT_EQ(plan.slices.size(), 4u);
  ASSERT_EQ(plan.extents.size(), 2u);
  EXPECT_EQ(plan.slices[0].offset, 0u);
  EXPECT_EQ(plan.slices[1].offset, 100u);
  EXPECT_EQ(plan.slices[2].offset, 0u);
  EXPECT_EQ(plan.slices[3].offset, 300u);
  // identity: encoded == raw, zero decode, byte conservation
  EXPECT_EQ(plan.raw_bytes(), 1000u);
  EXPECT_EQ(plan.encoded_bytes(), 1000u);
  EXPECT_DOUBLE_EQ(plan.decode_gate(), 0.0);
  EXPECT_EQ(plan.extents[0].raw_bytes, 300u);
  EXPECT_EQ(plan.extents[1].raw_bytes, 700u);
  EXPECT_EQ(plan.extents[0].reader, 0);  // flat: the file's first rank
  EXPECT_EQ(plan.extents[1].reader, 2);
}

TEST(RestagePlan, AggregatedPlanReadsThroughAggregators) {
  const auto topo = st::AggTopology::make(8, 2);
  cd::CodecSpec spec;
  spec.name = "ebl";
  spec.error_bound = 1e-3;
  spec.throughput = 1.0e9;
  spec.smoothness = 0.8;
  const auto codec = cd::make_codec(spec);
  std::vector<std::string> files;
  std::vector<std::uint64_t> sizes;
  for (int r = 0; r < 8; ++r) {
    files.push_back("sub" + std::to_string(topo.group_of(r)));
    sizes.push_back(10'000u * static_cast<std::uint64_t>(r + 1));
  }
  const auto plan = st::make_restage_plan(files, sizes, *codec, &topo);

  EXPECT_TRUE(plan.aggregated());
  ASSERT_EQ(plan.extents.size(), 2u);
  EXPECT_EQ(plan.extents[0].reader, topo.aggregator_of_group(0));
  EXPECT_EQ(plan.extents[1].reader, topo.aggregator_of_group(1));
  // encoded sizes come from the codec plan, per slice, and sum per extent
  std::uint64_t enc0 = 0;
  for (int r : topo.members_of(0)) {
    EXPECT_EQ(plan.slices[static_cast<std::size_t>(r)].encoded_bytes,
              codec->plan(sizes[static_cast<std::size_t>(r)]).out_bytes);
    enc0 += plan.slices[static_cast<std::size_t>(r)].encoded_bytes;
  }
  EXPECT_EQ(plan.extents[0].encoded_bytes, enc0);
  EXPECT_LT(plan.encoded_bytes(), plan.raw_bytes());
  EXPECT_GT(plan.decode_gate(), 0.0);
  // the slowest decode gates resume: rank 7 has the largest document
  EXPECT_DOUBLE_EQ(plan.decode_gate(), plan.slices[7].decode_seconds);
}

TEST(RestagePlan, RejectsNonContiguousSharedFiles) {
  const auto codec = cd::make_codec({});
  EXPECT_THROW(st::make_restage_plan({"a", "b", "a"}, {1, 2, 3}, *codec),
               amrio::ContractViolation);
  EXPECT_THROW(st::make_restage_plan({"a"}, {1, 2}, *codec),
               amrio::ContractViolation);
}

TEST(RestagePlan, ColdRequestsAreDirectPfsReads) {
  const auto codec = cd::make_codec({});
  const auto plan = st::make_restage_plan({"f0", "f0", "f1"}, {10, 20, 30},
                                          *codec);
  const auto reqs = plan.read_requests(3.5, /*prefetch=*/false);
  // flat plan: one read per slice (every rank fetches its own byte range)
  ASSERT_EQ(reqs.size(), 3u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].op, p::kOpRead);
    EXPECT_EQ(reqs[i].tier, p::kTierPfs);
    EXPECT_EQ(reqs[i].client, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(reqs[i].submit_time, 3.5);
    total += reqs[i].bytes;
  }
  EXPECT_EQ(total, plan.encoded_bytes());
}

TEST(RestagePlan, PrefetchedRequestsPairPrefetchWithBbRead) {
  const auto topo = st::AggTopology::make(6, 2);
  const auto codec = cd::make_codec({});
  std::vector<std::string> files;
  std::vector<std::uint64_t> sizes(6, 1000);
  for (int r = 0; r < 6; ++r)
    files.push_back("sub" + std::to_string(topo.group_of(r)));
  const auto plan = st::make_restage_plan(files, sizes, *codec, &topo);
  const auto reqs = plan.read_requests(0.0, /*prefetch=*/true);
  // aggregated plan: per-extent fetches, each a (prefetch, bb-read) pair
  ASSERT_EQ(reqs.size(), 4u);
  for (std::size_t i = 0; i < reqs.size(); i += 2) {
    EXPECT_EQ(reqs[i].op, p::kOpPrefetch);
    EXPECT_EQ(reqs[i + 1].op, p::kOpRead);
    EXPECT_EQ(reqs[i].tier, p::kTierBurstBuffer);
    EXPECT_EQ(reqs[i + 1].tier, p::kTierBurstBuffer);
    EXPECT_EQ(reqs[i].file, reqs[i + 1].file);
    EXPECT_EQ(reqs[i].client, reqs[i + 1].client);
    EXPECT_EQ(reqs[i].bytes, reqs[i + 1].bytes);
  }
}

// --------------------------------------------------------- scatterv_group

class ScattervGroup : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(ScattervGroup, FansPayloadsBackOutInMemberOrder) {
  const int n = 12;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    const auto topo = st::AggTopology::make(n, 3);
    const int group = topo.group_of(ctx.rank());
    const int root = topo.aggregator_of_group(group);
    const auto members = topo.members_of(group);
    // the root holds one payload per member: member r gets r+2 bytes of r
    std::vector<std::vector<std::byte>> payloads;
    if (ctx.rank() == root)
      for (int r : members)
        payloads.emplace_back(static_cast<std::size_t>(r + 2),
                              static_cast<std::byte>(r));
    const auto mine = ex::scatterv_group(ctx, payloads, members, root, 92);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(ctx.rank() + 2));
    for (std::byte b : mine)
      EXPECT_EQ(b, static_cast<std::byte>(ctx.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, ScattervGroup,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd));

// ----------------------------------------------------- codec decode model

TEST(CodecDecode, IdentityDecodesForFree) {
  const auto codec = cd::make_codec({});
  EXPECT_DOUBLE_EQ(codec->decode_seconds(1 << 20), 0.0);
}

TEST(CodecDecode, DecodeOutrunsEncodeByDefault) {
  for (const char* name : {"lossless", "ebl"}) {
    cd::CodecSpec spec;
    spec.name = name;
    const auto codec = cd::make_codec(spec);
    const std::uint64_t raw = 64 << 20;
    const double encode = codec->plan(raw).cpu_seconds;
    const double decode = codec->decode_seconds(raw);
    EXPECT_GT(decode, 0.0) << name;
    EXPECT_LT(decode, encode) << name;  // decompressors outrun compressors
  }
}

TEST(CodecDecode, DecodeThroughputKnobIsHonored) {
  cd::CodecSpec spec;
  spec.name = "ebl";
  spec.decode_throughput = 4.0e9;
  const auto codec = cd::make_codec(spec);
  EXPECT_NEAR(codec->decode_seconds(1'000'000'000), 0.25, 1e-12);
  spec.decode_throughput = -1.0;
  EXPECT_THROW(cd::validate_spec(spec), std::invalid_argument);
}

TEST(CodecStatsSplit, DecodeDoesNotPolluteEncodeReports) {
  cd::CodecStats stats;
  const cd::CompressResult enc{1000, 400, 0.5};
  stats.add(0, -1, enc);            // write side
  stats.add_decode(0, -1, enc, 0.2);  // read side, same chunk shape
  EXPECT_DOUBLE_EQ(stats.total.encode_seconds, 0.5);
  EXPECT_DOUBLE_EQ(stats.total.decode_seconds, 0.2);
  EXPECT_EQ(stats.total.raw_bytes, 2000u);
  EXPECT_EQ(stats.total.chunks, 2u);

  cd::CodecStats other;
  other.add_decode(1, 2, enc, 0.3);
  stats.merge(other);
  EXPECT_DOUBLE_EQ(stats.total.encode_seconds, 0.5);  // merge keeps the split
  EXPECT_DOUBLE_EQ(stats.total.decode_seconds, 0.5);
  EXPECT_DOUBLE_EQ(stats.by_level.at(2).decode_seconds, 0.3);
}

// --------------------------------------------------- MACSio restart loop

namespace {

mc::Params restart_params(int nprocs, int aggregators) {
  mc::Params params;
  params.nprocs = nprocs;
  params.num_dumps = 2;
  params.part_size = 40'000;
  params.avg_num_parts = 1.5;
  params.meta_size = 128;
  params.dataset_growth = 1.05;
  params.aggregators = aggregators;
  params.fill = mc::FillMode::kReal;
  params.restart = true;
  return params;
}

/// The expected task documents of the restarted dump: what a flat
/// (unaggregated, codec-free) run writes per rank — the raw image every
/// restart shape must reproduce byte-identically.
std::vector<std::vector<std::byte>> expected_docs(const mc::Params& params) {
  mc::Params flat = params;
  flat.aggregators = 0;
  flat.file_mode = mc::FileMode::kMif;
  flat.mif_files = 0;  // N-to-N: one file per task == one document per file
  flat.codec = "identity";
  flat.restart = false;
  flat.restart_from_bb = false;
  flat.prefetch_streams = 0;
  p::MemoryBackend be(true);
  ex::SerialEngine engine(flat.nprocs);
  (void)mc::run_macsio(engine, flat, be);
  std::vector<std::vector<std::byte>> docs;
  for (int r = 0; r < flat.nprocs; ++r)
    docs.push_back(be.read(mc::dump_file_path(flat, r, flat.num_dumps - 1)));
  return docs;
}

}  // namespace

class MacsioRestart : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(MacsioRestart, AggregatedRestartIsByteIdenticalAt32Ranks) {
  // The acceptance case: 32 ranks / 8 aggregators, ebl codec — encoded
  // bytes cross the reverse scatter, every rank decodes its document back
  // byte-identically to the originally written raw image.
  mc::Params params = restart_params(32, 8);
  params.codec = "ebl";
  params.codec_error_bound = 1e-3;
  params.codec_throughput = 1.0e9;

  p::MemoryBackend be(true);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  const auto written = mc::run_macsio(*engine, params, be);
  io::TraceRecorder trace;
  const auto restart = mc::run_restart(*engine, params, be, &trace);

  EXPECT_EQ(restart.dump, params.num_dumps - 1);
  const auto docs = expected_docs(params);
  ASSERT_EQ(restart.task_bytes.size(), 32u);
  ASSERT_EQ(restart.task_hash.size(), 32u);
  for (int r = 0; r < 32; ++r) {
    // byte conservation against the write-side ledger...
    EXPECT_EQ(restart.task_bytes[static_cast<std::size_t>(r)],
              written.task_bytes.back()[static_cast<std::size_t>(r)])
        << "rank " << r;
    // ...and byte identity against the original raw image
    EXPECT_EQ(restart.task_hash[static_cast<std::size_t>(r)],
              mc::restart_hash(docs[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
  const std::uint64_t raw_total = std::accumulate(
      restart.task_bytes.begin(), restart.task_bytes.end(), std::uint64_t{0});
  EXPECT_EQ(restart.raw_bytes, raw_total);
  EXPECT_LT(restart.encoded_bytes, restart.raw_bytes);  // ebl shrinks fetches
  EXPECT_GT(restart.decode_gate, 0.0);
  EXPECT_GT(restart.scatter_seconds, 0.0);
  // decode-side ledger only: the encode split stays clean
  EXPECT_DOUBLE_EQ(restart.codec.total.encode_seconds, 0.0);
  EXPECT_GT(restart.codec.total.decode_seconds, 0.0);
  EXPECT_EQ(restart.codec.total.raw_bytes, restart.raw_bytes);

  // trace: one kRead per rank document (raw bytes, encoded alongside,
  // decode cpu on the rank) plus the root/index metadata reads
  int doc_reads = 0;
  int meta_reads = 0;
  for (const auto& e : trace.events()) {
    if (e.op != io::IoEvent::Op::kRead) continue;
    if (e.level == 0) {
      ++doc_reads;
      EXPECT_GT(e.encoded_bytes, 0u);
      EXPECT_LT(e.encoded_bytes, e.bytes);
      EXPECT_GT(e.codec_seconds, 0.0);
    } else {
      ++meta_reads;
    }
  }
  EXPECT_EQ(doc_reads, 32);
  EXPECT_EQ(meta_reads, 2);  // root + aggregation index
  std::uint64_t meta_bytes = 0;
  for (const auto& req : restart.requests)
    if (req.op == p::kOpRead &&
        req.file.find("/metadata/") != std::string::npos)
      meta_bytes += req.bytes;
  EXPECT_EQ(trace.total_read_bytes(), restart.raw_bytes + meta_bytes);
}

TEST_P(MacsioRestart, UnaggregatedRestartReadsOwnByteRanges) {
  // Grouped MIF (4 ranks per file): every rank slices its own byte range
  // out of the shared file — no aggregator, no scatter.
  mc::Params params = restart_params(16, 0);
  params.mif_files = 4;
  p::MemoryBackend be(true);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  (void)mc::run_macsio(*engine, params, be);
  const auto restart = mc::run_restart(*engine, params, be);

  const auto docs = expected_docs(params);
  for (int r = 0; r < 16; ++r)
    EXPECT_EQ(restart.task_hash[static_cast<std::size_t>(r)],
              mc::restart_hash(docs[static_cast<std::size_t>(r)]))
        << "rank " << r;
  EXPECT_DOUBLE_EQ(restart.scatter_seconds, 0.0);
  EXPECT_DOUBLE_EQ(restart.decode_gate, 0.0);       // identity
  EXPECT_EQ(restart.encoded_bytes, restart.raw_bytes);
  // flat plan: one data read per rank
  int data_reads = 0;
  for (const auto& req : restart.requests)
    if (req.op == p::kOpRead && req.file.find("/data/") != std::string::npos)
      ++data_reads;
  EXPECT_EQ(data_reads, 16);
}

TEST_P(MacsioRestart, PrefetchedRestartEmitsPrefetchReadPairs) {
  mc::Params params = restart_params(32, 8);
  params.restart_from_bb = true;
  params.prefetch_streams = 2;
  p::MemoryBackend be(true);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  (void)mc::run_macsio(*engine, params, be);
  io::TraceRecorder trace;
  const auto restart = mc::run_restart(*engine, params, be, &trace);

  int prefetches = 0;
  int bb_reads = 0;
  std::uint64_t prefetched_bytes = 0;
  for (const auto& req : restart.requests) {
    if (req.op == p::kOpPrefetch) {
      ++prefetches;
      prefetched_bytes += req.bytes;
      EXPECT_EQ(req.tier, p::kTierBurstBuffer);
    }
    if (req.op == p::kOpRead && req.tier == p::kTierBurstBuffer) ++bb_reads;
  }
  EXPECT_EQ(prefetches, 8);  // one per subfile
  EXPECT_EQ(bb_reads, 8);
  EXPECT_EQ(prefetched_bytes, restart.encoded_bytes);
  int prefetch_events = 0;
  for (const auto& e : trace.events())
    if (e.op == io::IoEvent::Op::kPrefetch) ++prefetch_events;
  EXPECT_EQ(prefetch_events, 8);

  // the tagged request stream replays against a BB-enabled SimFs: every BB
  // read lands after its extent's prefetch
  p::SimFsConfig cfg;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 2;
  cfg.bb.ranks_per_node = 16;
  p::SimFs fs(cfg);
  const auto results = fs.run(restart.requests);
  std::map<std::string, double> prefetch_end;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (restart.requests[i].op == p::kOpPrefetch)
      prefetch_end[restart.requests[i].file] = results[i].end;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& req = restart.requests[i];
    if (req.op == p::kOpRead && req.tier == p::kTierBurstBuffer) {
      EXPECT_GE(results[i].end, prefetch_end.at(req.file));
    }
  }
}

TEST_P(MacsioRestart, EnginesAgreeOnEveryRestartStatistic) {
  mc::Params params = restart_params(32, 8);
  params.codec = "lossless";
  params.restart_from_bb = true;
  params.prefetch_streams = 2;

  auto run_with = [&](ex::EngineKind kind) {
    p::MemoryBackend be(true);
    const auto engine = ex::make_engine(kind, params.nprocs);
    (void)mc::run_macsio(*engine, params, be);
    return mc::run_restart(*engine, params, be);
  };
  const auto serial = run_with(ex::EngineKind::kSerial);
  const auto other = run_with(GetParam());

  EXPECT_EQ(serial.task_bytes, other.task_bytes);
  EXPECT_EQ(serial.task_hash, other.task_hash);
  EXPECT_EQ(serial.raw_bytes, other.raw_bytes);
  EXPECT_EQ(serial.encoded_bytes, other.encoded_bytes);
  EXPECT_DOUBLE_EQ(serial.decode_gate, other.decode_gate);
  EXPECT_DOUBLE_EQ(serial.scatter_seconds, other.scatter_seconds);
  ASSERT_EQ(serial.requests.size(), other.requests.size());
  for (std::size_t i = 0; i < serial.requests.size(); ++i) {
    EXPECT_EQ(serial.requests[i].file, other.requests[i].file);
    EXPECT_EQ(serial.requests[i].bytes, other.requests[i].bytes);
    EXPECT_EQ(serial.requests[i].client, other.requests[i].client);
    EXPECT_EQ(serial.requests[i].op, other.requests[i].op);
    EXPECT_EQ(serial.requests[i].tier, other.requests[i].tier);
  }
}

TEST_P(MacsioRestart, AccountingBackendKeepsExactSizes) {
  // Accounting-only backends (the bench path) degrade contents to zero
  // bytes but keep every size and request exact.
  mc::Params params = restart_params(16, 4);
  p::MemoryBackend be(false);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  const auto written = mc::run_macsio(*engine, params, be);
  const auto restart = mc::run_restart(*engine, params, be);
  EXPECT_EQ(restart.task_bytes, written.task_bytes.back());
  EXPECT_EQ(restart.raw_bytes,
            std::accumulate(restart.task_bytes.begin(),
                            restart.task_bytes.end(), std::uint64_t{0}));
}

INSTANTIATE_TEST_SUITE_P(Kinds, MacsioRestart,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd));

TEST(MacsioRestartCli, KnobsParseValidateAndRoundTrip) {
  const auto params = mc::Params::from_cli(
      {"--nprocs", "32", "--aggregators", "8", "--restart", "--read_staging",
       "bb", "--prefetch", "4"});
  EXPECT_TRUE(params.restart);
  EXPECT_TRUE(params.restart_from_bb);
  EXPECT_EQ(params.prefetch_streams, 4);
  const auto back = mc::Params::from_cli(params.to_cli());
  EXPECT_TRUE(back.restart);
  EXPECT_TRUE(back.restart_from_bb);
  EXPECT_EQ(back.prefetch_streams, 4);

  EXPECT_THROW(mc::Params::from_cli({"--read_staging", "nvme"}),
               std::invalid_argument);
  EXPECT_THROW(mc::Params::from_cli({"--prefetch", "-1", "--read_staging",
                                     "bb"}),
               std::invalid_argument);
  // --prefetch without the bb read tier is a knob conflict, one-line error
  try {
    mc::Params::from_cli({"--prefetch", "2"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("read_staging"), std::string::npos);
  }
  // ...as is a bb read tier with no restart to use it
  try {
    mc::Params::from_cli({"--read_staging", "bb"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--restart"), std::string::npos);
  }
}

TEST(MacsioRestartCli, MissingDumpFilesAreRejected) {
  mc::Params params = restart_params(4, 2);
  p::MemoryBackend be(true);  // nothing written
  ex::SerialEngine engine(params.nprocs);
  EXPECT_THROW(mc::run_restart(engine, params, be), amrio::ContractViolation);
}

// ---------------------------------------------- plotfile restart reads

TEST(PlotfileRestart, PlanPartitionsEveryCellDFile) {
  // A two-level plotfile written over 3 ranks: the restart plan must cover
  // every Cell_D byte exactly once, predicted from metadata alone.
  std::vector<m::Box> l0;
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 2; ++i)
      l0.emplace_back(i * 8, j * 8, i * 8 + 7, j * 8 + 7);
  m::BoxArray ba0(l0);
  m::BoxArray ba1(m::Box(8, 8, 23, 23));
  const m::Geometry g0(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
  const m::Geometry g1 = g0.refine(2);
  const auto dm0 = m::DistributionMapping::make(
      ba0, 3, m::DistributionStrategy::kRoundRobin);
  const auto dm1 = m::DistributionMapping::make(
      ba1, 3, m::DistributionStrategy::kRoundRobin);
  std::vector<m::MultiFab> storage;
  storage.emplace_back(ba0, dm0, 2, 0);
  storage.emplace_back(ba1, dm1, 2, 0);
  storage[0].set_val(1.5);
  storage[1].set_val(2.5);
  pf::PlotfileSpec spec;
  spec.dir = "plt_restart";
  spec.var_names = {"density", "pressure"};

  p::MemoryBackend be(true);
  (void)pf::write_plotfile(be, spec,
                           {{g0, &storage[0]}, {g1, &storage[1]}});

  const auto plan = pf::plan_restart_reads(be, spec.dir);
  ASSERT_EQ(plan.items.size(), 5u);  // 4 level-0 grids + 1 level-1 grid
  std::map<std::string, std::uint64_t> per_file;
  for (const auto& item : plan.items) {
    EXPECT_GT(item.bytes, 0u);
    per_file[item.path] += item.bytes;
  }
  std::uint64_t cell_d_total = 0;
  for (const auto& [path, bytes] : per_file) {
    EXPECT_EQ(bytes, be.size(path)) << path;  // items partition the file
    cell_d_total += be.size(path);
  }
  EXPECT_EQ(plan.total_bytes, cell_d_total);

  // one tier-tagged read request per distinct Cell_D file, full extent
  const auto reqs = plan.read_requests(1.0, p::kTierBurstBuffer);
  ASSERT_EQ(reqs.size(), per_file.size());
  for (const auto& req : reqs) {
    EXPECT_EQ(req.op, p::kOpRead);
    EXPECT_EQ(req.tier, p::kTierBurstBuffer);
    EXPECT_EQ(req.bytes, per_file.at(req.file));
  }
}

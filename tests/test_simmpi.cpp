/// Tests for the simulated MPI layer: collectives correctness over varying
/// rank counts (property sweeps), point-to-point messaging, and failure
/// propagation semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "simmpi/comm.hpp"
#include "util/rng.hpp"

namespace sm = amrio::simmpi;

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  const int n = GetParam();
  std::atomic<int> count{0};
  sm::run_spmd(n, [&](sm::Comm& comm) {
    count.fetch_add(1);
    comm.barrier();
    // after the barrier every rank must have incremented
    EXPECT_EQ(count.load(), n);
  });
}

TEST_P(CollectiveTest, AllreduceSum) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const double local = static_cast<double>(comm.rank() + 1);
    const double sum = comm.allreduce(local, sm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
  });
}

TEST_P(CollectiveTest, AllreduceMinMaxProd) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const std::int64_t r = comm.rank() + 1;
    EXPECT_EQ(comm.allreduce(r, sm::ReduceOp::kMin), 1);
    EXPECT_EQ(comm.allreduce(r, sm::ReduceOp::kMax), n);
    std::int64_t expected = 1;
    for (int i = 1; i <= n; ++i) expected *= i;
    EXPECT_EQ(comm.allreduce(r, sm::ReduceOp::kProd), expected);
  });
}

TEST_P(CollectiveTest, MinMaxPropagateNaN) {
  // a NaN bandwidth sample must poison the reduction no matter which rank
  // holds it — `b < a` comparisons alone would drop NaN on every rank but 0
  const int n = GetParam();
  for (int bad = 0; bad < n; ++bad) {
    sm::run_spmd(n, [&](sm::Comm& comm) {
      const double local = comm.rank() == bad
                               ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>(comm.rank() + 1);
      EXPECT_TRUE(std::isnan(comm.allreduce(local, sm::ReduceOp::kMin)))
          << "NaN on rank " << bad;
      EXPECT_TRUE(std::isnan(comm.allreduce(local, sm::ReduceOp::kMax)))
          << "NaN on rank " << bad;
    });
  }
}

TEST(Combine, MinMaxNaNSafety) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(sm::detail::combine(nan, 1.0, sm::ReduceOp::kMin)));
  EXPECT_TRUE(std::isnan(sm::detail::combine(1.0, nan, sm::ReduceOp::kMin)));
  EXPECT_TRUE(std::isnan(sm::detail::combine(nan, 1.0, sm::ReduceOp::kMax)));
  EXPECT_TRUE(std::isnan(sm::detail::combine(1.0, nan, sm::ReduceOp::kMax)));
  // integers keep plain comparison semantics
  EXPECT_EQ(sm::detail::combine(3, 5, sm::ReduceOp::kMin), 3);
  EXPECT_EQ(sm::detail::combine(3, 5, sm::ReduceOp::kMax), 5);
}

TEST_P(CollectiveTest, VectorAllreduce) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const std::vector<double> local{1.0, static_cast<double>(comm.rank()), -1.0};
    std::vector<double> out(3);
    comm.allreduce(std::span<const double>(local), std::span<double>(out),
                   sm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(out[0], n);
    EXPECT_DOUBLE_EQ(out[1], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(out[2], -n);
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    sm::run_spmd(n, [&](sm::Comm& comm) {
      std::vector<std::int64_t> data(4, comm.rank() == root ? 99 : 0);
      comm.bcast(std::span<std::int64_t>(data), root);
      for (auto v : data) EXPECT_EQ(v, 99);
    });
  }
}

TEST_P(CollectiveTest, GatherDeliversAtRootOnly) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const auto out = comm.gather(static_cast<std::int64_t>(comm.rank() * 10), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r * 10);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectiveTest, AllgatherEverywhere) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const auto out = comm.allgather(static_cast<std::int64_t>(comm.rank()));
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r);
  });
}

TEST_P(CollectiveTest, GathervConcatenatesInRankOrder) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    // rank r contributes r+1 copies of r
    std::vector<std::int64_t> local(static_cast<std::size_t>(comm.rank() + 1),
                                    comm.rank());
    const auto out = comm.gatherv(std::span<const std::int64_t>(local), 0);
    if (comm.rank() == 0) {
      std::size_t expected_size = 0;
      for (int r = 0; r < n; ++r) expected_size += static_cast<std::size_t>(r + 1);
      ASSERT_EQ(out.size(), expected_size);
      std::size_t idx = 0;
      for (int r = 0; r < n; ++r)
        for (int k = 0; k <= r; ++k) EXPECT_EQ(out[idx++], r);
    }
  });
}

TEST_P(CollectiveTest, ExscanSum) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const std::int64_t mine = 10 + comm.rank();
    const std::int64_t prefix = comm.exscan_sum(mine);
    std::int64_t expected = 0;
    for (int r = 0; r < comm.rank(); ++r) expected += 10 + r;
    EXPECT_EQ(prefix, expected);
  });
}

TEST_P(CollectiveTest, ReduceToRoot) {
  const int n = GetParam();
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const auto out =
        comm.reduce(static_cast<std::int64_t>(comm.rank() + 1), sm::ReduceOp::kSum,
                    n - 1);
    if (comm.rank() == n - 1) EXPECT_EQ(out, n * (n + 1) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ------------------------------------------------------------- messaging

TEST(SendRecv, RingPassesToken) {
  const int n = 6;
  sm::run_spmd(n, [&](sm::Comm& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    if (comm.rank() == 0) {
      const std::int64_t token = 123;
      comm.send(std::span<const std::int64_t>(&token, 1), next, 5);
      const auto back = comm.recv<std::int64_t>(prev, 5);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_EQ(back[0], 123 + n - 1);
    } else {
      const auto got = comm.recv<std::int64_t>(prev, 5);
      const std::int64_t token = got.at(0) + 1;
      comm.send(std::span<const std::int64_t>(&token, 1), next, 5);
    }
  });
}

TEST(SendRecv, TagsKeepMessagesSeparate) {
  sm::run_spmd(2, [&](sm::Comm& comm) {
    if (comm.rank() == 0) {
      const std::int64_t a = 1;
      const std::int64_t b = 2;
      comm.send(std::span<const std::int64_t>(&a, 1), 1, 100);
      comm.send(std::span<const std::int64_t>(&b, 1), 1, 200);
    } else {
      // receive in reverse tag order
      EXPECT_EQ(comm.recv<std::int64_t>(0, 200).at(0), 2);
      EXPECT_EQ(comm.recv<std::int64_t>(0, 100).at(0), 1);
    }
  });
}

TEST(SendRecv, FifoWithinTag) {
  sm::run_spmd(2, [&](sm::Comm& comm) {
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 10; ++i)
        comm.send(std::span<const std::int64_t>(&i, 1), 1, 7);
    } else {
      for (std::int64_t i = 0; i < 10; ++i)
        EXPECT_EQ(comm.recv<std::int64_t>(0, 7).at(0), i);
    }
  });
}

TEST(SendRecv, RecvTimesOutWhenNoMessage) {
  sm::run_spmd(2, [&](sm::Comm& comm) {
    if (comm.rank() == 1) {
      EXPECT_THROW(comm.recv<std::int64_t>(0, 9, /*timeout_sec=*/0.05),
                   sm::RecvTimeout);
    }
    comm.barrier();
  });
}

TEST(SendRecv, EmptyMessageAllowed) {
  sm::run_spmd(2, [&](sm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const double>(), 1, 3);
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 3).empty());
    }
  });
}

// --------------------------------------------------------------- failure

TEST(Failure, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      sm::run_spmd(4,
                   [](sm::Comm& comm) {
                     if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
                     comm.barrier();
                   }),
      std::runtime_error);
}

TEST(Failure, SurvivorsReleasedFromBarrier) {
  // If the aborting semantics were wrong this test would hang rather than
  // fail; run_spmd must return (with the original exception).
  try {
    sm::run_spmd(4, [](sm::Comm& comm) {
      if (comm.rank() == 0) throw std::logic_error("boom");
      comm.barrier();  // survivors must receive CommAborted here
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Failure, SingleRankRunsInline) {
  int calls = 0;
  sm::run_spmd(1, [&](sm::Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce(5.0, sm::ReduceOp::kSum), 5.0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Failure, InvalidRankCountRejected) {
  EXPECT_THROW(sm::run_spmd(0, [](sm::Comm&) {}), amrio::ContractViolation);
}

/// Tests for the unified execution engine (exec::SerialEngine fibers,
/// exec::SpmdEngine threads): collective semantics, error propagation, and
/// the headline guarantee — serial and SPMD executions of the MACSio and
/// plotfile drivers are byte-identical because they run the same body.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/driver.hpp"
#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "pfs/backend.hpp"
#include "plotfile/writer.hpp"
#include "util/path.hpp"

namespace ex = amrio::exec;
namespace mc = amrio::macsio;
namespace p = amrio::pfs;
namespace pf = amrio::plotfile;
namespace m = amrio::mesh;

// ----------------------------------------------------------- collectives

class EngineCollectives : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(EngineCollectives, BarrierAndRankIdentity) {
  const int n = 7;
  const auto engine = ex::make_engine(GetParam(), n);
  EXPECT_EQ(engine->nranks(), n);
  std::atomic<int> count{0};
  engine->run([&](ex::RankCtx& ctx) {
    EXPECT_EQ(ctx.nranks(), n);
    EXPECT_GE(ctx.rank(), 0);
    EXPECT_LT(ctx.rank(), n);
    count.fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(count.load(), n);
  });
}

TEST_P(EngineCollectives, ExscanSum) {
  const int n = 9;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const std::uint64_t prefix = ctx.exscan_sum(r + 1);
    // sum of (1..rank): rank 0 gets 0
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

TEST_P(EngineCollectives, GatherDeliversAtRootOnly) {
  const int n = 6;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    const auto got = ctx.gather(static_cast<std::uint64_t>(ctx.rank() * 10), 2);
    if (ctx.rank() == 2) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r)
        EXPECT_EQ(got[static_cast<std::size_t>(r)],
                  static_cast<std::uint64_t>(r * 10));
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(EngineCollectives, GathervConcatenatesInRankOrder) {
  const int n = 5;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    // rank r contributes r+1 bytes with value r
    std::vector<std::byte> mine(static_cast<std::size_t>(ctx.rank() + 1),
                                static_cast<std::byte>(ctx.rank()));
    const auto got = ctx.gatherv(mine, 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(n * (n + 1) / 2));
      std::size_t i = 0;
      for (int r = 0; r < n; ++r)
        for (int k = 0; k <= r; ++k)
          EXPECT_EQ(got[i++], static_cast<std::byte>(r));
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST_P(EngineCollectives, TokenPassingChain) {
  const int n = 8;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    std::uint64_t acc = 0;
    if (ctx.rank() > 0) acc = ctx.recv_token(ctx.rank() - 1, 5);
    acc += static_cast<std::uint64_t>(ctx.rank());
    if (ctx.rank() + 1 < n) ctx.send_token(acc, ctx.rank() + 1, 5);
    if (ctx.rank() == n - 1) {
      EXPECT_EQ(acc, static_cast<std::uint64_t>(n * (n - 1) / 2));
    }
  });
}

TEST_P(EngineCollectives, RankExceptionPropagates) {
  const auto engine = ex::make_engine(GetParam(), 4);
  EXPECT_THROW(engine->run([&](ex::RankCtx& ctx) {
                 if (ctx.rank() == 2) throw std::runtime_error("rank 2 died");
                 ctx.barrier();  // peers must not hang
                 ctx.barrier();
               }),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EngineCollectives,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd,
                                           ex::EngineKind::kEvent));

TEST(SerialEngine, DeterministicSchedule) {
  // fibers are resumed in rank order between suspensions: record the order
  // ranks pass a barrier window and require it to be identical across runs
  auto order_of = []() {
    std::vector<int> order;
    ex::SerialEngine engine(6);
    engine.run([&](ex::RankCtx& ctx) {
      ctx.barrier();
      order.push_back(ctx.rank());  // single-threaded: no race
      ctx.barrier();
    });
    return order;
  };
  EXPECT_EQ(order_of(), order_of());
}

TEST(SerialEngine, MismatchedCollectivesDeadlockDetected) {
  ex::SerialEngine engine(3);
  EXPECT_THROW(engine.run([](ex::RankCtx& ctx) {
                 if (ctx.rank() == 0) (void)ctx.recv_token(1, 9);  // never sent
               }),
               std::runtime_error);
}

// ------------------------------------------------- driver byte-identity

namespace {

mc::Params stress_params(mc::FileMode mode, int nprocs, int mif_files) {
  mc::Params params;
  params.nprocs = nprocs;
  params.file_mode = mode;
  params.mif_files = mif_files;
  params.num_dumps = 3;
  params.part_size = 2000;
  params.dataset_growth = 1.07;
  params.meta_size = 32;
  params.avg_num_parts = 1.5;
  return params;
}

void expect_backends_equal(const p::StorageBackend& a,
                           const p::StorageBackend& b) {
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.file_count(), b.file_count());
  const auto paths = a.list("");
  ASSERT_EQ(paths, b.list(""));
  for (const auto& path : paths) EXPECT_EQ(a.size(path), b.size(path)) << path;
}

}  // namespace

class EngineParity
    : public ::testing::TestWithParam<std::tuple<mc::FileMode, int>> {};

/// The stress test of the contention-free substrate: 32+ ranks dumping
/// concurrently (MIF N-to-N, grouped MIF, and SIF open_append chains)
/// through both backends must match the serial engine byte for byte.
TEST_P(EngineParity, SpmdMatchesSerialOnMemoryBackend) {
  const auto [mode, mif_files] = GetParam();
  const auto params = stress_params(mode, /*nprocs=*/32, mif_files);

  p::MemoryBackend serial_be(false);
  ex::SerialEngine serial(params.nprocs);
  const auto ref = mc::run_macsio(serial, params, serial_be);

  p::MemoryBackend spmd_be(false);
  ex::SpmdEngine spmd(params.nprocs);
  const auto got = mc::run_macsio(spmd, params, spmd_be);

  EXPECT_EQ(got.total_bytes, ref.total_bytes);
  EXPECT_EQ(got.nfiles, ref.nfiles);
  EXPECT_EQ(got.bytes_per_dump, ref.bytes_per_dump);
  EXPECT_EQ(got.task_bytes, ref.task_bytes);
  expect_backends_equal(spmd_be, serial_be);
  EXPECT_EQ(ref.total_bytes, serial_be.total_bytes());
  EXPECT_EQ(ref.nfiles, serial_be.file_count());
}

TEST_P(EngineParity, SpmdMatchesSerialOnPosixBackend) {
  const auto [mode, mif_files] = GetParam();
  const auto params = stress_params(mode, /*nprocs=*/32, mif_files);

  const std::string root_a = amrio::util::make_temp_dir("amrio_exec_serial");
  const std::string root_b = amrio::util::make_temp_dir("amrio_exec_spmd");
  {
    p::PosixBackend serial_be(root_a);
    ex::SerialEngine serial(params.nprocs);
    const auto ref = mc::run_macsio(serial, params, serial_be);

    p::PosixBackend spmd_be(root_b);
    ex::SpmdEngine spmd(params.nprocs);
    const auto got = mc::run_macsio(spmd, params, spmd_be);

    EXPECT_EQ(got.total_bytes, ref.total_bytes);
    EXPECT_EQ(got.nfiles, ref.nfiles);
    expect_backends_equal(spmd_be, serial_be);
    for (const auto& path : serial_be.list(""))
      EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
  }
  amrio::util::remove_all(root_a);
  amrio::util::remove_all(root_b);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineParity,
    ::testing::Values(std::tuple{mc::FileMode::kMif, 0},    // N-to-N
                      std::tuple{mc::FileMode::kMif, 4},    // grouped batons
                      std::tuple{mc::FileMode::kSif, 0}));  // one shared file

TEST(EngineParity, StoredContentsIdenticalAcrossEngines) {
  const auto params = stress_params(mc::FileMode::kMif, 12, 3);
  p::MemoryBackend serial_be(true);
  ex::SerialEngine serial(params.nprocs);
  mc::run_macsio(serial, params, serial_be);

  p::MemoryBackend spmd_be(true);
  ex::SpmdEngine spmd(params.nprocs);
  mc::run_macsio(spmd, params, spmd_be);

  for (const auto& path : serial_be.list(""))
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
}

TEST(EngineParity, TraceStreamsIdenticalAcrossEngines) {
  // per-rank sinks + (step, rank) stable merge ⇒ the merged event stream is
  // engine-independent, event by event
  const auto params = stress_params(mc::FileMode::kMif, 16, 0);
  p::MemoryBackend be_a(false);
  p::MemoryBackend be_b(false);
  amrio::iostats::TraceRecorder tr_a;
  amrio::iostats::TraceRecorder tr_b;
  ex::SerialEngine serial(params.nprocs);
  ex::SpmdEngine spmd(params.nprocs);
  mc::run_macsio(serial, params, be_a, &tr_a);
  mc::run_macsio(spmd, params, be_b, &tr_b);

  const auto ea = tr_a.events();
  const auto eb = tr_b.events();
  ASSERT_EQ(ea.size(), eb.size());
  EXPECT_EQ(tr_a.size(), ea.size());
  EXPECT_EQ(tr_a.total_bytes(), tr_b.total_bytes());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].step, eb[i].step) << i;
    EXPECT_EQ(ea[i].level, eb[i].level) << i;
    EXPECT_EQ(ea[i].rank, eb[i].rank) << i;
    EXPECT_EQ(ea[i].path, eb[i].path) << i;
    EXPECT_EQ(ea[i].bytes, eb[i].bytes) << i;
  }
}

TEST(EngineParity, PlotfileWriteIdenticalAcrossEngines) {
  const int nranks = 8;
  std::vector<m::Box> boxes;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      boxes.emplace_back(i * 16, j * 16, i * 16 + 15, j * 16 + 15);
  m::BoxArray ba(boxes);
  const auto dm =
      m::DistributionMapping::make(ba, nranks, m::DistributionStrategy::kSfc);
  m::MultiFab mf(ba, dm, 2, 0);
  mf.set_val(1.25);
  const m::Geometry geom(m::Box(0, 0, 63, 63), {0.0, 0.0}, {1.0, 1.0});
  pf::PlotfileSpec spec;
  spec.dir = "engine_plt00000";
  spec.var_names = {"a", "b"};

  p::MemoryBackend serial_be(true);
  ex::SerialEngine serial(nranks);
  const auto ref = pf::write_plotfile(serial, serial_be, spec, {{geom, &mf}});

  p::MemoryBackend spmd_be(true);
  ex::SpmdEngine spmd(nranks);
  const auto got = pf::write_plotfile(spmd, spmd_be, spec, {{geom, &mf}});

  EXPECT_EQ(got.total_bytes, ref.total_bytes);
  EXPECT_EQ(got.metadata_bytes, ref.metadata_bytes);
  EXPECT_EQ(got.data_bytes, ref.data_bytes);
  EXPECT_EQ(got.nfiles, ref.nfiles);
  EXPECT_EQ(got.rank_level_bytes, ref.rank_level_bytes);
  expect_backends_equal(spmd_be, serial_be);
  for (const auto& path : serial_be.list(""))
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
}

// ----------------------------------------------------- OutFile move state

TEST(OutFile, MoveAssignmentClosesTargetAndEmptiesSource) {
  p::MemoryBackend be(true);
  p::OutFile a(be, "a");
  a.write("aa");
  {
    p::OutFile b(be, "b");
    b.write("bbbb");
    a = std::move(b);  // must close "a" and take over "b"
    EXPECT_EQ(b.path(), "");
    EXPECT_EQ(b.bytes_written(), 0u);
    b.close();  // harmless on moved-from
  }
  EXPECT_EQ(a.path(), "b");
  EXPECT_EQ(a.bytes_written(), 4u);
  a.write("BB");
  a.close();
  EXPECT_EQ(be.size("a"), 2u);
  EXPECT_EQ(be.size("b"), 6u);
}

TEST(OutFile, MoveConstructorEmptiesSource) {
  p::MemoryBackend be(true);
  p::OutFile a(be, "x");
  a.write("123");
  p::OutFile moved(std::move(a));
  EXPECT_EQ(a.path(), "");
  EXPECT_EQ(a.bytes_written(), 0u);
  EXPECT_EQ(moved.path(), "x");
  EXPECT_EQ(moved.bytes_written(), 3u);
  moved.write("45");
  moved.close();
  EXPECT_EQ(be.size("x"), 5u);
}

/// Tests for the codec subsystem: the three registered compression models
/// (identity / lossless / ebl) and their container round-trip, smoothness
/// estimation from real field data, CodecStats accounting, the MACSio knob
/// validation, and the integration across every byte path — identity stays
/// byte-identical to the PR-2 staging output, raw accounting conserves
/// task_doc_bytes() while the wire/tier carries encoded bytes, store-mode
/// drains through StagingBackend stay reader-compatible, and the plotfile
/// per-Cell_D hook keeps predict parity. Engine-facing cases run on both
/// SerialEngine and SpmdEngine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <numeric>

#include "codec/codec.hpp"
#include "codec/stats.hpp"
#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/driver.hpp"
#include "macsio/interfaces.hpp"
#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/writer.hpp"
#include "staging/aggregator.hpp"
#include "staging/staging_backend.hpp"
#include "util/assert.hpp"

namespace cd = amrio::codec;
namespace ex = amrio::exec;
namespace mc = amrio::macsio;
namespace m = amrio::mesh;
namespace p = amrio::pfs;
namespace pf = amrio::plotfile;
namespace st = amrio::staging;

// ------------------------------------------------------------ codec models

TEST(CodecModel, IdentityIsExactPassthrough) {
  const auto codec = cd::make_codec({});
  EXPECT_EQ(codec->name(), "identity");
  const auto r = codec->plan(12345);
  EXPECT_EQ(r.raw_bytes, 12345u);
  EXPECT_EQ(r.out_bytes, 12345u);
  EXPECT_DOUBLE_EQ(r.cpu_seconds, 0.0);
  const std::string text = "AMRIOCDC-lookalike payload";
  std::vector<std::byte> raw(text.size());
  std::memcpy(raw.data(), text.data(), text.size());
  cd::CompressResult enc;
  const auto blob = codec->encode(raw, &enc);
  EXPECT_EQ(blob, raw);  // no container, no copy semantics change
  EXPECT_EQ(codec->decode(blob), raw);
  EXPECT_EQ(codec->peek(blob).out_bytes, raw.size());
}

TEST(CodecModel, LosslessRatioIsDeterministicAndSizeCalibrated) {
  cd::CodecSpec spec;
  spec.name = "lossless";
  const auto codec = cd::make_codec(spec);
  // Eq. (3) anchors: the default 80 kB part compresses ~2.3x, the 1.55 MB
  // Listing-1 part ~4.5x, monotone in between.
  const auto small = codec->plan(80'000);
  const auto large = codec->plan(1'550'000);
  EXPECT_NEAR(small.ratio(), 2.3, 2.3 * 0.05);
  EXPECT_NEAR(large.ratio(), 4.5, 4.5 * 0.05);
  EXPECT_LT(small.ratio(), large.ratio());
  // pure function of the raw size
  EXPECT_EQ(codec->plan(80'000).out_bytes, small.out_bytes);
  // default throughput charges cpu proportional to raw bytes
  EXPECT_GT(small.cpu_seconds, 0.0);
  EXPECT_NEAR(large.cpu_seconds / small.cpu_seconds, 1'550'000.0 / 80'000.0,
              1e-9);
  // tiny chunks never shrink below the per-chunk floor (or their own size)
  EXPECT_EQ(codec->plan(32).out_bytes, 32u);
  EXPECT_EQ(codec->plan(0).out_bytes, 0u);
}

TEST(CodecModel, EblRatioTracksErrorBoundAndSmoothness) {
  auto at_bound = [](double eb) {
    cd::CodecSpec spec;
    spec.name = "ebl";
    spec.error_bound = eb;
    spec.throughput = 2.0e9;
    return cd::make_codec(spec);
  };
  const std::uint64_t raw = 1 << 20;
  const auto loose = at_bound(1e-2)->plan(raw);
  const auto mid = at_bound(1e-4)->plan(raw);
  const auto tight = at_bound(1e-6)->plan(raw);
  // looser bounds compress harder; everything stays within [floor, raw]
  EXPECT_LT(loose.out_bytes, mid.out_bytes);
  EXPECT_LT(mid.out_bytes, tight.out_bytes);
  EXPECT_LT(tight.out_bytes, raw);
  // the AMRIC band: 2-10x over these bounds at default smoothness
  EXPECT_GE(loose.ratio(), 2.0);
  EXPECT_LE(tight.ratio(), 10.0);
  // smoother fields compress harder at a fixed bound
  const auto codec = at_bound(1e-3);
  EXPECT_LT(codec->plan_with(raw, 0.95).out_bytes,
            codec->plan_with(raw, 0.5).out_bytes);
  // cpu is raw / throughput
  EXPECT_NEAR(loose.cpu_seconds, static_cast<double>(raw) / 2.0e9, 1e-12);
}

TEST(CodecModel, ContainerRoundTripsByteExactly) {
  cd::CodecSpec spec;
  spec.name = "ebl";
  const auto codec = cd::make_codec(spec);
  std::vector<std::byte> raw(100'000);
  for (std::size_t i = 0; i < raw.size(); ++i)
    raw[i] = static_cast<std::byte>(i * 37);
  cd::CompressResult enc;
  const auto blob = codec->encode(raw, &enc);
  EXPECT_EQ(enc.raw_bytes, raw.size());
  EXPECT_LT(enc.out_bytes, raw.size());
  const auto peeked = codec->peek(blob);
  EXPECT_EQ(peeked.raw_bytes, enc.raw_bytes);
  EXPECT_EQ(peeked.out_bytes, enc.out_bytes);
  EXPECT_NEAR(peeked.cpu_seconds, enc.cpu_seconds, 1e-9);
  EXPECT_EQ(codec->decode(blob), raw);
  // a blob this codec did not produce is rejected loudly
  EXPECT_THROW(codec->decode(raw), std::runtime_error);
}

TEST(CodecModel, SmoothnessEstimatorSeparatesSmoothFromRough) {
  std::vector<double> constant(256, 4.2);
  EXPECT_DOUBLE_EQ(cd::estimate_smoothness(constant), 1.0);
  std::vector<double> linear(256);
  std::iota(linear.begin(), linear.end(), 0.0);
  EXPECT_DOUBLE_EQ(cd::estimate_smoothness(linear), 1.0);
  std::vector<double> smooth(256);
  for (std::size_t i = 0; i < smooth.size(); ++i)
    smooth[i] = std::sin(0.05 * static_cast<double>(i));
  std::vector<double> rough(256);
  for (std::size_t i = 0; i < rough.size(); ++i)
    rough[i] = (i % 2 == 0) ? 1.0 : -1.0;
  EXPECT_GT(cd::estimate_smoothness(smooth), 0.95);
  EXPECT_LT(cd::estimate_smoothness(rough), 0.1);
  EXPECT_GT(cd::estimate_smoothness(smooth), cd::estimate_smoothness(rough));
}

TEST(CodecModel, RegistryRejectsBadSpecsWithOneLineErrors) {
  EXPECT_EQ(cd::codec_names().size(), 3u);
  cd::CodecSpec spec;
  spec.name = "zfp";
  try {
    cd::make_codec(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown codec 'zfp'"),
              std::string::npos);
  }
  spec.name = "ebl";
  spec.error_bound = 0.0;
  EXPECT_THROW(cd::make_codec(spec), std::invalid_argument);
  spec.error_bound = 1.5;
  EXPECT_THROW(cd::make_codec(spec), std::invalid_argument);
  spec.error_bound = 1e-3;
  spec.throughput = -1.0;
  EXPECT_THROW(cd::make_codec(spec), std::invalid_argument);
  spec.throughput = 0.0;
  spec.smoothness = 2.0;
  EXPECT_THROW(cd::make_codec(spec), std::invalid_argument);
}

TEST(CodecStatsTest, AccumulatesBreakdownsAndMerges) {
  cd::CodecStats a;
  a.add(0, -1, {1000, 400, 0.1});
  a.add(0, -1, {500, 200, 0.05});
  a.add(1, -1, {1000, 250, 0.1});
  EXPECT_EQ(a.total.raw_bytes, 2500u);
  EXPECT_EQ(a.total.encoded_bytes, 850u);
  EXPECT_EQ(a.total.chunks, 3u);
  EXPECT_EQ(a.by_dump.at(0).encoded_bytes, 600u);
  EXPECT_EQ(a.by_dump.at(1).encoded_bytes, 250u);
  EXPECT_NEAR(a.total.ratio(), 2500.0 / 850.0, 1e-12);
  EXPECT_EQ(a.total.saved_bytes(), 1650u);
  cd::CodecStats b;
  b.add(1, 2, {100, 50, 0.01});
  a.merge(b);
  EXPECT_EQ(a.total.chunks, 4u);
  EXPECT_EQ(a.by_dump.at(1).raw_bytes, 1100u);
  EXPECT_EQ(a.by_level.at(2).encoded_bytes, 50u);
}

// ----------------------------------------------------------- MACSio knobs

TEST(CodecKnobs, CliParsesRoundTripsAndRejects) {
  const auto p = mc::Params::from_cli({"--nprocs", "8", "--codec", "ebl",
                                       "--codec_error_bound", "1e-4",
                                       "--codec_throughput", "2e9"});
  EXPECT_EQ(p.codec, "ebl");
  EXPECT_DOUBLE_EQ(p.codec_error_bound, 1e-4);
  EXPECT_DOUBLE_EQ(p.codec_throughput, 2e9);
  const auto back = mc::Params::from_cli(p.to_cli());
  EXPECT_EQ(back.codec, "ebl");
  EXPECT_DOUBLE_EQ(back.codec_error_bound, 1e-4);

  // unknown codec names and out-of-range bounds die with one-line errors,
  // same shape as the --aggregators checks
  try {
    mc::Params::from_cli({"--nprocs", "8", "--codec", "zstd"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown codec 'zstd'"),
              std::string::npos);
  }
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--codec", "ebl",
                                     "--codec_error_bound", "0"}),
               std::invalid_argument);
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--codec", "ebl",
                                     "--codec_error_bound", "1.5"}),
               std::invalid_argument);
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--codec", "lossless",
                                     "--codec_throughput", "-1"}),
               std::invalid_argument);
  // the consolidated path still rejects bad aggregator counts
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--aggregators", "0"}),
               std::invalid_argument);
  // programmatic params are validated too
  mc::Params bad;
  bad.codec = "nonsense";
  EXPECT_THROW(bad.validate(), amrio::ContractViolation);
}

// ------------------------------------------------- MACSio codec integration

namespace {

mc::Params codec_params(int nprocs, int aggregators, const std::string& codec) {
  mc::Params params;
  params.nprocs = nprocs;
  params.aggregators = aggregators;
  params.num_dumps = 3;
  params.part_size = 1500;
  params.dataset_growth = 1.05;
  params.meta_size = 16;
  params.avg_num_parts = 1.5;
  params.compute_time = 0.25;
  params.codec = codec;
  params.codec_throughput = 2.0e9;
  return params;
}

}  // namespace

class CodecMacsio : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(CodecMacsio, IdentityIsByteIdenticalToUncodedStaging) {
  // The codec-aware dump loop with the identity codec must reproduce the
  // PR-2 staging output exactly: subfiles concatenate the flat run's task
  // documents in rank order, requests carry raw sizes on the raw timeline.
  const auto params = codec_params(16, 4, "identity");
  p::MemoryBackend be(true);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  const auto stats = mc::run_macsio(*engine, params, be);

  auto flat = params;
  flat.aggregators = 0;
  p::MemoryBackend flat_be(true);
  mc::run_macsio(flat, flat_be);

  const auto topo = st::AggTopology::make(params.nprocs, params.aggregators);
  for (int dump = 0; dump < params.num_dumps; ++dump) {
    for (int g = 0; g < topo.ngroups(); ++g) {
      std::vector<std::byte> expected;
      for (int r : topo.members_of(g)) {
        const auto doc = flat_be.read(mc::dump_file_path(flat, r, dump));
        expected.insert(expected.end(), doc.begin(), doc.end());
      }
      EXPECT_EQ(be.read(mc::aggregated_file_path(params, g, dump)), expected)
          << "group " << g << " dump " << dump;
    }
  }
  // identity accounting: encoded == raw, zero cpu, submit on the raw clock
  EXPECT_EQ(stats.codec.total.encoded_bytes, stats.codec.total.raw_bytes);
  EXPECT_DOUBLE_EQ(stats.codec.total.encode_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.codec.total.decode_seconds, 0.0);
  const st::AggregationConfig agg_cfg{params.aggregators,
                                      params.agg_link_bandwidth, 1.0e-6};
  for (const auto& req : stats.requests) {
    if (req.file.find("_agg_") == std::string::npos) continue;
    const int g = topo.group_of(req.client);
    std::uint64_t subfile = 0;
    std::uint64_t shipped = 0;
    int nmessages = 0;
    for (int r : topo.members_of(g)) {
      const int dump = static_cast<int>(
          (req.submit_time + 1e-12) / params.compute_time);
      const std::uint64_t b = stats.task_bytes[static_cast<std::size_t>(dump)]
                                              [static_cast<std::size_t>(r)];
      subfile += b;
      if (r != req.client) {
        shipped += b;
        ++nmessages;
      }
    }
    EXPECT_EQ(req.bytes, subfile) << req.file;
    const int dump = static_cast<int>(
        (req.submit_time + 1e-12) / params.compute_time);
    EXPECT_NEAR(req.submit_time,
                dump * params.compute_time +
                    st::ship_cost(agg_cfg, shipped, nmessages),
                1e-12)
        << req.file;
  }
}

TEST_P(CodecMacsio, RawAccountingConservedWhileWireAndTierShrink) {
  const auto params = codec_params(16, 4, "ebl");
  p::MemoryBackend be(true);
  amrio::iostats::TraceRecorder trace;
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  const auto stats = mc::run_macsio(*engine, params, be, &trace);

  const auto codec = cd::make_codec(params.codec_spec());
  const auto iface = mc::make_interface(params.interface);
  const auto topo = st::AggTopology::make(params.nprocs, params.aggregators);
  std::uint64_t raw_total = 0;
  std::uint64_t encoded_total = 0;
  for (int dump = 0; dump < params.num_dumps; ++dump) {
    const mc::PartSpec spec = mc::make_part_spec(
        params.part_bytes_at_dump(dump), params.vars_per_part);
    std::map<int, std::uint64_t> group_encoded;
    std::uint64_t dump_raw = 0;
    for (int r = 0; r < params.nprocs; ++r) {
      // raw-byte accounting conserves the exact task document sizes
      const std::uint64_t doc = iface->task_doc_bytes(
          spec, r, dump, params.parts_of_rank(r), params.meta_size);
      EXPECT_EQ(stats.task_bytes[static_cast<std::size_t>(dump)]
                                [static_cast<std::size_t>(r)],
                doc);
      dump_raw += doc;
      group_encoded[topo.group_of(r)] += codec->plan(doc).out_bytes;
      raw_total += doc;
    }
    // ... while the subfile requests carry the encoded sizes (strictly
    // smaller) and the subfile contents stay the raw concatenation
    for (int g = 0; g < topo.ngroups(); ++g) {
      const auto path = mc::aggregated_file_path(params, g, dump);
      bool found = false;
      for (const auto& req : stats.requests) {
        if (req.file != path) continue;
        found = true;
        EXPECT_EQ(req.bytes, group_encoded[g]) << path;
        EXPECT_GT(req.submit_time, dump * params.compute_time) << path;
      }
      EXPECT_TRUE(found) << path;
      encoded_total += group_encoded[g];
      std::uint64_t members_raw = 0;
      for (int r : topo.members_of(g))
        members_raw += stats.task_bytes[static_cast<std::size_t>(dump)]
                                       [static_cast<std::size_t>(r)];
      EXPECT_LT(group_encoded[g], members_raw) << path;
      EXPECT_EQ(be.size(path), members_raw) << path;  // decoded on arrival
    }
    EXPECT_EQ(stats.bytes_per_dump[static_cast<std::size_t>(dump)],
              dump_raw + mc::aggregated_index_bytes(params) +
                  be.size(mc::root_file_path(params, dump)));
  }
  EXPECT_EQ(stats.codec.total.raw_bytes, raw_total);
  EXPECT_EQ(stats.codec.total.encoded_bytes, encoded_total);
  EXPECT_LT(stats.codec.total.encoded_bytes, stats.codec.total.raw_bytes);
  EXPECT_GT(stats.codec.total.encode_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.codec.total.decode_seconds, 0.0);  // write side only
  EXPECT_EQ(stats.codec.total.chunks,
            static_cast<std::uint64_t>(params.nprocs * params.num_dumps));

  // trace events grow codec dimensions: raw bytes stay in `bytes`, the
  // encoded size and encode cpu ride alongside
  int subfile_events = 0;
  for (const auto& e : trace.events()) {
    if (e.level != 0) continue;
    ++subfile_events;
    EXPECT_GT(e.encoded_bytes, 0u) << e.path;
    EXPECT_LT(e.encoded_bytes, e.bytes) << e.path;
    EXPECT_GT(e.codec_seconds, 0.0) << e.path;
  }
  EXPECT_EQ(subfile_events, params.aggregators * params.num_dumps);
}

TEST_P(CodecMacsio, UnaggregatedRequestsCarryEncodedSizesAndCpuDelay) {
  const auto params = codec_params(8, 0, "lossless");
  p::MemoryBackend be(false);
  const auto engine = ex::make_engine(GetParam(), params.nprocs);
  const auto stats = mc::run_macsio(*engine, params, be);
  const auto codec = cd::make_codec(params.codec_spec());
  for (const auto& req : stats.requests) {
    if (req.file.find("/data/") == std::string::npos) continue;
    const int dump = static_cast<int>(
        (req.submit_time + 1e-12) / params.compute_time);
    const std::uint64_t raw =
        stats.task_bytes[static_cast<std::size_t>(dump)]
                        [static_cast<std::size_t>(req.client)];
    const auto enc = codec->plan(raw);
    EXPECT_EQ(req.bytes, enc.out_bytes) << req.file;
    EXPECT_NEAR(req.submit_time, dump * params.compute_time + enc.cpu_seconds,
                1e-12)
        << req.file;
  }
}

TEST(CodecMacsioEngines, EblRunsAreByteIdenticalAcrossEngines) {
  const auto params = codec_params(16, 4, "ebl");
  p::MemoryBackend serial_be(true);
  ex::SerialEngine serial(params.nprocs);
  const auto ref = mc::run_macsio(serial, params, serial_be);

  p::MemoryBackend spmd_be(true);
  ex::SpmdEngine spmd(params.nprocs);
  const auto got = mc::run_macsio(spmd, params, spmd_be);

  EXPECT_EQ(got.total_bytes, ref.total_bytes);
  EXPECT_EQ(got.bytes_per_dump, ref.bytes_per_dump);
  EXPECT_EQ(got.task_bytes, ref.task_bytes);
  EXPECT_EQ(got.codec.total.raw_bytes, ref.codec.total.raw_bytes);
  EXPECT_EQ(got.codec.total.encoded_bytes, ref.codec.total.encoded_bytes);
  const auto paths = serial_be.list("");
  ASSERT_EQ(paths, spmd_be.list(""));
  for (const auto& path : paths)
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
}

INSTANTIATE_TEST_SUITE_P(Kinds, CodecMacsio,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd));

// ------------------------------------------------ StagingBackend round trip

namespace {

struct PlotCase {
  m::MultiFab mf;
  m::Geometry geom;
  pf::PlotfileSpec spec;
};

PlotCase make_plot_case(int nranks, const std::string& codec,
                        double smoothness = -1.0) {
  std::vector<m::Box> boxes;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      boxes.emplace_back(i * 8, j * 8, i * 8 + 7, j * 8 + 7);
  m::BoxArray ba(boxes);
  const auto dm =
      m::DistributionMapping::make(ba, nranks, m::DistributionStrategy::kSfc);
  PlotCase c{m::MultiFab(ba, dm, 2, 0),
             m::Geometry(m::Box(0, 0, 31, 31), {0.0, 0.0}, {1.0, 1.0}),
             {}};
  // a smooth Sedov-like radial profile: real data for the ebl estimator
  for (std::size_t bi = 0; bi < ba.size(); ++bi) {
    auto& fab = c.mf.fab(bi);
    const auto& b = fab.box();
    for (int comp = 0; comp < 2; ++comp)
      for (int j = b.lo(1); j <= b.hi(1); ++j)
        for (int i = b.lo(0); i <= b.hi(0); ++i) {
          const double r2 = (i - 16.0) * (i - 16.0) + (j - 16.0) * (j - 16.0);
          fab(i, j, comp) = std::exp(-r2 / 128.0) + 0.1 * comp;
        }
  }
  c.spec.dir = "codec_plt00000";
  c.spec.var_names = {"a", "b"};
  c.spec.codec.name = codec;
  c.spec.codec.smoothness = smoothness;
  c.spec.codec.throughput = 2.0e9;
  return c;
}

}  // namespace

TEST(CodecStaging, StoreModeEblDrainRoundTripsReaderCompatible) {
  // Write a plotfile through a burst buffer whose tier holds ebl-encoded
  // bytes; after the drain the final store must be byte-exactly the decoded
  // tree — the plotfile reader consumes it unchanged.
  auto c = make_plot_case(8, "identity");  // writer-side codec off ...
  p::MemoryBackend direct_be(true);
  pf::write_plotfile(direct_be, c.spec, {{c.geom, &c.mf}});

  cd::CodecSpec bb_codec;  // ... the staging tier runs the codec
  bb_codec.name = "ebl";
  bb_codec.error_bound = 1e-3;
  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be, /*store_contents=*/true, bb_codec);
  auto c2 = make_plot_case(8, "identity");
  pf::write_plotfile(bb, c2.spec, {{c2.geom, &c2.mf}});

  // the tier holds fewer bytes than the raw image while staged
  EXPECT_GT(bb.pending_files(), 0u);
  EXPECT_LT(bb.pending_encoded_bytes(), bb.pending_bytes());
  const auto reqs = bb.drain_requests(1.0, 0);
  std::uint64_t tier_bytes = 0;
  for (const auto& r : reqs) {
    EXPECT_EQ(r.tier, p::kTierBurstBuffer);
    tier_bytes += r.bytes;
  }
  EXPECT_EQ(tier_bytes, bb.pending_encoded_bytes());

  const auto drained = bb.drain_all();
  std::uint64_t raw_drained = 0;
  std::uint64_t encoded_drained = 0;
  for (const auto& rec : drained) {
    EXPECT_LE(rec.encoded_bytes, rec.bytes) << rec.path;
    raw_drained += rec.bytes;
    encoded_drained += rec.encoded_bytes;
  }
  EXPECT_LT(encoded_drained, raw_drained);
  const auto cstats = bb.codec_stats();
  EXPECT_EQ(cstats.total.raw_bytes, raw_drained);
  EXPECT_EQ(cstats.total.encoded_bytes, encoded_drained);

  // decompressed contents are byte-exact: identical tree, readable values
  ASSERT_EQ(final_be.list(""), direct_be.list(""));
  for (const auto& path : direct_be.list(""))
    EXPECT_EQ(final_be.read(path), direct_be.read(path)) << path;
  const auto pfile = pf::read_plotfile(final_be, "codec_plt00000");
  ASSERT_EQ(pfile.levels.size(), 1u);
  ASSERT_EQ(pfile.levels[0].fabs.size(), 16u);
  for (const auto& fab : pfile.levels[0].fabs) {
    const int i = fab.box().lo(0);
    const int j = fab.box().lo(1);
    const double r2 = (i - 16.0) * (i - 16.0) + (j - 16.0) * (j - 16.0);
    EXPECT_NEAR(fab(i, j, 0), std::exp(-r2 / 128.0), 1e-12);
  }
}

TEST(CodecStaging, MacsioDrainThroughEblTierMatchesDirect) {
  const auto params = codec_params(16, 4, "identity");
  p::MemoryBackend direct_be(true);
  mc::run_macsio(params, direct_be);

  cd::CodecSpec bb_codec;
  bb_codec.name = "ebl";
  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be, /*store_contents=*/true, bb_codec);
  mc::run_macsio(params, bb);
  EXPECT_LT(bb.pending_encoded_bytes(), bb.pending_bytes());
  bb.drain_all();
  ASSERT_EQ(final_be.list(""), direct_be.list(""));
  for (const auto& path : direct_be.list(""))
    EXPECT_EQ(final_be.read(path), direct_be.read(path)) << path;
}

TEST(CodecStaging, AccountingModeKeepsExactSizesUnderEncodedWrites) {
  // store_contents = false: the staging area tracks raw byte counts only;
  // encoded sizes shrink the tier accounting, yet the drained file set and
  // per-file sizes stay exactly what a direct run produces.
  const auto params = codec_params(16, 4, "identity");
  p::MemoryBackend direct_be(false);
  mc::run_macsio(params, direct_be);

  cd::CodecSpec bb_codec;
  bb_codec.name = "lossless";
  p::MemoryBackend final_be(false);
  st::StagingBackend bb(final_be, /*store_contents=*/false, bb_codec);
  mc::run_macsio(params, bb);

  const std::uint64_t pending_raw = bb.pending_bytes();
  EXPECT_LT(bb.pending_encoded_bytes(), pending_raw);
  const auto drained = bb.drain_all();
  std::uint64_t drained_raw = 0;
  for (const auto& rec : drained) {
    EXPECT_EQ(rec.bytes, direct_be.size(rec.path)) << rec.path;
    EXPECT_LE(rec.encoded_bytes, rec.bytes) << rec.path;
    drained_raw += rec.bytes;
  }
  EXPECT_EQ(drained_raw, pending_raw);
  ASSERT_EQ(final_be.list(""), direct_be.list(""));
  for (const auto& path : direct_be.list(""))
    EXPECT_EQ(final_be.size(path), direct_be.size(path)) << path;
}

// ------------------------------------------------- plotfile per-Cell_D hook

class CodecPlotfile : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(CodecPlotfile, PinnedSmoothnessKeepsPredictParity) {
  const int nranks = 8;
  auto c = make_plot_case(nranks, "ebl", /*smoothness=*/0.9);
  c.spec.aggregators = 4;
  p::MemoryBackend be(true);
  amrio::iostats::TraceRecorder write_trace;
  const auto engine = ex::make_engine(GetParam(), nranks);
  const auto written =
      pf::write_plotfile(*engine, be, c.spec, {{c.geom, &c.mf}}, &write_trace);

  const pf::LevelLayout layout{c.geom, c.mf.box_array(), c.mf.distribution()};
  amrio::iostats::TraceRecorder predict_trace;
  const auto predicted =
      pf::predict_plotfile(c.spec, {layout}, 2, &predict_trace);

  EXPECT_EQ(predicted.total_bytes, written.total_bytes);
  EXPECT_EQ(predicted.nfiles, written.nfiles);
  EXPECT_EQ(predicted.codec.total.raw_bytes, written.codec.total.raw_bytes);
  EXPECT_EQ(predicted.codec.total.encoded_bytes,
            written.codec.total.encoded_bytes);
  EXPECT_EQ(predicted.codec.total.chunks, written.codec.total.chunks);
  EXPECT_NEAR(predicted.codec.total.encode_seconds,
              written.codec.total.encode_seconds, 1e-6);
  EXPECT_GT(written.codec.total.encoded_bytes, 0u);
  EXPECT_LT(written.codec.total.encoded_bytes, written.codec.total.raw_bytes);

  // the codec dimensions of the Cell_D trace events match event-for-event
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_path;
  for (const auto& e : write_trace.events())
    if (e.encoded_bytes > 0) by_path[e.path] = {e.bytes, e.encoded_bytes};
  int matched = 0;
  for (const auto& e : predict_trace.events()) {
    if (e.encoded_bytes == 0) continue;
    ASSERT_TRUE(by_path.count(e.path)) << e.path;
    EXPECT_EQ(by_path[e.path].first, e.bytes) << e.path;
    EXPECT_EQ(by_path[e.path].second, e.encoded_bytes) << e.path;
    ++matched;
  }
  EXPECT_EQ(matched, static_cast<int>(by_path.size()));
}

TEST_P(CodecPlotfile, AutoSmoothnessReadsRealFabData) {
  // Auto mode measures the actual field: the smooth Sedov-like case must
  // compress harder than white noise of identical size and layout.
  const int nranks = 4;
  auto smooth = make_plot_case(nranks, "ebl");
  p::MemoryBackend smooth_be(true);
  const auto engine = ex::make_engine(GetParam(), nranks);
  const auto s =
      pf::write_plotfile(*engine, smooth_be, smooth.spec, {{smooth.geom, &smooth.mf}});

  auto rough = make_plot_case(nranks, "ebl");
  for (std::size_t bi = 0; bi < rough.mf.box_array().size(); ++bi) {
    auto& fab = rough.mf.fab(bi);
    auto data = fab.data();
    for (std::size_t k = 0; k < data.size(); ++k)
      data[k] = (k % 2 == 0) ? 1.0 : -1.0;
  }
  p::MemoryBackend rough_be(true);
  const auto engine2 = ex::make_engine(GetParam(), nranks);
  const auto r =
      pf::write_plotfile(*engine2, rough_be, rough.spec, {{rough.geom, &rough.mf}});

  EXPECT_EQ(s.codec.total.raw_bytes, r.codec.total.raw_bytes);
  EXPECT_LT(s.codec.total.encoded_bytes, r.codec.total.encoded_bytes);
  EXPECT_LT(s.codec.total.encoded_bytes, s.codec.total.raw_bytes);
  // file contents stay raw and identical to an uncoded write
  auto plain = make_plot_case(nranks, "identity");
  p::MemoryBackend plain_be(true);
  pf::write_plotfile(plain_be, plain.spec, {{plain.geom, &plain.mf}});
  ASSERT_EQ(smooth_be.list(""), plain_be.list(""));
  for (const auto& path : plain_be.list(""))
    EXPECT_EQ(smooth_be.read(path), plain_be.read(path)) << path;
}

INSTANTIATE_TEST_SUITE_P(Kinds, CodecPlotfile,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd));

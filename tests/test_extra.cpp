/// Corner-case batch: behaviours not covered by the per-module suites —
/// pretty JSON, OutFile move semantics, checkpoint read-back, SPMD writer
/// with rank gaps, SFC locality, timeline overlap accounting, growth-guess
/// trends, and Eq. (1) metadata bookkeeping.

#include <gtest/gtest.h>

#include <sstream>

#include "iostats/aggregate.hpp"
#include "mesh/distribution.hpp"
#include "mesh/morton.hpp"
#include "model/translate.hpp"
#include "pfs/timeline.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/writer.hpp"
#include "simmpi/comm.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace m = amrio::mesh;
namespace p = amrio::pfs;
namespace pf = amrio::plotfile;

TEST(JsonPretty, IndentsNestedStructures) {
  std::ostringstream os;
  amrio::util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.end_object();
  const std::string out = os.str();
  EXPECT_NE(out.find("\n  \"list\""), std::string::npos);
  EXPECT_NE(out.find("\n    1"), std::string::npos);
  EXPECT_EQ(out.back(), '}');
}

TEST(OutFile, MoveTransfersOwnership) {
  p::MemoryBackend be(true);
  {
    p::OutFile a(be, "f");
    a.write("xy");
    p::OutFile b(std::move(a));
    b.write("z");
    // destruction of both closes exactly once (no double close throw)
  }
  EXPECT_EQ(be.size("f"), 3u);
}

TEST(OutFile, ExplicitCloseIsIdempotent) {
  p::MemoryBackend be(true);
  p::OutFile f(be, "g");
  f.write("a");
  f.close();
  f.close();  // no-op
  EXPECT_EQ(be.size("g"), 1u);
}

TEST(Checkpoint, ReadsBackThroughPlotfileReader) {
  p::MemoryBackend be(true);
  m::BoxArray ba(m::Box(0, 0, 15, 15));
  auto dm = m::DistributionMapping::make(ba, 1, m::DistributionStrategy::kSfc);
  m::MultiFab state(ba, dm, 4, 0);
  state.set_val(3.5);
  const m::Geometry geom(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
  pf::PlotfileSpec spec;
  spec.dir = "chk00007";
  spec.var_names = {"density", "xmom", "ymom", "rho_E"};
  spec.step = 7;
  pf::write_checkpoint(be, spec, {{geom, &state}});
  const auto back = pf::read_plotfile(be, "chk00007");
  EXPECT_EQ(back.var_names.size(), 4u);
  ASSERT_EQ(back.levels.size(), 1u);
  EXPECT_DOUBLE_EQ(back.levels[0].fabs[0]({4, 4}, 0), 3.5);
}

TEST(SpmdWriter, RanksWithoutBoxesWriteNothing) {
  // 1 box over 4 ranks: ranks 1..3 own nothing at that level
  m::BoxArray ba(m::Box(0, 0, 7, 7));
  auto dm = m::DistributionMapping::make(ba, 4, m::DistributionStrategy::kSfc);
  m::MultiFab mf(ba, dm, 1, 0);
  const m::Geometry geom(m::Box(0, 0, 7, 7), {0.0, 0.0}, {1.0, 1.0});
  pf::PlotfileSpec spec;
  spec.dir = "gap_plt00000";
  spec.var_names = {"v"};
  p::MemoryBackend be(false);
  amrio::simmpi::run_spmd(4, [&](amrio::simmpi::Comm& comm) {
    pf::write_plotfile_spmd(comm, be, spec, {{geom, &mf}});
  });
  int cell_d_files = 0;
  for (const auto& path : be.list("gap_plt00000/Level_0"))
    if (path.find("Cell_D_") != std::string::npos) ++cell_d_files;
  EXPECT_EQ(cell_d_files, 1);
}

TEST(Sfc, MortonOrderingIsSpatiallyLocal) {
  // boxes laid along a Z-curve get contiguous rank assignments: neighbors in
  // curve order mostly share ranks (locality the SFC strategy is for)
  std::vector<m::Box> boxes;
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i)
      boxes.emplace_back(i * 8, j * 8, i * 8 + 7, j * 8 + 7);
  m::BoxArray ba(boxes);
  const auto dm =
      m::DistributionMapping::make(ba, 8, m::DistributionStrategy::kSfc);
  // each rank owns a contiguous chunk of equal weight: exactly 8 boxes each
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(dm.boxes_of(r).size(), 8u) << "rank " << r;
}

TEST(Timeline, OverlappingRequestsSumInBins) {
  std::vector<p::IoResult> results(2);
  results[0].open_start = results[0].open_end = 0.0;
  results[0].end = 2.0;
  results[0].bytes = 200;
  results[1].open_start = results[1].open_end = 1.0;
  results[1].end = 2.0;
  results[1].bytes = 100;
  const auto bins = p::bandwidth_timeline(results, 2);  // [0,1) and [1,2)
  EXPECT_NEAR(bins[0].bytes, 100.0, 1e-6);        // first request only
  EXPECT_NEAR(bins[1].bytes, 200.0, 1e-6);        // both overlap here
  EXPECT_NEAR(bins[1].bandwidth(), 200.0, 1e-6);  // per 1s window
}

TEST(GrowthGuess, TrendSurvivesInterpolation) {
  amrio::model::GrowthGuess g;
  // strictly increasing surface in both axes
  for (double cfl : {0.3, 0.6})
    for (int lev : {2, 4})
      g.add(cfl, lev, 1.0 + 0.05 * cfl + 0.01 * lev);
  // midpoints preserve the ordering
  EXPECT_LT(g.interpolate(0.35, 2), g.interpolate(0.55, 2));
  EXPECT_LT(g.interpolate(0.45, 2), g.interpolate(0.45, 4));
}

TEST(Aggregate, MetadataRowsCountedInTotalsNotLevels) {
  amrio::iostats::SizeTable table;
  table[{0, -1, -1}] = 100;  // Header/job_info
  table[{0, 0, -1}] = 10;    // Cell_H
  table[{0, 0, 0}] = 1000;   // data
  EXPECT_EQ(amrio::iostats::step_bytes(table, 0), 1110u);
  EXPECT_EQ(amrio::iostats::step_level_bytes(table, 0, 0), 1010u);
  EXPECT_EQ(amrio::iostats::step_level_bytes(table, 0, -1), 100u);
  // level series for L0 includes Cell_H but not the top-level metadata
  const auto l0 = amrio::iostats::cumulative_series_level(table, 64, 0);
  EXPECT_DOUBLE_EQ(l0.per_step[0], 1010.0);
}

TEST(Format, FormatGPrecision) {
  EXPECT_EQ(amrio::util::format_g(1.0, 6), "1");
  EXPECT_EQ(amrio::util::format_g(0.125, 6), "0.125");
  EXPECT_EQ(amrio::util::format_g(1234567.0, 3), "1.23e+06");
}

TEST(Morton, CurveVisitsQuadrantsInOrder) {
  // all codes in the lower-left 2x2 quadrant precede the upper-right 2x2
  std::uint64_t max_ll = 0;
  std::uint64_t min_ur = ~0ull;
  for (std::uint32_t j = 0; j < 2; ++j)
    for (std::uint32_t i = 0; i < 2; ++i) {
      max_ll = std::max(max_ll, m::morton_encode(i, j));
      min_ur = std::min(min_ur, m::morton_encode(i + 2, j + 2));
    }
  EXPECT_LT(max_ll, min_ur);
}

TEST(Comm, BcastLargePayload) {
  amrio::simmpi::run_spmd(3, [](amrio::simmpi::Comm& comm) {
    std::vector<double> data(10000, comm.rank() == 1 ? 3.25 : 0.0);
    comm.bcast(std::span<double>(data), 1);
    EXPECT_DOUBLE_EQ(data.front(), 3.25);
    EXPECT_DOUBLE_EQ(data.back(), 3.25);
  });
}

TEST(Geometry, RefineChainsCompose) {
  const m::Geometry g0(m::Box(0, 0, 31, 31), {0.0, 0.0}, {2.0, 2.0});
  const auto g2 = g0.refine(2).refine(2);
  EXPECT_DOUBLE_EQ(g2.cell_size(0), g0.cell_size(0) / 4);
  EXPECT_EQ(g2.domain(), g0.domain().refine(4));
  // physical center of a refined cell stays inside the original cell
  const auto c = g2.cell_center({0, 0});
  EXPECT_LT(c[0], g0.cell_size(0));
}

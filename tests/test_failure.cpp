/// Failure-injection tests: corrupted plotfiles, partial trees, malformed
/// CLI/inputs, backend misuse, and a fault-injecting storage backend that
/// verifies error propagation through the writers.

#include <gtest/gtest.h>

#include "amr/inputs.hpp"
#include "core/campaign.hpp"
#include "macsio/driver.hpp"
#include "macsio/params.hpp"
#include "plotfile/fab_io.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/scanner.hpp"
#include "plotfile/writer.hpp"
#include "util/assert.hpp"

namespace pf = amrio::plotfile;
namespace p = amrio::pfs;
namespace m = amrio::mesh;

namespace {

/// Backend that fails the N-th write call (simulating ENOSPC/EIO mid-dump).
class FaultyBackend final : public p::StorageBackend {
 public:
  FaultyBackend(p::StorageBackend& inner, int fail_at_write)
      : inner_(inner), fail_at_(fail_at_write) {}

  p::FileHandle create(const std::string& path) override {
    return inner_.create(path);
  }
  p::FileHandle open_append(const std::string& path) override {
    return inner_.open_append(path);
  }
  void write(p::FileHandle handle, std::span<const std::byte> data) override {
    if (++writes_ == fail_at_)
      throw std::runtime_error("injected fault: write failed");
    inner_.write(handle, data);
  }
  void close(p::FileHandle handle) override { inner_.close(handle); }
  bool exists(const std::string& path) const override {
    return inner_.exists(path);
  }
  std::uint64_t size(const std::string& path) const override {
    return inner_.size(path);
  }
  std::vector<std::string> list(const std::string& prefix) const override {
    return inner_.list(prefix);
  }
  std::vector<std::byte> read(const std::string& path) const override {
    return inner_.read(path);
  }
  int writes_seen() const { return writes_; }

 private:
  p::StorageBackend& inner_;
  int fail_at_;
  int writes_ = 0;
};

/// Small valid plotfile to corrupt.
struct WrittenPlotfile {
  p::MemoryBackend backend{true};
  pf::PlotfileSpec spec;
  std::vector<m::MultiFab> storage;

  WrittenPlotfile() {
    m::BoxArray ba(m::Box(0, 0, 15, 15));
    auto dm = m::DistributionMapping::make(ba, 2,
                                           m::DistributionStrategy::kRoundRobin);
    storage.emplace_back(ba, dm, 1, 0);
    storage[0].set_val(1.0);
    spec.dir = "plt00000";
    spec.var_names = {"density"};
    const m::Geometry geom(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
    pf::write_plotfile(backend, spec, {{geom, &storage[0]}});
  }

  void corrupt(const std::string& path, const std::string& new_text) {
    p::OutFile f(backend, path);  // create() truncates
    f.write(new_text);
  }
};

}  // namespace

// ---------------------------------------------------------- reader faults

TEST(FailureReader, TruncatedCellH) {
  WrittenPlotfile wp;
  const auto original = wp.backend.read("plt00000/Level_0/Cell_H");
  std::string truncated(reinterpret_cast<const char*>(original.data()),
                        original.size() / 3);
  wp.corrupt("plt00000/Level_0/Cell_H", truncated);
  EXPECT_THROW(pf::read_plotfile(wp.backend, "plt00000"), std::runtime_error);
}

TEST(FailureReader, GarbageHeader) {
  WrittenPlotfile wp;
  wp.corrupt("plt00000/Header", "not a header at all\n1\n2\n");
  EXPECT_THROW(pf::read_plotfile(wp.backend, "plt00000"), std::runtime_error);
}

TEST(FailureReader, WrongGridCountInCellH) {
  WrittenPlotfile wp;
  // claim 2 grids in a Cell_H that describes 1
  auto bytes = wp.backend.read("plt00000/Level_0/Cell_H");
  std::string text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  const auto pos = text.find("(1 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "(2 0");
  wp.corrupt("plt00000/Level_0/Cell_H", text);
  EXPECT_THROW(pf::read_plotfile(wp.backend, "plt00000"), std::runtime_error);
}

TEST(FailureReader, MissingCellDFile) {
  WrittenPlotfile wp;
  // wipe a data file by pointing the backend entry at empty content
  wp.corrupt("plt00000/Level_0/Cell_D_00000", "");
  EXPECT_THROW(pf::read_plotfile(wp.backend, "plt00000"), std::runtime_error);
}

TEST(FailureReader, FabBoxMismatch) {
  WrittenPlotfile wp;
  // replace the data file with a fab of the wrong box
  m::Fab wrong(m::Box(0, 0, 3, 3), 1);
  {
    p::OutFile out(wp.backend, "plt00000/Level_0/Cell_D_00000");
    pf::write_fab(out, wrong, wrong.box());
  }
  EXPECT_THROW(pf::read_plotfile(wp.backend, "plt00000"), std::runtime_error);
}

// --------------------------------------------------------- scanner faults

TEST(FailureScanner, PartialTreeStillCounted) {
  // scanner is forensic: it reports whatever bytes exist, corrupt or not
  WrittenPlotfile wp;
  wp.corrupt("plt00000/Header", "junk");
  const auto scan = pf::scan_plotfiles(wp.backend, "plt");
  EXPECT_EQ(scan.plotfile_dirs.size(), 1u);
  EXPECT_EQ(scan.total_bytes, wp.backend.total_bytes());
}

TEST(FailureScanner, EmptyBackend) {
  p::MemoryBackend be(false);
  const auto scan = pf::scan_plotfiles(be, "plt");
  EXPECT_TRUE(scan.table.empty());
  EXPECT_TRUE(scan.plotfile_dirs.empty());
  EXPECT_EQ(scan.total_bytes, 0u);
}

// ---------------------------------------------------------- writer faults

TEST(FailureWriter, InjectedWriteFaultPropagates) {
  WrittenPlotfile wp;  // provides storage/spec
  p::MemoryBackend inner(false);
  FaultyBackend faulty(inner, 2);
  const m::Geometry geom(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
  EXPECT_THROW(
      pf::write_plotfile(faulty, wp.spec, {{geom, &wp.storage[0]}}),
      std::runtime_error);
  EXPECT_GE(faulty.writes_seen(), 2);
}

TEST(FailureWriter, MacsioFaultPropagates) {
  amrio::macsio::Params params;
  params.nprocs = 2;
  params.num_dumps = 2;
  params.part_size = 4000;
  p::MemoryBackend inner(false);
  FaultyBackend faulty(inner, 3);
  EXPECT_THROW(amrio::macsio::run_macsio(params, faulty), std::runtime_error);
}

// -------------------------------------------------------------- CLI faults

TEST(FailureCli, MacsioRejectsMalformedInvocations) {
  using amrio::macsio::Params;
  EXPECT_THROW(Params::from_cli({"--interface", "netcdf"}),
               std::invalid_argument);
  EXPECT_THROW(Params::from_cli({"--parallel_file_mode", "BOTH", "1"}),
               std::invalid_argument);
  EXPECT_THROW(Params::from_cli({"--part_size", "tiny"}),
               std::invalid_argument);
  EXPECT_THROW(Params::from_cli({"--num_dumps"}), std::invalid_argument);
  EXPECT_THROW(Params::from_cli({"--bogus_flag", "1"}), std::invalid_argument);
  // semantic failures surface through validate()
  EXPECT_THROW(Params::from_cli({"--num_dumps", "0"}),
               amrio::ContractViolation);
  EXPECT_THROW(Params::from_cli({"--dataset_growth", "3.5"}),
               amrio::ContractViolation);
}

TEST(FailureInputs, AmrInputsRejectBrokenFiles) {
  using amrio::amr::AmrInputs;
  EXPECT_THROW(AmrInputs::from_string("amr.n_cell = 32\n"),
               amrio::ContractViolation);  // needs two values
  EXPECT_THROW(AmrInputs::from_string("castro.cfl = fast\n"),
               std::invalid_argument);
  EXPECT_THROW(AmrInputs::from_file("/nonexistent/inputs"),
               std::runtime_error);
  auto in = AmrInputs::from_string("amr.max_level = 99\n");
  EXPECT_THROW(in.validate(), amrio::ContractViolation);
}

// ---------------------------------------------------------- backend misuse

TEST(FailureBackend, UseAfterClose) {
  p::MemoryBackend be(true);
  const auto h = be.create("f");
  be.close(h);
  std::byte b{1};
  EXPECT_THROW(be.write(h, std::span<const std::byte>(&b, 1)),
               std::runtime_error);
  EXPECT_THROW(be.close(h), std::runtime_error);
}

TEST(FailureBackend, PosixUnwritablePathThrows) {
  EXPECT_THROW(p::PosixBackend("/proc/definitely/not/writable/amrio"),
               std::runtime_error);
}

// ------------------------------------------------------ campaign edge cases

TEST(FailureCampaign, NoOutputEventsRejectedByMeasurements) {
  amrio::core::RunRecord rec;  // empty series
  EXPECT_THROW(rec.measurements(), amrio::ContractViolation);
}

TEST(FailureCampaign, InvalidCaseConfigCaughtAtInputs) {
  amrio::core::CaseConfig c;
  c.ncell = 33;  // not a blocking_factor multiple
  EXPECT_THROW(c.to_inputs(), amrio::ContractViolation);
}

/// End-to-end integration tests: the paper's full pipeline (parameterized AMR
/// run → plotfile scan → Eq. 1 series → Listing-1 translation → calibrated
/// MACSio proxy → validation), plus the campaign layer and the behaviours the
/// figures depend on (level-growth nonlinearity, per-task imbalance,
/// CFL/max_level ordering).

#include <gtest/gtest.h>

#include <cmath>

#include "core/amrio.hpp"
#include "pfs/timeline.hpp"

using namespace amrio;

namespace {
core::CaseConfig tiny_case(const std::string& name) {
  core::CaseConfig c;
  c.name = name;
  c.ncell = 64;
  c.max_level = 2;
  c.plot_int = 5;
  c.max_step = 25;
  c.cfl = 0.5;
  c.nprocs = 8;
  c.max_grid_size = 16;
  return c;
}
}  // namespace

TEST(Pipeline, RunCaseProducesConsistentRecord) {
  const auto run = core::run_case(tiny_case("itest"));
  // 6 output events: steps 0,5,10,15,20,25
  ASSERT_EQ(run.total.steps.size(), 6u);
  EXPECT_EQ(run.total.steps.front(), 0);
  EXPECT_EQ(run.total.steps.back(), 25);
  // Eq. (1): x strictly increasing multiples of ncells
  for (std::size_t i = 0; i < run.total.x.size(); ++i)
    EXPECT_DOUBLE_EQ(run.total.x[i], (i + 1) * 64.0 * 64.0);
  // cumulative y strictly increasing; per-step positive
  for (std::size_t i = 1; i < run.total.y.size(); ++i)
    EXPECT_GT(run.total.y[i], run.total.y[i - 1]);
  // total bytes across the table equals the scan total
  std::uint64_t table_total = 0;
  for (const auto& [k, v] : run.table) table_total += v;
  EXPECT_EQ(table_total, run.total_bytes);
  // per-level series sum (plus metadata) equals the total series
  double level_sum = 0.0;
  for (const auto& s : run.per_level) level_sum += s.y.back();
  EXPECT_LE(level_sum, run.total.y.back());
  EXPECT_GT(level_sum, 0.8 * run.total.y.back());  // metadata is small
}

TEST(Pipeline, RefinedLevelsGrowFasterThanL0) {
  // Fig. 7's core behaviour: L0 per-step output constant, refined levels grow.
  auto cfg = tiny_case("fig7ish");
  cfg.max_step = 40;
  cfg.plot_int = 8;
  const auto run = core::run_case(cfg);
  ASSERT_GE(run.per_level.size(), 2u);
  const auto& l0 = run.per_level[0];
  // L0 per-step bytes identical at every output event
  for (std::size_t i = 1; i < l0.per_step.size(); ++i)
    EXPECT_NEAR(l0.per_step[i] / l0.per_step[0], 1.0, 0.01);
  // the finest level's last per-step output exceeds its first
  const auto& lf = run.per_level.back();
  EXPECT_GT(lf.per_step.back(), lf.per_step.front());
}

TEST(Pipeline, MoreLevelsMoreBytes) {
  // Fig. 6's dominant effect: max_level drives cumulative output size.
  auto lo = tiny_case("lev1");
  lo.max_level = 1;
  auto hi = tiny_case("lev3");
  hi.max_level = 3;
  const auto run_lo = core::run_case(lo);
  const auto run_hi = core::run_case(hi);
  EXPECT_GT(run_hi.total_bytes, run_lo.total_bytes);
}

TEST(Pipeline, PerTaskImbalanceOnRefinedLevels) {
  // Fig. 8: refined-level output is unevenly distributed across tasks.
  auto cfg = tiny_case("fig8ish");
  cfg.nprocs = 16;
  cfg.max_step = 30;
  const auto run = core::run_case(cfg);
  const auto last_step = run.total.steps.back();
  const auto levels = iostats::levels_present(run.table);
  ASSERT_FALSE(levels.empty());
  const int finest = levels.back();
  const double imb =
      iostats::task_imbalance(run.table, last_step, finest, cfg.nprocs);
  EXPECT_GT(imb, 1.05);  // visibly unbalanced
}

TEST(Pipeline, TranslationValidatesWithinTolerance) {
  // The headline claim: the calibrated MACSio proxy reproduces the AMR
  // output workload per step "to a certain degree of confidence".
  const auto run = core::run_case(tiny_case("validate"));
  const auto v = core::calibrate_and_validate(run, 1.0, 1.10);
  EXPECT_EQ(v.proxy_per_step.size(), v.sim_per_step.size());
  EXPECT_LT(v.mean_abs_rel_err, 0.15);
  EXPECT_LT(v.max_abs_rel_err, 0.40);
  // first-dump match is what Eq. (3) pins down
  EXPECT_NEAR(v.proxy_per_step.front() / v.sim_per_step.front(), 1.0, 0.05);
  // params round-trip through the CLI (the artifact the paper publishes)
  const auto parsed = macsio::Params::from_cli(v.translation.params.to_cli());
  EXPECT_DOUBLE_EQ(parsed.dataset_growth,
                   v.translation.params.dataset_growth);
}

TEST(Pipeline, HigherCflCalibratesToHigherGrowth) {
  // Appendix step 4: "the greater the cfl and number of levels, the greater
  // the data_growth".
  auto slow = tiny_case("cfl3");
  slow.cfl = 0.3;
  auto fast = tiny_case("cfl6");
  fast.cfl = 0.6;
  const auto run_slow = core::run_case(slow);
  const auto run_fast = core::run_case(fast);
  const auto v_slow = core::calibrate_and_validate(run_slow, 1.0, 1.2);
  const auto v_fast = core::calibrate_and_validate(run_fast, 1.0, 1.2);
  EXPECT_GE(v_fast.translation.calibration.best_growth,
            v_slow.translation.calibration.best_growth - 5e-3);
}

TEST(Pipeline, CampaignRunsMultipleCases) {
  std::vector<core::CaseConfig> cases;
  for (int i = 0; i < 3; ++i) {
    auto c = tiny_case("camp" + std::to_string(i));
    c.ncell = 32 << i;  // 32, 64, 128
    c.max_step = 10;
    c.plot_int = 5;
    c.max_level = 1;
    cases.push_back(c);
  }
  const auto runs = core::run_campaign(cases);
  ASSERT_EQ(runs.size(), 3u);
  // larger meshes produce more bytes (Fig. 5's spread over decades)
  EXPECT_GT(runs[1].total_bytes, runs[0].total_bytes);
  EXPECT_GT(runs[2].total_bytes, runs[1].total_bytes);
}

TEST(Pipeline, CheckpointExtensionWritesChkTrees) {
  auto cfg = tiny_case("chk");
  cfg.max_step = 10;
  core::CampaignOptions opts;
  opts.check_int = 5;
  pfs::MemoryBackend backend(false);
  const auto run = core::run_case(cfg, opts, &backend);
  const auto chk = plotfile::scan_plotfiles(backend, "chk_chk");
  EXPECT_EQ(chk.plotfile_dirs.size(), 2u);  // steps 5 and 10
  EXPECT_GT(chk.total_bytes, 0u);
  // checkpoints carry 4 conserved components vs 8 plot variables: a chk tree
  // at a given step is smaller than the plt tree at the same step
  const auto plt = plotfile::scan_plotfiles(backend, "chk_plt");
  EXPECT_GT(plt.total_bytes, chk.total_bytes);
}

TEST(Pipeline, ProxyRequestsReplayThroughSimFs) {
  // "dynamic" study path: feed the calibrated proxy's I/O requests into the
  // PFS simulator and get a bursty timeline.
  const auto run = core::run_case(tiny_case("dyn"));
  auto v = core::calibrate_and_validate(run);
  auto params = v.translation.params;
  params.compute_time = 1.0;
  pfs::MemoryBackend be(false);
  const auto stats = macsio::run_macsio(params, be);

  pfs::SimFsConfig fscfg;
  fscfg.n_ost = 8;
  fscfg.ost_bandwidth = 1e9;
  fscfg.client_bandwidth = 1e9;
  pfs::SimFs fs(fscfg);
  const auto results = fs.run(stats.requests);
  const auto burst = pfs::burst_stats(results);
  EXPECT_GT(burst.makespan, 0.0);
  // dumps every 1s of compute; I/O itself is far faster → low duty cycle
  EXPECT_LT(burst.duty_cycle, 0.5);
  EXPECT_EQ(burst.total_bytes, stats.total_bytes);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  // identical configs → identical byte tables (the whole stack is seeded)
  const auto a = core::run_case(tiny_case("det"));
  const auto b = core::run_case(tiny_case("det"));
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(Pipeline, ScaledCasesPreserveStructure) {
  // case factories produce valid, runnable configs at every scale knob
  for (double scale : {0.125, 0.25}) {
    const auto c4 = core::case4(scale);
    EXPECT_NO_THROW(c4.to_inputs().validate());
    const auto c27 = core::case27(scale);
    EXPECT_NO_THROW(c27.to_inputs().validate());
    const auto lg = core::large_case(scale);
    EXPECT_NO_THROW(lg.to_inputs().validate());
  }
  const auto campaign = core::table3_campaign(0.25);
  EXPECT_GE(campaign.size(), 30u);
  for (const auto& c : campaign) EXPECT_NO_THROW(c.to_inputs().validate());
}

/// Tests for the sharded campaign layer: executor determinism (--jobs 1 and
/// --jobs 8 produce byte-identical canonical CSV rows on both the serial and
/// event engines), cache-key completeness (every macsio::Params and
/// core::StudyOptions field moves the key — the property that makes cache
/// hits safe to serve), in-flight dedup of duplicate configurations, JSON
/// cache persistence across processes (cold run executes everything, warm
/// run resolves entirely from the cache, rows byte-identical), the predict
/// service's calibration (fit on a coarse rank grid, pin a held-out rank
/// count within a stated tolerance; analytic encoded-bytes prediction is
/// exact), and the per-variable codec error-bound sweep dimension.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/cell.hpp"
#include "campaign/executor.hpp"
#include "campaign/grid.hpp"
#include "campaign/predict.hpp"
#include "campaign/report.hpp"
#include "codec/codec.hpp"
#include "core/proxy_study.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace cg = amrio::campaign;
namespace cd = amrio::codec;
namespace co = amrio::core;
namespace ex = amrio::exec;
namespace mc = amrio::macsio;
namespace ut = amrio::util;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A small but representative grid: 2 interfaces x 3 staging modes x
/// 2 codecs x 2 rank counts = 24 cells on one engine.
cg::GridSpec small_grid(ex::EngineKind engine) {
  cg::GridSpec spec;
  spec.interfaces = {mc::Interface::kMiftmpl, mc::Interface::kRaw};
  spec.stagings = {
      {"direct", mc::FileMode::kMif, false, false},
      {"agg", mc::FileMode::kMif, true, false},
      {"bb", mc::FileMode::kMif, false, true},
  };
  spec.codecs = {
      {"identity", "identity", 0.0, ""},
      {"ebl@1e-3", "ebl", 1.0e-3, ""},
  };
  spec.engines = {engine};
  spec.rank_counts = {4, 8};
  return spec;
}

void expect_results_equal(const cg::CellResult& a, const cg::CellResult& b) {
  EXPECT_EQ(a.raw_bytes, b.raw_bytes);
  EXPECT_EQ(a.encoded_bytes, b.encoded_bytes);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.nfiles, b.nfiles);
  EXPECT_EQ(a.encode_seconds, b.encode_seconds);
  EXPECT_EQ(a.dump_seconds, b.dump_seconds);
  EXPECT_EQ(a.sustained_seconds, b.sustained_seconds);
  EXPECT_EQ(a.perceived_bandwidth, b.perceived_bandwidth);
  EXPECT_EQ(a.sustained_bandwidth, b.sustained_bandwidth);
  EXPECT_EQ(a.critical_stage, b.critical_stage);
  EXPECT_EQ(a.critical_frac, b.critical_frac);
  EXPECT_EQ(a.binding_resource, b.binding_resource);
  EXPECT_EQ(a.restart_seconds, b.restart_seconds);
  EXPECT_EQ(a.restart_decode_gate, b.restart_decode_gate);
}

}  // namespace

// ------------------------------------------------- executor determinism

// The determinism contract the artifact diffs lean on: the canonical CSV
// rows are byte-identical whether the campaign ran inline (--jobs 1) or
// across a stealing pool (--jobs 8), on either engine.
TEST(CampaignDeterminism, Jobs1VsJobs8ByteIdenticalRows) {
  for (const ex::EngineKind engine :
       {ex::EngineKind::kSerial, ex::EngineKind::kEvent}) {
    const std::vector<cg::CellConfig> cells =
        cg::make_grid(small_grid(engine));
    ASSERT_EQ(cells.size(), 24u);

    cg::CampaignExecutor seq({/*jobs=*/1, /*cache_path=*/""});
    const auto out1 = seq.run(cells);
    cg::CampaignExecutor par({/*jobs=*/8, /*cache_path=*/""});
    const auto out8 = par.run(cells);

    EXPECT_EQ(seq.stats().cells, par.stats().cells);
    EXPECT_EQ(seq.stats().executed, par.stats().executed);
    EXPECT_EQ(seq.stats().cache_hits, par.stats().cache_hits);
    // steals is the one scheduling-dependent stat; deliberately not compared.

    const auto rows1 = cg::csv_rows(cells, out1);
    const auto rows8 = cg::csv_rows(cells, out8);
    EXPECT_EQ(rows1, rows8) << "engine " << ex::engine_kind_name(engine);
    for (std::size_t i = 0; i < out1.size(); ++i)
      expect_results_equal(out1[i].result, out8[i].result);
  }
}

// Serial and event engines are stats-identical by construction; campaign
// cells differing only in the engine must carry identical result columns.
TEST(CampaignDeterminism, EnginesProduceIdenticalResults) {
  const auto serial_cells = cg::make_grid(small_grid(ex::EngineKind::kSerial));
  const auto event_cells = cg::make_grid(small_grid(ex::EngineKind::kEvent));
  ASSERT_EQ(serial_cells.size(), event_cells.size());
  cg::CampaignExecutor executor({/*jobs=*/4, /*cache_path=*/""});
  const auto serial_out = executor.run(serial_cells);
  const auto event_out = executor.run(event_cells);
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    SCOPED_TRACE(serial_cells[i].name);
    expect_results_equal(serial_out[i].result, event_out[i].result);
  }
}

// The CSV artifact is wall-clock free and reproducible to the byte.
TEST(CampaignDeterminism, CsvArtifactHasNoWallClockAndReproduces) {
  for (const std::string& col : cg::csv_columns())
    EXPECT_EQ(col.find("wall"), std::string::npos) << col;

  const auto cells = cg::make_grid(small_grid(ex::EngineKind::kSerial));
  cg::CampaignExecutor executor({/*jobs=*/2, /*cache_path=*/""});
  const auto outcomes = executor.run(cells);
  const std::string a = testing::TempDir() + "campaign_rows_a.csv";
  const std::string b = testing::TempDir() + "campaign_rows_b.csv";
  {
    ut::CsvWriter csv(a);
    cg::write_csv(csv, cells, outcomes);
  }
  {
    ut::CsvWriter csv(b);
    cg::write_csv(csv, cells, outcomes);
  }
  const std::string bytes = slurp(a);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, slurp(b));
}

// Duplicate configurations (same canonical key under different names) are
// claimed exactly once: one execution, the rest served through the in-flight
// table as cache hits, identical results everywhere — at any --jobs value.
TEST(CampaignDeterminism, DuplicateKeysExecuteOnce) {
  cg::CellConfig base;
  base.name = "dup/0";
  base.params.nprocs = 4;
  base.params.num_dumps = 2;
  base.params.part_size = 1 << 12;
  std::vector<cg::CellConfig> cells;
  for (int i = 0; i < 12; ++i) {
    cg::CellConfig c = base;
    c.name = "dup/" + std::to_string(i);
    cells.push_back(c);
  }

  for (const int jobs : {1, 8}) {
    cg::CampaignExecutor executor({jobs, ""});
    const auto outcomes = executor.run(cells);
    EXPECT_EQ(executor.stats().executed, 1u) << "jobs " << jobs;
    EXPECT_EQ(executor.stats().cache_hits, 11u) << "jobs " << jobs;
    int fresh = 0;
    for (const auto& o : outcomes) {
      if (!o.from_cache) ++fresh;
      EXPECT_EQ(o.key, outcomes[0].key);
      expect_results_equal(o.result, outcomes[0].result);
    }
    EXPECT_EQ(fresh, 1) << "jobs " << jobs;
  }
}

// --------------------------------------------- cache-key completeness

// The property that makes cache hits safe: every field of macsio::Params
// that survives study resolution, and every field of core::StudyOptions,
// moves the canonical key when mutated. A field missed here would be a
// stale cache hit the first time someone sweeps it.
TEST(CampaignCacheKey, EveryConfigurationFieldMovesTheKey) {
  using Mutator = std::function<void(cg::CellConfig&)>;
  const cg::CellConfig base;  // default-constructed configuration
  const std::string base_key = cg::canonical_key(base);

  const std::vector<std::pair<std::string, Mutator>> live = {
      // macsio::Params, declaration order
      {"interface",
       [](cg::CellConfig& c) { c.params.interface = mc::Interface::kRaw; }},
      {"file_mode",
       [](cg::CellConfig& c) { c.params.file_mode = mc::FileMode::kSif; }},
      {"mif_files", [](cg::CellConfig& c) { c.params.mif_files = 3; }},
      {"num_dumps", [](cg::CellConfig& c) { c.params.num_dumps = 7; }},
      {"part_size", [](cg::CellConfig& c) { c.params.part_size = 4096; }},
      {"avg_num_parts",
       [](cg::CellConfig& c) { c.params.avg_num_parts = 2.5; }},
      {"vars_per_part", [](cg::CellConfig& c) { c.params.vars_per_part = 4; }},
      {"compute_time", [](cg::CellConfig& c) { c.params.compute_time = 0.5; }},
      {"meta_size", [](cg::CellConfig& c) { c.params.meta_size = 512; }},
      {"dataset_growth",
       [](cg::CellConfig& c) { c.params.dataset_growth = 1.013; }},
      {"aggregators", [](cg::CellConfig& c) { c.params.aggregators = 2; }},
      {"agg_link_bandwidth",
       [](cg::CellConfig& c) { c.params.agg_link_bandwidth = 1.0e9; }},
      {"stage_to_bb", [](cg::CellConfig& c) { c.params.stage_to_bb = true; }},
      {"prefetch_streams",
       [](cg::CellConfig& c) { c.params.prefetch_streams = 4; }},
      {"nprocs", [](cg::CellConfig& c) { c.params.nprocs = 16; }},
      {"output_dir",
       [](cg::CellConfig& c) { c.params.output_dir = "elsewhere"; }},
      {"fill", [](cg::CellConfig& c) { c.params.fill = mc::FillMode::kReal; }},
      {"seed", [](cg::CellConfig& c) { c.params.seed = 99; }},
      // core::StudyOptions, declaration order
      {"study.engine",
       [](cg::CellConfig& c) { c.study.engine = ex::EngineKind::kEvent; }},
      {"study.codec", [](cg::CellConfig& c) { c.study.codec = "ebl"; }},
      {"study.codec_error_bound",
       [](cg::CellConfig& c) { c.study.codec_error_bound = 1.0e-5; }},
      {"study.codec_var_bounds",
       [](cg::CellConfig& c) { c.study.codec_var_bounds = "1e-2,1e-4"; }},
      {"study.codec_throughput",
       [](cg::CellConfig& c) { c.study.codec_throughput = 3.0e9; }},
      {"study.codec_decode_throughput",
       [](cg::CellConfig& c) { c.study.codec_decode_throughput = 6.0e9; }},
      {"study.restart", [](cg::CellConfig& c) { c.study.restart = true; }},
      {"study.restart_from_bb",
       [](cg::CellConfig& c) { c.study.restart_from_bb = true; }},
      {"study.trace_out",
       [](cg::CellConfig& c) { c.study.trace_out = "t.json"; }},
      {"study.metrics_out",
       [](cg::CellConfig& c) { c.study.metrics_out = "m.json"; }},
      {"study.explain_out",
       [](cg::CellConfig& c) { c.study.explain_out = "e.json"; }},
  };
  // 18 live Params fields + 11 StudyOptions fields. If a new field lands in
  // either struct, add its mutation here AND in canonical_key.
  EXPECT_EQ(live.size(), 29u);

  std::set<std::string> keys = {base_key};
  for (const auto& [name, mutate] : live) {
    cg::CellConfig cell = base;
    mutate(cell);
    const std::string key = cg::canonical_key(cell);
    EXPECT_NE(key, base_key) << "field '" << name
                             << "' does not move the cache key";
    keys.insert(key);
  }
  EXPECT_EQ(keys.size(), live.size() + 1)
      << "two field mutations collided onto one key";

  // The codec/restart fields of macsio::Params are *projected away* by
  // resolved_params (the study's copies win — run_cell never reads them), so
  // mutating them must NOT move the key: same execution, same cache slot.
  const std::vector<std::pair<std::string, Mutator>> shadowed = {
      {"params.codec", [](cg::CellConfig& c) { c.params.codec = "ebl"; }},
      {"params.codec_error_bound",
       [](cg::CellConfig& c) { c.params.codec_error_bound = 1.0e-7; }},
      {"params.codec_var_bounds",
       [](cg::CellConfig& c) { c.params.codec_var_bounds = "1e-3,1e-6"; }},
      {"params.codec_throughput",
       [](cg::CellConfig& c) { c.params.codec_throughput = 1.0e9; }},
      {"params.codec_decode_throughput",
       [](cg::CellConfig& c) { c.params.codec_decode_throughput = 2.0e9; }},
      {"params.restart", [](cg::CellConfig& c) { c.params.restart = true; }},
      {"params.restart_from_bb",
       [](cg::CellConfig& c) { c.params.restart_from_bb = true; }},
  };
  for (const auto& [name, mutate] : shadowed) {
    cg::CellConfig cell = base;
    mutate(cell);
    EXPECT_EQ(cg::canonical_key(cell), base_key)
        << "shadowed field '" << name << "' leaked into the cache key";
  }

  // Name is a display label, never part of the key.
  cg::CellConfig named = base;
  named.name = "some/other/label";
  EXPECT_EQ(cg::canonical_key(named), base_key);

#if defined(__x86_64__) && defined(__GLIBCXX__)
  // Struct-size tripwires: a new field changes these. When one fires, extend
  // canonical_key, the mutation lists above, bump kCacheSchemaVersion, and
  // update the expected sizes.
  EXPECT_EQ(sizeof(mc::Params), 240u)
      << "macsio::Params changed: update canonical_key + this test";
  EXPECT_EQ(sizeof(co::StudyOptions), 200u)
      << "core::StudyOptions changed: update canonical_key + this test";
#endif
}

TEST(CampaignCacheKey, SchemaVersionPrefixesTheKey) {
  const std::string key = cg::canonical_key(cg::CellConfig{});
  EXPECT_EQ(key.rfind("amrio-campaign-v" +
                          std::to_string(cg::kCacheSchemaVersion) + "|",
                      0),
            0u);
}

// ------------------------------------------------- cache persistence

TEST(CampaignCache, JsonRoundTripIsExact) {
  cg::ResultCache cache;
  cg::CellResult r;
  r.raw_bytes = 123456789012345ull;
  r.encoded_bytes = 987654321ull;
  r.total_bytes = 123456789054321ull;
  r.nfiles = 17;
  r.encode_seconds = 0.1 + 1.0 / 3.0;  // not representable in short decimal
  r.dump_seconds = 1.2345678901234567e-3;
  r.sustained_seconds = 9.87654321e2;
  r.perceived_bandwidth = 1.0e9 / 3.0;
  r.sustained_bandwidth = 2.0e9 / 7.0;
  r.critical_stage = "pfs_write";
  r.critical_frac = 0.625;
  r.binding_resource = "ost";
  r.restart_seconds = 4.0 / 7.0;
  r.restart_decode_gate = 1.0e-7 / 3.0;
  cg::CellResult r2 = r;
  r2.dump_seconds *= 2;
  cache.insert("amrio-campaign-v1|a", r);
  cache.insert("amrio-campaign-v1|b", r2);

  const std::string path = testing::TempDir() + "campaign_cache_rt.json";
  cache.save(path);

  cg::ResultCache loaded;
  EXPECT_EQ(loaded.load(path), 2u);
  EXPECT_EQ(loaded.size(), 2u);
  cg::CellResult got;
  ASSERT_TRUE(loaded.lookup("amrio-campaign-v1|a", &got));
  expect_results_equal(got, r);  // %.17g doubles round-trip exactly
  ASSERT_TRUE(loaded.lookup("amrio-campaign-v1|b", &got));
  expect_results_equal(got, r2);

  // Saving the loaded cache reproduces the file byte for byte.
  const std::string path2 = testing::TempDir() + "campaign_cache_rt2.json";
  loaded.save(path2);
  EXPECT_EQ(slurp(path), slurp(path2));
}

TEST(CampaignCache, MissingFileIsColdAndOtherSchemaIsDiscarded) {
  cg::ResultCache cache;
  EXPECT_EQ(cache.load(testing::TempDir() + "campaign_cache_nope.json"), 0u);
  EXPECT_EQ(cache.size(), 0u);

  const std::string stale = testing::TempDir() + "campaign_cache_stale.json";
  {
    std::ofstream out(stale);
    out << "{\"schema_version\": 0, \"entries\": [{\"key\": \"k\","
           " \"raw_bytes\": 1}]}";
  }
  EXPECT_EQ(cache.load(stale), 0u);
  EXPECT_EQ(cache.size(), 0u);

  const std::string bad = testing::TempDir() + "campaign_cache_bad.json";
  {
    std::ofstream out(bad);
    out << "{ not json";
  }
  EXPECT_THROW(cache.load(bad), std::runtime_error);
}

// The acceptance-criteria campaign: the full >= 500-cell Table III grid runs
// multi-threaded and cold, persists its cache, and a second executor (a
// fresh process in CI terms) resolves every cell from the cache without
// simulating — with byte-identical canonical rows.
TEST(CampaignCache, ColdThenWarmFullTable3Grid) {
  const std::vector<cg::CellConfig> cells = cg::make_grid(cg::table3_grid());
  ASSERT_GE(cells.size(), 500u);

  const std::string path = testing::TempDir() + "campaign_cache_t3.json";
  std::remove(path.c_str());

  cg::CampaignExecutor cold({/*jobs=*/8, path});
  const auto cold_out = cold.run(cells);
  EXPECT_EQ(cold.stats().cells, cells.size());
  EXPECT_EQ(cold.stats().executed, cells.size());
  EXPECT_EQ(cold.stats().cache_hits, 0u);

  cg::CampaignExecutor warm({/*jobs=*/8, path});
  const auto warm_out = warm.run(cells);
  EXPECT_EQ(warm.stats().executed, 0u) << "warm run re-simulated a cell";
  EXPECT_EQ(warm.stats().cache_hits, cells.size());
  for (const auto& o : warm_out) EXPECT_TRUE(o.from_cache);

  EXPECT_EQ(cg::csv_rows(cells, cold_out), cg::csv_rows(cells, warm_out));
}

// --------------------------------------------------- predict service

// Fit on a coarse rank grid, hold out a rank count the fit never saw, and
// pin the dump-time prediction within a stated tolerance on both engines.
// The analytic encoded-bytes prediction must match execution exactly.
TEST(CampaignPredict, HeldOutRankWithinTolerance) {
  constexpr double kTolerance = 0.35;  // stated: |pred - actual| / actual
  for (const ex::EngineKind engine :
       {ex::EngineKind::kSerial, ex::EngineKind::kEvent}) {
    SCOPED_TRACE(ex::engine_kind_name(engine));
    cg::GridSpec spec;
    spec.interfaces = {mc::Interface::kMiftmpl};
    spec.stagings = {{"direct", mc::FileMode::kMif, false, false}};
    spec.codecs = {{"identity", "identity", 0.0, ""}};
    spec.engines = {engine};
    spec.rank_counts = {8, 16, 32, 64};
    const auto train = cg::make_grid(spec);
    spec.rank_counts = {24};
    const auto holdout = cg::make_grid(spec);

    cg::CampaignExecutor executor({/*jobs=*/4, ""});
    const auto train_out = executor.run(train);
    const auto hold_out = executor.run(holdout);

    cg::PredictService predict;
    predict.fit(train, train_out);
    EXPECT_LT(predict.calibration_error(), 0.25);
    EXPECT_FALSE(predict.report().empty());

    const auto p = predict.predict(holdout[0]);
    EXPECT_TRUE(p.exact_stratum);
    EXPECT_EQ(p.encoded_bytes, hold_out[0].result.encoded_bytes);
    const double actual = hold_out[0].result.dump_seconds;
    ASSERT_GT(actual, 0.0);
    EXPECT_LT(std::abs(p.dump_seconds - actual) / actual, kTolerance)
        << "predicted " << p.dump_seconds << " actual " << actual;
  }
}

// Restart-enabled strata fit and predict the restart read-back time too.
TEST(CampaignPredict, RestartTimesArePredicted) {
  cg::GridSpec spec;
  spec.interfaces = {mc::Interface::kMiftmpl};
  spec.stagings = {{"direct", mc::FileMode::kMif, false, false}};
  spec.codecs = {{"ebl@1e-3", "ebl", 1.0e-3, ""}};
  spec.engines = {ex::EngineKind::kSerial};
  spec.rank_counts = {8, 16, 32};
  auto train = cg::make_grid(spec);
  for (auto& c : train) c.study.restart = true;

  cg::CampaignExecutor executor({/*jobs=*/2, ""});
  const auto train_out = executor.run(train);
  for (const auto& o : train_out) EXPECT_GT(o.result.restart_seconds, 0.0);

  cg::PredictService predict;
  predict.fit(train, train_out);
  cg::CellConfig query = train[0];
  query.name = "whatif/r12";
  query.params.nprocs = 12;
  const auto p = predict.predict(query);
  EXPECT_TRUE(p.exact_stratum);
  EXPECT_GT(p.dump_seconds, 0.0);
  EXPECT_GT(p.restart_seconds, 0.0);
}

// The byte model is analytic, not fitted: for unaggregated dump paths the
// predicted encoded bytes equal the executed cell's to the byte, across
// interfaces and codecs (incl. per-variable bounds).
TEST(CampaignPredict, AnalyticBytesMatchExecutionExactly) {
  cg::GridSpec spec;
  spec.interfaces = {mc::Interface::kMiftmpl, mc::Interface::kH5Lite,
                     mc::Interface::kRaw};
  spec.stagings = {
      {"direct", mc::FileMode::kMif, false, false},
      {"bb", mc::FileMode::kMif, false, true},
      {"sif", mc::FileMode::kSif, false, false},
  };
  spec.codecs = {
      {"identity", "identity", 0.0, ""},
      {"lossless", "lossless", 0.0, ""},
      {"ebl@1e-3", "ebl", 1.0e-3, ""},
      {"ebl@vars", "ebl", 1.0e-3, "1e-2,1e-5"},
  };
  spec.engines = {ex::EngineKind::kSerial};
  spec.rank_counts = {5, 8};
  const auto cells = cg::make_grid(spec);

  cg::CampaignExecutor executor({/*jobs=*/4, ""});
  const auto outcomes = executor.run(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].name);
    EXPECT_EQ(cg::PredictService::predicted_cell_bytes(cells[i]),
              outcomes[i].result.encoded_bytes);
  }
}

TEST(CampaignPredict, PredictBeforeFitThrows) {
  cg::PredictService predict;
  EXPECT_THROW(predict.predict(cg::CellConfig{}), amrio::ContractViolation);
}

// ------------------------------------------- per-variable error bounds

TEST(CampaignVarBounds, ParseFormatRoundTripAndValidation) {
  const std::vector<double> b = cd::parse_var_bounds("1e-2,1e-5");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 1e-2);
  EXPECT_DOUBLE_EQ(b[1], 1e-5);
  EXPECT_EQ(cd::parse_var_bounds(cd::format_var_bounds(b)), b);
  EXPECT_TRUE(cd::parse_var_bounds("").empty());

  EXPECT_THROW(cd::parse_var_bounds("abc"), std::invalid_argument);
  EXPECT_THROW(cd::parse_var_bounds("1e-3,2.0"), std::invalid_argument);

  // Per-variable bounds require the ebl codec. Params::validate() wraps
  // every rejection as ContractViolation (the std::invalid_argument shape
  // belongs to from_cli / codec::validate_spec).
  mc::Params p;
  p.codec = "lossless";
  p.codec_var_bounds = "1e-3,1e-5";
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p.codec = "ebl";
  EXPECT_NO_THROW(p.validate());
}

// Tightening one variable's bound grows the encoded stream: the sweep
// dimension actually sweeps.
TEST(CampaignVarBounds, TighterVariableBoundGrowsEncodedBytes) {
  cg::CellConfig loose;
  loose.name = "vb/loose";
  loose.params.nprocs = 4;
  loose.params.num_dumps = 2;
  loose.params.part_size = 1 << 14;
  loose.params.vars_per_part = 2;
  loose.study.codec = "ebl";
  loose.study.codec_var_bounds = "1e-2,1e-2";
  cg::CellConfig tight = loose;
  tight.name = "vb/tight";
  tight.study.codec_var_bounds = "1e-2,1e-9";

  const cg::CellResult rl = cg::run_cell(loose);
  const cg::CellResult rt = cg::run_cell(tight);
  EXPECT_EQ(rl.raw_bytes, rt.raw_bytes);
  EXPECT_GT(rt.encoded_bytes, rl.encoded_bytes)
      << "tighter second-variable bound should cost bytes";
  EXPECT_NE(cg::canonical_key(loose), cg::canonical_key(tight));
}

// ------------------------------------------------- study-sweep surface

TEST(CampaignSweep, StudySweepAlignsOutcomesWithVariants) {
  mc::Params base;
  base.nprocs = 4;
  base.num_dumps = 2;
  base.part_size = 1 << 12;
  std::vector<co::StudyOptions> variants(2);
  variants[1].codec = "ebl";
  variants[1].codec_error_bound = 1.0e-3;

  const co::StudySweepResult res = co::study_sweep(base, variants, {2, ""});
  ASSERT_EQ(res.outcomes.size(), 2u);
  EXPECT_EQ(res.stats.cells, 2u);
  EXPECT_EQ(res.stats.executed, 2u);
  EXPECT_GT(res.outcomes[0].result.encoded_bytes, 0u);
  // the ebl variant compresses; identity does not
  EXPECT_LT(res.outcomes[1].result.encoded_bytes,
            res.outcomes[0].result.encoded_bytes);
  EXPECT_EQ(res.outcomes[0].result.raw_bytes,
            res.outcomes[1].result.raw_bytes);
}

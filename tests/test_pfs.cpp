/// Tests for storage backends (memory/POSIX parity, counting mode, append)
/// and the discrete-event parallel filesystem simulator.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "pfs/timeline.hpp"
#include "util/assert.hpp"
#include "util/path.hpp"

namespace p = amrio::pfs;

namespace {
std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}
}  // namespace

// --------------------------------------------------------------- backends

TEST(MemoryBackend, WriteReadRoundTrip) {
  p::MemoryBackend be(true);
  {
    p::OutFile f(be, "dir/a.txt");
    f.write("hello ");
    f.write("world");
  }
  EXPECT_TRUE(be.exists("dir/a.txt"));
  EXPECT_EQ(be.size("dir/a.txt"), 11u);
  const auto bytes = be.read("dir/a.txt");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
            "hello world");
}

TEST(MemoryBackend, CountingModeTracksSizesOnly) {
  p::MemoryBackend be(false);
  {
    p::OutFile f(be, "big.bin");
    std::vector<std::byte> chunk(1 << 20);
    for (int i = 0; i < 10; ++i) f.write(chunk);
  }
  EXPECT_EQ(be.size("big.bin"), 10u << 20);
  EXPECT_THROW(be.read("big.bin"), std::runtime_error);
}

TEST(MemoryBackend, CreateTruncates) {
  p::MemoryBackend be(true);
  { p::OutFile f(be, "x"); f.write("aaaa"); }
  { p::OutFile f(be, "x"); f.write("bb"); }
  EXPECT_EQ(be.size("x"), 2u);
}

TEST(MemoryBackend, AppendExtends) {
  p::MemoryBackend be(true);
  { p::OutFile f(be, "x"); f.write("aaaa"); }
  { p::OutFile f(be, "x", p::OpenMode::kAppend); f.write("bb"); }
  EXPECT_EQ(be.size("x"), 6u);
  const auto bytes = be.read("x");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
            "aaaabb");
}

TEST(MemoryBackend, ListFiltersByPrefixSorted) {
  p::MemoryBackend be(false);
  for (const char* name : {"plt00000/Header", "plt00000/Level_0/Cell_H",
                           "plt00020/Header", "other/file"}) {
    p::OutFile f(be, name);
    f.write("x");
  }
  const auto all = be.list("");
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(be.list("plt00000").size(), 2u);
  EXPECT_EQ(be.list("plt").size(), 3u);
}

TEST(MemoryBackend, BadHandleThrows) {
  p::MemoryBackend be(true);
  EXPECT_THROW(be.write(999, as_bytes("x")), std::runtime_error);
  EXPECT_THROW(be.close(999), std::runtime_error);
  EXPECT_THROW(be.size("missing"), std::runtime_error);
}

TEST(MemoryBackend, ConcurrentWritersSafe) {
  p::MemoryBackend be(false);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&be, t] {
      for (int i = 0; i < 50; ++i) {
        p::OutFile f(be, "t" + std::to_string(t) + "_" + std::to_string(i));
        f.write("data");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(be.file_count(), 400u);
  EXPECT_EQ(be.total_bytes(), 1600u);
}

TEST(MemoryBackend, ReadRangeSlicesExactly) {
  p::MemoryBackend be(true);
  { p::OutFile f(be, "dir/a.txt"); f.write("0123456789"); }
  const auto slice = be.read_range("dir/a.txt", 2, 5);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(slice.data()),
                        slice.size()),
            "23456");
  EXPECT_TRUE(be.read_range("dir/a.txt", 10, 0).empty());
  EXPECT_THROW(be.read_range("dir/a.txt", 6, 5), std::runtime_error);
  EXPECT_THROW(be.read_range("dir/missing", 0, 1), std::runtime_error);
  p::MemoryBackend counting(false);
  { p::OutFile f(counting, "dir/a.txt"); f.write("0123456789"); }
  EXPECT_THROW(counting.read_range("dir/a.txt", 0, 1), std::runtime_error);
}

TEST(PosixBackend, ReadRangeMatchesBaseImplementation) {
  const std::string root = amrio::util::make_temp_dir("amrio_pfs_range");
  p::PosixBackend posix(root);
  { p::OutFile f(posix, "a/data.bin"); f.write("abcdefghij"); }
  // the overridden ranged read agrees with the read-everything-and-slice
  // default every backend inherits
  const auto ranged = posix.read_range("a/data.bin", 3, 4);
  const auto whole = posix.read("a/data.bin");
  EXPECT_EQ(ranged, std::vector<std::byte>(whole.begin() + 3,
                                           whole.begin() + 7));
  EXPECT_THROW(posix.read_range("a/data.bin", 8, 5), std::runtime_error);
  amrio::util::remove_all(root);
}

TEST(PosixBackend, ParityWithMemoryBackend) {
  const std::string root = amrio::util::make_temp_dir("amrio_pfs_test");
  p::PosixBackend posix(root);
  p::MemoryBackend mem(true);
  auto scenario = [](p::StorageBackend& be) {
    { p::OutFile f(be, "a/b/data.bin"); f.write("0123456789"); }
    { p::OutFile f(be, "a/meta"); f.write("m"); }
    { p::OutFile f(be, "a/meta", p::OpenMode::kAppend); f.write("n"); }
  };
  scenario(posix);
  scenario(mem);
  EXPECT_EQ(posix.list(""), mem.list(""));
  for (const auto& path : mem.list("")) {
    EXPECT_EQ(posix.size(path), mem.size(path)) << path;
    EXPECT_EQ(posix.read(path), mem.read(path)) << path;
  }
  amrio::util::remove_all(root);
}

// ------------------------------------------------------------------ simfs

TEST(SimFs, SingleWriteTakesBytesOverBandwidth) {
  p::SimFsConfig cfg;
  cfg.n_ost = 4;
  cfg.ost_bandwidth = 1e9;
  cfg.client_bandwidth = 1e9;
  cfg.mds_latency = 0.0;
  p::SimFs fs(cfg);
  const auto res = fs.run({p::IoRequest{0, 0.0, "f", 1'000'000'000}});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_NEAR(res[0].end - res[0].open_end, 1.0, 1e-9);
}

TEST(SimFs, MdsSerializesCreates) {
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.01;
  p::SimFs fs(cfg);
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back({i, 0.0, "f" + std::to_string(i), 0});
  const auto res = fs.run(reqs);
  // zero-byte creates: total makespan = 10 * mds_latency, strictly serialized
  double max_end = 0.0;
  for (const auto& r : res) max_end = std::max(max_end, r.end);
  EXPECT_NEAR(max_end, 0.1, 1e-9);
}

TEST(SimFs, ContentionDoublesTimeOnSharedOst) {
  p::SimFsConfig cfg;
  cfg.n_ost = 1;  // force both files onto the same OST
  cfg.ost_bandwidth = 1e9;
  cfg.client_bandwidth = 1e9;
  cfg.mds_latency = 0.0;
  p::SimFs fs(cfg);
  const std::uint64_t bytes = 500'000'000;
  const auto res = fs.run({{0, 0.0, "a", bytes}, {1, 0.0, "b", bytes}});
  double makespan = 0.0;
  for (const auto& r : res) makespan = std::max(makespan, r.end);
  EXPECT_NEAR(makespan, 1.0, 1e-6);  // 1 GB through 1 GB/s OST
}

TEST(SimFs, DisjointOstsRunInParallel) {
  p::SimFsConfig cfg;
  cfg.n_ost = 64;  // plenty of OSTs: hash collisions unlikely for two files
  cfg.ost_bandwidth = 1e9;
  cfg.client_bandwidth = 1e9;
  cfg.mds_latency = 0.0;
  p::SimFs fs(cfg);
  // find two files on different OSTs
  std::string f1 = "file_a";
  std::string f2;
  for (char c = 'a'; c <= 'z'; ++c) {
    f2 = std::string("file_") + c + "x";
    if (fs.ost_of(f2) != fs.ost_of(f1)) break;
  }
  ASSERT_NE(fs.ost_of(f1), fs.ost_of(f2));
  const std::uint64_t bytes = 500'000'000;
  const auto res = fs.run({{0, 0.0, f1, bytes}, {1, 0.0, f2, bytes}});
  double makespan = 0.0;
  for (const auto& r : res) makespan = std::max(makespan, r.end);
  EXPECT_NEAR(makespan, 0.5, 1e-6);
}

TEST(SimFs, ClientBandwidthCaps) {
  p::SimFsConfig cfg;
  cfg.n_ost = 8;
  cfg.ost_bandwidth = 10e9;
  cfg.client_bandwidth = 1e9;  // NIC is the bottleneck
  cfg.mds_latency = 0.0;
  p::SimFs fs(cfg);
  const auto res = fs.run({{0, 0.0, "f", 2'000'000'000}});
  EXPECT_NEAR(res[0].end, 2.0, 1e-6);
}

TEST(SimFs, DeterministicForSeed) {
  p::SimFsConfig cfg;
  cfg.variability_sigma = 0.3;
  cfg.seed = 42;
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 20; ++i)
    reqs.push_back({i % 4, 0.1 * i, "f" + std::to_string(i), 1'000'000});
  const auto a = p::SimFs(cfg).run(reqs);
  const auto b = p::SimFs(cfg).run(reqs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
  cfg.seed = 43;
  const auto c = p::SimFs(cfg).run(reqs);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].end != c[i].end) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(SimFs, VariabilityPreservesMeanRoughly) {
  p::SimFsConfig base;
  base.n_ost = 16;
  base.mds_latency = 0.0;
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 200; ++i)
    reqs.push_back({i % 8, 0.0, "f" + std::to_string(i), 4'000'000});
  const auto clean = p::SimFs(base).run(reqs);
  base.variability_sigma = 0.2;
  const auto noisy = p::SimFs(base).run(reqs);
  double clean_total = 0.0;
  double noisy_total = 0.0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    clean_total += clean[i].duration();
    noisy_total += noisy[i].duration();
  }
  EXPECT_NEAR(noisy_total / clean_total, 1.0, 0.15);
}

TEST(SimFs, SubmitTimeTiesServedInClientFileOrder) {
  // The documented guarantee staged drain replays rely on: requests that tie
  // on submit_time are serviced in (client, file) order, independent of the
  // order they appear in the request list.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.01;
  std::vector<p::IoRequest> forward;
  for (int c = 0; c < 3; ++c)
    for (const char* f : {"alpha", "beta"})
      forward.push_back({c, 1.0, std::string("dir/") + f, 1000});
  std::vector<p::IoRequest> reversed(forward.rbegin(), forward.rend());

  const auto res_fwd = p::SimFs(cfg).run(forward);
  const auto res_rev = p::SimFs(cfg).run(reversed);

  // same (client, file) pair gets the same service times either way
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const std::size_t j = forward.size() - 1 - i;  // its position in reversed
    EXPECT_DOUBLE_EQ(res_fwd[i].open_start, res_rev[j].open_start);
    EXPECT_DOUBLE_EQ(res_fwd[i].end, res_rev[j].end);
  }
  // and the MDS order itself is (client, file): client 0 "alpha" first
  for (std::size_t i = 1; i < forward.size(); ++i)
    EXPECT_GT(res_fwd[i].open_start, res_fwd[i - 1].open_start);
}

TEST(SimFs, ReadTiesOnASharedExtentSerializeInClientFileOrder) {
  // Two clients reading the same OST extent (a restart of a shared file)
  // must serialize per the documented (client, file) tie order, independent
  // of request-list order — the guarantee that makes engine-generated
  // restart request streams replay identically (the engine-parity side is
  // pinned by tests/test_restart.cpp over SerialEngine and SpmdEngine).
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.01;
  std::vector<p::IoRequest> forward;
  for (int c = 0; c < 2; ++c)
    forward.push_back(
        {c, 1.0, "data/shared_restart", 4'000'000, p::kTierPfs, p::kOpRead});
  std::vector<p::IoRequest> reversed(forward.rbegin(), forward.rend());

  const auto res_fwd = p::SimFs(cfg).run(forward);
  const auto res_rev = p::SimFs(cfg).run(reversed);

  // client 0 opens first; both reads hit the same stripe set, so the later
  // client queues behind the earlier one's chunks on the OST FIFO
  EXPECT_LT(res_fwd[0].open_start, res_fwd[1].open_start);
  EXPECT_LT(res_fwd[0].end, res_fwd[1].end);
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const std::size_t j = forward.size() - 1 - i;
    EXPECT_DOUBLE_EQ(res_fwd[i].open_start, res_rev[j].open_start);
    EXPECT_DOUBLE_EQ(res_fwd[i].end, res_rev[j].end);
  }
  for (const auto& res : res_fwd) {
    EXPECT_EQ(res.op, p::kOpRead);
    EXPECT_EQ(res.tier, p::kTierPfs);
    EXPECT_DOUBLE_EQ(res.end, res.pfs_end);  // direct reads: one timeline
  }
}

TEST(SimFs, ReadsAndWritesShareTheOstFifos) {
  // A read of a file contends with a concurrent write to the same stripe
  // set: the second request's chunks queue behind the first's.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  std::vector<p::IoRequest> alone = {
      {0, 0.0, "data/ckpt", 8'000'000, p::kTierPfs, p::kOpRead}};
  const auto solo = p::SimFs(cfg).run(alone);
  std::vector<p::IoRequest> contended = {
      {0, 0.0, "data/ckpt", 8'000'000, p::kTierPfs, p::kOpRead},
      {1, 0.0, "data/ckpt", 8'000'000, p::kTierPfs, p::kOpWrite}};
  const auto both = p::SimFs(cfg).run(contended);
  EXPECT_GT(both[0].end, solo[0].end);  // the write stole OST service time
}

TEST(SimFs, PrefetchGatesTheBbReadAndBbOffCollapsesToDirect) {
  // BB on: the node-local read of a prefetched extent starts only after the
  // prefetch lands, then runs at read_bandwidth off the node.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.ranks_per_node = 8;
  cfg.bb.drain_bandwidth = 0.5e9;
  cfg.bb.read_bandwidth = 10.0e9;
  const std::uint64_t bytes = 1'000'000'000;
  std::vector<p::IoRequest> reqs = {
      {0, 0.0, "data/ckpt", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {0, 0.0, "data/ckpt", bytes, p::kTierBurstBuffer, p::kOpRead}};
  const auto res = p::SimFs(cfg).run(reqs);
  // prefetch: OST→node at min(drain_bw, ost_bw) = 0.5e9 → 2s; the read
  // waits for it, then takes bytes/read_bw = 0.1s node-locally
  EXPECT_NEAR(res[0].end, 2.0, 1e-9);
  EXPECT_NEAR(res[1].end, 2.1, 1e-9);
  EXPECT_EQ(res[1].tier, p::kTierBurstBuffer);

  // BB off: the same tagged workload collapses onto direct PFS reads —
  // exactly like the write path's tier-tag contract
  p::SimFsConfig off = cfg;
  off.bb.enabled = false;
  const auto collapsed = p::SimFs(off).run(reqs);
  std::vector<p::IoRequest> direct = {
      {0, 0.0, "data/ckpt", bytes, p::kTierPfs, p::kOpRead},
      {0, 0.0, "data/ckpt", bytes, p::kTierPfs, p::kOpRead}};
  const auto reference = p::SimFs(off).run(direct);
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    EXPECT_EQ(collapsed[i].tier, p::kTierPfs);
    EXPECT_DOUBLE_EQ(collapsed[i].end, reference[i].end);
  }
}

TEST(SimFs, SharedFileReadsConsumeTheStagedPoolInFifoOrder) {
  // A non-aggregated prefetched restart of a shared dump file: each rank
  // prefetches its own slice and reads it back. With one prefetch stream
  // the two prefetches serialize (ends 2s and 4s); a read only starts once
  // the key's staged pool holds its size, and reads consume FIFO — so the
  // first read pairs with the first slice landing (2s) and the second must
  // wait for the second (4s), never getting bytes before they are resident.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.ranks_per_node = 8;
  cfg.bb.drain_bandwidth = 0.5e9;
  cfg.bb.prefetch_concurrency = 1;
  cfg.bb.read_bandwidth = 10.0e9;
  const std::uint64_t bytes = 1'000'000'000;
  std::vector<p::IoRequest> reqs = {
      {0, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {0, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpRead},
      {1, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {1, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpRead}};
  const auto res = p::SimFs(cfg).run(reqs);
  EXPECT_NEAR(res[0].end, 2.0, 1e-6);  // slices serialize on the one stream
  EXPECT_NEAR(res[2].end, 4.0, 1e-6);
  EXPECT_NEAR(res[1].end, 2.1, 1e-6);  // first read: first slice + 0.1s
  EXPECT_NEAR(res[3].end, 4.1, 1e-6);  // second read: waits for its slice
}

TEST(SimFs, ReadsInterleaveWithPrefetchWavesUnderTightCapacity) {
  // The staging area holds 1 GB but the restart image is 1.2 GB: the second
  // prefetch stalls on capacity until the first read evicts its slice —
  // reads interleave with prefetch waves instead of deadlocking.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.ranks_per_node = 8;
  cfg.bb.capacity = 1'000'000'000;
  const std::uint64_t bytes = 600'000'000;
  std::vector<p::IoRequest> reqs = {
      {0, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {0, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpRead},
      {1, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {1, 0.0, "data/shared", bytes, p::kTierBurstBuffer, p::kOpRead}};
  const auto res = p::SimFs(cfg).run(reqs);
  for (const auto& r : res) {
    EXPECT_GT(r.end, 0.0);  // everything was actually served
    EXPECT_GT(r.bandwidth(), 0.0);
  }
  // the second prefetch could only start after the first read freed space
  EXPECT_GE(res[2].pfs_end, res[1].end);
  EXPECT_GE(res[3].end, res[2].end);  // and the second read after it landed

  // prefetch reservations over capacity with nothing to evict between
  // waves can never drain — that must fail loudly, not return zeros
  std::vector<p::IoRequest> stuck = {
      {0, 0.0, "data/e0", bytes, p::kTierBurstBuffer, p::kOpPrefetch},
      {1, 0.0, "data/e1", bytes, p::kTierBurstBuffer, p::kOpPrefetch}};
  EXPECT_THROW(p::SimFs(cfg).run(stuck), amrio::ContractViolation);
}

TEST(SimFs, UnmatchedBbReadNeverStealsReservedCapacity) {
  // A BB-tier read with no prefetch in the batch (plotfile-style restart
  // reads) must not evict other requests' staged bytes: if it did, the
  // owning drain's occupancy release would underflow and permanently fill
  // the node, silently stalling every later absorb.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.ranks_per_node = 8;
  cfg.bb.capacity = 1'000'000'000;
  std::vector<p::IoRequest> reqs = {
      {0, 0.0, "data/w0", 600'000'000, p::kTierBurstBuffer, p::kOpWrite},
      {1, 0.0, "data/never_prefetched", 600'000'000, p::kTierBurstBuffer,
       p::kOpRead},
      {2, 5.0, "data/w1", 500'000'000, p::kTierBurstBuffer, p::kOpWrite}};
  const auto res = p::SimFs(cfg).run(reqs);
  // the late write absorbs normally once the first drain freed its space
  EXPECT_GT(res[2].end, res[2].open_end);  // it actually transferred
  EXPECT_NEAR(res[2].end, 5.0 + 500'000'000 / cfg.bb.write_bandwidth, 1e-6);
  EXPECT_GE(res[2].pfs_end, res[2].end);  // and drained
  // the unmatched read itself is served node-locally
  EXPECT_NEAR(res[1].end, 600'000'000 / cfg.bb.read_bandwidth, 1e-6);
}

TEST(SimFs, PrefetchStreamsAreBoundedPerNode) {
  // 3 extents, 1 prefetch stream: they serialize on the node's stream pool
  // even though the OSTs could serve them concurrently.
  p::SimFsConfig cfg;
  cfg.mds_latency = 0.0;
  cfg.n_ost = 8;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.ranks_per_node = 8;
  cfg.bb.drain_bandwidth = 1.0e9;
  cfg.bb.prefetch_concurrency = 1;
  // pick extent names hashing to three distinct OSTs, so the wide sweep
  // below is genuinely OST-parallel
  p::SimFs probe(cfg);
  std::vector<std::string> names;
  std::vector<int> osts;
  for (int i = 0; names.size() < 3; ++i) {
    const std::string candidate = "data/ext" + std::to_string(i);
    const int ost = probe.ost_of(candidate);
    if (std::find(osts.begin(), osts.end(), ost) == osts.end()) {
      names.push_back(candidate);
      osts.push_back(ost);
    }
  }
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 3; ++i)
    reqs.push_back({i, 0.0, names[static_cast<std::size_t>(i)], 1'000'000'000,
                    p::kTierBurstBuffer, p::kOpPrefetch});
  const auto res = p::SimFs(cfg).run(reqs);
  double last = 0.0;
  for (const auto& r : res) last = std::max(last, r.end);
  EXPECT_NEAR(last, 3.0, 1e-6);  // 1s each, strictly serialized

  cfg.bb.prefetch_concurrency = 3;
  const auto wide = p::SimFs(cfg).run(reqs);
  double wide_last = 0.0;
  for (const auto& r : wide) wide_last = std::max(wide_last, r.end);
  EXPECT_LT(wide_last, 1.5);  // distinct files hash over 8 OSTs: parallel
}

TEST(SimFs, InvalidConfigRejected) {
  p::SimFsConfig cfg;
  cfg.n_ost = 0;
  EXPECT_THROW(p::SimFs{cfg}, amrio::ContractViolation);
  cfg = {};
  cfg.stripe_count = 99;  // > n_ost
  EXPECT_THROW(p::SimFs{cfg}, amrio::ContractViolation);
}

// --------------------------------------------------------------- timeline

TEST(Timeline, BandwidthBinsConserveBytes) {
  std::vector<p::IoResult> results;
  p::IoResult r;
  r.open_start = 0.0;
  r.open_end = 0.0;
  r.end = 1.0;
  r.bytes = 1000;
  results.push_back(r);
  r.open_start = 2.0;
  r.open_end = 2.0;
  r.end = 3.0;
  r.bytes = 3000;
  results.push_back(r);
  const auto bins = p::bandwidth_timeline(results, 30);
  double total = 0.0;
  for (const auto& b : bins) total += b.bytes;
  EXPECT_NEAR(total, 4000.0, 1.0);
}

TEST(Timeline, BurstStatsDutyCycle) {
  std::vector<p::IoResult> results;
  p::IoResult r;
  r.open_start = 0.0;
  r.open_end = 0.0;
  r.end = 1.0;
  r.bytes = 100;
  results.push_back(r);
  r.open_start = 9.0;
  r.open_end = 9.0;
  r.end = 10.0;
  results.push_back(r);
  const auto st = p::burst_stats(results);
  EXPECT_DOUBLE_EQ(st.makespan, 10.0);
  EXPECT_DOUBLE_EQ(st.busy_time, 2.0);
  EXPECT_NEAR(st.duty_cycle, 0.2, 1e-12);
}

TEST(Timeline, OverlappingBurstsFromTwoTiersNotDoubleCounted) {
  // A BB-tier absorb burst and a PFS-tier direct burst overlap in time;
  // duty_cycle must count the overlapped interval once (union, not sum).
  std::vector<p::IoResult> results;
  p::IoResult bb;
  bb.open_start = 0.0;
  bb.open_end = 0.0;
  bb.end = 3.0;  // perceived absorb window
  bb.pfs_end = 6.0;
  bb.tier = p::kTierBurstBuffer;
  bb.bytes = 100;
  results.push_back(bb);
  p::IoResult direct;
  direct.open_start = 2.0;  // overlaps [2,3) with the absorb burst
  direct.open_end = 2.0;
  direct.end = 5.0;
  direct.pfs_end = 5.0;
  direct.tier = p::kTierPfs;
  direct.bytes = 100;
  results.push_back(direct);

  const auto st = p::burst_stats(results);
  EXPECT_DOUBLE_EQ(st.makespan, 5.0);
  EXPECT_DOUBLE_EQ(st.busy_time, 5.0);  // union of [0,3) and [2,5), not 6
  EXPECT_DOUBLE_EQ(st.duty_cycle, 1.0);

  // fully disjoint two-tier bursts accumulate, with an idle gap between
  results[1].open_start = 4.0;
  results[1].open_end = 4.0;
  results[1].end = 6.0;
  const auto gap = p::burst_stats(results);
  EXPECT_DOUBLE_EQ(gap.busy_time, 5.0);  // [0,3) + [4,6)
  EXPECT_NEAR(gap.duty_cycle, 5.0 / 6.0, 1e-12);
}

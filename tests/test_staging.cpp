/// Tests for the staging subsystem: two-phase aggregation topology and CLI
/// validation, the group gatherv primitive, aggregated-MIF byte conservation
/// and engine parity for both the MACSio and plotfile drivers, the
/// burst-buffer byte decorator, and the two-tier SimFs (absorb + async
/// drain, capacity stalls, drain concurrency).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "codec/codec.hpp"
#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/driver.hpp"
#include "macsio/interfaces.hpp"
#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/writer.hpp"
#include "staging/aggregator.hpp"
#include "staging/drain.hpp"
#include "staging/staging_backend.hpp"
#include "util/assert.hpp"

namespace ex = amrio::exec;
namespace mc = amrio::macsio;
namespace m = amrio::mesh;
namespace p = amrio::pfs;
namespace pf = amrio::plotfile;
namespace st = amrio::staging;

// ------------------------------------------------------------ AggTopology

TEST(AggTopology, EvenPartition) {
  const auto topo = st::AggTopology::make(64, 8);
  EXPECT_EQ(topo.ngroups(), 8);
  for (int g = 0; g < 8; ++g) {
    EXPECT_EQ(topo.group_size(g), 8);
    EXPECT_EQ(topo.aggregator_of_group(g), g * 8);
  }
  for (int r = 0; r < 64; ++r) {
    EXPECT_EQ(topo.group_of(r), r / 8);
    EXPECT_EQ(topo.is_aggregator(r), r % 8 == 0);
  }
}

TEST(AggTopology, RemainderRoundRobinsDeterministically) {
  // 10 ranks over 4 groups: sizes 3,3,2,2 — remainder on the leading groups.
  const auto topo = st::AggTopology::make(10, 4);
  EXPECT_EQ(topo.group_size(0), 3);
  EXPECT_EQ(topo.group_size(1), 3);
  EXPECT_EQ(topo.group_size(2), 2);
  EXPECT_EQ(topo.group_size(3), 2);
  // contiguous cover, every rank in exactly one group, aggregator = first
  int total = 0;
  int prev_last = -1;
  for (int g = 0; g < 4; ++g) {
    const auto members = topo.members_of(g);
    total += static_cast<int>(members.size());
    EXPECT_EQ(members.front(), prev_last + 1);
    EXPECT_EQ(topo.aggregator_of_group(g), members.front());
    for (int r : members) EXPECT_EQ(topo.group_of(r), g);
    prev_last = members.back();
  }
  EXPECT_EQ(total, 10);
  // determinism: equal inputs, equal partition
  const auto again = st::AggTopology::make(10, 4);
  for (int g = 0; g < 4; ++g)
    EXPECT_EQ(again.members_of(g), topo.members_of(g));
}

TEST(AggTopology, RejectsBadCounts) {
  EXPECT_THROW(st::AggTopology::make(8, 0), std::invalid_argument);
  EXPECT_THROW(st::AggTopology::make(8, -2), std::invalid_argument);
  EXPECT_THROW(st::AggTopology::make(8, 9), std::invalid_argument);
}

TEST(ShipCost, BytesOverLinkPlusLatency) {
  st::AggregationConfig cfg;
  cfg.link_bandwidth = 1e9;
  cfg.link_latency = 1e-3;
  EXPECT_DOUBLE_EQ(st::ship_cost(cfg, 1'000'000'000, 2), 1.0 + 2e-3);
  EXPECT_DOUBLE_EQ(st::ship_cost(cfg, 0, 0), 0.0);
}

// --------------------------------------------------------- params knobs

TEST(ParamsStaging, AggregatorsCliParsesAndRoundTrips) {
  const auto p = mc::Params::from_cli(
      {"--nprocs", "64", "--aggregators", "8", "--staging", "bb"});
  EXPECT_EQ(p.aggregators, 8);
  EXPECT_TRUE(p.stage_to_bb);
  const auto back = mc::Params::from_cli(p.to_cli());
  EXPECT_EQ(back.aggregators, 8);
  EXPECT_TRUE(back.stage_to_bb);
  EXPECT_DOUBLE_EQ(back.agg_link_bandwidth, p.agg_link_bandwidth);
}

TEST(ParamsStaging, RejectsNonPositiveAggregators) {
  try {
    mc::Params::from_cli({"--nprocs", "8", "--aggregators", "0"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("positive aggregator count"),
              std::string::npos);
  }
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--aggregators", "-4"}),
               std::invalid_argument);
}

TEST(ParamsStaging, ValidatesAggregatorCombinations) {
  mc::Params p;
  p.nprocs = 8;
  p.aggregators = 9;  // > nprocs
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p.aggregators = 4;
  p.file_mode = mc::FileMode::kSif;
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p.file_mode = mc::FileMode::kMif;
  p.mif_files = 2;  // grouping and aggregation are mutually exclusive
  EXPECT_THROW(p.validate(), amrio::ContractViolation);
  p.mif_files = 0;
  EXPECT_NO_THROW(p.validate());
  EXPECT_THROW(mc::Params::from_cli({"--nprocs", "8", "--staging", "nvme"}),
               std::invalid_argument);
}

// -------------------------------------------------------- gatherv_group

class GathervGroup : public ::testing::TestWithParam<ex::EngineKind> {};

TEST_P(GathervGroup, GathersMemberPayloadsInRankOrder) {
  const int n = 12;
  const auto engine = ex::make_engine(GetParam(), n);
  engine->run([&](ex::RankCtx& ctx) {
    const auto topo = st::AggTopology::make(n, 3);
    const int group = topo.group_of(ctx.rank());
    const int root = topo.aggregator_of_group(group);
    // rank r ships r+1 bytes of value r
    std::vector<std::byte> mine(static_cast<std::size_t>(ctx.rank() + 1),
                                static_cast<std::byte>(ctx.rank()));
    const auto members = topo.members_of(group);
    const auto got = ex::gatherv_group(ctx, mine, members, root, 91);
    if (ctx.rank() == root) {
      ASSERT_EQ(got.size(), members.size());
      for (std::size_t i = 0; i < members.size(); ++i) {
        EXPECT_EQ(got[i].size(), static_cast<std::size_t>(members[i] + 1));
        for (std::byte b : got[i])
          EXPECT_EQ(b, static_cast<std::byte>(members[i]));
      }
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, GathervGroup,
                         ::testing::Values(ex::EngineKind::kSerial,
                                           ex::EngineKind::kSpmd));

// ----------------------------------------- aggregated MACSio dump loop

namespace {

mc::Params agg_params(int nprocs, int aggregators) {
  mc::Params params;
  params.nprocs = nprocs;
  params.aggregators = aggregators;
  params.num_dumps = 3;
  params.part_size = 1500;
  params.dataset_growth = 1.05;
  params.meta_size = 16;
  params.avg_num_parts = 1.5;
  return params;
}

}  // namespace

TEST(AggregatedMif, ByteConservingAt64Ranks8Aggregators) {
  const auto params = agg_params(64, 8);
  p::MemoryBackend be(false);
  ex::SerialEngine engine(params.nprocs);
  const auto stats = mc::run_macsio(engine, params, be);

  const auto iface = mc::make_interface(params.interface);
  for (int dump = 0; dump < params.num_dumps; ++dump) {
    const mc::PartSpec spec = mc::make_part_spec(
        params.part_bytes_at_dump(dump), params.vars_per_part);
    // sum of subfiles == sum of the unaggregated task documents, exactly
    std::uint64_t expected = 0;
    for (int r = 0; r < params.nprocs; ++r) {
      const std::uint64_t doc = iface->task_doc_bytes(
          spec, r, dump, params.parts_of_rank(r), params.meta_size);
      EXPECT_EQ(stats.task_bytes[static_cast<std::size_t>(dump)]
                                [static_cast<std::size_t>(r)],
                doc);
      expected += doc;
    }
    std::uint64_t subfile_total = 0;
    for (int g = 0; g < params.aggregators; ++g)
      subfile_total += be.size(mc::aggregated_file_path(params, g, dump));
    EXPECT_EQ(subfile_total, expected);
    // ... plus an exactly computable index
    EXPECT_EQ(be.size(mc::aggregated_index_path(params, dump)),
              mc::aggregated_index_bytes(params));
  }
  // file count: aggregators subfiles + root + index per dump, not nprocs
  EXPECT_EQ(stats.nfiles,
            static_cast<std::uint64_t>((params.aggregators + 2) *
                                       params.num_dumps));
  EXPECT_EQ(be.file_count(), stats.nfiles);
}

TEST(AggregatedMif, ByteIdenticalAcrossEngines) {
  const auto params = agg_params(64, 8);
  p::MemoryBackend serial_be(true);
  ex::SerialEngine serial(params.nprocs);
  const auto ref = mc::run_macsio(serial, params, serial_be);

  p::MemoryBackend spmd_be(true);
  ex::SpmdEngine spmd(params.nprocs);
  const auto got = mc::run_macsio(spmd, params, spmd_be);

  EXPECT_EQ(got.total_bytes, ref.total_bytes);
  EXPECT_EQ(got.nfiles, ref.nfiles);
  EXPECT_EQ(got.bytes_per_dump, ref.bytes_per_dump);
  EXPECT_EQ(got.task_bytes, ref.task_bytes);
  const auto paths = serial_be.list("");
  ASSERT_EQ(paths, spmd_be.list(""));
  for (const auto& path : paths)
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
}

TEST(AggregatedMif, SubfilesConcatenateTaskDocsInRankOrder) {
  // aggregated subfile contents == the concatenation of what an unaggregated
  // N-to-N run writes for the same ranks, in rank order
  auto params = agg_params(12, 4);
  p::MemoryBackend agg_be(true);
  mc::run_macsio(params, agg_be);

  auto flat = params;
  flat.aggregators = 0;
  p::MemoryBackend flat_be(true);
  mc::run_macsio(flat, flat_be);

  const auto topo = st::AggTopology::make(params.nprocs, params.aggregators);
  for (int dump = 0; dump < params.num_dumps; ++dump) {
    for (int g = 0; g < topo.ngroups(); ++g) {
      std::vector<std::byte> expected;
      for (int r : topo.members_of(g)) {
        const auto doc = flat_be.read(mc::dump_file_path(flat, r, dump));
        expected.insert(expected.end(), doc.begin(), doc.end());
      }
      EXPECT_EQ(agg_be.read(mc::aggregated_file_path(params, g, dump)),
                expected)
          << "group " << g << " dump " << dump;
    }
  }
}

TEST(AggregatedMif, RequestsTargetAggregatorsAndCarryShipCost) {
  auto params = agg_params(16, 4);
  params.compute_time = 2.0;
  params.stage_to_bb = true;
  p::MemoryBackend be(false);
  const auto stats = mc::run_macsio(params, be);

  const auto topo = st::AggTopology::make(params.nprocs, params.aggregators);
  int data_requests = 0;
  for (const auto& req : stats.requests) {
    EXPECT_EQ(req.tier, p::kTierBurstBuffer);
    if (req.file.find("_agg_") == std::string::npos) {
      // metadata (root/index) submits on the compute boundary
      EXPECT_DOUBLE_EQ(std::fmod(req.submit_time, params.compute_time), 0.0);
      continue;
    }
    ++data_requests;
    EXPECT_TRUE(topo.is_aggregator(req.client)) << req.file;
    // shipping the group's documents to the aggregator takes interconnect
    // time: the subfile request lands strictly after the compute boundary
    EXPECT_GT(std::fmod(req.submit_time, params.compute_time), 0.0)
        << req.file;
  }
  EXPECT_EQ(data_requests, params.aggregators * params.num_dumps);
}

TEST(AggregatedMif, TraceCarriesTierAndAggregatorDimensions) {
  auto params = agg_params(16, 4);
  params.stage_to_bb = true;
  p::MemoryBackend be(false);
  amrio::iostats::TraceRecorder trace;
  mc::run_macsio(params, be, &trace);
  int subfile_events = 0;
  for (const auto& e : trace.events()) {
    EXPECT_EQ(e.tier, p::kTierBurstBuffer);
    if (e.level == 0) {
      ++subfile_events;
      EXPECT_GE(e.aggregator, 0);
      EXPECT_LT(e.aggregator, params.aggregators);
    } else {
      EXPECT_EQ(e.aggregator, -1);
    }
  }
  EXPECT_EQ(subfile_events, params.aggregators * params.num_dumps);
}

// --------------------------------------------- aggregated plotfile MIF

namespace {

struct PlotCase {
  m::MultiFab mf;
  m::Geometry geom;
  pf::PlotfileSpec spec;
};

PlotCase make_plot_case(int nranks, int aggregators) {
  std::vector<m::Box> boxes;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      boxes.emplace_back(i * 8, j * 8, i * 8 + 7, j * 8 + 7);
  m::BoxArray ba(boxes);
  const auto dm =
      m::DistributionMapping::make(ba, nranks, m::DistributionStrategy::kSfc);
  PlotCase c{m::MultiFab(ba, dm, 2, 0),
             m::Geometry(m::Box(0, 0, 31, 31), {0.0, 0.0}, {1.0, 1.0}),
             {}};
  c.mf.set_val(0.75);
  c.spec.dir = "agg_plt00000";
  c.spec.var_names = {"a", "b"};
  c.spec.aggregators = aggregators;
  return c;
}

}  // namespace

TEST(AggregatedPlotfile, FewerFilesSameDataBytesAndReadableRoundTrip) {
  const int nranks = 8;
  auto flat = make_plot_case(nranks, 0);
  p::MemoryBackend flat_be(true);
  const auto ref =
      pf::write_plotfile(flat_be, flat.spec, {{flat.geom, &flat.mf}});

  auto agg = make_plot_case(nranks, 2);
  p::MemoryBackend agg_be(true);
  const auto got = pf::write_plotfile(agg_be, agg.spec, {{agg.geom, &agg.mf}});

  EXPECT_EQ(got.data_bytes, ref.data_bytes);
  EXPECT_EQ(got.rank_level_bytes, ref.rank_level_bytes);
  // 8 Cell_D files collapse to 2; Header/job_info/Cell_H stay
  EXPECT_EQ(got.nfiles, ref.nfiles - 8 + 2);

  // the aggregated tree reads back with identical values
  const auto pfile = pf::read_plotfile(agg_be, "agg_plt00000");
  ASSERT_EQ(pfile.levels.size(), 1u);
  ASSERT_EQ(pfile.levels[0].fabs.size(), 16u);
  for (const auto& fab : pfile.levels[0].fabs) {
    EXPECT_EQ(fab.ncomp(), 2);
    EXPECT_DOUBLE_EQ(fab(fab.box().lo(0), fab.box().lo(1), 0), 0.75);
  }
}

TEST(AggregatedPlotfile, PredictMatchesWriteAndEnginesAgree) {
  const int nranks = 8;
  auto c = make_plot_case(nranks, 4);
  p::MemoryBackend serial_be(true);
  ex::SerialEngine serial(nranks);
  const auto ref =
      pf::write_plotfile(serial, serial_be, c.spec, {{c.geom, &c.mf}});

  p::MemoryBackend spmd_be(true);
  ex::SpmdEngine spmd(nranks);
  const auto got = pf::write_plotfile(spmd, spmd_be, c.spec, {{c.geom, &c.mf}});
  EXPECT_EQ(got.total_bytes, ref.total_bytes);
  EXPECT_EQ(got.nfiles, ref.nfiles);
  ASSERT_EQ(serial_be.list(""), spmd_be.list(""));
  for (const auto& path : serial_be.list(""))
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;

  const pf::LevelLayout layout{c.geom, c.mf.box_array(), c.mf.distribution()};
  const auto predicted = pf::predict_plotfile(c.spec, {layout}, 2);
  EXPECT_EQ(predicted.total_bytes, ref.total_bytes);
  EXPECT_EQ(predicted.nfiles, ref.nfiles);
  EXPECT_EQ(predicted.data_bytes, ref.data_bytes);
}

// -------------------------------------------------------- StagingBackend

TEST(StagingBackend, AbsorbsThenDrainsByteExactly) {
  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be);
  {
    p::OutFile f(bb, "data/a.bin");
    f.write("hello ");
    f.write("world");
  }
  {
    p::OutFile f(bb, "data/b.bin");
    f.write("42");
  }
  EXPECT_EQ(bb.pending_files(), 2u);
  EXPECT_EQ(bb.pending_bytes(), 13u);
  EXPECT_FALSE(final_be.exists("data/a.bin"));  // not drained yet
  EXPECT_TRUE(bb.exists("data/a.bin"));         // staged view serves reads
  EXPECT_EQ(bb.size("data/a.bin"), 11u);

  const auto drained = bb.drain_all();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].path, "data/a.bin");
  EXPECT_EQ(drained[0].bytes, 11u);
  EXPECT_EQ(bb.pending_files(), 0u);
  const auto bytes = final_be.read("data/a.bin");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()),
            "hello world");
  EXPECT_EQ(final_be.size("data/b.bin"), 2u);
  // the decorator still answers for drained files
  EXPECT_TRUE(bb.exists("data/b.bin"));
  EXPECT_EQ(bb.size("data/b.bin"), 2u);
}

TEST(StagingBackend, AppendAcrossDrainsPreservesFinalContents) {
  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be);
  { p::OutFile f(bb, "log"); f.write("aaaa"); }
  bb.drain_all();
  { p::OutFile f(bb, "log", p::OpenMode::kAppend); f.write("bb"); }
  bb.drain_all();
  const auto bytes = final_be.read("log");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()),
            "aaaabb");
  // a later create/truncate replaces the final copy on drain
  { p::OutFile f(bb, "log"); f.write("c"); }
  bb.drain_all();
  EXPECT_EQ(final_be.size("log"), 1u);
}

TEST(StagingBackend, TransparentViewComposesAppendSuffixWithDrainedPrefix) {
  // Between drains, size()/read() of an append-continuation file must show
  // the final-store prefix plus the staged suffix — what a direct backend
  // would hold.
  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be);
  { p::OutFile f(bb, "f"); f.write("0123456789"); }
  bb.drain_all();
  { p::OutFile f(bb, "f", p::OpenMode::kAppend); f.write("abcde"); }
  EXPECT_EQ(bb.size("f"), 15u);
  const auto bytes = bb.read("f");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()),
            "0123456789abcde");
  // a truncating create hides the drained copy again
  { p::OutFile f(bb, "f"); f.write("xy"); }
  EXPECT_EQ(bb.size("f"), 2u);
  EXPECT_EQ(bb.read("f").size(), 2u);
}

TEST(StagingBackend, AccountingModeDrainsExactSizesAndFileSets) {
  // store_contents = false: only byte counts are staged, yet the drained
  // file set and per-file sizes must match a direct run exactly — including
  // when the tier-side accounting shrinks under an encoded (codec) view.
  auto params = agg_params(16, 4);
  p::MemoryBackend direct_be(false);
  mc::run_macsio(params, direct_be);

  amrio::codec::CodecSpec codec;
  codec.name = "ebl";
  p::MemoryBackend final_be(false);
  st::StagingBackend bb(final_be, /*store_contents=*/false, codec);
  mc::run_macsio(params, bb);

  EXPECT_EQ(bb.pending_files(), direct_be.file_count());
  EXPECT_EQ(bb.pending_bytes(), direct_be.total_bytes());
  EXPECT_LT(bb.pending_encoded_bytes(), bb.pending_bytes());
  const auto drained = bb.drain_all();
  EXPECT_EQ(drained.size(), direct_be.file_count());
  for (const auto& rec : drained) {
    EXPECT_EQ(rec.bytes, direct_be.size(rec.path)) << rec.path;
    EXPECT_LE(rec.encoded_bytes, rec.bytes) << rec.path;
  }
  ASSERT_EQ(final_be.list(""), direct_be.list(""));
  for (const auto& path : direct_be.list(""))
    EXPECT_EQ(final_be.size(path), direct_be.size(path)) << path;
  EXPECT_EQ(final_be.total_bytes(), direct_be.total_bytes());
}

TEST(StagingBackend, MacsioDumpThroughBbMatchesDirect) {
  auto params = agg_params(16, 4);
  p::MemoryBackend direct_be(true);
  mc::run_macsio(params, direct_be);

  p::MemoryBackend final_be(true);
  st::StagingBackend bb(final_be);
  mc::run_macsio(params, bb);
  EXPECT_GT(bb.pending_files(), 0u);
  const auto reqs = bb.drain_requests(1.0, 0);
  EXPECT_EQ(reqs.size(), bb.pending_files());
  for (const auto& r : reqs) EXPECT_EQ(r.tier, p::kTierBurstBuffer);
  bb.drain_all();
  ASSERT_EQ(final_be.list(""), direct_be.list(""));
  for (const auto& path : direct_be.list(""))
    EXPECT_EQ(final_be.read(path), direct_be.read(path)) << path;
}

// -------------------------------------------------------- two-tier SimFs

namespace {

p::SimFsConfig bb_config() {
  p::SimFsConfig cfg;
  cfg.n_ost = 16;
  cfg.ost_bandwidth = 1e9;
  cfg.client_bandwidth = 10e9;
  cfg.mds_latency = 0.0;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 1;
  cfg.bb.write_bandwidth = 10e9;
  cfg.bb.drain_bandwidth = 1e9;
  cfg.bb.drain_concurrency = 2;
  return cfg;
}

}  // namespace

TEST(TwoTierSimFs, PerceivedCompletesBeforeDrain) {
  p::SimFs fs(bb_config());
  const std::uint64_t bytes = 1'000'000'000;
  const auto res =
      fs.run({p::IoRequest{0, 0.0, "f", bytes, p::kTierBurstBuffer}});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].tier, p::kTierBurstBuffer);
  EXPECT_NEAR(res[0].end, 0.1, 1e-9);       // absorbed at 10 GB/s
  EXPECT_NEAR(res[0].pfs_end, 0.1 + 1.0, 1e-6);  // drained at 1 GB/s
}

TEST(TwoTierSimFs, DisabledTierServesTaggedRequestsDirectly) {
  auto cfg = bb_config();
  cfg.bb.enabled = false;
  p::SimFs fs(cfg);
  const auto res =
      fs.run({p::IoRequest{0, 0.0, "f", 1'000'000'000, p::kTierBurstBuffer}});
  EXPECT_EQ(res[0].tier, p::kTierPfs);
  EXPECT_DOUBLE_EQ(res[0].end, res[0].pfs_end);
  EXPECT_NEAR(res[0].end, 1.0, 1e-6);  // OST bandwidth, no absorb
}

TEST(TwoTierSimFs, CapacityBoundStallsAbsorbs) {
  auto cfg = bb_config();
  const std::uint64_t bytes = 500'000'000;
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back({0, 0.0, "cap" + std::to_string(i), bytes,
                    p::kTierBurstBuffer});

  p::SimFs unlimited(cfg);
  const auto fast = unlimited.run(reqs);

  cfg.bb.capacity = bytes;  // room for exactly one staged request
  p::SimFs bounded(cfg);
  const auto slow = bounded.run(reqs);

  auto last_end = [](const std::vector<p::IoResult>& rs) {
    double t = 0.0;
    for (const auto& r : rs) t = std::max(t, r.end);
    return t;
  };
  // with capacity for one request, each absorb waits for the previous drain
  EXPECT_GT(last_end(slow), 2.0 * last_end(fast));
  // a request that can never fit is rejected loudly
  cfg.bb.capacity = bytes - 1;
  p::SimFs tiny(cfg);
  EXPECT_THROW(tiny.run(reqs), amrio::ContractViolation);
}

TEST(TwoTierSimFs, DrainConcurrencyShortensTheTail) {
  auto cfg = bb_config();
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 6; ++i)
    reqs.push_back({0, 0.0, "t" + std::to_string(i), 400'000'000,
                    p::kTierBurstBuffer});
  auto last_durable = [](const std::vector<p::IoResult>& rs) {
    double t = 0.0;
    for (const auto& r : rs) t = std::max(t, r.pfs_end);
    return t;
  };
  cfg.bb.drain_concurrency = 1;
  const double serial_tail = last_durable(p::SimFs(cfg).run(reqs));
  cfg.bb.drain_concurrency = 6;
  const double parallel_tail = last_durable(p::SimFs(cfg).run(reqs));
  EXPECT_LT(parallel_tail, serial_tail);
}

TEST(TwoTierSimFs, DeterministicAcrossRuns) {
  auto cfg = bb_config();
  cfg.variability_sigma = 0.3;
  cfg.mds_latency = 1e-4;
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 12; ++i)
    reqs.push_back({i % 3, 0.05 * (i / 3), "d" + std::to_string(i),
                    3'000'000, i % 2 ? p::kTierBurstBuffer : p::kTierPfs});
  const auto a = p::SimFs(cfg).run(reqs);
  const auto b = p::SimFs(cfg).run(reqs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
    EXPECT_DOUBLE_EQ(a[i].pfs_end, b[i].pfs_end);
  }
}

TEST(StagingReport, SeparatesPerceivedFromSustained) {
  auto cfg = bb_config();
  std::vector<p::IoRequest> reqs;
  for (int i = 0; i < 4; ++i)
    reqs.push_back({i, 0.0, "r" + std::to_string(i), 250'000'000,
                    p::kTierBurstBuffer});
  reqs.push_back({0, 0.0, "direct", 100'000'000, p::kTierPfs});
  const auto results = p::SimFs(cfg).run(reqs);
  const auto rep = st::staging_report(results);
  EXPECT_EQ(rep.staged_bytes, 4u * 250'000'000u);
  EXPECT_EQ(rep.direct_bytes, 100'000'000u);
  EXPECT_GT(rep.drain_tail, 0.0);
  EXPECT_LT(rep.perceived.makespan, rep.sustained.makespan);
  EXPECT_GT(rep.perceived_bandwidth, rep.sustained_bandwidth);
}

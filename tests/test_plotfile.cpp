/// Tests for the AMReX-native plotfile layer: FAB serialization round-trip,
/// the Fig. 2 directory layout, the per-task-file conditional, byte-exact
/// size prediction, reader round-trips, and the scanner's (step, level, task)
/// classification.

#include <gtest/gtest.h>

#include "amr/core.hpp"
#include "core/campaign.hpp"
#include "hydro/derive.hpp"
#include "plotfile/fab_io.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/scanner.hpp"
#include "plotfile/writer.hpp"
#include "util/assert.hpp"

namespace pf = amrio::plotfile;
namespace m = amrio::mesh;
namespace p = amrio::pfs;
namespace h = amrio::hydro;

namespace {

/// A two-level layout with a known distribution for writer tests.
struct Fixture {
  std::vector<pf::LevelPlotData> levels;
  std::vector<pf::LevelLayout> layouts;
  std::vector<m::MultiFab> storage;
  pf::PlotfileSpec spec;

  explicit Fixture(int nranks = 3, int ncomp = 2) {
    // level 0: 2x2 boxes of 8x8; level 1: one refined box
    std::vector<m::Box> l0;
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 2; ++i)
        l0.emplace_back(i * 8, j * 8, i * 8 + 7, j * 8 + 7);
    m::BoxArray ba0(l0);
    m::BoxArray ba1(m::Box(8, 8, 23, 23));
    const m::Geometry g0(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
    const m::Geometry g1 = g0.refine(2);
    auto dm0 = m::DistributionMapping::make(ba0, nranks,
                                            m::DistributionStrategy::kRoundRobin);
    auto dm1 = m::DistributionMapping::make(ba1, nranks,
                                            m::DistributionStrategy::kRoundRobin);
    storage.emplace_back(ba0, dm0, ncomp, 0);
    storage.emplace_back(ba1, dm1, ncomp, 0);
    storage[0].set_val(1.5);
    storage[1].set_val(2.5);
    levels.push_back({g0, &storage[0]});
    levels.push_back({g1, &storage[1]});
    layouts.push_back({g0, ba0, dm0});
    layouts.push_back({g1, ba1, dm1});
    spec.dir = "test_plt00000";
    spec.var_names = {"density", "pressure"};
    spec.time = 0.125;
    spec.step = 0;
    spec.job_info = "job info text\n";
  }
};

}  // namespace

// --------------------------------------------------------------- fab io

TEST(FabIo, HeaderFormatMatchesAmrex) {
  const std::string h = pf::fab_header(m::Box(0, 0, 31, 15), 4);
  EXPECT_EQ(h,
            "FAB ((8, (64 11 52 0 1 12 0 1023)),(8, (8 7 6 5 4 3 2 1)))"
            "((0,0) (31,15) (0,0)) 4\n");
}

TEST(FabIo, DiskSizeIsHeaderPlusPayload) {
  const m::Box b(0, 0, 7, 7);
  EXPECT_EQ(pf::fab_disk_size(b, 3),
            pf::fab_header(b, 3).size() + 64u * 3 * 8);
}

TEST(FabIo, WriteReadRoundTrip) {
  p::MemoryBackend be(true);
  m::Fab fab(m::Box(2, 3, 9, 12), 2);
  for (int j = 3; j <= 12; ++j)
    for (int i = 2; i <= 9; ++i) {
      fab({i, j}, 0) = i * 100.0 + j;
      fab({i, j}, 1) = -(i * 100.0 + j);
    }
  {
    p::OutFile out(be, "fab.bin");
    const auto written = pf::write_fab(out, fab, fab.box());
    EXPECT_EQ(written, pf::fab_disk_size(fab.box(), 2));
  }
  const auto bytes = be.read("fab.bin");
  std::size_t offset = 0;
  const m::Fab back = pf::read_fab(bytes, offset);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(back.box(), fab.box());
  EXPECT_EQ(back.ncomp(), 2);
  EXPECT_DOUBLE_EQ(back({5, 7}, 0), 507.0);
  EXPECT_DOUBLE_EQ(back({5, 7}, 1), -507.0);
}

TEST(FabIo, WritesValidSubsetOfGhostedFab) {
  p::MemoryBackend be(true);
  const m::Box valid(0, 0, 3, 3);
  m::Fab fab(valid.grow(2), 1);
  fab.set_val(-1.0);
  for (int j = 0; j <= 3; ++j)
    for (int i = 0; i <= 3; ++i) fab({i, j}, 0) = 7.0;
  {
    p::OutFile out(be, "f");
    pf::write_fab(out, fab, valid);
  }
  const auto bytes = be.read("f");
  std::size_t offset = 0;
  const m::Fab back = pf::read_fab(bytes, offset);
  EXPECT_EQ(back.box(), valid);
  // no ghost contamination
  for (int j = 0; j <= 3; ++j)
    for (int i = 0; i <= 3; ++i) EXPECT_DOUBLE_EQ(back({i, j}, 0), 7.0);
}

TEST(FabIo, TruncatedPayloadThrows) {
  p::MemoryBackend be(true);
  m::Fab fab(m::Box(0, 0, 3, 3), 1);
  {
    p::OutFile out(be, "f");
    pf::write_fab(out, fab, fab.box());
  }
  auto bytes = be.read("f");
  bytes.resize(bytes.size() - 10);
  std::size_t offset = 0;
  EXPECT_THROW(pf::read_fab(bytes, offset), std::runtime_error);
}

TEST(FabIo, MalformedHeaderThrows) {
  const std::string junk = "NOT A FAB HEADER\nxxxx";
  std::size_t offset = 0;
  EXPECT_THROW(pf::parse_fab_header(
                   std::as_bytes(std::span<const char>(junk.data(), junk.size())),
                   offset),
               std::runtime_error);
}

// ---------------------------------------------------------------- writer

TEST(Writer, ProducesFig2Layout) {
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_plotfile(be, fx.spec, fx.levels);
  EXPECT_TRUE(be.exists("test_plt00000/Header"));
  EXPECT_TRUE(be.exists("test_plt00000/job_info"));
  EXPECT_TRUE(be.exists("test_plt00000/Level_0/Cell_H"));
  EXPECT_TRUE(be.exists("test_plt00000/Level_1/Cell_H"));
  // round-robin of 4 boxes over 3 ranks: ranks 0,1,2 own level-0 data
  EXPECT_TRUE(be.exists("test_plt00000/Level_0/Cell_D_00000"));
  EXPECT_TRUE(be.exists("test_plt00000/Level_0/Cell_D_00001"));
  EXPECT_TRUE(be.exists("test_plt00000/Level_0/Cell_D_00002"));
}

TEST(Writer, NoFileForTaskWithoutData) {
  // level 1 has exactly one box → only rank 0 writes there (the paper's
  // "file only produced if there is data on that task at that level")
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_plotfile(be, fx.spec, fx.levels);
  EXPECT_TRUE(be.exists("test_plt00000/Level_1/Cell_D_00000"));
  EXPECT_FALSE(be.exists("test_plt00000/Level_1/Cell_D_00001"));
  EXPECT_FALSE(be.exists("test_plt00000/Level_1/Cell_D_00002"));
}

TEST(Writer, StatsMatchBackendTotals) {
  Fixture fx;
  p::MemoryBackend be(true);
  const auto stats = pf::write_plotfile(be, fx.spec, fx.levels);
  EXPECT_EQ(stats.total_bytes, be.total_bytes());
  EXPECT_EQ(stats.nfiles, be.file_count());
  EXPECT_EQ(stats.total_bytes, stats.metadata_bytes + stats.data_bytes);
  // per rank-level bytes add up to data bytes
  std::uint64_t rank_total = 0;
  for (const auto& level : stats.rank_level_bytes)
    for (auto b : level) rank_total += b;
  EXPECT_EQ(rank_total, stats.data_bytes);
}

TEST(Writer, PredictMatchesActualByteForByte) {
  Fixture fx;
  p::MemoryBackend be(true);
  const auto actual = pf::write_plotfile(be, fx.spec, fx.levels);
  const auto predicted = pf::predict_plotfile(fx.spec, fx.layouts, 2);
  EXPECT_EQ(predicted.total_bytes, actual.total_bytes);
  EXPECT_EQ(predicted.metadata_bytes, actual.metadata_bytes);
  EXPECT_EQ(predicted.data_bytes, actual.data_bytes);
  EXPECT_EQ(predicted.nfiles, actual.nfiles);
  EXPECT_EQ(predicted.rank_level_bytes, actual.rank_level_bytes);
}

TEST(Writer, PredictTracesSameEvents) {
  Fixture fx;
  p::MemoryBackend be(true);
  amrio::iostats::TraceRecorder t_actual;
  amrio::iostats::TraceRecorder t_predict;
  pf::write_plotfile(be, fx.spec, fx.levels, &t_actual);
  pf::predict_plotfile(fx.spec, fx.layouts, 2, &t_predict);
  const auto ea = t_actual.events();
  const auto ep = t_predict.events();
  ASSERT_EQ(ea.size(), ep.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].path, ep[i].path);
    EXPECT_EQ(ea[i].bytes, ep[i].bytes);
    EXPECT_EQ(ea[i].level, ep[i].level);
    EXPECT_EQ(ea[i].rank, ep[i].rank);
  }
}

TEST(Writer, FixedRealWidthIsStable) {
  EXPECT_EQ(pf::fixed_real(0.0).size(), 26u);
  EXPECT_EQ(pf::fixed_real(-1.23456789e-300).size(), 26u);
  EXPECT_EQ(pf::fixed_real(9.87654321e+250).size(), 26u);
  EXPECT_EQ(pf::fixed_real(3.14).size(), 26u);
}

TEST(Writer, VarNameCountEnforced) {
  Fixture fx;
  fx.spec.var_names = {"only_one"};
  p::MemoryBackend be(true);
  EXPECT_THROW(pf::write_plotfile(be, fx.spec, fx.levels),
               amrio::ContractViolation);
}

TEST(Writer, CheckpointHasDifferentMagic) {
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_checkpoint(be, fx.spec, fx.levels);
  const auto bytes = be.read("test_plt00000/Header");
  const std::string text(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  EXPECT_EQ(text.substr(0, 21), "CheckPointVersion_1.0");
}

// ---------------------------------------------------------------- reader

TEST(Reader, RoundTripsWrittenPlotfile) {
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_plotfile(be, fx.spec, fx.levels);
  const auto pf_in = pf::read_plotfile(be, "test_plt00000");
  EXPECT_EQ(pf_in.var_names, fx.spec.var_names);
  EXPECT_DOUBLE_EQ(pf_in.time, 0.125);
  EXPECT_EQ(pf_in.finest_level, 1);
  ASSERT_EQ(pf_in.levels.size(), 2u);
  EXPECT_EQ(pf_in.levels[0].ba.size(), 4u);
  EXPECT_EQ(pf_in.levels[1].ba.size(), 1u);
  // data values survived
  ASSERT_EQ(pf_in.levels[0].fabs.size(), 4u);
  EXPECT_DOUBLE_EQ(pf_in.levels[0].fabs[0]({1, 1}, 0), 1.5);
  EXPECT_DOUBLE_EQ(pf_in.levels[1].fabs[0]({9, 9}, 1), 2.5);
}

TEST(Reader, MetadataOnlyMode) {
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_plotfile(be, fx.spec, fx.levels);
  const auto pf_in = pf::read_plotfile(be, "test_plt00000", /*load_data=*/false);
  EXPECT_EQ(pf_in.levels[0].fab_files.size(), 4u);
  EXPECT_TRUE(pf_in.levels[0].fabs.empty());
}

TEST(Reader, ParseBoxFormat) {
  const m::Box b = pf::parse_box("((0,0)-(31,15))");
  EXPECT_EQ(b, m::Box(0, 0, 31, 15));
  EXPECT_THROW(pf::parse_box("garbage"), std::runtime_error);
}

TEST(Reader, MissingFileThrows) {
  p::MemoryBackend be(true);
  EXPECT_THROW(pf::read_plotfile(be, "nonexistent_plt"), std::runtime_error);
}

TEST(Reader, CorruptHeaderThrows) {
  p::MemoryBackend be(true);
  {
    p::OutFile f(be, "bad_plt/Header");
    f.write("NOT-HYPERCLAW\n");
  }
  EXPECT_THROW(pf::read_plotfile(be, "bad_plt"), std::runtime_error);
}

// --------------------------------------------------------------- scanner

TEST(Scanner, ClassifiesPerStepLevelTask) {
  Fixture fx;
  p::MemoryBackend be(true);
  pf::write_plotfile(be, fx.spec, fx.levels);
  // second plotfile at step 20
  Fixture fx2;
  fx2.spec.dir = "test_plt00020";
  fx2.spec.step = 20;
  pf::write_plotfile(be, fx2.spec, fx2.levels);

  const auto scan = pf::scan_plotfiles(be, "test_plt");
  EXPECT_EQ(scan.plotfile_dirs.size(), 2u);
  EXPECT_EQ(scan.total_bytes, be.total_bytes());
  EXPECT_EQ(scan.nfiles, be.file_count());

  // top-level metadata row exists for both steps
  EXPECT_TRUE(scan.table.count({0, -1, -1}) == 1);
  EXPECT_TRUE(scan.table.count({20, -1, -1}) == 1);
  // per-level metadata rows
  EXPECT_TRUE(scan.table.count({0, 0, -1}) == 1);
  EXPECT_TRUE(scan.table.count({0, 1, -1}) == 1);
  // task data rows: level 0 ranks 0..2, level 1 rank 0 only
  EXPECT_TRUE(scan.table.count({0, 0, 0}) == 1);
  EXPECT_TRUE(scan.table.count({0, 0, 2}) == 1);
  EXPECT_TRUE(scan.table.count({0, 1, 0}) == 1);
  EXPECT_FALSE(scan.table.count({0, 1, 1}) == 1);
}

TEST(Scanner, AgreesWithWriterStats) {
  Fixture fx;
  p::MemoryBackend be(true);
  const auto stats = pf::write_plotfile(be, fx.spec, fx.levels);
  const auto scan = pf::scan_plotfiles(be, "test_plt");
  // scanner's per-(level,rank) data equals writer's accounting
  for (std::size_t l = 0; l < stats.rank_level_bytes.size(); ++l) {
    for (std::size_t r = 0; r < stats.rank_level_bytes[l].size(); ++r) {
      const auto it = scan.table.find({0, static_cast<int>(l), static_cast<int>(r)});
      const std::uint64_t scanned = it != scan.table.end() ? it->second : 0;
      EXPECT_EQ(scanned, stats.rank_level_bytes[l][r]) << "level " << l << " rank " << r;
    }
  }
}

TEST(Scanner, IgnoresForeignFiles) {
  p::MemoryBackend be(true);
  { p::OutFile f(be, "unrelated.txt"); f.write("hi"); }
  { p::OutFile f(be, "test_pltabc/Header"); f.write("not a step dir"); }
  const auto scan = pf::scan_plotfiles(be, "test_plt");
  EXPECT_TRUE(scan.table.empty());
  EXPECT_EQ(scan.nfiles, 0u);
}

// ------------------------------------------------- end-to-end with AmrCore

TEST(PlotfileIntegration, AmrCoreWriteScanReadAgree) {
  auto in = amrio::amr::AmrInputs::sedov_baseline();
  in.n_cell = {32, 32};
  in.max_level = 1;
  in.max_step = 4;
  in.plot_int = 4;
  in.max_grid_size = 16;
  in.stop_time = 100.0;
  in.sedov_r_init = 0.1;
  in.nprocs = 4;
  amrio::amr::AmrCore core(in);
  p::MemoryBackend be(true);
  core.run([&](const amrio::amr::AmrCore& c, std::int64_t step, double time) {
    amrio::core::write_plot_for(c, step, time, be, nullptr);
  });
  const auto scan = pf::scan_plotfiles(be, in.plot_file);
  EXPECT_EQ(scan.plotfile_dirs.size(), 2u);  // steps 0 and 4
  // read back the first plotfile and verify the density field is physical
  const auto pf_in = pf::read_plotfile(be, in.plot_file + "00000");
  EXPECT_EQ(pf_in.var_names.size(),
            static_cast<std::size_t>(h::num_plot_vars()));
  double rho_max = 0.0;
  for (const auto& fab : pf_in.levels[0].fabs) {
    rho_max = std::max(rho_max, fab.max(fab.box(), 0));
  }
  EXPECT_GT(rho_max, 0.5);
}

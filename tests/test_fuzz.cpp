/// Light deterministic fuzzing: random byte corruption of plotfiles fed to
/// the reader, random token streams fed to the parsers. The invariant under
/// test is "throws or returns, never crashes or hangs" — the property a
/// production reader of foreign files must satisfy.

#include <gtest/gtest.h>

#include "macsio/params.hpp"
#include "plotfile/fab_io.hpp"
#include "plotfile/reader.hpp"
#include "plotfile/writer.hpp"
#include "util/format.hpp"
#include "util/inputs.hpp"
#include "util/rng.hpp"

namespace pf = amrio::plotfile;
namespace p = amrio::pfs;
namespace m = amrio::mesh;

namespace {

/// A valid two-level plotfile in a content-retaining backend.
std::unique_ptr<p::MemoryBackend> make_valid_plotfile(
    std::vector<m::MultiFab>& storage) {
  auto be = std::make_unique<p::MemoryBackend>(true);
  m::BoxArray ba0(m::Box(0, 0, 15, 15));
  m::BoxArray ba1(m::Box(8, 8, 23, 23));
  auto dm0 = m::DistributionMapping::make(ba0, 2, m::DistributionStrategy::kSfc);
  auto dm1 = m::DistributionMapping::make(ba1, 2, m::DistributionStrategy::kSfc);
  storage.emplace_back(ba0, dm0, 2, 0);
  storage.emplace_back(ba1, dm1, 2, 0);
  storage[0].set_val(1.0);
  storage[1].set_val(2.0);
  const m::Geometry g0(m::Box(0, 0, 15, 15), {0.0, 0.0}, {1.0, 1.0});
  pf::PlotfileSpec spec;
  spec.dir = "fz_plt00000";
  spec.var_names = {"a", "b"};
  pf::write_plotfile(*be, spec,
                     {{g0, &storage[0]}, {g0.refine(2), &storage[1]}});
  return be;
}

}  // namespace

class ReaderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ReaderFuzz, CorruptedBytesNeverCrash) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 4099);
  std::vector<m::MultiFab> storage;
  auto be = make_valid_plotfile(storage);
  const auto files = be->list("fz_plt00000");
  ASSERT_FALSE(files.empty());

  for (int trial = 0; trial < 20; ++trial) {
    // pick a file, corrupt 1-16 random bytes, try to read the plotfile
    const auto& victim = files[rng.uniform_int(files.size())];
    auto bytes = be->read(victim);
    if (bytes.empty()) continue;
    const int nflips = 1 + static_cast<int>(rng.uniform_int(16));
    for (int k = 0; k < nflips; ++k) {
      const std::size_t pos = rng.uniform_int(bytes.size());
      bytes[pos] = static_cast<std::byte>(rng.uniform_int(256));
    }
    {
      p::OutFile out(*be, victim);
      out.write(std::span<const std::byte>(bytes.data(), bytes.size()));
    }
    try {
      const auto pf_in = pf::read_plotfile(*be, "fz_plt00000");
      // a surviving read must at least be self-consistent
      EXPECT_EQ(pf_in.levels.size(),
                static_cast<std::size_t>(pf_in.finest_level + 1));
    } catch (const std::exception&) {
      // rejection is the expected outcome
    }
    // restore for the next trial
    storage.clear();
    be = make_valid_plotfile(storage);
  }
}

TEST_P(ReaderFuzz, TruncationsNeverCrash) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<m::MultiFab> storage;
  auto be = make_valid_plotfile(storage);
  for (const auto& victim : be->list("fz_plt00000")) {
    const auto bytes = be->read(victim);
    const std::size_t cut = rng.uniform_int(bytes.size() + 1);
    {
      p::OutFile out(*be, victim);
      out.write(std::span<const std::byte>(bytes.data(), cut));
    }
    try {
      (void)pf::read_plotfile(*be, "fz_plt00000");
    } catch (const std::exception&) {
    }
    // restore
    {
      p::OutFile out(*be, victim);
      out.write(std::span<const std::byte>(bytes.data(), bytes.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReaderFuzz, ::testing::Range(1, 7));

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, InputsFileNeverCrashes) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  static constexpr const char kChars[] =
      "abcdefghijklmnop.=# 0123456789\n\t-_+e";
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const std::size_t len = rng.uniform_int(400);
    for (std::size_t i = 0; i < len; ++i)
      text += kChars[rng.uniform_int(sizeof(kChars) - 1)];
    try {
      const auto in = amrio::util::InputsFile::from_string(text);
      // surviving parse: getters must throw cleanly, not crash
      for (const auto& key : in.keys()) {
        try {
          (void)in.get_double(key);
        } catch (const std::exception&) {
        }
      }
    } catch (const std::exception&) {
    }
  }
}

TEST_P(ParserFuzz, MacsioCliNeverCrashes) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const std::vector<std::string> vocab{
      "--interface", "miftmpl",  "hdf5",      "--parallel_file_mode",
      "MIF",         "SIF",      "8",         "--num_dumps",
      "20",          "-3",       "--part_size", "1.5M",
      "xyz",         "--dataset_growth", "1.01", "99",
      "--nprocs",    "0",        "--meta_size", "4K"};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> args;
    const std::size_t len = rng.uniform_int(8);
    for (std::size_t i = 0; i < len; ++i)
      args.push_back(vocab[rng.uniform_int(vocab.size())]);
    try {
      (void)amrio::macsio::Params::from_cli(args);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(ParserFuzz, FabHeaderNeverCrashes) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 271828);
  for (int trial = 0; trial < 50; ++trial) {
    std::string junk = "FAB ";
    const std::size_t len = rng.uniform_int(120);
    for (std::size_t i = 0; i < len; ++i)
      junk += static_cast<char>(32 + rng.uniform_int(95));
    junk += "\n";
    std::size_t offset = 0;
    try {
      (void)pf::parse_fab_header(
          std::as_bytes(std::span<const char>(junk.data(), junk.size())),
          offset);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

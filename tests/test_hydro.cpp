/// Tests for the hydrodynamics substrate: EOS identities, Riemann solver
/// consistency, conservation, Sod shock correctness, Sedov symmetry, CFL dt.

#include <gtest/gtest.h>

#include <cmath>

#include "hydro/bc.hpp"
#include "hydro/derive.hpp"
#include "hydro/eos.hpp"
#include "hydro/riemann.hpp"
#include "hydro/sedov.hpp"
#include "hydro/solver.hpp"

namespace h = amrio::hydro;
namespace m = amrio::mesh;

namespace {

h::GammaLawEos eos14(1.4);

/// Build a single-fab state with ghost cells over an n×n domain.
m::Fab make_state(int n, int nghost = h::kGhost) {
  return m::Fab(m::Box(0, 0, n - 1, n - 1).grow(nghost), h::kNCons);
}

void set_prim(m::Fab& fab, m::IntVect p, const h::Prim& q) {
  const h::Cons c = eos14.to_cons(q);
  for (int n = 0; n < h::kNCons; ++n) fab(p, n) = c[n];
}

void fill_all(m::Fab& fab, const h::Prim& q) {
  const m::Box b = fab.box();
  for (int j = b.lo(1); j <= b.hi(1); ++j)
    for (int i = b.lo(0); i <= b.hi(0); ++i) set_prim(fab, {i, j}, q);
}

}  // namespace

// ------------------------------------------------------------------- EOS

TEST(Eos, PrimConsRoundTrip) {
  const h::Prim q{1.2, 0.3, -0.7, 2.5};
  const h::Cons c = eos14.to_cons(q);
  const h::Prim back = eos14.to_prim(c);
  EXPECT_NEAR(back.rho, q.rho, 1e-14);
  EXPECT_NEAR(back.u, q.u, 1e-14);
  EXPECT_NEAR(back.v, q.v, 1e-14);
  EXPECT_NEAR(back.p, q.p, 1e-13);
}

TEST(Eos, SoundSpeedIdealGas) {
  // c = sqrt(gamma p / rho)
  EXPECT_NEAR(eos14.sound_speed(1.0, 1.0), std::sqrt(1.4), 1e-14);
  EXPECT_NEAR(eos14.sound_speed(4.0, 1.0), std::sqrt(1.4 / 4.0), 1e-14);
}

TEST(Eos, FloorsApplied) {
  h::Cons degenerate{0.0, 0.0, 0.0, -1.0};
  const h::Prim q = eos14.to_prim(degenerate);
  EXPECT_GT(q.rho, 0.0);
  EXPECT_GT(q.p, 0.0);
}

TEST(Eos, InternalEnergyInverse) {
  const double e = eos14.internal_energy(2.0, 3.0);
  EXPECT_NEAR(eos14.pressure(2.0, e), 3.0, 1e-12);
}

// --------------------------------------------------------------- Riemann

TEST(Riemann, FluxConsistency) {
  // HLL flux of identical states equals the physical flux.
  const h::Prim q{1.0, 0.5, -0.2, 0.7};
  for (int dir = 0; dir < 2; ++dir) {
    const h::Cons f_hll = h::hll_flux(q, q, eos14, dir);
    const h::Cons f_phys = h::euler_flux(q, eos14, dir);
    for (int n = 0; n < h::kNCons; ++n) EXPECT_NEAR(f_hll[n], f_phys[n], 1e-12);
  }
}

TEST(Riemann, SymmetricStatesZeroMassFlux) {
  // mirror states: no net mass flux through the interface
  const h::Prim ql{1.0, 0.3, 0.0, 1.0};
  const h::Prim qr{1.0, -0.3, 0.0, 1.0};
  const h::Cons f = h::hll_flux(ql, qr, eos14, 0);
  EXPECT_NEAR(f[h::kURho], 0.0, 1e-12);
}

TEST(Riemann, SupersonicUpwinding) {
  // both states moving fast right: flux must equal left physical flux
  const h::Prim ql{1.0, 10.0, 0.0, 1.0};
  const h::Prim qr{0.5, 10.0, 0.0, 0.5};
  const h::Cons f = h::hll_flux(ql, qr, eos14, 0);
  const h::Cons fl = h::euler_flux(ql, eos14, 0);
  for (int n = 0; n < h::kNCons; ++n) EXPECT_NEAR(f[n], fl[n], 1e-12);
}

TEST(Riemann, DirectionalityOfPressureTerm) {
  const h::Prim q{1.0, 0.0, 0.0, 2.0};
  const h::Cons fx = h::euler_flux(q, eos14, 0);
  const h::Cons fy = h::euler_flux(q, eos14, 1);
  EXPECT_DOUBLE_EQ(fx[h::kUMx], 2.0);
  EXPECT_DOUBLE_EQ(fx[h::kUMy], 0.0);
  EXPECT_DOUBLE_EQ(fy[h::kUMy], 2.0);
  EXPECT_DOUBLE_EQ(fy[h::kUMx], 0.0);
}

// ---------------------------------------------------------------- solver

TEST(Solver, UniformStateIsSteady) {
  h::HydroSolver solver;
  m::Fab state = make_state(16);
  const m::Box valid(0, 0, 15, 15);
  fill_all(state, h::Prim{1.0, 0.1, 0.2, 1.0});
  const double before = state.sum(valid, h::kURho);
  solver.advance(state, valid, 0.1, 0.1, 0.01);
  const double after = state.sum(valid, h::kURho);
  EXPECT_NEAR(before, after, 1e-10);
  // every cell identical to start (uniform flow is an exact solution)
  EXPECT_NEAR(state({3, 7}, h::kURho), 1.0, 1e-12);
  EXPECT_NEAR(state({3, 7}, h::kUMx), 0.1, 1e-12);
}

TEST(Solver, MaxStableDtScalesWithCellSize) {
  h::HydroSolver solver;
  m::Fab state = make_state(8);
  fill_all(state, h::Prim{1.0, 0.0, 0.0, 1.0});
  const m::Box valid(0, 0, 7, 7);
  const double dt1 = solver.max_stable_dt(state, valid, 0.1, 0.1);
  const double dt2 = solver.max_stable_dt(state, valid, 0.05, 0.05);
  EXPECT_NEAR(dt1 / dt2, 2.0, 1e-12);
  // dt = dx / c for a quiescent state
  EXPECT_NEAR(dt1, 0.1 / eos14.sound_speed(1.0, 1.0), 1e-12);
}

TEST(Solver, ConservesMassWithWallGhosts) {
  // Periodic-like test: fill ghosts by copying the opposite side each step,
  // so no mass can leave; mass must be conserved to machine precision.
  h::HydroSolver solver;
  const int n = 32;
  m::Fab state = make_state(n);
  const m::Box valid(0, 0, n - 1, n - 1);
  // smooth density bump, zero velocity
  for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
    for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
      const double x = (i + 0.5) / n - 0.5;
      const double y = (j + 0.5) / n - 0.5;
      set_prim(state, {i, j},
               h::Prim{1.0 + 0.2 * std::exp(-40 * (x * x + y * y)), 0.0, 0.0, 1.0});
    }
  }
  auto fill_periodic = [&] {
    const m::Box fb = state.box();
    for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
      for (int i = fb.lo(0); i <= fb.hi(0); ++i) {
        if (valid.contains({i, j})) continue;
        const int si = (i % n + n) % n;
        const int sj = (j % n + n) % n;
        for (int c = 0; c < h::kNCons; ++c) state({i, j}, c) = state({si, sj}, c);
      }
    }
  };
  const double mass0 = state.sum(valid, h::kURho);
  const double energy0 = state.sum(valid, h::kUEden);
  for (int step = 0; step < 10; ++step) {
    fill_periodic();
    solver.advance(state, valid, 1.0 / n, 1.0 / n, 0.2 / n);
  }
  EXPECT_NEAR(state.sum(valid, h::kURho) / mass0, 1.0, 1e-12);
  EXPECT_NEAR(state.sum(valid, h::kUEden) / energy0, 1.0, 1e-12);
}

TEST(Solver, SodShockTubeStructure) {
  // Classic Sod problem along x; verify the wave ordering and plateau values
  // loosely (HLL + minmod at n=200 resolves the contact to a few percent).
  h::HydroSolver solver;
  const int n = 200;
  m::Fab state(m::Box(0, 0, n - 1, 0).grow({h::kGhost, h::kGhost}), h::kNCons);
  const m::Box valid(0, 0, n - 1, 0);
  for (int i = 0; i < n; ++i) {
    const bool left = i < n / 2;
    set_prim(state, {i, 0},
             h::Prim{left ? 1.0 : 0.125, 0.0, 0.0, left ? 1.0 : 0.1});
  }
  const m::Box domain = valid;
  double t = 0.0;
  const double dx = 1.0 / n;
  while (t < 0.15) {
    h::fill_domain_boundary(state, domain, h::BcType::kOutflow);
    const double dt = 0.4 * solver.max_stable_dt(state, valid, dx, dx);
    solver.advance(state, valid, dx, dx, std::min(dt, 0.15 - t));
    t += std::min(dt, 0.15 - t);
  }
  // region between contact (x≈0.64) and shock (x≈0.76) at t=0.15:
  // rho ≈ 0.265, p ≈ 0.30 (exact Sod solution)
  const h::Prim mid = eos14.to_prim({state({static_cast<int>(0.68 * n), 0}, 0),
                                     state({static_cast<int>(0.68 * n), 0}, 1),
                                     state({static_cast<int>(0.68 * n), 0}, 2),
                                     state({static_cast<int>(0.68 * n), 0}, 3)});
  // tolerances sized for HLL + minmod at n=200 (diffusive but convergent)
  EXPECT_NEAR(mid.p, 0.30, 0.08);
  EXPECT_NEAR(mid.rho, 0.265, 0.06);
  // undisturbed right state
  const h::Prim right = eos14.to_prim({state({n - 3, 0}, 0), state({n - 3, 0}, 1),
                                       state({n - 3, 0}, 2), state({n - 3, 0}, 3)});
  EXPECT_NEAR(right.rho, 0.125, 1e-6);
}

// ----------------------------------------------------------------- Sedov

TEST(Sedov, DepositsRequestedEnergy) {
  const int n = 64;
  m::Geometry geom(m::Box(0, 0, n - 1, n - 1), {0.0, 0.0}, {1.0, 1.0});
  m::Fab fab(geom.domain(), h::kNCons);
  h::SedovParams params;
  params.r_init = 0.1;
  params.p_ambient = 1e-10;  // make ambient energy negligible
  h::init_sedov(fab, geom.domain(), geom, params);
  // total internal energy ≈ blast_energy (cell volume × energy density)
  double total = 0.0;
  const double cell_volume = geom.cell_size(0) * geom.cell_size(1);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) total += fab({i, j}, h::kUEden) * cell_volume;
  EXPECT_NEAR(total, params.blast_energy, 0.02 * params.blast_energy);
}

TEST(Sedov, QuadrantSymmetry) {
  const int n = 32;
  m::Geometry geom(m::Box(0, 0, n - 1, n - 1), {0.0, 0.0}, {1.0, 1.0});
  m::Fab fab(geom.domain(), h::kNCons);
  h::SedovParams params;
  params.r_init = 0.2;
  h::init_sedov(fab, geom.domain(), geom, params);
  for (int j = 0; j < n / 2; ++j) {
    for (int i = 0; i < n / 2; ++i) {
      const double v = fab({i, j}, h::kUEden);
      EXPECT_DOUBLE_EQ(v, fab({n - 1 - i, j}, h::kUEden));
      EXPECT_DOUBLE_EQ(v, fab({i, n - 1 - j}, h::kUEden));
      EXPECT_DOUBLE_EQ(v, fab({n - 1 - i, n - 1 - j}, h::kUEden));
    }
  }
}

TEST(Sedov, BlastExpandsOutward) {
  // after some steps the shock front moves outward and Mach peaks off-center
  h::HydroSolver solver;
  const int n = 64;
  m::Geometry geom(m::Box(0, 0, n - 1, n - 1), {0.0, 0.0}, {1.0, 1.0});
  m::Fab state = make_state(n);
  h::SedovParams params;
  params.r_init = 0.05;
  h::init_sedov(state, geom.domain(), geom, params);
  const m::Box valid = geom.domain();
  double t = 0.0;
  for (int step = 0; step < 60; ++step) {
    h::fill_domain_boundary(state, valid, h::BcType::kOutflow);
    double dt = 0.4 * solver.max_stable_dt(state, valid, geom.cell_size(0),
                                           geom.cell_size(1));
    if (step == 0) dt *= 0.01;
    solver.advance(state, valid, geom.cell_size(0), geom.cell_size(1), dt);
    t += dt;
  }
  // density at the center must have dropped below ambient (rarefied core)
  const h::Prim center = eos14.to_prim(
      {state({n / 2, n / 2}, 0), state({n / 2, n / 2}, 1),
       state({n / 2, n / 2}, 2), state({n / 2, n / 2}, 3)});
  EXPECT_LT(center.rho, 1.0);
  // and a compressed ring must exist somewhere (max density > ambient)
  double rho_max = 0.0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) rho_max = std::max(rho_max, state({i, j}, 0));
  EXPECT_GT(rho_max, 1.2);
}

// ------------------------------------------------------------------- BCs

TEST(Bc, OutflowCopiesNearestInterior) {
  m::Fab fab(m::Box(0, 0, 7, 7).grow(2), 4);
  const m::Box domain(0, 0, 7, 7);
  fab.set_val(0.0);
  for (int j = 0; j <= 7; ++j)
    for (int i = 0; i <= 7; ++i) fab({i, j}, 0) = 1.0 + i;
  h::fill_domain_boundary(fab, domain, h::BcType::kOutflow);
  EXPECT_DOUBLE_EQ(fab({-1, 3}, 0), 1.0);   // copies i=0
  EXPECT_DOUBLE_EQ(fab({9, 3}, 0), 8.0);    // copies i=7
  EXPECT_DOUBLE_EQ(fab({-2, -2}, 0), 1.0);  // corner
}

TEST(Bc, ReflectNegatesNormalMomentum) {
  m::Fab fab(m::Box(0, 0, 7, 7).grow(1), h::kNCons);
  const m::Box domain(0, 0, 7, 7);
  fill_all(fab, h::Prim{1.0, 0.5, 0.25, 1.0});
  h::fill_domain_boundary(fab, domain, h::BcType::kReflect);
  EXPECT_DOUBLE_EQ(fab({-1, 3}, h::kUMx), -0.5);
  EXPECT_DOUBLE_EQ(fab({-1, 3}, h::kUMy), 0.25);
  EXPECT_DOUBLE_EQ(fab({3, -1}, h::kUMy), -0.25);
  EXPECT_DOUBLE_EQ(fab({3, -1}, h::kUMx), 0.5);
}

// ---------------------------------------------------------------- derive

TEST(Derive, PlotVariableSet) {
  EXPECT_EQ(h::num_plot_vars(), 8);
  EXPECT_EQ(h::plot_var_index("density"), 0);
  EXPECT_EQ(h::plot_var_index("MachNumber"), 7);
  EXPECT_THROW(h::plot_var_index("vorticity"), std::out_of_range);
}

TEST(Derive, ValuesConsistentWithState) {
  m::Fab state(m::Box(0, 0, 3, 3), h::kNCons);
  const h::Prim q{2.0, 1.0, 0.0, 1.0};
  for (int j = 0; j <= 3; ++j)
    for (int i = 0; i <= 3; ++i) set_prim(state, {i, j}, q);
  m::Fab out(m::Box(0, 0, 3, 3), h::num_plot_vars());
  h::derive_plot_vars(state, state.box(), out, eos14);
  EXPECT_DOUBLE_EQ(out({1, 1}, h::plot_var_index("density")), 2.0);
  EXPECT_DOUBLE_EQ(out({1, 1}, h::plot_var_index("x_velocity")), 1.0);
  EXPECT_NEAR(out({1, 1}, h::plot_var_index("pressure")), 1.0, 1e-12);
  const double mach = 1.0 / eos14.sound_speed(2.0, 1.0);
  EXPECT_NEAR(out({1, 1}, h::plot_var_index("MachNumber")), mach, 1e-12);
}

/// Tests for the observability layer (src/obs): span tracer determinism and
/// id scheme, the mixed-hash sink sharding (the rank % 64 stride fix), the
/// metrics registry (counters / gauges / log-bucketed histograms / series),
/// critical-path attribution, the Chrome-trace and metrics exporters, and the
/// span-nesting/edge invariants on a full 32-rank agg+bb dump+restart
/// pipeline run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/engine.hpp"
#include "iostats/trace.hpp"
#include "macsio/driver.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"
#include "obs/shard.hpp"
#include "obs/slack.hpp"
#include "obs/span.hpp"
#include "obs/stream.hpp"
#include "obs/whatif.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"

namespace obs = amrio::obs;
namespace mc = amrio::macsio;
namespace p = amrio::pfs;

namespace {

obs::Span make_span(int rank, const std::string& stage, double start,
                    double end, double wait = 0.0,
                    const std::string& resource = {}) {
  obs::Span s;
  s.rank = rank;
  s.stage = stage;
  s.start = start;
  s.end = end;
  s.wait = wait;
  s.resource = resource;
  return s;
}

}  // namespace

// ------------------------------------------------------------- sharding

TEST(RankShard, SpreadsStride64Ranks) {
  // The old `rank % 64` sharding mapped ranks 0, 64, 128, ... (one rank per
  // 64-rank node, a natural aggregator stride) onto ONE sink, serializing
  // every recorder call. The mixed hash must spread them.
  std::set<std::size_t> sinks;
  for (int rank = 0; rank < 64 * 64; rank += 64)
    sinks.insert(obs::rank_shard(rank, 64));
  EXPECT_GT(sinks.size(), 16u) << "stride-64 ranks collapsed onto few sinks";
}

TEST(RankShard, StableAndInRange) {
  for (int rank : {-1, 0, 1, 63, 64, 1 << 20}) {
    const std::size_t shard = obs::rank_shard(rank, 7);
    EXPECT_LT(shard, 7u);
    EXPECT_EQ(shard, obs::rank_shard(rank, 7));  // pure function
  }
}

TEST(TraceRecorder, TunableSinkCountStillMergesDeterministically) {
  amrio::iostats::TraceRecorder narrow(4);
  EXPECT_EQ(narrow.nsinks(), 4u);
  for (int rank = 0; rank < 128; ++rank)
    narrow.record_write(0, 0, rank, "f", 1);
  EXPECT_EQ(narrow.events().size(), 128u);
}

// --------------------------------------------------------------- tracer

TEST(Tracer, DeterministicIdsAndMergedOrder) {
  auto build = [] {
    obs::Tracer t;
    const auto a = t.record(make_span(0, "write", 0.0, 1.0));
    const auto b = t.record(make_span(1, "write", 0.5, 2.0));
    const auto c = t.record(make_span(0, "drain", 1.0, 3.0));
    t.edge(a, c);
    t.edge(b, c);
    return std::tuple{t.spans(), t.edges(), a, b, c};
  };
  const auto [spans1, edges1, a, b, c] = build();
  const auto [spans2, edges2, a2, b2, c2] = build();

  // id scheme: (rank+1) << 32 | per-rank seq, seq from 1 in program order
  EXPECT_EQ(a, (std::uint64_t{1} << 32) | 1);
  EXPECT_EQ(b, (std::uint64_t{2} << 32) | 1);
  EXPECT_EQ(c, (std::uint64_t{1} << 32) | 2);
  EXPECT_EQ(std::tuple(a, b, c), std::tuple(a2, b2, c2));

  // merged snapshot: ordered by (start, rank, id), identical across runs
  ASSERT_EQ(spans1.size(), 3u);
  EXPECT_EQ(spans1[0].id, a);
  EXPECT_EQ(spans1[1].id, b);
  EXPECT_EQ(spans1[2].id, c);
  ASSERT_EQ(edges1.size(), 2u);
  EXPECT_EQ(edges1[0].from, a);
  EXPECT_EQ(edges1[1].from, b);
  for (std::size_t i = 0; i < spans1.size(); ++i) {
    EXPECT_EQ(spans1[i].id, spans2[i].id);
    EXPECT_EQ(spans1[i].stage, spans2[i].stage);
  }
}

TEST(Tracer, ConcurrentRanksMergeToOneDeterministicStream) {
  // Per-rank program order is what matters: concurrent ranks recording into
  // the sharded sinks must yield the same merged snapshot as a serial pass.
  auto build = [](bool threaded) {
    obs::Tracer t(8);
    auto body = [&t](int rank) {
      for (int i = 0; i < 50; ++i)
        t.record(make_span(rank, "s", i, i + 0.5));
    };
    if (threaded) {
      std::vector<std::thread> workers;
      for (int rank = 0; rank < 16; ++rank) workers.emplace_back(body, rank);
      for (auto& w : workers) w.join();
    } else {
      for (int rank = 0; rank < 16; ++rank) body(rank);
    }
    return t.spans();
  };
  const auto serial = build(false);
  const auto threaded = build(true);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].id, threaded[i].id);
    EXPECT_EQ(serial[i].rank, threaded[i].rank);
    EXPECT_DOUBLE_EQ(serial[i].start, threaded[i].start);
  }
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesHistogramsSeries) {
  obs::MetricsRegistry m;
  m.add("bytes", 10);
  m.add("bytes", 32);
  m.gauge_set("depth", 3.0);
  m.gauge_set("depth", 2.0);  // last write wins
  m.gauge_max("peak", 5.0);
  m.gauge_max("peak", 4.0);  // max wins
  m.observe("lat", 3e-9, 1e-9);  // 3 units -> bucket 1 ([2,4))
  m.observe("lat", 0.0, 1e-9);   // zero units -> bucket -1
  m.observe("lat", 9e-9, 1e-9);  // 9 units -> bucket 3 ([8,16))
  m.sample("occ", 1.0, 100.0);
  m.sample("occ", 2.0, 50.0);

  const obs::MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("bytes"), 42);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("peak"), 5.0);
  const auto& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, 3);
  EXPECT_EQ(h.sum_units, 12);
  EXPECT_DOUBLE_EQ(h.sum(), 12e-9);
  EXPECT_DOUBLE_EQ(h.mean(), 4e-9);
  EXPECT_EQ(h.buckets.at(-1), 1);
  EXPECT_EQ(h.buckets.at(1), 1);
  EXPECT_EQ(h.buckets.at(3), 1);
  const auto& ts = snap.series.at("occ").samples;
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0].second, 100.0);
  EXPECT_DOUBLE_EQ(ts[1].second, 50.0);
}

TEST(Metrics, ConcurrentAddsCommute) {
  obs::MetricsRegistry m;
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w)
    workers.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) {
        m.add("n", 1);
        m.gauge_max("peak", static_cast<double>(i));
        m.observe("h", 2.5e-9, 1e-9);
      }
    });
  for (auto& w : workers) w.join();
  const auto snap = m.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 8000);
  EXPECT_DOUBLE_EQ(snap.gauges.at("peak"), 999.0);
  EXPECT_EQ(snap.histograms.at("h").count, 8000);
  EXPECT_EQ(snap.histograms.at("h").sum_units, 8000 * 3);  // llround(2.5) = 3
}

// -------------------------------------------------------- critical path

TEST(CriticalPath, EdgeWalkAttributesStagesAndBindingResource) {
  obs::Tracer t;
  const auto a = t.record(make_span(0, "write", 0.0, 2.0, 1.5, "ost_queue"));
  const auto b =
      t.record(make_span(1, "drain", 2.0, 5.0, 0.5, "drain_stream"));
  t.record(make_span(2, "write", 0.0, 1.0));  // off the path
  t.edge(a, b);

  const obs::CriticalPathReport cp = obs::critical_path(t.spans(), t.edges());
  EXPECT_DOUBLE_EQ(cp.makespan, 5.0);
  EXPECT_EQ(cp.critical_stage, "drain");
  EXPECT_DOUBLE_EQ(cp.critical_frac, 0.6);
  EXPECT_EQ(cp.binding_resource, "ost_queue");  // 1.5s > 0.5s of wait
  ASSERT_EQ(cp.chain.size(), 2u);
  EXPECT_EQ(cp.chain[0], a);
  EXPECT_EQ(cp.chain[1], b);
  double total = 0.0;
  for (const auto& s : cp.stages) total += s.seconds;
  EXPECT_DOUBLE_EQ(total, cp.makespan);  // attribution is exhaustive
}

TEST(CriticalPath, GapsBecomeCompute) {
  obs::Tracer t;
  t.record(make_span(0, "dump", 0.0, 1.0));
  t.record(make_span(0, "dump", 3.0, 5.0));  // 2s idle gap in between

  const obs::CriticalPathReport cp = obs::critical_path(t.spans(), t.edges());
  EXPECT_DOUBLE_EQ(cp.makespan, 5.0);
  double dump = 0.0, compute = 0.0;
  for (const auto& s : cp.stages) {
    if (s.stage == "dump") dump = s.seconds;
    if (s.stage == "compute") compute = s.seconds;
  }
  EXPECT_DOUBLE_EQ(dump, 3.0);
  EXPECT_DOUBLE_EQ(compute, 2.0);
  EXPECT_EQ(cp.critical_stage, "dump");
}

TEST(CriticalPath, EmptyStreamYieldsZeroReport) {
  const obs::CriticalPathReport cp = obs::critical_path({}, {});
  EXPECT_DOUBLE_EQ(cp.makespan, 0.0);
  EXPECT_TRUE(cp.stages.empty());
}

// ------------------------------------------------------------ exporters

TEST(Exporters, ChromeTraceSchemaAndDeterminism) {
  auto render = [] {
    obs::Tracer t;
    const auto a = t.record(make_span(-1, "dump", 0.0, 2.0));
    const auto b = t.record(make_span(3, "encode", 0.0, 1.0, 0.25, "cpu"));
    t.edge(b, a);
    std::ostringstream os;
    obs::write_chrome_trace(os, t.spans(), t.edges());
    return os.str();
  };
  const std::string json = render();
  EXPECT_EQ(json, render());  // byte-identical
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);  // tid 0
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow edge
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_s\""), std::string::npos);
  EXPECT_NE(json.find("\"resource\":\"cpu\""), std::string::npos);
}

TEST(Exporters, MetricsJsonAndCsv) {
  obs::MetricsRegistry m;
  m.add("requests", 7);
  m.gauge_max("peak", 3.5);
  m.observe("lat", 4e-9, 1e-9);
  m.observe("lat", 0.0, 1e-9);
  m.sample("occ", 0.5, 10.0);
  const auto snap = m.snapshot();

  std::ostringstream js;
  obs::write_metrics_json(js, snap);
  const std::string json = js.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  // Histogram buckets carry explicit [lo, hi) boundaries: 4e-9 at quantum
  // 1e-9 is 4 units -> log2 bucket 2 spanning [4*quantum, 8*quantum); the
  // exact-zero observation lands in the sentinel bucket -1 with lo == hi
  // == 0. A consumer never has to re-derive the log2 layout.
  EXPECT_NE(json.find("\"bucket\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bucket\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"lo\": 0"), std::string::npos);
  const std::size_t b2 = json.find("\"bucket\": 2");
  const std::size_t lo2 = json.find("\"lo\"", b2);
  const std::size_t hi2 = json.find("\"hi\"", b2);
  ASSERT_NE(lo2, std::string::npos);
  ASSERT_NE(hi2, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(json.substr(lo2 + 6)), 4e-9);
  EXPECT_DOUBLE_EQ(std::stod(json.substr(hi2 + 6)), 8e-9);

  std::ostringstream cs;
  obs::write_metrics_csv(cs, snap);
  const std::string csv = cs.str();
  EXPECT_EQ(csv.find("kind,name,key,value\n"), 0u);
  EXPECT_NE(csv.find("counter,requests,,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,2"), std::string::npos);
  EXPECT_NE(csv.find("sample,occ,"), std::string::npos);
}

// ------------------------------- full-pipeline span invariants (32 ranks)

namespace {

mc::Params pipeline_params() {
  mc::Params params;
  params.nprocs = 32;
  params.num_dumps = 2;
  params.part_size = 1500;
  params.avg_num_parts = 1.25;
  params.dataset_growth = 1.05;
  params.meta_size = 16;
  params.aggregators = 8;
  params.stage_to_bb = true;
  params.restart = true;
  params.restart_from_bb = true;
  params.codec = "ebl";
  params.validate();
  return params;
}

/// Runs the 32-rank agg+bb+ebl dump+restart pipeline against whatever sinks
/// `probe` carries: driver spans plus a BB-tier SimFs replay of each request
/// stream, replays adjacent to their driver phase (as macsio_proxy orders
/// them) so the dump and restart timelines land in separate ledger epochs.
void run_pipeline(amrio::exec::Engine& engine, const obs::Probe& probe) {
  const mc::Params params = pipeline_params();
  p::MemoryBackend backend(true);
  p::SimFsConfig cfg;
  cfg.bb.enabled = true;
  cfg.bb.nodes = 2;
  cfg.bb.ranks_per_node = 16;
  cfg.bb.capacity = 1 << 20;
  p::SimFs fs(cfg);

  const auto dump = mc::run_macsio(engine, params, backend, nullptr, probe);
  (void)fs.run(dump.requests, probe);
  if (probe.ledger != nullptr) probe.ledger->begin_epoch();
  const auto restart = mc::run_restart(engine, params, backend, nullptr, probe);
  (void)fs.run(restart.requests, probe);
}

/// One observed 32-rank agg+bb+ebl dump+restart pipeline over the serial
/// engine, buffered into a tracer.
struct PipelineObs {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  PipelineObs() {
    amrio::exec::SerialEngine engine(32);
    run_pipeline(engine, obs::Probe{&tracer, &metrics});
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(SpanInvariants, NoOrphansAndChildrenNestWithinParents) {
  PipelineObs run;
  const auto spans = run.tracer.spans();
  ASSERT_GT(spans.size(), 100u);  // every stage emitted something

  std::unordered_map<std::uint64_t, const obs::Span*> by_id;
  for (const auto& s : spans) {
    EXPECT_TRUE(by_id.emplace(s.id, &s).second) << "duplicate id " << s.id;
    EXPECT_GE(s.end, s.start);
  }
  constexpr double kEps = 1e-9;
  for (const auto& s : spans) {
    if (s.parent == 0) continue;
    const auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end()) << "orphan span " << s.stage << " id " << s.id;
    const obs::Span& parent = *it->second;
    EXPECT_GE(s.start, parent.start - kEps)
        << s.stage << " starts before parent " << parent.stage;
    EXPECT_LE(s.end, parent.end + kEps)
        << s.stage << " ends after parent " << parent.stage;
  }
  for (const auto& e : run.tracer.edges()) {
    const auto from = by_id.find(e.from);
    const auto to = by_id.find(e.to);
    ASSERT_NE(from, by_id.end()) << "edge from unknown span";
    ASSERT_NE(to, by_id.end()) << "edge to unknown span";
    // happens-before: the source cannot end after the destination ends
    EXPECT_LE(from->second->end, to->second->end + kEps)
        << from->second->stage << " -> " << to->second->stage;
  }

  // The full taxonomy showed up: write-side, ship, restart-side, BB tier.
  // No pfs_write here — with --staging bb every dump write is BB-tier; the
  // pfs_read spans come from the always-cold metadata read-back.
  std::set<std::string> stages;
  for (const auto& s : spans) stages.insert(s.stage);
  for (const char* expect :
       {"dump", "encode", "ship", "restart", "scatter", "decode", "bb_absorb",
        "bb_drain", "bb_prefetch", "bb_read", "pfs_read"})
    EXPECT_TRUE(stages.count(expect)) << "missing stage " << expect;
}

TEST(SpanInvariants, CriticalPathCoversTheMakespan) {
  PipelineObs run;
  const auto cp = obs::critical_path(run.tracer.spans(), run.tracer.edges());
  ASSERT_GT(cp.makespan, 0.0);
  double total = 0.0;
  for (const auto& s : cp.stages) total += s.seconds;
  // the acceptance bar is >= 95%; the construction gives exactly 100%
  EXPECT_GE(total, 0.95 * cp.makespan);
  EXPECT_LE(total, cp.makespan + 1e-9);
  EXPECT_FALSE(cp.critical_stage.empty());
  EXPECT_FALSE(cp.binding_resource.empty());
}

TEST(SpanInvariants, PipelineMetricsAreCoherent) {
  PipelineObs run;
  const auto snap = run.metrics.snapshot();
  // write side: every gatherv ship counted, bytes flowed through the tier
  EXPECT_GT(snap.counters.at("exec.gatherv.calls"), 0);
  EXPECT_GT(snap.counters.at("exec.scatterv.calls"), 0);
  EXPECT_GT(snap.counters.at("macsio.dumps"), 0);
  EXPECT_GT(snap.counters.at("macsio.restarts"), 0);
  EXPECT_GT(snap.counters.at("simfs.bb.absorb_bytes"), 0);
  EXPECT_GT(snap.counters.at("simfs.bb.drain_bytes"), 0);
  EXPECT_GT(snap.counters.at("simfs.bb.prefetch_bytes"), 0);
  EXPECT_GT(snap.counters.at("simfs.bb.read_bytes"), 0);
  // tier occupancy series exists and returns to zero after the drains
  const auto& occ = snap.series.at("bb.occupancy_bytes").samples;
  ASSERT_FALSE(occ.empty());
  EXPECT_DOUBLE_EQ(occ.back().second, 0.0);
  EXPECT_GT(snap.gauges.at("simfs.bb.peak_occupancy_bytes"), 0.0);
}

// ------------------------------------------------------------- sampling

TEST(TraceSample, SampleSetIsPureEvenlySpacedAndClamped) {
  const auto s1 = obs::TraceSample::sample_set(131072, 64);
  const auto s2 = obs::TraceSample::sample_set(131072, 64);
  EXPECT_EQ(s1, s2);  // pure function of (nranks, n)
  ASSERT_EQ(s1.size(), 64u);
  EXPECT_EQ(s1.front(), 0);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i],
              static_cast<int>(static_cast<std::int64_t>(i) * 131072 / 64));
    if (i > 0) {
      EXPECT_GT(s1[i], s1[i - 1]);
    }
  }
  EXPECT_LT(s1.back(), 131072);

  // n >= nranks degenerates to "every rank"
  const auto all = obs::TraceSample::sample_set(8, 100);
  ASSERT_EQ(all.size(), 8u);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
  EXPECT_TRUE(obs::TraceSample::sample_set(0, 4).empty());
  EXPECT_TRUE(obs::TraceSample::sample_set(16, 0).empty());
}

TEST(TraceSample, KeepsDriverSampledAndExtraRanks) {
  obs::TraceSample off;  // default: disabled, keeps everything
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.keep(1234));

  obs::TraceSample s;
  s.nranks = 100;
  s.sample = 4;  // sample set {0, 25, 50, 75}
  s.keep_extra = {37};
  s.seal();
  EXPECT_TRUE(s.enabled());
  EXPECT_TRUE(s.keep(-1));  // driver track is always kept
  EXPECT_TRUE(s.keep(0));
  EXPECT_TRUE(s.keep(75));
  EXPECT_TRUE(s.keep(37));  // caller-pinned (e.g. an aggregator)
  EXPECT_FALSE(s.keep(1));
  EXPECT_FALSE(s.keep(99));
}

// ------------------------------------------------------ streaming export

TEST(TraceStream, UnsampledStreamMatchesBufferedExportByteForByte) {
  // Buffered reference: the whole pipeline in memory, then one render.
  obs::Tracer tracer;
  obs::MetricsRegistry m1;
  {
    amrio::exec::SerialEngine engine(32);
    run_pipeline(engine, obs::Probe{&tracer, &m1});
  }
  std::ostringstream expect;
  obs::write_chrome_trace(expect, tracer.spans(), tracer.edges());

  // Streamed: tiny shard buffers force many spill runs, so the k-way merge
  // path (not just the in-memory remainders) produces the bytes.
  const std::string path = testing::TempDir() + "obs_stream_unsampled.json";
  obs::TraceStream::Options opt;
  opt.path = path;
  opt.shard_capacity = 16;
  obs::TraceStream stream(opt);
  obs::MetricsRegistry m2;
  {
    obs::Probe probe;
    probe.tracer = &stream;
    probe.metrics = &m2;
    amrio::exec::SerialEngine engine(32);
    run_pipeline(engine, probe);
  }
  ASSERT_GT(stream.spans_recorded(), 100u);
  EXPECT_EQ(stream.spans_recorded(), stream.spans_kept());  // no sampling
  stream.finish();
  EXPECT_EQ(read_file(path), expect.str());
  std::remove(path.c_str());
  EXPECT_FALSE(std::ifstream(path + ".spill").is_open())
      << "spill file survived finish()";
}

TEST(TraceStream, SampledStreamIsDeterministicAcrossEnginesAndRuns) {
  auto render = [](amrio::exec::Engine& engine, const std::string& path) {
    obs::TraceStream::Options opt;
    opt.path = path;
    opt.sample.nranks = 32;
    opt.sample.sample = 4;
    opt.sample.keep_extra = {0, 4, 8, 12, 16, 20, 24, 28};  // aggregators
    opt.shard_capacity = 32;
    obs::TraceStream stream(opt);
    obs::MetricsRegistry metrics;
    obs::Probe probe;
    probe.tracer = &stream;
    probe.metrics = &metrics;
    run_pipeline(engine, probe);
    EXPECT_LT(stream.spans_kept(), stream.spans_recorded());
    stream.finish();
    const std::string bytes = read_file(path);
    std::remove(path.c_str());
    return bytes;
  };
  const std::string base = testing::TempDir();
  amrio::exec::SerialEngine s1(32), s2(32);
  amrio::exec::EventEngine ev(32);
  const std::string a = render(s1, base + "obs_samp_a.json");
  const std::string b = render(s2, base + "obs_samp_b.json");
  const std::string c = render(ev, base + "obs_samp_c.json");
  EXPECT_EQ(a, b);  // run-to-run
  EXPECT_EQ(a, c);  // serial vs discrete-event engine
  // Dropped ranks folded into per-stage envelopes on the synthetic track.
  EXPECT_NE(a.find("\"aggregated\""), std::string::npos);
  EXPECT_NE(a.find("spans,"), std::string::npos);  // envelope detail text
}

// ------------------------------------------------------ resource ledger

TEST(ResourceLedger, EpochsConcatenateIndependentTimelines) {
  obs::ResourceLedger lg;
  lg.declare("r", 1);
  lg.add_busy("r", 1.0);
  lg.extend_makespan(1.0);
  lg.begin_epoch();  // second timeline restarts at t = 0
  lg.add_busy("r", 0.5);
  lg.queue_delta("r", 0.2, +1);  // epoch-relative; lands at 1.2 absolute
  lg.extend_makespan(0.5);

  const obs::UtilizationReport rep = lg.report();
  EXPECT_DOUBLE_EQ(rep.makespan, 1.5);  // sum of epoch maxima, not max
  ASSERT_EQ(rep.resources.size(), 1u);
  const obs::ResourceUtilization& u = rep.resources[0];
  EXPECT_DOUBLE_EQ(u.busy_s, 1.5);
  EXPECT_DOUBLE_EQ(u.idle_s, 0.0);
  EXPECT_DOUBLE_EQ(u.busy_frac, 1.0);
  EXPECT_EQ(u.queue_peak, 1);
  EXPECT_NEAR(u.queue_avg, 0.3 / 1.5, 1e-12);  // depth 1 over [1.2, 1.5]
}

TEST(ResourceLedger, PipelineConservesBusyPlusIdlePerResource) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::ResourceLedger ledger;
  obs::Probe probe;
  probe.tracer = &tracer;
  probe.metrics = &metrics;
  probe.ledger = &ledger;
  amrio::exec::SerialEngine engine(32);
  run_pipeline(engine, probe);

  const obs::UtilizationReport rep = ledger.report();
  ASSERT_GT(rep.makespan, 0.0);
  ASSERT_FALSE(rep.resources.empty());
  std::set<std::string> names;
  for (const obs::ResourceUtilization& u : rep.resources) {
    names.insert(u.name);
    const double pool = u.capacity * rep.makespan;
    // the conservation law: busy + idle = capacity * makespan, exactly
    EXPECT_NEAR(u.busy_s + u.idle_s, pool, 1e-9 * std::max(1.0, pool))
        << u.name;
    EXPECT_GE(u.busy_s, 0.0) << u.name;
    EXPECT_GE(u.idle_s, -1e-9) << u.name << " over-committed its pool";
    EXPECT_GE(u.busy_frac, 0.0) << u.name;
    EXPECT_LE(u.busy_frac, 1.0 + 1e-9) << u.name;
    EXPECT_GE(u.queue_peak, 0) << u.name;
  }
  // every modeled pool reported: MDS, OSTs, BB streams, link, codec CPUs
  for (const char* expect :
       {"mds", "ost[0]", "bb[0].ingest", "bb[0].drain", "bb[0].prefetch",
        "bb[0].read", "bb[1].drain", "agg_link", "codec_cpu"})
    EXPECT_TRUE(names.count(expect)) << "missing resource " << expect;
  EXPECT_FALSE(rep.top_summary().empty());
}

TEST(ResourceLedger, JsonAndTableRenderTheReport) {
  obs::ResourceLedger lg;
  lg.declare("ost[0]", 1);
  lg.add_busy("ost[0]", 0.25);
  lg.extend_makespan(1.0);
  const obs::UtilizationReport rep = lg.report();

  std::ostringstream os;
  obs::write_utilization_json(os, rep);
  const std::string json = os.str();
  for (const char* key : {"\"schema_version\": 1", "\"makespan\"",
                          "\"resources\"", "\"name\"", "\"capacity\"",
                          "\"busy_s\"", "\"idle_s\"", "\"busy_frac\"",
                          "\"queue_peak\"", "\"queue_avg\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // schema_version leads and the key order is pinned: the file is a stable,
  // diffable artifact.
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"makespan\""));
  std::ostringstream again;
  obs::write_utilization_json(again, rep);
  EXPECT_EQ(json, again.str());

  const std::string table = obs::utilization_table(rep);
  EXPECT_NE(table.find("resource"), std::string::npos);
  EXPECT_NE(table.find("ost[0]"), std::string::npos);
  EXPECT_NE(table.find("25.0%"), std::string::npos);
  EXPECT_EQ(rep.top_summary(), "ost[0] 25.0% busy");
}

// ------------------------------------------------------- CSV edge cases

TEST(Exporters, CsvQuotesNamesWithCommasAndQuotes) {
  obs::MetricsRegistry m;
  m.add("bytes,total", 7);       // comma would split the row
  m.add("say \"hi\"", 1);        // embedded quotes must double
  m.gauge_set("plain", 2.0);
  std::ostringstream os;
  obs::write_metrics_csv(os, m.snapshot());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,\"bytes,total\",,7"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"say \"\"hi\"\"\",,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,plain,,2"), std::string::npos);

  // The JSON side of the same names: RFC-8259 backslash escaping, so the
  // output stays parseable when metric names carry quotes.
  std::ostringstream js;
  obs::write_metrics_json(js, m.snapshot());
  const std::string json = js.str();
  EXPECT_NE(json.find("\"say \\\"hi\\\"\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes,total\": 7"), std::string::npos);
}

// ------------------------------------------------------- self-profiling

TEST(SelfProfiler, CountersGaugesAndPhasesAccumulate) {
  obs::SelfProfiler prof;
  prof.count("runs");
  prof.count("runs", 2);
  prof.gauge_max("peak", 3.0);
  prof.gauge_max("peak", 2.0);
  prof.gauge_set("last", 1.0);
  prof.gauge_set("last", 4.0);
  prof.phase_add("dump", 0.5);
  prof.phase_add("dump", 0.25);
  { obs::SelfProfiler::ScopedPhase ph(&prof, "scoped"); }
  { obs::SelfProfiler::ScopedPhase ph(nullptr, "noop"); }  // null-safe

  const obs::SelfProfSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.counters.at("runs"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("peak"), 3.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("last"), 4.0);
  EXPECT_DOUBLE_EQ(snap.phases.at("dump").wall_s, 0.75);
  EXPECT_EQ(snap.phases.at("dump").count, 2u);
  EXPECT_EQ(snap.phases.at("scoped").count, 1u);
  EXPECT_GE(snap.phases.at("scoped").wall_s, 0.0);
  EXPECT_EQ(snap.phases.count("noop"), 0u);

  std::ostringstream os;
  obs::write_selfprof_json(os, snap);
  const std::string json = os.str();
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"phases\"", "\"wall_s\"", "\"count\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(SelfProfiler, EventEnginePublishesSchedulerCounters) {
  obs::SelfProfiler prof;
  amrio::exec::EventEngine engine(64);
  engine.set_profiler(&prof);
  engine.run([](amrio::exec::RankCtx& ctx) {
    for (int i = 0; i < 3; ++i) ctx.barrier();
  });
  const obs::SelfProfSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.counters.at("engine.event.runs"), 1u);
  // every barrier resumption is a context switch; 64 ranks x 3 barriers
  EXPECT_GT(snap.counters.at("engine.event.context_switches"), 100u);
  EXPECT_GE(snap.gauges.at("engine.event.ready_queue_peak"), 1.0);
  EXPECT_EQ(snap.phases.at("engine.event.run").count, 1u);
}

TEST(SelfProfiler, SerialEnginePublishesWallPhase) {
  obs::SelfProfiler prof;
  amrio::exec::SerialEngine engine(4);
  engine.set_profiler(&prof);
  engine.run([](amrio::exec::RankCtx& ctx) { ctx.barrier(); });
  const obs::SelfProfSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.counters.at("engine.serial.runs"), 1u);
  EXPECT_EQ(snap.phases.at("engine.serial.run").count, 1u);
}

// --------------------------------------------------- slack analysis

TEST(Slack, DependencyOnlyEarliestAndBackwardSlack) {
  obs::Tracer t;
  // rank 0: A [0,2] -> (1s release lag) -> B [3,5]; rank 1: C [0,1] idles.
  t.record(make_span(0, "write", 0.0, 2.0));
  t.record(make_span(0, "drain", 3.0, 5.0));
  t.record(make_span(1, "write", 0.0, 1.0));
  const auto spans = t.spans();
  const auto rep = obs::slack_analysis(spans, t.edges(), 3);
  ASSERT_EQ(rep.spans.size(), 3u);
  EXPECT_DOUBLE_EQ(rep.t1, 5.0);
  // Input order is (start, rank, id): A, C, B.
  const auto& a = rep.spans[0];
  const auto& c = rep.spans[1];
  const auto& b = rep.spans[2];
  // Earliest drops the program-order release lag (it is queueing, not
  // structure, from the earliest-start point of view)...
  EXPECT_DOUBLE_EQ(b.earliest_start, 2.0);
  // ...but the backward pass preserves it, so A and B are both critical.
  EXPECT_NEAR(a.slack, 0.0, 1e-12);
  EXPECT_NEAR(b.slack, 0.0, 1e-12);
  EXPECT_NEAR(c.slack, 4.0, 1e-12);  // idle rank: t1 - end
  ASSERT_GE(rep.near_critical.size(), 2u);
  EXPECT_NEAR(rep.near_critical[0].slack, 0.0, 1e-12);
  EXPECT_EQ(rep.near_critical[0].chain.size(), 2u);  // A -> B
  EXPECT_LE(rep.near_critical[0].slack, rep.near_critical[1].slack);
}

TEST(Slack, InvariantsHoldOnThePipelineRun) {
  PipelineObs run;
  const auto spans = run.tracer.spans();
  const auto edges = run.tracer.edges();
  const auto rep = obs::slack_analysis(spans, edges, 3);
  const auto cp = obs::critical_path(spans, edges);
  constexpr double kEps = 1e-9;

  // Same window as critical_path — the two attributions reconcile.
  EXPECT_NEAR(rep.t0, cp.t0, kEps);
  EXPECT_NEAR(rep.t1, cp.t1, kEps);
  EXPECT_NEAR(rep.makespan, cp.makespan, kEps);
  double cp_total = 0.0;
  for (const auto& s : cp.stages) cp_total += s.seconds;
  EXPECT_NEAR(cp_total, rep.makespan, kEps);

  // Structural invariants: the recorded schedule is feasible in the model.
  ASSERT_EQ(rep.spans.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(rep.spans[i].slack, -kEps) << spans[i].stage;
    EXPECT_LE(rep.spans[i].earliest_start, spans[i].start + kEps)
        << spans[i].stage;
    EXPECT_GE(rep.spans[i].latest_end, spans[i].end - kEps) << spans[i].stage;
  }

  // The critical chain: zero terminal slack, every span on it zero-slack,
  // ends at the t1 span, and the paths come out slack-ascending.
  ASSERT_FALSE(rep.near_critical.empty());
  const auto& crit = rep.near_critical[0];
  ASSERT_FALSE(crit.chain.empty());
  EXPECT_NEAR(crit.slack, 0.0, kEps);
  for (std::size_t i : crit.chain) EXPECT_LE(rep.spans[i].slack, kEps);
  EXPECT_NEAR(spans[crit.chain.back()].end, rep.t1, kEps);
  for (std::size_t k = 1; k < rep.near_critical.size(); ++k)
    EXPECT_LE(rep.near_critical[k - 1].slack,
              rep.near_critical[k].slack + kEps);

  // Chain coverage telescopes: span durations plus inter-span lags equal
  // the window from the chain head to t1.
  double covered = 0.0;
  for (std::size_t k = 0; k < crit.chain.size(); ++k) {
    const obs::Span& s = spans[crit.chain[k]];
    covered += s.end - s.start;
    if (k + 1 < crit.chain.size())
      covered += spans[crit.chain[k + 1]].start - s.end;
  }
  EXPECT_NEAR(covered, rep.t1 - spans[crit.chain.front()].start, 1e-6);
}

// --------------------------------------------------- what-if replay

TEST(WhatIf, ScalesMatchedServiceAndWaitKeepsFixed) {
  obs::Tracer t;
  {
    obs::Span a = make_span(0, "pfs_write", 0.0, 2.0);
    a.service = 2.0;
    a.res = "ost[0]";
    t.record(std::move(a));
  }
  {
    // 0.5s fixed release lag after A, then 1s queue wait + 1s service.
    obs::Span b = make_span(0, "pfs_write", 2.5, 4.5, 1.0, "ost_queue");
    b.service = 1.0;
    b.res = "ost[1]";
    t.record(std::move(b));
  }
  obs::Scenario sc;
  sc.resource = "ost";
  sc.factor = 2.0;
  sc.service_scale = 0.5;
  sc.wait_scale = 0.5;
  const auto res = obs::what_if(t.spans(), t.edges(), sc);
  EXPECT_DOUBLE_EQ(res.baseline_makespan, 4.5);
  // A' = [0,1]; B starts at 1 + 0.5 lag, runs 0.5 wait + 0.5 service.
  EXPECT_NEAR(res.predicted_makespan, 2.5, 1e-12);

  obs::Scenario other;
  other.resource = "agg_link";
  other.factor = 2.0;
  other.service_scale = 0.5;
  other.wait_scale = 0.5;
  const auto none = obs::what_if(t.spans(), t.edges(), other);
  EXPECT_DOUBLE_EQ(none.predicted_makespan, 4.5);  // nothing matches
}

TEST(WhatIf, StandardScenariosUseEffectiveScales) {
  obs::ReliefKnobs knobs;
  knobs.ost_bandwidth = 0.8e9;
  knobs.client_bandwidth = 3.0e9;
  knobs.drain_bandwidth = 0.5e9;
  const auto scs = obs::standard_scenarios(2.0, knobs);
  ASSERT_EQ(scs.size(), 4u);
  EXPECT_EQ(scs[0].resource, "ost");
  EXPECT_NEAR(scs[0].service_scale, 0.5, 1e-12);  // client does not bind
  EXPECT_EQ(scs[1].resource, "bb_drain");
  // min(0.5, 0.8) / min(1.0, 0.8): the OST caps the relieved drain.
  EXPECT_NEAR(scs[1].service_scale, 0.625, 1e-12);
  EXPECT_EQ(scs[2].resource, "agg_link");
  EXPECT_NEAR(scs[2].service_scale, 0.5, 1e-12);
  EXPECT_EQ(scs[3].resource, "codec_cpu");
  EXPECT_NEAR(scs[3].service_scale, 0.5, 1e-12);

  // A slower client NIC makes extra OST bandwidth worthless.
  knobs.client_bandwidth = 0.4e9;
  const auto capped = obs::standard_scenarios(2.0, knobs);
  EXPECT_NEAR(capped[0].service_scale, 1.0, 1e-12);
}

// ------------------------- what-if vs re-simulation (pinned 32-rank grid)

namespace {

mc::Params grid_params(const std::string& mode, const std::string& codec) {
  mc::Params params;
  params.nprocs = 32;
  params.num_dumps = 2;
  params.part_size = 1 << 22;
  params.avg_num_parts = 1.0;
  params.codec = codec;
  if (codec == "ebl") params.codec_throughput = 0.25e9;
  if (mode == "agg") {
    params.aggregators = 8;
    params.agg_link_bandwidth = 2.0e9;
  }
  if (mode == "bb") params.stage_to_bb = true;
  params.validate();
  return params;
}

p::SimFsConfig grid_fs(bool bb) {
  p::SimFsConfig cfg;
  cfg.n_ost = 32;
  cfg.ost_bandwidth = 0.8e9;
  cfg.client_bandwidth = 3.0e9;
  if (bb) {
    cfg.bb.enabled = true;
    cfg.bb.nodes = 2;
    cfg.bb.ranks_per_node = 16;
    // Drain-limited even at 2x relief (2 * 0.25e9 < ost_bandwidth), so the
    // drain stream stays the binding rate and its queues stay backlog-bound
    // — the regime the what-if wait scaling models.
    cfg.bb.drain_bandwidth = 0.25e9;
    cfg.bb.drain_concurrency = 2;
  }
  return cfg;
}

struct GridTrace {
  std::vector<obs::Span> spans;
  std::vector<obs::SpanEdge> edges;
};

template <class EngineT>
GridTrace run_grid(const mc::Params& params, const p::SimFsConfig& cfg) {
  obs::Tracer tracer;
  obs::Probe probe;
  probe.tracer = &tracer;
  p::MemoryBackend backend(false);
  EngineT engine(params.nprocs);
  const auto dump = mc::run_macsio(engine, params, backend, nullptr, probe);
  p::SimFs fs(cfg);
  (void)fs.run(dump.requests, probe);
  return {tracer.spans(), tracer.edges()};
}

double grid_makespan(const std::vector<obs::Span>& spans) {
  double t1 = 0.0;
  for (const obs::Span& s : spans) t1 = std::max(t1, s.end);
  return t1;
}

/// The acceptance grid: for every {direct, agg, bb} x {identity, ebl} cell
/// and every standard single-resource 2x relief, the what-if prediction
/// must land within 5% of an actual re-simulation with that knob doubled.
template <class EngineT>
void check_grid_tolerance() {
  for (const char* mode : {"direct", "agg", "bb"}) {
    for (const char* codec : {"identity", "ebl"}) {
      const mc::Params params = grid_params(mode, codec);
      const p::SimFsConfig cfg = grid_fs(std::string(mode) == "bb");
      const GridTrace base = run_grid<EngineT>(params, cfg);
      const double baseline = grid_makespan(base.spans);
      ASSERT_GT(baseline, 0.0);

      obs::ReliefKnobs knobs;
      knobs.ost_bandwidth = cfg.ost_bandwidth;
      knobs.client_bandwidth = cfg.client_bandwidth;
      knobs.drain_bandwidth = cfg.bb.drain_bandwidth;
      for (const obs::Scenario& sc : obs::standard_scenarios(2.0, knobs)) {
        const auto pred = obs::what_if(base.spans, base.edges, sc);
        EXPECT_NEAR(pred.baseline_makespan, baseline, 1e-9);

        mc::Params relieved = params;
        p::SimFsConfig rcfg = cfg;
        if (sc.resource == "ost") {
          rcfg.ost_bandwidth *= 2.0;
        } else if (sc.resource == "bb_drain") {
          rcfg.bb.drain_bandwidth *= 2.0;
        } else if (sc.resource == "agg_link") {
          relieved.agg_link_bandwidth *= 2.0;
        } else if (sc.resource == "codec_cpu") {
          if (relieved.codec_throughput > 0.0)
            relieved.codec_throughput *= 2.0;
        }
        const GridTrace resim = run_grid<EngineT>(relieved, rcfg);
        const double actual = grid_makespan(resim.spans);
        const std::string label = std::string(mode) + "/" + codec + " 2x " +
                                  sc.resource;
        EXPECT_NEAR(pred.predicted_makespan, actual, 0.05 * actual) << label;
        EXPECT_LE(pred.predicted_makespan, baseline + 1e-9) << label;

        // Non-vacuity: the reliefs that should bite on this cell really do.
        // (Under ebl the encode gate dominates, so OST relief legitimately
        // buys little — require any improvement rather than 10%.)
        if (sc.resource == "ost" && std::string(mode) != "bb") {
          if (std::string(codec) == "identity") {
            EXPECT_LT(actual, 0.90 * baseline) << label;
          } else {
            EXPECT_LT(actual, baseline) << label;
          }
        }
        if (sc.resource == "bb_drain" && std::string(mode) == "bb") {
          EXPECT_LT(actual, 0.95 * baseline) << label;
        }
        if (sc.resource == "codec_cpu" && std::string(codec) == "ebl") {
          EXPECT_LT(actual, baseline) << label;
        }
        if (sc.resource == "agg_link" && std::string(mode) == "agg") {
          EXPECT_LT(actual, baseline) << label;
        }
      }
    }
  }
}

}  // namespace

TEST(WhatIf, TwoXReliefWithin5PctOfResimSerialEngine) {
  check_grid_tolerance<amrio::exec::SerialEngine>();
}

TEST(WhatIf, TwoXReliefWithin5PctOfResimEventEngine) {
  check_grid_tolerance<amrio::exec::EventEngine>();
}

// ----------------------------------------------------- explain reports

TEST(Explain, RanksResourcesAndWritesStableJson) {
  PipelineObs run;
  obs::ResourceLedger ledger;
  {
    amrio::exec::SerialEngine engine(32);
    obs::Probe probe;
    probe.ledger = &ledger;
    run_pipeline(engine, probe);
  }
  obs::ReliefKnobs knobs;
  knobs.ost_bandwidth = 1e9;    // pipeline_params run uses SimFs defaults
  knobs.client_bandwidth = 2e9;
  knobs.drain_bandwidth = 2e9;
  const auto rep = obs::explain(run.tracer.spans(), run.tracer.edges(),
                                ledger.report(), knobs);
  ASSERT_EQ(rep.resources.size(), 4u);
  EXPECT_GT(rep.makespan, 0.0);
  EXPECT_FALSE(rep.critical_stage.empty());
  for (std::size_t i = 1; i < rep.resources.size(); ++i)
    EXPECT_GE(rep.resources[i - 1].shadow_price,
              rep.resources[i].shadow_price);
  for (const auto& r : rep.resources) {
    EXPECT_LE(r.predicted_20, rep.makespan + 1e-9) << r.resource;
    EXPECT_LE(r.predicted_15, rep.makespan + 1e-9) << r.resource;
    EXPECT_GE(r.exposure, 0.0) << r.resource;
    EXPECT_GE(r.utilization, 0.0) << r.resource;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << r.resource;
  }

  std::ostringstream o1, o2;
  obs::write_explain_json(o1, rep);
  obs::write_explain_json(o2, rep);
  EXPECT_EQ(o1.str(), o2.str());  // byte-stable
  const std::string json = o1.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  for (const char* key :
       {"\"makespan\"", "\"critical_stage\"", "\"binding_resource\"",
        "\"resources\"", "\"utilization\"", "\"exposure_s\"",
        "\"predicted_makespan_1_5x\"", "\"predicted_makespan_2x\"",
        "\"shadow_price_s\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // schema_version leads the object — byte-stable diffing anchors on it.
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"makespan\""));

  const std::string table = obs::explain_table(rep);
  EXPECT_NE(table.find("shadow_s/x"), std::string::npos);
  EXPECT_NE(table.find("makespan@2x"), std::string::npos);
}

// ------------------------------- envelope critical-path approximation

TEST(TraceStream, EnvelopeSpansApproximateTheCriticalPath) {
  const std::string path = testing::TempDir() + "obs_envelope_trace.json";
  obs::TraceStream::Options opt;
  opt.path = path;
  opt.sample.nranks = 32;
  opt.sample.sample = 4;  // drop most ranks: envelopes still cover them all
  obs::TraceStream stream(opt);
  obs::Probe probe;
  probe.tracer = &stream;
  {
    amrio::exec::SerialEngine engine(32);
    run_pipeline(engine, probe);
  }
  const auto envelopes = stream.envelope_spans();
  stream.finish();
  std::remove(path.c_str());
  std::remove((path + ".spill").c_str());

  ASSERT_FALSE(envelopes.empty());
  std::set<std::string> stages;
  double t1 = 0.0;
  for (const auto& s : envelopes) {
    EXPECT_TRUE(stages.insert(s.stage).second)
        << "one envelope per stage: " << s.stage;
    EXPECT_GE(s.end, s.start);
    t1 = std::max(t1, s.end);
  }
  for (const char* expect : {"dump", "encode", "ship", "bb_absorb",
                             "bb_drain", "bb_prefetch", "bb_read"})
    EXPECT_TRUE(stages.count(expect)) << "missing envelope " << expect;

  // The approximation feeds the regular analyzer: full coverage, a named
  // critical stage, and a binding resource from the dominant waits.
  const auto cp = obs::critical_path(envelopes, {});
  EXPECT_NEAR(cp.t1, t1, 1e-9);
  double total = 0.0;
  for (const auto& s : cp.stages) total += s.seconds;
  EXPECT_NEAR(total, cp.makespan, 1e-9);
  EXPECT_FALSE(cp.critical_stage.empty());
  EXPECT_FALSE(cp.binding_resource.empty());
}

// -------------------------------------------- machine-scale export smoke

TEST(TraceStreamScale, EventEngine131kSampledExportStaysBounded) {
  // The tentpole scenario: a 131,072-rank event-engine dump streamed through
  // bounded shard buffers with 64-rank sampling. Peak resident spans must
  // respect the nsinks x shard_capacity bound and the output file must stay
  // small enough to load in Perfetto, no matter how many spans the run emits.
  constexpr int kRanks = 131072;
  mc::Params params;
  params.nprocs = kRanks;
  params.num_dumps = 1;
  params.part_size = 1000;
  params.avg_num_parts = 1.0;
  params.validate();

  const std::string path = testing::TempDir() + "obs_131k_sampled.json";
  obs::TraceStream::Options opt;
  opt.path = path;
  opt.sample.nranks = kRanks;
  opt.sample.sample = 64;
  opt.shard_capacity = 512;
  obs::TraceStream stream(opt);
  obs::Probe probe;
  probe.tracer = &stream;

  p::MemoryBackend backend(false);
  amrio::exec::EventEngine engine(kRanks);
  const auto dump = mc::run_macsio(engine, params, backend, nullptr, probe);
  p::SimFsConfig cfg;
  p::SimFs fs(cfg);
  (void)fs.run(dump.requests, probe);  // one pfs_write span per rank
  stream.finish();

  EXPECT_GT(stream.spans_recorded(), 100000u);  // the run really was huge
  EXPECT_LT(stream.spans_kept(), 10000u);       // sampling really dropped
  EXPECT_LE(stream.peak_buffered_spans(), opt.shard_capacity * 64)
      << "per-shard buffers exceeded their bound";

  const std::string bytes = read_file(path);
  std::remove(path.c_str());
  EXPECT_LT(bytes.size(), 4u << 20) << "sampled trace not bounded";
  EXPECT_EQ(bytes.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(bytes.find("\"aggregated\""), std::string::npos);
  EXPECT_EQ(bytes.back(), '\n');
}

/// Tests for the analytical model layer: regression, Eq. (3) part_size fit,
/// growth calibration recovery of known ground truth, translation (Listing 1),
/// the growth-guess interpolation table, and iostats aggregation (Eqs. 1–2).

#include <gtest/gtest.h>

#include <cmath>

#include "iostats/aggregate.hpp"
#include "macsio/driver.hpp"
#include "model/calibrate.hpp"
#include "model/partsize.hpp"
#include "model/regression.hpp"
#include "model/translate.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace md = amrio::model;
namespace io = amrio::iostats;

// ------------------------------------------------------------ regression

TEST(Regression, ExactLineRecovered) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 + 2.0 * v);
  const auto fit = md::fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-10);
}

TEST(Regression, NoisyDataReasonableR2) {
  amrio::util::Xoshiro256 rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i + 10.0 + rng.normal() * 20.0);
  }
  const auto fit = md::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 5.0, 0.2);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(Regression, DegenerateInputsRejected) {
  std::vector<double> x{1.0};
  std::vector<double> y{2.0};
  EXPECT_THROW(md::fit_linear(x, y), amrio::ContractViolation);
  std::vector<double> same_x{2.0, 2.0, 2.0};
  std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(md::fit_linear(same_x, ys), amrio::ContractViolation);
}

TEST(Regression, PowerLawRecovered) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 40; ++i) {
    x.push_back(i);
    y.push_back(2.5 * std::pow(static_cast<double>(i), 1.3));
  }
  const auto fit = md::fit_power(x, y);
  EXPECT_NEAR(fit.a, 2.5, 1e-9);
  EXPECT_NEAR(fit.b, 1.3, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

// --------------------------------------------------------------- Eq. (3)

TEST(PartSize, ForwardModelEq3) {
  // part_size = f * 8 * Nx*Ny / nprocs, the paper's example:
  // 23.65 * 512² * 8 / 32 ≈ 1550000
  const auto ps = md::part_size_model(23.65, 512 * 512, 32);
  EXPECT_NEAR(static_cast<double>(ps), 1550000.0, 2000.0);
}

TEST(PartSize, Dump0BytesMonotoneInPartSize) {
  amrio::macsio::Params base;
  base.nprocs = 4;
  std::uint64_t prev = 0;
  for (std::uint64_t ps : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const auto bytes = md::macsio_dump0_bytes(base, ps);
    EXPECT_GT(bytes, prev);
    prev = bytes;
  }
}

TEST(PartSize, FitHitsTarget) {
  amrio::macsio::Params base;
  base.nprocs = 8;
  const double target = 5.0e7;
  const auto fit = md::fit_part_size(base, target, 256 * 256);
  EXPECT_LT(fit.rel_error, 0.01);
  // forward-check the fitted part size
  const auto achieved = md::macsio_dump0_bytes(base, fit.part_size);
  EXPECT_NEAR(static_cast<double>(achieved), target, 0.01 * target);
  // implied f consistent with Eq. (3)
  EXPECT_NEAR(fit.f, static_cast<double>(fit.part_size) * 8 / (8.0 * 256 * 256),
              1e-9);
}

TEST(PartSize, JsonInterfaceImpliesInflatedF) {
  // target equals what a binary writer would produce for ncells doubles:
  // because miftmpl writes 24 text bytes per value, the fitted f must be
  // well below the naive 1.0 — the part_size request shrinks to compensate.
  amrio::macsio::Params base;
  base.nprocs = 1;
  const std::int64_t ncells = 128 * 128;
  const double target = 8.0 * ncells;  // pure binary equivalent
  const auto fit = md::fit_part_size(base, target, ncells);
  EXPECT_LT(fit.f, 0.5);
  EXPECT_GT(fit.f, 0.2);
}

// ------------------------------------------------------------ calibration

TEST(Calibrate, ObjectiveZeroForIdenticalSeries) {
  std::vector<double> s{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(md::series_objective(s, s), 0.0);
}

TEST(Calibrate, ObjectiveIsRmsRelative) {
  std::vector<double> proxy{110.0, 90.0};
  std::vector<double> target{100.0, 100.0};
  EXPECT_NEAR(md::series_objective(proxy, target), 0.1, 1e-12);
}

TEST(Calibrate, RecoversKnownGrowth) {
  // generate a target series from MACSio itself at a known growth, then ask
  // the calibrator to find it
  amrio::macsio::Params truth;
  truth.nprocs = 4;
  truth.part_size = 200000;
  truth.num_dumps = 15;
  truth.dataset_growth = 1.0131;
  const auto target = md::macsio_per_dump_bytes(truth);

  amrio::macsio::Params base = truth;
  base.dataset_growth = 1.0;
  const auto result = md::calibrate_growth(base, target, 1.0, 1.05, 20);
  EXPECT_NEAR(result.best_growth, 1.0131, 5e-4);
  EXPECT_LT(result.best_objective, 0.01);
  EXPECT_GE(result.iterates.size(), 10u);
}

TEST(Calibrate, IteratesConverge) {
  amrio::macsio::Params truth;
  truth.nprocs = 2;
  truth.part_size = 50000;
  truth.num_dumps = 10;
  truth.dataset_growth = 1.02;
  const auto target = md::macsio_per_dump_bytes(truth);
  amrio::macsio::Params base = truth;
  base.dataset_growth = 1.0;
  const auto result = md::calibrate_growth(base, target, 1.0, 1.05, 16);
  // Fig. 9 behaviour: the best objective among the first 4 iterates is worse
  // than (or equal to) the final
  double early_best = 1e300;
  for (std::size_t i = 0; i < 4 && i < result.iterates.size(); ++i)
    early_best = std::min(early_best, result.iterates[i].objective);
  EXPECT_LE(result.best_objective, early_best + 1e-15);
  // every iterate carries a full proxy series
  for (const auto& it : result.iterates)
    EXPECT_EQ(it.per_dump.size(), target.size());
}

TEST(Calibrate, PerDumpBytesMatchDriverExactly) {
  // the closed-form sizing used by the calibrator must equal what the actual
  // driver writes (minus nothing: root file included via constant)
  amrio::macsio::Params p;
  p.nprocs = 3;
  p.part_size = 12345;
  p.num_dumps = 4;
  p.dataset_growth = 1.07;
  p.meta_size = 17;
  const auto predicted = md::macsio_per_dump_bytes(p);
  amrio::pfs::MemoryBackend be(false);
  const auto stats = amrio::macsio::run_macsio(p, be);
  ASSERT_EQ(predicted.size(), stats.bytes_per_dump.size());
  for (std::size_t d = 0; d < predicted.size(); ++d) {
    EXPECT_DOUBLE_EQ(predicted[d], static_cast<double>(stats.bytes_per_dump[d]))
        << "dump " << d;
  }
}

TEST(Calibrate, RejectsNonPositiveTargets) {
  amrio::macsio::Params base;
  std::vector<double> bad{100.0, 0.0};
  EXPECT_THROW(md::calibrate_growth(base, bad), amrio::ContractViolation);
}

// ------------------------------------------------------------ translation

TEST(Translate, StaticMappingFollowsListing1) {
  auto inputs = amrio::amr::AmrInputs::sedov_baseline();
  inputs.nprocs = 16;
  inputs.max_step = 200;
  inputs.plot_int = 10;
  const auto params = md::static_translation(inputs);
  EXPECT_EQ(params.interface, amrio::macsio::Interface::kMiftmpl);
  EXPECT_EQ(params.file_mode, amrio::macsio::FileMode::kMif);
  EXPECT_EQ(params.nprocs, 16);
  // --num_dumps max_step/plot_int (+ the step-0 dump)
  EXPECT_EQ(params.num_dumps, 21);
  EXPECT_DOUBLE_EQ(params.avg_num_parts, 1.0);
  EXPECT_EQ(params.vars_per_part, 1);
}

TEST(Translate, FullTranslationProducesRunnableParams) {
  auto inputs = amrio::amr::AmrInputs::sedov_baseline();
  inputs.n_cell = {64, 64};
  inputs.nprocs = 4;
  md::RunMeasurements meas;
  meas.first_output_bytes = 1.0e6;
  meas.per_step_bytes = {1.0e6, 1.1e6, 1.2e6, 1.35e6, 1.5e6};
  meas.mean_step_seconds = 0.25;
  meas.metadata_bytes_per_task = 512;
  const auto result = md::translate(inputs, meas);
  EXPECT_NO_THROW(result.params.validate());
  EXPECT_EQ(result.params.num_dumps, 5);
  EXPECT_GT(result.params.dataset_growth, 1.0);
  EXPECT_GT(result.params.part_size, 0u);
  EXPECT_NE(result.command_line.find("--dataset_growth"), std::string::npos);
  EXPECT_LT(result.part_size_fit.rel_error, 0.02);
}

TEST(GrowthGuess, ExactHitAndInterpolation) {
  md::GrowthGuess table;
  table.add(0.3, 2, 1.005);
  table.add(0.6, 2, 1.010);
  table.add(0.3, 4, 1.015);
  table.add(0.6, 4, 1.022);
  EXPECT_DOUBLE_EQ(table.interpolate(0.3, 2), 1.005);
  // interior point between all four: inside the convex range
  const double mid = table.interpolate(0.45, 3);
  EXPECT_GT(mid, 1.005);
  EXPECT_LT(mid, 1.022);
  // the paper's rule: greater cfl and more levels → greater growth
  EXPECT_GT(table.interpolate(0.6, 4), table.interpolate(0.3, 2));
}

TEST(GrowthGuess, EmptyTableThrows) {
  md::GrowthGuess table;
  EXPECT_THROW(table.interpolate(0.5, 3), amrio::ContractViolation);
}

// ----------------------------------------------------------- iostats Eq.1

TEST(Aggregate, SizeTableFromEvents) {
  std::vector<io::IoEvent> events;
  io::IoEvent e;
  e.op = io::IoEvent::Op::kWrite;
  e.step = 0;
  e.level = 0;
  e.rank = 0;
  e.bytes = 100;
  events.push_back(e);
  events.push_back(e);  // second write to same key accumulates
  e.rank = 1;
  e.bytes = 50;
  events.push_back(e);
  e.op = io::IoEvent::Op::kCreate;  // non-write ignored
  events.push_back(e);
  const auto table = io::aggregate(events);
  EXPECT_EQ(table.at({0, 0, 0}), 200u);
  EXPECT_EQ(table.at({0, 0, 1}), 50u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(Aggregate, CumulativeSeriesEq1) {
  io::SizeTable table;
  table[{0, 0, 0}] = 1000;
  table[{0, -1, -1}] = 10;  // metadata included in totals
  table[{20, 0, 0}] = 2000;
  table[{40, 0, 0}] = 4000;
  const auto s = io::cumulative_series(table, 1024);
  ASSERT_EQ(s.steps.size(), 3u);
  // Eq. (1): x = output_counter * ncells with counter = 1,2,3
  EXPECT_DOUBLE_EQ(s.x[0], 1.0 * 1024);
  EXPECT_DOUBLE_EQ(s.x[2], 3.0 * 1024);
  EXPECT_DOUBLE_EQ(s.per_step[0], 1010.0);
  EXPECT_DOUBLE_EQ(s.y[2], 1010.0 + 2000.0 + 4000.0);
}

TEST(Aggregate, PerLevelSeriesFilters) {
  io::SizeTable table;
  table[{0, 0, 0}] = 100;
  table[{0, 1, 0}] = 50;
  table[{10, 0, 0}] = 100;
  table[{10, 1, 0}] = 75;
  const auto l1 = io::cumulative_series_level(table, 64, 1);
  ASSERT_EQ(l1.per_step.size(), 2u);
  EXPECT_DOUBLE_EQ(l1.per_step[0], 50.0);
  EXPECT_DOUBLE_EQ(l1.per_step[1], 75.0);
  EXPECT_DOUBLE_EQ(l1.y[1], 125.0);
}

TEST(Aggregate, PerTaskBytesAndImbalance) {
  io::SizeTable table;
  table[{5, 2, 0}] = 100;
  table[{5, 2, 1}] = 300;
  table[{5, 2, 3}] = 0;
  const auto per_task = io::per_task_bytes(table, 5, 2, 4);
  EXPECT_EQ(per_task, (std::vector<std::uint64_t>{100, 300, 0, 0}));
  EXPECT_DOUBLE_EQ(io::task_imbalance(table, 5, 2, 4), 3.0);
}

TEST(Aggregate, StepAndLevelQueries) {
  io::SizeTable table;
  table[{0, -1, -1}] = 5;
  table[{0, 0, 0}] = 10;
  table[{0, 1, 0}] = 20;
  EXPECT_EQ(io::step_bytes(table, 0), 35u);
  EXPECT_EQ(io::step_level_bytes(table, 0, 1), 20u);
  EXPECT_EQ(io::levels_present(table), (std::vector<int>{0, 1}));
  EXPECT_EQ(io::output_steps(table), (std::vector<std::int64_t>{0}));
}

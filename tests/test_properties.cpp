/// Property-based sweeps over randomized inputs (seeded, deterministic):
///  * predict_plotfile == write_plotfile over random hierarchies;
///  * SPMD writer == serial writer over rank counts;
///  * scanner ⟷ trace agreement;
///  * Berger–Rigoutsos coverage/disjointness over random tag fields;
///  * MACSio sizing identities over random parameter draws;
///  * SimFs conservation & monotonicity properties.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/cluster.hpp"
#include "iostats/aggregate.hpp"
#include "macsio/driver.hpp"
#include "model/calibrate.hpp"
#include "pfs/simfs.hpp"
#include "plotfile/scanner.hpp"
#include "plotfile/writer.hpp"
#include "simmpi/comm.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace pf = amrio::plotfile;
namespace p = amrio::pfs;
namespace m = amrio::mesh;

namespace {

/// Random multi-level hierarchy (valid: disjoint per level, nested domains).
struct RandomHierarchy {
  std::vector<m::MultiFab> storage;
  std::vector<pf::LevelPlotData> levels;
  std::vector<pf::LevelLayout> layouts;
  int ncomp;

  RandomHierarchy(std::uint64_t seed, int nranks) {
    amrio::util::Xoshiro256 rng(seed);
    ncomp = 1 + static_cast<int>(rng.uniform_int(7));
    const int n0 = 32 << rng.uniform_int(2);  // 32 or 64
    m::Box domain(0, 0, n0 - 1, n0 - 1);
    const int nlevels = 1 + static_cast<int>(rng.uniform_int(3));
    m::Geometry geom(domain, {0.0, 0.0}, {1.0, 1.0});
    for (int l = 0; l < nlevels; ++l) {
      m::BoxArray ba;
      if (l == 0) {
        ba = m::BoxArray(domain).max_size(
            8 << rng.uniform_int(2), 4);
      } else {
        // random sub-rectangle of the domain, refined and chopped
        const int w = 4 + static_cast<int>(rng.uniform_int(n0 / 2));
        const int h = 4 + static_cast<int>(rng.uniform_int(n0 / 2));
        const int x = static_cast<int>(rng.uniform_int(n0 - w));
        const int y = static_cast<int>(rng.uniform_int(n0 - h));
        ba = m::BoxArray(m::Box(x, y, x + w - 1, y + h - 1).refine(1 << l))
                 .max_size(16, 4);
      }
      auto dm = m::DistributionMapping::make(
          ba, nranks,
          l % 2 == 0 ? m::DistributionStrategy::kSfc
                     : m::DistributionStrategy::kKnapsack);
      const m::Geometry lgeom(domain.refine(1 << l), {0.0, 0.0}, {1.0, 1.0});
      storage.emplace_back(ba, dm, ncomp, 0);
      auto& mf = storage.back();
      for (std::size_t b = 0; b < mf.nfabs(); ++b)
        for (auto& v : mf.fab(b).data()) v = rng.uniform(-10.0, 10.0);
      layouts.push_back({lgeom, ba, dm});
    }
    for (std::size_t l = 0; l < storage.size(); ++l)
      levels.push_back({layouts[l].geom, &storage[l]});
  }

  pf::PlotfileSpec spec(std::int64_t step) const {
    pf::PlotfileSpec s;
    s.dir = "prop_plt" + amrio::util::zero_pad(static_cast<std::uint64_t>(step), 5);
    for (int c = 0; c < ncomp; ++c) s.var_names.push_back("v" + std::to_string(c));
    s.step = step;
    s.time = 0.5;
    s.job_info = "property test\n";
    return s;
  }
};

}  // namespace

class HierarchyProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyProperty, PredictEqualsWrite) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (int nranks : {1, 3, 8}) {
    RandomHierarchy h(seed * 31 + nranks, nranks);
    p::MemoryBackend be(false);
    const auto actual = pf::write_plotfile(be, h.spec(0), h.levels);
    const auto predicted = pf::predict_plotfile(h.spec(0), h.layouts, h.ncomp);
    EXPECT_EQ(predicted.total_bytes, actual.total_bytes) << "seed " << seed;
    EXPECT_EQ(predicted.rank_level_bytes, actual.rank_level_bytes);
    EXPECT_EQ(predicted.nfiles, actual.nfiles);
    EXPECT_EQ(actual.total_bytes, be.total_bytes());
  }
}

TEST_P(HierarchyProperty, SpmdWriterMatchesSerial) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int nranks = 4;
  RandomHierarchy h(seed * 97 + 7, nranks);

  p::MemoryBackend serial_be(true);
  const auto serial = pf::write_plotfile(serial_be, h.spec(0), h.levels);

  p::MemoryBackend spmd_be(true);
  pf::WriteStats spmd;
  amrio::simmpi::run_spmd(nranks, [&](amrio::simmpi::Comm& comm) {
    auto stats = pf::write_plotfile_spmd(comm, spmd_be, h.spec(0), h.levels);
    if (comm.rank() == 0) spmd = std::move(stats);
  });
  EXPECT_EQ(spmd.total_bytes, serial.total_bytes);
  EXPECT_EQ(spmd.rank_level_bytes, serial.rank_level_bytes);
  ASSERT_EQ(spmd_be.list(""), serial_be.list(""));
  for (const auto& path : serial_be.list(""))
    EXPECT_EQ(spmd_be.read(path), serial_be.read(path)) << path;
}

TEST_P(HierarchyProperty, ScannerMatchesTrace) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomHierarchy h(seed * 13 + 1, 4);
  p::MemoryBackend be(false);
  amrio::iostats::TraceRecorder trace;
  pf::write_plotfile(be, h.spec(20), h.levels, &trace);
  const auto scanned = pf::scan_plotfiles(be, "prop_plt").table;
  const auto traced = amrio::iostats::aggregate(trace.events());
  EXPECT_EQ(scanned, traced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyProperty,
                         ::testing::Range(1, 9));

// --------------------------------------------------------------- clustering

class ClusterProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterProperty, GridsCoverTagsDisjointlyAndNest) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 1234567);
  const m::Box domain(0, 0, 127, 127);
  const m::BoxArray parents =
      m::BoxArray(domain).max_size(32, 8);
  amrio::amr::ClusterParams params;
  params.blocking_factor = 8;
  params.max_grid_size = 32;
  params.error_buf = static_cast<int>(rng.uniform_int(3));

  // random blobs + streaks of tags
  std::vector<m::IntVect> tags;
  const int nblobs = 1 + static_cast<int>(rng.uniform_int(5));
  for (int b = 0; b < nblobs; ++b) {
    const int cx = static_cast<int>(rng.uniform_int(128));
    const int cy = static_cast<int>(rng.uniform_int(128));
    const int r = 1 + static_cast<int>(rng.uniform_int(10));
    for (int j = -r; j <= r; ++j)
      for (int i = -r; i <= r; ++i) {
        if (i * i + j * j > r * r) continue;
        const m::IntVect t{cx + i, cy + j};
        if (domain.contains(t)) tags.push_back(t);
      }
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  if (tags.empty()) return;

  const auto fine =
      amrio::amr::make_fine_grids(tags, domain, parents, params);
  ASSERT_FALSE(fine.empty());
  EXPECT_TRUE(fine.is_disjoint());
  const m::Box fine_domain = domain.refine(params.ref_ratio);
  for (const auto& b : fine.boxes()) {
    EXPECT_TRUE(fine_domain.contains(b));
    EXPECT_LE(b.length(0), params.max_grid_size);
    EXPECT_LE(b.length(1), params.max_grid_size);
  }
  for (const auto& t : tags)
    EXPECT_TRUE(fine.covers(m::Box(t, t).refine(params.ref_ratio)))
        << "tag " << t.x << "," << t.y;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty, ::testing::Range(1, 13));

// ------------------------------------------------------------------ macsio

class MacsioProperty : public ::testing::TestWithParam<int> {};

TEST_P(MacsioProperty, SizingIdentities) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 999);
  amrio::macsio::Params params;
  params.interface = static_cast<amrio::macsio::Interface>(rng.uniform_int(3));
  params.nprocs = 1 + static_cast<int>(rng.uniform_int(12));
  params.num_dumps = 1 + static_cast<int>(rng.uniform_int(6));
  params.part_size = 64 + rng.uniform_int(200000);
  params.avg_num_parts = 1.0 + rng.uniform() * 2.0;
  params.vars_per_part = 1 + static_cast<int>(rng.uniform_int(4));
  params.dataset_growth = 1.0 + rng.uniform() * 0.2;
  params.meta_size = rng.uniform_int(4096);
  params.validate();

  // identity 1: closed-form per-dump bytes == actual driver bytes
  const auto predicted = amrio::model::macsio_per_dump_bytes(params);
  p::MemoryBackend be(false);
  const auto stats = amrio::macsio::run_macsio(params, be);
  ASSERT_EQ(predicted.size(), stats.bytes_per_dump.size());
  for (std::size_t d = 0; d < predicted.size(); ++d)
    EXPECT_DOUBLE_EQ(predicted[d], static_cast<double>(stats.bytes_per_dump[d]));

  // identity 2: per-task bytes sum to the dump total minus root metadata
  for (std::size_t d = 0; d < stats.task_bytes.size(); ++d) {
    std::uint64_t task_total = 0;
    for (auto b : stats.task_bytes[d]) task_total += b;
    EXPECT_LE(task_total, stats.bytes_per_dump[d]);
    EXPECT_GE(task_total, stats.bytes_per_dump[d] - 1024);  // small root doc
  }

  // identity 3: parts_of_rank sums to round(avg * nprocs)
  int total_parts = 0;
  for (int r = 0; r < params.nprocs; ++r) total_parts += params.parts_of_rank(r);
  EXPECT_EQ(total_parts,
            static_cast<int>(std::llround(params.avg_num_parts * params.nprocs)));

  // identity 4: growth monotonicity
  for (int d = 1; d < params.num_dumps; ++d)
    EXPECT_GE(params.part_bytes_at_dump(d), params.part_bytes_at_dump(d - 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacsioProperty, ::testing::Range(1, 17));

// ------------------------------------------------------------------- simfs

class SimFsProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimFsProperty, PhysicalSanity) {
  amrio::util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 777);
  p::SimFsConfig cfg;
  cfg.n_ost = 1 + static_cast<int>(rng.uniform_int(32));
  cfg.stripe_count = 1 + static_cast<int>(rng.uniform_int(
                             static_cast<std::uint64_t>(cfg.n_ost)));
  cfg.ost_bandwidth = 0.5e9 + rng.uniform() * 2e9;
  cfg.client_bandwidth = 0.5e9 + rng.uniform() * 2e9;
  cfg.mds_latency = rng.uniform() * 1e-3;
  cfg.variability_sigma = rng.uniform() * 0.3;
  cfg.seed = rng.next();

  std::vector<p::IoRequest> reqs;
  const int n = 1 + static_cast<int>(rng.uniform_int(50));
  for (int i = 0; i < n; ++i) {
    reqs.push_back({static_cast<int>(rng.uniform_int(8)),
                    rng.uniform() * 5.0, "file_" + std::to_string(i),
                    rng.uniform_int(64 << 20)});
  }
  p::SimFs fs(cfg);
  const auto results = fs.run(reqs);
  ASSERT_EQ(results.size(), reqs.size());

  const double min_bw = std::min(cfg.ost_bandwidth, cfg.client_bandwidth);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // causality
    EXPECT_GE(r.open_start, reqs[i].submit_time);
    EXPECT_GE(r.open_end, r.open_start);
    EXPECT_GE(r.end, r.open_end);
    // no faster-than-bandwidth transfers (with slack for lognormal noise;
    // mean-corrected noise can shorten individual chunks)
    if (reqs[i].bytes > 0 && cfg.variability_sigma == 0.0) {
      const double min_time = static_cast<double>(reqs[i].bytes) / min_bw;
      EXPECT_GE(r.end - r.open_end, min_time * (1 - 1e-9));
    }
    EXPECT_EQ(r.bytes, reqs[i].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFsProperty, ::testing::Range(1, 13));

#include "iostats/aggregate.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace amrio::iostats {

SizeTable aggregate(const std::vector<IoEvent>& events) {
  SizeTable table;
  for (const auto& e : events) {
    if (e.op != IoEvent::Op::kWrite) continue;
    table[{e.step, e.level, e.rank}] += e.bytes;
  }
  return table;
}

std::vector<std::int64_t> output_steps(const SizeTable& table) {
  std::set<std::int64_t> steps;
  for (const auto& [key, bytes] : table) steps.insert(std::get<0>(key));
  return {steps.begin(), steps.end()};
}

std::vector<int> levels_present(const SizeTable& table) {
  std::set<int> levels;
  for (const auto& [key, bytes] : table) {
    if (std::get<1>(key) >= 0) levels.insert(std::get<1>(key));
  }
  return {levels.begin(), levels.end()};
}

std::uint64_t step_bytes(const SizeTable& table, std::int64_t step) {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : table) {
    if (std::get<0>(key) == step) total += bytes;
  }
  return total;
}

std::uint64_t step_level_bytes(const SizeTable& table, std::int64_t step,
                               int level) {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : table) {
    if (std::get<0>(key) == step && std::get<1>(key) == level) total += bytes;
  }
  return total;
}

std::vector<std::uint64_t> per_task_bytes(const SizeTable& table,
                                          std::int64_t step, int level,
                                          int nranks) {
  AMRIO_EXPECTS(nranks >= 1);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(nranks), 0);
  for (const auto& [key, bytes] : table) {
    if (std::get<0>(key) != step || std::get<1>(key) != level) continue;
    const int rank = std::get<2>(key);
    if (rank >= 0 && rank < nranks) out[static_cast<std::size_t>(rank)] += bytes;
  }
  return out;
}

namespace {
CumulativeSeries build_series(const SizeTable& table, std::int64_t ncells0,
                              int level_filter, bool filter_level) {
  AMRIO_EXPECTS(ncells0 > 0);
  CumulativeSeries s;
  double cum = 0.0;
  std::int64_t counter = 0;
  for (const auto step : output_steps(table)) {
    double bytes = 0.0;
    for (const auto& [key, b] : table) {
      if (std::get<0>(key) != step) continue;
      if (filter_level && std::get<1>(key) != level_filter) continue;
      bytes += static_cast<double>(b);
    }
    ++counter;  // Eq. (1): output_counter = 1..max
    cum += bytes;
    s.steps.push_back(step);
    s.x.push_back(static_cast<double>(counter) * static_cast<double>(ncells0));
    s.y.push_back(cum);
    s.per_step.push_back(bytes);
  }
  return s;
}
}  // namespace

CumulativeSeries cumulative_series(const SizeTable& table, std::int64_t ncells0) {
  return build_series(table, ncells0, 0, false);
}

CumulativeSeries cumulative_series_level(const SizeTable& table,
                                         std::int64_t ncells0, int level) {
  return build_series(table, ncells0, level, true);
}

double task_imbalance(const SizeTable& table, std::int64_t step, int level,
                      int nranks) {
  const auto bytes = per_task_bytes(table, step, level, nranks);
  std::vector<double> v(bytes.begin(), bytes.end());
  return util::imbalance_factor(v);
}

}  // namespace amrio::iostats

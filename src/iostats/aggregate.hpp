#pragma once
/// \file aggregate.hpp
/// Aggregation of I/O traces (or plotfile scans) into the quantities the
/// paper plots:
///   Eq. (1):  x = output_counter × ncells   (cumulative independent variable)
///   Eq. (2):  y = data_output_i, i = (time step, level, task)
/// plus per-level splits (Fig. 7), per-task matrices (Fig. 8), and
/// load-imbalance metrics.

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "iostats/trace.hpp"

namespace amrio::iostats {

/// bytes keyed by (step, level, rank); metadata rows use level/rank = -1.
using SizeTable = std::map<std::tuple<std::int64_t, int, int>, std::uint64_t>;

/// Collapse write events into a SizeTable.
SizeTable aggregate(const std::vector<IoEvent>& events);

/// Output steps present, ascending (steps at which any bytes were produced).
std::vector<std::int64_t> output_steps(const SizeTable& table);

/// Levels present (excluding -1 metadata rows), ascending.
std::vector<int> levels_present(const SizeTable& table);

/// Total bytes at one output step (all levels + metadata).
std::uint64_t step_bytes(const SizeTable& table, std::int64_t step);

/// Total bytes at one (step, level); level -1 = top-level metadata only.
std::uint64_t step_level_bytes(const SizeTable& table, std::int64_t step, int level);

/// Per-rank bytes at one (step, level): index = rank (0..nranks-1).
std::vector<std::uint64_t> per_task_bytes(const SizeTable& table,
                                          std::int64_t step, int level,
                                          int nranks);

/// A per-output-event series; `x` follows the paper's Eq. (1) with
/// output_counter = 1..N (count of output events so far).
struct CumulativeSeries {
  std::vector<std::int64_t> steps;  ///< simulation step of each output event
  std::vector<double> x;            ///< output_counter × ncells
  std::vector<double> y;            ///< cumulative bytes through this event
  std::vector<double> per_step;     ///< bytes of this event alone
};

/// Cumulative total output (all levels + metadata) vs Eq. (1) x.
CumulativeSeries cumulative_series(const SizeTable& table, std::int64_t ncells0);

/// Cumulative output restricted to one AMR level.
CumulativeSeries cumulative_series_level(const SizeTable& table,
                                         std::int64_t ncells0, int level);

/// max/mean per-task imbalance at one (step, level).
double task_imbalance(const SizeTable& table, std::int64_t step, int level,
                      int nranks);

}  // namespace amrio::iostats

#pragma once
/// \file trace.hpp
/// I/O event trace — the role Darshan/the authors' postprocessing notebooks
/// play in the paper: every create/write/close performed by the plotfile
/// writer or the MACSio proxy is recorded with its (step, level, rank)
/// context so the characterization layer can aggregate output production at
/// the paper's granularity (Fig. 2's hierarchy: per-step, per-level, per-task).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace amrio::iostats {

/// Context levels that do not apply use -1 (e.g. the top-level `Header`
/// metadata file has level = -1, rank = -1).
struct IoEvent {
  enum class Op { kCreate, kWrite, kClose };
  Op op = Op::kWrite;
  std::int64_t step = -1;
  int level = -1;
  int rank = -1;
  std::string path;
  std::uint64_t bytes = 0;
};

/// Thread-safe append-only event log.
class TraceRecorder {
 public:
  void record(IoEvent event);
  void record_write(std::int64_t step, int level, int rank,
                    const std::string& path, std::uint64_t bytes);

  /// Snapshot of all events in record order.
  std::vector<IoEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Sum of bytes over all write events.
  std::uint64_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::vector<IoEvent> events_;
};

}  // namespace amrio::iostats

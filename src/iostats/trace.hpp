#pragma once
/// \file trace.hpp
/// I/O event trace — the role Darshan/the authors' postprocessing notebooks
/// play in the paper: every create/write/close performed by the plotfile
/// writer or the MACSio proxy is recorded with its (step, level, rank)
/// context so the characterization layer can aggregate output production at
/// the paper's granularity (Fig. 2's hierarchy: per-step, per-level, per-task).
///
/// Recording is contention-free on the writer hot path: events land in
/// per-rank append sinks (rank-hash addressed, so concurrent simmpi ranks
/// almost never share a lock) and are merged into one deterministic stream on
/// snapshot. The merge is a stable sort on (step, rank), which preserves each
/// rank's program order — so serial and SPMD executions of the same workload
/// yield identical `events()` streams.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amrio::iostats {

/// Context levels that do not apply use -1 (e.g. the top-level `Header`
/// metadata file has level = -1, rank = -1).
struct IoEvent {
  /// kRead/kPrefetch are the restart read path: a kRead fetches a dump's
  /// bytes back (off the PFS or a prefetched BB extent), a kPrefetch is the
  /// OST→node staging transfer that precedes BB-tier reads.
  enum class Op { kCreate, kWrite, kClose, kRead, kPrefetch };
  Op op = Op::kWrite;
  std::int64_t step = -1;
  int level = -1;
  int rank = -1;
  /// Storage tier the write targeted (pfs::kTierPfs / kTierBurstBuffer).
  int tier = 0;
  /// Aggregation group that produced the write, -1 when unaggregated — lets
  /// the characterization layer slice output by subfile the way it slices by
  /// (step, level, task).
  int aggregator = -1;
  std::string path;
  std::uint64_t bytes = 0;
  /// Codec dimensions: modeled post-codec size of this event's bytes (0 = no
  /// codec stage — `bytes` stays the raw production count either way, so
  /// Eq. 1/2 aggregation is codec-agnostic) and the modeled codec cpu
  /// seconds spent on the rank's timeline — encode cpu for kWrite events,
  /// decode cpu for kRead events (the cost paid before the solver resumes).
  std::uint64_t encoded_bytes = 0;
  double codec_seconds = 0.0;
};

/// Thread-safe append-only event log with per-rank sinks. Ranks are mapped
/// to sinks through a mixed hash (obs::rank_shard), so strided rank patterns
/// — e.g. the one-aggregator-every-64-ranks shape of a large aggregated dump
/// — spread across sinks instead of serializing on one lock.
class TraceRecorder {
 public:
  /// `nsinks` tunes the sink count; the 64-sink default is right for
  /// hardware-thread-scale concurrency (SpmdEngine), and the serial/event
  /// engines never contend at all.
  explicit TraceRecorder(std::size_t nsinks = 64);

  void record(IoEvent event);
  void record_write(std::int64_t step, int level, int rank,
                    const std::string& path, std::uint64_t bytes);
  /// Staged variant: also records the target tier and aggregation group.
  void record_staged_write(std::int64_t step, int level, int rank,
                           const std::string& path, std::uint64_t bytes,
                           int tier, int aggregator);
  /// Codec variant: a write that passed through a codec stage — `bytes` is
  /// the raw production count, `encoded_bytes` the modeled post-codec size,
  /// `codec_seconds` the modeled encode cpu.
  void record_encoded_write(std::int64_t step, int level, int rank,
                            const std::string& path, std::uint64_t bytes,
                            std::uint64_t encoded_bytes, double codec_seconds,
                            int tier, int aggregator);
  /// Restart read: `bytes` is the decoded (raw) image size restored to the
  /// rank, `encoded_bytes` what was actually fetched off the PFS/tier (0 =
  /// no codec stage), `decode_seconds` the modeled decode cpu.
  void record_read(std::int64_t step, int level, int rank,
                   const std::string& path, std::uint64_t bytes,
                   std::uint64_t encoded_bytes, double decode_seconds,
                   int tier, int aggregator);
  /// OST→node prefetch of `bytes` (encoded sizes under a codec stage) ahead
  /// of BB-tier restart reads; `tier` is the staging tier the extent lands
  /// on (pfs::kTierBurstBuffer for every current caller).
  void record_prefetch(std::int64_t step, int level, int rank,
                       const std::string& path, std::uint64_t bytes, int tier,
                       int aggregator);

  /// Merged snapshot of all events in stable (step, rank) order; events of
  /// one rank keep their recording order. Deterministic across engines.
  std::vector<IoEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Sum of bytes over all write events (O(#sinks), no event walk).
  std::uint64_t total_bytes() const;
  /// Sum of bytes over all read events — kept on its own counter so the
  /// write-side production totals stay unpolluted by restart read-back.
  std::uint64_t total_read_bytes() const;

  std::size_t nsinks() const { return sinks_.size(); }

 private:
  struct Sink {
    mutable std::mutex mu;
    std::vector<IoEvent> events;
  };
  Sink& sink_for(int rank);

  std::vector<std::unique_ptr<Sink>> sinks_;
  std::atomic<std::uint64_t> write_bytes_{0};
  std::atomic<std::uint64_t> read_bytes_{0};
  std::atomic<std::size_t> count_{0};
};

}  // namespace amrio::iostats

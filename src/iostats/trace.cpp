#include "iostats/trace.hpp"

#include <algorithm>

#include "obs/shard.hpp"

namespace amrio::iostats {

TraceRecorder::TraceRecorder(std::size_t nsinks) {
  if (nsinks == 0) nsinks = 1;
  sinks_.reserve(nsinks);
  for (std::size_t i = 0; i < nsinks; ++i)
    sinks_.push_back(std::make_unique<Sink>());
}

TraceRecorder::Sink& TraceRecorder::sink_for(int rank) {
  // Mixed hash, not `rank % nsinks`: a plain modulo serializes stride-N rank
  // patterns (every aggregator of a 64-group topology shares one sink).
  return *sinks_[obs::rank_shard(rank, sinks_.size())];
}

void TraceRecorder::record(IoEvent event) {
  if (event.op == IoEvent::Op::kWrite)
    write_bytes_.fetch_add(event.bytes, std::memory_order_relaxed);
  if (event.op == IoEvent::Op::kRead)
    read_bytes_.fetch_add(event.bytes, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  Sink& sink = sink_for(event.rank);
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.events.push_back(std::move(event));
}

void TraceRecorder::record_write(std::int64_t step, int level, int rank,
                                 const std::string& path, std::uint64_t bytes) {
  record_staged_write(step, level, rank, path, bytes, /*tier=*/0,
                      /*aggregator=*/-1);
}

void TraceRecorder::record_staged_write(std::int64_t step, int level, int rank,
                                        const std::string& path,
                                        std::uint64_t bytes, int tier,
                                        int aggregator) {
  record_encoded_write(step, level, rank, path, bytes, /*encoded_bytes=*/0,
                       /*codec_seconds=*/0.0, tier, aggregator);
}

void TraceRecorder::record_encoded_write(std::int64_t step, int level, int rank,
                                         const std::string& path,
                                         std::uint64_t bytes,
                                         std::uint64_t encoded_bytes,
                                         double codec_seconds, int tier,
                                         int aggregator) {
  IoEvent e;
  e.op = IoEvent::Op::kWrite;
  e.step = step;
  e.level = level;
  e.rank = rank;
  e.tier = tier;
  e.aggregator = aggregator;
  e.path = path;
  e.bytes = bytes;
  e.encoded_bytes = encoded_bytes;
  e.codec_seconds = codec_seconds;
  record(std::move(e));
}

void TraceRecorder::record_read(std::int64_t step, int level, int rank,
                                const std::string& path, std::uint64_t bytes,
                                std::uint64_t encoded_bytes,
                                double decode_seconds, int tier,
                                int aggregator) {
  IoEvent e;
  e.op = IoEvent::Op::kRead;
  e.step = step;
  e.level = level;
  e.rank = rank;
  e.tier = tier;
  e.aggregator = aggregator;
  e.path = path;
  e.bytes = bytes;
  e.encoded_bytes = encoded_bytes;
  e.codec_seconds = decode_seconds;
  record(std::move(e));
}

void TraceRecorder::record_prefetch(std::int64_t step, int level, int rank,
                                    const std::string& path,
                                    std::uint64_t bytes, int tier,
                                    int aggregator) {
  IoEvent e;
  e.op = IoEvent::Op::kPrefetch;
  e.step = step;
  e.level = level;
  e.rank = rank;
  e.tier = tier;
  e.aggregator = aggregator;
  e.path = path;
  e.bytes = bytes;
  record(std::move(e));
}

std::vector<IoEvent> TraceRecorder::events() const {
  std::vector<IoEvent> out;
  for (const auto& sink : sinks_) {
    std::lock_guard<std::mutex> lock(sink->mu);
    out.insert(out.end(), sink->events.begin(), sink->events.end());
  }
  // Stable: ties (same step+rank) keep per-rank recording order, because all
  // events of one rank live in one sink and were appended in program order.
  std::stable_sort(out.begin(), out.end(),
                   [](const IoEvent& a, const IoEvent& b) {
                     if (a.step != b.step) return a.step < b.step;
                     return a.rank < b.rank;
                   });
  return out;
}

std::size_t TraceRecorder::size() const {
  return count_.load(std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  for (auto& sink : sinks_) {
    std::lock_guard<std::mutex> lock(sink->mu);
    sink->events.clear();
  }
  write_bytes_.store(0, std::memory_order_relaxed);
  read_bytes_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::total_bytes() const {
  return write_bytes_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::total_read_bytes() const {
  return read_bytes_.load(std::memory_order_relaxed);
}

}  // namespace amrio::iostats

#include "iostats/trace.hpp"

namespace amrio::iostats {

void TraceRecorder::record(IoEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::record_write(std::int64_t step, int level, int rank,
                                 const std::string& path, std::uint64_t bytes) {
  IoEvent e;
  e.op = IoEvent::Op::kWrite;
  e.step = step;
  e.level = level;
  e.rank = rank;
  e.path = path;
  e.bytes = bytes;
  record(std::move(e));
}

std::vector<IoEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::uint64_t TraceRecorder::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& e : events_) {
    if (e.op == IoEvent::Op::kWrite) total += e.bytes;
  }
  return total;
}

}  // namespace amrio::iostats

#include "codec/stats.hpp"

namespace amrio::codec {

void CodecTotals::add(const CompressResult& r) {
  raw_bytes += r.raw_bytes;
  encoded_bytes += r.out_bytes;
  cpu_seconds += r.cpu_seconds;
  ++chunks;
}

void CodecTotals::merge(const CodecTotals& other) {
  raw_bytes += other.raw_bytes;
  encoded_bytes += other.encoded_bytes;
  cpu_seconds += other.cpu_seconds;
  chunks += other.chunks;
}

double CodecTotals::ratio() const {
  return encoded_bytes > 0 ? static_cast<double>(raw_bytes) /
                                 static_cast<double>(encoded_bytes)
                           : 1.0;
}

void CodecStats::add(int dump, int level, const CompressResult& r) {
  total.add(r);
  by_dump[dump].add(r);
  by_level[level].add(r);
}

void CodecStats::merge(const CodecStats& other) {
  total.merge(other.total);
  for (const auto& [k, v] : other.by_dump) by_dump[k].merge(v);
  for (const auto& [k, v] : other.by_level) by_level[k].merge(v);
}

}  // namespace amrio::codec

#include "codec/stats.hpp"

namespace amrio::codec {

void CodecTotals::add(const CompressResult& r) {
  raw_bytes += r.raw_bytes;
  encoded_bytes += r.out_bytes;
  encode_seconds += r.cpu_seconds;
  ++chunks;
}

void CodecTotals::add_decode(const CompressResult& r, double decode_s) {
  raw_bytes += r.raw_bytes;
  encoded_bytes += r.out_bytes;
  decode_seconds += decode_s;
  ++chunks;
}

void CodecTotals::merge(const CodecTotals& other) {
  raw_bytes += other.raw_bytes;
  encoded_bytes += other.encoded_bytes;
  encode_seconds += other.encode_seconds;
  decode_seconds += other.decode_seconds;
  chunks += other.chunks;
}

double CodecTotals::ratio() const {
  return encoded_bytes > 0 ? static_cast<double>(raw_bytes) /
                                 static_cast<double>(encoded_bytes)
                           : 1.0;
}

void CodecStats::add(int dump, int level, const CompressResult& r) {
  total.add(r);
  by_dump[dump].add(r);
  by_level[level].add(r);
}

void CodecStats::add_decode(int dump, int level, const CompressResult& r,
                            double decode_s) {
  total.add_decode(r, decode_s);
  by_dump[dump].add_decode(r, decode_s);
  by_level[level].add_decode(r, decode_s);
}

void CodecStats::merge(const CodecStats& other) {
  total.merge(other.total);
  for (const auto& [k, v] : other.by_dump) by_dump[k].merge(v);
  for (const auto& [k, v] : other.by_level) by_level[k].merge(v);
}

}  // namespace amrio::codec

#include "codec/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/assert.hpp"

namespace amrio::codec {

// ----------------------------------------------------------- smoothness

/// Shared fallback smoothness (typical smooth hydro field): what the
/// estimator reports with no samples and what ebl's data-free plan() uses —
/// one constant so the two paths can never drift apart.
constexpr double kDefaultSmoothness = 0.85;

void SmoothnessEstimator::add(std::span<const double> values) {
  if (values.empty()) return;
  const double first = values.front();
  if (!any_) {
    min_ = max_ = first;
    any_ = true;
  }
  for (double v : values) {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  for (std::size_t i = 1; i + 1 < values.size(); ++i) {
    sum_abs_dd_ += std::abs(values[i + 1] - 2.0 * values[i] + values[i - 1]);
    ++count_;
  }
}

double SmoothnessEstimator::value() const {
  if (!any_ || count_ == 0) return kDefaultSmoothness;
  const double range = max_ - min_;
  if (range <= 0.0) return 1.0;  // constant field: perfectly predictable
  const double mean_dd = sum_abs_dd_ / static_cast<double>(count_) / range;
  return std::clamp(1.0 - mean_dd, 0.0, 1.0);
}

double estimate_smoothness(std::span<const double> values) {
  SmoothnessEstimator est;
  est.add(values);
  return est.value();
}

// ------------------------------------------------------------ container

namespace {

constexpr std::size_t kHeaderBytes = 32;
constexpr char kMagic[8] = {'A', 'M', 'R', 'I', 'O', 'C', 'D', 'C'};

void put_u64(std::byte* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  return v;
}

/// Wrap raw bytes in the self-describing container: the payload round-trips
/// byte-exactly while the modeled CompressResult travels alongside it.
std::vector<std::byte> wrap(std::span<const std::byte> raw,
                            const CompressResult& r) {
  std::vector<std::byte> blob(kHeaderBytes + raw.size());
  std::memcpy(blob.data(), kMagic, sizeof(kMagic));
  put_u64(blob.data() + 8, r.raw_bytes);
  put_u64(blob.data() + 16, r.out_bytes);
  put_u64(blob.data() + 24,
          static_cast<std::uint64_t>(std::llround(r.cpu_seconds * 1e9)));
  std::copy(raw.begin(), raw.end(), blob.begin() + kHeaderBytes);
  return blob;
}

CompressResult unwrap_header(std::span<const std::byte> blob,
                             const std::string& codec_name) {
  if (blob.size() < kHeaderBytes ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("codec '" + codec_name +
                             "': blob is not an encoded container");
  CompressResult r;
  r.raw_bytes = get_u64(blob.data() + 8);
  r.out_bytes = get_u64(blob.data() + 16);
  r.cpu_seconds = static_cast<double>(get_u64(blob.data() + 24)) * 1e-9;
  if (r.raw_bytes != blob.size() - kHeaderBytes)
    throw std::runtime_error("codec '" + codec_name +
                             "': container payload size mismatch");
  return r;
}

double cpu_cost(std::uint64_t raw_bytes, double throughput) {
  return throughput > 0.0 ? static_cast<double>(raw_bytes) / throughput : 0.0;
}

/// Deterministic ±`spread` multiplier derived from the raw size — stands in
/// for content variation without breaking plan()'s purity in raw_bytes.
double size_jitter(std::uint64_t raw_bytes, double spread) {
  std::uint64_t z = raw_bytes + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 + spread * (2.0 * u - 1.0);
}

std::uint64_t modeled_out_bytes(std::uint64_t raw_bytes, double ratio) {
  if (raw_bytes == 0) return 0;
  const double out = static_cast<double>(raw_bytes) / std::max(ratio, 1.0);
  // never below a per-chunk floor (stream headers), never above raw
  const std::uint64_t floor_bytes = std::min<std::uint64_t>(raw_bytes, 64);
  return std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::llround(out)), floor_bytes, raw_bytes);
}

// ------------------------------------------------------------- identity

class IdentityCodec final : public Codec {
 public:
  const std::string& name() const override {
    static const std::string n = "identity";
    return n;
  }
  CompressResult plan(std::uint64_t raw_bytes) const override {
    return CompressResult{raw_bytes, raw_bytes, 0.0};
  }
  std::vector<std::byte> encode(std::span<const std::byte> raw,
                                CompressResult* result) const override {
    if (result != nullptr) *result = plan(raw.size());
    return std::vector<std::byte>(raw.begin(), raw.end());
  }
  std::vector<std::byte> encode_as(std::span<const std::byte> raw,
                                   const CompressResult&) const override {
    return std::vector<std::byte>(raw.begin(), raw.end());
  }
  std::vector<std::byte> decode(std::span<const std::byte> blob) const override {
    return std::vector<std::byte>(blob.begin(), blob.end());
  }
  CompressResult peek(std::span<const std::byte> blob) const override {
    return plan(blob.size());
  }
};

// ------------------------------------------------------------- lossless

/// Deflate-class model over the writers' fixed-width numeric text. Ratio is
/// log-interpolated between the paper's Eq. (3) part-size anchors: the 80 kB
/// default part compresses ~2.3x, the 1.55 MB Listing-1 part ~4.5x (larger
/// documents expose more redundancy), with a deterministic ±4% size-hashed
/// jitter standing in for content variation.
class LosslessCodec final : public Codec {
 public:
  LosslessCodec(double throughput, double decode_throughput)
      : throughput_(throughput > 0.0 ? throughput : 1.2e9),
        // inflate runs well ahead of deflate: default to ~2.5x the encode
        // side, the deflate-class asymmetry
        decode_throughput_(decode_throughput > 0.0 ? decode_throughput
                                                   : 2.5 * throughput_) {}

  const std::string& name() const override {
    static const std::string n = "lossless";
    return n;
  }

  CompressResult plan(std::uint64_t raw_bytes) const override {
    constexpr double kAnchorLo = 80.0e3;    // Eq. (3) default part size
    constexpr double kAnchorHi = 1.55e6;    // Listing-1 / Table II part size
    constexpr double kRatioLo = 2.3;
    constexpr double kRatioHi = 4.5;
    if (raw_bytes == 0) return CompressResult{0, 0, 0.0};
    const double t = std::clamp(
        (std::log(static_cast<double>(std::max<std::uint64_t>(raw_bytes, 1))) -
         std::log(kAnchorLo)) /
            (std::log(kAnchorHi) - std::log(kAnchorLo)),
        0.0, 1.0);
    const double ratio =
        (kRatioLo + (kRatioHi - kRatioLo) * t) * size_jitter(raw_bytes, 0.04);
    return CompressResult{raw_bytes, modeled_out_bytes(raw_bytes, ratio),
                          cpu_cost(raw_bytes, throughput_)};
  }

  double decode_seconds(std::uint64_t raw_bytes) const override {
    return cpu_cost(raw_bytes, decode_throughput_);
  }

 private:
  double throughput_;
  double decode_throughput_;
};

// ------------------------------------------------------------------ ebl

/// Error-bounded lossy model (AMRIC/SZ-style): a predictor+quantizer stores
/// log2(roughness / error_bound) bits per 64-bit value plus a fixed
/// entropy-coder overhead, so smooth fields and loose bounds compress hard
/// (the 2–10x AMRIC band) while tight bounds on rough data approach
/// incompressibility.
class EblCodec final : public Codec {
 public:
  EblCodec(double error_bound, double throughput, double decode_throughput,
           double smoothness)
      : error_bound_(error_bound),
        throughput_(throughput > 0.0 ? throughput : 3.0e9),
        // SZ-class decompression (Huffman decode + prediction replay) runs
        // roughly twice the compression throughput
        decode_throughput_(decode_throughput > 0.0 ? decode_throughput
                                                   : 2.0 * throughput_),
        smoothness_(smoothness) {}

  const std::string& name() const override {
    static const std::string n = "ebl";
    return n;
  }

  CompressResult plan(std::uint64_t raw_bytes) const override {
    return plan_with(raw_bytes,
                     smoothness_ >= 0.0 ? smoothness_ : kDefaultSmoothness);
  }

  CompressResult plan_with(std::uint64_t raw_bytes,
                           double smoothness) const override {
    const double s = std::clamp(smoothness, 0.0, 1.0);
    const double roughness = std::max(1.0 - s, 1e-6);
    constexpr double kOverheadBits = 1.5;  // entropy-coder + block headers
    const double bits = std::clamp(
        std::log2(roughness / error_bound_) + kOverheadBits, 1.0, 64.0);
    return CompressResult{raw_bytes, modeled_out_bytes(raw_bytes, 64.0 / bits),
                          cpu_cost(raw_bytes, throughput_)};
  }

  CompressResult plan_values(std::span<const double> values) const override {
    const double s = smoothness_ >= 0.0 ? smoothness_
                                        : estimate_smoothness(values);
    return plan_with(values.size_bytes(), s);
  }

  double decode_seconds(std::uint64_t raw_bytes) const override {
    return cpu_cost(raw_bytes, decode_throughput_);
  }

 private:
  double error_bound_;
  double throughput_;
  double decode_throughput_;
  double smoothness_;
};

// ------------------------------------------------------- per-variable ebl

/// AMRIC-style per-variable error bounds: a task document interleaves its
/// variables in equal raw shares (our writers emit every variable for every
/// zone), so the model splits `raw_bytes` into n near-equal shares and plans
/// each under its own bound. Purity in raw_bytes is preserved — the share
/// split is integer arithmetic on the size alone.
class MultiVarEblCodec final : public Codec {
 public:
  MultiVarEblCodec(std::vector<double> bounds, double throughput,
                   double decode_throughput, double smoothness) {
    vars_.reserve(bounds.size());
    for (const double b : bounds)
      vars_.emplace_back(b, throughput, decode_throughput, smoothness);
  }

  const std::string& name() const override {
    static const std::string n = "ebl";
    return n;
  }

  CompressResult plan(std::uint64_t raw_bytes) const override {
    return accumulate(raw_bytes, [](const EblCodec& c, std::uint64_t share) {
      return c.plan(share);
    });
  }

  CompressResult plan_with(std::uint64_t raw_bytes,
                           double smoothness) const override {
    return accumulate(raw_bytes,
                      [smoothness](const EblCodec& c, std::uint64_t share) {
                        return c.plan_with(share, smoothness);
                      });
  }

  CompressResult plan_values(std::span<const double> values) const override {
    // One smoothness estimate for the whole document (variables share the
    // mesh), then per-variable bounds over the shares.
    return plan_with(values.size_bytes(), estimate_smoothness(values));
  }

  double decode_seconds(std::uint64_t raw_bytes) const override {
    double total = 0.0;
    const std::uint64_t n = vars_.size();
    for (std::uint64_t i = 0; i < n; ++i)
      total += vars_[i].decode_seconds(share_bytes(raw_bytes, i, n));
    return total;
  }

 private:
  /// Share i of n: raw·(i+1)/n − raw·i/n — sums exactly to raw_bytes.
  static std::uint64_t share_bytes(std::uint64_t raw, std::uint64_t i,
                                   std::uint64_t n) {
    return raw * (i + 1) / n - raw * i / n;
  }

  template <typename PlanFn>
  CompressResult accumulate(std::uint64_t raw_bytes, PlanFn plan_fn) const {
    CompressResult total{raw_bytes, 0, 0.0};
    const std::uint64_t n = vars_.size();
    for (std::uint64_t i = 0; i < n; ++i) {
      const CompressResult r = plan_fn(vars_[i], share_bytes(raw_bytes, i, n));
      total.out_bytes += r.out_bytes;
      total.cpu_seconds += r.cpu_seconds;
    }
    return total;
  }

  std::vector<EblCodec> vars_;
};

}  // namespace

// --------------------------------------------------- base encode/decode

std::vector<std::byte> Codec::encode(std::span<const std::byte> raw,
                                     CompressResult* result) const {
  const CompressResult r = plan(raw.size());
  if (result != nullptr) *result = r;
  return wrap(raw, r);
}

std::vector<std::byte> Codec::encode_as(std::span<const std::byte> raw,
                                        const CompressResult& result) const {
  AMRIO_EXPECTS(result.raw_bytes == raw.size());
  return wrap(raw, result);
}

std::vector<std::byte> Codec::decode(std::span<const std::byte> blob) const {
  (void)unwrap_header(blob, name());
  return std::vector<std::byte>(blob.begin() + kHeaderBytes, blob.end());
}

CompressResult Codec::peek(std::span<const std::byte> blob) const {
  return unwrap_header(blob, name());
}

// -------------------------------------------------------------- registry

const std::vector<std::string>& codec_names() {
  static const std::vector<std::string> names = {"identity", "lossless", "ebl"};
  return names;
}

std::vector<double> parse_var_bounds(const std::string& csv) {
  std::vector<double> bounds;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = csv.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0')
      throw std::invalid_argument("codec: malformed per-variable bound '" +
                                  tok + "' in '" + csv + "'");
    if (!(v > 0.0 && v < 1.0))
      throw std::invalid_argument(
          "codec: per-variable error bound must be in (0, 1), got " + tok);
    bounds.push_back(v);
    pos = comma + 1;
  }
  return bounds;
}

std::string format_var_bounds(const std::vector<double>& bounds) {
  std::string out;
  char buf[32];
  for (const double b : bounds) {
    std::snprintf(buf, sizeof(buf), "%.17g", b);
    if (!out.empty()) out += ',';
    out += buf;
  }
  return out;
}

void validate_spec(const CodecSpec& spec) {
  const auto& names = codec_names();
  if (std::find(names.begin(), names.end(), spec.name) == names.end()) {
    std::string known;
    for (const auto& n : names) known += (known.empty() ? "" : "|") + n;
    throw std::invalid_argument("codec: unknown codec '" + spec.name +
                                "' (expected " + known + ")");
  }
  if (spec.name == "ebl" &&
      !(spec.error_bound > 0.0 && spec.error_bound < 1.0))
    throw std::invalid_argument(
        "codec: error bound must be in (0, 1), got " +
        std::to_string(spec.error_bound));
  if (!spec.var_error_bounds.empty()) {
    if (spec.name != "ebl")
      throw std::invalid_argument(
          "codec: per-variable error bounds require codec 'ebl', got '" +
          spec.name + "'");
    for (const double b : spec.var_error_bounds)
      if (!(b > 0.0 && b < 1.0))
        throw std::invalid_argument(
            "codec: per-variable error bound must be in (0, 1), got " +
            std::to_string(b));
  }
  if (spec.throughput < 0.0)
    throw std::invalid_argument("codec: throughput must be >= 0 (0 = default)");
  if (spec.decode_throughput < 0.0)
    throw std::invalid_argument(
        "codec: decode throughput must be >= 0 (0 = default)");
  if (spec.smoothness > 1.0)
    throw std::invalid_argument(
        "codec: smoothness must be <= 1 (negative = auto)");
}

std::unique_ptr<Codec> make_codec(const CodecSpec& spec) {
  validate_spec(spec);
  if (spec.name == "identity") return std::make_unique<IdentityCodec>();
  if (spec.name == "lossless")
    return std::make_unique<LosslessCodec>(spec.throughput,
                                           spec.decode_throughput);
  AMRIO_ENSURES(spec.name == "ebl");
  if (!spec.var_error_bounds.empty())
    return std::make_unique<MultiVarEblCodec>(spec.var_error_bounds,
                                              spec.throughput,
                                              spec.decode_throughput,
                                              spec.smoothness);
  return std::make_unique<EblCodec>(spec.error_bound, spec.throughput,
                                    spec.decode_throughput, spec.smoothness);
}

}  // namespace amrio::codec

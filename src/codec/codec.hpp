#pragma once
/// \file codec.hpp
/// In-situ compression modeling — the codec stage real pre-exascale AMR
/// stacks interpose before data leaves the node (AMRIC-style error-bounded
/// lossy compression of AMR data, ADIOS2-style operator pipelines). A `Codec`
/// answers two questions for every byte chunk the writers produce: how many
/// bytes travel/land after encoding, and how much compute the encode costs on
/// the writer's timeline. Three registered models:
///
///  * `identity` — out = raw, zero cpu: byte paths are exactly the staging
///    subsystem's PR-2 behaviour (the default everywhere).
///  * `lossless` — deflate-class compression of the fixed-width numeric text
///    our writers emit. The ratio is drawn *deterministically* from a
///    per-part-size model anchored on the paper's Eq. (3) part-size range
///    (80 kB default … 1.55 MB Listing-1 parts): larger documents expose more
///    redundancy to the entropy coder, so the ratio rises log-linearly
///    between the anchors, with a small size-hashed jitter standing in for
///    content variation. Same raw size → same encoded size, always.
///  * `ebl` — error-bounded lossy, AMRIC/SZ-style: a predictor+quantizer
///    whose residual width scales with field roughness. The modeled bits per
///    value are log2(roughness / error_bound) plus a fixed entropy-coder
///    overhead, so the ratio is a function of the error bound and the FAB
///    smoothness — estimated from real field data when contents are
///    available (`plan_values` / `SmoothnessEstimator` over Sedov fabs),
///    otherwise taken from the configured/default smoothness.
///
/// Codecs are immutable and stateless after construction: one instance can
/// serve concurrent SPMD ranks.
///
/// Physical encoding (`encode`/`decode`) wraps the raw payload in a small
/// self-describing container carrying the modeled result, so shipped/staged
/// data round-trips byte-exactly while every accounting point uses the
/// modeled `CompressResult::out_bytes` — a simulator compresses sizes and
/// clocks, not information.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace amrio::codec {

/// Outcome of encoding one chunk: the modeled wire/tier size and the modeled
/// compute cost that lands on the writer's timeline before submit.
struct CompressResult {
  std::uint64_t raw_bytes = 0;
  std::uint64_t out_bytes = 0;
  double cpu_seconds = 0.0;
  double ratio() const {
    return out_bytes > 0
               ? static_cast<double>(raw_bytes) / static_cast<double>(out_bytes)
               : 1.0;
  }
};

/// Incremental FAB-smoothness estimate over field values: 1 minus the mean
/// absolute second difference normalized by the value range — 1.0 for
/// constant/linear fields, approaching 0 for noise at the value-range scale.
/// Feed it every component span of a rank's fabs, then read `value()`.
class SmoothnessEstimator {
 public:
  void add(std::span<const double> values);
  /// Smoothness in [0, 1]; the ebl default when nothing was added.
  double value() const;
  std::uint64_t samples() const { return count_; }

 private:
  double sum_abs_dd_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;  ///< second-difference samples
  bool any_ = false;
};

/// One-shot convenience over a single span.
double estimate_smoothness(std::span<const double> values);

class Codec {
 public:
  virtual ~Codec() = default;
  virtual const std::string& name() const = 0;

  /// Deterministic size/cost model from the raw size alone — the prediction
  /// path (rank 0 re-deriving encoded sizes from gathered raw counts,
  /// `predict_plotfile`, accounting-mode staging) relies on this being a pure
  /// function of `raw_bytes`.
  virtual CompressResult plan(std::uint64_t raw_bytes) const = 0;

  /// Size/cost model with an explicit smoothness estimate in [0, 1]. Only
  /// `ebl` reads the smoothness; the others forward to `plan`.
  virtual CompressResult plan_with(std::uint64_t raw_bytes,
                                   double smoothness) const {
    (void)smoothness;
    return plan(raw_bytes);
  }

  /// Content-aware model over numeric field data (the plotfile Cell_D hook):
  /// `ebl` configured for auto smoothness estimates it from the values;
  /// everything else reduces to `plan(values.size_bytes())`.
  virtual CompressResult plan_values(std::span<const double> values) const {
    return plan(values.size_bytes());
  }

  /// Modeled decode cpu cost of restoring `raw_bytes` of original data —
  /// what a restart reader pays after fetching encoded bytes off the
  /// PFS/tier, before the solver resumes. A pure function of `raw_bytes`
  /// (like `plan`), distinct from the encode cost: decompressors run at a
  /// different (usually higher) throughput than compressors. Identity: 0.
  virtual double decode_seconds(std::uint64_t raw_bytes) const {
    (void)raw_bytes;
    return 0.0;
  }

  /// Encode a chunk for the wire/tier. The returned blob decodes byte-exactly
  /// via `decode`; its accounted size is `result.out_bytes` (the model), not
  /// `blob.size()`. Identity returns the raw bytes unchanged; modeling codecs
  /// wrap them in a 32-byte container carrying the CompressResult.
  virtual std::vector<std::byte> encode(std::span<const std::byte> raw,
                                        CompressResult* result = nullptr) const;
  /// Encode with a caller-computed result (content-aware callers: the
  /// plotfile hook measures FAB smoothness before shipping) — the container
  /// carries `result` verbatim so `peek` at the receiver sees the same model.
  /// Identity ignores the result and stays a passthrough.
  virtual std::vector<std::byte> encode_as(std::span<const std::byte> raw,
                                           const CompressResult& result) const;
  /// Inverse of `encode` — byte-exact. Throws std::runtime_error on a blob
  /// this codec did not produce.
  virtual std::vector<std::byte> decode(std::span<const std::byte> blob) const;
  /// The CompressResult embedded in an encoded blob (what the encoder
  /// modeled), without copying the payload. Identity plans the blob itself.
  virtual CompressResult peek(std::span<const std::byte> blob) const;
};

/// Selection + tuning of a codec stage; the cross-layer currency (MACSio
/// knobs, PlotfileSpec, StagingBackend all carry one).
struct CodecSpec {
  std::string name = "identity";
  /// ebl: relative error bound in (0, 1).
  double error_bound = 1.0e-3;
  /// ebl: optional per-variable error bounds (AMRIC-style: density may
  /// tolerate a looser bound than pressure). When non-empty, each task
  /// document is modeled as equal per-variable raw shares, each encoded
  /// under its own bound; `error_bound` is ignored. Empty = uniform bound.
  std::vector<double> var_error_bounds;
  /// Modeled encode throughput (bytes/sec); 0 = the codec's default.
  double throughput = 0.0;
  /// Modeled decode throughput (bytes/sec) for the restart read path; 0 =
  /// the codec's default (decoders typically outrun their encoders).
  double decode_throughput = 0.0;
  /// ebl: fixed smoothness in [0, 1]; negative = auto (estimate from field
  /// contents when available, else the codec default). Pin it when predict
  /// parity across data-free paths matters.
  double smoothness = -1.0;

  bool enabled() const { return name != "identity"; }
};

/// Registered codec names, in registry order: {"identity", "lossless", "ebl"}.
const std::vector<std::string>& codec_names();

/// Parse a comma-separated per-variable bound list ("1e-3,1e-5") into the
/// CodecSpec::var_error_bounds form. Empty input → empty vector. Throws
/// std::invalid_argument on malformed numbers or bounds outside (0, 1).
std::vector<double> parse_var_bounds(const std::string& csv);

/// Canonical string form of a bound list — the inverse of parse_var_bounds
/// (%.17g, comma-separated), used by CLI round-trips and cache keys.
std::string format_var_bounds(const std::vector<double>& bounds);

/// Build a codec from its spec. Throws std::invalid_argument with a one-line
/// message on an unknown name or an out-of-range error bound / throughput /
/// smoothness.
std::unique_ptr<Codec> make_codec(const CodecSpec& spec);

/// Validate spec fields without constructing (the CLI front-ends call this so
/// every layer rejects bad knobs identically). Throws std::invalid_argument.
void validate_spec(const CodecSpec& spec);

}  // namespace amrio::codec

#pragma once
/// \file stats.hpp
/// Codec accounting: raw vs encoded bytes and modeled cpu time, totalled and
/// broken down per dump (MACSio step) and per AMR level (plotfile) — the
/// codec-stage analogue of the (step, level, task) slicing the iostats layer
/// applies to raw output.
///
/// Plain value types, not thread-safe: accumulate on rank 0 (drivers) or
/// under the owner's lock (StagingBackend), merge across sources with
/// `merge`.

#include <cstdint>
#include <map>

#include "codec/codec.hpp"

namespace amrio::codec {

struct CodecTotals {
  std::uint64_t raw_bytes = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t chunks = 0;  ///< compression units (task docs, Cell_D chunks)
  /// Modeled cpu split by direction, so write-side (encode) reports are not
  /// polluted when a restart read path adds decode cost into the same
  /// accumulator and vice versa.
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;

  /// Encode-side accumulation (the write path).
  void add(const CompressResult& r);
  /// Decode-side accumulation (the restart read path): `r` describes the
  /// chunk being restored (raw/encoded sizes), `decode_s` the modeled decode
  /// cpu — `r.cpu_seconds` (the encode cost) is deliberately NOT added.
  void add_decode(const CompressResult& r, double decode_s);
  void merge(const CodecTotals& other);
  double ratio() const;
  std::uint64_t saved_bytes() const {
    return raw_bytes >= encoded_bytes ? raw_bytes - encoded_bytes : 0;
  }
};

struct CodecStats {
  CodecTotals total;
  /// Keyed by dump/step index; -1 = unattributed (e.g. StagingBackend absorbs
  /// that carry no dump context).
  std::map<int, CodecTotals> by_dump;
  /// Keyed by AMR level; -1 = unattributed (MACSio has no level concept).
  std::map<int, CodecTotals> by_level;

  void add(int dump, int level, const CompressResult& r);
  /// Decode-side variant: see CodecTotals::add_decode.
  void add_decode(int dump, int level, const CompressResult& r,
                  double decode_s);
  void merge(const CodecStats& other);
};

}  // namespace amrio::codec

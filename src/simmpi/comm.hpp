#pragma once
/// \file comm.hpp
/// Simulated MPI: an SPMD communicator over in-process threads.
///
/// The paper's runs use `jsrun -n nproc` on Summit; this library replays the
/// same rank-parallel structure inside one process so the study runs with no
/// MPI installation. Each virtual rank is a thread; collectives synchronize
/// through a shared std::barrier and staging slots, and point-to-point
/// messages go through per-(src,dst,tag) mailboxes.
///
/// Semantics follow MPI where it matters for the proxy workloads:
///  * collectives must be called by every rank (SPMD lockstep);
///  * `gather`/`gatherv` deliver data only at the root;
///  * `exscan` gives rank 0 the identity element (used for SIF file offsets);
///  * an uncaught exception on any rank aborts the communicator: every other
///    rank receives `CommAborted` at its next synchronization point and
///    `run_spmd` rethrows the original error.
///
/// Only trivially copyable element types are supported (as with MPI datatypes).

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace amrio::simmpi {

/// Thrown on surviving ranks when a peer rank failed.
class CommAborted : public std::runtime_error {
 public:
  CommAborted() : std::runtime_error("simmpi: communicator aborted by peer failure") {}
};

/// Thrown when a blocking recv exceeds its timeout (deadlock guard).
class RecvTimeout : public std::runtime_error {
 public:
  explicit RecvTimeout(const std::string& what) : std::runtime_error(what) {}
};

enum class ReduceOp { kSum, kMin, kMax, kProd };

namespace detail {
struct State;
}

/// Per-rank handle onto the shared communicator state. Cheap to copy within a
/// rank; never share one Comm object across threads.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Synchronize all ranks. Throws CommAborted if a peer failed.
  void barrier();

  /// Broadcast `data` (same count on every rank) from `root`.
  template <typename T>
  void bcast(std::span<T> data, int root);

  /// All-reduce a single value.
  template <typename T>
  T allreduce(T local, ReduceOp op);

  /// Element-wise all-reduce of equal-length vectors.
  template <typename T>
  void allreduce(std::span<const T> local, std::span<T> out, ReduceOp op);

  /// Reduce to root; non-root ranks get T{}.
  template <typename T>
  T reduce(T local, ReduceOp op, int root);

  /// Exclusive prefix sum: rank r receives sum of values on ranks < r
  /// (rank 0 gets T{}). Matches MPI_Exscan with MPI_SUM.
  template <typename T>
  T exscan_sum(T local);

  /// Gather one value per rank to root (root gets size() values, others none).
  template <typename T>
  std::vector<T> gather(T local, int root);

  /// Gather one value per rank to every rank.
  template <typename T>
  std::vector<T> allgather(T local);

  /// Variable-length gather to root; concatenated in rank order at root.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> local, int root);

  /// Blocking tagged send (buffered: returns once the message is enqueued).
  template <typename T>
  void send(std::span<const T> data, int dest, int tag);

  /// Blocking tagged receive; throws RecvTimeout after `timeout_sec`.
  template <typename T>
  std::vector<T> recv(int src, int tag, double timeout_sec = 30.0);

 private:
  friend void run_spmd(int, const std::function<void(Comm&)>&);
  Comm(int rank, int size, detail::State* state)
      : rank_(rank), size_(size), state_(state) {}

  void put_slot(const void* p);
  const void* get_slot(int rank) const;
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag);
  std::vector<std::byte> recv_bytes(int src, int tag, double timeout_sec);
  void stage_bytes(std::span<const std::byte> bytes);
  std::span<const std::byte> staged_bytes(int rank) const;

  int rank_;
  int size_;
  detail::State* state_;
};

/// Run `fn` on `nranks` virtual ranks (threads). Blocks until all ranks
/// finish; rethrows the first rank exception, if any.
void run_spmd(int nranks, const std::function<void(Comm&)>& fn);

// ---------------------------------------------------------------------------
// template implementations

namespace detail {
/// Elementwise reduction combiner. kMin/kMax are NaN-propagating for
/// floating-point types: `b < a` is false whenever either side is NaN, which
/// would silently drop a NaN contribution (e.g. a corrupt bandwidth sample)
/// depending on which rank it came from — instead any NaN input poisons the
/// result, matching IEEE totalOrder-free MPI practice for error surfacing.
template <typename T>
T combine(T a, T b, ReduceOp op) {
  if constexpr (std::is_floating_point_v<T>) {
    if (op == ReduceOp::kMin || op == ReduceOp::kMax) {
      if (a != a) return a;  // a is NaN
      if (b != b) return b;  // b is NaN
    }
  }
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return b < a ? b : a;
    case ReduceOp::kMax: return a < b ? b : a;
    case ReduceOp::kProd: return a * b;
  }
  return a;
}
}  // namespace detail

template <typename T>
void Comm::bcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(root >= 0 && root < size_);
  if (size_ == 1) return;
  put_slot(data.data());
  barrier();
  if (rank_ != root) {
    std::memcpy(data.data(), get_slot(root), data.size_bytes());
  }
  barrier();
}

template <typename T>
T Comm::allreduce(T local, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (size_ == 1) return local;
  put_slot(&local);
  barrier();
  T acc = *static_cast<const T*>(get_slot(0));
  for (int r = 1; r < size_; ++r)
    acc = detail::combine(acc, *static_cast<const T*>(get_slot(r)), op);
  barrier();
  return acc;
}

template <typename T>
void Comm::allreduce(std::span<const T> local, std::span<T> out, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(local.size() == out.size());
  if (size_ == 1) {
    std::copy(local.begin(), local.end(), out.begin());
    return;
  }
  put_slot(local.data());
  barrier();
  for (std::size_t i = 0; i < local.size(); ++i) {
    T acc = static_cast<const T*>(get_slot(0))[i];
    for (int r = 1; r < size_; ++r)
      acc = detail::combine(acc, static_cast<const T*>(get_slot(r))[i], op);
    out[i] = acc;
  }
  barrier();
}

template <typename T>
T Comm::reduce(T local, ReduceOp op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(root >= 0 && root < size_);
  if (size_ == 1) return local;
  put_slot(&local);
  barrier();
  T acc{};
  if (rank_ == root) {
    acc = *static_cast<const T*>(get_slot(0));
    for (int r = 1; r < size_; ++r)
      acc = detail::combine(acc, *static_cast<const T*>(get_slot(r)), op);
  }
  barrier();
  return acc;
}

template <typename T>
T Comm::exscan_sum(T local) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (size_ == 1) return T{};
  put_slot(&local);
  barrier();
  T acc{};
  for (int r = 0; r < rank_; ++r)
    acc = acc + *static_cast<const T*>(get_slot(r));
  barrier();
  return acc;
}

template <typename T>
std::vector<T> Comm::gather(T local, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(root >= 0 && root < size_);
  if (size_ == 1) return {local};
  put_slot(&local);
  barrier();
  std::vector<T> out;
  if (rank_ == root) {
    out.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r)
      out.push_back(*static_cast<const T*>(get_slot(r)));
  }
  barrier();
  return out;
}

template <typename T>
std::vector<T> Comm::allgather(T local) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (size_ == 1) return {local};
  put_slot(&local);
  barrier();
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    out.push_back(*static_cast<const T*>(get_slot(r)));
  barrier();
  return out;
}

template <typename T>
std::vector<T> Comm::gatherv(std::span<const T> local, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(root >= 0 && root < size_);
  if (size_ == 1) return {local.begin(), local.end()};
  stage_bytes(std::as_bytes(local));
  barrier();
  std::vector<T> out;
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      const auto bytes = staged_bytes(r);
      AMRIO_ENSURES(bytes.size() % sizeof(T) == 0);
      const std::size_t n = bytes.size() / sizeof(T);
      const std::size_t old = out.size();
      out.resize(old + n);
      std::memcpy(out.data() + old, bytes.data(), bytes.size());
    }
  }
  barrier();
  return out;
}

template <typename T>
void Comm::send(std::span<const T> data, int dest, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(dest >= 0 && dest < size_);
  AMRIO_EXPECTS(dest != rank_);
  send_bytes(data.data(), data.size_bytes(), dest, tag);
}

template <typename T>
std::vector<T> Comm::recv(int src, int tag, double timeout_sec) {
  static_assert(std::is_trivially_copyable_v<T>);
  AMRIO_EXPECTS(src >= 0 && src < size_);
  AMRIO_EXPECTS(src != rank_);
  const std::vector<std::byte> bytes = recv_bytes(src, tag, timeout_sec);
  AMRIO_ENSURES(bytes.size() % sizeof(T) == 0);
  std::vector<T> out(bytes.size() / sizeof(T));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace amrio::simmpi

#include "simmpi/comm.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace amrio::simmpi {

namespace detail {

struct Mailbox {
  std::deque<std::vector<std::byte>> queue;
};

struct State {
  explicit State(int n)
      : size(n), bar(n), slots(static_cast<std::size_t>(n), nullptr),
        staging(static_cast<std::size_t>(n)) {}

  int size;
  std::barrier<> bar;
  std::vector<const void*> slots;
  std::vector<std::vector<std::byte>> staging;

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  std::mutex mail_mu;
  std::condition_variable mail_cv;
  // keyed by (src, dst, tag)
  std::map<std::tuple<int, int, int>, Mailbox> mail;
};

}  // namespace detail

void Comm::barrier() {
  if (size_ == 1) return;
  state_->bar.arrive_and_wait();
  if (state_->failed.load(std::memory_order_acquire)) throw CommAborted();
}

void Comm::put_slot(const void* p) {
  state_->slots[static_cast<std::size_t>(rank_)] = p;
}

const void* Comm::get_slot(int rank) const {
  return state_->slots[static_cast<std::size_t>(rank)];
}

void Comm::stage_bytes(std::span<const std::byte> bytes) {
  auto& buf = state_->staging[static_cast<std::size_t>(rank_)];
  buf.assign(bytes.begin(), bytes.end());
}

std::span<const std::byte> Comm::staged_bytes(int rank) const {
  const auto& buf = state_->staging[static_cast<std::size_t>(rank)];
  return {buf.data(), buf.size()};
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dest, int tag) {
  std::vector<std::byte> msg(bytes);
  if (bytes > 0) std::memcpy(msg.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lock(state_->mail_mu);
    state_->mail[{rank_, dest, tag}].queue.push_back(std::move(msg));
  }
  state_->mail_cv.notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, double timeout_sec) {
  std::unique_lock<std::mutex> lock(state_->mail_mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_sec);
  auto& box = state_->mail[{src, rank_, tag}];
  while (box.queue.empty()) {
    if (state_->failed.load(std::memory_order_acquire)) throw CommAborted();
    if (state_->mail_cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw RecvTimeout("simmpi: recv(src=" + std::to_string(src) +
                        ", tag=" + std::to_string(tag) + ") timed out on rank " +
                        std::to_string(rank_));
    }
  }
  std::vector<std::byte> msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

void run_spmd(int nranks, const std::function<void(Comm&)>& fn) {
  AMRIO_EXPECTS_MSG(nranks >= 1, "run_spmd needs at least one rank");
  detail::State state(nranks);

  if (nranks == 1) {
    Comm comm(0, 1, &state);
    fn(comm);
    return;
  }

  auto worker = [&state, &fn](int rank) {
    Comm comm(rank, state.size, &state);
    try {
      fn(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state.error_mu);
        if (!state.first_error) state.first_error = std::current_exception();
      }
      state.failed.store(true, std::memory_order_release);
      state.mail_cv.notify_all();
    }
    // Leave the barrier so peers blocked on a phase are released; in the
    // normal SPMD case every rank drops here at the same phase.
    state.bar.arrive_and_drop();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) threads.emplace_back(worker, r);
  for (auto& t : threads) t.join();

  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace amrio::simmpi

#pragma once
/// \file distribution.hpp
/// DistributionMapping: which virtual MPI rank owns each box of a BoxArray.
/// The paper's per-task output sizes (Fig. 8) are direct images of this
/// mapping, so we provide the strategies AMReX ships: round-robin, knapsack
/// (weight balancing), and space-filling-curve.

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/boxarray.hpp"

namespace amrio::mesh {

enum class DistributionStrategy { kRoundRobin, kKnapsack, kSfc };

const char* to_string(DistributionStrategy s);
DistributionStrategy distribution_strategy_from_string(const std::string& s);

class DistributionMapping {
 public:
  DistributionMapping() = default;

  /// Build a mapping of `ba` onto `nranks` ranks. Weights default to box cell
  /// counts (the I/O-relevant weight: bytes scale with cells).
  static DistributionMapping make(const BoxArray& ba, int nranks,
                                  DistributionStrategy strategy);
  static DistributionMapping make(const BoxArray& ba, int nranks,
                                  DistributionStrategy strategy,
                                  const std::vector<std::int64_t>& weights);

  int nranks() const { return nranks_; }
  std::size_t size() const { return owner_.size(); }
  int owner(std::size_t box_index) const { return owner_.at(box_index); }
  const std::vector<int>& owners() const { return owner_; }

  /// Box indices owned by `rank`, in BoxArray order.
  std::vector<std::size_t> boxes_of(int rank) const;

  /// Total weight per rank given per-box weights.
  std::vector<std::int64_t> rank_weights(
      const std::vector<std::int64_t>& box_weights) const;

  /// max/mean of per-rank total cell counts for `ba` (1.0 == balanced; 0 if
  /// there are no cells).
  double imbalance(const BoxArray& ba) const;

 private:
  DistributionMapping(std::vector<int> owner, int nranks)
      : owner_(std::move(owner)), nranks_(nranks) {}
  std::vector<int> owner_;
  int nranks_ = 0;
};

}  // namespace amrio::mesh

#pragma once
/// \file multifab.hpp
/// MultiFab: the distributed state container of one AMR level — a BoxArray of
/// valid regions, a DistributionMapping onto virtual ranks, and one Fab per
/// box (allocated with ghost cells).
///
/// The driver runs serially, so the MultiFab owns *all* Fabs; the
/// DistributionMapping records which virtual rank each box belongs to, which
/// is exactly what the N-to-N plotfile writer needs to reproduce Summit's
/// per-task output files (see DESIGN.md §3).

#include <vector>

#include "mesh/boxarray.hpp"
#include "mesh/distribution.hpp"
#include "mesh/fab.hpp"

namespace amrio::mesh {

class MultiFab {
 public:
  MultiFab() = default;
  MultiFab(BoxArray ba, DistributionMapping dm, int ncomp, int nghost);

  const BoxArray& box_array() const { return ba_; }
  const DistributionMapping& distribution() const { return dm_; }
  int ncomp() const { return ncomp_; }
  int nghost() const { return nghost_; }
  std::size_t nfabs() const { return fabs_.size(); }

  Fab& fab(std::size_t i) { return fabs_.at(i); }
  const Fab& fab(std::size_t i) const { return fabs_.at(i); }
  /// The valid (non-ghost) box of fab i.
  const Box& valid_box(std::size_t i) const { return ba_[i]; }

  void set_val(double v);

  /// Fill ghost cells of every fab from overlapping valid regions of sibling
  /// fabs on the same level (intra-level exchange). Ghosts not covered by any
  /// sibling are left untouched (they belong to the domain boundary or a
  /// coarse-fine boundary and are filled by the AMR layer).
  void fill_boundary();

  /// Same-level copy: overwrite my valid cells with src's valid data wherever
  /// the two BoxArrays intersect (used on regrid for data transfer).
  void copy_valid_from(const MultiFab& src, int src_comp, int dst_comp,
                       int ncomp);

  double min(int comp) const;
  double max(int comp) const;
  double sum(int comp) const;
  /// Total valid cells.
  std::int64_t num_pts() const { return ba_.num_pts(); }

  /// Bytes of valid-region data owned by `rank` (the per-task I/O weight).
  std::uint64_t bytes_on_rank(int rank) const;

 private:
  BoxArray ba_;
  DistributionMapping dm_;
  int ncomp_ = 0;
  int nghost_ = 0;
  std::vector<Fab> fabs_;
};

}  // namespace amrio::mesh

#include "mesh/fab.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace amrio::mesh {

Fab::Fab(const Box& domain, int ncomp) : domain_(domain), ncomp_(ncomp) {
  AMRIO_EXPECTS(domain.ok());
  AMRIO_EXPECTS(ncomp >= 1);
  data_.assign(static_cast<std::size_t>(domain.num_pts()) * ncomp, 0.0);
}

std::size_t Fab::offset(IntVect p, int comp) const {
  AMRIO_EXPECTS_MSG(domain_.contains(p),
                    "Fab index " << p << " outside " << domain_.to_string());
  AMRIO_EXPECTS(comp >= 0 && comp < ncomp_);
  return static_cast<std::size_t>(comp) * static_cast<std::size_t>(num_pts()) +
         static_cast<std::size_t>(linear_index(domain_, p));
}

double& Fab::operator()(IntVect p, int comp) { return data_[offset(p, comp)]; }

double Fab::operator()(IntVect p, int comp) const { return data_[offset(p, comp)]; }

std::span<double> Fab::component(int comp) {
  AMRIO_EXPECTS(comp >= 0 && comp < ncomp_);
  return {data_.data() + static_cast<std::size_t>(comp) * num_pts(),
          static_cast<std::size_t>(num_pts())};
}

std::span<const double> Fab::component(int comp) const {
  AMRIO_EXPECTS(comp >= 0 && comp < ncomp_);
  return {data_.data() + static_cast<std::size_t>(comp) * num_pts(),
          static_cast<std::size_t>(num_pts())};
}

void Fab::set_val(double v) { std::fill(data_.begin(), data_.end(), v); }

void Fab::set_val(double v, int comp) {
  auto c = component(comp);
  std::fill(c.begin(), c.end(), v);
}

void Fab::copy_from(const Fab& src, int src_comp, int dst_comp, int ncomp) {
  copy_from(src, domain_ & src.domain_, src_comp, dst_comp, ncomp);
}

void Fab::copy_from(const Fab& src, const Box& region, int src_comp,
                    int dst_comp, int ncomp) {
  AMRIO_EXPECTS(src_comp >= 0 && src_comp + ncomp <= src.ncomp_);
  AMRIO_EXPECTS(dst_comp >= 0 && dst_comp + ncomp <= ncomp_);
  const Box where = region & domain_ & src.domain_;
  if (where.empty()) return;
  for (int n = 0; n < ncomp; ++n) {
    for (int j = where.lo(1); j <= where.hi(1); ++j) {
      const std::size_t src_row =
          src.offset(IntVect(where.lo(0), j), src_comp + n);
      const std::size_t dst_row = offset(IntVect(where.lo(0), j), dst_comp + n);
      std::copy_n(src.data_.begin() + static_cast<std::ptrdiff_t>(src_row),
                  where.length(0),
                  data_.begin() + static_cast<std::ptrdiff_t>(dst_row));
    }
  }
}

double Fab::min(const Box& where, int comp) const {
  const Box region = where & domain_;
  double out = std::numeric_limits<double>::infinity();
  for (int j = region.lo(1); j <= region.hi(1); ++j)
    for (int i = region.lo(0); i <= region.hi(0); ++i)
      out = std::min(out, (*this)(i, j, comp));
  return out;
}

double Fab::max(const Box& where, int comp) const {
  const Box region = where & domain_;
  double out = -std::numeric_limits<double>::infinity();
  for (int j = region.lo(1); j <= region.hi(1); ++j)
    for (int i = region.lo(0); i <= region.hi(0); ++i)
      out = std::max(out, (*this)(i, j, comp));
  return out;
}

double Fab::sum(const Box& where, int comp) const {
  const Box region = where & domain_;
  double out = 0.0;
  for (int j = region.lo(1); j <= region.hi(1); ++j)
    for (int i = region.lo(0); i <= region.hi(0); ++i)
      out += (*this)(i, j, comp);
  return out;
}

}  // namespace amrio::mesh

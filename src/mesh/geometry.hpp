#pragma once
/// \file geometry.hpp
/// Physical-space description of a level: problem domain bounds, index-space
/// domain box, and cell sizes. Mirrors the `geometry.*` keys of the paper's
/// Listing 2 inputs file.

#include <array>

#include "mesh/box.hpp"

namespace amrio::mesh {

class Geometry {
 public:
  Geometry() = default;
  Geometry(const Box& domain, std::array<double, 2> prob_lo,
           std::array<double, 2> prob_hi);

  const Box& domain() const { return domain_; }
  std::array<double, 2> prob_lo() const { return prob_lo_; }
  std::array<double, 2> prob_hi() const { return prob_hi_; }

  double cell_size(int d) const { return dx_[static_cast<std::size_t>(d)]; }
  /// Physical coordinate of cell center (i, j).
  std::array<double, 2> cell_center(IntVect p) const;
  /// Physical lower corner of cell (i, j).
  std::array<double, 2> cell_lo(IntVect p) const;

  /// Geometry of the same physical domain refined by `ratio`.
  [[nodiscard]] Geometry refine(int ratio) const;

 private:
  Box domain_;
  std::array<double, 2> prob_lo_{0.0, 0.0};
  std::array<double, 2> prob_hi_{1.0, 1.0};
  std::array<double, 2> dx_{1.0, 1.0};
};

}  // namespace amrio::mesh

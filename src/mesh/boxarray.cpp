#include "mesh/boxarray.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace amrio::mesh {

BoxArray::BoxArray(std::vector<Box> boxes) : boxes_(std::move(boxes)) {
  for (const auto& b : boxes_) AMRIO_EXPECTS_MSG(b.ok(), "empty box in BoxArray");
}

BoxArray::BoxArray(const Box& single) {
  AMRIO_EXPECTS(single.ok());
  boxes_.push_back(single);
}

std::int64_t BoxArray::num_pts() const {
  std::int64_t total = 0;
  for (const auto& b : boxes_) total += b.num_pts();
  return total;
}

Box BoxArray::minimal_box() const {
  Box hull;
  for (const auto& b : boxes_) hull = bounding_box(hull, b);
  return hull;
}

BoxArray BoxArray::max_size(int max_size, int blocking) const {
  AMRIO_EXPECTS(max_size >= 1);
  AMRIO_EXPECTS(blocking >= 1);
  std::vector<Box> out;
  std::deque<Box> work(boxes_.begin(), boxes_.end());
  while (!work.empty()) {
    Box b = work.front();
    work.pop_front();
    int dir = -1;
    for (int d = 0; d < kSpaceDim; ++d) {
      if (b.length(d) > max_size) {
        // chop the longest offending dimension first for squarer pieces
        if (dir < 0 || b.length(d) > b.length(dir)) dir = d;
      }
    }
    if (dir < 0) {
      out.push_back(b);
      continue;
    }
    // Preferred split point: middle, rounded to a blocking multiple.
    const std::int64_t len = b.length(dir);
    std::int64_t half = len / 2;
    if (blocking > 1) {
      half = (half / blocking) * blocking;
      if (half == 0) half = std::min<std::int64_t>(blocking, len - 1);
    }
    const int pos = b.lo(dir) + static_cast<int>(half);
    if (pos <= b.lo(dir) || pos > b.hi(dir)) {
      out.push_back(b);  // cannot split further without breaking blocking
      continue;
    }
    auto [left, right] = b.chop(dir, pos);
    work.push_back(left);
    work.push_back(right);
  }
  return BoxArray(std::move(out));
}

BoxArray BoxArray::refine(int ratio) const {
  std::vector<Box> out;
  out.reserve(boxes_.size());
  for (const auto& b : boxes_) out.push_back(b.refine(ratio));
  return BoxArray(std::move(out));
}

BoxArray BoxArray::coarsen(int ratio) const {
  std::vector<Box> out;
  out.reserve(boxes_.size());
  for (const auto& b : boxes_) out.push_back(b.coarsen(ratio));
  return BoxArray(std::move(out));
}

std::vector<std::size_t> BoxArray::intersecting(const Box& b) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    if (boxes_[i].intersects(b)) out.push_back(i);
  }
  return out;
}

bool BoxArray::contains(IntVect p) const {
  return std::any_of(boxes_.begin(), boxes_.end(),
                     [p](const Box& b) { return b.contains(p); });
}

bool BoxArray::covers(const Box& b) const {
  if (b.empty()) return true;
  // Subtract every box from `b`; covered iff nothing remains.
  std::vector<Box> remaining{b};
  for (const auto& mine : boxes_) {
    std::vector<Box> next;
    for (const auto& piece : remaining) {
      auto diff = box_difference(piece, mine);
      next.insert(next.end(), diff.begin(), diff.end());
    }
    remaining = std::move(next);
    if (remaining.empty()) return true;
  }
  return remaining.empty();
}

bool BoxArray::is_disjoint() const {
  for (std::size_t i = 0; i < boxes_.size(); ++i)
    for (std::size_t j = i + 1; j < boxes_.size(); ++j)
      if (boxes_[i].intersects(boxes_[j])) return false;
  return true;
}

}  // namespace amrio::mesh

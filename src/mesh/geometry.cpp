#include "mesh/geometry.hpp"

#include "util/assert.hpp"

namespace amrio::mesh {

Geometry::Geometry(const Box& domain, std::array<double, 2> prob_lo,
                   std::array<double, 2> prob_hi)
    : domain_(domain), prob_lo_(prob_lo), prob_hi_(prob_hi) {
  AMRIO_EXPECTS(domain.ok());
  for (int d = 0; d < kSpaceDim; ++d) {
    AMRIO_EXPECTS(prob_hi[static_cast<std::size_t>(d)] >
                  prob_lo[static_cast<std::size_t>(d)]);
    dx_[static_cast<std::size_t>(d)] =
        (prob_hi[static_cast<std::size_t>(d)] -
         prob_lo[static_cast<std::size_t>(d)]) /
        static_cast<double>(domain.length(d));
  }
}

std::array<double, 2> Geometry::cell_center(IntVect p) const {
  return {prob_lo_[0] + (static_cast<double>(p.x - domain_.lo(0)) + 0.5) * dx_[0],
          prob_lo_[1] + (static_cast<double>(p.y - domain_.lo(1)) + 0.5) * dx_[1]};
}

std::array<double, 2> Geometry::cell_lo(IntVect p) const {
  return {prob_lo_[0] + static_cast<double>(p.x - domain_.lo(0)) * dx_[0],
          prob_lo_[1] + static_cast<double>(p.y - domain_.lo(1)) * dx_[1]};
}

Geometry Geometry::refine(int ratio) const {
  return Geometry(domain_.refine(ratio), prob_lo_, prob_hi_);
}

}  // namespace amrio::mesh

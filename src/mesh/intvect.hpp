#pragma once
/// \file intvect.hpp
/// 2D integer index vector, the unit of the block-structured mesh index space
/// (the paper's study is the 2D Sedov case; the mesh substrate is 2D).

#include <algorithm>
#include <compare>
#include <cstdint>
#include <ostream>

namespace amrio::mesh {

inline constexpr int kSpaceDim = 2;

struct IntVect {
  int x = 0;
  int y = 0;

  constexpr IntVect() = default;
  constexpr IntVect(int xx, int yy) : x(xx), y(yy) {}

  constexpr int operator[](int d) const { return d == 0 ? x : y; }
  constexpr int& operator[](int d) { return d == 0 ? x : y; }

  friend constexpr IntVect operator+(IntVect a, IntVect b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr IntVect operator-(IntVect a, IntVect b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr IntVect operator*(IntVect a, int s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr IntVect operator*(int s, IntVect a) { return a * s; }

  friend constexpr bool operator==(IntVect a, IntVect b) = default;
  /// Lexicographic (y-major) ordering for use in ordered containers.
  friend constexpr auto operator<=>(IntVect a, IntVect b) {
    if (auto c = a.y <=> b.y; c != 0) return c;
    return a.x <=> b.x;
  }

  /// Component-wise <= (every component), the "allLE" of AMReX.
  constexpr bool all_le(IntVect other) const {
    return x <= other.x && y <= other.y;
  }
  constexpr bool all_ge(IntVect other) const {
    return x >= other.x && y >= other.y;
  }

  static constexpr IntVect unit() { return {1, 1}; }
  static constexpr IntVect zero() { return {0, 0}; }

  friend constexpr IntVect min(IntVect a, IntVect b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y)};
  }
  friend constexpr IntVect max(IntVect a, IntVect b) {
    return {std::max(a.x, b.x), std::max(a.y, b.y)};
  }
};

inline std::ostream& operator<<(std::ostream& os, IntVect v) {
  return os << '(' << v.x << ',' << v.y << ')';
}

/// Floor division toward -infinity (AMReX coarsening semantics for negative
/// indices).
constexpr int coarsen_index(int i, int ratio) {
  return i >= 0 ? i / ratio : -((-i + ratio - 1) / ratio);
}

}  // namespace amrio::mesh

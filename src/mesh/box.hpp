#pragma once
/// \file box.hpp
/// Cell-centered integer rectangle [lo, hi] (inclusive bounds), the atom of
/// block-structured AMR. Mirrors the algebra AMReX's `Box` provides for the
/// operations this study needs: intersection, refinement/coarsening, growing,
/// chopping, and alignment queries.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "mesh/intvect.hpp"

namespace amrio::mesh {

class Box {
 public:
  /// Default box is empty/invalid.
  constexpr Box() : lo_(0, 0), hi_(-1, -1) {}
  constexpr Box(IntVect lo, IntVect hi) : lo_(lo), hi_(hi) {}
  constexpr Box(int lox, int loy, int hix, int hiy)
      : lo_(lox, loy), hi_(hix, hiy) {}

  constexpr IntVect lo() const { return lo_; }
  constexpr IntVect hi() const { return hi_; }
  constexpr int lo(int d) const { return lo_[d]; }
  constexpr int hi(int d) const { return hi_[d]; }

  constexpr bool ok() const { return lo_.all_le(hi_); }
  constexpr bool empty() const { return !ok(); }

  /// Cells along dimension d (0 when empty).
  constexpr std::int64_t length(int d) const {
    const std::int64_t n = static_cast<std::int64_t>(hi_[d]) - lo_[d] + 1;
    return n > 0 ? n : 0;
  }
  constexpr IntVect size() const {
    return {static_cast<int>(length(0)), static_cast<int>(length(1))};
  }
  constexpr std::int64_t num_pts() const { return length(0) * length(1); }

  constexpr bool contains(IntVect p) const {
    return ok() && lo_.all_le(p) && p.all_le(hi_);
  }
  constexpr bool contains(const Box& other) const {
    return other.empty() || (contains(other.lo_) && contains(other.hi_));
  }
  constexpr bool intersects(const Box& other) const {
    return (*this & other).ok();
  }

  /// Intersection; empty when disjoint.
  friend constexpr Box operator&(const Box& a, const Box& b) {
    return Box(max(a.lo_, b.lo_), min(a.hi_, b.hi_));
  }

  friend constexpr bool operator==(const Box& a, const Box& b) = default;

  /// Grow by n cells on every face (negative shrinks).
  [[nodiscard]] constexpr Box grow(int n) const {
    return Box(lo_ - IntVect(n, n), hi_ + IntVect(n, n));
  }
  [[nodiscard]] constexpr Box grow(IntVect n) const {
    return Box(lo_ - n, hi_ + n);
  }

  [[nodiscard]] constexpr Box shift(IntVect by) const {
    return Box(lo_ + by, hi_ + by);
  }

  /// Index-space refinement by `ratio` (each cell becomes ratio² cells).
  [[nodiscard]] Box refine(int ratio) const;
  /// Index-space coarsening by `ratio` (covers all parents of our cells).
  [[nodiscard]] Box coarsen(int ratio) const;

  /// True when lo and (hi+1) are multiples of `blocking` in every dimension —
  /// the AMReX `blocking_factor` alignment condition.
  bool aligned(int blocking) const;

  /// Smallest aligned box containing *this.
  [[nodiscard]] Box align_to(int blocking) const;

  /// Split at index `pos` along `dir`: returns {[lo,pos-1], [pos,hi]}.
  /// Requires lo(dir) < pos <= hi(dir).
  std::pair<Box, Box> chop(int dir, int pos) const;

  /// Hull of two boxes (smallest box containing both).
  friend Box bounding_box(const Box& a, const Box& b);

  /// `b \ a` as a set of disjoint boxes (0–4 pieces in 2D).
  friend std::vector<Box> box_difference(const Box& b, const Box& a);

  std::string to_string() const;

 private:
  IntVect lo_;
  IntVect hi_;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Row-major linear offset of p within box (x fastest), for Fab indexing.
constexpr std::int64_t linear_index(const Box& b, IntVect p) {
  return (static_cast<std::int64_t>(p.y) - b.lo(1)) * b.length(0) +
         (static_cast<std::int64_t>(p.x) - b.lo(0));
}

}  // namespace amrio::mesh

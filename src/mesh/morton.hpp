#pragma once
/// \file morton.hpp
/// Morton (Z-order) encoding for space-filling-curve distribution mapping —
/// AMReX's default strategy for assigning grids to MPI ranks.

#include <cstdint>

namespace amrio::mesh {

/// Interleave the low 32 bits of x: abc -> a0b0c0.
constexpr std::uint64_t morton_spread(std::uint32_t x) {
  std::uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Morton code of (x, y); x occupies even bits.
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y) {
  return morton_spread(x) | (morton_spread(y) << 1);
}

}  // namespace amrio::mesh

#pragma once
/// \file boxarray.hpp
/// An ordered collection of disjoint boxes describing the valid region of one
/// AMR level, with the grid-generation operations AMReX applies to it:
/// max_grid_size chopping and coverage/intersection queries.

#include <vector>

#include "mesh/box.hpp"

namespace amrio::mesh {

class BoxArray {
 public:
  BoxArray() = default;
  explicit BoxArray(std::vector<Box> boxes);
  explicit BoxArray(const Box& single);

  std::size_t size() const { return boxes_.size(); }
  bool empty() const { return boxes_.empty(); }
  const Box& operator[](std::size_t i) const { return boxes_[i]; }
  const std::vector<Box>& boxes() const { return boxes_; }

  /// Total cell count over all boxes.
  std::int64_t num_pts() const;

  /// Hull of all boxes.
  Box minimal_box() const;

  /// Chop every box so no side exceeds `max_size` (AMReX `maxSize`). Chops at
  /// multiples of `blocking` when possible so alignment is preserved.
  [[nodiscard]] BoxArray max_size(int max_size, int blocking = 1) const;

  /// Refine / coarsen every box.
  [[nodiscard]] BoxArray refine(int ratio) const;
  [[nodiscard]] BoxArray coarsen(int ratio) const;

  /// Indices of boxes intersecting `b`.
  std::vector<std::size_t> intersecting(const Box& b) const;

  /// True if `p` lies in some box.
  bool contains(IntVect p) const;
  /// True if every cell of `b` is covered by the union of our boxes.
  bool covers(const Box& b) const;

  /// True when no two boxes overlap (validity invariant for level grids).
  bool is_disjoint() const;

  void push_back(const Box& b) { boxes_.push_back(b); }

  friend bool operator==(const BoxArray& a, const BoxArray& b) = default;

 private:
  std::vector<Box> boxes_;
};

}  // namespace amrio::mesh

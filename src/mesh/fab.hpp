#pragma once
/// \file fab.hpp
/// Fab ("Fortran array box"): a dense multi-component double field over a Box,
/// the storage unit AMReX serializes into plotfile `Cell_D` files. Data is
/// stored component-major (all of component 0, then component 1, ...), each
/// component row-major over the box — matching the on-disk FAB layout.

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/box.hpp"

namespace amrio::mesh {

class Fab {
 public:
  Fab() = default;
  /// Allocate over `domain` (often a valid box grown by ghost cells) with
  /// `ncomp` components, zero-initialized.
  Fab(const Box& domain, int ncomp);

  const Box& box() const { return domain_; }
  int ncomp() const { return ncomp_; }
  std::int64_t num_pts() const { return domain_.num_pts(); }
  /// Payload size when serialized (doubles only, no header).
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(num_pts()) * ncomp_ * sizeof(double);
  }

  double& operator()(IntVect p, int comp);
  double operator()(IntVect p, int comp) const;
  double& operator()(int i, int j, int comp) { return (*this)(IntVect(i, j), comp); }
  double operator()(int i, int j, int comp) const {
    return (*this)(IntVect(i, j), comp);
  }

  std::span<double> component(int comp);
  std::span<const double> component(int comp) const;
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  void set_val(double v);
  void set_val(double v, int comp);

  /// Copy `ncomp` components from `src` (starting at src_comp) into *this
  /// (starting at dst_comp) over the cell intersection of the two boxes.
  void copy_from(const Fab& src, int src_comp, int dst_comp, int ncomp);
  /// Copy over an explicit region (intersected with both boxes).
  void copy_from(const Fab& src, const Box& region, int src_comp, int dst_comp,
                 int ncomp);

  /// Min/max over the valid region `where` (intersected with our box).
  double min(const Box& where, int comp) const;
  double max(const Box& where, int comp) const;
  /// Sum over region for conservation checks.
  double sum(const Box& where, int comp) const;

 private:
  std::size_t offset(IntVect p, int comp) const;
  Box domain_;
  int ncomp_ = 0;
  std::vector<double> data_;
};

}  // namespace amrio::mesh

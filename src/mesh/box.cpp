#include "mesh/box.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace amrio::mesh {

Box Box::refine(int ratio) const {
  AMRIO_EXPECTS(ratio >= 1);
  if (empty()) return *this;
  return Box(lo_ * ratio, IntVect((hi_.x + 1) * ratio - 1, (hi_.y + 1) * ratio - 1));
}

Box Box::coarsen(int ratio) const {
  AMRIO_EXPECTS(ratio >= 1);
  if (empty()) return *this;
  return Box(IntVect(coarsen_index(lo_.x, ratio), coarsen_index(lo_.y, ratio)),
             IntVect(coarsen_index(hi_.x, ratio), coarsen_index(hi_.y, ratio)));
}

bool Box::aligned(int blocking) const {
  AMRIO_EXPECTS(blocking >= 1);
  if (empty()) return true;
  for (int d = 0; d < kSpaceDim; ++d) {
    if (coarsen_index(lo_[d], blocking) * blocking != lo_[d]) return false;
    if (coarsen_index(hi_[d] + 1, blocking) * blocking != hi_[d] + 1) return false;
  }
  return true;
}

Box Box::align_to(int blocking) const {
  AMRIO_EXPECTS(blocking >= 1);
  if (empty()) return *this;
  auto down = [blocking](int i) {
    return coarsen_index(i, blocking) * blocking;
  };
  auto up = [blocking, &down](int i) { return down(i + blocking - 1); };
  return Box(IntVect(down(lo_.x), down(lo_.y)),
             IntVect(up(hi_.x + 1) - 1, up(hi_.y + 1) - 1));
}

std::pair<Box, Box> Box::chop(int dir, int pos) const {
  AMRIO_EXPECTS(dir >= 0 && dir < kSpaceDim);
  AMRIO_EXPECTS_MSG(lo_[dir] < pos && pos <= hi_[dir],
                    "chop pos " << pos << " outside " << to_string());
  Box left = *this;
  Box right = *this;
  IntVect lhi = hi_;
  lhi[dir] = pos - 1;
  IntVect rlo = lo_;
  rlo[dir] = pos;
  left = Box(lo_, lhi);
  right = Box(rlo, hi_);
  return {left, right};
}

Box bounding_box(const Box& a, const Box& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Box(min(a.lo(), b.lo()), max(a.hi(), b.hi()));
}

std::vector<Box> box_difference(const Box& b, const Box& a) {
  std::vector<Box> out;
  if (b.empty()) return out;
  const Box isect = a & b;
  if (isect.empty()) {
    out.push_back(b);
    return out;
  }
  if (isect == b) return out;  // fully covered

  // Peel up to four slabs around the intersection (guillotine decomposition).
  Box rest = b;
  // below
  if (rest.lo(1) < isect.lo(1)) {
    out.emplace_back(IntVect(rest.lo(0), rest.lo(1)),
                     IntVect(rest.hi(0), isect.lo(1) - 1));
    rest = Box(IntVect(rest.lo(0), isect.lo(1)), rest.hi());
  }
  // above
  if (rest.hi(1) > isect.hi(1)) {
    out.emplace_back(IntVect(rest.lo(0), isect.hi(1) + 1),
                     IntVect(rest.hi(0), rest.hi(1)));
    rest = Box(rest.lo(), IntVect(rest.hi(0), isect.hi(1)));
  }
  // left
  if (rest.lo(0) < isect.lo(0)) {
    out.emplace_back(IntVect(rest.lo(0), rest.lo(1)),
                     IntVect(isect.lo(0) - 1, rest.hi(1)));
  }
  // right
  if (rest.hi(0) > isect.hi(0)) {
    out.emplace_back(IntVect(isect.hi(0) + 1, rest.lo(1)),
                     IntVect(rest.hi(0), rest.hi(1)));
  }
  return out;
}

std::string Box::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << "((" << b.lo(0) << ',' << b.lo(1) << ")-(" << b.hi(0) << ','
            << b.hi(1) << "))";
}

}  // namespace amrio::mesh

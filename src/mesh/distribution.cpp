#include "mesh/distribution.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "mesh/morton.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::mesh {

const char* to_string(DistributionStrategy s) {
  switch (s) {
    case DistributionStrategy::kRoundRobin: return "roundrobin";
    case DistributionStrategy::kKnapsack: return "knapsack";
    case DistributionStrategy::kSfc: return "sfc";
  }
  return "?";
}

DistributionStrategy distribution_strategy_from_string(const std::string& s) {
  const std::string v = util::to_lower(s);
  if (v == "roundrobin" || v == "round_robin") return DistributionStrategy::kRoundRobin;
  if (v == "knapsack") return DistributionStrategy::kKnapsack;
  if (v == "sfc") return DistributionStrategy::kSfc;
  throw std::invalid_argument("unknown distribution strategy: " + s);
}

DistributionMapping DistributionMapping::make(const BoxArray& ba, int nranks,
                                              DistributionStrategy strategy) {
  std::vector<std::int64_t> weights(ba.size());
  for (std::size_t i = 0; i < ba.size(); ++i) weights[i] = ba[i].num_pts();
  return make(ba, nranks, strategy, weights);
}

DistributionMapping DistributionMapping::make(
    const BoxArray& ba, int nranks, DistributionStrategy strategy,
    const std::vector<std::int64_t>& weights) {
  AMRIO_EXPECTS(nranks >= 1);
  AMRIO_EXPECTS(weights.size() == ba.size());
  const std::size_t n = ba.size();
  std::vector<int> owner(n, 0);

  switch (strategy) {
    case DistributionStrategy::kRoundRobin: {
      for (std::size_t i = 0; i < n; ++i)
        owner[i] = static_cast<int>(i % static_cast<std::size_t>(nranks));
      break;
    }
    case DistributionStrategy::kKnapsack: {
      // Longest-processing-time greedy: heaviest box to the lightest rank.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return weights[a] > weights[b];
                       });
      // min-heap of (load, rank); rank index breaks ties deterministically
      using Entry = std::pair<std::int64_t, int>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
      for (int r = 0; r < nranks; ++r) heap.push({0, r});
      for (std::size_t idx : order) {
        auto [load, rank] = heap.top();
        heap.pop();
        owner[idx] = rank;
        heap.push({load + weights[idx], rank});
      }
      break;
    }
    case DistributionStrategy::kSfc: {
      // Order boxes along the Morton curve of their centers, then cut the
      // curve into nranks contiguous chunks of near-equal weight.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::vector<std::uint64_t> code(n);
      for (std::size_t i = 0; i < n; ++i) {
        const Box& b = ba[i];
        const auto cx = static_cast<std::uint32_t>(
            (b.lo(0) + b.hi(0)) / 2 + (1 << 30));
        const auto cy = static_cast<std::uint32_t>(
            (b.lo(1) + b.hi(1)) / 2 + (1 << 30));
        code[i] = morton_encode(cx, cy);
      }
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return code[a] < code[b];
      });
      const std::int64_t total =
          std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
      const double per_rank =
          static_cast<double>(total) / static_cast<double>(nranks);
      std::int64_t acc = 0;
      int rank = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = order[k];
        // advance to the next rank when this rank's share is already met
        while (rank < nranks - 1 &&
               static_cast<double>(acc) >= per_rank * (rank + 1)) {
          ++rank;
        }
        owner[idx] = rank;
        acc += weights[idx];
      }
      break;
    }
  }
  return DistributionMapping(std::move(owner), nranks);
}

std::vector<std::size_t> DistributionMapping::boxes_of(int rank) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < owner_.size(); ++i)
    if (owner_[i] == rank) out.push_back(i);
  return out;
}

std::vector<std::int64_t> DistributionMapping::rank_weights(
    const std::vector<std::int64_t>& box_weights) const {
  AMRIO_EXPECTS(box_weights.size() == owner_.size());
  std::vector<std::int64_t> out(static_cast<std::size_t>(nranks_), 0);
  for (std::size_t i = 0; i < owner_.size(); ++i)
    out[static_cast<std::size_t>(owner_[i])] += box_weights[i];
  return out;
}

double DistributionMapping::imbalance(const BoxArray& ba) const {
  AMRIO_EXPECTS(ba.size() == owner_.size());
  std::vector<std::int64_t> weights(ba.size());
  for (std::size_t i = 0; i < ba.size(); ++i) weights[i] = ba[i].num_pts();
  const auto loads = rank_weights(weights);
  std::int64_t total = 0;
  std::int64_t mx = 0;
  for (auto w : loads) {
    total += w;
    mx = std::max(mx, w);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / nranks_;
  return static_cast<double>(mx) / mean;
}

}  // namespace amrio::mesh

#include "mesh/multifab.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace amrio::mesh {

MultiFab::MultiFab(BoxArray ba, DistributionMapping dm, int ncomp, int nghost)
    : ba_(std::move(ba)), dm_(std::move(dm)), ncomp_(ncomp), nghost_(nghost) {
  AMRIO_EXPECTS(ncomp >= 1);
  AMRIO_EXPECTS(nghost >= 0);
  AMRIO_EXPECTS(dm_.size() == ba_.size());
  fabs_.reserve(ba_.size());
  for (std::size_t i = 0; i < ba_.size(); ++i)
    fabs_.emplace_back(ba_[i].grow(nghost), ncomp);
}

void MultiFab::set_val(double v) {
  for (auto& f : fabs_) f.set_val(v);
}

void MultiFab::fill_boundary() {
  if (nghost_ == 0) return;
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    const Box grown = ba_[i].grow(nghost_);
    for (std::size_t j = 0; j < fabs_.size(); ++j) {
      if (i == j) continue;
      const Box overlap = grown & ba_[j];
      if (overlap.empty()) continue;
      fabs_[i].copy_from(fabs_[j], overlap, 0, 0, ncomp_);
    }
  }
}

void MultiFab::copy_valid_from(const MultiFab& src, int src_comp, int dst_comp,
                               int ncomp) {
  AMRIO_EXPECTS(src_comp + ncomp <= src.ncomp_);
  AMRIO_EXPECTS(dst_comp + ncomp <= ncomp_);
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    for (std::size_t j = 0; j < src.fabs_.size(); ++j) {
      const Box overlap = ba_[i] & src.ba_[j];
      if (overlap.empty()) continue;
      fabs_[i].copy_from(src.fabs_[j], overlap, src_comp, dst_comp, ncomp);
    }
  }
}

double MultiFab::min(int comp) const {
  double out = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < fabs_.size(); ++i)
    out = std::min(out, fabs_[i].min(ba_[i], comp));
  return out;
}

double MultiFab::max(int comp) const {
  double out = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < fabs_.size(); ++i)
    out = std::max(out, fabs_[i].max(ba_[i], comp));
  return out;
}

double MultiFab::sum(int comp) const {
  double out = 0.0;
  for (std::size_t i = 0; i < fabs_.size(); ++i) out += fabs_[i].sum(ba_[i], comp);
  return out;
}

std::uint64_t MultiFab::bytes_on_rank(int rank) const {
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    if (dm_.owner(i) == rank)
      bytes += static_cast<std::uint64_t>(ba_[i].num_pts()) * ncomp_ * sizeof(double);
  }
  return bytes;
}

}  // namespace amrio::mesh

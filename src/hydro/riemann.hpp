#pragma once
/// \file riemann.hpp
/// HLL approximate Riemann solver for the 2D Euler equations, applied
/// dimension-by-dimension (dir 0 = x faces, dir 1 = y faces).

#include "hydro/eos.hpp"
#include "hydro/state.hpp"

namespace amrio::hydro {

/// Physical flux of the conserved state in direction `dir`.
Cons euler_flux(const Prim& q, const GammaLawEos& eos, int dir);

/// HLL flux across a face with left state `ql` and right state `qr`.
Cons hll_flux(const Prim& ql, const Prim& qr, const GammaLawEos& eos, int dir);

}  // namespace amrio::hydro

#include "hydro/derive.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace amrio::hydro {

const std::vector<std::string>& plot_var_names() {
  static const std::vector<std::string> kNames = {
      "density", "xmom", "ymom", "rho_E",
      "x_velocity", "y_velocity", "pressure", "MachNumber",
  };
  return kNames;
}

int num_plot_vars() { return static_cast<int>(plot_var_names().size()); }

int plot_var_index(const std::string& name) {
  const auto& names = plot_var_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<int>(i);
  throw std::out_of_range("unknown plot variable: " + name);
}

void derive_plot_vars(const mesh::Fab& state, const mesh::Box& valid,
                      mesh::Fab& out, const GammaLawEos& eos) {
  AMRIO_EXPECTS(out.ncomp() == num_plot_vars());
  const mesh::Box region = valid & state.box() & out.box();
  for (int j = region.lo(1); j <= region.hi(1); ++j) {
    for (int i = region.lo(0); i <= region.hi(0); ++i) {
      const mesh::IntVect p{i, j};
      const Cons c{state(p, kURho), state(p, kUMx), state(p, kUMy),
                   state(p, kUEden)};
      const Prim q = eos.to_prim(c);
      const double speed = std::sqrt(q.u * q.u + q.v * q.v);
      const double mach = speed / eos.sound_speed(q.rho, q.p);
      out(p, 0) = c[kURho];
      out(p, 1) = c[kUMx];
      out(p, 2) = c[kUMy];
      out(p, 3) = c[kUEden];
      out(p, 4) = q.u;
      out(p, 5) = q.v;
      out(p, 6) = q.p;
      out(p, 7) = mach;
    }
  }
}

}  // namespace amrio::hydro

#pragma once
/// \file bc.hpp
/// Physical domain boundary fill. The paper's Sedov inputs use outflow on
/// every face (`castro.lo_bc = 2 2`, `castro.hi_bc = 2 2`); reflecting walls
/// are provided for solver tests.

#include "mesh/fab.hpp"

namespace amrio::hydro {

enum class BcType { kOutflow, kReflect };

/// Fill every ghost cell of `fab` lying outside `domain` according to `bc`.
/// Ghost cells inside the domain are untouched (they are filled by same-level
/// exchange or coarse-fine interpolation).
void fill_domain_boundary(mesh::Fab& fab, const mesh::Box& domain, BcType bc);

}  // namespace amrio::hydro

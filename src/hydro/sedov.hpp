#pragma once
/// \file sedov.hpp
/// Initial condition for the Sedov–Taylor blast wave, the paper's benchmark
/// problem ("2D cylindrical case in Cartesian coordinates"): a quiescent
/// ambient gas with a finite-radius energy deposit whose self-similar
/// expansion drives the AMR hierarchy the I/O study measures.

#include <array>

#include "mesh/fab.hpp"
#include "mesh/geometry.hpp"

namespace amrio::hydro {

struct SedovParams {
  double rho_ambient = 1.0;
  double p_ambient = 1.0e-5;
  double blast_energy = 1.0;          ///< total deposited energy
  double r_init = 0.01;               ///< deposit radius (physical units)
  std::array<double, 2> center{0.5, 0.5};
  double gamma = 1.4;
};

/// Fill the `valid` cells of `fab` (conserved components) with the Sedov
/// initial state. Cells partially inside the deposit radius get an
/// area-weighted share of the blast pressure (4×4 subsampling), so the
/// deposited energy is resolution-robust.
void init_sedov(mesh::Fab& fab, const mesh::Box& valid,
                const mesh::Geometry& geom, const SedovParams& params);

}  // namespace amrio::hydro

#include "hydro/sedov.hpp"

#include <cmath>

#include "hydro/eos.hpp"
#include "util/assert.hpp"

namespace amrio::hydro {

void init_sedov(mesh::Fab& fab, const mesh::Box& valid,
                const mesh::Geometry& geom, const SedovParams& params) {
  AMRIO_EXPECTS(fab.ncomp() >= kNCons);
  AMRIO_EXPECTS(params.r_init > 0);
  const GammaLawEos eos(params.gamma);
  const double dx = geom.cell_size(0);
  const double dy = geom.cell_size(1);

  // 2D (cylindrical) energy density: E / (pi r^2) spread over the deposit
  // disc, expressed as a pressure via the gamma-law relation.
  const double volume = M_PI * params.r_init * params.r_init;
  const double p_blast = (params.gamma - 1.0) * params.blast_energy / volume;

  constexpr int kSub = 4;  // subsampling for partial-coverage cells
  const mesh::Box region = valid & fab.box();
  for (int j = region.lo(1); j <= region.hi(1); ++j) {
    for (int i = region.lo(0); i <= region.hi(0); ++i) {
      const auto lo = geom.cell_lo({i, j});
      int inside = 0;
      for (int sj = 0; sj < kSub; ++sj) {
        for (int si = 0; si < kSub; ++si) {
          const double x = lo[0] + (si + 0.5) * dx / kSub - params.center[0];
          const double y = lo[1] + (sj + 0.5) * dy / kSub - params.center[1];
          if (x * x + y * y < params.r_init * params.r_init) ++inside;
        }
      }
      const double frac = static_cast<double>(inside) / (kSub * kSub);
      Prim q;
      q.rho = params.rho_ambient;
      q.u = 0.0;
      q.v = 0.0;
      q.p = params.p_ambient + frac * p_blast;
      const Cons c = eos.to_cons(q);
      for (int n = 0; n < kNCons; ++n) fab({i, j}, n) = c[n];
    }
  }
}

}  // namespace amrio::hydro

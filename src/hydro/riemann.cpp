#include "hydro/riemann.hpp"

#include <algorithm>
#include <cmath>

namespace amrio::hydro {

Cons euler_flux(const Prim& q, const GammaLawEos& eos, int dir) {
  const double vel = (dir == 0) ? q.u : q.v;
  const double rho_e =
      q.p / (eos.gamma() - 1.0) + 0.5 * q.rho * (q.u * q.u + q.v * q.v);
  Cons f;
  f[kURho] = q.rho * vel;
  f[kUMx] = q.rho * q.u * vel + ((dir == 0) ? q.p : 0.0);
  f[kUMy] = q.rho * q.v * vel + ((dir == 1) ? q.p : 0.0);
  f[kUEden] = (rho_e + q.p) * vel;
  return f;
}

Cons hll_flux(const Prim& ql, const Prim& qr, const GammaLawEos& eos, int dir) {
  const double ul = (dir == 0) ? ql.u : ql.v;
  const double ur = (dir == 0) ? qr.u : qr.v;
  const double cl = eos.sound_speed(ql.rho, ql.p);
  const double cr = eos.sound_speed(qr.rho, qr.p);

  // Davis wave-speed estimates.
  const double sl = std::min(ul - cl, ur - cr);
  const double sr = std::max(ul + cl, ur + cr);

  const Cons fl = euler_flux(ql, eos, dir);
  const Cons fr = euler_flux(qr, eos, dir);
  if (sl >= 0.0) return fl;
  if (sr <= 0.0) return fr;

  const Cons cons_l = eos.to_cons(ql);
  const Cons cons_r = eos.to_cons(qr);
  Cons f;
  const double inv = 1.0 / (sr - sl);
  for (int n = 0; n < kNCons; ++n) {
    f[n] = (sr * fl[n] - sl * fr[n] + sl * sr * (cons_r[n] - cons_l[n])) * inv;
  }
  return f;
}

}  // namespace amrio::hydro

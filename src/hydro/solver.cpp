#include "hydro/solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hydro/riemann.hpp"
#include "util/assert.hpp"

namespace amrio::hydro {

namespace {
double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return (std::abs(a) < std::abs(b)) ? a : b;
}

Prim load_prim(const mesh::Fab& f, mesh::IntVect p, const GammaLawEos& eos) {
  Cons c{f(p, kURho), f(p, kUMx), f(p, kUMy), f(p, kUEden)};
  return eos.to_prim(c);
}
}  // namespace

double HydroSolver::max_stable_dt(const mesh::Fab& state, const mesh::Box& valid,
                                  double dx, double dy) const {
  AMRIO_EXPECTS(dx > 0 && dy > 0);
  double dt = std::numeric_limits<double>::infinity();
  for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
    for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
      const Prim q = load_prim(state, {i, j}, eos_);
      const double c = eos_.sound_speed(q.rho, q.p);
      dt = std::min(dt, dx / (std::abs(q.u) + c));
      dt = std::min(dt, dy / (std::abs(q.v) + c));
    }
  }
  return dt;
}

void HydroSolver::sweep(mesh::Fab& state, const mesh::Box& valid, int dir,
                        double dxd, double dt) const {
  // Primitive states over valid grown by 2 in the sweep direction.
  const mesh::IntVect gvec = (dir == 0) ? mesh::IntVect(kGhost, 0)
                                        : mesh::IntVect(0, kGhost);
  const mesh::Box work = valid.grow(gvec);
  AMRIO_EXPECTS_MSG(state.box().contains(work),
                    "hydro sweep needs " << kGhost << " ghost cells");

  const mesh::IntVect unit = (dir == 0) ? mesh::IntVect(1, 0) : mesh::IntVect(0, 1);

  std::vector<Prim> prim(static_cast<std::size_t>(work.num_pts()));
  auto pidx = [&work](mesh::IntVect p) {
    return static_cast<std::size_t>(mesh::linear_index(work, p));
  };
  for (int j = work.lo(1); j <= work.hi(1); ++j)
    for (int i = work.lo(0); i <= work.hi(0); ++i)
      prim[pidx({i, j})] = load_prim(state, {i, j}, eos_);

  // Slopes over valid grown by 1 in the sweep direction.
  const mesh::Box slope_box = valid.grow(unit);
  std::vector<Prim> slope(static_cast<std::size_t>(slope_box.num_pts()));
  auto sidx = [&slope_box](mesh::IntVect p) {
    return static_cast<std::size_t>(mesh::linear_index(slope_box, p));
  };
  if (opts_.second_order) {
    for (int j = slope_box.lo(1); j <= slope_box.hi(1); ++j) {
      for (int i = slope_box.lo(0); i <= slope_box.hi(0); ++i) {
        const mesh::IntVect p{i, j};
        const Prim& qm = prim[pidx(p - unit)];
        const Prim& q0 = prim[pidx(p)];
        const Prim& qp = prim[pidx(p + unit)];
        Prim& s = slope[sidx(p)];
        s.rho = minmod(q0.rho - qm.rho, qp.rho - q0.rho);
        s.u = minmod(q0.u - qm.u, qp.u - q0.u);
        s.v = minmod(q0.v - qm.v, qp.v - q0.v);
        s.p = minmod(q0.p - qm.p, qp.p - q0.p);
      }
    }
  }

  // Fluxes at faces lo..hi+1 along dir within each transverse row.
  // faces are indexed by the cell to their right.
  const mesh::Box face_box(valid.lo(), valid.hi() + unit);
  std::vector<Cons> flux(static_cast<std::size_t>(face_box.num_pts()));
  auto fidx = [&face_box](mesh::IntVect p) {
    return static_cast<std::size_t>(mesh::linear_index(face_box, p));
  };
  for (int j = face_box.lo(1); j <= face_box.hi(1); ++j) {
    for (int i = face_box.lo(0); i <= face_box.hi(0); ++i) {
      const mesh::IntVect p{i, j};  // face between p-unit and p
      Prim ql = prim[pidx(p - unit)];
      Prim qr = prim[pidx(p)];
      if (opts_.second_order) {
        const Prim& sl = slope[sidx(p - unit)];
        const Prim& sr = slope[sidx(p)];
        ql.rho += 0.5 * sl.rho;
        ql.u += 0.5 * sl.u;
        ql.v += 0.5 * sl.v;
        ql.p += 0.5 * sl.p;
        qr.rho -= 0.5 * sr.rho;
        qr.u -= 0.5 * sr.u;
        qr.v -= 0.5 * sr.v;
        qr.p -= 0.5 * sr.p;
        ql.rho = std::max(ql.rho, kRhoFloor);
        ql.p = std::max(ql.p, kPressureFloor);
        qr.rho = std::max(qr.rho, kRhoFloor);
        qr.p = std::max(qr.p, kPressureFloor);
      }
      flux[fidx(p)] = hll_flux(ql, qr, eos_, dir);
    }
  }

  const double lambda = dt / dxd;
  for (int j = valid.lo(1); j <= valid.hi(1); ++j) {
    for (int i = valid.lo(0); i <= valid.hi(0); ++i) {
      const mesh::IntVect p{i, j};
      const Cons& f_lo = flux[fidx(p)];
      const Cons& f_hi = flux[fidx(p + unit)];
      for (int n = 0; n < kNCons; ++n) {
        state(p, n) -= lambda * (f_hi[n] - f_lo[n]);
      }
      // Apply floors to keep the near-vacuum ambient state physical.
      state(p, kURho) = std::max(state(p, kURho), kRhoFloor);
      const double rho = state(p, kURho);
      const double kinetic =
          0.5 * (state(p, kUMx) * state(p, kUMx) + state(p, kUMy) * state(p, kUMy)) /
          rho;
      const double min_eden = kinetic + kPressureFloor / (eos_.gamma() - 1.0);
      state(p, kUEden) = std::max(state(p, kUEden), min_eden);
    }
  }
}

void HydroSolver::advance(mesh::Fab& state, const mesh::Box& valid, double dx,
                          double dy, double dt) const {
  AMRIO_EXPECTS(dt > 0);
  sweep(state, valid, 0, dx, dt);
  sweep(state, valid, 1, dy, dt);
}

}  // namespace amrio::hydro

#pragma once
/// \file derive.hpp
/// Derived plot variables. Castro's `amr.derive_plot_vars = ALL` adds derived
/// fields to the four conserved ones in every plotfile; we provide the subset
/// relevant to the Sedov study (including the Mach number shown in the
/// paper's Fig. 4b). The count of plot variables directly scales plotfile
/// bytes, which the model's Eq. (3) correction factor f absorbs.

#include <string>
#include <vector>

#include "hydro/eos.hpp"
#include "mesh/fab.hpp"

namespace amrio::hydro {

/// Names of the plotted variables, in component order.
const std::vector<std::string>& plot_var_names();

/// Number of plot variables (== plot_var_names().size()).
int num_plot_vars();

/// Fill `out` (num_plot_vars() components over `valid`) from the conserved
/// `state`.
void derive_plot_vars(const mesh::Fab& state, const mesh::Box& valid,
                      mesh::Fab& out, const GammaLawEos& eos);

/// Index of a named plot variable; throws std::out_of_range when unknown.
int plot_var_index(const std::string& name);

}  // namespace amrio::hydro

#pragma once
/// \file solver.hpp
/// Second-order (MUSCL/minmod + HLL) dimension-split finite-volume update for
/// the 2D Euler equations on a single Fab, plus the CFL timestep estimate.
/// Needs `kGhost` filled ghost cells around the valid box.

#include "hydro/eos.hpp"
#include "mesh/fab.hpp"

namespace amrio::hydro {

/// Ghost cells the solver needs (1 for the stencil + 1 for slopes).
inline constexpr int kGhost = 2;

struct SolverOptions {
  double gamma = 1.4;
  /// Use piecewise-linear (minmod) reconstruction; false = first-order Godunov.
  bool second_order = true;
};

class HydroSolver {
 public:
  explicit HydroSolver(SolverOptions opts = {}) : opts_(opts), eos_(opts.gamma) {}

  const GammaLawEos& eos() const { return eos_; }

  /// Largest stable dt on `valid` cells of `state` by the CFL criterion
  /// (cfl multiplication is the caller's job, matching Castro's castro.cfl).
  double max_stable_dt(const mesh::Fab& state, const mesh::Box& valid,
                       double dx, double dy) const;

  /// Advance `state` over its `valid` box by dt (x-sweep then y-sweep; the
  /// caller alternates parity if desired). Ghost cells must be pre-filled.
  void advance(mesh::Fab& state, const mesh::Box& valid, double dx, double dy,
               double dt) const;

 private:
  void sweep(mesh::Fab& state, const mesh::Box& valid, int dir, double dxd,
             double dt) const;

  SolverOptions opts_;
  GammaLawEos eos_;
};

}  // namespace amrio::hydro

#pragma once
/// \file state.hpp
/// Conserved/primitive state definitions for the 2D compressible Euler
/// equations — the hydrodynamics Castro solves for the Sedov benchmark.

#include <array>

namespace amrio::hydro {

/// Conserved component indices (Castro naming).
inline constexpr int kURho = 0;   ///< density
inline constexpr int kUMx = 1;    ///< x-momentum
inline constexpr int kUMy = 2;    ///< y-momentum
inline constexpr int kUEden = 3;  ///< total energy density rho E
inline constexpr int kNCons = 4;

using Cons = std::array<double, kNCons>;

/// Primitive state.
struct Prim {
  double rho = 0.0;
  double u = 0.0;
  double v = 0.0;
  double p = 0.0;
};

/// Numerical floors keeping the near-vacuum Sedov ambient state positive.
inline constexpr double kRhoFloor = 1.0e-12;
inline constexpr double kPressureFloor = 1.0e-14;

}  // namespace amrio::hydro

#pragma once
/// \file eos.hpp
/// Gamma-law (ideal gas) equation of state, the EOS Castro uses for the
/// Sedov test.

#include <algorithm>
#include <cmath>

#include "hydro/state.hpp"

namespace amrio::hydro {

class GammaLawEos {
 public:
  explicit constexpr GammaLawEos(double gamma = 1.4) : gamma_(gamma) {}

  constexpr double gamma() const { return gamma_; }

  /// p from density and specific internal energy e.
  constexpr double pressure(double rho, double e_int) const {
    return std::max((gamma_ - 1.0) * rho * e_int, kPressureFloor);
  }

  /// specific internal energy from density and pressure.
  constexpr double internal_energy(double rho, double p) const {
    return p / ((gamma_ - 1.0) * std::max(rho, kRhoFloor));
  }

  double sound_speed(double rho, double p) const {
    return std::sqrt(gamma_ * std::max(p, kPressureFloor) /
                     std::max(rho, kRhoFloor));
  }

  /// Conserved -> primitive with floors applied.
  Prim to_prim(const Cons& c) const {
    Prim q;
    q.rho = std::max(c[kURho], kRhoFloor);
    q.u = c[kUMx] / q.rho;
    q.v = c[kUMy] / q.rho;
    const double kinetic = 0.5 * q.rho * (q.u * q.u + q.v * q.v);
    const double e_int_density = c[kUEden] - kinetic;
    q.p = std::max((gamma_ - 1.0) * e_int_density, kPressureFloor);
    return q;
  }

  /// Primitive -> conserved.
  Cons to_cons(const Prim& q) const {
    Cons c;
    c[kURho] = q.rho;
    c[kUMx] = q.rho * q.u;
    c[kUMy] = q.rho * q.v;
    c[kUEden] = q.p / (gamma_ - 1.0) + 0.5 * q.rho * (q.u * q.u + q.v * q.v);
    return c;
  }

 private:
  double gamma_;
};

}  // namespace amrio::hydro

#include "hydro/bc.hpp"

#include <algorithm>

#include "hydro/state.hpp"
#include "util/assert.hpp"

namespace amrio::hydro {

void fill_domain_boundary(mesh::Fab& fab, const mesh::Box& domain, BcType bc) {
  const mesh::Box fb = fab.box();
  if (domain.contains(fb)) return;
  for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
    for (int i = fb.lo(0); i <= fb.hi(0); ++i) {
      if (domain.contains({i, j})) continue;
      // nearest interior cell
      const int ci = std::clamp(i, domain.lo(0), domain.hi(0));
      const int cj = std::clamp(j, domain.lo(1), domain.hi(1));
      for (int n = 0; n < fab.ncomp(); ++n)
        fab({i, j}, n) = fab({ci, cj}, n);
      if (bc == BcType::kReflect) {
        // mirror the wall-normal momentum
        if (i != ci) fab({i, j}, kUMx) = -fab({i, j}, kUMx);
        if (j != cj) fab({i, j}, kUMy) = -fab({i, j}, kUMy);
      }
    }
  }
}

}  // namespace amrio::hydro

#pragma once
/// \file timer.hpp
/// Wall-clock timer for coarse instrumentation of bench drivers.

#include <chrono>

namespace amrio::util {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction/reset.
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace amrio::util

#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::util {

namespace {
double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-300));
}
}  // namespace

std::string plot_xy(const std::vector<Series>& series, const PlotOptions& opts) {
  AMRIO_EXPECTS(opts.width >= 16 && opts.height >= 4);
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    AMRIO_EXPECTS(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (opts.log_x && s.x[i] <= 0) continue;
      if (opts.log_y && s.y[i] <= 0) continue;
      const double x = transform(s.x[i], opts.log_x);
      const double y = transform(s.y[i], opts.log_y);
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << '\n';
  if (!any) {
    os << "(no plottable points)\n";
    return os.str();
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(opts.height),
                                std::string(static_cast<std::size_t>(opts.width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = static_cast<char>('a' + (si % 26));
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (opts.log_x && s.x[i] <= 0) continue;
      if (opts.log_y && s.y[i] <= 0) continue;
      const double x = transform(s.x[i], opts.log_x);
      const double y = transform(s.y[i], opts.log_y);
      int col = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) *
                                             (opts.width - 1)));
      int row = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) *
                                             (opts.height - 1)));
      col = std::clamp(col, 0, opts.width - 1);
      row = std::clamp(row, 0, opts.height - 1);
      // row 0 at the top of the output
      grid[static_cast<std::size_t>(opts.height - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  const std::string ymax_s = format_g(opts.log_y ? std::pow(10, ymax) : ymax, 4);
  const std::string ymin_s = format_g(opts.log_y ? std::pow(10, ymin) : ymin, 4);
  os << "  " << opts.y_label << (opts.log_y ? " (log)" : "") << '\n';
  for (int r = 0; r < opts.height; ++r) {
    if (r == 0)
      os << ymax_s << std::string(ymax_s.size() < 10 ? 10 - ymax_s.size() : 1, ' ');
    else if (r == opts.height - 1)
      os << ymin_s << std::string(ymin_s.size() < 10 ? 10 - ymin_s.size() : 1, ' ');
    else
      os << std::string(10, ' ');
    os << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(opts.width), '-')
     << '\n';
  os << std::string(11, ' ')
     << format_g(opts.log_x ? std::pow(10, xmin) : xmin, 4) << " .. "
     << format_g(opts.log_x ? std::pow(10, xmax) : xmax, 4) << "  ["
     << opts.x_label << (opts.log_x ? ", log" : "") << "]\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  (" << static_cast<char>('a' + (si % 26)) << ") " << series[si].label
       << '\n';
  }
  return os.str();
}

std::string heatmap(const std::vector<double>& field, int nx, int ny,
                    const std::string& title, int max_cols) {
  AMRIO_EXPECTS(nx > 0 && ny > 0);
  AMRIO_EXPECTS(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) ==
                field.size());
  static constexpr const char* kShades = " .:-=+*#%@";
  const int nshades = 10;

  const int stride = std::max(1, nx / max_cols);
  const int out_nx = (nx + stride - 1) / stride;
  const int out_ny = (ny + stride - 1) / stride;

  double vmin = field[0];
  double vmax = field[0];
  for (double v : field) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const double range = (vmax > vmin) ? (vmax - vmin) : 1.0;

  std::ostringstream os;
  if (!title.empty())
    os << title << "  [min=" << format_g(vmin, 4) << " max=" << format_g(vmax, 4)
       << "]\n";
  for (int oj = out_ny - 1; oj >= 0; --oj) {
    for (int oi = 0; oi < out_nx; ++oi) {
      // average the stride x stride block
      double acc = 0.0;
      int cnt = 0;
      for (int j = oj * stride; j < std::min(ny, (oj + 1) * stride); ++j)
        for (int i = oi * stride; i < std::min(nx, (oi + 1) * stride); ++i) {
          acc += field[static_cast<std::size_t>(j) * nx + i];
          ++cnt;
        }
      const double v = acc / std::max(cnt, 1);
      int shade = static_cast<int>((v - vmin) / range * (nshades - 1));
      shade = std::clamp(shade, 0, nshades - 1);
      os << kShades[shade];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace amrio::util

#pragma once
/// \file rng.hpp
/// Deterministic, explicitly-seeded random number generation. Every stochastic
/// component in the library (PFS variability, synthetic fill data, tie
/// breaking) draws from these generators so runs are reproducible bit-for-bit.

#include <cmath>
#include <cstdint>

namespace amrio::util {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality PRNG for simulation noise.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // tiny modulo bias is irrelevant for simulation noise, but we keep the
    // widening multiply for uniformity across the full 64-bit range.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * n) >> 64);
  }

  /// Standard normal via Box–Muller (one value per call; simple and stateless).
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with E[ln X] = mu, SD[ln X] = sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace amrio::util

#pragma once
/// \file inputs.hpp
/// Parser for AMReX-style inputs files — the exact format of the paper's
/// Listing 2 (Castro `inputs.2d.cyl_in_cartcoords`):
///
///     # comment
///     amr.n_cell = 32 32
///     castro.cfl = 0.5
///
/// Keys are dotted strings; values are whitespace-separated tokens; `#` starts
/// a comment anywhere on a line. Typed getters convert on demand.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace amrio::util {

class InputsFile {
 public:
  InputsFile() = default;

  /// Parse from a string buffer. Throws std::invalid_argument on lines that
  /// are neither blank, comment, nor `key = values`.
  static InputsFile from_string(const std::string& text);
  /// Parse from a file on disk. Throws std::runtime_error if unreadable.
  static InputsFile from_file(const std::string& path);

  bool contains(const std::string& key) const;
  std::size_t size() const { return values_.size(); }
  std::vector<std::string> keys() const;

  /// Raw token list for `key`; empty optional when the key is absent.
  std::optional<std::vector<std::string>> query(const std::string& key) const;

  // Typed getters: `get_*` throw std::out_of_range when the key is missing
  // and std::invalid_argument when conversion fails; `get_*_or` substitute a
  // fallback when the key is missing (but still throw on bad conversions).
  std::string get_string(const std::string& key) const;
  std::string get_string_or(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key) const;
  double get_double_or(const std::string& key, double dflt) const;
  std::vector<std::int64_t> get_int_list(const std::string& key) const;
  std::vector<std::int64_t> get_int_list_or(const std::string& key,
                                            std::vector<std::int64_t> dflt) const;
  std::vector<double> get_double_list(const std::string& key) const;

  /// Set/override a value programmatically (used by the campaign runner to
  /// build parameterized cases from a baseline file).
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set_list(const std::string& key, const std::vector<std::int64_t>& values);

  /// Serialize back to the inputs-file text format (sorted by key).
  std::string to_string() const;

 private:
  const std::vector<std::string>& tokens(const std::string& key) const;
  std::map<std::string, std::vector<std::string>> values_;
};

}  // namespace amrio::util

#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/format.hpp"

namespace amrio::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  // AMRIO_LOG_LEVEL=debug|info|warn|error|off overrides the default so bench
  // runs can be made chatty without recompiling.
  if (const char* env = std::getenv("AMRIO_LOG_LEVEL")) {
    const std::string v = to_lower(env);
    if (v == "debug") level_ = LogLevel::kDebug;
    else if (v == "info") level_ = LogLevel::kInfo;
    else if (v == "warn") level_ = LogLevel::kWarn;
    else if (v == "error") level_ = LogLevel::kError;
    else if (v == "off") level_ = LogLevel::kOff;
  }
}

void Logger::log(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[amrio:%s] %s\n", to_string(level), msg.c_str());
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace amrio::util

#include "util/json.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::util {

void JsonWriter::comma_and_indent() {
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) os_ << ',';
    first_in_scope_.back() = false;
    if (pretty_) {
      os_ << '\n';
      for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
    }
  }
}

void JsonWriter::on_value() {
  AMRIO_EXPECTS_MSG(!wrote_root_ || !stack_.empty(),
                    "JSON: value after complete document");
  if (!stack_.empty() && stack_.back() == Scope::kObject) {
    AMRIO_EXPECTS_MSG(expecting_value_, "JSON: value in object without key");
  }
  expecting_value_ = false;
  wrote_root_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  AMRIO_EXPECTS(!stack_.empty() && stack_.back() == Scope::kObject);
  AMRIO_EXPECTS_MSG(!expecting_value_, "JSON: dangling key at end_object");
  const bool was_empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (pretty_ && !was_empty) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  AMRIO_EXPECTS(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool was_empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (pretty_ && !was_empty) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  AMRIO_EXPECTS_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "JSON: key outside object");
  AMRIO_EXPECTS_MSG(!expecting_value_, "JSON: two keys in a row");
  comma_and_indent();
  os_ << '"' << escape(k) << "\":";
  if (pretty_) os_ << ' ';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << format_g(v, 17);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  if (!expecting_value_) comma_and_indent();
  on_value();
  os_ << "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace amrio::util

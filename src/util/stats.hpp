#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used by the I/O characterization layer:
/// Welford running moments, percentiles, and load-imbalance metrics.

#include <cstdint>
#include <span>
#include <vector>

namespace amrio::util {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void push(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile, q in [0,1]. Copies and sorts.
double percentile(std::span<const double> values, double q);

/// max/mean ratio; the classic HPC load-imbalance factor. 1.0 == balanced.
/// Returns 0 for empty input or zero mean.
double imbalance_factor(std::span<const double> values);

/// Gini coefficient in [0,1]; 0 == perfectly even shares.
double gini(std::span<const double> values);

/// Coefficient of variation (stddev/mean); 0 when mean is 0.
double coeff_variation(std::span<const double> values);

/// Equal-width histogram of `values` into `nbins` bins over [min,max].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> counts;
};
Histogram histogram(std::span<const double> values, int nbins);

}  // namespace amrio::util

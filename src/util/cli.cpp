#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::util {

void ArgParser::add_option(const std::string& name, const std::string& help,
                           int nvalues, std::optional<std::string> default_value) {
  AMRIO_EXPECTS(nvalues >= 1);
  AMRIO_EXPECTS_MSG(options_.find(name) == options_.end(),
                    "duplicate option --" << name);
  Option opt;
  opt.help = help;
  opt.nvalues = nvalues;
  opt.default_value = std::move(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  AMRIO_EXPECTS_MSG(options_.find(name) == options_.end(),
                    "duplicate flag --" << name);
  Option opt;
  opt.help = help;
  opt.nvalues = 0;
  opt.is_flag = true;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void ArgParser::parse(const std::vector<std::string>& args) {
  std::size_t i = 0;
  while (i < args.size()) {
    const std::string& arg = args[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      ++i;
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end())
      throw std::invalid_argument("unknown option --" + name + "\n" + usage());
    Option& opt = it->second;
    opt.seen = true;
    opt.values.clear();
    if (opt.is_flag) {
      if (inline_value)
        throw std::invalid_argument("flag --" + name + " takes no value");
      ++i;
      continue;
    }
    if (inline_value) {
      if (opt.nvalues != 1)
        throw std::invalid_argument("--" + name + " needs " +
                                    std::to_string(opt.nvalues) + " values");
      opt.values.push_back(*inline_value);
      ++i;
      continue;
    }
    ++i;
    for (int k = 0; k < opt.nvalues; ++k) {
      if (i >= args.size())
        throw std::invalid_argument("missing value for --" + name);
      opt.values.push_back(args[i]);
      ++i;
    }
  }
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("option --" + name + " was never declared");
  return it->second;
}

bool ArgParser::has(const std::string& name) const {
  const Option& opt = find(name);
  return opt.seen || opt.default_value.has_value();
}

std::string ArgParser::get(const std::string& name) const {
  const Option& opt = find(name);
  if (opt.seen) return opt.values.at(0);
  if (opt.default_value) return *opt.default_value;
  throw std::invalid_argument("required option --" + name + " not given");
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  const Option& opt = find(name);
  if (opt.seen) return opt.values.at(0);
  if (opt.default_value) return *opt.default_value;
  return fallback;
}

std::vector<std::string> ArgParser::get_all(const std::string& name) const {
  const Option& opt = find(name);
  if (opt.seen) return opt.values;
  if (opt.default_value) return {*opt.default_value};
  return {};
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

std::int64_t ArgParser::get_int_or(const std::string& name,
                                   std::int64_t fallback) const {
  const Option& opt = find(name);
  if (!opt.seen && !opt.default_value) return fallback;
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

double ArgParser::get_double_or(const std::string& name, double fallback) const {
  const Option& opt = find(name);
  if (!opt.seen && !opt.default_value) return fallback;
  return std::stod(get(name));
}

bool ArgParser::flag(const std::string& name) const { return find(name).seen; }

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n" << description_ << "\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) {
      for (int k = 0; k < opt.nvalues; ++k) os << " <v" << (k + 1) << ">";
    }
    os << "  " << opt.help;
    if (opt.default_value) os << " (default: " << *opt.default_value << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace amrio::util

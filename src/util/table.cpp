#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/assert.hpp"

namespace amrio::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AMRIO_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  AMRIO_EXPECTS_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, table has "
                               << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

bool TextTable::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x')
      return false;
  }
  return true;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      os << ' ';
      if (align_numeric && looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };

  emit_sep();
  emit_row(headers_, false);
  emit_sep();
  for (const auto& row : rows_) emit_row(row, true);
  emit_sep();
  return os.str();
}

}  // namespace amrio::util

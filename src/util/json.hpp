#pragma once
/// \file json.hpp
/// Streaming JSON writer used by the MACSio `miftmpl` interface (the paper's
/// runs use MACSio's json output) and for machine-readable reports. Emits to
/// any std::ostream; correctness of nesting is contract-checked.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace amrio::util {

/// Stack-based streaming writer:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("steps").begin_array(); w.value(1); w.value(2); w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = false)
      : os_(os), pretty_(pretty) {}
  ~JsonWriter() = default;
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True once every opened scope is closed.
  bool complete() const { return stack_.empty() && wrote_root_; }

  static std::string escape(const std::string& s);

 private:
  enum class Scope { kObject, kArray };
  void comma_and_indent();
  void on_value();

  std::ostream& os_;
  bool pretty_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  // a key was just written
  bool wrote_root_ = false;
};

}  // namespace amrio::util

#pragma once
/// \file cli.hpp
/// Command-line parser for the example/bench executables and the MACSio-style
/// proxy CLI. Supports `--key value`, `--key=value`, `--flag`, and MACSio's
/// two-operand form `--parallel_file_mode MIF 8` via multi-value options.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace amrio::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declare an option taking `nvalues` values (default 1). `help` is shown by
  /// usage(). Options may be given defaults; flags take 0 values.
  void add_option(const std::string& name, const std::string& help,
                  int nvalues = 1, std::optional<std::string> default_value = {});
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws std::invalid_argument on unknown options or missing
  /// values. Positional arguments are collected in positional().
  void parse(int argc, const char* const* argv);
  void parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  /// First value of the option (or its default). Throws if absent.
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  std::vector<std::string> get_all(const std::string& name) const;

  std::int64_t get_int(const std::string& name) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool flag(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    int nvalues = 1;
    std::optional<std::string> default_value;
    bool is_flag = false;
    bool seen = false;
    std::vector<std::string> values;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace amrio::util

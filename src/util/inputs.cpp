#include "util/inputs.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace amrio::util {

InputsFile InputsFile::from_string(const std::string& text) {
  InputsFile f;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("inputs line " + std::to_string(lineno) +
                                  ": expected 'key = value', got '" + stripped +
                                  "'");
    const std::string key = trim(stripped.substr(0, eq));
    if (key.empty())
      throw std::invalid_argument("inputs line " + std::to_string(lineno) +
                                  ": empty key");
    // Empty values are allowed (the paper's Listing 2 has a bare
    // `amr.probin_file =` continuation); they parse to an empty token list.
    f.values_[key] = split_ws(stripped.substr(eq + 1));
  }
  return f;
}

InputsFile InputsFile::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("InputsFile: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(buf.str());
}

bool InputsFile::contains(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::vector<std::string> InputsFile::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::optional<std::vector<std::string>> InputsFile::query(
    const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::string>& InputsFile::tokens(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end())
    throw std::out_of_range("inputs key not found: " + key);
  return it->second;
}

std::string InputsFile::get_string(const std::string& key) const {
  const auto& t = tokens(key);
  if (t.empty()) throw std::invalid_argument("inputs key has no value: " + key);
  return t.front();
}

std::string InputsFile::get_string_or(const std::string& key,
                                      const std::string& dflt) const {
  if (!contains(key)) return dflt;
  return get_string(key);
}

std::int64_t InputsFile::get_int(const std::string& key) const {
  try {
    return std::stoll(get_string(key));
  } catch (const std::out_of_range&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument("inputs key " + key + ": not an integer");
  }
}

std::int64_t InputsFile::get_int_or(const std::string& key,
                                    std::int64_t dflt) const {
  if (!contains(key)) return dflt;
  return get_int(key);
}

double InputsFile::get_double(const std::string& key) const {
  try {
    return std::stod(get_string(key));
  } catch (const std::out_of_range&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument("inputs key " + key + ": not a number");
  }
}

double InputsFile::get_double_or(const std::string& key, double dflt) const {
  if (!contains(key)) return dflt;
  return get_double(key);
}

std::vector<std::int64_t> InputsFile::get_int_list(const std::string& key) const {
  const auto& t = tokens(key);
  std::vector<std::int64_t> out;
  out.reserve(t.size());
  for (const auto& s : t) {
    try {
      out.push_back(std::stoll(s));
    } catch (const std::exception&) {
      throw std::invalid_argument("inputs key " + key + ": bad integer '" + s +
                                  "'");
    }
  }
  return out;
}

std::vector<std::int64_t> InputsFile::get_int_list_or(
    const std::string& key, std::vector<std::int64_t> dflt) const {
  if (!contains(key)) return dflt;
  return get_int_list(key);
}

std::vector<double> InputsFile::get_double_list(const std::string& key) const {
  const auto& t = tokens(key);
  std::vector<double> out;
  out.reserve(t.size());
  for (const auto& s : t) {
    try {
      out.push_back(std::stod(s));
    } catch (const std::exception&) {
      throw std::invalid_argument("inputs key " + key + ": bad number '" + s +
                                  "'");
    }
  }
  return out;
}

void InputsFile::set(const std::string& key, const std::string& value) {
  values_[key] = split_ws(value);
}

void InputsFile::set(const std::string& key, std::int64_t value) {
  values_[key] = {std::to_string(value)};
}

void InputsFile::set(const std::string& key, double value) {
  values_[key] = {format_g(value, 17)};
}

void InputsFile::set_list(const std::string& key,
                          const std::vector<std::int64_t>& values) {
  std::vector<std::string> toks;
  toks.reserve(values.size());
  for (auto v : values) toks.push_back(std::to_string(v));
  values_[key] = std::move(toks);
}

std::string InputsFile::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) {
    os << k << " = " << join(v, " ") << '\n';
  }
  return os.str();
}

}  // namespace amrio::util

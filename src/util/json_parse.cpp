#include "util/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace amrio::util {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->num_v : dflt;
}

std::uint64_t JsonValue::u64_or(const std::string& key,
                                std::uint64_t dflt) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != Kind::kNumber || v->num_v < 0) return dflt;
  return static_cast<std::uint64_t>(v->num_v);
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str_v : dflt;
}

bool JsonValue::bool_or(const std::string& key, bool dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_v : dflt;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str_v = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.bool_v = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Our writers only escape control characters; encode the code
          // point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
      any = true;
    }
    if (!any) fail("expected a JSON value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + num + "'");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.num_v = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

}  // namespace amrio::util

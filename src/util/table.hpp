#pragma once
/// \file table.hpp
/// Fixed-width text table printer for bench output — every reproduced paper
/// table/figure prints a human-readable table alongside its CSV.

#include <string>
#include <vector>

namespace amrio::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment; numeric-looking cells are right-aligned.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static bool looks_numeric(const std::string& s);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amrio::util

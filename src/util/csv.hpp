#pragma once
/// \file csv.hpp
/// Tiny RFC-4180-ish CSV writer. Every bench emits its figure/table data as
/// CSV next to the human-readable text so results can be re-plotted.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace amrio::util {

class CsvWriter {
 public:
  /// Opens `path` for writing (parent directories must exist).
  /// Throws std::runtime_error when the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Write the header row. Must be called before any data rows.
  void header(const std::vector<std::string>& cols);

  CsvWriter& field(const std::string& v);
  CsvWriter& field(const char* v) { return field(std::string(v)); }
  CsvWriter& field(double v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  /// Finish the current row.
  void endrow();

  /// Convenience: write a full row of already-formatted cells.
  void row(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

  static std::string escape(const std::string& v);

 private:
  std::string path_;
  std::ofstream out_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t ncols_ = 0;
  std::size_t col_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace amrio::util

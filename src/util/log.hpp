#pragma once
/// \file log.hpp
/// Minimal leveled logger. Thread-safe; writes to stderr so bench/table output
/// on stdout stays machine-parseable.

#include <mutex>
#include <sstream>
#include <string>

namespace amrio::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global logger. Usage: `AMRIO_LOG_INFO("ran " << n << " steps");`
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& msg);

 private:
  Logger();
  LogLevel level_;
  std::mutex mu_;
};

const char* to_string(LogLevel level);

}  // namespace amrio::util

#define AMRIO_LOG_AT(lvl, expr)                                          \
  do {                                                                   \
    if (static_cast<int>(lvl) >=                                         \
        static_cast<int>(::amrio::util::Logger::instance().level())) {   \
      std::ostringstream os_;                                            \
      os_ << expr;                                                       \
      ::amrio::util::Logger::instance().log(lvl, os_.str());             \
    }                                                                    \
  } while (0)

#define AMRIO_LOG_DEBUG(expr) AMRIO_LOG_AT(::amrio::util::LogLevel::kDebug, expr)
#define AMRIO_LOG_INFO(expr) AMRIO_LOG_AT(::amrio::util::LogLevel::kInfo, expr)
#define AMRIO_LOG_WARN(expr) AMRIO_LOG_AT(::amrio::util::LogLevel::kWarn, expr)
#define AMRIO_LOG_ERROR(expr) AMRIO_LOG_AT(::amrio::util::LogLevel::kError, expr)

#include "util/format.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace amrio::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::uint64_t parse_bytes(std::string_view raw) {
  const std::string s = trim(raw);
  if (s.empty()) throw std::invalid_argument("parse_bytes: empty string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_bytes: no number in '" + s + "'");
  }
  if (value < 0) throw std::invalid_argument("parse_bytes: negative size '" + s + "'");
  std::string suffix = to_lower(trim(s.substr(pos)));
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = 1024.0;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = 1024.0 * 1024.0;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "t" || suffix == "tb" || suffix == "tib") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    throw std::invalid_argument("parse_bytes: unknown suffix '" + suffix + "'");
  }
  return static_cast<std::uint64_t>(std::llround(value * mult));
}

std::string zero_pad(std::uint64_t value, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", width,
                static_cast<unsigned long long>(value));
  return buf;
}

std::string format_g(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace amrio::util

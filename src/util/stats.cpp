#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace amrio::util {

void RunningStats::push(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  AMRIO_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

double imbalance_factor(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double mx = values[0];
  for (double v : values) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  return mx / mean;
}

double gini(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  double weighted = 0.0;
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    sum += v[i];
    weighted += static_cast<double>(i + 1) * v[i];
  }
  if (sum == 0.0) return 0.0;
  const double dn = static_cast<double>(n);
  return (2.0 * weighted) / (dn * sum) - (dn + 1.0) / dn;
}

double coeff_variation(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.push(v);
  if (rs.mean() == 0.0) return 0.0;
  return rs.stddev() / rs.mean();
}

Histogram histogram(std::span<const double> values, int nbins) {
  AMRIO_EXPECTS(nbins > 0);
  Histogram h;
  h.counts.assign(static_cast<std::size_t>(nbins), 0);
  if (values.empty()) return h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  const double width = (h.hi - h.lo) > 0 ? (h.hi - h.lo) : 1.0;
  for (double v : values) {
    int bin = static_cast<int>((v - h.lo) / width * nbins);
    bin = std::clamp(bin, 0, nbins - 1);
    ++h.counts[static_cast<std::size_t>(bin)];
  }
  return h;
}

}  // namespace amrio::util

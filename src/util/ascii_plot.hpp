#pragma once
/// \file ascii_plot.hpp
/// Terminal renderings for the paper's figures: XY scatter/line charts (Figs
/// 5–11) and 2D heatmaps (Fig 4's mesh/Mach views). Pure text, deterministic.

#include <string>
#include <vector>

namespace amrio::util {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;
  int height = 20;
  bool log_x = false;
  bool log_y = false;
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Multi-series scatter plot; each series gets a distinct glyph (a, b, c, ...).
std::string plot_xy(const std::vector<Series>& series, const PlotOptions& opts);

/// Render a row-major field (ny rows of nx) as a shade heatmap, darkest = max.
std::string heatmap(const std::vector<double>& field, int nx, int ny,
                    const std::string& title, int max_cols = 72);

}  // namespace amrio::util

#pragma once
/// \file assert.hpp
/// Contract-checking macros in the spirit of the C++ Core Guidelines GSL
/// `Expects`/`Ensures`. Logic errors throw `amrio::ContractViolation` so tests
/// can assert on them and callers get a stack-unwindable failure instead of an
/// abort. These stay enabled in release builds: this library favours
/// correctness diagnostics over the last few percent of speed.

#include <sstream>
#include <stdexcept>
#include <string>

namespace amrio {

/// Thrown when an AMRIO_EXPECTS/AMRIO_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace amrio

/// Precondition check; throws amrio::ContractViolation when violated.
#define AMRIO_EXPECTS(cond)                                                     \
  do {                                                                          \
    if (!(cond))                                                                \
      ::amrio::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, \
                                     "");                                       \
  } while (0)

/// Precondition check with a context message (streamed, e.g. `"n=" << n`).
#define AMRIO_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream os_;                                                   \
      os_ << msg;                                                               \
      ::amrio::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, \
                                     os_.str());                                \
    }                                                                           \
  } while (0)

/// Postcondition check; throws amrio::ContractViolation when violated.
#define AMRIO_ENSURES(cond)                                                      \
  do {                                                                           \
    if (!(cond))                                                                 \
      ::amrio::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__, \
                                     "");                                        \
  } while (0)

/// Postcondition check with a context message (streamed, e.g. `"n=" << n`).
#define AMRIO_ENSURES_MSG(cond, msg)                                             \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream os_;                                                    \
      os_ << msg;                                                                \
      ::amrio::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__, \
                                     os_.str());                                 \
    }                                                                            \
  } while (0)

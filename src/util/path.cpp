#include "util/path.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>

#include <unistd.h>

namespace fs = std::filesystem;

namespace amrio::util {

void make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw std::runtime_error("make_dirs(" + path + "): " + ec.message());
}

void remove_all(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) throw std::runtime_error("remove_all(" + path + "): " + ec.message());
}

std::string path_join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + (b.front() == '/' ? b.substr(1) : b);
  return a + (b.front() == '/' ? b : "/" + b);
}

bool path_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) throw std::runtime_error("file_size(" + path + "): " + ec.message());
  return static_cast<std::uint64_t>(size);
}

std::vector<std::string> list_files_recursive(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  const fs::path base(dir);
  for (auto it = fs::recursive_directory_iterator(base, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) throw std::runtime_error("list_files_recursive: " + ec.message());
    if (it->is_regular_file()) {
      out.push_back(fs::relative(it->path(), base).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string make_temp_dir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto name =
        prefix + "." + std::to_string(static_cast<std::uint64_t>(::getpid())) +
        "." + std::to_string(counter.fetch_add(1));
    const fs::path candidate = base / name;
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec)
      return candidate.generic_string();
  }
  throw std::runtime_error("make_temp_dir: exhausted attempts");
}

}  // namespace amrio::util

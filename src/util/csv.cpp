#include "util/csv.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace amrio::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  AMRIO_EXPECTS_MSG(!header_written_, "CSV header already written: " << path_);
  AMRIO_EXPECTS(!cols.empty());
  ncols_ = cols.size();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cols[i]);
  }
  out_ << '\n';
  header_written_ = true;
}

CsvWriter& CsvWriter::field(const std::string& v) {
  if (col_ > 0) out_ << ',';
  out_ << escape(v);
  ++col_;
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double v) { return field(format_g(v, 12)); }

CsvWriter& CsvWriter::field(std::uint64_t v) { return field(std::to_string(v)); }

CsvWriter& CsvWriter::field(std::int64_t v) { return field(std::to_string(v)); }

void CsvWriter::endrow() {
  AMRIO_EXPECTS_MSG(ncols_ == 0 || col_ == ncols_,
                    "CSV row has " << col_ << " fields, expected " << ncols_);
  out_ << '\n';
  col_ = 0;
  row_open_ = false;
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) field(c);
  endrow();
}

std::string CsvWriter::escape(const std::string& v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace amrio::util

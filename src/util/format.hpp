#pragma once
/// \file format.hpp
/// Small string and byte-size formatting helpers shared across the library.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace amrio::util {

/// Split `s` on `delim`, trimming nothing; empty tokens are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split `s` on runs of whitespace; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join the range [first,last) of strings with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// "1.50 GiB", "512 B", ... (binary prefixes, as I/O tools report).
std::string human_bytes(std::uint64_t bytes);

/// Parse byte sizes with optional binary suffix: "64", "64K", "1.5M", "2G".
/// Throws std::invalid_argument on malformed input.
std::uint64_t parse_bytes(std::string_view s);

/// Fixed-width zero-padded integer, e.g. zero_pad(7, 5) == "00007".
std::string zero_pad(std::uint64_t value, int width);

/// printf-style %g formatting with `digits` significant digits.
std::string format_g(double v, int digits = 6);

}  // namespace amrio::util

#pragma once
/// \file path.hpp
/// Filesystem helpers used by the POSIX storage backend and bench drivers.

#include <string>
#include <vector>

namespace amrio::util {

/// mkdir -p. Throws std::runtime_error on failure.
void make_dirs(const std::string& path);

/// rm -rf (no error if missing).
void remove_all(const std::string& path);

/// Join two path fragments with exactly one '/'.
std::string path_join(const std::string& a, const std::string& b);

/// True if the path exists (any file type).
bool path_exists(const std::string& path);

/// Size of a regular file in bytes; throws if missing.
std::uint64_t file_size(const std::string& path);

/// Recursive listing of regular files under `dir`, paths relative to `dir`,
/// sorted lexicographically. Missing dir → empty list.
std::vector<std::string> list_files_recursive(const std::string& dir);

/// A fresh unique scratch directory under the system temp dir, created now.
std::string make_temp_dir(const std::string& prefix);

}  // namespace amrio::util

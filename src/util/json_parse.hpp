#pragma once
/// \file json_parse.hpp
/// Minimal recursive-descent JSON reader — the inverse of JsonWriter, used
/// wherever the tree persists machine state it must read back (the campaign
/// result cache). Supports the full JSON value grammar minus exotic number
/// forms; inputs are trusted artifacts we wrote ourselves, so the error
/// handling is "throw with position", not a hardened parser.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace amrio::util {

/// A parsed JSON value. Object member order is preserved (our writers emit
/// deterministic key order, and round-trip tests rely on it).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> items;                              ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;    ///< kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  /// Typed member accessors with defaults — one-liners for readers of our
  /// own artifacts. A present member of the wrong kind returns the default.
  double number_or(const std::string& key, double dflt) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t dflt) const;
  std::string string_or(const std::string& key, const std::string& dflt) const;
  bool bool_or(const std::string& key, bool dflt) const;
};

/// Parse one JSON document. Throws std::runtime_error with a byte offset on
/// malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Parse the JSON document in `path`. Throws std::runtime_error when the
/// file cannot be read or does not parse.
JsonValue parse_json_file(const std::string& path);

}  // namespace amrio::util

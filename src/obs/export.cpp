#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace amrio::obs {
namespace {

constexpr double kMicros = 1e6;  // virtual seconds -> trace microseconds

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  return out;
}

/// RFC-4180 quoting for a CSV field: stage/resource names are free-form and
/// may contain commas (e.g. a detail like "level 2, step 7").
std::string csv_field(const std::string& v) {
  if (v.find_first_of(",\"\n\r") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string track_name(int rank) {
  return rank < 0 ? std::string("driver") : "rank " + std::to_string(rank);
}

void ChromeTraceEmitter::begin(const std::vector<TraceTrack>& tracks) {
  w_.begin_object();
  w_.key("displayTimeUnit").value("ms");
  w_.key("traceEvents").begin_array();
  for (const TraceTrack& t : tracks) {
    w_.begin_object();
    w_.key("ph").value("M");
    w_.key("pid").value(0);
    w_.key("tid").value(t.tid);
    w_.key("name").value("thread_name");
    w_.key("args").begin_object();
    w_.key("name").value(t.name);
    w_.end_object();
    w_.end_object();
  }
}

void ChromeTraceEmitter::span_event(const Span& s) {
  w_.begin_object();
  w_.key("ph").value("X");
  w_.key("pid").value(0);
  w_.key("tid").value(s.rank + 1);
  w_.key("name").value(s.stage);
  w_.key("cat").value("pipeline");
  w_.key("ts").value(s.start * kMicros);
  w_.key("dur").value((s.end - s.start) * kMicros);
  w_.key("args").begin_object();
  w_.key("id").value(std::uint64_t{s.id});
  if (s.parent != 0) w_.key("parent").value(std::uint64_t{s.parent});
  if (!s.detail.empty()) w_.key("detail").value(s.detail);
  if (s.wait > 0) {
    w_.key("wait_s").value(s.wait);
    w_.key("resource").value(s.resource);
  }
  if (!s.res.empty()) {
    w_.key("service_s").value(s.service);
    w_.key("res").value(s.res);
  }
  w_.end_object();
  w_.end_object();
}

void ChromeTraceEmitter::flow_pair(int from_rank, double from_end,
                                   int to_rank, double to_start) {
  ++flow_;
  w_.begin_object();
  w_.key("ph").value("s");
  w_.key("pid").value(0);
  w_.key("tid").value(from_rank + 1);
  w_.key("name").value("dep");
  w_.key("cat").value("edge");
  w_.key("id").value(std::uint64_t{flow_});
  w_.key("ts").value(from_end * kMicros);
  w_.end_object();
  w_.begin_object();
  w_.key("ph").value("f");
  w_.key("bp").value("e");
  w_.key("pid").value(0);
  w_.key("tid").value(to_rank + 1);
  w_.key("name").value("dep");
  w_.key("cat").value("edge");
  w_.key("id").value(std::uint64_t{flow_});
  w_.key("ts").value(to_start * kMicros);
  w_.end_object();
}

void ChromeTraceEmitter::finish() {
  w_.end_array();
  w_.end_object();
  os_ << "\n";
}

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::vector<SpanEdge>& edges) {
  ChromeTraceEmitter em(os);

  // Thread-name metadata, one per distinct rank track, rank order.
  std::set<int> ranks;
  for (const Span& s : spans) ranks.insert(s.rank);
  std::vector<TraceTrack> tracks;
  tracks.reserve(ranks.size());
  for (int rank : ranks) tracks.push_back({rank + 1, track_name(rank)});
  em.begin(tracks);

  std::unordered_map<std::uint64_t, const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span& s : spans) by_id.emplace(s.id, &s);

  for (const Span& s : spans) em.span_event(s);

  for (const SpanEdge& e : edges) {
    auto from_it = by_id.find(e.from);
    auto to_it = by_id.find(e.to);
    if (from_it == by_id.end() || to_it == by_id.end()) continue;
    const Span& from = *from_it->second;
    const Span& to = *to_it->second;
    em.flow_pair(from.rank, from.end, to.rank, to.start);
  }

  em.finish();
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("quantum").value(h.quantum);
    w.key("count").value(h.count);
    w.key("sum").value(h.sum());
    w.key("mean").value(h.mean());
    // Explicit bucket boundaries: index b holds units in [2^b, 2^(b+1)),
    // so in value terms [2^b * quantum, 2^(b+1) * quantum); index -1 holds
    // exact zeros (lo == hi == 0).
    w.key("buckets").begin_array();
    for (const auto& [bucket, count] : h.buckets) {
      w.begin_object();
      w.key("bucket").value(bucket);
      w.key("lo").value(bucket < 0 ? 0.0 : std::ldexp(1.0, bucket) * h.quantum);
      w.key("hi").value(bucket < 0 ? 0.0
                                   : std::ldexp(1.0, bucket + 1) * h.quantum);
      w.key("count").value(count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("series").begin_object();
  for (const auto& [name, ts] : snap.series) {
    w.key(name).begin_array();
    for (const auto& [t, v] : ts.samples) {
      w.begin_array();
      w.value(t);
      w.value(v);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();

  w.end_object();
  os << "\n";
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  // Pinned layout: header `kind,name,key,value`, then counters, gauges,
  // histograms (count, sum, buckets), series samples — each section in the
  // snapshot's (sorted-map) name order. bench_diff.py and downstream
  // scripts rely on this order; change it only with a schema version bump.
  os << "kind,name,key,value\n";
  auto fmt = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const auto& [name, v] : snap.counters)
    os << "counter," << csv_field(name) << ",," << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "gauge," << csv_field(name) << ",," << fmt(v) << "\n";
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << csv_field(name) << ",count," << h.count << "\n";
    os << "histogram," << csv_field(name) << ",sum," << fmt(h.sum()) << "\n";
    for (const auto& [bucket, count] : h.buckets)
      os << "histogram_bucket," << csv_field(name) << "," << bucket << ","
         << count << "\n";
  }
  for (const auto& [name, ts] : snap.series)
    for (const auto& [t, v] : ts.samples)
      os << "sample," << csv_field(name) << "," << fmt(t) << "," << fmt(v)
         << "\n";
}

void export_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream out = open_or_throw(path);
  write_chrome_trace(out, tracer.spans(), tracer.edges());
}

void export_metrics(const std::string& path, const MetricsSnapshot& snap) {
  std::ofstream out = open_or_throw(path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    write_metrics_csv(out, snap);
  else
    write_metrics_json(out, snap);
}

}  // namespace amrio::obs

#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"

namespace amrio::obs {
namespace {

constexpr double kMicros = 1e6;  // virtual seconds -> trace microseconds

std::string track_name(int rank) {
  return rank < 0 ? std::string("driver") : "rank " + std::to_string(rank);
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::vector<SpanEdge>& edges) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Thread-name metadata, one per distinct rank track, rank order.
  std::set<int> ranks;
  for (const Span& s : spans) ranks.insert(s.rank);
  for (int rank : ranks) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(rank + 1);
    w.key("name").value("thread_name");
    w.key("args").begin_object();
    w.key("name").value(track_name(rank));
    w.end_object();
    w.end_object();
  }

  std::unordered_map<std::uint64_t, const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span& s : spans) by_id.emplace(s.id, &s);

  for (const Span& s : spans) {
    w.begin_object();
    w.key("ph").value("X");
    w.key("pid").value(0);
    w.key("tid").value(s.rank + 1);
    w.key("name").value(s.stage);
    w.key("cat").value("pipeline");
    w.key("ts").value(s.start * kMicros);
    w.key("dur").value((s.end - s.start) * kMicros);
    w.key("args").begin_object();
    w.key("id").value(std::uint64_t{s.id});
    if (s.parent != 0) w.key("parent").value(std::uint64_t{s.parent});
    if (!s.detail.empty()) w.key("detail").value(s.detail);
    if (s.wait > 0) {
      w.key("wait_s").value(s.wait);
      w.key("resource").value(s.resource);
    }
    w.end_object();
    w.end_object();
  }

  // Happens-before edges as flow events: "s" anchored at the source span's
  // end, "f" (bp:"e") binding to the destination slice.
  std::uint64_t flow = 0;
  for (const SpanEdge& e : edges) {
    auto from_it = by_id.find(e.from);
    auto to_it = by_id.find(e.to);
    if (from_it == by_id.end() || to_it == by_id.end()) continue;
    const Span& from = *from_it->second;
    const Span& to = *to_it->second;
    ++flow;
    w.begin_object();
    w.key("ph").value("s");
    w.key("pid").value(0);
    w.key("tid").value(from.rank + 1);
    w.key("name").value("dep");
    w.key("cat").value("edge");
    w.key("id").value(std::uint64_t{flow});
    w.key("ts").value(from.end * kMicros);
    w.end_object();
    w.begin_object();
    w.key("ph").value("f");
    w.key("bp").value("e");
    w.key("pid").value(0);
    w.key("tid").value(to.rank + 1);
    w.key("name").value("dep");
    w.key("cat").value("edge");
    w.key("id").value(std::uint64_t{flow});
    w.key("ts").value(to.start * kMicros);
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << "\n";
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("quantum").value(h.quantum);
    w.key("count").value(h.count);
    w.key("sum").value(h.sum());
    w.key("mean").value(h.mean());
    w.key("buckets").begin_object();
    for (const auto& [bucket, count] : h.buckets)
      w.key(std::to_string(bucket)).value(count);
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.key("series").begin_object();
  for (const auto& [name, ts] : snap.series) {
    w.key(name).begin_array();
    for (const auto& [t, v] : ts.samples) {
      w.begin_array();
      w.value(t);
      w.value(v);
      w.end_array();
    }
    w.end_array();
  }
  w.end_object();

  w.end_object();
  os << "\n";
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  os << "kind,name,key,value\n";
  auto fmt = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const auto& [name, v] : snap.counters)
    os << "counter," << name << ",," << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "gauge," << name << ",," << fmt(v) << "\n";
  for (const auto& [name, h] : snap.histograms) {
    os << "histogram," << name << ",count," << h.count << "\n";
    os << "histogram," << name << ",sum," << fmt(h.sum()) << "\n";
    for (const auto& [bucket, count] : h.buckets)
      os << "histogram_bucket," << name << "," << bucket << "," << count
         << "\n";
  }
  for (const auto& [name, ts] : snap.series)
    for (const auto& [t, v] : ts.samples)
      os << "sample," << name << "," << fmt(t) << "," << fmt(v) << "\n";
}

void export_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream out = open_or_throw(path);
  write_chrome_trace(out, tracer.spans(), tracer.edges());
}

void export_metrics(const std::string& path, const MetricsSnapshot& snap) {
  std::ofstream out = open_or_throw(path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    write_metrics_csv(out, snap);
  else
    write_metrics_json(out, snap);
}

}  // namespace amrio::obs

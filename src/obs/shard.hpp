#pragma once
/// \file shard.hpp
/// Shared rank→sink sharding for the contention-free observability sinks
/// (obs::Tracer) and the I/O event log (iostats::TraceRecorder). A plain
/// `rank % nsinks` serializes stride-N rank patterns — at the 7-digit rank
/// counts exec::EventEngine enables, every aggregator of a 64-group topology
/// can land on one sink — so the rank is mixed through a splitmix64-style
/// finalizer first: any stride maps onto well-spread shards.

#include <cstddef>
#include <cstdint>

namespace amrio::obs {

/// Sink index of `rank` among `nsinks` sinks. Negative ranks (the driver/
/// global track uses -1) are valid. Pure function — callers may cache it.
inline std::size_t rank_shard(int rank, std::size_t nsinks) {
  std::uint64_t h = static_cast<std::uint64_t>(static_cast<std::int64_t>(rank));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % static_cast<std::uint64_t>(nsinks));
}

}  // namespace amrio::obs

#pragma once
/// \file export.hpp
/// Exporters for the observability layer: Chrome-trace/Perfetto JSON for the
/// span stream (ranks as threads on the virtual-time axis — load the file at
/// https://ui.perfetto.dev or chrome://tracing) and flat JSON/CSV for the
/// metrics snapshot. All output is deterministic: identical span/metric
/// streams render byte-identical files regardless of the engine that
/// produced them.

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace amrio::obs {

/// Chrome trace event format: one "X" (complete) event per span with ts/dur
/// in virtual microseconds, tid = rank + 1 (the rank -1 driver track is
/// tid 0), thread_name metadata per track, and "s"/"f" flow events per
/// happens-before edge.
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::vector<SpanEdge>& edges);

/// Metrics snapshot as nested JSON: {counters, gauges, histograms, series}.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);

/// Metrics snapshot as flat CSV: kind,name,key,value — one row per counter,
/// gauge, histogram stat/bucket, and series sample.
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap);

/// Write `tracer`'s merged snapshot to `path` as Chrome-trace JSON.
/// Throws std::runtime_error when the file cannot be opened.
void export_trace(const std::string& path, const Tracer& tracer);

/// Write `snap` to `path` — CSV when the path ends in ".csv", JSON otherwise.
/// Throws std::runtime_error when the file cannot be opened.
void export_metrics(const std::string& path, const MetricsSnapshot& snap);

}  // namespace amrio::obs

#pragma once
/// \file export.hpp
/// Exporters for the observability layer: Chrome-trace/Perfetto JSON for the
/// span stream (ranks as threads on the virtual-time axis — load the file at
/// https://ui.perfetto.dev or chrome://tracing) and flat JSON/CSV for the
/// metrics snapshot. All output is deterministic: identical span/metric
/// streams render byte-identical files regardless of the engine that
/// produced them.

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/json.hpp"

namespace amrio::obs {

/// A (tid, display name) pair for the trace's thread-name metadata block.
struct TraceTrack {
  int tid = 0;
  std::string name;
};

/// Display name of a rank's track: "driver" for rank < 0, "rank N" otherwise.
std::string track_name(int rank);

/// Low-level Chrome-trace event emitter shared by the buffered
/// (`write_chrome_trace`) and streaming (`TraceStream`, stream.hpp) export
/// paths. Both paths funnel every byte through these methods, which is what
/// makes streaming-vs-buffered byte-identity hold by construction rather
/// than by parallel maintenance. Call order: begin → span_event* →
/// flow_pair* → finish.
class ChromeTraceEmitter {
 public:
  explicit ChromeTraceEmitter(std::ostream& os) : os_(os), w_(os) {}

  /// Preamble + one "M" thread_name metadata event per track, in order.
  void begin(const std::vector<TraceTrack>& tracks);

  /// One "X" complete event. `ts`/`dur` are virtual seconds scaled to
  /// trace microseconds.
  void span_event(const Span& s);

  /// One happens-before edge as an "s"/"f" flow pair with an
  /// auto-incrementing flow id: "s" anchored at the source span's end,
  /// "f" (bp:"e") binding to the destination slice's start.
  void flow_pair(int from_rank, double from_end, int to_rank,
                 double to_start);

  /// Epilogue (closes the traceEvents array and root object).
  void finish();

 private:
  std::ostream& os_;
  util::JsonWriter w_;
  std::uint64_t flow_ = 0;
};

/// Chrome trace event format: one "X" (complete) event per span with ts/dur
/// in virtual microseconds, tid = rank + 1 (the rank -1 driver track is
/// tid 0), thread_name metadata per track, and "s"/"f" flow events per
/// happens-before edge.
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::vector<SpanEdge>& edges);

/// Metrics snapshot as nested JSON: {counters, gauges, histograms, series}.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);

/// Metrics snapshot as flat CSV. The column order is pinned to
/// `kind,name,key,value` and the row order to counters, gauges, histograms
/// (count, sum, then buckets), series samples — `tools/bench_diff.py` and
/// downstream scripts parse it positionally. Fields containing commas,
/// quotes, or newlines are RFC-4180 quoted.
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap);

/// Write `tracer`'s merged snapshot to `path` as Chrome-trace JSON.
/// Throws std::runtime_error when the file cannot be opened.
void export_trace(const std::string& path, const Tracer& tracer);

/// Write `snap` to `path` — CSV when the path ends in ".csv", JSON otherwise.
/// Throws std::runtime_error when the file cannot be opened.
void export_metrics(const std::string& path, const MetricsSnapshot& snap);

}  // namespace amrio::obs

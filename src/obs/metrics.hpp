#pragma once
/// \file metrics.hpp
/// Metrics registry for the simulated pipeline: monotonic counters, gauges,
/// log-bucketed histograms, and virtual-time series (BB occupancy, drain
/// streams busy, queue depth, stall time).
///
/// Determinism contract: snapshots must be identical across the serial, spmd,
/// and event engines. Counters and histogram bucket counts are integer adds
/// (commutative, any interleaving yields the same totals). Histogram sums are
/// quantized to integer units at `observe()` time (`llround(v / quantum)`) so
/// float accumulation order can't leak engine scheduling into the snapshot.
/// `gauge_set` and `sample` are *not* commutative — call them only from
/// deterministic single-threaded contexts (rank 0, or post-run SimFs
/// emission); `gauge_max` commutes and is safe anywhere.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace amrio::obs {

/// Log2-bucketed histogram over integer units of `quantum`.
struct HistogramSnapshot {
  double quantum = 1.0;          ///< value of one unit (e.g. 1e-9 s, 1 byte)
  std::int64_t count = 0;        ///< number of observations
  std::int64_t sum_units = 0;    ///< sum of llround(v / quantum)
  /// bucket index -> count; index b holds units in [2^b, 2^(b+1)), with
  /// index -1 holding zero-unit observations.
  std::map<int, std::int64_t> buckets;

  double sum() const { return static_cast<double>(sum_units) * quantum; }
  double mean() const { return count ? sum() / static_cast<double>(count) : 0.0; }
};

struct TimeSeriesSnapshot {
  /// (virtual time, value) in sample order.
  std::vector<std::pair<double, double>> samples;
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, TimeSeriesSnapshot> series;
};

class MetricsRegistry {
 public:
  /// Monotonic counter increment. Commutative — safe from any rank.
  void add(const std::string& name, std::int64_t delta);

  /// Last-write-wins gauge. Only call from deterministic contexts.
  void gauge_set(const std::string& name, double value);

  /// Running-max gauge. Commutative — safe from any rank.
  void gauge_max(const std::string& name, double value);

  /// Histogram observation; `quantum` fixes the integer unit (must be the
  /// same for every observation of one histogram — first call wins).
  void observe(const std::string& name, double value, double quantum);

  /// Append a (virtual time, value) sample to a named series. Only call from
  /// deterministic contexts (samples are kept in call order).
  void sample(const std::string& name, double t, double value);

  /// Deterministic snapshot (std::map iteration order).
  MetricsSnapshot snapshot() const;

 private:
  struct Histogram {
    double quantum = 1.0;
    std::int64_t count = 0;
    std::int64_t sum_units = 0;
    std::map<int, std::int64_t> buckets;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<std::pair<double, double>>> series_;
};

}  // namespace amrio::obs

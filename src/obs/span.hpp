#pragma once
/// \file span.hpp
/// Virtual-time span tracing for the staging pipeline. A Span is an interval
/// on the *simulated* clock (the same clock `IoResult`/`DumpStats` report),
/// owned by a rank track, optionally nested under a parent span and linked to
/// other spans by happens-before edges (absorb→drain, prefetch→bb_read).
///
/// Determinism contract — the same one `iostats::TraceRecorder::events()`
/// gives: ranks append to sharded, contention-free sinks; span ids are
/// `(rank+1) << 32 | per-rank-seq`, so they depend only on per-rank program
/// order (engine-invariant); `spans()` merges the sinks under a total order.
/// The merged stream is byte-identical across the serial, spmd, and event
/// engines for the same configuration.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace amrio::obs {

/// One stage interval on the virtual clock. `rank == -1` is the driver /
/// phase track (dump/restart boundaries). `wait` is the portion of the
/// interval spent blocked on `resource` (drain stream slot, BB capacity,
/// OST service, NIC...) — the critical-path analyzer aggregates it to name
/// the binding resource of a configuration.
struct Span {
  std::uint64_t id = 0;      ///< assigned by Tracer::record
  std::uint64_t parent = 0;  ///< 0 = top-level on its track
  int rank = -1;
  std::string stage;     ///< taxonomy name: "encode", "ship", "bb_drain", ...
  std::string detail;    ///< free-form qualifier ("dump 3", "ckpt/g0002", ...)
  double start = 0.0;    ///< virtual seconds
  double end = 0.0;      ///< virtual seconds, >= start
  double wait = 0.0;     ///< seconds of the interval blocked on `resource`
  std::string resource;  ///< what `wait` waited on; empty if wait == 0
  double service = 0.0;  ///< seconds of the interval served by `res`
  /// ResourceLedger id of the pool that served this span ("ost[3]",
  /// "bb[0].drain", "agg_link", "codec_cpu", ...); empty = untagged. The
  /// what-if engine (whatif.hpp) scales `service`/`wait` by matching this
  /// id (and `resource`) against a relief scenario's resource group.
  std::string res;
};

/// Happens-before between two recorded spans (cross-rank or cross-stage).
struct SpanEdge {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// The rank track a span id belongs to (inverse of the id layout).
inline int span_rank(std::uint64_t id) {
  return static_cast<int>(static_cast<std::int64_t>(id >> 32)) - 1;
}

/// Abstract destination for recorded spans. Instrumentation sites only ever
/// `record` and `edge`; what happens to the span afterwards — buffered in
/// memory (`Tracer`) or streamed through bounded buffers to a file
/// (`TraceStream`, stream.hpp) — is the sink's business. Every sink assigns
/// ids with the same `(rank+1) << 32 | per-rank-seq` rule, so the id a site
/// gets back is independent of the sink implementation.
class SpanSink {
 public:
  virtual ~SpanSink() = default;

  /// Record a span; assigns and returns its id. `s.id` is ignored on input.
  /// Ids are deterministic given per-rank program order.
  virtual std::uint64_t record(Span s) = 0;

  /// Record a happens-before edge between two previously recorded spans.
  virtual void edge(std::uint64_t from, std::uint64_t to) = 0;
};

/// Contention-free span collector. Thread-safe: ranks hash to one of
/// `nsinks` sinks (mixed hash, see shard.hpp) and only contend within a
/// shard. Snapshot accessors merge deterministically.
class Tracer : public SpanSink {
 public:
  explicit Tracer(std::size_t nsinks = 64);

  std::uint64_t record(Span s) override;

  void edge(std::uint64_t from, std::uint64_t to) override;

  /// Deterministic merged snapshot, ordered by (start, rank, id).
  std::vector<Span> spans() const;

  /// Deterministic merged edge list, ordered by (from, to).
  std::vector<SpanEdge> edges() const;

  std::size_t nsinks() const { return sinks_.size(); }

 private:
  struct Sink {
    std::mutex mu;
    std::vector<Span> spans;
    std::vector<SpanEdge> edges;
    std::map<int, std::uint32_t> next_seq;  // per-rank sequence numbers
  };
  Sink& sink_for(int rank);

  std::vector<std::unique_ptr<Sink>> sinks_;
};

}  // namespace amrio::obs

#include "obs/metrics.hpp"

#include <cmath>

namespace amrio::obs {
namespace {

// Log2 bucket of an observation in integer units: -1 for zero, otherwise
// floor(log2(units)) — [1,2) -> 0, [2,4) -> 1, ...
int bucket_of(std::int64_t units) {
  if (units <= 0) return -1;
  int b = -1;
  for (std::uint64_t u = static_cast<std::uint64_t>(units); u; u >>= 1) ++b;
  return b;
}

}  // namespace

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::gauge_max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              double quantum) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  if (h.count == 0) h.quantum = quantum;
  const std::int64_t units = std::llround(value / h.quantum);
  h.count += 1;
  h.sum_units += units;
  h.buckets[bucket_of(units)] += 1;
}

void MetricsRegistry::sample(const std::string& name, double t, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  series_[name].emplace_back(t, value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.quantum = h.quantum;
    hs.count = h.count;
    hs.sum_units = h.sum_units;
    hs.buckets = h.buckets;
    snap.histograms.emplace(name, std::move(hs));
  }
  for (const auto& [name, samples] : series_) {
    TimeSeriesSnapshot ts;
    ts.samples = samples;
    snap.series.emplace(name, std::move(ts));
  }
  return snap;
}

}  // namespace amrio::obs

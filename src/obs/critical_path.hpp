#pragma once
/// \file critical_path.hpp
/// Critical-path attribution over a merged span stream: walk backward from
/// the last-ending span along happens-before edges (falling back to
/// time-adjacency on the virtual clock), attribute every second of
/// [first start, last end] to a stage — gaps between chained spans are
/// attributed to "compute" — and name the binding resource from the
/// accumulated per-span wait. By construction the per-stage seconds sum to
/// exactly the makespan, so "stage times sum to >= 95% of makespan" holds
/// for every configuration.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace amrio::obs {

struct StageShare {
  std::string stage;
  double seconds = 0.0;
  double frac = 0.0;  ///< seconds / makespan
};

struct CriticalPathReport {
  double t0 = 0.0;        ///< earliest span start
  double t1 = 0.0;        ///< latest span end
  double makespan = 0.0;  ///< t1 - t0
  /// Per-stage attribution, sorted by seconds descending (ties: stage name).
  std::vector<StageShare> stages;
  std::string critical_stage;  ///< stages.front().stage
  double critical_frac = 0.0;  ///< stages.front().frac
  /// Resource with the most accumulated wait along the path; falls back to
  /// the critical stage name when no span on the path waited on anything.
  std::string binding_resource;
  /// Span ids on the walked chain, from first to last.
  std::vector<std::uint64_t> chain;
};

/// Analyze a merged span stream (as returned by Tracer::spans()/edges()).
/// Returns a zeroed report if `spans` is empty.
CriticalPathReport critical_path(const std::vector<Span>& spans,
                                 const std::vector<SpanEdge>& edges);

/// One-line rendering: "drain 62.1% (binding: drain_stream)".
std::string summarize(const CriticalPathReport& report);

}  // namespace amrio::obs

#pragma once
/// \file selfprof.hpp
/// Host-side self-profiling of the simulator itself. Everything else in
/// `src/obs` measures the *virtual* timeline; `SelfProfiler` measures the
/// machine running it — wall seconds per phase, events processed per
/// second, ready-queue depth high-water, context switches, SliceArena
/// bytes — so event-engine performance work has data instead of vibes.
/// Engines publish into it via `exec::Engine::set_profiler`; `macsio_proxy`
/// exports it with `--prof_out`.
///
/// Wall-clock numbers are machine- and load-dependent by nature: nothing
/// here participates in the engine-invariance contract of the other obs
/// exports, and prof output must never be byte-compared across runs.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace amrio::obs {

struct SelfProfSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct Phase {
    double wall_s = 0.0;
    std::uint64_t count = 0;  ///< times the phase ran
  };
  std::map<std::string, Phase> phases;
};

/// Thread-safe wall-clock counter/gauge/phase accumulator. Engines buffer
/// hot-loop counts locally and publish once per run, so profiling adds no
/// per-event synchronization.
class SelfProfiler {
 public:
  void count(const std::string& name, std::uint64_t v = 1);
  void gauge_max(const std::string& name, double v);
  void gauge_set(const std::string& name, double v);
  void phase_add(const std::string& name, double wall_s);

  SelfProfSnapshot snapshot() const;

  /// RAII wall-clock phase timer: `obs::SelfProfiler::ScopedPhase p(prof,
  /// "dump");` — a null profiler makes it a no-op.
  class ScopedPhase {
   public:
    ScopedPhase(SelfProfiler* prof, std::string name)
        : prof_(prof),
          name_(std::move(name)),
          t0_(std::chrono::steady_clock::now()) {}
    ~ScopedPhase() {
      if (prof_ == nullptr) return;
      const auto dt = std::chrono::steady_clock::now() - t0_;
      prof_->phase_add(name_,
                       std::chrono::duration<double>(dt).count());
    }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

   private:
    SelfProfiler* prof_;
    std::string name_;
    std::chrono::steady_clock::time_point t0_;
  };

 private:
  mutable std::mutex mu_;
  SelfProfSnapshot snap_;
};

/// Snapshot as JSON: {counters: {...}, gauges: {...}, phases: {name:
/// {wall_s, count}}}.
void write_selfprof_json(std::ostream& os, const SelfProfSnapshot& snap);

/// Write the snapshot to `path` as JSON. Throws when the file cannot open.
void export_selfprof(const std::string& path, const SelfProfSnapshot& snap);

}  // namespace amrio::obs

#pragma once
/// \file slack.hpp
/// Span-DAG slack analysis: a forward/backward pass over a recorded span
/// stream computing, per span, the dependency-only earliest start, the
/// latest end that leaves the makespan unchanged, and the slack between the
/// recorded schedule and that latest end. Spans with (near-)zero slack form
/// the critical frontier; the report also extracts the top-k near-critical
/// chains so "what else is about to bind?" has an answer beyond the single
/// chain `critical_path` attributes.
///
/// Dependency model (shared with the what-if engine, whatif.hpp):
///  * explicit happens-before edges (`SpanEdge`) are dependencies with lag
///    `min(0, to.start - from.end)` — a non-overlapping edge imposes no gap
///    (the recorded gap is waiting, not structure), an overlapping edge
///    (prefetch -> bb_read) keeps its recorded overlap;
///  * a span with no incoming edge chains to its same-rank program-order
///    predecessor (the latest span on its rank ending at or before its
///    start) with the recorded lag preserved — the lag is a fixed release
///    offset (mds latency, submit spacing), not compressible waiting;
///  * a span with neither is anchored at its recorded start (a fixed
///    release: the driver submits on the virtual clock, not on a
///    dependency).
///
/// The recorded schedule is feasible under this model by construction, so
/// `earliest_start <= start`, `latest_end >= end`, and `slack >= 0` hold
/// structurally for every span (pinned by tests/test_obs.cpp).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/span.hpp"

namespace amrio::obs {

/// The dependency structure over one span stream, index-aligned with the
/// input vector. Built once, shared by `slack_analysis` and the what-if
/// replay so both passes agree on what is structure and what is waiting.
struct SpanDag {
  /// Incoming explicit-edge predecessors per span (indices). When non-empty
  /// they define the span's release and the program-order predecessor is
  /// suppressed (an edge-released span does not also wait for its rank's
  /// previous span in this model).
  std::vector<std::vector<std::size_t>> edge_preds;
  /// Same-rank program-order predecessor index, or -1 (none / suppressed).
  std::vector<std::ptrdiff_t> po_pred;
  /// Child span indices per span (via Span::parent). A span with children is
  /// a container: its interval summarizes its children's work, so the
  /// what-if replay derives its end from the children instead of treating
  /// the recorded duration as incompressible.
  std::vector<std::vector<std::size_t>> children;
  /// Span indices in the global (start, rank, id) order — the sweep order
  /// for the iterative relaxation passes.
  std::vector<std::size_t> order;
};

SpanDag build_span_dag(const std::vector<Span>& spans,
                       const std::vector<SpanEdge>& edges);

struct SlackSpan {
  std::uint64_t id = 0;
  double earliest_start = 0.0;  ///< dependency-only earliest (<= start)
  double latest_end = 0.0;      ///< latest end leaving t1 unchanged (>= end)
  double slack = 0.0;           ///< latest_end - end, >= 0
};

/// One near-critical chain, head first. `slack` is the terminal span's
/// slack — 0 for the critical chain itself.
struct SlackPath {
  double slack = 0.0;
  std::vector<std::size_t> chain;  ///< indices into the input span vector
};

struct SlackReport {
  double t0 = 0.0;        ///< min recorded start
  double t1 = 0.0;        ///< max recorded end
  double makespan = 0.0;  ///< t1 - t0
  std::vector<SlackSpan> spans;  ///< index-aligned with the input
  /// Top-k chains by terminal slack, ascending — [0] is the critical chain.
  std::vector<SlackPath> near_critical;
};

/// Forward/backward slack pass. `top_k` bounds `near_critical`.
SlackReport slack_analysis(const std::vector<Span>& spans,
                           const std::vector<SpanEdge>& edges,
                           std::size_t top_k = 3);

}  // namespace amrio::obs

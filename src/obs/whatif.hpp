#pragma once
/// \file whatif.hpp
/// Per-resource what-if engine: replays a recorded span DAG with the
/// service (and queued-wait) seconds of spans tagged to one resource group
/// scaled, and reports the predicted makespan — "what would this run cost
/// if the OSTs / BB drain / agg link / codec were f-times faster?" without
/// re-simulating. On top of the replay, `explain()` builds the full
/// `--explain` report: per resource group, its utilization (from the
/// `ResourceLedger`), its slack-weighted exposure, the predicted makespan
/// at 1.5x and 2x relief, and the shadow price — marginal seconds of
/// makespan per unit of capacity added.
///
/// Replay model (dependency structure from slack.hpp's `SpanDag`): each
/// span keeps `fixed = dur - wait - service` unchanged, scales `service`
/// by the scenario's service scale when its serving pool (`Span::res`)
/// matches the group, and scales `wait` by the wait scale when its wait
/// resource (`Span::resource`) matches — queued time behind a pool shrinks
/// with the pool's service times (FIFO waits are sums of other requests'
/// service). Span releases follow the DAG: edge-released spans start at
/// their predecessors' new ends (recorded overlaps preserved, recorded
/// gaps compressible), program-order-released spans keep their recorded
/// release offset, anchored spans keep their recorded start.
///
/// Accuracy contract: for single-resource 2x reliefs on the pinned 32-rank
/// {direct, agg, bb} x {identity, ebl} grid, the prediction lands within
/// 5% of an actual re-simulation with that knob changed (asserted by
/// tests/test_obs.cpp on the serial and event engines). Known caveats are
/// documented in docs/OBSERVABILITY.md.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/slack.hpp"
#include "obs/span.hpp"

namespace amrio::obs {

/// One relief scenario: a resource group, the capacity factor the report
/// quotes, and the *effective* service/wait multipliers the replay applies.
/// The scales are caller-computed because only the caller knows which rate
/// actually binds (e.g. doubling `ost_bandwidth` under a slower client NIC
/// changes nothing) — `standard_scenarios` encodes the SimFs/staging/codec
/// formulas.
struct Scenario {
  std::string resource;        ///< "ost", "bb_drain", "agg_link", "codec_cpu"
  double factor = 1.0;         ///< capacity relief (1.5, 2.0, ...)
  double service_scale = 1.0;  ///< multiplier for matched Span::service
  double wait_scale = 1.0;     ///< multiplier for matched Span::wait
};

/// True when `res` (a `Span::res` / `ResourceLedger` pool id) is served by
/// `group` ("ost" matches "ost[3]", "bb_drain" matches "bb[0].drain", ...).
bool group_serves(const std::string& group, const std::string& res);

/// True when a span waiting on `resource` (Span::resource) is queued behind
/// the pools of `group` ("ost" <- "ost_queue", "bb_drain" <- "drain_stream").
bool group_queues(const std::string& group, const std::string& resource);

/// The configured rates the effective scales depend on. Zeros fall back to
/// a plain 1/factor scale for that group.
struct ReliefKnobs {
  double ost_bandwidth = 0.0;
  double client_bandwidth = 0.0;
  double drain_bandwidth = 0.0;  ///< BB->OST drain stream bandwidth
};

/// The four standard single-resource scenarios at one relief factor, with
/// effective scales: ost -> min(client, ost) / min(client, f*ost);
/// bb_drain -> min(drain, ost) / min(f*drain, ost); agg_link and codec_cpu
/// -> 1/f (their modeled costs are exactly bandwidth- / throughput-
/// proportional).
std::vector<Scenario> standard_scenarios(double factor,
                                         const ReliefKnobs& knobs);

struct WhatIfResult {
  Scenario scenario;
  double baseline_makespan = 0.0;   ///< max recorded span end
  double predicted_makespan = 0.0;  ///< max replayed span end
};

/// Replay the DAG under one scenario. The `dag` overload amortizes the
/// dependency build across scenarios.
WhatIfResult what_if(const std::vector<Span>& spans,
                     const std::vector<SpanEdge>& edges, const Scenario& sc);
WhatIfResult what_if(const std::vector<Span>& spans, const SpanDag& dag,
                     const Scenario& sc);

/// One row of the `--explain` report, per resource group.
struct ResourceOutlook {
  std::string resource;        ///< group name
  double utilization = 0.0;    ///< max busy_frac over the group's pools
  double exposure = 0.0;       ///< slack-weighted busy+wait seconds
  double predicted_15 = 0.0;   ///< predicted makespan at 1.5x relief
  double predicted_20 = 0.0;   ///< predicted makespan at 2x relief
  double shadow_price = 0.0;   ///< (baseline - predicted_20) seconds per +1x
};

struct ExplainReport {
  double makespan = 0.0;          ///< baseline (max span end)
  std::string critical_stage;     ///< from critical_path
  double critical_frac = 0.0;
  std::string binding_resource;   ///< from critical_path
  /// Ranked by shadow_price descending (ties by name) — the head row is
  /// the capacity to buy first.
  std::vector<ResourceOutlook> resources;
};

/// Full predictive report: critical-path attribution + slack exposure +
/// the four standard what-ifs at 1.5x/2x. `util` supplies per-pool
/// utilization (pass a default-constructed report if no ledger ran).
ExplainReport explain(const std::vector<Span>& spans,
                      const std::vector<SpanEdge>& edges,
                      const UtilizationReport& util,
                      const ReliefKnobs& knobs);

/// Printable ranked table.
std::string explain_table(const ExplainReport& rep);

/// JSON with `schema_version` and pinned key order (byte-stable given the
/// same report).
void write_explain_json(std::ostream& os, const ExplainReport& rep);
void export_explain(const std::string& path, const ExplainReport& rep);

}  // namespace amrio::obs

#include "obs/span.hpp"

#include <algorithm>
#include <cassert>

#include "obs/shard.hpp"

namespace amrio::obs {

Tracer::Tracer(std::size_t nsinks) {
  if (nsinks == 0) nsinks = 1;
  sinks_.reserve(nsinks);
  for (std::size_t i = 0; i < nsinks; ++i)
    sinks_.push_back(std::make_unique<Sink>());
}

Tracer::Sink& Tracer::sink_for(int rank) {
  return *sinks_[rank_shard(rank, sinks_.size())];
}

std::uint64_t Tracer::record(Span s) {
  assert(s.end >= s.start);
  Sink& sink = sink_for(s.rank);
  std::lock_guard<std::mutex> lock(sink.mu);
  const std::uint32_t seq = ++sink.next_seq[s.rank];
  s.id = (static_cast<std::uint64_t>(static_cast<std::int64_t>(s.rank) + 1)
          << 32) |
         seq;
  const std::uint64_t id = s.id;
  sink.spans.push_back(std::move(s));
  return id;
}

void Tracer::edge(std::uint64_t from, std::uint64_t to) {
  // Shard by the from-id's rank track so edge recording is as contention-free
  // as span recording.
  const int rank = static_cast<int>(static_cast<std::int64_t>(from >> 32)) - 1;
  Sink& sink = sink_for(rank);
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.edges.push_back(SpanEdge{from, to});
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  for (const auto& sink : sinks_) {
    std::lock_guard<std::mutex> lock(sink->mu);
    out.insert(out.end(), sink->spans.begin(), sink->spans.end());
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.id < b.id;
  });
  return out;
}

std::vector<SpanEdge> Tracer::edges() const {
  std::vector<SpanEdge> out;
  for (const auto& sink : sinks_) {
    std::lock_guard<std::mutex> lock(sink->mu);
    out.insert(out.end(), sink->edges.begin(), sink->edges.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEdge& a, const SpanEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  return out;
}

}  // namespace amrio::obs

#pragma once
/// \file ledger.hpp
/// Per-resource utilization accounting on the virtual clock. The critical
/// path names ONE binding resource; the ledger supersedes that with the full
/// picture: every OST, drain/prefetch stream pool, BB ingest/read port, agg
/// link, and codec CPU pool reports busy seconds, idle seconds, and queue
/// depth over the run, so "what do I buy more of?" has a ranked answer.
///
/// Semantics — a resource is a named server pool with a declared capacity C
/// (1 for a single OST, `drain_concurrency` for a node's drain streams, ...):
///   busy_s      accumulated service seconds across the pool (≤ C·makespan)
///   idle_s      C·makespan − busy_s
///   busy_frac   busy_s / (C·makespan)
/// so per resource busy_s + idle_s = C·makespan exactly (the conservation
/// law tests/test_obs.cpp pins; for C = 1 that is busy + idle = makespan).
/// Queue depth is tracked as (time, ±delta) events and reported as peak and
/// time-weighted average.
///
/// Determinism: all mutators are commutative (sums, max) or emitted from
/// deterministic post-event-loop code, so the report — like every obs
/// export — is engine-invariant.

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace amrio::obs {

/// One resource's line in the utilization report.
struct ResourceUtilization {
  std::string name;
  int capacity = 1;
  double busy_s = 0.0;
  double idle_s = 0.0;
  double busy_frac = 0.0;
  int queue_peak = 0;
  double queue_avg = 0.0;  ///< time-weighted mean depth over [0, makespan]
};

struct UtilizationReport {
  double makespan = 0.0;
  /// Sorted by busy_frac descending (name ascending on ties) — the top
  /// entries are the bottlenecks.
  std::vector<ResourceUtilization> resources;

  /// One-line "what's hot": up to `n` leading resources with busy %.
  std::string top_summary(std::size_t n = 3) const;
};

/// Thread-safe accumulator behind `obs::Probe::ledger`.
class ResourceLedger {
 public:
  /// Declare (or widen) a resource's pool capacity. Idempotent; the larger
  /// capacity wins so repeated per-dump declarations are harmless.
  void declare(const std::string& name, int capacity);

  /// Accumulate service time. Declares the resource (capacity 1) on first
  /// touch so call sites don't need a declare/add dance.
  void add_busy(const std::string& name, double seconds);

  /// Record a queue-depth change of `delta` at virtual time `t` (relative
  /// to the current epoch's t = 0).
  void queue_delta(const std::string& name, double t, int delta);

  /// Extend the current epoch's makespan high-water (gauge-max semantics).
  void extend_makespan(double t);

  /// Close the current timeline epoch and start a new one at t = 0.
  ///
  /// A dump phase and a restart phase are *independent* virtual timelines
  /// that both start at zero; overlaying them on one clock would sum their
  /// busy seconds against the max of their makespans and break the
  /// conservation law (busy could exceed C·makespan). Epochs concatenate
  /// instead: the report's makespan is the SUM of per-epoch maxima, and
  /// queue times shift by the preceding epochs' total, so per resource
  /// busy_s ≤ C·makespan still holds — each epoch's busy is bounded by its
  /// own C·makespan_i and the bounds add.
  void begin_epoch();

  UtilizationReport report() const;

 private:
  struct Res {
    int capacity = 1;
    double busy_s = 0.0;
    std::vector<std::pair<double, int>> qdeltas;
  };
  mutable std::mutex mu_;
  std::map<std::string, Res> resources_;
  double epoch_offset_ = 0.0;  ///< sum of closed epochs' makespans
  double epoch_max_ = 0.0;     ///< current epoch's makespan high-water
};

/// Utilization report as JSON: {makespan, resources: [{name, capacity,
/// busy_s, idle_s, busy_frac, queue_peak, queue_avg}, ...]}.
void write_utilization_json(std::ostream& os, const UtilizationReport& rep);

/// Fixed-width text table of the top `top_n` resources (all when 0).
std::string utilization_table(const UtilizationReport& rep,
                              std::size_t top_n = 12);

/// Write the report to `path` as JSON. Throws when the file cannot open.
void export_utilization(const std::string& path, const UtilizationReport& rep);

}  // namespace amrio::obs

#include "obs/slack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace amrio::obs {
namespace {

constexpr double kEps = 1e-9;
constexpr int kMaxPasses = 128;  // >= longest out-of-order dependency chain

/// The global span order every obs pass shares (Tracer::spans order).
bool order_less(const Span& a, const Span& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.id < b.id;
}

}  // namespace

SpanDag build_span_dag(const std::vector<Span>& spans,
                       const std::vector<SpanEdge>& edges) {
  const std::size_t n = spans.size();
  SpanDag dag;
  dag.edge_preds.assign(n, {});
  dag.po_pred.assign(n, -1);
  dag.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) dag.order[i] = i;
  std::sort(dag.order.begin(), dag.order.end(),
            [&](std::size_t a, std::size_t b) {
              return order_less(spans[a], spans[b]);
            });

  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < n; ++i) by_id.emplace(spans[i].id, i);
  dag.children.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    if (spans[i].parent == 0) continue;
    auto it = by_id.find(spans[i].parent);
    if (it != by_id.end() && it->second != i)
      dag.children[it->second].push_back(i);
  }
  for (const SpanEdge& e : edges) {
    auto from = by_id.find(e.from);
    auto to = by_id.find(e.to);
    if (from == by_id.end() || to == by_id.end()) continue;
    if (from->second == to->second) continue;
    dag.edge_preds[to->second].push_back(from->second);
  }

  // Program-order predecessor: per rank, spans sorted by end; for each span
  // without edge predecessors, the latest-ending earlier span whose end is
  // at or before this span's start. "Earlier" is the global order — this
  // keeps the relation acyclic even among zero-duration spans sharing a
  // timestamp.
  std::map<int, std::vector<std::size_t>> by_rank;
  for (std::size_t i = 0; i < n; ++i) by_rank[spans[i].rank].push_back(i);
  for (auto& [rank, idx] : by_rank) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (spans[a].end != spans[b].end) return spans[a].end < spans[b].end;
      return order_less(spans[a], spans[b]);
    });
    for (std::size_t i : idx) {
      if (!dag.edge_preds[i].empty()) continue;
      const double release = spans[i].start + kEps;
      // Last end-sorted entry with end <= release that precedes i globally.
      auto it = std::upper_bound(idx.begin(), idx.end(), release,
                                 [&](double t, std::size_t j) {
                                   return t < spans[j].end;
                                 });
      while (it != idx.begin()) {
        --it;
        if (*it != i && order_less(spans[*it], spans[i])) {
          dag.po_pred[i] = static_cast<std::ptrdiff_t>(*it);
          break;
        }
      }
    }
  }
  return dag;
}

SlackReport slack_analysis(const std::vector<Span>& spans,
                           const std::vector<SpanEdge>& edges,
                           std::size_t top_k) {
  SlackReport rep;
  const std::size_t n = spans.size();
  if (n == 0) return rep;
  const SpanDag dag = build_span_dag(spans, edges);

  rep.t0 = spans[0].start;
  rep.t1 = spans[0].end;
  for (const Span& s : spans) {
    rep.t0 = std::min(rep.t0, s.start);
    rep.t1 = std::max(rep.t1, s.end);
  }
  rep.makespan = rep.t1 - rep.t0;

  // Forward: dependency-only earliest start — resource-induced lags (edge
  // gaps, program-order release offsets) are dropped, so `start -
  // earliest_start` measures how much delay contention injected.
  std::vector<double> es(n), ee(n);
  for (std::size_t i = 0; i < n; ++i) {
    es[i] = spans[i].start;
    ee[i] = spans[i].end;
  }
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (std::size_t i : dag.order) {
      double t = spans[i].start;
      if (!dag.edge_preds[i].empty()) {
        t = -std::numeric_limits<double>::infinity();
        for (std::size_t p : dag.edge_preds[i])
          t = std::max(t, ee[p] + std::min(0.0, spans[i].start - spans[p].end));
      } else if (dag.po_pred[i] >= 0) {
        t = ee[static_cast<std::size_t>(dag.po_pred[i])];
      }
      t = std::min(t, spans[i].start);  // earliest can only move left
      const double e = t + (spans[i].end - spans[i].start);
      if (std::abs(t - es[i]) > 1e-15) changed = true;
      es[i] = t;
      ee[i] = e;
    }
    if (!changed) break;
  }

  // Successor constraints for the backward pass, with the what-if replay's
  // lag semantics: edges carry lag min(0, gap) (gaps are compressible),
  // program-order links keep their recorded lag (fixed release offsets).
  struct Succ {
    std::size_t to;
    double lag;
  };
  std::vector<std::vector<Succ>> succs(n);
  std::vector<bool> has_succ(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (!dag.edge_preds[i].empty()) {
      for (std::size_t p : dag.edge_preds[i]) {
        succs[p].push_back({i, std::min(0.0, spans[i].start - spans[p].end)});
        has_succ[p] = true;
      }
    } else if (dag.po_pred[i] >= 0) {
      const std::size_t p = static_cast<std::size_t>(dag.po_pred[i]);
      succs[p].push_back({i, spans[i].start - spans[p].end});
      has_succ[p] = true;
    }
  }

  // Backward: latest end that keeps every successor (and ultimately t1)
  // where it is. Terminal spans may drift to t1 itself.
  std::vector<double> lf(n, rep.t1);
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const std::size_t i = *it;
      double t = rep.t1;
      for (const Succ& sc : succs[i]) {
        const double ls =
            lf[sc.to] - (spans[sc.to].end - spans[sc.to].start) - sc.lag;
        t = std::min(t, ls);
      }
      if (std::abs(t - lf[i]) > 1e-15) changed = true;
      lf[i] = t;
    }
    if (!changed) break;
  }

  rep.spans.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    rep.spans[i].id = spans[i].id;
    rep.spans[i].earliest_start = es[i];
    rep.spans[i].latest_end = lf[i];
    rep.spans[i].slack = lf[i] - spans[i].end;
  }

  // Top-k near-critical chains: the k terminal spans with the least slack,
  // each walked back through its minimum-slack predecessor.
  std::vector<std::size_t> terminals;
  for (std::size_t i = 0; i < n; ++i)
    if (!has_succ[i]) terminals.push_back(i);
  std::sort(terminals.begin(), terminals.end(),
            [&](std::size_t a, std::size_t b) {
              const double sa = rep.spans[a].slack;
              const double sb = rep.spans[b].slack;
              if (std::abs(sa - sb) > kEps) return sa < sb;
              if (spans[a].end != spans[b].end)
                return spans[a].end > spans[b].end;
              return spans[a].id < spans[b].id;
            });
  if (terminals.size() > top_k) terminals.resize(top_k);
  for (std::size_t t : terminals) {
    SlackPath path;
    path.slack = rep.spans[t].slack;
    std::size_t cur = t;
    for (;;) {
      path.chain.push_back(cur);
      std::ptrdiff_t best = -1;
      auto consider = [&](std::size_t p) {
        if (best < 0) {
          best = static_cast<std::ptrdiff_t>(p);
          return;
        }
        const std::size_t b = static_cast<std::size_t>(best);
        const double sp = rep.spans[p].slack;
        const double sb = rep.spans[b].slack;
        if (std::abs(sp - sb) > kEps) {
          if (sp < sb) best = static_cast<std::ptrdiff_t>(p);
          return;
        }
        if (spans[p].end != spans[b].end) {
          if (spans[p].end > spans[b].end)
            best = static_cast<std::ptrdiff_t>(p);
          return;
        }
        if (spans[p].id < spans[b].id) best = static_cast<std::ptrdiff_t>(p);
      };
      if (!dag.edge_preds[cur].empty()) {
        for (std::size_t p : dag.edge_preds[cur]) consider(p);
      } else if (dag.po_pred[cur] >= 0) {
        consider(static_cast<std::size_t>(dag.po_pred[cur]));
      }
      if (best < 0) break;
      cur = static_cast<std::size_t>(best);
    }
    std::reverse(path.chain.begin(), path.chain.end());
    rep.near_critical.push_back(std::move(path));
  }
  return rep;
}

}  // namespace amrio::obs

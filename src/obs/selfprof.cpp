#include "obs/selfprof.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace amrio::obs {

void SelfProfiler::count(const std::string& name, std::uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  snap_.counters[name] += v;
}

void SelfProfiler::gauge_max(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  double& g = snap_.gauges[name];
  g = std::max(g, v);
}

void SelfProfiler::gauge_set(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  snap_.gauges[name] = v;
}

void SelfProfiler::phase_add(const std::string& name, double wall_s) {
  std::lock_guard<std::mutex> lock(mu_);
  SelfProfSnapshot::Phase& p = snap_.phases[name];
  p.wall_s += wall_s;
  ++p.count;
}

SelfProfSnapshot SelfProfiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

void write_selfprof_json(std::ostream& os, const SelfProfSnapshot& snap) {
  util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.key(name).value(v);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.key(name).value(v);
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& [name, p] : snap.phases) {
    w.key(name).begin_object();
    w.key("wall_s").value(p.wall_s);
    w.key("count").value(p.count);
    w.end_object();
  }
  w.end_object();

  w.end_object();
  os << "\n";
}

void export_selfprof(const std::string& path, const SelfProfSnapshot& snap) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write_selfprof_json(out, snap);
}

}  // namespace amrio::obs

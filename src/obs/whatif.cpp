#include "obs/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/critical_path.hpp"
#include "util/json.hpp"

namespace amrio::obs {
namespace {

constexpr int kMaxPasses = 128;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

double effective_scale(double bind_a, double bind_b, double factor) {
  // Service is bytes / min(a, b); relieving `a` by `factor` scales it by
  // min(a, b) / min(factor*a, b). Unknown rates (0) degrade to 1/factor.
  if (bind_a <= 0.0 || bind_b <= 0.0) return 1.0 / factor;
  return std::min(bind_a, bind_b) / std::min(factor * bind_a, bind_b);
}

}  // namespace

bool group_serves(const std::string& group, const std::string& res) {
  if (res.empty()) return false;
  if (group == "ost") return starts_with(res, "ost[");
  if (group == "bb_drain")
    return starts_with(res, "bb[") && ends_with(res, ".drain");
  if (group == "agg_link") return res == "agg_link";
  if (group == "codec_cpu") return res == "codec_cpu";
  return false;
}

bool group_queues(const std::string& group, const std::string& resource) {
  if (resource.empty()) return false;
  if (group == "ost") return resource == "ost_queue";
  if (group == "bb_drain") return resource == "drain_stream";
  if (group == "agg_link") return resource == "agg_link";
  if (group == "codec_cpu") return resource == "codec_cpu";
  return false;
}

std::vector<Scenario> standard_scenarios(double factor,
                                         const ReliefKnobs& knobs) {
  std::vector<Scenario> out;
  {
    Scenario sc;
    sc.resource = "ost";
    sc.factor = factor;
    sc.service_scale =
        effective_scale(knobs.ost_bandwidth, knobs.client_bandwidth, factor);
    sc.wait_scale = sc.service_scale;
    out.push_back(std::move(sc));
  }
  {
    Scenario sc;
    sc.resource = "bb_drain";
    sc.factor = factor;
    sc.service_scale =
        effective_scale(knobs.drain_bandwidth, knobs.ost_bandwidth, factor);
    sc.wait_scale = sc.service_scale;
    out.push_back(std::move(sc));
  }
  {
    Scenario sc;
    sc.resource = "agg_link";
    sc.factor = factor;
    sc.service_scale = 1.0 / factor;
    sc.wait_scale = sc.service_scale;
    out.push_back(std::move(sc));
  }
  {
    Scenario sc;
    sc.resource = "codec_cpu";
    sc.factor = factor;
    sc.service_scale = 1.0 / factor;
    sc.wait_scale = sc.service_scale;
    out.push_back(std::move(sc));
  }
  return out;
}

WhatIfResult what_if(const std::vector<Span>& spans,
                     const std::vector<SpanEdge>& edges, const Scenario& sc) {
  return what_if(spans, build_span_dag(spans, edges), sc);
}

WhatIfResult what_if(const std::vector<Span>& spans, const SpanDag& dag,
                     const Scenario& sc) {
  WhatIfResult res;
  res.scenario = sc;
  const std::size_t n = spans.size();
  if (n == 0) return res;

  // Scaled durations: the fixed part (neither queued nor served — mds
  // latency, per-message link latency, interference outside the group's
  // pools) never shrinks. A span's wait+service can exceed its interval
  // when it aggregates concurrent work (the --trace_sample per-stage
  // envelopes sum wait/service over every rank); normalize both down to
  // the interval so the replay scales the whole span at the aggregate
  // wait:service ratio instead of exploding past the recorded timeline.
  std::vector<double> dur(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = spans[i];
    res.baseline_makespan = std::max(res.baseline_makespan, s.end);
    const double recorded = s.end - s.start;
    double s_wait = s.wait;
    double s_service = s.service;
    if (s_wait + s_service > recorded && s_wait + s_service > 0.0) {
      const double shrink = recorded / (s_wait + s_service);
      s_wait *= shrink;
      s_service *= shrink;
    }
    const double fixed = std::max(0.0, recorded - s_wait - s_service);
    const double service =
        s_service *
        (group_serves(sc.resource, s.res) ? sc.service_scale : 1.0);
    const double wait =
        s_wait * (group_queues(sc.resource, s.resource) ? sc.wait_scale : 1.0);
    dur[i] = fixed + wait + service;
  }

  // Container spans (spans with children — the driver's dump/restart phase
  // spans, absorb spans with a nested stall) summarize their children's
  // work: their recorded duration is the children's time, not their own, so
  // treating it as incompressible would floor every prediction at the
  // recorded phase end. Their replayed end is derived from the children
  // instead, keeping any recorded tail past the last child.
  std::vector<double> tail(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (dag.children[i].empty()) continue;
    double last_child = -std::numeric_limits<double>::infinity();
    for (std::size_t c : dag.children[i])
      last_child = std::max(last_child, spans[c].end);
    tail[i] = std::max(0.0, spans[i].end - last_child);
  }

  // Forward schedule under the DAG's release rules. Iterative relaxation in
  // recorded order until a fixed point: overlap-preserving edges (prefetch
  // -> bb_read) can point "backward" in that order, so one sweep is not
  // always enough; the DAG is acyclic, so this converges.
  std::vector<double> ns(n), ne(n);
  for (std::size_t i = 0; i < n; ++i) {
    ns[i] = spans[i].start;
    ne[i] = ns[i] + dur[i];
  }
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (std::size_t i : dag.order) {
      double t;
      if (!dag.edge_preds[i].empty()) {
        t = -std::numeric_limits<double>::infinity();
        for (std::size_t p : dag.edge_preds[i])
          t = std::max(t, ne[p] + std::min(0.0, spans[i].start - spans[p].end));
      } else if (dag.po_pred[i] >= 0) {
        const std::size_t p = static_cast<std::size_t>(dag.po_pred[i]);
        t = ne[p] + (spans[i].start - spans[p].end);
      } else {
        t = spans[i].start;
      }
      double e;
      if (!dag.children[i].empty()) {
        double last_child = -std::numeric_limits<double>::infinity();
        for (std::size_t c : dag.children[i])
          last_child = std::max(last_child, ne[c]);
        e = std::max(t, last_child + tail[i]);
      } else {
        e = t + dur[i];
      }
      if (std::abs(t - ns[i]) > 1e-15 || std::abs(e - ne[i]) > 1e-15)
        changed = true;
      ns[i] = t;
      ne[i] = e;
    }
    if (!changed) break;
  }
  for (std::size_t i = 0; i < n; ++i)
    res.predicted_makespan = std::max(res.predicted_makespan, ne[i]);
  return res;
}

ExplainReport explain(const std::vector<Span>& spans,
                      const std::vector<SpanEdge>& edges,
                      const UtilizationReport& util,
                      const ReliefKnobs& knobs) {
  ExplainReport rep;
  const CriticalPathReport cp = critical_path(spans, edges);
  rep.makespan = cp.t1 - cp.t0;
  rep.critical_stage = cp.critical_stage;
  rep.critical_frac = cp.critical_frac;
  rep.binding_resource = cp.binding_resource;
  if (spans.empty()) return rep;

  const SpanDag dag = build_span_dag(spans, edges);
  const SlackReport slack = slack_analysis(spans, edges);
  const std::vector<Scenario> at15 = standard_scenarios(1.5, knobs);
  const std::vector<Scenario> at20 = standard_scenarios(2.0, knobs);

  for (std::size_t g = 0; g < at20.size(); ++g) {
    ResourceOutlook row;
    row.resource = at20[g].resource;
    for (const ResourceUtilization& u : util.resources)
      if (group_serves(row.resource, u.name))
        row.utilization = std::max(row.utilization, u.busy_frac);
    // Slack-weighted exposure: seconds this group is serving or being
    // queued for, discounted by how far off the critical frontier the
    // span sits — busy seconds with no slack are fully exposed, busy
    // seconds a full makespan away from binding count for nothing.
    for (std::size_t i = 0; i < spans.size(); ++i) {
      double sec = 0.0;
      if (group_serves(row.resource, spans[i].res)) sec += spans[i].service;
      if (group_queues(row.resource, spans[i].resource)) sec += spans[i].wait;
      if (sec <= 0.0) continue;
      const double w =
          slack.makespan > 0.0
              ? std::max(0.0, 1.0 - slack.spans[i].slack / slack.makespan)
              : 1.0;
      row.exposure += sec * w;
    }
    row.predicted_15 = what_if(spans, dag, at15[g]).predicted_makespan;
    row.predicted_20 = what_if(spans, dag, at20[g]).predicted_makespan;
    // Shadow price: secant slope of makespan vs capacity through the 2x
    // point — seconds saved per one additional unit of current capacity.
    // Relief cannot hurt, so clamp the fixpoint's epsilon overshoot at zero.
    row.shadow_price =
        std::max(0.0, (rep.makespan - row.predicted_20) / (2.0 - 1.0));
    rep.resources.push_back(std::move(row));
  }
  std::sort(rep.resources.begin(), rep.resources.end(),
            [](const ResourceOutlook& a, const ResourceOutlook& b) {
              if (a.shadow_price != b.shadow_price)
                return a.shadow_price > b.shadow_price;
              return a.resource < b.resource;
            });
  return rep;
}

std::string explain_table(const ExplainReport& rep) {
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof(line), "makespan %.6f s, critical %s (%.1f%%)%s%s\n",
                rep.makespan, rep.critical_stage.c_str(),
                rep.critical_frac * 100.0,
                rep.binding_resource.empty() ? "" : ", binding: ",
                rep.binding_resource.c_str());
  os << line;
  std::snprintf(line, sizeof(line), "%-10s %6s %12s %14s %14s %12s\n",
                "resource", "util", "exposure_s", "makespan@1.5x",
                "makespan@2x", "shadow_s/x");
  os << line;
  for (const ResourceOutlook& r : rep.resources) {
    std::snprintf(line, sizeof(line),
                  "%-10s %5.1f%% %12.6f %14.6f %14.6f %12.6f\n",
                  r.resource.c_str(), r.utilization * 100.0, r.exposure,
                  r.predicted_15, r.predicted_20, r.shadow_price);
    os << line;
  }
  return os.str();
}

void write_explain_json(std::ostream& os, const ExplainReport& rep) {
  // Key order is part of the schema (schema_version first, fixed row keys,
  // rows ranked by shadow price) so the file diffs byte-stably across runs.
  // Bump `schema_version` on any layout change.
  util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("makespan").value(rep.makespan);
  w.key("critical_stage").value(rep.critical_stage);
  w.key("critical_frac").value(rep.critical_frac);
  w.key("binding_resource").value(rep.binding_resource);
  w.key("resources").begin_array();
  for (const ResourceOutlook& r : rep.resources) {
    w.begin_object();
    w.key("resource").value(r.resource);
    w.key("utilization").value(r.utilization);
    w.key("exposure_s").value(r.exposure);
    w.key("predicted_makespan_1_5x").value(r.predicted_15);
    w.key("predicted_makespan_2x").value(r.predicted_20);
    w.key("shadow_price_s").value(r.shadow_price);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

void export_explain(const std::string& path, const ExplainReport& rep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write_explain_json(out, rep);
}

}  // namespace amrio::obs

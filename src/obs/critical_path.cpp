#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace amrio::obs {
namespace {

constexpr double kEps = 1e-9;

// Total order used to break ties when choosing the next chain span: prefer
// the latest-ending, then latest-starting, then lowest id (deterministic).
bool better_candidate(const Span& a, const Span& b) {
  if (a.end != b.end) return a.end > b.end;
  if (a.start != b.start) return a.start > b.start;
  return a.id < b.id;
}

}  // namespace

CriticalPathReport critical_path(const std::vector<Span>& spans,
                                 const std::vector<SpanEdge>& edges) {
  CriticalPathReport report;
  if (spans.empty()) return report;

  std::unordered_map<std::uint64_t, const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span& s : spans) by_id.emplace(s.id, &s);

  std::unordered_map<std::uint64_t, std::vector<const Span*>> incoming;
  for (const SpanEdge& e : edges) {
    auto it = by_id.find(e.from);
    if (it != by_id.end()) incoming[e.to].push_back(it->second);
  }

  report.t0 = spans.front().start;
  report.t1 = spans.front().end;
  const Span* cur = &spans.front();
  for (const Span& s : spans) {
    report.t0 = std::min(report.t0, s.start);
    report.t1 = std::max(report.t1, s.end);
    if (better_candidate(s, *cur)) cur = &s;
  }
  report.makespan = report.t1 - report.t0;

  std::map<std::string, double> stage_seconds;
  std::map<std::string, double> resource_wait;
  std::unordered_set<std::uint64_t> visited;
  double upper = report.t1;  // everything in [upper, t1] is attributed

  while (cur != nullptr) {
    visited.insert(cur->id);
    report.chain.push_back(cur->id);
    const double seg_end = std::min(cur->end, upper);
    const double seg_start = std::min(cur->start, seg_end);
    if (seg_end > seg_start) stage_seconds[cur->stage] += seg_end - seg_start;
    if (cur->wait > 0 && !cur->resource.empty())
      resource_wait[cur->resource] += cur->wait;
    upper = std::min(upper, seg_start);

    // Predecessor: the latest-ending unvisited source of an incoming
    // happens-before edge, else the latest-ending unvisited span that ends
    // at or before the current coverage frontier (time adjacency).
    const Span* pred = nullptr;
    auto in_it = incoming.find(cur->id);
    if (in_it != incoming.end()) {
      for (const Span* src : in_it->second) {
        if (visited.count(src->id)) continue;
        if (pred == nullptr || better_candidate(*src, *pred)) pred = src;
      }
    }
    if (pred == nullptr) {
      for (const Span& s : spans) {
        if (s.end > upper + kEps || visited.count(s.id)) continue;
        if (pred == nullptr || better_candidate(s, *pred)) pred = &s;
      }
    }
    if (pred != nullptr) {
      const double gap = upper - pred->end;
      if (gap > kEps) {
        stage_seconds["compute"] += gap;
        upper = pred->end;
      }
    } else {
      const double gap = upper - report.t0;
      if (gap > kEps) stage_seconds["compute"] += gap;
    }
    cur = pred;
  }
  std::reverse(report.chain.begin(), report.chain.end());

  for (const auto& [stage, seconds] : stage_seconds) {
    StageShare share;
    share.stage = stage;
    share.seconds = seconds;
    share.frac = report.makespan > 0 ? seconds / report.makespan : 0.0;
    report.stages.push_back(std::move(share));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageShare& a, const StageShare& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.stage < b.stage;
            });
  if (!report.stages.empty()) {
    report.critical_stage = report.stages.front().stage;
    report.critical_frac = report.stages.front().frac;
  }

  double best_wait = 0.0;
  for (const auto& [resource, wait] : resource_wait) {
    if (report.binding_resource.empty() || wait > best_wait) {
      report.binding_resource = resource;
      best_wait = wait;
    }
  }
  if (report.binding_resource.empty())
    report.binding_resource = report.critical_stage;

  return report;
}

std::string summarize(const CriticalPathReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s %.1f%% (binding: %s)",
                report.critical_stage.c_str(), 100.0 * report.critical_frac,
                report.binding_resource.c_str());
  return buf;
}

}  // namespace amrio::obs

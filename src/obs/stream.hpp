#pragma once
/// \file stream.hpp
/// Streaming trace export for machine-scale runs. `obs::Tracer` buffers
/// every span of every rank in memory, which is fine at 32 ranks and
/// hopeless at the 100k–516k virtual ranks `exec::EventEngine` makes
/// routine. `TraceStream` is a `SpanSink` that keeps peak memory bounded:
///
///  * spans land in bounded per-shard buffers (same splitmix64 rank
///    sharding as `Tracer`, same id assignment, so ids — and therefore
///    edges — are identical to a buffered run of the same workload);
///  * a full shard buffer is sorted by the global `(start, rank, id)` order
///    and spilled to a binary side file as a sorted run;
///  * `finish()` k-way-merges the spilled runs with the still-buffered
///    remainders and emits the final Chrome-trace JSON through the same
///    `ChromeTraceEmitter` the buffered exporter uses — an unsampled
///    streamed file is byte-identical to `write_chrome_trace` on the same
///    span stream (pinned by tests/test_obs.cpp).
///
/// Deterministic rank sampling (`TraceSample`) bounds the *output* as well:
/// only spans from N evenly spaced representative ranks (plus the driver
/// track and any caller-listed always-keep ranks, e.g. aggregators) are kept
/// verbatim; everything else folds into per-stage envelope spans on a
/// single "aggregated" track. The sample set is a pure function of
/// (nranks, N), so it is identical across engines and runs.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace amrio::obs {

/// Deterministic rank-sampling policy. Default-constructed keeps everything.
struct TraceSample {
  int nranks = 0;  ///< total rank count of the run (for the sample spacing)
  int sample = 0;  ///< keep this many evenly spaced ranks; 0 = keep all
  std::vector<int> keep_extra;  ///< always-keep ranks (aggregators, ...)

  /// The N evenly spaced representative ranks: { floor(i*nranks/N) }.
  /// Pure function of (nranks, n) — same set on every engine and run.
  static std::vector<int> sample_set(int nranks, int n);

  bool enabled() const { return sample > 0; }

  /// True when `rank`'s spans are kept verbatim. Rank -1 (driver) always is.
  bool keep(int rank) const;

  /// Builds the membership set; call once after filling the fields.
  void seal();

 private:
  std::set<int> kept_;
  bool sealed_ = false;
};

/// Bounded-memory streaming span sink. Thread-safe like `Tracer` (per-shard
/// mutexes). Call `finish()` exactly once when the run is complete; the
/// destructor discards unfinished state and removes the spill file.
class TraceStream : public SpanSink {
 public:
  struct Options {
    std::string path;           ///< output Chrome-trace JSON path
    TraceSample sample;         ///< default: keep every span
    std::size_t shard_capacity = 4096;  ///< spans buffered per shard
    std::size_t nsinks = 64;    ///< shard count (same default as Tracer)
  };

  explicit TraceStream(Options opt);
  ~TraceStream() override;

  std::uint64_t record(Span s) override;
  void edge(std::uint64_t from, std::uint64_t to) override;

  /// Merge spilled runs + in-memory remainders and write the final JSON.
  void finish();

  /// Sum over shards of each shard's buffered-span high-water mark — an
  /// upper bound on how many spans were ever resident at once. With
  /// `shard_capacity` C and S shards this never exceeds S*C regardless of
  /// how many spans the run records (the boundedness the 131k test pins).
  std::size_t peak_buffered_spans() const;

  /// Spans recorded (pre-sampling) / kept verbatim (post-sampling).
  std::uint64_t spans_recorded() const;
  std::uint64_t spans_kept() const;

  /// Per-stage envelope spans over EVERY recorded span (kept and dropped
  /// alike): one span per stage covering [min start, max end], with the
  /// stage's total wait and its dominant wait resource. This is the input
  /// to the documented envelope-span critical-path approximation under
  /// `--trace_sample` (the full stream is never resident, so the exact
  /// chain is unavailable). Integer-nanosecond accumulation keeps the
  /// result engine- and interleaving-invariant. Callable any time.
  std::vector<Span> envelope_spans() const;

  bool finished() const { return finished_; }

 private:
  struct StageAgg {  // envelope of one stage's spans
    std::uint64_t count = 0;
    std::int64_t dur_ns = 0;   // integer sums: commutative across engines
    std::int64_t wait_ns = 0;
    double min_start = 0.0;
    double max_end = 0.0;
    /// wait nanoseconds keyed by Span::resource — picks the envelope's
    /// dominant resource (empty-resource wait is not attributed).
    std::map<std::string, std::int64_t> wait_by_res;
  };
  struct Shard {
    std::mutex mu;
    std::vector<Span> buf;
    std::vector<SpanEdge> edges;
    std::map<int, std::uint32_t> next_seq;
    std::map<std::string, StageAgg> dropped;  // only when sampling
    std::map<std::string, StageAgg> stages;   // every span, kept or dropped
    std::set<int> ranks_seen;                 // kept ranks only
    std::size_t peak = 0;
    std::uint64_t recorded = 0;
    std::uint64_t kept = 0;
  };

  Shard& shard_for(int rank);
  void spill_locked(Shard& sh);  // caller holds sh.mu

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex spill_mu_;
  std::string spill_path_;
  struct RunInfo {
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
  };
  std::vector<RunInfo> runs_;
  bool spill_open_ = false;
  bool finished_ = false;
};

}  // namespace amrio::obs

#include "obs/ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace amrio::obs {
namespace {

std::string pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

}  // namespace

void ResourceLedger::declare(const std::string& name, int capacity) {
  if (capacity < 1) capacity = 1;
  std::lock_guard<std::mutex> lock(mu_);
  Res& r = resources_[name];
  r.capacity = std::max(r.capacity, capacity);
}

void ResourceLedger::add_busy(const std::string& name, double seconds) {
  if (seconds <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  resources_[name].busy_s += seconds;
}

void ResourceLedger::queue_delta(const std::string& name, double t,
                                 int delta) {
  std::lock_guard<std::mutex> lock(mu_);
  resources_[name].qdeltas.emplace_back(t + epoch_offset_, delta);
}

void ResourceLedger::extend_makespan(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_max_ = std::max(epoch_max_, t);
}

void ResourceLedger::begin_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_offset_ += epoch_max_;
  epoch_max_ = 0.0;
}

UtilizationReport ResourceLedger::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  UtilizationReport rep;
  rep.makespan = epoch_offset_ + epoch_max_;
  rep.resources.reserve(resources_.size());
  for (const auto& [name, res] : resources_) {
    ResourceUtilization u;
    u.name = name;
    u.capacity = res.capacity;
    u.busy_s = res.busy_s;
    const double pool = res.capacity * rep.makespan;
    u.idle_s = pool - res.busy_s;
    u.busy_frac = pool > 0 ? res.busy_s / pool : 0.0;

    if (!res.qdeltas.empty()) {
      // Sum same-time deltas before scanning so peak depth is well-defined
      // regardless of emission order within one event time.
      std::map<double, long long> by_t;
      for (const auto& [t, d] : res.qdeltas) by_t[t] += d;
      long long depth = 0;
      long long peak = 0;
      double weighted = 0.0;
      double prev_t = 0.0;
      for (const auto& [t, d] : by_t) {
        if (t > prev_t) weighted += static_cast<double>(depth) * (t - prev_t);
        depth += d;
        peak = std::max(peak, depth);
        prev_t = std::max(prev_t, t);
      }
      if (rep.makespan > prev_t)
        weighted += static_cast<double>(depth) * (rep.makespan - prev_t);
      u.queue_peak = static_cast<int>(peak);
      u.queue_avg = rep.makespan > 0 ? weighted / rep.makespan : 0.0;
    }
    rep.resources.push_back(std::move(u));
  }
  std::sort(rep.resources.begin(), rep.resources.end(),
            [](const ResourceUtilization& a, const ResourceUtilization& b) {
              if (a.busy_frac != b.busy_frac) return a.busy_frac > b.busy_frac;
              return a.name < b.name;
            });
  return rep;
}

std::string UtilizationReport::top_summary(std::size_t n) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const ResourceUtilization& u : resources) {
    if (shown == n) break;
    if (shown > 0) os << ", ";
    os << u.name << " " << pct(u.busy_frac) << " busy";
    ++shown;
  }
  if (shown == 0) os << "(no resources observed)";
  return os.str();
}

void write_utilization_json(std::ostream& os, const UtilizationReport& rep) {
  // Key order is part of the schema: `schema_version` first, then fixed
  // per-resource keys in a pinned order, resources sorted by (busy_frac
  // desc, name) — so the file diffs byte-stably across runs. Bump
  // `schema_version` on any layout change.
  util::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("makespan").value(rep.makespan);
  w.key("resources").begin_array();
  for (const ResourceUtilization& u : rep.resources) {
    w.begin_object();
    w.key("name").value(u.name);
    w.key("capacity").value(u.capacity);
    w.key("busy_s").value(u.busy_s);
    w.key("idle_s").value(u.idle_s);
    w.key("busy_frac").value(u.busy_frac);
    w.key("queue_peak").value(u.queue_peak);
    w.key("queue_avg").value(u.queue_avg);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::string utilization_table(const UtilizationReport& rep,
                              std::size_t top_n) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-28s %4s %12s %12s %7s %6s %9s\n",
                "resource", "cap", "busy_s", "idle_s", "busy", "qpeak",
                "qavg");
  os << line;
  std::size_t shown = 0;
  for (const ResourceUtilization& u : rep.resources) {
    if (top_n != 0 && shown == top_n) break;
    std::snprintf(line, sizeof(line),
                  "%-28s %4d %12.6f %12.6f %7s %6d %9.3f\n", u.name.c_str(),
                  u.capacity, u.busy_s, u.idle_s, pct(u.busy_frac).c_str(),
                  u.queue_peak, u.queue_avg);
    os << line;
    ++shown;
  }
  if (top_n != 0 && rep.resources.size() > shown) {
    std::snprintf(line, sizeof(line), "... (%zu more)\n",
                  rep.resources.size() - shown);
    os << line;
  }
  return os.str();
}

void export_utilization(const std::string& path,
                        const UtilizationReport& rep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + path);
  write_utilization_json(out, rep);
}

}  // namespace amrio::obs

#pragma once
/// \file probe.hpp
/// The instrumentation handle threaded through the pipeline. Every
/// instrumented layer (`codec` stage inside the macsio driver, `exec`
/// collectives, `StagingBackend`, `pfs::SimFs`, `plotfile::write_plotfile`)
/// takes an `obs::Probe` — a pair of optional pointers. A default-constructed
/// probe disables instrumentation with near-zero overhead (two null checks
/// per site), so hot paths don't fork on an #ifdef.

namespace amrio::obs {

class Tracer;
class MetricsRegistry;

struct Probe {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  explicit operator bool() const {
    return tracer != nullptr || metrics != nullptr;
  }
};

}  // namespace amrio::obs

#pragma once
/// \file probe.hpp
/// The instrumentation handle threaded through the pipeline. Every
/// instrumented layer (`codec` stage inside the macsio driver, `exec`
/// collectives, `StagingBackend`, `pfs::SimFs`, `plotfile::write_plotfile`)
/// takes an `obs::Probe` — a bundle of optional pointers. A
/// default-constructed probe disables instrumentation with near-zero overhead
/// (a few null checks per site), so hot paths don't fork on an #ifdef.

namespace amrio::obs {

class SpanSink;
class MetricsRegistry;
class ResourceLedger;

struct Probe {
  SpanSink* tracer = nullptr;  ///< buffered Tracer or streaming TraceStream
  MetricsRegistry* metrics = nullptr;
  ResourceLedger* ledger = nullptr;  ///< per-resource busy/idle/queue ledger

  explicit operator bool() const {
    return tracer != nullptr || metrics != nullptr || ledger != nullptr;
  }
};

}  // namespace amrio::obs

#include "obs/stream.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdio>  // std::remove
#include <fstream>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/export.hpp"
#include "obs/shard.hpp"

namespace amrio::obs {
namespace {

/// Global span order shared with Tracer::spans() and the spill runs.
bool span_less(const Span& a, const Span& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.id < b.id;
}

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::ostream& os, const std::string& s) {
  put_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_span(std::ostream& os, const Span& s) {
  os.write(reinterpret_cast<const char*>(&s.id), sizeof(s.id));
  os.write(reinterpret_cast<const char*>(&s.parent), sizeof(s.parent));
  os.write(reinterpret_cast<const char*>(&s.rank), sizeof(s.rank));
  os.write(reinterpret_cast<const char*>(&s.start), sizeof(s.start));
  os.write(reinterpret_cast<const char*>(&s.end), sizeof(s.end));
  os.write(reinterpret_cast<const char*>(&s.wait), sizeof(s.wait));
  os.write(reinterpret_cast<const char*>(&s.service), sizeof(s.service));
  put_str(os, s.stage);
  put_str(os, s.detail);
  put_str(os, s.resource);
  put_str(os, s.res);
}

std::string get_str(std::istream& is) {
  std::uint32_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

Span get_span(std::istream& is) {
  Span s;
  is.read(reinterpret_cast<char*>(&s.id), sizeof(s.id));
  is.read(reinterpret_cast<char*>(&s.parent), sizeof(s.parent));
  is.read(reinterpret_cast<char*>(&s.rank), sizeof(s.rank));
  is.read(reinterpret_cast<char*>(&s.start), sizeof(s.start));
  is.read(reinterpret_cast<char*>(&s.end), sizeof(s.end));
  is.read(reinterpret_cast<char*>(&s.wait), sizeof(s.wait));
  is.read(reinterpret_cast<char*>(&s.service), sizeof(s.service));
  s.stage = get_str(is);
  s.detail = get_str(is);
  s.resource = get_str(is);
  s.res = get_str(is);
  return s;
}

constexpr std::size_t kRefillBatch = 256;  // spans read per spill-run refill

}  // namespace

std::vector<int> TraceSample::sample_set(int nranks, int n) {
  std::vector<int> out;
  if (nranks <= 0 || n <= 0) return out;
  if (n >= nranks) {
    out.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) out[static_cast<std::size_t>(r)] = r;
    return out;
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // floor(i * nranks / n) in 64-bit so 131072 * large-N cannot overflow
    const int r = static_cast<int>(static_cast<std::int64_t>(i) * nranks / n);
    if (out.empty() || out.back() != r) out.push_back(r);
  }
  return out;
}

void TraceSample::seal() {
  kept_.clear();
  for (int r : sample_set(nranks, sample)) kept_.insert(r);
  for (int r : keep_extra) kept_.insert(r);
  sealed_ = true;
}

bool TraceSample::keep(int rank) const {
  if (!enabled()) return true;
  if (rank < 0) return true;  // driver / phase track is always kept
  assert(sealed_);
  return kept_.count(rank) != 0;
}

TraceStream::TraceStream(Options opt) : opt_(std::move(opt)) {
  if (opt_.nsinks == 0) opt_.nsinks = 1;
  if (opt_.shard_capacity == 0) opt_.shard_capacity = 1;
  opt_.sample.seal();
  shards_.reserve(opt_.nsinks);
  for (std::size_t i = 0; i < opt_.nsinks; ++i)
    shards_.push_back(std::make_unique<Shard>());
  spill_path_ = opt_.path + ".spill";
}

TraceStream::~TraceStream() {
  if (spill_open_) std::remove(spill_path_.c_str());
}

TraceStream::Shard& TraceStream::shard_for(int rank) {
  return *shards_[rank_shard(rank, shards_.size())];
}

std::uint64_t TraceStream::record(Span s) {
  assert(s.end >= s.start);
  Shard& sh = shard_for(s.rank);
  std::lock_guard<std::mutex> lock(sh.mu);
  // Identical id rule to Tracer::record — a sampled stream's kept spans
  // carry the ids a buffered run would have assigned them.
  const std::uint32_t seq = ++sh.next_seq[s.rank];
  s.id = (static_cast<std::uint64_t>(static_cast<std::int64_t>(s.rank) + 1)
          << 32) |
         seq;
  const std::uint64_t id = s.id;
  ++sh.recorded;
  {
    // Per-stage envelope over EVERY span (kept and dropped) — feeds the
    // envelope-span critical-path approximation (envelope_spans()).
    auto [it, fresh] = sh.stages.try_emplace(s.stage);
    StageAgg& agg = it->second;
    if (fresh) {
      agg.min_start = s.start;
      agg.max_end = s.end;
    } else {
      agg.min_start = std::min(agg.min_start, s.start);
      agg.max_end = std::max(agg.max_end, s.end);
    }
    ++agg.count;
    agg.dur_ns += std::llround((s.end - s.start) * 1e9);
    const std::int64_t wait_ns = std::llround(s.wait * 1e9);
    agg.wait_ns += wait_ns;
    if (wait_ns > 0 && !s.resource.empty())
      agg.wait_by_res[s.resource] += wait_ns;
  }
  if (opt_.sample.keep(s.rank)) {
    ++sh.kept;
    sh.ranks_seen.insert(s.rank);
    sh.buf.push_back(std::move(s));
    sh.peak = std::max(sh.peak, sh.buf.size());
    if (sh.buf.size() >= opt_.shard_capacity) spill_locked(sh);
  } else {
    // Dropped spans fold into a per-stage envelope. Integer-nanosecond sums
    // and min/max are commutative, so the aggregate — like everything else
    // here — is engine- and interleaving-invariant.
    auto [it, fresh] = sh.dropped.try_emplace(s.stage);
    StageAgg& agg = it->second;
    if (fresh) {
      agg.min_start = s.start;
      agg.max_end = s.end;
    } else {
      agg.min_start = std::min(agg.min_start, s.start);
      agg.max_end = std::max(agg.max_end, s.end);
    }
    ++agg.count;
    agg.dur_ns += std::llround((s.end - s.start) * 1e9);
    agg.wait_ns += std::llround(s.wait * 1e9);
  }
  return id;
}

void TraceStream::edge(std::uint64_t from, std::uint64_t to) {
  if (!opt_.sample.keep(span_rank(from)) || !opt_.sample.keep(span_rank(to)))
    return;
  Shard& sh = shard_for(span_rank(from));
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.edges.push_back(SpanEdge{from, to});
}

void TraceStream::spill_locked(Shard& sh) {
  std::sort(sh.buf.begin(), sh.buf.end(), span_less);
  std::lock_guard<std::mutex> lock(spill_mu_);
  std::ofstream out(spill_path_, spill_open_
                                     ? (std::ios::binary | std::ios::app)
                                     : (std::ios::binary | std::ios::trunc));
  if (!out) throw std::runtime_error("obs: cannot open " + spill_path_);
  spill_open_ = true;
  out.seekp(0, std::ios::end);
  RunInfo run;
  run.offset = static_cast<std::uint64_t>(out.tellp());
  run.count = sh.buf.size();
  for (const Span& s : sh.buf) put_span(out, s);
  if (!out) throw std::runtime_error("obs: short write to " + spill_path_);
  runs_.push_back(run);
  sh.buf.clear();
}

std::size_t TraceStream::peak_buffered_spans() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->peak;
  }
  return total;
}

std::uint64_t TraceStream::spans_recorded() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->recorded;
  }
  return total;
}

std::uint64_t TraceStream::spans_kept() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->kept;
  }
  return total;
}

std::vector<Span> TraceStream::envelope_spans() const {
  // Merge the per-shard stage aggregates (std::map order makes the merge —
  // and therefore the emitted ids — deterministic).
  std::map<std::string, StageAgg> stages;
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [stage, agg] : sh.stages) {
      auto [it, fresh] = stages.try_emplace(stage, agg);
      if (fresh) continue;
      StageAgg& d = it->second;
      d.count += agg.count;
      d.dur_ns += agg.dur_ns;
      d.wait_ns += agg.wait_ns;
      d.min_start = std::min(d.min_start, agg.min_start);
      d.max_end = std::max(d.max_end, agg.max_end);
      for (const auto& [res, ns] : agg.wait_by_res) d.wait_by_res[res] += ns;
    }
  }
  std::vector<Span> out;
  out.reserve(stages.size());
  const int agg_rank = std::max(opt_.sample.nranks, 0);
  std::uint32_t seq = 0;
  for (const auto& [stage, agg] : stages) {
    Span s;
    s.id = (static_cast<std::uint64_t>(agg_rank + 1) << 32) | ++seq;
    s.rank = agg_rank;
    s.stage = stage;
    s.start = agg.min_start;
    s.end = agg.max_end;
    s.wait = static_cast<double>(agg.wait_ns) / 1e9;
    // Dominant wait resource: largest accumulated wait, ties to the
    // lexicographically first name (map order).
    std::int64_t best = 0;
    for (const auto& [res, ns] : agg.wait_by_res)
      if (ns > best) {
        best = ns;
        s.resource = res;
      }
    char detail[96];
    std::snprintf(detail, sizeof(detail), "%llu spans, %.9f s busy",
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.dur_ns) / 1e9);
    s.detail = detail;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), span_less);
  return out;
}

void TraceStream::finish() {
  if (finished_) throw std::logic_error("TraceStream::finish called twice");
  finished_ = true;

  // One run per spill + one per non-empty shard remainder (+ the aggregate
  // run). Everything below runs single-threaded; locks are no longer needed
  // but we take them anyway so a late-recording thread fails loudly on the
  // sorted buffers rather than corrupting them silently.
  struct Cursor {
    std::vector<Span> buf;  // whole run (in-memory) or refill window (file)
    std::size_t idx = 0;
    std::uint64_t remaining = 0;  // spans still in the file beyond `buf`
    std::uint64_t offset = 0;     // next byte to read from the spill file
  };
  std::vector<Cursor> cursors;

  std::set<int> ranks;
  std::vector<SpanEdge> edges;
  std::map<std::string, StageAgg> dropped;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lock(sh.mu);
    std::sort(sh.buf.begin(), sh.buf.end(), span_less);
    if (!sh.buf.empty()) {
      Cursor c;
      c.buf = std::move(sh.buf);
      cursors.push_back(std::move(c));
    }
    ranks.insert(sh.ranks_seen.begin(), sh.ranks_seen.end());
    edges.insert(edges.end(), sh.edges.begin(), sh.edges.end());
    for (const auto& [stage, agg] : sh.dropped) {
      auto [it, fresh] = dropped.try_emplace(stage, agg);
      if (!fresh) {
        StageAgg& d = it->second;
        d.count += agg.count;
        d.dur_ns += agg.dur_ns;
        d.wait_ns += agg.wait_ns;
        d.min_start = std::min(d.min_start, agg.min_start);
        d.max_end = std::max(d.max_end, agg.max_end);
      }
    }
  }

  std::sort(edges.begin(), edges.end(),
            [](const SpanEdge& a, const SpanEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });

  // Envelope spans for the sampled-away ranks, one per stage on a synthetic
  // "aggregated" track just above the real rank range.
  const int agg_rank = opt_.sample.nranks;
  if (!dropped.empty()) {
    Cursor c;
    std::uint32_t seq = 0;
    for (const auto& [stage, agg] : dropped) {
      Span s;
      s.id = (static_cast<std::uint64_t>(agg_rank + 1) << 32) | ++seq;
      s.rank = agg_rank;
      s.stage = stage;
      s.start = agg.min_start;
      s.end = agg.max_end;
      s.wait = static_cast<double>(agg.wait_ns) / 1e9;
      if (s.wait > 0) s.resource = "(aggregated)";
      char detail[96];
      std::snprintf(detail, sizeof(detail), "%llu spans, %.9f s busy",
                    static_cast<unsigned long long>(agg.count),
                    static_cast<double>(agg.dur_ns) / 1e9);
      s.detail = detail;
      c.buf.push_back(std::move(s));
    }
    std::sort(c.buf.begin(), c.buf.end(), span_less);
    cursors.push_back(std::move(c));
    ranks.insert(agg_rank);
  }

  std::ifstream spill;
  if (!runs_.empty()) {
    spill.open(spill_path_, std::ios::binary);
    if (!spill) throw std::runtime_error("obs: cannot reopen " + spill_path_);
    for (const RunInfo& run : runs_) {
      Cursor c;
      c.remaining = run.count;
      c.offset = run.offset;
      cursors.push_back(std::move(c));
    }
  }

  auto refill = [&](Cursor& c) {
    c.buf.clear();
    c.idx = 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(c.remaining, kRefillBatch);
    if (n == 0) return;
    spill.seekg(static_cast<std::streamoff>(c.offset));
    c.buf.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) c.buf.push_back(get_span(spill));
    if (!spill) throw std::runtime_error("obs: short read from " + spill_path_);
    c.offset = static_cast<std::uint64_t>(spill.tellg());
    c.remaining -= n;
  };
  for (Cursor& c : cursors)
    if (c.buf.empty()) refill(c);

  // Which span coordinates the flow-pair pass will need: collect them during
  // the merge so memory stays O(edges), never O(spans).
  std::unordered_set<std::uint64_t> needed;
  needed.reserve(edges.size() * 2);
  for (const SpanEdge& e : edges) {
    needed.insert(e.from);
    needed.insert(e.to);
  }
  struct Coord {
    int rank;
    double start, end;
  };
  std::unordered_map<std::uint64_t, Coord> coords;
  coords.reserve(needed.size());

  std::ofstream out(opt_.path, std::ios::binary);
  if (!out) throw std::runtime_error("obs: cannot open " + opt_.path);
  ChromeTraceEmitter em(out);

  std::vector<TraceTrack> tracks;
  tracks.reserve(ranks.size());
  for (int rank : ranks)
    tracks.push_back({rank + 1, opt_.sample.enabled() && rank == agg_rank
                                    ? std::string("aggregated")
                                    : track_name(rank)});
  em.begin(tracks);

  // K-way merge of the sorted runs under the global (start, rank, id) order.
  auto heap_greater = [&](std::size_t a, std::size_t b) {
    return span_less(cursors[b].buf[cursors[b].idx],
                     cursors[a].buf[cursors[a].idx]);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(heap_greater)>
      heap(heap_greater);
  for (std::size_t i = 0; i < cursors.size(); ++i)
    if (cursors[i].idx < cursors[i].buf.size()) heap.push(i);
  while (!heap.empty()) {
    const std::size_t i = heap.top();
    heap.pop();
    Cursor& c = cursors[i];
    const Span& s = c.buf[c.idx];
    em.span_event(s);
    if (needed.count(s.id)) coords.emplace(s.id, Coord{s.rank, s.start, s.end});
    ++c.idx;
    if (c.idx >= c.buf.size()) refill(c);
    if (c.idx < c.buf.size()) heap.push(i);
  }

  // Same skip-missing-endpoint rule and iteration order as the buffered
  // exporter, so flow ids line up byte for byte.
  for (const SpanEdge& e : edges) {
    auto from_it = coords.find(e.from);
    auto to_it = coords.find(e.to);
    if (from_it == coords.end() || to_it == coords.end()) continue;
    em.flow_pair(from_it->second.rank, from_it->second.end,
                 to_it->second.rank, to_it->second.start);
  }

  em.finish();
  out.close();
  if (spill_open_) {
    spill.close();
    std::remove(spill_path_.c_str());
    spill_open_ = false;
  }
}

}  // namespace amrio::obs

#pragma once
/// \file engine.hpp
/// Unified execution engine: one abstraction over "how do N ranks run".
///
/// The drivers in this repository (the MACSio dump loop, the AMReX plotfile
/// writer) are SPMD programs: every rank executes the same body, synchronizing
/// through a small set of collectives and MIF baton messages. Historically the
/// repo carried two divergent implementations of each driver — a serial loop
/// over virtual ranks and a threaded path over simmpi — which had to be kept
/// byte-identical by hand. This layer collapses them: drivers are written once
/// against `RankCtx` (rank id, barrier, exscan_sum, gather/gatherv, tagged
/// token and byte-payload send/recv) and an `Engine` decides how the ranks
/// execute:
///
///  * `SpmdEngine`  — real concurrency: one OS thread per rank via
///    `simmpi::run_spmd`, collectives through the shared-memory communicator.
///    Fails fast above a configurable thread cap (see `SpmdEngine::thread_cap`)
///    instead of exhausting the machine mid-run.
///  * `SerialEngine` — zero threads: each rank is a cooperatively scheduled
///    fiber (ucontext). Collectives suspend a fiber until every rank arrives,
///    so MPI lockstep semantics hold exactly, deterministically, and cheaply —
///    this is what the calibrator uses when it replays MACSio many times.
///  * `EventEngine` — discrete-event scheduling for machine-scale rank counts:
///    ranks are virtual (no per-rank stack or thread — suspended ranks are
///    compact stack slices in arena pools), collectives are batched events
///    resolved when the last participant arrives, and the scheduler's ready
///    queue makes each step O(active events) rather than O(nranks). This is
///    the engine for 100k+ simulated ranks (`--engine=event`).
///
/// Because both engines run the *same* driver body, serial and threaded runs
/// are byte-identical by construction (asserted by tests/test_exec.cpp).
///
/// Error semantics mirror `simmpi::run_spmd`: if any rank throws, peers
/// blocked on a collective or recv observe `simmpi::CommAborted` and
/// `Engine::run` rethrows the first rank's exception.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "obs/probe.hpp"
#include "simmpi/comm.hpp"

namespace amrio::obs {
class SelfProfiler;
}

namespace amrio::exec {

/// Per-rank execution context handed to the driver body. Provides the
/// collective operations the I/O drivers need; every rank must call the same
/// collectives in the same order (MPI SPMD discipline).
class RankCtx {
 public:
  virtual ~RankCtx() = default;

  virtual int rank() const = 0;
  virtual int nranks() const = 0;

  /// Synchronize all ranks.
  virtual void barrier() = 0;
  /// Exclusive prefix sum; rank 0 receives 0 (MPI_Exscan with MPI_SUM).
  virtual std::uint64_t exscan_sum(std::uint64_t v) = 0;
  /// Gather one value per rank to `root` (root receives nranks() values in
  /// rank order; other ranks receive an empty vector).
  virtual std::vector<std::uint64_t> gather(std::uint64_t v, int root) = 0;
  /// Variable-length byte gather, concatenated in rank order at `root`.
  virtual std::vector<std::byte> gatherv(std::span<const std::byte> bytes,
                                         int root) = 0;
  /// Tagged point-to-point token (the MIF baton): buffered send.
  virtual void send_token(std::uint64_t value, int dest, int tag) = 0;
  /// Blocking tagged token receive.
  virtual std::uint64_t recv_token(int src, int tag) = 0;
  /// Tagged point-to-point byte payload (staging shipments to aggregators):
  /// buffered send, message boundaries preserved.
  virtual void send_bytes(std::span<const std::byte> data, int dest,
                          int tag) = 0;
  /// Blocking tagged byte-payload receive (one message).
  virtual std::vector<std::byte> recv_bytes(int src, int tag) = 0;
};

/// Group gatherv over point-to-point messages: every rank in `members`
/// (strictly ascending rank ids) contributes `mine`; `root` (which must be a
/// member) receives one payload per member, in member order, and everyone
/// else receives an empty vector. Unlike RankCtx::gatherv this is *not* a
/// global collective — only the listed members participate, so several
/// aggregation groups can gather concurrently. This is the two-phase
/// collective the staging layer uses to ship task documents to aggregators.
/// A non-empty `probe` counts the ship on the metrics registry
/// (exec.gatherv.{calls,messages,bytes}, root side) — pure commutative
/// counter adds, so the snapshot stays engine-invariant.
std::vector<std::vector<std::byte>> gatherv_group(
    RankCtx& ctx, std::span<const std::byte> mine, std::span<const int> members,
    int root, int tag, obs::Probe probe = {});

/// Group scatterv — `gatherv_group` in reverse, the read-side ship: `root`
/// holds one payload per member (member order, so payloads.size() ==
/// members.size() at the root and is ignored elsewhere) and fans them back
/// out over point-to-point messages; every member returns its own payload.
/// Like gatherv_group this is not a global collective — several restage
/// groups can scatter concurrently. Byte-conserving: the concatenation of
/// what the members receive equals the concatenation of what the root held.
/// `probe` counts exec.scatterv.{calls,messages,bytes} on the root side.
std::vector<std::byte> scatterv_group(
    RankCtx& ctx, const std::vector<std::vector<std::byte>>& payloads,
    std::span<const int> members, int root, int tag, obs::Probe probe = {});

using RankFn = std::function<void(RankCtx&)>;

/// An execution substrate for SPMD driver bodies.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual int nranks() const = 0;
  /// Human-readable engine name ("serial", "spmd") for reports.
  virtual const char* name() const = 0;
  /// Execute `fn` once per rank. Blocks until every rank finishes; rethrows
  /// the first rank exception, if any.
  virtual void run(const RankFn& fn) = 0;

  /// Attach a host-side self-profiler (see obs/selfprof.hpp). Each run()
  /// publishes wall seconds plus engine-specific counters (the event
  /// engine: events processed, context switches, ready-queue high-water,
  /// SliceArena bytes). Null (the default) disables publication; engines
  /// buffer hot-loop counts locally either way, so there is no per-event
  /// synchronization cost.
  void set_profiler(obs::SelfProfiler* prof) { profiler_ = prof; }
  obs::SelfProfiler* profiler() const { return profiler_; }

 protected:
  obs::SelfProfiler* profiler_ = nullptr;
};

/// Fiber-scheduled engine: ranks run as cooperatively scheduled ucontext
/// fibers on the calling thread. Deterministic, no thread overhead.
class SerialEngine final : public Engine {
 public:
  /// `stack_bytes` is the per-fiber stack size; the default comfortably fits
  /// the plotfile/MACSio writer bodies. Fiber stacks are plain heap blocks
  /// with no guard page (unlike SpmdEngine's OS thread stacks), so bodies
  /// with very deep frames should raise `stack_bytes` rather than rely on a
  /// fault to catch overflow.
  explicit SerialEngine(int nranks, std::size_t stack_bytes = 128 * 1024);
  int nranks() const override { return nranks_; }
  const char* name() const override { return "serial"; }
  void run(const RankFn& fn) override;

 private:
  int nranks_;
  std::size_t stack_bytes_;
};

/// Thread-per-rank engine over simmpi::run_spmd.
class SpmdEngine final : public Engine {
 public:
  /// Throws (ContractViolation) when `nranks` exceeds `thread_cap()` — one OS
  /// thread per rank does not survive machine-scale rank counts, and dying on
  /// pthread_create mid-run loses the error; the message points at
  /// `--engine=event` instead.
  explicit SpmdEngine(int nranks);
  int nranks() const override { return nranks_; }
  const char* name() const override { return "spmd"; }
  void run(const RankFn& fn) override;

  /// Most ranks this engine will agree to run as real threads. Defaults to
  /// 1024; override with the AMRIO_SPMD_THREAD_CAP environment variable
  /// (read per construction, so tests can adjust it).
  static int thread_cap();

 private:
  int nranks_;
};

/// Discrete-event engine: virtual ranks on one shared execution stack.
///
/// A rank runs on the shared stack until it blocks (collective arrival or an
/// empty mailbox); its live stack slice — typically a few KiB — is copied
/// into a size-classed arena pool and the stack is reused, so a 516k-rank
/// dump costs megabytes of engine state plus the suspended slices instead of
/// 516k fiber stacks or OS threads. Wake-ups go through a FIFO ready queue
/// (collective release wakes arrivals in order, a send wakes exactly the
/// matching receiver), and fresh ranks start only when nothing is ready, so
/// one scheduling step is O(1) and a full run is O(total events), not
/// O(nranks) per step. Deterministic by construction; byte- and stats-parity
/// with SerialEngine is asserted by tests/test_event_engine.cpp.
///
/// Restrictions (checked): nranks < 2^24 and p2p tags in [0, 65535] — the
/// mailbox key packs (src, dst, tag) into 64 bits. Under AddressSanitizer or
/// on non-x86-64 targets the engine transparently falls back to pooled
/// per-rank ucontext fibers (same semantics, more memory per suspended rank).
class EventEngine final : public Engine {
 public:
  /// `exec_stack_bytes` sizes the shared execution stack (the deepest live
  /// rank must fit; the default is double SerialEngine's per-fiber default).
  explicit EventEngine(int nranks, std::size_t exec_stack_bytes = 256 * 1024);
  int nranks() const override { return nranks_; }
  const char* name() const override { return "event"; }
  void run(const RankFn& fn) override;

 private:
  int nranks_;
  std::size_t stack_bytes_;
};

/// RankCtx over an existing simmpi communicator — lets code that is already
/// inside `simmpi::run_spmd` (the legacy `run_*_spmd` entry points) reuse the
/// engine-parameterized driver bodies.
class CommCtx final : public RankCtx {
 public:
  explicit CommCtx(simmpi::Comm& comm) : comm_(&comm) {}
  int rank() const override { return comm_->rank(); }
  int nranks() const override { return comm_->size(); }
  void barrier() override { comm_->barrier(); }
  std::uint64_t exscan_sum(std::uint64_t v) override {
    return comm_->exscan_sum(v);
  }
  std::vector<std::uint64_t> gather(std::uint64_t v, int root) override {
    return comm_->gather(v, root);
  }
  std::vector<std::byte> gatherv(std::span<const std::byte> bytes,
                                 int root) override {
    return comm_->gatherv(bytes, root);
  }
  void send_token(std::uint64_t value, int dest, int tag) override {
    comm_->send(std::span<const std::uint64_t>(&value, 1), dest, tag);
  }
  std::uint64_t recv_token(int src, int tag) override {
    return comm_->recv<std::uint64_t>(src, tag).at(0);
  }
  void send_bytes(std::span<const std::byte> data, int dest, int tag) override {
    comm_->send(data, dest, tag);
  }
  std::vector<std::byte> recv_bytes(int src, int tag) override {
    return comm_->recv<std::byte>(src, tag);
  }

 private:
  simmpi::Comm* comm_;
};

enum class EngineKind { kSerial, kSpmd, kEvent };

std::unique_ptr<Engine> make_engine(EngineKind kind, int nranks);

/// CLI surface for the `--engine` knob: "serial" | "spmd" | "event".
/// Throws std::invalid_argument on anything else, naming the valid values.
EngineKind engine_kind_from_name(const std::string& name);
const char* engine_kind_name(EngineKind kind);

}  // namespace amrio::exec

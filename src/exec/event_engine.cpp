/// \file event_engine.cpp
/// Discrete-event execution engine: O(active) scheduling for 100k+ ranks.
///
/// The problem with one-fiber-per-rank (SerialEngine) at machine scale is not
/// the scheduling discipline — it is the per-rank footprint: a 128 KiB stack
/// per rank is 66 GB at 516k ranks, and the round-robin scan over all fibers
/// makes every scheduling step O(nranks). This engine removes both:
///
///  * **One shared execution stack.** A rank executes on a single reusable
///    stack. When it blocks (collective arrival, empty mailbox) only its
///    *live* slice — [current stack pointer, stack top), typically 2–4 KiB
///    deep inside the MACSio dump body — is copied out into a size-classed
///    arena pool. Resuming copies the slice back to the identical addresses,
///    so every pointer into the stack stays valid. Suspended state per rank
///    is one saved stack pointer plus the slice; 516k suspended ranks cost
///    on the order of a gigabyte, not tens.
///
///  * **Event-driven wake-ups.** Blocked ranks are never polled. A collective
///    keeps an arrival counter plus the list of arrivals; the last participant
///    computes the result and moves the waiters to a FIFO ready queue. A
///    tagged send wakes exactly the receiver registered for that (src, dst,
///    tag) key. One scheduling step is: pop the ready queue, or start the
///    next fresh rank if nothing is ready — O(1) either way. Resuming before
///    starting fresh ranks also bounds in-flight aggregation payloads to
///    roughly one group's worth.
///
///  * **No syscalls on the switch path.** The context switch is ~20
///    instructions of assembly (callee-saved registers pushed to the stack
///    slice, stack pointer swapped) instead of ucontext's swapcontext, which
///    performs two sigprocmask system calls per switch.
///
/// The logical clock of the simulated file system needs no integration hook:
/// drivers collect tier-tagged `pfs::IoRequest`s and `pfs::SimFs::run` plays
/// them through its own discrete-event queue after the ranks finish, so no
/// fiber ever waits on (or polls) a simulated I/O completion.
///
/// Determinism: fresh ranks start in ascending order, collective releases
/// wake in arrival order, and sends wake exactly one receiver — the schedule
/// is a pure function of the driver body, so repeated runs are identical and
/// byte-parity with SerialEngine holds wherever output order is fixed by data
/// dependencies (which the MIF baton and aggregation protocols guarantee).
///
/// Error semantics mirror SerialEngine: the first rank exception aborts the
/// communicator, every blocked rank is resumed to throw simmpi::CommAborted,
/// and run() rethrows the original error once all ranks unwound. A deadlock
/// (ready queue empty, every rank started, none done) is detected in O(1)
/// and reported the same way.
///
/// Portability: the shared-stack fast path requires x86-64. Elsewhere — and
/// under AddressSanitizer, whose shadow-memory bookkeeping cannot follow a
/// multiplexed stack — the engine falls back to pooled per-rank ucontext
/// fibers with identical scheduling and semantics (just more memory per
/// suspended rank). The fallback is the same code modulo the four
/// start/resume/yield/finish primitives.

#include "exec/engine.hpp"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/selfprof.hpp"
#include "util/assert.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AMRIO_EVENT_COMPAT_STACKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AMRIO_EVENT_COMPAT_STACKS 1
#endif
#endif
#if !defined(AMRIO_EVENT_COMPAT_STACKS) && !defined(__x86_64__)
#define AMRIO_EVENT_COMPAT_STACKS 1
#endif

#ifdef AMRIO_EVENT_COMPAT_STACKS
#include <ucontext.h>

// Under AddressSanitizer the fiber switches must be announced, or ASan keeps
// using the OS thread's stack bounds while code runs (and throws — see
// __asan_handle_no_return) on a heap fiber stack.
#if defined(__SANITIZE_ADDRESS__)
#define AMRIO_EVENT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AMRIO_EVENT_ASAN_FIBERS 1
#endif
#endif
#ifdef AMRIO_EVENT_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#define AMRIO_FIBER_START_SWITCH(save, bottom, size) \
  __sanitizer_start_switch_fiber(save, bottom, size)
#define AMRIO_FIBER_FINISH_SWITCH(save, bottom, size) \
  __sanitizer_finish_switch_fiber(save, bottom, size)
#else
#define AMRIO_FIBER_START_SWITCH(save, bottom, size) (void)0
#define AMRIO_FIBER_FINISH_SWITCH(save, bottom, size) (void)0
#endif

#else

/// amrio_event_fctx_switch(save_sp, next_sp): park the current execution
/// context and continue at `next_sp`. The callee-saved registers and the FPU
/// control words live on the stack being parked — the entire saved context is
/// the one stack-pointer word written through `save_sp`. Returns (with
/// callee-saved state restored) when something later switches back to the
/// saved pointer. System V x86-64; ~20 instructions, no syscalls.
extern "C" void amrio_event_fctx_switch(void** save_sp, void* next_sp);

asm(R"(
.text
.align 16
.globl amrio_event_fctx_switch
.type amrio_event_fctx_switch, @function
amrio_event_fctx_switch:
	.cfi_startproc
	endbr64
	pushq %rbp
	pushq %rbx
	pushq %r12
	pushq %r13
	pushq %r14
	pushq %r15
	subq $8, %rsp
	stmxcsr (%rsp)
	fnstcw 4(%rsp)
	movq %rsp, (%rdi)
	movq %rsi, %rsp
	ldmxcsr (%rsp)
	fldcw 4(%rsp)
	addq $8, %rsp
	popq %r15
	popq %r14
	popq %r13
	popq %r12
	popq %rbx
	popq %rbp
	ret
	.cfi_endproc
.size amrio_event_fctx_switch, .-amrio_event_fctx_switch
)");

#endif  // AMRIO_EVENT_COMPAT_STACKS

namespace amrio::exec {

namespace {

/// Pooled storage for suspended stack slices (and nothing else): bump
/// allocation from megabyte chunks, freed slices recycled through per-size-
/// class freelists. All O(1); nothing is returned to the OS until the run
/// ends, which is exactly the lifetime of the suspensions it backs.
class SliceArena {
 public:
  std::byte* alloc(std::size_t len, std::uint32_t* cls_out) {
    const auto cls = static_cast<std::uint32_t>((len + kGrain - 1) / kGrain);
    *cls_out = cls;
    if (cls < free_.size() && !free_[cls].empty()) {
      std::byte* p = free_[cls].back();
      free_[cls].pop_back();
      return p;
    }
    const std::size_t bytes = static_cast<std::size_t>(cls) * kGrain;
    if (bump_left_ < bytes) {
      const std::size_t chunk = bytes > kChunk ? bytes : kChunk;
      chunks_.push_back(std::make_unique<std::byte[]>(chunk));
      bump_ = chunks_.back().get();
      bump_left_ = chunk;
      allocated_ += chunk;
    }
    std::byte* p = bump_;
    bump_ += bytes;
    bump_left_ -= bytes;
    return p;
  }

  void release(std::byte* p, std::uint32_t cls) {
    if (cls >= free_.size()) free_.resize(cls + 1);
    free_[cls].push_back(p);
  }

  /// Bytes reserved from the OS across all chunks (never shrinks until the
  /// run ends) — the arena-pressure number engine self-profiling reports.
  std::size_t allocated_bytes() const { return allocated_; }

 private:
  static constexpr std::size_t kGrain = 512;
  static constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::size_t allocated_ = 0;
  std::vector<std::vector<std::byte*>> free_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
};

struct EventState;

/// Engine state of the innermost EventEngine::run on this thread (the fresh-
/// start entry point has no argument channel). Saved/restored around nested
/// runs; a nested run is legal because its scheduler executes synchronously
/// within the outer rank's time slice.
thread_local EventState* g_current = nullptr;

struct EventState {
  enum class St : std::uint8_t {
    kUnstarted,       ///< body not entered yet (no stack slice exists)
    kRunning,         ///< on the execution stack right now
    kReady,           ///< woken, queued in `ready`
    kWaitCollective,  ///< suspended in arrive()
    kWaitToken,       ///< suspended in recv_token() on `wait_key`
    kWaitBytes,       ///< suspended in recv_bytes() on `wait_key`
    kDone,            ///< body returned or threw
  };

  struct VRank {
    St state = St::kUnstarted;
    std::uint32_t slice_class = 0;
    std::uint32_t slice_len = 0;
    void* sp = nullptr;        ///< saved stack pointer while suspended
    std::byte* slice = nullptr;  ///< saved stack bytes [sp, stack_top)
    std::uint64_t wait_key = 0;
#ifdef AMRIO_EVENT_COMPAT_STACKS
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    void* asan_fake = nullptr;  ///< ASan fake-stack handle across suspensions
#endif
  };

  EventState(int n, std::size_t stack_bytes)
      : n(n), stack_bytes(stack_bytes), vr(static_cast<std::size_t>(n)),
        ready(static_cast<std::size_t>(n) + 1),
        u64_slots(static_cast<std::size_t>(n)),
        u64_result(static_cast<std::size_t>(n)),
        bytev_slots(static_cast<std::size_t>(n)) {
    coll_waiters.reserve(static_cast<std::size_t>(n));
#ifndef AMRIO_EVENT_COMPAT_STACKS
    stack_mem = std::make_unique<std::byte[]>(stack_bytes + 64);
    std::byte* raw = stack_mem.get();
    auto top = reinterpret_cast<std::uintptr_t>(raw + stack_bytes + 64);
    stack_top = reinterpret_cast<std::byte*>(top & ~std::uintptr_t{63});
    std::memcpy(raw, &kCanary, sizeof kCanary);
    std::uint32_t mxcsr = 0;
    std::uint16_t fcw = 0;
    asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
    fpu_word = mxcsr | (static_cast<std::uint64_t>(fcw) << 32);
#endif
  }

  const int n;
  const std::size_t stack_bytes;
  const RankFn* fn = nullptr;
  int cur = -1;
  int ndone = 0;
  int next_start = 0;  ///< fresh-start cursor: ranks [next_start, n) unstarted
  std::vector<VRank> vr;
  // Ready queue: a fixed ring of capacity n+1. Each rank appears at most once
  // (wake() only enqueues suspended ranks, and enqueueing leaves the
  // suspended states), so the ring can never overflow — FIFO order with no
  // allocation on the scheduling hot path.
  std::vector<int> ready;
  std::size_t ready_head = 0;
  std::size_t ready_tail = 0;
  SliceArena arena;

  // Collective machinery: staging slots (written at arrival) and results
  // (snapshotted by the releasing rank). A released rank's result cannot be
  // clobbered early: the next release needs all n arrivals, which a rank that
  // has not yet consumed this result cannot contribute to.
  int arrived = 0;
  std::vector<int> coll_waiters;  ///< suspended arrivals, in arrival order
  std::vector<std::uint64_t> u64_slots;
  std::vector<std::uint64_t> u64_result;
  std::vector<std::vector<std::byte>> bytev_slots;
  std::vector<std::byte> bytes_result;

  // Mailboxes keyed by packed (src, dst, tag); at most one rank (dst) can
  // block per key, so a send wakes its receiver by direct lookup.
  std::unordered_map<std::uint64_t, std::deque<std::uint64_t>> mail;
  std::unordered_map<std::uint64_t, std::deque<std::vector<std::byte>>>
      byte_mail;
  std::unordered_map<std::uint64_t, int> recv_waiters;

  std::exception_ptr first_error;
  bool aborted = false;
  bool abort_broadcast = false;  ///< blocked ranks woken to observe the abort

  // Self-profiling counters: plain locals on the scheduling path (no
  // synchronization), published once per run when a profiler is attached.
  std::uint64_t prof_resumes = 0;     ///< context switches into ranks
  std::size_t prof_ready_peak = 0;    ///< ready-queue depth high-water

#ifndef AMRIO_EVENT_COMPAT_STACKS
  static constexpr std::uint64_t kCanary = 0x5afe57ac4ca11edull;
  std::unique_ptr<std::byte[]> stack_mem;
  std::byte* stack_top = nullptr;
  std::uint64_t fpu_word = 0;
  void* sched_sp = nullptr;  ///< scheduler context, parked while a rank runs
#else
  ucontext_t main_ctx{};
  std::vector<std::unique_ptr<char[]>> stack_pool;
  /// Scheduler stack bounds, recorded on first fiber entry so yields and
  /// fiber exits can announce the switch back (ASan annotation only).
  const void* sched_stack_bottom = nullptr;
  std::size_t sched_stack_size = 0;
#endif

  static std::uint64_t mail_key(int src, int dst, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }

  bool token_available(std::uint64_t key) const {
    const auto it = mail.find(key);
    return it != mail.end() && !it->second.empty();
  }

  bool bytes_available(std::uint64_t key) const {
    const auto it = byte_mail.find(key);
    return it != byte_mail.end() && !it->second.empty();
  }

  /// Move a suspended rank to the ready queue; no-op for any other state, so
  /// a stale waiter registration can never double-enqueue.
  void wake(int r) {
    VRank& v = vr[static_cast<std::size_t>(r)];
    if (v.state == St::kWaitCollective || v.state == St::kWaitToken ||
        v.state == St::kWaitBytes) {
      v.state = St::kReady;
      ready[ready_tail] = r;
      ready_tail = (ready_tail + 1) % ready.size();
      const std::size_t depth =
          (ready_tail + ready.size() - ready_head) % ready.size();
      if (depth > prof_ready_peak) prof_ready_peak = depth;
    }
  }

  /// Wake the receiver registered for `key`, if any (sends are buffered, so
  /// this is the only wake a p2p message triggers).
  void wake_receiver(std::uint64_t key) {
    const auto it = recv_waiters.find(key);
    if (it == recv_waiters.end()) return;
    const int r = it->second;
    recv_waiters.erase(it);
    wake(r);
  }

  // --- stackful primitives -------------------------------------------------

#ifndef AMRIO_EVENT_COMPAT_STACKS
  /// Lay out a fresh activation frame at the top of the shared stack: the
  /// restore sequence of amrio_event_fctx_switch pops the FPU word and six
  /// zeroed callee-saved registers, then `ret`s into the entry thunk. The
  /// slot above the return address is zero — a null return address, so any
  /// unwinder walking past the entry frame terminates there.
  void* seed_fresh_sp();

  void check_canary() const {
    std::uint64_t c = 0;
    std::memcpy(&c, stack_mem.get(), sizeof c);
    AMRIO_ENSURES_MSG(c == kCanary,
                      "EventEngine: shared execution stack overflow — raise "
                      "exec_stack_bytes");
  }
#endif

  [[gnu::noinline]] void resume(int r);
  void yield_current();

  void run_loop() {
    while (ndone < n) {
      int r;
      if (ready_head != ready_tail) {
        r = ready[ready_head];
        ready_head = (ready_head + 1) % ready.size();
      } else if (next_start < n) {
        r = next_start++;
      } else {
        // Every rank has started, none is ready, not all are done: the live
        // ranks are all blocked with no wake in flight. Two ways here: a
        // rank error set `aborted` and the blocked peers still need waking,
        // or this is a genuine deadlock. Either way, don't throw over the
        // suspended ranks (their locals would never be destructed) — resume
        // each one to throw CommAborted internally. One broadcast suffices:
        // every suspension point re-checks the abort flag before blocking
        // again, so a second pass through this branch is an engine bug.
        if (abort_broadcast)
          throw std::runtime_error(
              "EventEngine: internal error — aborted ranks did not unwind");
        if (!aborted) {
          if (!first_error)
            first_error = std::make_exception_ptr(std::runtime_error(
                "EventEngine: deadlock — all live ranks are blocked "
                "(mismatched collectives or a recv with no matching send)"));
          aborted = true;
        }
        abort_broadcast = true;
        for (int i = 0; i < n; ++i) wake(i);
        continue;
      }
      ++prof_resumes;
      resume(r);
    }
  }
};

/// Per-rank context bound to one virtual rank of an EventState. Identical
/// semantics to SerialEngine's FiberCtx; only the suspension mechanics and
/// the wake bookkeeping differ.
class EventCtx final : public RankCtx {
 public:
  EventCtx(EventState* st, int rank) : st_(st), rank_(rank) {}

  int rank() const override { return rank_; }
  int nranks() const override { return st_->n; }

  void barrier() override { arrive([](EventState&) {}); }

  std::uint64_t exscan_sum(std::uint64_t v) override {
    st_->u64_slots[static_cast<std::size_t>(rank_)] = v;
    arrive([](EventState& st) {
      std::uint64_t acc = 0;
      for (int r = 0; r < st.n; ++r) {
        const std::uint64_t x = st.u64_slots[static_cast<std::size_t>(r)];
        st.u64_result[static_cast<std::size_t>(r)] = acc;
        acc += x;
      }
    });
    return st_->u64_result[static_cast<std::size_t>(rank_)];
  }

  std::vector<std::uint64_t> gather(std::uint64_t v, int root) override {
    AMRIO_EXPECTS(root >= 0 && root < st_->n);
    st_->u64_slots[static_cast<std::size_t>(rank_)] = v;
    arrive([](EventState& st) { st.u64_result = st.u64_slots; });
    if (rank_ != root) return {};
    return st_->u64_result;
  }

  std::vector<std::byte> gatherv(std::span<const std::byte> bytes,
                                 int root) override {
    AMRIO_EXPECTS(root >= 0 && root < st_->n);
    // The contribution must be copied at arrival: `bytes` may point into this
    // rank's stack, which is swapped out while it waits for the release.
    st_->bytev_slots[static_cast<std::size_t>(rank_)].assign(bytes.begin(),
                                                             bytes.end());
    arrive([](EventState& st) {
      std::size_t total = 0;
      for (const auto& s : st.bytev_slots) total += s.size();
      st.bytes_result.clear();
      st.bytes_result.reserve(total);
      for (auto& s : st.bytev_slots) {
        st.bytes_result.insert(st.bytes_result.end(), s.begin(), s.end());
        std::vector<std::byte>().swap(s);  // drop capacity, not just size
      }
    });
    if (rank_ != root) return {};
    return st_->bytes_result;
  }

  void send_token(std::uint64_t value, int dest, int tag) override {
    AMRIO_EXPECTS(dest >= 0 && dest < st_->n && dest != rank_);
    check_tag(tag);
    const std::uint64_t key = EventState::mail_key(rank_, dest, tag);
    st_->mail[key].push_back(value);
    st_->wake_receiver(key);
  }

  std::uint64_t recv_token(int src, int tag) override {
    AMRIO_EXPECTS(src >= 0 && src < st_->n && src != rank_);
    check_tag(tag);
    const std::uint64_t key = EventState::mail_key(src, rank_, tag);
    while (!st_->token_available(key)) {
      check_abort();
      block_on(key, EventState::St::kWaitToken);
    }
    auto& q = st_->mail[key];
    const std::uint64_t v = q.front();
    q.pop_front();
    return v;
  }

  void send_bytes(std::span<const std::byte> data, int dest, int tag) override {
    AMRIO_EXPECTS(dest >= 0 && dest < st_->n && dest != rank_);
    check_tag(tag);
    const std::uint64_t key = EventState::mail_key(rank_, dest, tag);
    st_->byte_mail[key].emplace_back(data.begin(), data.end());
    st_->wake_receiver(key);
  }

  std::vector<std::byte> recv_bytes(int src, int tag) override {
    AMRIO_EXPECTS(src >= 0 && src < st_->n && src != rank_);
    check_tag(tag);
    const std::uint64_t key = EventState::mail_key(src, rank_, tag);
    while (!st_->bytes_available(key)) {
      check_abort();
      block_on(key, EventState::St::kWaitBytes);
    }
    auto& q = st_->byte_mail[key];
    std::vector<std::byte> v = std::move(q.front());
    q.pop_front();
    return v;
  }

 private:
  /// Arrive at a collective; the last rank computes the result and moves the
  /// waiters to the ready queue (in arrival order), then proceeds without
  /// yielding. Earlier ranks suspend until released.
  template <typename ReleaseFn>
  void arrive(ReleaseFn&& release) {
    check_abort();
    EventState& st = *st_;
    if (st.n == 1) {
      release(st);
      return;
    }
    if (++st.arrived == st.n) {
      st.arrived = 0;
      release(st);
      for (const int r : st.coll_waiters) st.wake(r);
      st.coll_waiters.clear();
      return;
    }
    st.coll_waiters.push_back(rank_);
    st.vr[static_cast<std::size_t>(rank_)].state =
        EventState::St::kWaitCollective;
    st.yield_current();
    check_abort();
  }

  void block_on(std::uint64_t key, EventState::St wait_state) {
    st_->recv_waiters[key] = rank_;
    auto& v = st_->vr[static_cast<std::size_t>(rank_)];
    v.state = wait_state;
    v.wait_key = key;
    st_->yield_current();
  }

  void check_abort() const {
    if (st_->aborted) throw simmpi::CommAborted();
  }

  static void check_tag(int tag) {
    AMRIO_EXPECTS_MSG(tag >= 0 && tag <= 0xffff,
                      "EventEngine: p2p tags must be in [0, 65535]");
  }

  EventState* st_;
  int rank_;
};

/// The rank body shared by both stack modes: run the driver, convert an
/// escape into the communicator abort, mark the rank done.
void run_rank_body(EventState* st) {
  const int r = st->cur;
  {
    EventCtx ctx(st, r);
    try {
      (*st->fn)(ctx);
    } catch (...) {
      if (!st->first_error) st->first_error = std::current_exception();
      st->aborted = true;
    }
  }
  st->vr[static_cast<std::size_t>(r)].state = EventState::St::kDone;
}

#ifndef AMRIO_EVENT_COMPAT_STACKS

/// Entered by `ret` from a seeded frame (see seed_fresh_sp); the ABI state at
/// this point is exactly a normal function entry. Runs the rank body, then
/// switches out for good — this frame is never resumed.
void fresh_rank_entry() {
  EventState* st = g_current;
  run_rank_body(st);
  void* scratch = nullptr;
  amrio_event_fctx_switch(&scratch, st->sched_sp);
  __builtin_unreachable();
}

void* EventState::seed_fresh_sp() {
  // Frame layout consumed by the switch's restore path, low to high:
  //   [0, 8)    mxcsr (4) + x87 control word (2) + pad
  //   [8, 56)   r15 r14 r13 r12 rbx rbp — zeroed
  //   [56, 64)  return address -> fresh_rank_entry
  //   [64, 72)  null "caller" return address (unwinder terminator)
  // stack_top is 64-aligned, so sp = top - 72 ≡ 8 (mod 16) — the alignment a
  // function entered by `call`/`ret` expects.
  std::byte* sp = stack_top - 72;
  std::memset(sp, 0, 72);
  std::memcpy(sp, &fpu_word, sizeof fpu_word);
  void (*entry)() = &fresh_rank_entry;
  std::memcpy(sp + 56, &entry, sizeof entry);
  return sp;
}

void EventState::yield_current() {
  amrio_event_fctx_switch(&vr[static_cast<std::size_t>(cur)].sp, sched_sp);
}

void EventState::resume(int r) {
  cur = r;
  VRank& v = vr[static_cast<std::size_t>(r)];
  if (v.state == St::kUnstarted) {
    v.state = St::kRunning;
    amrio_event_fctx_switch(&sched_sp, seed_fresh_sp());
  } else {
    v.state = St::kRunning;
    // Restore the suspended slice to its original addresses, then jump into
    // it. The slice buffer is recycled immediately — it is read before any
    // other rank can allocate from the arena.
    std::memcpy(v.sp, v.slice, v.slice_len);
    arena.release(v.slice, v.slice_class);
    v.slice = nullptr;
    amrio_event_fctx_switch(&sched_sp, v.sp);
  }
  // Back on the scheduler stack: the rank either finished or suspended.
  if (v.state == St::kDone) {
    ++ndone;
    return;
  }
  check_canary();
  const auto len =
      static_cast<std::size_t>(stack_top - static_cast<std::byte*>(v.sp));
  v.slice = arena.alloc(len, &v.slice_class);
  v.slice_len = static_cast<std::uint32_t>(len);
  std::memcpy(v.slice, v.sp, len);
}

#else  // AMRIO_EVENT_COMPAT_STACKS

/// makecontext only passes ints — smuggle the state pointer in two halves.
void compat_trampoline(unsigned int hi, unsigned int lo) {
  auto* st = reinterpret_cast<EventState*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  // Complete the switch onto this fiber and learn the scheduler's stack
  // bounds so yields and the final exit can announce the switch back.
  AMRIO_FIBER_FINISH_SWITCH(nullptr, &st->sched_stack_bottom,
                            &st->sched_stack_size);
  run_rank_body(st);
  // nullptr save: this fiber is done — release its ASan fake stack.
  AMRIO_FIBER_START_SWITCH(nullptr, st->sched_stack_bottom,
                           st->sched_stack_size);
  // returning resumes main_ctx via uc_link
}

void EventState::yield_current() {
  VRank& v = vr[static_cast<std::size_t>(cur)];
  AMRIO_FIBER_START_SWITCH(&v.asan_fake, sched_stack_bottom, sched_stack_size);
  swapcontext(&v.ctx, &main_ctx);
  AMRIO_FIBER_FINISH_SWITCH(v.asan_fake, nullptr, nullptr);
}

void EventState::resume(int r) {
  cur = r;
  VRank& v = vr[static_cast<std::size_t>(r)];
  if (v.state == St::kUnstarted) {
    v.state = St::kRunning;
    if (!stack_pool.empty()) {
      v.stack = std::move(stack_pool.back());
      stack_pool.pop_back();
    } else {
      v.stack.reset(new char[stack_bytes]);  // uninitialized by design
    }
    if (getcontext(&v.ctx) != 0)
      throw std::runtime_error("EventEngine: getcontext failed");
    v.ctx.uc_stack.ss_sp = v.stack.get();
    v.ctx.uc_stack.ss_size = stack_bytes;
    v.ctx.uc_link = &main_ctx;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&v.ctx, reinterpret_cast<void (*)()>(compat_trampoline), 2,
                static_cast<unsigned int>(ptr >> 32),
                static_cast<unsigned int>(ptr & 0xffffffffu));
  } else {
    v.state = St::kRunning;
  }
  void* sched_fake = nullptr;
  AMRIO_FIBER_START_SWITCH(&sched_fake, v.stack.get(), stack_bytes);
  if (swapcontext(&main_ctx, &v.ctx) != 0)
    throw std::runtime_error("EventEngine: swapcontext failed");
  AMRIO_FIBER_FINISH_SWITCH(sched_fake, nullptr, nullptr);
  if (v.state == St::kDone) {
    ++ndone;
    stack_pool.push_back(std::move(v.stack));
  }
}

#endif  // AMRIO_EVENT_COMPAT_STACKS

}  // namespace

EventEngine::EventEngine(int nranks, std::size_t exec_stack_bytes)
    : nranks_(nranks), stack_bytes_(exec_stack_bytes) {
  AMRIO_EXPECTS_MSG(nranks >= 1, "EventEngine needs at least one rank");
  AMRIO_EXPECTS_MSG(nranks < (1 << 24),
                    "EventEngine supports up to 2^24 - 1 ranks (mailbox keys "
                    "pack src/dst into 24 bits each)");
  AMRIO_EXPECTS_MSG(exec_stack_bytes >= 64 * 1024,
                    "EventEngine execution stack must be at least 64 KiB");
}

void EventEngine::run(const RankFn& fn) {
  auto st = std::make_unique<EventState>(nranks_, stack_bytes_);
  st->fn = &fn;
  EventState* const prev = g_current;
  g_current = st.get();
  const auto t0 = std::chrono::steady_clock::now();
  auto publish = [&] {
    if (profiler_ == nullptr) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    profiler_->count("engine.event.runs", 1);
    profiler_->count("engine.event.context_switches", st->prof_resumes);
    profiler_->gauge_max("engine.event.ready_queue_peak",
                         static_cast<double>(st->prof_ready_peak));
    profiler_->gauge_max("engine.event.slice_arena_bytes",
                         static_cast<double>(st->arena.allocated_bytes()));
    if (wall > 0)
      profiler_->gauge_max("engine.event.events_per_sec",
                           static_cast<double>(st->prof_resumes) / wall);
    profiler_->phase_add("engine.event.run", wall);
  };
  try {
    st->run_loop();
  } catch (...) {
    publish();
    g_current = prev;
    throw;
  }
  publish();
  g_current = prev;
  if (st->first_error) std::rethrow_exception(st->first_error);
}

}  // namespace amrio::exec

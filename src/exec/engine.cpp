#include "exec/engine.hpp"

#include <ucontext.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"
#include "util/assert.hpp"

namespace amrio::exec {

// ---------------------------------------------------------------- SpmdEngine

int SpmdEngine::thread_cap() {
  constexpr int kDefaultCap = 1024;
  if (const char* env = std::getenv("AMRIO_SPMD_THREAD_CAP")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return kDefaultCap;
}

SpmdEngine::SpmdEngine(int nranks) : nranks_(nranks) {
  AMRIO_EXPECTS_MSG(nranks >= 1, "SpmdEngine needs at least one rank");
  // Fail fast with a usable message instead of letting pthread_create die on
  // resource exhaustion partway through spawning tens of thousands of threads.
  AMRIO_EXPECTS_MSG(
      nranks <= thread_cap(),
      "SpmdEngine: " << nranks << " ranks exceeds the thread cap of "
                     << thread_cap()
                     << " OS threads — use --engine=event for large rank "
                        "counts (or raise AMRIO_SPMD_THREAD_CAP)");
}

void SpmdEngine::run(const RankFn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  simmpi::run_spmd(nranks_, [&fn](simmpi::Comm& comm) {
    CommCtx ctx(comm);
    fn(ctx);
  });
  if (profiler_ != nullptr) {
    profiler_->count("engine.spmd.runs", 1);
    profiler_->phase_add(
        "engine.spmd.run",
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
}

// -------------------------------------------------------------- SerialEngine
//
// Each rank is a ucontext fiber. The scheduler round-robins over runnable
// fibers; a fiber blocks (swaps back to the scheduler) when it arrives at a
// collective before its peers or when it receives a token that has not been
// sent yet. The *last* rank arriving at a collective snapshots the result for
// everyone before releasing, so a rank resumed later never observes staging
// slots overwritten by the next collective (a full release requires all
// nranks arrivals, which a still-suspended rank cannot contribute to).

namespace {

struct SerialState {
  explicit SerialState(int n)
      : n(n), u64_slots(static_cast<std::size_t>(n)),
        u64_result(static_cast<std::size_t>(n)),
        byte_slots(static_cast<std::size_t>(n)) {}

  enum class FiberState { kReady, kWaitCollective, kWaitToken, kWaitBytes, kDone };

  struct Fiber {
    ucontext_t ctx{};
    // Uninitialized on purpose: value-initializing would memset every stack
    // on every Engine::run, costing nranks x stack_bytes per serial replay.
    std::unique_ptr<char[]> stack;
    std::size_t stack_size = 0;
    FiberState state = FiberState::kReady;
    std::tuple<int, int, int> wait_key{};  // (src, dst, tag) for kWaitToken/Bytes
  };

  int n;
  const RankFn* fn = nullptr;
  ucontext_t main_ctx{};
  std::vector<Fiber> fibers;
  int current = -1;

  // collective staging (inputs, written at arrive) and results (snapshotted
  // by the releasing rank).
  int arrived = 0;
  std::vector<std::uint64_t> u64_slots;
  std::vector<std::uint64_t> u64_result;
  std::vector<std::span<const std::byte>> byte_slots;
  std::vector<std::byte> bytes_result;

  // token/byte mailboxes keyed by (src, dst, tag)
  std::map<std::tuple<int, int, int>, std::deque<std::uint64_t>> mail;
  std::map<std::tuple<int, int, int>, std::deque<std::vector<std::byte>>>
      byte_mail;

  std::exception_ptr first_error;
  bool aborted = false;

  bool token_available(const std::tuple<int, int, int>& key) const {
    const auto it = mail.find(key);
    return it != mail.end() && !it->second.empty();
  }

  bool bytes_available(const std::tuple<int, int, int>& key) const {
    const auto it = byte_mail.find(key);
    return it != byte_mail.end() && !it->second.empty();
  }
};

/// Rank context bound to one fiber of a SerialState.
class FiberCtx final : public RankCtx {
 public:
  FiberCtx(SerialState* st, int rank) : st_(st), rank_(rank) {}

  int rank() const override { return rank_; }
  int nranks() const override { return st_->n; }

  void barrier() override { arrive([](SerialState&) {}); }

  std::uint64_t exscan_sum(std::uint64_t v) override {
    st_->u64_slots[static_cast<std::size_t>(rank_)] = v;
    arrive([](SerialState& st) {
      std::uint64_t acc = 0;
      for (int r = 0; r < st.n; ++r) {
        const std::uint64_t x = st.u64_slots[static_cast<std::size_t>(r)];
        st.u64_result[static_cast<std::size_t>(r)] = acc;
        acc += x;
      }
    });
    return st_->u64_result[static_cast<std::size_t>(rank_)];
  }

  std::vector<std::uint64_t> gather(std::uint64_t v, int root) override {
    AMRIO_EXPECTS(root >= 0 && root < st_->n);
    st_->u64_slots[static_cast<std::size_t>(rank_)] = v;
    arrive([](SerialState& st) { st.u64_result = st.u64_slots; });
    if (rank_ != root) return {};
    return st_->u64_result;
  }

  std::vector<std::byte> gatherv(std::span<const std::byte> bytes,
                                 int root) override {
    AMRIO_EXPECTS(root >= 0 && root < st_->n);
    st_->byte_slots[static_cast<std::size_t>(rank_)] = bytes;
    arrive([](SerialState& st) {
      st.bytes_result.clear();
      for (int r = 0; r < st.n; ++r) {
        const auto s = st.byte_slots[static_cast<std::size_t>(r)];
        st.bytes_result.insert(st.bytes_result.end(), s.begin(), s.end());
      }
    });
    if (rank_ != root) return {};
    return st_->bytes_result;
  }

  void send_token(std::uint64_t value, int dest, int tag) override {
    AMRIO_EXPECTS(dest >= 0 && dest < st_->n && dest != rank_);
    st_->mail[{rank_, dest, tag}].push_back(value);
  }

  std::uint64_t recv_token(int src, int tag) override {
    AMRIO_EXPECTS(src >= 0 && src < st_->n && src != rank_);
    const std::tuple<int, int, int> key{src, rank_, tag};
    while (!st_->token_available(key)) {
      check_abort();
      auto& f = st_->fibers[static_cast<std::size_t>(rank_)];
      f.state = SerialState::FiberState::kWaitToken;
      f.wait_key = key;
      yield();
    }
    auto& q = st_->mail[key];
    const std::uint64_t v = q.front();
    q.pop_front();
    return v;
  }

  void send_bytes(std::span<const std::byte> data, int dest, int tag) override {
    AMRIO_EXPECTS(dest >= 0 && dest < st_->n && dest != rank_);
    st_->byte_mail[{rank_, dest, tag}].emplace_back(data.begin(), data.end());
  }

  std::vector<std::byte> recv_bytes(int src, int tag) override {
    AMRIO_EXPECTS(src >= 0 && src < st_->n && src != rank_);
    const std::tuple<int, int, int> key{src, rank_, tag};
    while (!st_->bytes_available(key)) {
      check_abort();
      auto& f = st_->fibers[static_cast<std::size_t>(rank_)];
      f.state = SerialState::FiberState::kWaitBytes;
      f.wait_key = key;
      yield();
    }
    auto& q = st_->byte_mail[key];
    std::vector<std::byte> v = std::move(q.front());
    q.pop_front();
    return v;
  }

 private:
  /// Arrive at a collective; the last rank runs `release` (computes results
  /// from the staging slots) and wakes everyone, then proceeds without
  /// yielding. Earlier ranks suspend until released.
  template <typename ReleaseFn>
  void arrive(ReleaseFn&& release) {
    check_abort();
    if (st_->n == 1) {
      release(*st_);
      return;
    }
    if (++st_->arrived == st_->n) {
      st_->arrived = 0;
      release(*st_);
      for (auto& f : st_->fibers) {
        if (f.state == SerialState::FiberState::kWaitCollective)
          f.state = SerialState::FiberState::kReady;
      }
      return;
    }
    st_->fibers[static_cast<std::size_t>(rank_)].state =
        SerialState::FiberState::kWaitCollective;
    yield();
    check_abort();
  }

  void yield() {
    swapcontext(&st_->fibers[static_cast<std::size_t>(rank_)].ctx,
                &st_->main_ctx);
  }

  void check_abort() const {
    if (st_->aborted) throw simmpi::CommAborted();
  }

  SerialState* st_;
  int rank_;
};

/// makecontext only passes ints — smuggle the state pointer in two halves.
void fiber_trampoline(unsigned int hi, unsigned int lo) {
  auto* st = reinterpret_cast<SerialState*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  const int rank = st->current;
  FiberCtx ctx(st, rank);
  try {
    (*st->fn)(ctx);
  } catch (...) {
    if (!st->first_error) st->first_error = std::current_exception();
    st->aborted = true;
  }
  st->fibers[static_cast<std::size_t>(rank)].state =
      SerialState::FiberState::kDone;
  // returning resumes main_ctx via uc_link
}

/// Bind every (already stack-backed) fiber to the trampoline. Out of line so
/// getcontext's setjmp-like control flow never shares a frame with objects
/// the compiler could cache in clobbered registers (-Wclobbered).
[[gnu::noinline]] void prepare_fibers(SerialState& st) {
  const auto ptr = reinterpret_cast<std::uintptr_t>(&st);
  for (auto& f : st.fibers) {
    if (getcontext(&f.ctx) != 0)
      throw std::runtime_error("SerialEngine: getcontext failed");
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = f.stack_size;
    f.ctx.uc_link = &st.main_ctx;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(fiber_trampoline), 2,
                static_cast<unsigned int>(ptr >> 32),
                static_cast<unsigned int>(ptr & 0xffffffffu));
  }
}

/// Round-robin fiber scheduler. Kept free of nontrivial locals and out of
/// line: swapcontext has setjmp-like control flow and must not share a frame
/// with objects the compiler could cache in clobbered registers.
[[gnu::noinline]] void run_fibers(SerialState& st, int nranks) {
  int ndone = 0;
  while (ndone < nranks) {
    bool progressed = false;
    for (int r = 0; r < nranks; ++r) {
      auto& f = st.fibers[static_cast<std::size_t>(r)];
      if (f.state == SerialState::FiberState::kDone) continue;
      if (f.state == SerialState::FiberState::kWaitToken) {
        if (!st.token_available(f.wait_key) && !st.aborted) continue;
        f.state = SerialState::FiberState::kReady;  // recv_token rechecks
      }
      if (f.state == SerialState::FiberState::kWaitBytes) {
        if (!st.bytes_available(f.wait_key) && !st.aborted) continue;
        f.state = SerialState::FiberState::kReady;  // recv_bytes rechecks
      }
      if (st.aborted && f.state == SerialState::FiberState::kWaitCollective)
        f.state = SerialState::FiberState::kReady;  // resume to throw
      if (f.state != SerialState::FiberState::kReady) continue;
      st.current = r;
      if (swapcontext(&st.main_ctx, &f.ctx) != 0)
        throw std::runtime_error("SerialEngine: swapcontext failed");
      progressed = true;
      if (f.state == SerialState::FiberState::kDone) ++ndone;
    }
    if (!progressed && ndone < nranks) {
      // Deadlock: don't throw over suspended fibers (their locals would
      // never be destructed). Flag the abort and let the next pass resume
      // every blocked fiber; each throws CommAborted internally, unwinds,
      // and finishes, then run() rethrows the error recorded here.
      if (st.aborted)
        throw std::runtime_error(
            "SerialEngine: internal error — aborted fibers did not unwind");
      if (!st.first_error)
        st.first_error = std::make_exception_ptr(std::runtime_error(
            "SerialEngine: deadlock — all live ranks are blocked (mismatched "
            "collectives or a recv_token with no matching send_token)"));
      st.aborted = true;
    }
  }
}

/// Trivial context for the single-rank fast path (no fibers needed).
class SingleCtx final : public RankCtx {
 public:
  int rank() const override { return 0; }
  int nranks() const override { return 1; }
  void barrier() override {}
  std::uint64_t exscan_sum(std::uint64_t) override { return 0; }
  std::vector<std::uint64_t> gather(std::uint64_t v, int root) override {
    AMRIO_EXPECTS(root == 0);
    return {v};
  }
  std::vector<std::byte> gatherv(std::span<const std::byte> bytes,
                                 int root) override {
    AMRIO_EXPECTS(root == 0);
    return {bytes.begin(), bytes.end()};
  }
  void send_token(std::uint64_t, int, int) override {
    throw std::runtime_error("SerialEngine: send_token with one rank");
  }
  std::uint64_t recv_token(int, int) override {
    throw std::runtime_error("SerialEngine: recv_token with one rank");
  }
  void send_bytes(std::span<const std::byte>, int, int) override {
    throw std::runtime_error("SerialEngine: send_bytes with one rank");
  }
  std::vector<std::byte> recv_bytes(int, int) override {
    throw std::runtime_error("SerialEngine: recv_bytes with one rank");
  }
};

}  // namespace

SerialEngine::SerialEngine(int nranks, std::size_t stack_bytes)
    : nranks_(nranks), stack_bytes_(stack_bytes) {
  AMRIO_EXPECTS_MSG(nranks >= 1, "SerialEngine needs at least one rank");
  AMRIO_EXPECTS_MSG(stack_bytes >= 16 * 1024,
                    "SerialEngine fiber stacks must be at least 16 KiB");
}

void SerialEngine::run(const RankFn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  auto publish = [&] {
    if (profiler_ == nullptr) return;
    profiler_->count("engine.serial.runs", 1);
    profiler_->phase_add(
        "engine.serial.run",
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  };
  if (nranks_ == 1) {
    SingleCtx ctx;
    fn(ctx);
    publish();
    return;
  }

  SerialState st(nranks_);
  st.fn = &fn;
  st.fibers.resize(static_cast<std::size_t>(nranks_));
  for (auto& f : st.fibers) {
    f.stack.reset(new char[stack_bytes_]);  // uninitialized by design
    f.stack_size = stack_bytes_;
  }

  prepare_fibers(st);
  run_fibers(st, nranks_);

  publish();
  if (st.first_error) std::rethrow_exception(st.first_error);
}

std::vector<std::vector<std::byte>> gatherv_group(
    RankCtx& ctx, std::span<const std::byte> mine, std::span<const int> members,
    int root, int tag, obs::Probe probe) {
  AMRIO_EXPECTS_MSG(!members.empty(), "gatherv_group: empty member list");
  bool in_group = false;
  bool root_in_group = false;
  for (std::size_t i = 0; i < members.size(); ++i) {
    AMRIO_EXPECTS_MSG(members[i] >= 0 && members[i] < ctx.nranks(),
                      "gatherv_group: member rank out of range");
    if (i > 0)
      AMRIO_EXPECTS_MSG(members[i] > members[i - 1],
                        "gatherv_group: members must be strictly ascending");
    if (members[i] == ctx.rank()) in_group = true;
    if (members[i] == root) root_in_group = true;
  }
  AMRIO_EXPECTS_MSG(in_group, "gatherv_group: calling rank not a member");
  AMRIO_EXPECTS_MSG(root_in_group, "gatherv_group: root not a member");

  if (ctx.rank() != root) {
    ctx.send_bytes(mine, root, tag);
    return {};
  }
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(members.size());
  std::uint64_t shipped = 0;
  std::int64_t nmessages = 0;
  for (int member : members) {
    if (member == root) {
      payloads.emplace_back(mine.begin(), mine.end());
    } else {
      payloads.push_back(ctx.recv_bytes(member, tag));
      shipped += payloads.back().size();
      ++nmessages;
    }
  }
  if (probe.metrics != nullptr) {
    probe.metrics->add("exec.gatherv.calls", 1);
    probe.metrics->add("exec.gatherv.messages", nmessages);
    probe.metrics->add("exec.gatherv.bytes",
                       static_cast<std::int64_t>(shipped));
  }
  return payloads;
}

std::vector<std::byte> scatterv_group(
    RankCtx& ctx, const std::vector<std::vector<std::byte>>& payloads,
    std::span<const int> members, int root, int tag, obs::Probe probe) {
  AMRIO_EXPECTS_MSG(!members.empty(), "scatterv_group: empty member list");
  bool in_group = false;
  bool root_in_group = false;
  for (std::size_t i = 0; i < members.size(); ++i) {
    AMRIO_EXPECTS_MSG(members[i] >= 0 && members[i] < ctx.nranks(),
                      "scatterv_group: member rank out of range");
    if (i > 0)
      AMRIO_EXPECTS_MSG(members[i] > members[i - 1],
                        "scatterv_group: members must be strictly ascending");
    if (members[i] == ctx.rank()) in_group = true;
    if (members[i] == root) root_in_group = true;
  }
  AMRIO_EXPECTS_MSG(in_group, "scatterv_group: calling rank not a member");
  AMRIO_EXPECTS_MSG(root_in_group, "scatterv_group: root not a member");

  if (ctx.rank() != root) return ctx.recv_bytes(root, tag);
  AMRIO_EXPECTS_MSG(payloads.size() == members.size(),
                    "scatterv_group: root needs one payload per member");
  std::vector<std::byte> mine;
  std::uint64_t shipped = 0;
  std::int64_t nmessages = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == root) {
      mine = payloads[i];
    } else {
      ctx.send_bytes(payloads[i], members[i], tag);
      shipped += payloads[i].size();
      ++nmessages;
    }
  }
  if (probe.metrics != nullptr) {
    probe.metrics->add("exec.scatterv.calls", 1);
    probe.metrics->add("exec.scatterv.messages", nmessages);
    probe.metrics->add("exec.scatterv.bytes",
                       static_cast<std::int64_t>(shipped));
  }
  return mine;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, int nranks) {
  switch (kind) {
    case EngineKind::kSerial: return std::make_unique<SerialEngine>(nranks);
    case EngineKind::kSpmd: return std::make_unique<SpmdEngine>(nranks);
    case EngineKind::kEvent: return std::make_unique<EventEngine>(nranks);
  }
  throw std::invalid_argument("make_engine: unknown engine kind");
}

EngineKind engine_kind_from_name(const std::string& name) {
  if (name == "serial") return EngineKind::kSerial;
  if (name == "spmd") return EngineKind::kSpmd;
  if (name == "event") return EngineKind::kEvent;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (valid: serial, spmd, event)");
}

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSerial: return "serial";
    case EngineKind::kSpmd: return "spmd";
    case EngineKind::kEvent: return "event";
  }
  return "unknown";
}

}  // namespace amrio::exec

#include "pfs/backend.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/path.hpp"

namespace amrio::pfs {

std::uint64_t StorageBackend::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& path : list("")) total += size(path);
  return total;
}

std::uint64_t StorageBackend::file_count() const { return list("").size(); }

std::vector<std::byte> StorageBackend::read_range(const std::string& path,
                                                  std::uint64_t offset,
                                                  std::uint64_t length) const {
  const std::vector<std::byte> all = read(path);
  if (offset + length > all.size() || offset + length < offset)
    throw std::runtime_error("read_range: range past end of " + path);
  return std::vector<std::byte>(
      all.begin() + static_cast<std::ptrdiff_t>(offset),
      all.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

// ---------------------------------------------------------------- Memory

MemoryBackend::PathShard& MemoryBackend::path_shard(
    const std::string& path) const {
  return path_shards_[std::hash<std::string>{}(path) % kPathShards];
}

FileHandle MemoryBackend::create(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  FileRecord* rec = nullptr;
  {
    PathShard& shard = path_shard(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    rec = &shard.files[path];
    // truncate semantics
    rec->bytes.store(0, std::memory_order_relaxed);
    rec->nwrites.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> content_lock(rec->content_mu);
    rec->contents.clear();
  }
  return handles_.put(rec);
}

FileHandle MemoryBackend::open_append(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  FileRecord* rec = nullptr;
  {
    PathShard& shard = path_shard(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    rec = &shard.files[path];  // keep existing contents
  }
  return handles_.put(rec);
}

void MemoryBackend::write(FileHandle handle, std::span<const std::byte> data) {
  FileRecord* rec = handles_.lookup(handle);
  if (rec == nullptr)
    throw std::runtime_error("MemoryBackend::write: bad handle");
  rec->bytes.fetch_add(data.size(), std::memory_order_relaxed);
  rec->nwrites.fetch_add(1, std::memory_order_relaxed);
  if (store_contents_) {
    std::lock_guard<std::mutex> lock(rec->content_mu);
    rec->contents.insert(rec->contents.end(), data.begin(), data.end());
  }
}

void MemoryBackend::close(FileHandle handle) {
  if (handles_.take(handle) == nullptr)
    throw std::runtime_error("MemoryBackend::close: bad handle");
}

bool MemoryBackend::exists(const std::string& path) const {
  PathShard& shard = path_shard(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.files.find(path) != shard.files.end();
}

std::uint64_t MemoryBackend::size(const std::string& path) const {
  PathShard& shard = path_shard(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.files.find(path);
  if (it == shard.files.end())
    throw std::runtime_error("MemoryBackend::size: no such file " + path);
  return it->second.bytes.load(std::memory_order_relaxed);
}

std::vector<std::string> MemoryBackend::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& shard : path_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, rec] : shard.files) {
      if (util::starts_with(path, prefix)) out.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::byte> MemoryBackend::read(const std::string& path) const {
  PathShard& shard = path_shard(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.files.find(path);
  if (it == shard.files.end())
    throw std::runtime_error("MemoryBackend::read: no such file " + path);
  if (!store_contents_ && it->second.bytes.load(std::memory_order_relaxed) > 0)
    throw std::runtime_error(
        "MemoryBackend::read: contents not retained (counting mode): " + path);
  std::lock_guard<std::mutex> content_lock(it->second.content_mu);
  return it->second.contents;
}

std::vector<std::byte> MemoryBackend::read_range(const std::string& path,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) const {
  PathShard& shard = path_shard(path);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.files.find(path);
  if (it == shard.files.end())
    throw std::runtime_error("MemoryBackend::read_range: no such file " + path);
  if (!store_contents_ && it->second.bytes.load(std::memory_order_relaxed) > 0)
    throw std::runtime_error(
        "MemoryBackend::read_range: contents not retained (counting mode): " +
        path);
  std::lock_guard<std::mutex> content_lock(it->second.content_mu);
  const auto& contents = it->second.contents;
  if (offset + length > contents.size() || offset + length < offset)
    throw std::runtime_error("MemoryBackend::read_range: range past end of " +
                             path);
  return std::vector<std::byte>(
      contents.begin() + static_cast<std::ptrdiff_t>(offset),
      contents.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

std::uint64_t MemoryBackend::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : path_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, rec] : shard.files)
      total += rec.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t MemoryBackend::file_count() const {
  std::uint64_t count = 0;
  for (const auto& shard : path_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.files.size();
  }
  return count;
}

// ----------------------------------------------------------------- Posix

PosixBackend::PosixBackend(std::string root) : root_(std::move(root)) {
  util::make_dirs(root_);
}

PosixBackend::~PosixBackend() {
  handles_.for_each_open([](OpenFile* f) {
    std::fclose(f->file);  // cannot throw from a destructor; best effort
    delete f;
  });
}

std::string PosixBackend::full_path(const std::string& path) const {
  return util::path_join(root_, path);
}

namespace {
std::FILE* open_for(const std::string& full, const char* mode) {
  if (const auto slash = full.rfind('/'); slash != std::string::npos)
    util::make_dirs(full.substr(0, slash));
  return std::fopen(full.c_str(), mode);
}
}  // namespace

FileHandle PosixBackend::register_open(std::FILE* f) {
  auto open_file = std::make_unique<OpenFile>(OpenFile{f});
  try {
    const FileHandle h = handles_.put(open_file.get());
    open_file.release();  // now owned by the handle table until close()
    return h;
  } catch (...) {
    std::fclose(f);  // handle space exhausted: don't leak the FILE*
    throw;
  }
}

FileHandle PosixBackend::create(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  const std::string full = full_path(path);
  std::FILE* f = open_for(full, "wb");
  if (f == nullptr)
    throw std::runtime_error("PosixBackend: cannot create " + full);
  return register_open(f);
}

FileHandle PosixBackend::open_append(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  const std::string full = full_path(path);
  std::FILE* f = open_for(full, "ab");
  if (f == nullptr)
    throw std::runtime_error("PosixBackend: cannot append " + full);
  return register_open(f);
}

void PosixBackend::write(FileHandle handle, std::span<const std::byte> data) {
  OpenFile* f = handles_.lookup(handle);
  if (f == nullptr)
    throw std::runtime_error("PosixBackend::write: bad handle");
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), f->file) != data.size())
    throw std::runtime_error("PosixBackend::write: short write");
}

void PosixBackend::close(FileHandle handle) {
  OpenFile* f = handles_.take(handle);
  if (f == nullptr)
    throw std::runtime_error("PosixBackend::close: bad handle");
  const int rc = std::fclose(f->file);
  delete f;
  // fclose flushes stdio-buffered data; a failure here means earlier writes
  // silently never reached disk (e.g. ENOSPC) — surface it.
  if (rc != 0)
    throw std::runtime_error("PosixBackend::close: flush failed");
}

bool PosixBackend::exists(const std::string& path) const {
  return util::path_exists(full_path(path));
}

std::uint64_t PosixBackend::size(const std::string& path) const {
  return util::file_size(full_path(path));
}

std::vector<std::string> PosixBackend::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto& rel : util::list_files_recursive(root_)) {
    if (util::starts_with(rel, prefix)) out.push_back(rel);
  }
  return out;
}

std::vector<std::byte> PosixBackend::read(const std::string& path) const {
  const std::string full = full_path(path);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(full.c_str(), "rb"), &std::fclose);
  if (!f) throw std::runtime_error("PosixBackend::read: cannot open " + full);
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
    out.insert(out.end(), buf, buf + n);
  return out;
}

std::vector<std::byte> PosixBackend::read_range(const std::string& path,
                                                std::uint64_t offset,
                                                std::uint64_t length) const {
  const std::string full = full_path(path);
  if (offset + length > util::file_size(full) || offset + length < offset)
    throw std::runtime_error("PosixBackend::read_range: range past end of " +
                             full);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(full.c_str(), "rb"), &std::fclose);
  if (!f)
    throw std::runtime_error("PosixBackend::read_range: cannot open " + full);
  // fseeko, not fseek: a long offset truncates past 2 GiB where long is
  // 32 bits, silently seeking the wrong bytes of a large shared dump file
  if (fseeko(f.get(), static_cast<off_t>(offset), SEEK_SET) != 0)
    throw std::runtime_error("PosixBackend::read_range: cannot seek in " +
                             full);
  std::vector<std::byte> out(length);
  if (std::fread(out.data(), 1, length, f.get()) != length)
    throw std::runtime_error("PosixBackend::read_range: short read from " +
                             full);
  return out;
}

}  // namespace amrio::pfs

#include "pfs/backend.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/path.hpp"

namespace amrio::pfs {

std::uint64_t StorageBackend::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& path : list("")) total += size(path);
  return total;
}

std::uint64_t StorageBackend::file_count() const { return list("").size(); }

// ---------------------------------------------------------------- Memory

FileHandle MemoryBackend::create(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  std::lock_guard<std::mutex> lock(mu_);
  const FileHandle h = next_handle_++;
  open_files_[h] = path;
  files_[path] = FileRecord{};  // truncate semantics
  return h;
}

FileHandle MemoryBackend::open_append(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  std::lock_guard<std::mutex> lock(mu_);
  const FileHandle h = next_handle_++;
  open_files_[h] = path;
  files_.try_emplace(path);  // keep existing contents
  return h;
}

void MemoryBackend::write(FileHandle handle, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end())
    throw std::runtime_error("MemoryBackend::write: bad handle");
  FileRecord& rec = files_[it->second];
  rec.bytes += data.size();
  ++rec.nwrites;
  if (store_contents_)
    rec.contents.insert(rec.contents.end(), data.begin(), data.end());
}

void MemoryBackend::close(FileHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(handle) == 0)
    throw std::runtime_error("MemoryBackend::close: bad handle");
}

bool MemoryBackend::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(path) != files_.end();
}

std::uint64_t MemoryBackend::size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end())
    throw std::runtime_error("MemoryBackend::size: no such file " + path);
  return it->second.bytes;
}

std::vector<std::string> MemoryBackend::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, rec] : files_) {
    if (util::starts_with(path, prefix)) out.push_back(path);
  }
  return out;  // std::map iteration is already sorted
}

std::vector<std::byte> MemoryBackend::read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end())
    throw std::runtime_error("MemoryBackend::read: no such file " + path);
  if (!store_contents_ && it->second.bytes > 0)
    throw std::runtime_error(
        "MemoryBackend::read: contents not retained (counting mode): " + path);
  return it->second.contents;
}

// ----------------------------------------------------------------- Posix

PosixBackend::PosixBackend(std::string root) : root_(std::move(root)) {
  util::make_dirs(root_);
}

std::string PosixBackend::full_path(const std::string& path) const {
  return util::path_join(root_, path);
}

namespace {
std::FILE* open_for(const std::string& full, const char* mode) {
  if (const auto slash = full.rfind('/'); slash != std::string::npos)
    util::make_dirs(full.substr(0, slash));
  return std::fopen(full.c_str(), mode);
}
}  // namespace

FileHandle PosixBackend::create(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  const std::string full = full_path(path);
  std::FILE* f = open_for(full, "wb");
  if (f == nullptr)
    throw std::runtime_error("PosixBackend: cannot create " + full);
  std::lock_guard<std::mutex> lock(mu_);
  const FileHandle h = next_handle_++;
  open_.emplace(h, std::unique_ptr<std::FILE, int (*)(std::FILE*)>(f, &std::fclose));
  open_paths_[h] = path;
  return h;
}

FileHandle PosixBackend::open_append(const std::string& path) {
  AMRIO_EXPECTS(!path.empty());
  const std::string full = full_path(path);
  std::FILE* f = open_for(full, "ab");
  if (f == nullptr)
    throw std::runtime_error("PosixBackend: cannot append " + full);
  std::lock_guard<std::mutex> lock(mu_);
  const FileHandle h = next_handle_++;
  open_.emplace(h, std::unique_ptr<std::FILE, int (*)(std::FILE*)>(f, &std::fclose));
  open_paths_[h] = path;
  return h;
}

void PosixBackend::write(FileHandle handle, std::span<const std::byte> data) {
  std::FILE* f = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(handle);
    if (it == open_.end())
      throw std::runtime_error("PosixBackend::write: bad handle");
    f = it->second.get();
  }
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), f) != data.size())
    throw std::runtime_error("PosixBackend::write: short write");
}

void PosixBackend::close(FileHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_.erase(handle) == 0)
    throw std::runtime_error("PosixBackend::close: bad handle");
  open_paths_.erase(handle);
}

bool PosixBackend::exists(const std::string& path) const {
  return util::path_exists(full_path(path));
}

std::uint64_t PosixBackend::size(const std::string& path) const {
  return util::file_size(full_path(path));
}

std::vector<std::string> PosixBackend::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto& rel : util::list_files_recursive(root_)) {
    if (util::starts_with(rel, prefix)) out.push_back(rel);
  }
  return out;
}

std::vector<std::byte> PosixBackend::read(const std::string& path) const {
  const std::string full = full_path(path);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(full.c_str(), "rb"), &std::fclose);
  if (!f) throw std::runtime_error("PosixBackend::read: cannot open " + full);
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
    out.insert(out.end(), buf, buf + n);
  return out;
}

}  // namespace amrio::pfs

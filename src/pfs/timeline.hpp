#pragma once
/// \file timeline.hpp
/// Aggregation of SimFs results into the burstiness metrics the paper's
/// "dynamic" studies care about: aggregate bandwidth over time, I/O duty
/// cycle, and per-burst summaries.

#include <vector>

#include "pfs/simfs.hpp"

namespace amrio::pfs {

struct TimelineBin {
  double t0 = 0.0;
  double t1 = 0.0;
  double bytes = 0.0;  ///< bytes committed within [t0,t1)
  double bandwidth() const { return (t1 > t0) ? bytes / (t1 - t0) : 0.0; }
};

/// Spread each request's bytes uniformly over [open_end, end) and bin into
/// `nbins` equal windows covering the full run.
std::vector<TimelineBin> bandwidth_timeline(const std::vector<IoResult>& results,
                                            int nbins);

struct BurstStats {
  double makespan = 0.0;        ///< last end - first open_start
  double busy_time = 0.0;       ///< union of [open_start, end) intervals
  double duty_cycle = 0.0;      ///< busy_time / makespan
  double peak_bandwidth = 0.0;  ///< max over timeline bins
  double mean_bandwidth = 0.0;  ///< total bytes / makespan
  std::uint64_t total_bytes = 0;
};

BurstStats burst_stats(const std::vector<IoResult>& results, int nbins = 100);

}  // namespace amrio::pfs

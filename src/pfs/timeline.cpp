#include "pfs/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace amrio::pfs {

std::vector<TimelineBin> bandwidth_timeline(const std::vector<IoResult>& results,
                                            int nbins) {
  AMRIO_EXPECTS(nbins > 0);
  std::vector<TimelineBin> bins(static_cast<std::size_t>(nbins));
  if (results.empty()) return bins;

  double t_min = results.front().open_start;
  double t_max = results.front().end;
  for (const auto& r : results) {
    t_min = std::min(t_min, r.open_start);
    t_max = std::max(t_max, r.end);
  }
  if (t_max <= t_min) t_max = t_min + 1e-12;
  const double width = (t_max - t_min) / nbins;
  for (int b = 0; b < nbins; ++b) {
    bins[static_cast<std::size_t>(b)].t0 = t_min + b * width;
    bins[static_cast<std::size_t>(b)].t1 = t_min + (b + 1) * width;
  }

  for (const auto& r : results) {
    if (r.bytes == 0) continue;
    const double a = r.open_end;
    const double b = r.end;
    const double span = std::max(b - a, 1e-15);
    const double rate = static_cast<double>(r.bytes) / span;
    // accumulate the overlap of [a,b) with each bin
    int first = std::clamp(static_cast<int>((a - t_min) / width), 0, nbins - 1);
    int last = std::clamp(static_cast<int>((b - t_min) / width), 0, nbins - 1);
    for (int bin = first; bin <= last; ++bin) {
      auto& tb = bins[static_cast<std::size_t>(bin)];
      const double lo = std::max(a, tb.t0);
      const double hi = std::min(b, tb.t1);
      if (hi > lo) tb.bytes += rate * (hi - lo);
    }
  }
  return bins;
}

BurstStats burst_stats(const std::vector<IoResult>& results, int nbins) {
  BurstStats st;
  if (results.empty()) return st;

  double t_min = results.front().open_start;
  double t_max = results.front().end;
  for (const auto& r : results) {
    t_min = std::min(t_min, r.open_start);
    t_max = std::max(t_max, r.end);
    st.total_bytes += r.bytes;
  }
  st.makespan = t_max - t_min;

  // Busy time: union of intervals.
  std::vector<std::pair<double, double>> ivals;
  ivals.reserve(results.size());
  for (const auto& r : results) ivals.emplace_back(r.open_start, r.end);
  std::sort(ivals.begin(), ivals.end());
  double cur_lo = ivals.front().first;
  double cur_hi = ivals.front().second;
  for (std::size_t i = 1; i < ivals.size(); ++i) {
    if (ivals[i].first <= cur_hi) {
      cur_hi = std::max(cur_hi, ivals[i].second);
    } else {
      st.busy_time += cur_hi - cur_lo;
      cur_lo = ivals[i].first;
      cur_hi = ivals[i].second;
    }
  }
  st.busy_time += cur_hi - cur_lo;
  st.duty_cycle = st.makespan > 0 ? st.busy_time / st.makespan : 0.0;

  const auto bins = bandwidth_timeline(results, nbins);
  for (const auto& b : bins) st.peak_bandwidth = std::max(st.peak_bandwidth, b.bandwidth());
  st.mean_bandwidth =
      st.makespan > 0 ? static_cast<double>(st.total_bytes) / st.makespan : 0.0;
  return st;
}

}  // namespace amrio::pfs

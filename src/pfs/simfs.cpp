#include "pfs/simfs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <queue>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace amrio::pfs {

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

SimFs::SimFs(SimFsConfig cfg) : cfg_(cfg) {
  AMRIO_EXPECTS(cfg_.n_ost >= 1);
  AMRIO_EXPECTS(cfg_.stripe_count >= 1 && cfg_.stripe_count <= cfg_.n_ost);
  AMRIO_EXPECTS(cfg_.stripe_size >= 1);
  AMRIO_EXPECTS(cfg_.ost_bandwidth > 0 && cfg_.client_bandwidth > 0);
  AMRIO_EXPECTS(cfg_.mds_latency >= 0);
  AMRIO_EXPECTS(cfg_.variability_sigma >= 0);
  if (cfg_.bb.enabled) {
    AMRIO_EXPECTS_MSG(cfg_.bb.nodes >= 1, "SimFs: bb.nodes must be >= 1");
    AMRIO_EXPECTS_MSG(cfg_.bb.ranks_per_node >= 1,
                      "SimFs: bb.ranks_per_node must be >= 1");
    AMRIO_EXPECTS_MSG(cfg_.bb.write_bandwidth > 0 && cfg_.bb.drain_bandwidth > 0,
                      "SimFs: bb bandwidths must be > 0");
    AMRIO_EXPECTS_MSG(cfg_.bb.drain_concurrency >= 1,
                      "SimFs: bb.drain_concurrency must be >= 1");
  }
}

int SimFs::ost_of(const std::string& file) const {
  return static_cast<int>(fnv1a(file) % static_cast<std::uint64_t>(cfg_.n_ost));
}

int SimFs::node_of(int client) const {
  AMRIO_EXPECTS(client >= 0);
  return (client / std::max(cfg_.bb.ranks_per_node, 1)) %
         std::max(cfg_.bb.nodes, 1);
}

std::vector<IoResult> SimFs::run(const std::vector<IoRequest>& requests) {
  // Request state while streaming chunks onto the OST layer. Both direct
  // writes and burst-buffer drains become flights; they differ only in the
  // client-side rate cap and in what happens at completion.
  struct Flight {
    std::size_t index;          // into requests/results
    std::uint64_t remaining;    // data bytes not yet committed
    int next_stripe = 0;        // round-robin position in the stripe set
    int first_ost = 0;
    double ready = 0.0;         // client-side time the next chunk can issue
    double rate = 0.0;          // client/drain-stream bandwidth cap
    bool is_drain = false;
    int node = 0;               // BB node (drains only)
  };

  std::vector<IoResult> results(requests.size());

  // Phase 1: metadata. The MDS services creates FIFO by submit time; ties are
  // broken by (client, file) then request index, so the service order — and
  // with it every downstream time — is independent of request-list order for
  // distinct (client, file) pairs (documented guarantee; drain replays rely
  // on it).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const IoRequest& ra = requests[a];
                     const IoRequest& rb = requests[b];
                     if (ra.submit_time != rb.submit_time)
                       return ra.submit_time < rb.submit_time;
                     if (ra.client != rb.client) return ra.client < rb.client;
                     return ra.file < rb.file;
                   });

  const bool bb_on = cfg_.bb.enabled;

  // Phase 2 state: one event queue drives absorbs, drain-stream starts, and
  // OST chunk issues. Kind order at equal times: chunks first (so a drain
  // completion frees capacity before a stalled absorb re-tries), then drain
  // starts, then absorb tries; seq (push order) makes everything FIFO and
  // deterministic.
  enum EvKind { kChunk = 0, kDrainStart = 1, kAbsorbTry = 2 };
  struct Event {
    double time;
    int kind;
    std::uint64_t seq;
    std::size_t id;  // flight index (kChunk) or request index (others)
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      if (kind != other.kind) return kind > other.kind;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  std::uint64_t seq = 0;
  std::vector<Flight> flights;
  flights.reserve(requests.size());

  struct Node {
    double ingest_free = 0.0;       // absorb server is FIFO per node
    std::uint64_t occupancy = 0;    // staged bytes not yet drained
    // free times of the node's currently idle drain streams (min-heap);
    // size + running drains == drain_concurrency at all times
    std::priority_queue<double, std::vector<double>, std::greater<double>> slots;
    std::deque<std::size_t> pending_drains;  // absorbed, all streams busy
    std::vector<std::size_t> waiting;  // capacity-stalled absorbs, FIFO
  };
  std::vector<Node> nodes;
  if (bb_on) {
    nodes.resize(static_cast<std::size_t>(cfg_.bb.nodes));
    for (auto& nd : nodes)
      for (int s = 0; s < cfg_.bb.drain_concurrency; ++s) nd.slots.push(0.0);
  }

  double mds_free = 0.0;
  for (std::size_t idx : order) {
    const IoRequest& req = requests[idx];
    AMRIO_EXPECTS(req.client >= 0);
    const bool staged = bb_on && req.tier == kTierBurstBuffer;
    if (staged && cfg_.bb.capacity > 0)
      AMRIO_EXPECTS_MSG(req.bytes <= cfg_.bb.capacity,
                        "SimFs: staged request larger than bb.capacity can "
                        "never be absorbed");
    const double open_start = std::max(req.submit_time, mds_free);
    const double open_end = open_start + cfg_.mds_latency;
    mds_free = open_end;
    IoResult& res = results[idx];
    res.open_start = open_start;
    res.open_end = open_end;
    res.end = open_end;  // zero-byte files end at create
    res.pfs_end = open_end;
    res.bytes = req.bytes;
    res.tier = staged ? kTierBurstBuffer : kTierPfs;
    res.first_ost = static_cast<int>(
        fnv1a(req.file) % static_cast<std::uint64_t>(cfg_.n_ost));
    if (req.bytes == 0) continue;
    if (staged) {
      pq.push({open_end, kAbsorbTry, seq++, idx});
    } else {
      Flight fl;
      fl.index = idx;
      fl.remaining = req.bytes;
      fl.first_ost = res.first_ost;
      fl.ready = open_end;
      fl.rate = cfg_.client_bandwidth;
      flights.push_back(fl);
      pq.push({fl.ready, kChunk, seq++, flights.size() - 1});
    }
  }

  std::vector<double> ost_free(static_cast<std::size_t>(cfg_.n_ost), 0.0);
  util::Xoshiro256 rng(cfg_.seed);
  // Mean-corrected lognormal: E[exp(sigma Z - sigma^2/2)] = 1, so turning the
  // noise on does not change mean service time.
  const double mu = -0.5 * cfg_.variability_sigma * cfg_.variability_sigma;

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();

    if (ev.kind == kAbsorbTry) {
      const std::size_t idx = ev.id;
      const IoRequest& req = requests[idx];
      Node& nd = nodes[static_cast<std::size_t>(node_of(req.client))];
      if (nd.ingest_free > ev.time) {  // absorb server busy: come back later
        pq.push({nd.ingest_free, kAbsorbTry, seq++, idx});
        continue;
      }
      if (cfg_.bb.capacity > 0 &&
          nd.occupancy + req.bytes > cfg_.bb.capacity) {
        nd.waiting.push_back(idx);  // woken when a drain frees space
        continue;
      }
      // Node-local absorb: burst-buffer bandwidth alone (no NIC crossing).
      const double absorb_end =
          ev.time + static_cast<double>(req.bytes) / cfg_.bb.write_bandwidth;
      nd.occupancy += req.bytes;
      nd.ingest_free = absorb_end;
      results[idx].end = absorb_end;  // perceived completion
      pq.push({absorb_end, kDrainStart, seq++, idx});
      continue;
    }

    if (ev.kind == kDrainStart) {
      const std::size_t idx = ev.id;
      const int node = node_of(requests[idx].client);
      Node& nd = nodes[static_cast<std::size_t>(node)];
      if (nd.slots.empty()) {  // every drain stream busy: wait for a release
        nd.pending_drains.push_back(idx);
        continue;
      }
      nd.slots.pop();  // stream acquired; released at flight completion
      Flight fl;
      fl.index = idx;
      fl.remaining = requests[idx].bytes;
      fl.first_ost = results[idx].first_ost;
      fl.ready = ev.time;
      fl.rate = cfg_.bb.drain_bandwidth;
      fl.is_drain = true;
      fl.node = node;
      flights.push_back(fl);
      pq.push({fl.ready, kChunk, seq++, flights.size() - 1});
      continue;
    }

    // kChunk: issue the flight's next chunk onto its OST.
    Flight& fl = flights[ev.id];
    const std::uint64_t chunk =
        std::min<std::uint64_t>(fl.remaining, cfg_.stripe_size);
    const int ost = (fl.first_ost + fl.next_stripe) % cfg_.n_ost;
    fl.next_stripe = (fl.next_stripe + 1) % cfg_.stripe_count;

    double service =
        static_cast<double>(chunk) / std::min(fl.rate, cfg_.ost_bandwidth);
    if (cfg_.variability_sigma > 0)
      service *= rng.lognormal(mu, cfg_.variability_sigma);

    const double start =
        std::max(fl.ready, ost_free[static_cast<std::size_t>(ost)]);
    const double end = start + service;
    ost_free[static_cast<std::size_t>(ost)] = end;
    fl.ready = end;
    fl.remaining -= chunk;

    if (fl.remaining > 0) {
      pq.push({fl.ready, kChunk, seq++, ev.id});
      continue;
    }
    IoResult& res = results[fl.index];
    res.pfs_end = end;
    if (!fl.is_drain) {
      res.end = end;
      continue;
    }
    // Drain complete: free staging space and the stream, hand the stream to
    // the next absorbed-but-undrained request, wake stalled absorbs.
    Node& nd = nodes[static_cast<std::size_t>(fl.node)];
    nd.occupancy -= res.bytes;
    nd.slots.push(end);
    if (!nd.pending_drains.empty()) {
      const std::size_t next = nd.pending_drains.front();
      nd.pending_drains.pop_front();
      pq.push({end, kDrainStart, seq++, next});
    }
    for (std::size_t w : nd.waiting) pq.push({end, kAbsorbTry, seq++, w});
    nd.waiting.clear();
  }

  return results;
}

}  // namespace amrio::pfs

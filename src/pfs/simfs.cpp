#include "pfs/simfs.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace amrio::pfs {

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

SimFs::SimFs(SimFsConfig cfg) : cfg_(cfg) {
  AMRIO_EXPECTS(cfg_.n_ost >= 1);
  AMRIO_EXPECTS(cfg_.stripe_count >= 1 && cfg_.stripe_count <= cfg_.n_ost);
  AMRIO_EXPECTS(cfg_.stripe_size >= 1);
  AMRIO_EXPECTS(cfg_.ost_bandwidth > 0 && cfg_.client_bandwidth > 0);
  AMRIO_EXPECTS(cfg_.mds_latency >= 0);
  AMRIO_EXPECTS(cfg_.variability_sigma >= 0);
}

int SimFs::ost_of(const std::string& file) const {
  return static_cast<int>(fnv1a(file) % static_cast<std::uint64_t>(cfg_.n_ost));
}

std::vector<IoResult> SimFs::run(const std::vector<IoRequest>& requests) {
  // Request state while in flight.
  struct Flight {
    std::size_t index;          // into requests/results
    std::uint64_t remaining;    // data bytes not yet committed
    int next_stripe = 0;        // round-robin position in the stripe set
    int first_ost = 0;
    double ready = 0.0;         // client-side time the next chunk can issue
  };

  std::vector<IoResult> results(requests.size());

  // Phase 1: metadata. The MDS services creates FIFO by submit time (ties by
  // request order, which is deterministic).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].submit_time < requests[b].submit_time;
                   });
  double mds_free = 0.0;
  std::vector<Flight> flights;
  flights.reserve(requests.size());
  for (std::size_t idx : order) {
    const IoRequest& req = requests[idx];
    AMRIO_EXPECTS(req.client >= 0);
    const double open_start = std::max(req.submit_time, mds_free);
    const double open_end = open_start + cfg_.mds_latency;
    mds_free = open_end;
    IoResult& res = results[idx];
    res.open_start = open_start;
    res.open_end = open_end;
    res.end = open_end;  // zero-byte files end at create
    res.bytes = req.bytes;
    res.first_ost = static_cast<int>(
        fnv1a(requests[idx].file) % static_cast<std::uint64_t>(cfg_.n_ost));
    if (req.bytes > 0) {
      Flight fl;
      fl.index = idx;
      fl.remaining = req.bytes;
      fl.first_ost = res.first_ost;
      fl.ready = open_end;
      flights.push_back(fl);
    }
  }

  // Phase 2: data chunks, event-driven. Each flight issues one chunk at a
  // time; the earliest-ready flight goes next (ties broken by request index
  // for determinism).
  struct Event {
    double time;
    std::size_t flight;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return flight > other.flight;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  for (std::size_t f = 0; f < flights.size(); ++f)
    pq.push({flights[f].ready, f});

  std::vector<double> ost_free(static_cast<std::size_t>(cfg_.n_ost), 0.0);
  util::Xoshiro256 rng(cfg_.seed);
  const double eff_bw = std::min(cfg_.ost_bandwidth, cfg_.client_bandwidth);
  // Mean-corrected lognormal: E[exp(sigma Z - sigma^2/2)] = 1, so turning the
  // noise on does not change mean service time.
  const double mu = -0.5 * cfg_.variability_sigma * cfg_.variability_sigma;

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();
    Flight& fl = flights[ev.flight];
    const std::uint64_t chunk = std::min<std::uint64_t>(fl.remaining, cfg_.stripe_size);
    const int ost =
        (fl.first_ost + fl.next_stripe) % cfg_.n_ost;
    fl.next_stripe = (fl.next_stripe + 1) % cfg_.stripe_count;

    double service = static_cast<double>(chunk) / eff_bw;
    if (cfg_.variability_sigma > 0)
      service *= rng.lognormal(mu, cfg_.variability_sigma);

    const double start = std::max(fl.ready, ost_free[static_cast<std::size_t>(ost)]);
    const double end = start + service;
    ost_free[static_cast<std::size_t>(ost)] = end;
    fl.ready = end;
    fl.remaining -= chunk;

    if (fl.remaining == 0) {
      results[fl.index].end = end;
    } else {
      pq.push({fl.ready, ev.flight});
    }
  }

  return results;
}

}  // namespace amrio::pfs

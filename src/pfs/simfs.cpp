#include "pfs/simfs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <queue>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace amrio::pfs {

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

SimFs::SimFs(SimFsConfig cfg) : cfg_(cfg) {
  AMRIO_EXPECTS(cfg_.n_ost >= 1);
  AMRIO_EXPECTS(cfg_.stripe_count >= 1 && cfg_.stripe_count <= cfg_.n_ost);
  AMRIO_EXPECTS(cfg_.stripe_size >= 1);
  AMRIO_EXPECTS(cfg_.ost_bandwidth > 0 && cfg_.client_bandwidth > 0);
  AMRIO_EXPECTS(cfg_.mds_latency >= 0);
  AMRIO_EXPECTS(cfg_.variability_sigma >= 0);
  if (cfg_.bb.enabled) {
    AMRIO_EXPECTS_MSG(cfg_.bb.nodes >= 1, "SimFs: bb.nodes must be >= 1");
    AMRIO_EXPECTS_MSG(cfg_.bb.ranks_per_node >= 1,
                      "SimFs: bb.ranks_per_node must be >= 1");
    AMRIO_EXPECTS_MSG(cfg_.bb.write_bandwidth > 0 && cfg_.bb.drain_bandwidth > 0,
                      "SimFs: bb bandwidths must be > 0");
    AMRIO_EXPECTS_MSG(cfg_.bb.drain_concurrency >= 1,
                      "SimFs: bb.drain_concurrency must be >= 1");
    AMRIO_EXPECTS_MSG(cfg_.bb.read_bandwidth > 0,
                      "SimFs: bb.read_bandwidth must be > 0");
    AMRIO_EXPECTS_MSG(cfg_.bb.prefetch_concurrency >= 0,
                      "SimFs: bb.prefetch_concurrency must be >= 0");
  }
}

int SimFs::ost_of(const std::string& file) const {
  return static_cast<int>(fnv1a(file) % static_cast<std::uint64_t>(cfg_.n_ost));
}

int SimFs::node_of(int client) const {
  AMRIO_EXPECTS(client >= 0);
  return (client / std::max(cfg_.bb.ranks_per_node, 1)) %
         std::max(cfg_.bb.nodes, 1);
}

std::vector<IoResult> SimFs::run(const std::vector<IoRequest>& requests) {
  return run(requests, obs::Probe{});
}

std::vector<IoResult> SimFs::run(const std::vector<IoRequest>& requests,
                                 obs::Probe probe) {
  // Request state while streaming chunks over the OST layer. Direct writes,
  // direct reads, burst-buffer drains, and prefetches all become flights;
  // they differ only in the client-side rate cap and in what happens at
  // completion (reads simply transfer in the other direction — the OST FIFOs
  // are shared either way).
  struct Flight {
    std::size_t index;          // into requests/results
    std::uint64_t remaining;    // data bytes not yet committed
    int next_stripe = 0;        // round-robin position in the stripe set
    int first_ost = 0;
    double ready = 0.0;         // client-side time the next chunk can issue
    double rate = 0.0;          // client/drain-stream bandwidth cap
    bool is_drain = false;
    bool is_prefetch = false;
    int node = 0;               // BB node (drains/prefetches only)
  };

  std::vector<IoResult> results(requests.size());

  // Per-request observability bookkeeping, filled during the event loop and
  // turned into spans/metrics *after* it, in request-index order — emission
  // inherits the loop's determinism and never perturbs the timeline.
  struct Aux {
    double service_sum = 0.0;   // summed chunk service time (no queue waits)
    double flight_start = 0.0;  // direct issue / drain start / prefetch start
    double absorb_start = 0.0;  // staged writes: when the absorb ran
    double read_start = 0.0;    // BB reads: when the node-local read began
    bool capacity_stalled = false;  // ever parked on the capacity wait list
    bool prefetch_gated = false;    // BB read gated on a pending prefetch
  };
  std::vector<Aux> aux(requests.size());
  const bool want_series = cfg_.bb.enabled && probe.metrics != nullptr;
  std::vector<std::pair<double, std::int64_t>> occ_deltas;    // occupancy
  std::vector<std::pair<double, std::int64_t>> drain_deltas;  // busy streams

  // Resource-ledger bookkeeping: per-OST service seconds accumulated at
  // chunk grain, and (resource, time, ±delta) queue-depth events for the
  // stream pools / capacity wait lists. All of it is recorded from the
  // deterministic event loop, so the ledger is engine-invariant like the
  // spans.
  const bool want_ledger = probe.ledger != nullptr;
  std::vector<double> ost_busy(
      want_ledger ? static_cast<std::size_t>(cfg_.n_ost) : 0, 0.0);
  std::vector<std::tuple<std::string, double, int>> ledger_q;
  auto bb_res = [](int node, const char* what) {
    return "bb[" + std::to_string(node) + "]." + what;
  };
  auto lq = [&](std::string name, double t, int delta) {
    if (want_ledger) ledger_q.emplace_back(std::move(name), t, delta);
  };

  // Phase 1: metadata. The MDS services creates FIFO by submit time; ties are
  // broken by (client, file) then request index, so the service order — and
  // with it every downstream time — is independent of request-list order for
  // distinct (client, file) pairs (documented guarantee; drain replays rely
  // on it).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const IoRequest& ra = requests[a];
                     const IoRequest& rb = requests[b];
                     if (ra.submit_time != rb.submit_time)
                       return ra.submit_time < rb.submit_time;
                     if (ra.client != rb.client) return ra.client < rb.client;
                     return ra.file < rb.file;
                   });

  const bool bb_on = cfg_.bb.enabled;

  // Phase 2 state: one event queue drives absorbs, drain/prefetch stream
  // starts, node-local reads, and OST chunk issues. Kind order at equal
  // times: chunks first (so a drain completion frees capacity before a
  // stalled absorb re-tries, and a prefetch completion lands before the read
  // it wakes), then stream starts, then absorb tries, then BB reads; seq
  // (push order) makes everything FIFO and deterministic.
  enum EvKind {
    kChunk = 0,
    kDrainStart = 1,
    kPrefetchStart = 2,
    kAbsorbTry = 3,
    kBbRead = 4
  };
  struct Event {
    double time;
    int kind;
    std::uint64_t seq;
    std::size_t id;  // flight index (kChunk) or request index (others)
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      if (kind != other.kind) return kind > other.kind;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  std::uint64_t seq = 0;
  std::vector<Flight> flights;
  flights.reserve(requests.size());

  struct Node {
    double ingest_free = 0.0;       // absorb server is FIFO per node
    double read_free = 0.0;         // node-local read server is FIFO per node
    std::uint64_t occupancy = 0;    // staged bytes not yet drained/consumed
    // free times of the node's currently idle drain streams (min-heap);
    // size + running drains == drain_concurrency at all times
    std::priority_queue<double, std::vector<double>, std::greater<double>> slots;
    int idle_prefetch_streams = 0;  // prefetch stream pool (OST→node)
    std::deque<std::size_t> pending_drains;     // absorbed, all streams busy
    std::deque<std::size_t> pending_prefetch;   // admitted, all streams busy
    std::vector<std::size_t> waiting;  // capacity-stalled absorbs/prefetches
  };
  std::vector<Node> nodes;
  const int prefetch_streams = cfg_.bb.prefetch_concurrency > 0
                                   ? cfg_.bb.prefetch_concurrency
                                   : cfg_.bb.drain_concurrency;
  if (bb_on) {
    nodes.resize(static_cast<std::size_t>(cfg_.bb.nodes));
    for (auto& nd : nodes) {
      for (int s = 0; s < cfg_.bb.drain_concurrency; ++s) nd.slots.push(0.0);
      nd.idle_prefetch_streams = prefetch_streams;
    }
  }

  // A BB-tier read of a (node, file) this batch also prefetches must wait
  // until enough of that key's bytes are resident: several ranks may each
  // prefetch their slice of one shared dump file, and a read consumes (and
  // evicts) its own size from the staged pool in FIFO order — so reads
  // interleave with prefetch waves instead of deadlocking when the staging
  // area cannot hold the whole image at once. Keys are deterministic (node
  // id + file name); per-key state counts outstanding prefetches and tracks
  // the staged-byte pool with the time it last grew.
  auto bb_key = [this](const IoRequest& req) {
    return std::to_string(node_of(req.client)) + '|' + req.file;
  };
  struct PrefetchState {
    int pending = 0;             // prefetches of this key not yet complete
    std::uint64_t resident = 0;  // staged bytes not yet consumed by reads
    double resident_time = 0.0;  // latest completion that grew `resident`
  };
  std::map<std::string, PrefetchState> prefetch_state;
  std::map<std::string, std::vector<std::size_t>> read_waiters;
  if (bb_on) {
    for (const auto& req : requests)
      if (req.op == kOpPrefetch && req.bytes > 0)
        ++prefetch_state[bb_key(req)].pending;
  }

  double mds_free = 0.0;
  for (std::size_t idx : order) {
    const IoRequest& req = requests[idx];
    AMRIO_EXPECTS(req.client >= 0);
    AMRIO_EXPECTS_MSG(req.op == kOpWrite || req.op == kOpRead ||
                          req.op == kOpPrefetch,
                      "SimFs: unknown request op");
    // Which path serves this request? With the BB tier disabled, every tag
    // collapses onto the direct PFS path (reads and prefetches become cold
    // OST fetches, staged writes direct writes).
    const bool staged = bb_on && req.op == kOpWrite &&
                        req.tier == kTierBurstBuffer;
    const bool prefetch = bb_on && req.op == kOpPrefetch;
    const bool bb_read = bb_on && req.op == kOpRead &&
                         req.tier == kTierBurstBuffer;
    if ((staged || prefetch) && cfg_.bb.capacity > 0)
      AMRIO_EXPECTS_MSG(req.bytes <= cfg_.bb.capacity,
                        "SimFs: staged request larger than bb.capacity can "
                        "never be absorbed");
    const double open_start = std::max(req.submit_time, mds_free);
    const double open_end = open_start + cfg_.mds_latency;
    mds_free = open_end;
    IoResult& res = results[idx];
    res.open_start = open_start;
    res.open_end = open_end;
    res.end = open_end;  // zero-byte files end at create/open
    res.pfs_end = open_end;
    res.bytes = req.bytes;
    res.op = req.op;
    res.tier = (staged || prefetch || bb_read) ? kTierBurstBuffer : kTierPfs;
    res.first_ost = static_cast<int>(
        fnv1a(req.file) % static_cast<std::uint64_t>(cfg_.n_ost));
    if (req.bytes == 0) continue;
    if (staged) {
      pq.push({open_end, kAbsorbTry, seq++, idx});
    } else if (prefetch) {
      pq.push({open_end, kPrefetchStart, seq++, idx});
    } else if (bb_read) {
      pq.push({open_end, kBbRead, seq++, idx});
    } else {
      Flight fl;
      fl.index = idx;
      fl.remaining = req.bytes;
      fl.first_ost = res.first_ost;
      fl.ready = open_end;
      fl.rate = cfg_.client_bandwidth;
      aux[idx].flight_start = open_end;
      flights.push_back(fl);
      pq.push({fl.ready, kChunk, seq++, flights.size() - 1});
    }
  }

  std::vector<double> ost_free(static_cast<std::size_t>(cfg_.n_ost), 0.0);
  util::Xoshiro256 rng(cfg_.seed);
  // Mean-corrected lognormal: E[exp(sigma Z - sigma^2/2)] = 1, so turning the
  // noise on does not change mean service time.
  const double mu = -0.5 * cfg_.variability_sigma * cfg_.variability_sigma;

  // Re-try events for capacity-stalled requests: absorbs and prefetches share
  // the per-node waiting list, each re-entering through its own handler.
  auto wake_waiting = [&](Node& nd, int node, double when) {
    for (std::size_t w : nd.waiting) {
      pq.push({when,
               requests[w].op == kOpPrefetch ? static_cast<int>(kPrefetchStart)
                                             : static_cast<int>(kAbsorbTry),
               seq++, w});
      lq(bb_res(node, "capacity_wait"), when, -1);
    }
    nd.waiting.clear();
  };

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();

    if (ev.kind == kPrefetchStart) {
      const std::size_t idx = ev.id;
      const IoRequest& req = requests[idx];
      const int node = node_of(req.client);
      Node& nd = nodes[static_cast<std::size_t>(node)];
      if (cfg_.bb.capacity > 0 &&
          nd.occupancy + req.bytes > cfg_.bb.capacity) {
        nd.waiting.push_back(idx);  // woken when a drain/read frees space
        aux[idx].capacity_stalled = true;
        lq(bb_res(node, "capacity_wait"), ev.time, 1);
        continue;
      }
      nd.occupancy += req.bytes;  // reserve staging space for the extent
      if (want_series)
        occ_deltas.emplace_back(ev.time, static_cast<std::int64_t>(req.bytes));
      if (nd.idle_prefetch_streams == 0) {  // all streams busy: queue FIFO
        nd.pending_prefetch.push_back(idx);
        lq(bb_res(node, "prefetch"), ev.time, 1);
        continue;
      }
      --nd.idle_prefetch_streams;
      Flight fl;
      fl.index = idx;
      fl.remaining = req.bytes;
      fl.first_ost = results[idx].first_ost;
      fl.ready = ev.time;
      fl.rate = cfg_.bb.drain_bandwidth;
      fl.is_prefetch = true;
      fl.node = node;
      aux[idx].flight_start = ev.time;
      flights.push_back(fl);
      pq.push({fl.ready, kChunk, seq++, flights.size() - 1});
      continue;
    }

    if (ev.kind == kBbRead) {
      const std::size_t idx = ev.id;
      const IoRequest& req = requests[idx];
      const std::string key = bb_key(req);
      const auto pf = prefetch_state.find(key);
      double start = ev.time;
      if (pf != prefetch_state.end()) {
        PrefetchState& st = pf->second;
        if (st.pending > 0 && st.resident < req.bytes) {
          // Not enough of this key staged yet, more on the way: wait. Every
          // completion of the key wakes the waiters to re-check (FIFO), so
          // reads drain the pool between prefetch waves.
          read_waiters[key].push_back(idx);
          aux[idx].prefetch_gated = true;
          continue;
        }
        // Completions may already be *booked* (their last chunks were
        // issued) but lie in the future — the read still cannot start
        // before the bytes it consumes are resident.
        if (st.resident_time > start) aux[idx].prefetch_gated = true;
        start = std::max(start, st.resident_time);
      }
      const int node = node_of(req.client);
      Node& nd = nodes[static_cast<std::size_t>(node)];
      start = std::max(start, nd.read_free);  // node read server is FIFO
      aux[idx].read_start = start;
      const double read_end =
          start + static_cast<double>(req.bytes) / cfg_.bb.read_bandwidth;
      nd.read_free = read_end;
      results[idx].end = read_end;
      results[idx].pfs_end = read_end;
      // The solver owns the extent now: evict what this key's prefetches
      // actually staged (never other requests' reservations — a BB read
      // with no prefetch in the batch frees nothing) and wake anything
      // stalled on capacity.
      if (pf != prefetch_state.end()) {
        const std::uint64_t freed = std::min(pf->second.resident, req.bytes);
        pf->second.resident -= freed;
        nd.occupancy -= freed;
        if (want_series && freed > 0)
          occ_deltas.emplace_back(read_end, -static_cast<std::int64_t>(freed));
        if (freed > 0) wake_waiting(nd, node, read_end);
      }
      continue;
    }

    if (ev.kind == kAbsorbTry) {
      const std::size_t idx = ev.id;
      const IoRequest& req = requests[idx];
      const int node = node_of(req.client);
      Node& nd = nodes[static_cast<std::size_t>(node)];
      if (nd.ingest_free > ev.time) {  // absorb server busy: come back later
        pq.push({nd.ingest_free, kAbsorbTry, seq++, idx});
        continue;
      }
      if (cfg_.bb.capacity > 0 &&
          nd.occupancy + req.bytes > cfg_.bb.capacity) {
        nd.waiting.push_back(idx);  // woken when a drain frees space
        aux[idx].capacity_stalled = true;
        lq(bb_res(node, "capacity_wait"), ev.time, 1);
        continue;
      }
      // Node-local absorb: burst-buffer bandwidth alone (no NIC crossing).
      const double absorb_end =
          ev.time + static_cast<double>(req.bytes) / cfg_.bb.write_bandwidth;
      nd.occupancy += req.bytes;
      if (want_series)
        occ_deltas.emplace_back(ev.time, static_cast<std::int64_t>(req.bytes));
      nd.ingest_free = absorb_end;
      aux[idx].absorb_start = ev.time;
      results[idx].end = absorb_end;  // perceived completion
      pq.push({absorb_end, kDrainStart, seq++, idx});
      continue;
    }

    if (ev.kind == kDrainStart) {
      const std::size_t idx = ev.id;
      const int node = node_of(requests[idx].client);
      Node& nd = nodes[static_cast<std::size_t>(node)];
      if (nd.slots.empty()) {  // every drain stream busy: wait for a release
        nd.pending_drains.push_back(idx);
        lq(bb_res(node, "drain"), ev.time, 1);
        continue;
      }
      nd.slots.pop();  // stream acquired; released at flight completion
      Flight fl;
      fl.index = idx;
      fl.remaining = requests[idx].bytes;
      fl.first_ost = results[idx].first_ost;
      fl.ready = ev.time;
      fl.rate = cfg_.bb.drain_bandwidth;
      fl.is_drain = true;
      fl.node = node;
      aux[idx].flight_start = ev.time;
      if (want_series) drain_deltas.emplace_back(ev.time, 1);
      flights.push_back(fl);
      pq.push({fl.ready, kChunk, seq++, flights.size() - 1});
      continue;
    }

    // kChunk: issue the flight's next chunk onto its OST.
    Flight& fl = flights[ev.id];
    const std::uint64_t chunk =
        std::min<std::uint64_t>(fl.remaining, cfg_.stripe_size);
    const int ost = (fl.first_ost + fl.next_stripe) % cfg_.n_ost;
    fl.next_stripe = (fl.next_stripe + 1) % cfg_.stripe_count;

    double service =
        static_cast<double>(chunk) / std::min(fl.rate, cfg_.ost_bandwidth);
    if (cfg_.variability_sigma > 0)
      service *= rng.lognormal(mu, cfg_.variability_sigma);

    const double start =
        std::max(fl.ready, ost_free[static_cast<std::size_t>(ost)]);
    const double end = start + service;
    ost_free[static_cast<std::size_t>(ost)] = end;
    if (want_ledger) ost_busy[static_cast<std::size_t>(ost)] += service;
    fl.ready = end;
    fl.remaining -= chunk;
    aux[fl.index].service_sum += service;

    if (fl.remaining > 0) {
      pq.push({fl.ready, kChunk, seq++, ev.id});
      continue;
    }
    IoResult& res = results[fl.index];
    res.pfs_end = end;
    if (fl.is_prefetch) {
      // Prefetch complete: the extent is resident node-local. Release the
      // stream to the next queued prefetch and wake reads gated on this
      // (node, file). Copy what we need first: starting the next prefetch
      // grows `flights` and would invalidate `fl`.
      const std::size_t done_index = fl.index;
      const int node_id = fl.node;
      res.end = end;
      Node& nd = nodes[static_cast<std::size_t>(node_id)];
      ++nd.idle_prefetch_streams;
      if (!nd.pending_prefetch.empty()) {
        const std::size_t next = nd.pending_prefetch.front();
        nd.pending_prefetch.pop_front();
        lq(bb_res(node_id, "prefetch"), end, -1);
        --nd.idle_prefetch_streams;
        Flight pf;
        pf.index = next;
        pf.remaining = requests[next].bytes;
        pf.first_ost = results[next].first_ost;
        pf.ready = end;
        pf.rate = cfg_.bb.drain_bandwidth;
        pf.is_prefetch = true;
        pf.node = node_id;
        aux[next].flight_start = end;
        flights.push_back(pf);
        pq.push({end, kChunk, seq++, flights.size() - 1});
      }
      const std::string key = bb_key(requests[done_index]);
      PrefetchState& st = prefetch_state[key];
      --st.pending;
      st.resident += requests[done_index].bytes;
      st.resident_time = std::max(st.resident_time, end);
      // Wake the key's waiting reads to re-check the pool — unsatisfied
      // ones re-register, satisfied ones consume in FIFO order.
      const auto waiters = read_waiters.find(key);
      if (waiters != read_waiters.end()) {
        std::vector<std::size_t> woken = std::move(waiters->second);
        read_waiters.erase(waiters);
        for (std::size_t w : woken) pq.push({end, kBbRead, seq++, w});
      }
      continue;
    }
    if (!fl.is_drain) {
      res.end = end;
      continue;
    }
    // Drain complete: free staging space and the stream, hand the stream to
    // the next absorbed-but-undrained request, wake stalled
    // absorbs/prefetches.
    Node& nd = nodes[static_cast<std::size_t>(fl.node)];
    nd.occupancy -= res.bytes;
    if (want_series) {
      occ_deltas.emplace_back(end, -static_cast<std::int64_t>(res.bytes));
      drain_deltas.emplace_back(end, -1);
    }
    nd.slots.push(end);
    if (!nd.pending_drains.empty()) {
      const std::size_t next = nd.pending_drains.front();
      nd.pending_drains.pop_front();
      lq(bb_res(fl.node, "drain"), end, -1);
      pq.push({end, kDrainStart, seq++, next});
    }
    wake_waiting(nd, fl.node, end);
  }

  // A batch must drain completely: anything still parked here means the BB
  // tier can never serve it (e.g. prefetches whose combined reservation
  // exceeds capacity with no reads to evict between waves) — fail loudly
  // rather than return those requests as instantaneously complete.
  if (bb_on) {
    bool stalled = !read_waiters.empty();
    for (const auto& nd : nodes)
      stalled = stalled || !nd.waiting.empty() || !nd.pending_prefetch.empty() ||
                !nd.pending_drains.empty();
    AMRIO_ENSURES_MSG(!stalled,
                      "SimFs: batch ended with capacity-stalled or gated "
                      "requests the bb tier can never serve — raise "
                      "bb.capacity or interleave reads with the prefetches");
  }

  // ------------------------------------------------------- observability
  // Spans and metrics are emitted here, in request-index order, from the aux
  // data the (deterministic) event loop recorded — so the span stream is as
  // engine-invariant as the results themselves.
  if (probe.tracer != nullptr || probe.metrics != nullptr) {
    constexpr double kEps = 1e-12;
    constexpr double kSecQuantum = 1e-9;
    obs::SpanSink* tr = probe.tracer;
    obs::MetricsRegistry* mx = probe.metrics;
    auto observe = [&](const char* name, double v) {
      if (mx != nullptr) mx->observe(name, v, kSecQuantum);
    };
    // Main span id per request, for the prefetch→bb_read edges below.
    std::vector<std::uint64_t> span_of(requests.size(), 0);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const IoRequest& req = requests[i];
      const IoResult& res = results[i];
      const Aux& a = aux[i];
      if (req.bytes == 0) continue;
      if (mx != nullptr) {
        mx->add("simfs.requests", 1);
        mx->observe("simfs.mds.queue_s", res.open_start - req.submit_time,
                    kSecQuantum);
      }
      const bool on_bb = res.tier == kTierBurstBuffer;
      if (!on_bb) {
        // Direct OST path (writes, cold reads, and — with the tier disabled
        // — everything tagged for it): one span, wait = time in the OST
        // FIFOs / NIC beyond the summed chunk service.
        const bool is_write = res.op == kOpWrite;
        const double queue_wait =
            std::max(0.0, (res.end - res.open_end) - a.service_sum);
        if (tr != nullptr) {
          obs::Span s;
          s.rank = req.client;
          s.stage = is_write ? "pfs_write" : "pfs_read";
          s.detail = req.file;
          s.start = res.open_start;
          s.end = res.end;
          s.wait = queue_wait;
          if (queue_wait > kEps) s.resource = "ost_queue";
          s.service = a.service_sum;
          s.res = "ost[" + std::to_string(res.first_ost) + "]";
          span_of[i] = tr->record(std::move(s));
        }
        if (mx != nullptr)
          mx->add(is_write ? "simfs.pfs.write_bytes" : "simfs.pfs.read_bytes",
                  static_cast<std::int64_t>(req.bytes));
        observe(is_write ? "simfs.pfs.write_queue_s" : "simfs.pfs.read_queue_s",
                queue_wait);
        observe(is_write ? "simfs.pfs.write_service_s"
                         : "simfs.pfs.read_service_s",
                a.service_sum);
      } else if (res.op == kOpWrite) {
        // Staged write: absorb (perceived) + async drain (durable), linked by
        // a happens-before edge; a nested bb_stall child marks capacity or
        // ingest gating ahead of the absorb.
        const double stall = std::max(0.0, a.absorb_start - res.open_end);
        const char* gate = a.capacity_stalled ? "bb_capacity" : "bb_ingest";
        const double slot_wait = std::max(0.0, a.flight_start - res.end);
        if (tr != nullptr) {
          obs::Span absorb;
          absorb.rank = req.client;
          absorb.stage = "bb_absorb";
          absorb.detail = req.file;
          absorb.start = res.open_start;
          absorb.end = res.end;
          absorb.wait = stall;
          if (stall > kEps) absorb.resource = gate;
          absorb.service = res.end - a.absorb_start;
          absorb.res = bb_res(node_of(req.client), "ingest");
          const std::uint64_t absorb_id = tr->record(std::move(absorb));
          span_of[i] = absorb_id;
          if (stall > kEps) {
            obs::Span st;
            st.parent = absorb_id;
            st.rank = req.client;
            st.stage = "bb_stall";
            st.detail = req.file;
            st.start = res.open_end;
            st.end = a.absorb_start;
            st.wait = stall;
            st.resource = gate;
            tr->record(std::move(st));
          }
          obs::Span drain;
          drain.rank = req.client;
          drain.stage = "bb_drain";
          drain.detail = req.file;
          drain.start = res.end;
          drain.end = res.pfs_end;
          drain.wait = slot_wait;
          if (slot_wait > kEps) drain.resource = "drain_stream";
          drain.service = a.service_sum;
          drain.res = bb_res(node_of(req.client), "drain");
          const std::uint64_t drain_id = tr->record(std::move(drain));
          tr->edge(absorb_id, drain_id);
        }
        if (mx != nullptr) {
          mx->add("simfs.bb.absorb_bytes",
                  static_cast<std::int64_t>(req.bytes));
          mx->add("simfs.bb.drain_bytes", static_cast<std::int64_t>(req.bytes));
          if (a.capacity_stalled) mx->add("simfs.bb.capacity_stalls", 1);
        }
        observe("simfs.bb.absorb_stall_s", stall);
        observe("simfs.bb.drain_slot_wait_s", slot_wait);
        observe("simfs.bb.drain_service_s", a.service_sum);
      } else if (res.op == kOpPrefetch) {
        const double wait = std::max(0.0, a.flight_start - res.open_end);
        if (tr != nullptr) {
          obs::Span s;
          s.rank = req.client;
          s.stage = "bb_prefetch";
          s.detail = req.file;
          s.start = res.open_start;
          s.end = res.end;
          s.wait = wait;
          if (wait > kEps)
            s.resource =
                a.capacity_stalled ? "bb_capacity" : "prefetch_stream";
          s.service = a.service_sum;
          s.res = bb_res(node_of(req.client), "prefetch");
          span_of[i] = tr->record(std::move(s));
        }
        if (mx != nullptr) {
          mx->add("simfs.bb.prefetch_bytes",
                  static_cast<std::int64_t>(req.bytes));
          if (a.capacity_stalled) mx->add("simfs.bb.capacity_stalls", 1);
        }
        observe("simfs.bb.prefetch_wait_s", wait);
      } else {  // BB-tier node-local read
        const double wait = std::max(0.0, a.read_start - res.open_end);
        if (tr != nullptr) {
          obs::Span s;
          s.rank = req.client;
          s.stage = "bb_read";
          s.detail = req.file;
          s.start = res.open_start;
          s.end = res.end;
          s.wait = wait;
          if (wait > kEps)
            s.resource = a.prefetch_gated ? "prefetch_gate" : "bb_read_queue";
          s.service = res.end - a.read_start;
          s.res = bb_res(node_of(req.client), "read");
          span_of[i] = tr->record(std::move(s));
        }
        if (mx != nullptr)
          mx->add("simfs.bb.read_bytes", static_cast<std::int64_t>(req.bytes));
        observe("simfs.bb.read_wait_s", wait);
      }
      observe("simfs.request.duration_s", res.end - res.open_start);
    }

    // Happens-before from the prefetch wave that staged a BB read's bytes:
    // the latest same-(node, file) prefetch completing at or before the
    // read's start.
    if (tr != nullptr) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const IoRequest& req = requests[i];
        if (req.bytes == 0 || span_of[i] == 0) continue;
        if (!(results[i].op == kOpRead &&
              results[i].tier == kTierBurstBuffer && bb_on))
          continue;
        const std::string key = bb_key(req);
        std::size_t best = requests.size();
        for (std::size_t j = 0; j < requests.size(); ++j) {
          if (requests[j].op != kOpPrefetch || span_of[j] == 0) continue;
          if (bb_key(requests[j]) != key) continue;
          if (results[j].end > aux[i].read_start + kEps) continue;
          if (best == requests.size() || results[j].end > results[best].end)
            best = j;
        }
        if (best != requests.size()) tr->edge(span_of[best], span_of[i]);
      }
    }

    // Virtual-time series + peak gauge from the loop's delta streams. The
    // deltas were recorded in event order (deterministic); a stable sort on
    // time keeps that order within ties.
    if (mx != nullptr && want_series) {
      std::stable_sort(occ_deltas.begin(), occ_deltas.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
      std::int64_t occ = 0;
      std::int64_t peak = 0;
      for (const auto& [t, d] : occ_deltas) {
        occ += d;
        peak = std::max(peak, occ);
        mx->sample("bb.occupancy_bytes", t, static_cast<double>(occ));
      }
      mx->gauge_max("simfs.bb.peak_occupancy_bytes",
                    static_cast<double>(peak));
      std::stable_sort(drain_deltas.begin(), drain_deltas.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
      std::int64_t busy = 0;
      for (const auto& [t, d] : drain_deltas) {
        busy += d;
        mx->sample("bb.drain_streams_busy", t, static_cast<double>(busy));
      }
    }
  }

  // --------------------------------------------------- utilization ledger
  // Per-resource busy seconds and queue depth, from the same post-loop aux
  // data. Resources are declared with their pool capacity so the report's
  // busy + idle = capacity × makespan conservation holds per resource.
  if (want_ledger) {
    obs::ResourceLedger& lg = *probe.ledger;
    lg.declare("mds", 1);
    lg.add_busy("mds", cfg_.mds_latency * static_cast<double>(requests.size()));
    for (int o = 0; o < cfg_.n_ost; ++o) {
      const std::string name = "ost[" + std::to_string(o) + "]";
      lg.declare(name, 1);
      lg.add_busy(name, ost_busy[static_cast<std::size_t>(o)]);
    }
    if (bb_on) {
      for (int n = 0; n < cfg_.bb.nodes; ++n) {
        lg.declare(bb_res(n, "ingest"), 1);
        lg.declare(bb_res(n, "drain"), cfg_.bb.drain_concurrency);
        lg.declare(bb_res(n, "prefetch"), prefetch_streams);
        lg.declare(bb_res(n, "read"), 1);
      }
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const IoRequest& req = requests[i];
      const IoResult& res = results[i];
      const Aux& a = aux[i];
      if (req.bytes == 0) continue;
      lg.extend_makespan(std::max(res.end, res.pfs_end));
      if (res.tier != kTierBurstBuffer) continue;
      const int node = node_of(req.client);
      if (res.op == kOpWrite) {
        lg.add_busy(bb_res(node, "ingest"), res.end - a.absorb_start);
        lg.add_busy(bb_res(node, "drain"), res.pfs_end - a.flight_start);
      } else if (res.op == kOpPrefetch) {
        lg.add_busy(bb_res(node, "prefetch"), res.end - a.flight_start);
      } else {  // BB-tier node-local read
        lg.add_busy(bb_res(node, "read"), res.end - a.read_start);
      }
    }
    for (const auto& [name, t, delta] : ledger_q) lg.queue_delta(name, t, delta);
  }

  return results;
}

}  // namespace amrio::pfs

#pragma once
/// \file simfs.hpp
/// Discrete-event simulator of a striped parallel filesystem (a GPFS/Lustre
/// hybrid abstraction of Summit's Alpine scratch). The paper calls the timing
/// side of I/O the "dynamic" system behaviour — bandwidth, file-system
/// variability, burstiness — and positions the calibrated MACSio proxy as the
/// workload generator for exactly such studies. This module is the machine
/// those studies run on when no 250 PB filesystem is at hand.
///
/// Model:
///  * a single metadata server serializes file creates (`mds_latency` each);
///    requests are serviced in submit-time order, with submit-time ties
///    broken deterministically by (client, file) — so staged drain replays
///    are reproducible no matter which engine (or request-list order)
///    produced them;
///  * each file is striped over `stripe_count` object storage targets (OSTs)
///    selected by file-name hash;
///  * writes are split into `stripe_size` chunks issued round-robin over the
///    file's OSTs; a client issues its chunks sequentially;
///  * each OST is a FIFO server with `ost_bandwidth`; each client NIC caps
///    throughput at `client_bandwidth`;
///  * optional lognormal service-time noise (`variability_sigma`), seeded —
///    the same seed always replays the same timeline.
///
/// Burst-buffer tier (the staging subsystem's "dynamic" half): when
/// `SimFsConfig::bb.enabled` is set, requests tagged `tier ==
/// kTierBurstBuffer` are *absorbed* into their node's staging area at
/// burst-buffer bandwidth (the writer perceives completion at absorb end —
/// `IoResult::end`), and the absorbed bytes are then *drained* asynchronously
/// onto the OST layer by up to `drain_concurrency` streams per node
/// (`IoResult::pfs_end` is when the bytes are durable on the PFS). A bounded
/// per-node `capacity` makes absorbs stall until earlier drains free space —
/// the classic BB-capacity-induced perceived-bandwidth collapse.
///
/// Read side (checkpoint restart): requests carry an `op` —
///  * `kOpRead` + `kTierPfs`: a cold fetch off the OSTs. Chunks stream over
///    the file's stripe set through the same contention timeline writes use
///    (reads and writes share the OST FIFOs), capped by the client NIC;
///    submit-time ties obey the same documented (client, file) order.
///  * `kOpPrefetch` (+ BB tier enabled): the drain in reverse — an OST→node
///    transfer at `drain_bandwidth` per stream, bounded by
///    `prefetch_concurrency` streams per node, reserving staging `capacity`
///    on start. `end`/`pfs_end` is when the extent is resident node-local.
///  * `kOpRead` + `kTierBurstBuffer`: a node-local fetch of a prefetched
///    extent at `read_bandwidth` (FIFO per node, no NIC/OST crossing). If
///    the same batch prefetches the same (node, file) — possibly several
///    times, one per rank slice of a shared dump file — a read waits until
///    that key's staged pool holds at least its size (reads consume in
///    FIFO order, so they interleave with prefetch waves when `capacity`
///    cannot hold the whole image at once). Completing the read *evicts*
///    up to its size of the bytes those prefetches staged (never other
///    requests' reservations), freeing capacity for stalled
///    absorbs/prefetches; a BB-tier read with no prefetch in the batch
///    frees nothing. A batch the tier can never drain (e.g. prefetch
///    reservations over capacity with no reads to evict between waves)
///    fails loudly with a ContractViolation instead of returning stalled
///    requests as complete.
/// With the BB tier disabled, reads and prefetches tagged for it are served
/// as direct PFS reads — one tagged workload replays against both setups,
/// exactly like the write path.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace amrio::pfs {

/// Request/result tier tags.
inline constexpr int kTierPfs = 0;
inline constexpr int kTierBurstBuffer = 1;

/// Request/result operation tags.
inline constexpr int kOpWrite = 0;
inline constexpr int kOpRead = 1;
inline constexpr int kOpPrefetch = 2;

/// Burst-buffer staging tier configuration (per-node semantics). Disabled by
/// default: tier tags on requests are then ignored and everything goes
/// straight at the OST layer.
struct TierConfig {
  bool enabled = false;
  int nodes = 1;  ///< staging areas; node of client c = (c / ranks_per_node) % nodes
  /// Consecutive clients per node (jsrun-style contiguous packing). 1 makes
  /// node assignment cycle client-by-client.
  int ranks_per_node = 1;
  /// bytes/sec absorb rate per node. Node-local (NVMe-style): absorbs are
  /// *not* capped by the client NIC — that cap applies on the way to the PFS.
  double write_bandwidth = 10.0e9;
  double drain_bandwidth = 2.0e9;   ///< bytes/sec per drain stream (to OSTs)
  std::uint64_t capacity = 0;       ///< bytes per node staging area; 0 = unbounded
  int drain_concurrency = 2;        ///< concurrent drain streams per node
  /// bytes/sec node-local read rate for BB-resident extents (kOpRead on the
  /// BB tier). Like absorbs, these never cross the client NIC.
  double read_bandwidth = 10.0e9;
  /// Concurrent OST→node prefetch streams per node (each at
  /// `drain_bandwidth`); 0 = use `drain_concurrency`.
  int prefetch_concurrency = 0;
};

struct SimFsConfig {
  int n_ost = 8;
  double ost_bandwidth = 1.0e9;     ///< bytes/sec per OST
  double client_bandwidth = 2.0e9;  ///< bytes/sec per client NIC
  std::uint64_t stripe_size = 1ull << 20;
  int stripe_count = 1;             ///< OSTs per file
  double mds_latency = 5.0e-4;      ///< seconds per file create, serialized
  double variability_sigma = 0.0;   ///< lognormal sigma on chunk service time
  std::uint64_t seed = 0x5eed;
  TierConfig bb;                    ///< optional burst-buffer staging tier
};

struct IoRequest {
  int client = 0;
  double submit_time = 0.0;
  std::string file;
  /// Bytes to serve. Workloads with an in-situ codec stage (amrio::codec)
  /// submit *encoded* sizes here — what actually crosses the NIC and lands
  /// on the OSTs/tier — with the modeled encode cpu already folded into
  /// `submit_time`; raw production is accounted upstream.
  std::uint64_t bytes = 0;
  /// kTierPfs (direct) or kTierBurstBuffer (absorb + async drain). The tag is
  /// a request attribute: a SimFs without an enabled BB tier serves tagged
  /// requests directly, so one tagged workload replays against both setups.
  int tier = kTierPfs;
  /// kOpWrite (default), kOpRead (fetch `bytes` — encoded sizes for workloads
  /// with a codec stage, decode cpu accounted upstream), or kOpPrefetch
  /// (OST→BB staging of `bytes` ahead of BB-tier reads).
  int op = kOpWrite;
};

struct IoResult {
  double open_start = 0.0;  ///< when the MDS began servicing the create
  double open_end = 0.0;    ///< create done; first data chunk may be issued
  double end = 0.0;         ///< perceived completion (absorb end on the BB tier)
  /// When the bytes are durable on the PFS tier: drain completion for staged
  /// requests, == end for direct ones. Sustained-bandwidth studies use this.
  double pfs_end = 0.0;
  int first_ost = 0;        ///< first OST of the stripe set
  int tier = kTierPfs;      ///< tier the request was actually served on
  int op = kOpWrite;        ///< operation the request carried
  std::uint64_t bytes = 0;
  double duration() const { return end - open_start; }
  /// Effective (perceived) bandwidth seen by this request (bytes/sec).
  double bandwidth() const {
    const double d = duration();
    return d > 0 ? static_cast<double>(bytes) / d : 0.0;
  }
};

class SimFs {
 public:
  explicit SimFs(SimFsConfig cfg);

  /// Simulate the batch; result[i] corresponds to request[i]. The simulation
  /// is deterministic for a given config (including seed) and request *set*:
  /// submit-time ties are served in (client, file) order regardless of the
  /// order requests appear in the list.
  std::vector<IoResult> run(const std::vector<IoRequest>& requests);

  /// Instrumented run: identical timeline, plus per-request spans and tier
  /// metrics on `probe`. Spans land on the client's rank track —
  /// "pfs_write"/"pfs_read" (direct, wait = OST queue time vs service),
  /// "bb_absorb" (+ a nested "bb_stall" child while capacity/ingest gated),
  /// "bb_drain" (absorb→drain happens-before edge, wait = stream-slot wait),
  /// "bb_prefetch", and "bb_read" (edge from the latest prefetch of its
  /// (node, file) key when prefetch-gated). Metrics: request/byte counters
  /// per path, queue/service/stall histograms, and the bb.occupancy_bytes /
  /// bb.drain_streams_busy virtual-time series. Emission happens after the
  /// event loop in request-index order, so the spans are as deterministic as
  /// the results.
  std::vector<IoResult> run(const std::vector<IoRequest>& requests,
                            obs::Probe probe);

  /// First OST index for a file (stable hash), exposed for tests.
  int ost_of(const std::string& file) const;

  /// Staging node of a client ((client / bb.ranks_per_node) % bb.nodes),
  /// exposed for tests.
  int node_of(int client) const;

  const SimFsConfig& config() const { return cfg_; }

 private:
  SimFsConfig cfg_;
};

}  // namespace amrio::pfs

#pragma once
/// \file simfs.hpp
/// Discrete-event simulator of a striped parallel filesystem (a GPFS/Lustre
/// hybrid abstraction of Summit's Alpine scratch). The paper calls the timing
/// side of I/O the "dynamic" system behaviour — bandwidth, file-system
/// variability, burstiness — and positions the calibrated MACSio proxy as the
/// workload generator for exactly such studies. This module is the machine
/// those studies run on when no 250 PB filesystem is at hand.
///
/// Model:
///  * a single metadata server serializes file creates (`mds_latency` each);
///  * each file is striped over `stripe_count` object storage targets (OSTs)
///    selected by file-name hash;
///  * writes are split into `stripe_size` chunks issued round-robin over the
///    file's OSTs; a client issues its chunks sequentially;
///  * each OST is a FIFO server with `ost_bandwidth`; each client NIC caps
///    throughput at `client_bandwidth`;
///  * optional lognormal service-time noise (`variability_sigma`), seeded —
///    the same seed always replays the same timeline.

#include <cstdint>
#include <string>
#include <vector>

namespace amrio::pfs {

struct SimFsConfig {
  int n_ost = 8;
  double ost_bandwidth = 1.0e9;     ///< bytes/sec per OST
  double client_bandwidth = 2.0e9;  ///< bytes/sec per client NIC
  std::uint64_t stripe_size = 1ull << 20;
  int stripe_count = 1;             ///< OSTs per file
  double mds_latency = 5.0e-4;      ///< seconds per file create, serialized
  double variability_sigma = 0.0;   ///< lognormal sigma on chunk service time
  std::uint64_t seed = 0x5eed;
};

struct IoRequest {
  int client = 0;
  double submit_time = 0.0;
  std::string file;
  std::uint64_t bytes = 0;
};

struct IoResult {
  double open_start = 0.0;  ///< when the MDS began servicing the create
  double open_end = 0.0;    ///< create done; first data chunk may be issued
  double end = 0.0;         ///< last chunk committed
  int first_ost = 0;        ///< first OST of the stripe set
  std::uint64_t bytes = 0;
  double duration() const { return end - open_start; }
  /// Effective bandwidth seen by this request (bytes/sec).
  double bandwidth() const {
    const double d = duration();
    return d > 0 ? static_cast<double>(bytes) / d : 0.0;
  }
};

class SimFs {
 public:
  explicit SimFs(SimFsConfig cfg);

  /// Simulate the batch; result[i] corresponds to request[i]. The simulation
  /// is deterministic for a given config (including seed) and request list.
  std::vector<IoResult> run(const std::vector<IoRequest>& requests);

  /// First OST index for a file (stable hash), exposed for tests.
  int ost_of(const std::string& file) const;

  const SimFsConfig& config() const { return cfg_; }

 private:
  SimFsConfig cfg_;
};

}  // namespace amrio::pfs

#pragma once
/// \file backend.hpp
/// Storage backends. All plotfile/MACSio output flows through this interface
/// so the same writer code can target a real directory tree (PosixBackend) or
/// a byte-exact in-memory accounting store (MemoryBackend). The paper's
/// largest runs (8192² and beyond) are reproduced against the memory backend:
/// the byte counts are identical, nothing hits disk.
///
/// Paths are logical, '/'-separated, relative to the backend root. Backends
/// are thread-safe: simmpi ranks write concurrently during N-to-N dumps.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace amrio::pfs {

using FileHandle = std::uint64_t;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Create/truncate a file for writing. Parent "directories" are implicit.
  virtual FileHandle create(const std::string& path) = 0;
  /// Open for append (create when missing) — MIF groups and SIF shared files
  /// need multiple sequential writers per file.
  virtual FileHandle open_append(const std::string& path) = 0;
  virtual void write(FileHandle handle, std::span<const std::byte> data) = 0;
  virtual void close(FileHandle handle) = 0;

  virtual bool exists(const std::string& path) const = 0;
  /// Size of a closed or in-progress file. Throws std::runtime_error if absent.
  virtual std::uint64_t size(const std::string& path) const = 0;
  /// All file paths starting with `prefix`, sorted. Empty prefix = everything.
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;
  /// Full contents. Throws std::runtime_error when absent or (for the memory
  /// backend in counting mode) when contents were not retained.
  virtual std::vector<std::byte> read(const std::string& path) const = 0;

  /// Total bytes across all files (accounting convenience).
  virtual std::uint64_t total_bytes() const;
  /// Number of files.
  virtual std::uint64_t file_count() const;
};

/// In-memory backend. With `store_contents=false` it keeps only byte counts
/// ("counting mode") so arbitrarily large dumps cost O(#files) memory.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(bool store_contents = true)
      : store_contents_(store_contents) {}

  FileHandle create(const std::string& path) override;
  FileHandle open_append(const std::string& path) override;
  void write(FileHandle handle, std::span<const std::byte> data) override;
  void close(FileHandle handle) override;

  bool exists(const std::string& path) const override;
  std::uint64_t size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::vector<std::byte> read(const std::string& path) const override;

  bool stores_contents() const { return store_contents_; }

 private:
  struct FileRecord {
    std::uint64_t bytes = 0;
    std::uint64_t nwrites = 0;
    std::vector<std::byte> contents;
  };
  mutable std::mutex mu_;
  bool store_contents_;
  FileHandle next_handle_ = 1;
  std::map<FileHandle, std::string> open_files_;
  std::map<std::string, FileRecord> files_;
};

/// Real-filesystem backend rooted at `root` (created if missing).
class PosixBackend final : public StorageBackend {
 public:
  explicit PosixBackend(std::string root);

  FileHandle create(const std::string& path) override;
  FileHandle open_append(const std::string& path) override;
  void write(FileHandle handle, std::span<const std::byte> data) override;
  void close(FileHandle handle) override;

  bool exists(const std::string& path) const override;
  std::uint64_t size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::vector<std::byte> read(const std::string& path) const override;

  const std::string& root() const { return root_; }

 private:
  std::string full_path(const std::string& path) const;
  mutable std::mutex mu_;
  std::string root_;
  FileHandle next_handle_ = 1;
  std::map<FileHandle, std::unique_ptr<std::FILE, int (*)(std::FILE*)>> open_;
  std::map<FileHandle, std::string> open_paths_;
};

enum class OpenMode { kTruncate, kAppend };

/// RAII writer over a backend file; closes on destruction.
class OutFile {
 public:
  OutFile(StorageBackend& backend, const std::string& path,
          OpenMode mode = OpenMode::kTruncate)
      : backend_(&backend),
        handle_(mode == OpenMode::kTruncate ? backend.create(path)
                                            : backend.open_append(path)),
        path_(path) {}
  ~OutFile() {
    if (open_) backend_->close(handle_);
  }
  OutFile(const OutFile&) = delete;
  OutFile& operator=(const OutFile&) = delete;
  OutFile(OutFile&& other) noexcept
      : backend_(other.backend_), handle_(other.handle_), path_(other.path_),
        written_(other.written_), open_(other.open_) {
    other.open_ = false;
  }

  void write(std::span<const std::byte> data) {
    backend_->write(handle_, data);
    written_ += data.size();
  }
  void write(std::string_view text) {
    write(std::as_bytes(std::span<const char>(text.data(), text.size())));
  }
  template <typename T>
  void write_pod(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(std::as_bytes(data));
  }
  void close() {
    if (open_) {
      backend_->close(handle_);
      open_ = false;
    }
  }
  std::uint64_t bytes_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  StorageBackend* backend_;
  FileHandle handle_;
  std::string path_;
  std::uint64_t written_ = 0;
  bool open_ = true;
};

}  // namespace amrio::pfs

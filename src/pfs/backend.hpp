#pragma once
/// \file backend.hpp
/// Storage backends. All plotfile/MACSio output flows through this interface
/// so the same writer code can target a real directory tree (PosixBackend) or
/// a byte-exact in-memory accounting store (MemoryBackend). The paper's
/// largest runs (8192² and beyond) are reproduced against the memory backend:
/// the byte counts are identical, nothing hits disk.
///
/// Paths are logical, '/'-separated, relative to the backend root. Backends
/// are thread-safe and designed to be contention-free on the write hot path:
/// simmpi ranks dumping N files concurrently (the paper's N-to-N pattern)
/// never serialize on a shared lock. `MemoryBackend` shards its path table by
/// path hash and its open-handle table by handle id, and file byte counters
/// are atomics; `PosixBackend` gets the same handle-sharded treatment, with
/// writes going straight to the handle's own `FILE*`.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace amrio::pfs {

using FileHandle = std::uint64_t;

namespace detail {

/// Lock-free open-handle registry: a segmented slot array addressed directly
/// by handle id. `lookup` (the per-write hot path) is two atomic loads — no
/// mutex, no hashing, no shared cache line between handles. Registration
/// allocates segments lazily under a small mutex (open/close are not hot);
/// slots are never recycled, so a stale handle reliably reads as closed.
template <typename T>
class HandleTable {
 public:
  static constexpr std::size_t kBlockBits = 10;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kMaxBlocks = 8192;  // ~8.4M handles

  HandleTable() {
    for (auto& b : blocks_) b.store(nullptr, std::memory_order_relaxed);
  }
  ~HandleTable() {
    for (auto& b : blocks_) delete[] b.load(std::memory_order_relaxed);
  }
  HandleTable(const HandleTable&) = delete;
  HandleTable& operator=(const HandleTable&) = delete;

  /// Register `value` and return its handle. Throws when the handle space is
  /// exhausted (2^23 opens per backend lifetime).
  FileHandle put(T* value) {
    const FileHandle h = next_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t block = h >> kBlockBits;
    if (block >= kMaxBlocks)
      throw std::runtime_error("HandleTable: handle space exhausted");
    std::atomic<T*>* slots = blocks_[block].load(std::memory_order_acquire);
    if (slots == nullptr) {
      std::lock_guard<std::mutex> lock(grow_mu_);
      slots = blocks_[block].load(std::memory_order_acquire);
      if (slots == nullptr) {
        slots = new std::atomic<T*>[kBlockSize];
        for (std::size_t i = 0; i < kBlockSize; ++i)
          slots[i].store(nullptr, std::memory_order_relaxed);
        blocks_[block].store(slots, std::memory_order_release);
      }
    }
    slots[h & (kBlockSize - 1)].store(value, std::memory_order_release);
    return h;
  }

  /// nullptr when the handle was never issued or is already closed.
  T* lookup(FileHandle h) const {
    const std::size_t block = h >> kBlockBits;
    if (block >= kMaxBlocks) return nullptr;
    std::atomic<T*>* slots = blocks_[block].load(std::memory_order_acquire);
    if (slots == nullptr) return nullptr;
    return slots[h & (kBlockSize - 1)].load(std::memory_order_acquire);
  }

  /// Close a handle: returns the stored value, or nullptr if invalid/closed.
  T* take(FileHandle h) {
    const std::size_t block = h >> kBlockBits;
    if (block >= kMaxBlocks) return nullptr;
    std::atomic<T*>* slots = blocks_[block].load(std::memory_order_acquire);
    if (slots == nullptr) return nullptr;
    return slots[h & (kBlockSize - 1)].exchange(nullptr,
                                                std::memory_order_acq_rel);
  }

  /// Visit every still-open value (destruction-time cleanup; not
  /// thread-safe against concurrent writers).
  template <typename Fn>
  void for_each_open(Fn&& fn) {
    for (auto& b : blocks_) {
      std::atomic<T*>* slots = b.load(std::memory_order_relaxed);
      if (slots == nullptr) continue;
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        if (T* v = slots[i].exchange(nullptr, std::memory_order_relaxed))
          fn(v);
      }
    }
  }

 private:
  std::array<std::atomic<std::atomic<T*>*>, kMaxBlocks> blocks_;
  std::mutex grow_mu_;
  std::atomic<FileHandle> next_{1};
};

}  // namespace detail

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Create/truncate a file for writing. Parent "directories" are implicit.
  virtual FileHandle create(const std::string& path) = 0;
  /// Open for append (create when missing) — MIF groups and SIF shared files
  /// need multiple sequential writers per file.
  virtual FileHandle open_append(const std::string& path) = 0;
  virtual void write(FileHandle handle, std::span<const std::byte> data) = 0;
  virtual void close(FileHandle handle) = 0;

  virtual bool exists(const std::string& path) const = 0;
  /// Size of a closed or in-progress file. Throws std::runtime_error if absent.
  virtual std::uint64_t size(const std::string& path) const = 0;
  /// All file paths starting with `prefix`, sorted. Empty prefix = everything.
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;
  /// Full contents. Throws std::runtime_error when absent or (for the memory
  /// backend in counting mode) when contents were not retained.
  virtual std::vector<std::byte> read(const std::string& path) const = 0;
  /// Contents of [offset, offset + length). The default reads the whole file
  /// and slices; MemoryBackend/PosixBackend override with real ranged reads
  /// so a restart rank slicing its own byte range out of a shared dump file
  /// does not materialize the entire file. Throws std::runtime_error when
  /// the range exceeds the file (and whenever `read` would throw).
  virtual std::vector<std::byte> read_range(const std::string& path,
                                            std::uint64_t offset,
                                            std::uint64_t length) const;

  /// Total bytes across all files (accounting convenience).
  virtual std::uint64_t total_bytes() const;
  /// Number of files.
  virtual std::uint64_t file_count() const;

  /// Whether `read` returns real file contents. False for accounting-only
  /// stores (MemoryBackend counting mode) — readers that can degrade (the
  /// restart path replays exact sizes as zero bytes) probe this instead of
  /// catching the read error.
  virtual bool stores_contents() const { return true; }
};

/// In-memory backend. With `store_contents=false` it keeps only byte counts
/// ("counting mode") so arbitrarily large dumps cost O(#files) memory.
///
/// Concurrency: the path table is split into `kPathShards` independently
/// locked shards (path-hash addressed); the open-handle table is a lock-free
/// `detail::HandleTable`, so the per-write hot path is two atomic loads plus
/// atomic counter bumps — no lock at all. Content appends (store mode) take
/// a per-file mutex only.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(bool store_contents = true)
      : store_contents_(store_contents) {}

  FileHandle create(const std::string& path) override;
  FileHandle open_append(const std::string& path) override;
  void write(FileHandle handle, std::span<const std::byte> data) override;
  void close(FileHandle handle) override;

  bool exists(const std::string& path) const override;
  std::uint64_t size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::vector<std::byte> read(const std::string& path) const override;
  std::vector<std::byte> read_range(const std::string& path,
                                    std::uint64_t offset,
                                    std::uint64_t length) const override;

  std::uint64_t total_bytes() const override;
  std::uint64_t file_count() const override;

  bool stores_contents() const override { return store_contents_; }

 private:
  static constexpr std::size_t kPathShards = 64;

  /// Lives in a std::map node — address-stable, so open handles hold a direct
  /// pointer and writes never re-walk the path table.
  struct FileRecord {
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> nwrites{0};
    mutable std::mutex content_mu;
    std::vector<std::byte> contents;
  };
  struct PathShard {
    mutable std::mutex mu;
    std::map<std::string, FileRecord> files;
  };

  PathShard& path_shard(const std::string& path) const;

  bool store_contents_;
  mutable std::array<PathShard, kPathShards> path_shards_;
  detail::HandleTable<FileRecord> handles_;
};

/// Real-filesystem backend rooted at `root` (created if missing). Open
/// handles live in the same lock-free HandleTable; writes go to the handle's
/// own FILE* without touching any backend-wide state.
class PosixBackend final : public StorageBackend {
 public:
  explicit PosixBackend(std::string root);
  ~PosixBackend() override;

  FileHandle create(const std::string& path) override;
  FileHandle open_append(const std::string& path) override;
  void write(FileHandle handle, std::span<const std::byte> data) override;
  void close(FileHandle handle) override;

  bool exists(const std::string& path) const override;
  std::uint64_t size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::vector<std::byte> read(const std::string& path) const override;
  std::vector<std::byte> read_range(const std::string& path,
                                    std::uint64_t offset,
                                    std::uint64_t length) const override;

  const std::string& root() const { return root_; }

 private:
  struct OpenFile {
    std::FILE* file = nullptr;
  };

  std::string full_path(const std::string& path) const;
  FileHandle register_open(std::FILE* f);

  std::string root_;
  detail::HandleTable<OpenFile> handles_;
};

enum class OpenMode { kTruncate, kAppend };

/// RAII writer over a backend file; closes on destruction. Movable: the
/// moved-from object is left closed with an empty path and zero bytes
/// written, so destroying or re-assigning it is always safe.
class OutFile {
 public:
  OutFile(StorageBackend& backend, const std::string& path,
          OpenMode mode = OpenMode::kTruncate)
      : backend_(&backend),
        handle_(mode == OpenMode::kTruncate ? backend.create(path)
                                            : backend.open_append(path)),
        path_(path) {}
  ~OutFile() { close_quietly(); }
  OutFile(const OutFile&) = delete;
  OutFile& operator=(const OutFile&) = delete;
  OutFile(OutFile&& other) noexcept
      : backend_(other.backend_), handle_(other.handle_),
        path_(std::move(other.path_)), written_(other.written_),
        open_(other.open_) {
    other.reset_moved_from();
  }
  OutFile& operator=(OutFile&& other) noexcept {
    if (this != &other) {
      close_quietly();
      backend_ = other.backend_;
      handle_ = other.handle_;
      path_ = std::move(other.path_);
      written_ = other.written_;
      open_ = other.open_;
      other.reset_moved_from();
    }
    return *this;
  }

  void write(std::span<const std::byte> data) {
    backend_->write(handle_, data);
    written_ += data.size();
  }
  void write(std::string_view text) {
    write(std::as_bytes(std::span<const char>(text.data(), text.size())));
  }
  template <typename T>
  void write_pod(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(std::as_bytes(data));
  }
  /// Close, surfacing backend flush errors (e.g. PosixBackend's fclose
  /// failing on a full disk). The destructor and move-assignment close
  /// quietly instead — call this explicitly where errors must be observed.
  void close() {
    if (open_) {
      open_ = false;
      backend_->close(handle_);
    }
  }
  std::uint64_t bytes_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  void close_quietly() noexcept {
    if (!open_) return;
    open_ = false;
    try {
      backend_->close(handle_);
    } catch (...) {
      // noexcept contexts must not throw; use close() to observe errors
    }
  }

  void reset_moved_from() {
    open_ = false;
    written_ = 0;
    path_.clear();
  }

  StorageBackend* backend_;
  FileHandle handle_;
  std::string path_;
  std::uint64_t written_ = 0;
  bool open_ = true;
};

}  // namespace amrio::pfs

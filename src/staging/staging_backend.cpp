#include "staging/staging_backend.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace amrio::staging {

StagingBackend::StagingBackend(pfs::StorageBackend& final_store,
                               bool store_contents, codec::CodecSpec codec)
    : final_(&final_store),
      store_contents_(store_contents),
      codec_(codec::make_codec(codec)),
      stage_(std::make_unique<pfs::MemoryBackend>(store_contents)) {}

pfs::FileHandle StagingBackend::create(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mode_mu_);
    append_continuation_[path] = false;  // truncate: replaces any final copy
  }
  return stage_->create(path);
}

pfs::FileHandle StagingBackend::open_append(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mode_mu_);
    auto [it, inserted] = append_continuation_.try_emplace(path, false);
    if (inserted) {
      // First staged sight of this path: if the final store already holds it,
      // the staged bytes continue that file and must drain as an append.
      it->second = final_->exists(path);
    }
  }
  return stage_->open_append(path);
}

void StagingBackend::write(pfs::FileHandle handle,
                           std::span<const std::byte> data) {
  stage_->write(handle, data);
  // Commutative add only: ranks absorb concurrently under SpmdEngine.
  if (probe_.metrics)
    probe_.metrics->add("staging.absorb_bytes",
                        static_cast<std::int64_t>(data.size()));
}

void StagingBackend::close(pfs::FileHandle handle) { stage_->close(handle); }

bool StagingBackend::exists(const std::string& path) const {
  return stage_->exists(path) || final_->exists(path);
}

bool StagingBackend::continues_final(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mode_mu_);
  const auto it = append_continuation_.find(path);
  return it != append_continuation_.end() && it->second;
}

std::uint64_t StagingBackend::size(const std::string& path) const {
  if (!stage_->exists(path)) return final_->size(path);
  // An append continuation extends the drained copy: the transparent view is
  // final prefix + staged suffix.
  std::uint64_t total = stage_->size(path);
  if (continues_final(path)) total += final_->size(path);
  return total;
}

std::vector<std::string> StagingBackend::list(const std::string& prefix) const {
  std::vector<std::string> merged = stage_->list(prefix);
  const std::vector<std::string> below = final_->list(prefix);
  merged.insert(merged.end(), below.begin(), below.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<std::byte> StagingBackend::read(const std::string& path) const {
  if (!stage_->exists(path)) return final_->read(path);
  if (!continues_final(path)) return stage_->read(path);
  std::vector<std::byte> out = final_->read(path);
  const std::vector<std::byte> suffix = stage_->read(path);
  out.insert(out.end(), suffix.begin(), suffix.end());
  return out;
}

std::uint64_t StagingBackend::pending_bytes() const {
  return stage_->total_bytes();
}

std::uint64_t StagingBackend::pending_files() const {
  return stage_->file_count();
}

std::vector<std::string> StagingBackend::pending() const {
  return stage_->list("");
}

std::uint64_t StagingBackend::pending_encoded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& path : stage_->list(""))
    total += codec_->plan(stage_->size(path)).out_bytes;
  return total;
}

std::uint64_t StagingBackend::encoded_size(const std::string& path) const {
  return codec_->plan(stage_->size(path)).out_bytes;
}

codec::CodecStats StagingBackend::codec_stats() const {
  std::lock_guard<std::mutex> lock(mode_mu_);
  return codec_stats_;
}

std::vector<StagingBackend::DrainRecord> StagingBackend::drain_all() {
  std::vector<DrainRecord> drained;
  const auto paths = stage_->list("");  // sorted: deterministic replay order
  if (probe_.metrics) {
    // Drain entry is a driver-serial point: the staged image is complete, so
    // pending_bytes() here is the true per-drain peak and gauge_max commutes.
    probe_.metrics->gauge_max("staging.peak_pending_bytes",
                              static_cast<double>(pending_bytes()));
  }
  drained.reserve(paths.size());
  for (const auto& path : paths) {
    const std::uint64_t bytes = stage_->size(path);
    bool append = false;
    {
      std::lock_guard<std::mutex> lock(mode_mu_);
      const auto it = append_continuation_.find(path);
      append = it != append_continuation_.end() && it->second;
    }
    pfs::OutFile out(*final_, path,
                     append ? pfs::OpenMode::kAppend : pfs::OpenMode::kTruncate);
    if (store_contents_) {
      out.write(stage_->read(path));
    } else {
      // accounting mode: replay the exact size as zero bytes
      static const std::vector<std::byte> kZeros(1 << 16);
      std::uint64_t remaining = bytes;
      while (remaining > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kZeros.size()));
        out.write(std::span<const std::byte>(kZeros.data(), chunk));
        remaining -= chunk;
      }
    }
    out.close();
    AMRIO_ENSURES(out.bytes_written() == bytes);
    const codec::CompressResult enc = codec_->plan(bytes);
    {
      std::lock_guard<std::mutex> lock(mode_mu_);
      codec_stats_.add(-1, -1, enc);
    }
    if (probe_.metrics) {
      probe_.metrics->add("staging.drain_files", 1);
      probe_.metrics->add("staging.drain_raw_bytes",
                          static_cast<std::int64_t>(bytes));
      probe_.metrics->add("staging.drain_encoded_bytes",
                          static_cast<std::int64_t>(enc.out_bytes));
    }
    drained.push_back(DrainRecord{path, bytes, enc.out_bytes});
  }
  stage_ = std::make_unique<pfs::MemoryBackend>(store_contents_);
  {
    std::lock_guard<std::mutex> lock(mode_mu_);
    append_continuation_.clear();
  }
  return drained;
}

std::vector<pfs::IoRequest> StagingBackend::drain_requests(double clock,
                                                           int client) const {
  std::vector<pfs::IoRequest> reqs;
  for (const auto& path : stage_->list("")) {
    reqs.push_back(pfs::IoRequest{client, clock, path,
                                  codec_->plan(stage_->size(path)).out_bytes,
                                  pfs::kTierBurstBuffer});
  }
  return reqs;
}

}  // namespace amrio::staging

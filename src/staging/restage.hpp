#pragma once
/// \file restage.hpp
/// Read-side staging: the write-side pipeline in reverse. A checkpoint
/// restart must put every rank's task document back in memory before the
/// solver resumes; this module plans that read-back with the same two-ledger
/// discipline the write path uses — **raw bytes** are what the solver gets
/// back (byte-identical to what was written), **encoded bytes** are what
/// actually crosses the PFS/tier under a codec stage, and the modeled decode
/// cpu lands on the reading rank's timeline.
///
/// A `RestagePlan` is built from the write-side truth (per-rank dump file +
/// raw document size — both pure functions of the proxy parameters, so the
/// plan needs no data to be read) and yields:
///
///  * per-rank `RestageSlice`s: file, offset, raw/encoded size, decode cpu —
///    the per-(step, task) read granularity, mirroring the write-side
///    `task_bytes` accounting;
///  * per-file `RestageExtent`s: the units the PFS serves, with the client
///    that fetches each (the group's aggregator under two-phase aggregation,
///    the slice's own rank otherwise);
///  * tier-tagged `pfs::IoRequest`s for the two restart shapes: **cold**
///    (direct OST reads through the contention timeline) and **prefetched**
///    (`kOpPrefetch` OST→node staging followed by node-local BB-tier reads —
///    the drain in reverse).
///
/// The byte half of the reverse path (aggregators fanning subfile bytes back
/// out to their group over `exec::scatterv_group`, members decoding) lives in
/// the MACSio driver's restart loop; this module owns the plan and the
/// timing-request shapes.

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "pfs/simfs.hpp"
#include "staging/aggregator.hpp"

namespace amrio::staging {

/// One rank's slice of the restart image.
struct RestageSlice {
  int rank = 0;
  std::string file;             ///< dump file / subfile holding the bytes
  std::uint64_t offset = 0;     ///< byte offset of the rank's document
  std::uint64_t raw_bytes = 0;  ///< decoded document size
  std::uint64_t encoded_bytes = 0;  ///< modeled PFS/wire size (codec plan)
  double decode_seconds = 0.0;  ///< modeled decode cpu the rank pays
};

/// One distinct file of the restart image — the unit the PFS serves.
struct RestageExtent {
  std::string file;
  /// Client that fetches the extent: the group's aggregator when the plan
  /// was built over an AggTopology, else the first (and only fetching) rank.
  int reader = 0;
  std::uint64_t raw_bytes = 0;      ///< sum of the slices' raw sizes
  std::uint64_t encoded_bytes = 0;  ///< sum of the slices' encoded sizes
  int nslices = 0;
};

class RestagePlan {
 public:
  std::vector<RestageSlice> slices;    ///< rank order, one per rank
  std::vector<RestageExtent> extents;  ///< order of first appearance

  bool aggregated() const { return aggregated_; }
  std::uint64_t raw_bytes() const;
  std::uint64_t encoded_bytes() const;
  /// Slowest per-rank decode — every rank decodes concurrently, so this is
  /// the decode cost that gates solver resume.
  double decode_gate() const;

  /// Restart read requests submitted at `clock`.
  ///  * `prefetch == false` (cold PFS): direct `kOpRead`/`kTierPfs` fetches —
  ///    per extent under aggregation (the aggregator pulls the whole subfile
  ///    and fans it out), per slice otherwise (every rank reads its own byte
  ///    range; concurrent reads of a shared file contend on its stripe set).
  ///  * `prefetch == true`: each fetch becomes a `kOpPrefetch` (OST→node at
  ///    drain bandwidth, bounded streams) plus a BB-tier `kOpRead` of the
  ///    same (client, file) — SimFs gates the read on the prefetch landing.
  /// Request sizes are encoded bytes; decode cpu is NOT folded in (it is
  /// paid after the fetch — read it off `decode_gate()` / the slices).
  std::vector<pfs::IoRequest> read_requests(double clock, bool prefetch) const;

 private:
  friend RestagePlan make_restage_plan(const std::vector<std::string>&,
                                       const std::vector<std::uint64_t>&,
                                       const codec::Codec&,
                                       const AggTopology*);
  bool aggregated_ = false;
};

/// Build the plan. `files[r]` / `raw_bytes[r]` are rank r's dump file and raw
/// document size; ranks sharing a file must be contiguous (both the MIF
/// grouping and `AggTopology` satisfy this — enforced). Offsets accumulate
/// per file in rank order, matching the write-side concatenation exactly.
/// With `topo` non-null the plan is aggregated: each extent's reader is its
/// group's aggregator (the file's first rank must be that aggregator).
RestagePlan make_restage_plan(const std::vector<std::string>& files,
                              const std::vector<std::uint64_t>& raw_bytes,
                              const codec::Codec& codec,
                              const AggTopology* topo = nullptr);

}  // namespace amrio::staging

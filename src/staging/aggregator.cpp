#include "staging/aggregator.hpp"

#include <string>

#include "util/assert.hpp"

namespace amrio::staging {

AggTopology AggTopology::make(int nranks, int aggregators) {
  if (nranks < 1)
    throw std::invalid_argument("AggTopology: nranks must be >= 1 (got " +
                                std::to_string(nranks) + ")");
  if (aggregators < 1)
    throw std::invalid_argument(
        "AggTopology: aggregator count must be positive (got " +
        std::to_string(aggregators) + ")");
  if (aggregators > nranks)
    throw std::invalid_argument(
        "AggTopology: aggregator count " + std::to_string(aggregators) +
        " exceeds rank count " + std::to_string(nranks));
  return AggTopology(nranks, aggregators);
}

int AggTopology::first_rank_of(int group) const {
  AMRIO_EXPECTS(group >= 0 && group <= ngroups_);
  const int base = nranks_ / ngroups_;
  const int rem = nranks_ % ngroups_;
  // first `rem` groups hold base+1 ranks (remainder round-robined forward)
  if (group <= rem) return group * (base + 1);
  return rem * (base + 1) + (group - rem) * base;
}

int AggTopology::group_of(int rank) const {
  AMRIO_EXPECTS(rank >= 0 && rank < nranks_);
  const int base = nranks_ / ngroups_;
  const int rem = nranks_ % ngroups_;
  const int fat = rem * (base + 1);  // ranks covered by the base+1 groups
  if (rank < fat) return rank / (base + 1);
  return rem + (rank - fat) / base;
}

int AggTopology::aggregator_of_group(int group) const {
  AMRIO_EXPECTS(group >= 0 && group < ngroups_);
  return first_rank_of(group);
}

int AggTopology::group_size(int group) const {
  AMRIO_EXPECTS(group >= 0 && group < ngroups_);
  return first_rank_of(group + 1) - first_rank_of(group);
}

std::vector<int> AggTopology::members_of(int group) const {
  AMRIO_EXPECTS(group >= 0 && group < ngroups_);
  std::vector<int> out;
  const int lo = first_rank_of(group);
  const int hi = first_rank_of(group + 1);
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (int r = lo; r < hi; ++r) out.push_back(r);
  return out;
}

double ship_cost(const AggregationConfig& cfg, std::uint64_t bytes,
                 int nmessages) {
  AMRIO_EXPECTS(cfg.link_bandwidth > 0);
  AMRIO_EXPECTS(cfg.link_latency >= 0);
  AMRIO_EXPECTS(nmessages >= 0);
  if (bytes == 0 && nmessages == 0) return 0.0;
  return static_cast<double>(bytes) / cfg.link_bandwidth +
         cfg.link_latency * nmessages;
}

}  // namespace amrio::staging

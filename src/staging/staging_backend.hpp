#pragma once
/// \file staging_backend.hpp
/// Burst-buffer byte path: a `pfs::StorageBackend` decorator that absorbs all
/// writes into a node-local staging area (an in-memory backend) and drains
/// them into the final store on request. Writers see their files complete as
/// soon as the staging area has them; `drain_all()` replays the staged files
/// into the final backend byte-exactly and frees the staging area — the byte
/// half of the staging subsystem (the *time* half is `pfs::SimFs`'s BB tier,
/// driven by tier-tagged `pfs::IoRequest`s).
///
/// Append correctness across drains: a file created through the decorator is
/// replayed with create/truncate semantics; a file opened for append that
/// the staging area has never seen but the final store already holds is
/// replayed with append semantics, so "write a dump, drain, append to it
/// next dump, drain again" yields exactly the bytes a direct backend would
/// hold.
///
/// With `store_contents = false` the staging area keeps only byte counts
/// (accounting mode): drains then replay zero bytes of the recorded size into
/// the final store — sizes and file sets are exact, contents are not retained
/// (use store mode when byte-level content matters).
///
/// Codec stage: constructed with a non-identity `codec::CodecSpec`, the
/// burst buffer holds each staged file *encoded* — the tier-side accounting
/// (`pending_encoded_bytes`, `drain_requests` sizes, `DrainRecord::
/// encoded_bytes`) shrinks to the codec's modeled size, while the staging
/// area retains the decoded (raw) image so `drain_all` replays decompressed
/// contents byte-exactly into the final store (the plotfile reader reads the
/// drained tree unchanged) and accounting mode keeps exact raw sizes. A
/// staged file is one compression unit, encoded at absorb: same sizes, same
/// encoded sizes, deterministically.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "codec/stats.hpp"
#include "obs/probe.hpp"
#include "pfs/backend.hpp"
#include "pfs/simfs.hpp"

namespace amrio::staging {

class StagingBackend final : public pfs::StorageBackend {
 public:
  explicit StagingBackend(pfs::StorageBackend& final_store,
                          bool store_contents = true,
                          codec::CodecSpec codec = {});

  // Write path: absorbed by the staging area.
  pfs::FileHandle create(const std::string& path) override;
  pfs::FileHandle open_append(const std::string& path) override;
  void write(pfs::FileHandle handle, std::span<const std::byte> data) override;
  void close(pfs::FileHandle handle) override;

  // Read path: transparent view — staged files win; a staged append
  // continuation composes with the drained prefix in the final store
  // (size/read report final prefix + staged suffix).
  bool exists(const std::string& path) const override;
  std::uint64_t size(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  std::vector<std::byte> read(const std::string& path) const override;

  /// Staged-but-not-yet-drained accounting (raw/decoded bytes).
  std::uint64_t pending_bytes() const;
  std::uint64_t pending_files() const;
  /// Paths currently staged, sorted.
  std::vector<std::string> pending() const;
  /// Bytes the burst-buffer tier actually holds: the codec's modeled encoded
  /// size of every staged file (== pending_bytes() under identity).
  std::uint64_t pending_encoded_bytes() const;
  /// Modeled encoded size of one staged file. Throws when not staged.
  std::uint64_t encoded_size(const std::string& path) const;

  struct DrainRecord {
    std::string path;
    std::uint64_t bytes = 0;          ///< raw bytes replayed into the store
    std::uint64_t encoded_bytes = 0;  ///< bytes the tier held (== bytes under identity)
  };

  /// Replay every staged file into the final store (sorted path order,
  /// byte-exact in store mode) and free the staging area. Returns one record
  /// per drained file.
  std::vector<DrainRecord> drain_all();

  /// Tier-tagged SimFs requests for everything currently pending: one request
  /// per staged file, submitted at `clock`, attributed to `client`. Request
  /// sizes are the encoded bytes — what actually crosses the drain link. Feed
  /// them to a `pfs::SimFs` with an enabled BB tier to time the drain.
  std::vector<pfs::IoRequest> drain_requests(double clock, int client) const;

  /// Attach a metrics probe (no virtual clock here — the byte path counts
  /// absorb/drain traffic; the *time* spans come from SimFs's BB tier).
  /// Absorb counters are commutative adds (engine-parity safe); the
  /// peak-pending gauge is sampled at `drain_all` entry, a single-threaded
  /// point, so snapshots stay engine-invariant.
  void set_probe(obs::Probe probe) { probe_ = probe; }

  pfs::StorageBackend& final_store() { return *final_; }
  bool stores_contents() const override { return store_contents_; }
  const codec::Codec& codec() const { return *codec_; }
  /// Cumulative codec accounting over every drained file (raw vs encoded
  /// bytes, modeled cpu; dump/level unattributed).
  codec::CodecStats codec_stats() const;

 private:
  bool continues_final(const std::string& path) const;

  pfs::StorageBackend* final_;
  bool store_contents_;
  std::unique_ptr<const codec::Codec> codec_;
  std::unique_ptr<pfs::MemoryBackend> stage_;
  /// Staged files that continue a file already present in the final store
  /// (drain must append rather than truncate).
  mutable std::mutex mode_mu_;
  std::map<std::string, bool> append_continuation_;
  codec::CodecStats codec_stats_;  ///< guarded by mode_mu_
  obs::Probe probe_;
};

}  // namespace amrio::staging

#include "staging/restage.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace amrio::staging {

std::uint64_t RestagePlan::raw_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.raw_bytes;
  return total;
}

std::uint64_t RestagePlan::encoded_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.encoded_bytes;
  return total;
}

double RestagePlan::decode_gate() const {
  double gate = 0.0;
  for (const auto& s : slices) gate = std::max(gate, s.decode_seconds);
  return gate;
}

std::vector<pfs::IoRequest> RestagePlan::read_requests(double clock,
                                                       bool prefetch) const {
  std::vector<pfs::IoRequest> reqs;
  // Fetch units: whole extents when an aggregator pulls for its group, the
  // rank's own slice otherwise.
  struct Fetch {
    int client;
    const std::string* file;
    std::uint64_t bytes;
  };
  std::vector<Fetch> fetches;
  if (aggregated_) {
    fetches.reserve(extents.size());
    for (const auto& e : extents)
      fetches.push_back({e.reader, &e.file, e.encoded_bytes});
  } else {
    fetches.reserve(slices.size());
    for (const auto& s : slices)
      fetches.push_back({s.rank, &s.file, s.encoded_bytes});
  }
  reqs.reserve(fetches.size() * (prefetch ? 2 : 1));
  for (const auto& f : fetches) {
    if (prefetch)
      reqs.push_back(pfs::IoRequest{f.client, clock, *f.file, f.bytes,
                                    pfs::kTierBurstBuffer, pfs::kOpPrefetch});
    reqs.push_back(pfs::IoRequest{
        f.client, clock, *f.file, f.bytes,
        prefetch ? pfs::kTierBurstBuffer : pfs::kTierPfs, pfs::kOpRead});
  }
  return reqs;
}

RestagePlan make_restage_plan(const std::vector<std::string>& files,
                              const std::vector<std::uint64_t>& raw_bytes,
                              const codec::Codec& codec,
                              const AggTopology* topo) {
  AMRIO_EXPECTS_MSG(files.size() == raw_bytes.size(),
                    "make_restage_plan: one file and one size per rank");
  AMRIO_EXPECTS_MSG(!files.empty(), "make_restage_plan: no ranks");
  if (topo != nullptr)
    AMRIO_EXPECTS_MSG(topo->nranks() == static_cast<int>(files.size()),
                      "make_restage_plan: topology rank count mismatch");

  RestagePlan plan;
  plan.aggregated_ = topo != nullptr;
  plan.slices.reserve(files.size());
  for (int r = 0; r < static_cast<int>(files.size()); ++r) {
    const std::string& file = files[static_cast<std::size_t>(r)];
    const std::uint64_t raw = raw_bytes[static_cast<std::size_t>(r)];
    const bool continues =
        !plan.extents.empty() && plan.extents.back().file == file;
    // Ranks sharing a file must be contiguous: a file seen before the
    // previous rank's cannot reappear.
    if (!continues)
      for (const auto& e : plan.extents)
        AMRIO_EXPECTS_MSG(e.file != file,
                          "make_restage_plan: ranks of a shared file must be "
                          "contiguous");
    if (!continues) {
      RestageExtent extent;
      extent.file = file;
      extent.reader = topo != nullptr ? topo->aggregator_of(r) : r;
      plan.extents.push_back(std::move(extent));
      if (topo != nullptr)
        AMRIO_EXPECTS_MSG(plan.extents.back().reader == r,
                          "make_restage_plan: a subfile must start at its "
                          "group's aggregator");
    }
    RestageExtent& extent = plan.extents.back();
    const codec::CompressResult enc = codec.plan(raw);
    RestageSlice slice;
    slice.rank = r;
    slice.file = file;
    slice.offset = extent.raw_bytes;
    slice.raw_bytes = raw;
    slice.encoded_bytes = enc.out_bytes;
    slice.decode_seconds = codec.decode_seconds(raw);
    extent.raw_bytes += raw;
    extent.encoded_bytes += enc.out_bytes;
    ++extent.nslices;
    plan.slices.push_back(std::move(slice));
  }
  return plan;
}

}  // namespace amrio::staging

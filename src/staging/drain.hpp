#pragma once
/// \file drain.hpp
/// Analysis of two-tier SimFs timelines: what the application *perceived*
/// (absorb completion on the burst-buffer tier) versus what the PFS
/// *sustained* (drain completion), how far the asynchronous drain tail
/// stretches past the last perceived write, and how much of the drain
/// overlapped compute windows instead of blocking the dump path.

#include <cstdint>
#include <vector>

#include "pfs/simfs.hpp"
#include "pfs/timeline.hpp"

namespace amrio::staging {

struct StagingReport {
  /// Burst metrics over [open_start, end): the application's view.
  pfs::BurstStats perceived;
  /// Burst metrics over [open_start, pfs_end): what the PFS actually served.
  pfs::BurstStats sustained;
  /// Seconds the asynchronous drain ran past the last perceived completion —
  /// the work hidden behind subsequent compute windows.
  double drain_tail = 0.0;
  /// total bytes / perceived makespan (what the job log would report).
  double perceived_bandwidth = 0.0;
  /// total bytes / sustained makespan (what the filesystem really delivered).
  double sustained_bandwidth = 0.0;
  std::uint64_t staged_bytes = 0;  ///< bytes served on the BB tier
  std::uint64_t direct_bytes = 0;  ///< bytes served directly on the PFS tier
};

/// Summarize a SimFs result batch (perceived vs sustained). Works on single
/// -tier results too: every request then has end == pfs_end and the two views
/// coincide (drain_tail == 0).
StagingReport staging_report(const std::vector<pfs::IoResult>& results);

}  // namespace amrio::staging

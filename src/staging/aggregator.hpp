#pragma once
/// \file aggregator.hpp
/// Two-phase collective aggregation topology (ADIOS2-BP-style subfiling,
/// Hercule-style output restructuring): the ranks of an SPMD dump are
/// partitioned into `aggregators` contiguous groups; non-aggregator ranks
/// ship their serialized task documents to the first rank of their group
/// (the aggregator) over point-to-point messages, and only aggregators open
/// files — a 512-rank dump produces 8 subfiles plus one index instead of 512
/// files hammering the MDS.
///
/// The partition is deterministic: with nranks = q·aggregators + r, the first
/// r groups get q+1 ranks and the rest get q (the remainder is round-robined
/// over the leading groups), so equal inputs always yield equal subfiles.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace amrio::staging {

/// Knobs of the aggregation phase. `link_*` model the interconnect a shipped
/// byte crosses on its way to the aggregator; the cost lands on the logical
/// clock of the aggregated write request (the data cannot reach the file
/// system before it has reached the aggregator).
struct AggregationConfig {
  int aggregators = 0;              ///< number of groups; 0 = disabled
  double link_bandwidth = 12.5e9;   ///< bytes/sec rank → aggregator
  double link_latency = 1.0e-6;     ///< seconds per shipped message
};

/// Deterministic contiguous partition of [0, nranks) into aggregation groups.
class AggTopology {
 public:
  /// Throws std::invalid_argument unless 1 <= aggregators <= nranks.
  static AggTopology make(int nranks, int aggregators);

  int nranks() const { return nranks_; }
  int ngroups() const { return ngroups_; }

  /// Group of a rank (groups are contiguous rank ranges).
  int group_of(int rank) const;
  /// First rank of a group — the member that opens the subfile.
  int aggregator_of_group(int group) const;
  /// Aggregator rank serving `rank`'s group.
  int aggregator_of(int rank) const { return aggregator_of_group(group_of(rank)); }
  bool is_aggregator(int rank) const { return aggregator_of(rank) == rank; }
  /// Members of a group in ascending rank order (aggregator first).
  std::vector<int> members_of(int group) const;
  int group_size(int group) const;

 private:
  AggTopology(int nranks, int ngroups) : nranks_(nranks), ngroups_(ngroups) {}
  int first_rank_of(int group) const;

  int nranks_ = 0;
  int ngroups_ = 0;
};

/// Logical-clock cost of shipping `bytes` to an aggregator in `nmessages`
/// point-to-point sends. Zero when nothing is shipped (the aggregator's own
/// document never crosses the link).
double ship_cost(const AggregationConfig& cfg, std::uint64_t bytes,
                 int nmessages);

}  // namespace amrio::staging

#include "staging/drain.hpp"

#include <algorithm>

namespace amrio::staging {

StagingReport staging_report(const std::vector<pfs::IoResult>& results) {
  StagingReport rep;
  if (results.empty()) return rep;

  rep.perceived = pfs::burst_stats(results);

  // Sustained view: the same batch with end pushed out to drain completion.
  std::vector<pfs::IoResult> durable = results;
  for (auto& r : durable) r.end = r.pfs_end;
  rep.sustained = pfs::burst_stats(durable);

  double last_perceived = results.front().end;
  double last_durable = results.front().pfs_end;
  for (const auto& r : results) {
    last_perceived = std::max(last_perceived, r.end);
    last_durable = std::max(last_durable, r.pfs_end);
    if (r.tier == pfs::kTierBurstBuffer)
      rep.staged_bytes += r.bytes;
    else
      rep.direct_bytes += r.bytes;
  }
  rep.drain_tail = last_durable - last_perceived;
  rep.perceived_bandwidth = rep.perceived.makespan > 0
                                ? static_cast<double>(rep.perceived.total_bytes) /
                                      rep.perceived.makespan
                                : 0.0;
  rep.sustained_bandwidth = rep.sustained.makespan > 0
                                ? static_cast<double>(rep.sustained.total_bytes) /
                                      rep.sustained.makespan
                                : 0.0;
  return rep;
}

}  // namespace amrio::staging
